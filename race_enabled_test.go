//go:build race

package repro

// raceEnabled reports whether the race detector is compiled in; the alloc
// gates relax their byte-level assertions under race instrumentation, whose
// shadow bookkeeping inflates measured allocation sizes.
const raceEnabled = true
