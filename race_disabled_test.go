//go:build !race

package repro

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
