package repro

import (
	"bytes"
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/condor"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/dagman"
	"repro/internal/faults"
	"repro/internal/gridftp"
	"repro/internal/services"
	"repro/internal/skysim"
	"repro/internal/votable"
	"repro/internal/webservice"
)

// chaosSpecs is the §5 eight-cluster campaign scaled down so the chaos
// matrix (fault-free + faulted + determinism re-runs) stays fast.
func chaosSpecs(n int) []skysim.Spec {
	specs := skysim.StandardClusters()[:n]
	for i := range specs {
		specs[i].NumGalaxies = 10 + 3*i
	}
	return specs
}

// chaosTestbed wires a resilient testbed (retry policy, circuit breakers,
// mirrored image cache) around the given injector; nil runs fault-free.
func chaosTestbed(t *testing.T, clusters int, inj *faults.Injector) *core.Testbed {
	t.Helper()
	tb, err := core.NewTestbed(core.Config{
		ClusterSpecs: chaosSpecs(clusters),
		Seed:         7,
		Resilience:   true,
		MirrorSite:   "mirror",
		Faults:       inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

// renderTables serializes every cluster's merged result table, keyed by
// cluster name, for byte-level comparison between campaigns.
func renderTables(t *testing.T, rep *core.CampaignReport) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for _, c := range rep.Clusters {
		var b bytes.Buffer
		if err := votable.WriteTable(&b, c.Table); err != nil {
			t.Fatal(err)
		}
		out[c.Cluster] = b.Bytes()
	}
	return out
}

// recoverableSchedule is a fault load the resilience stack must absorb
// completely: transient worker deaths across all Condor pools, plus an
// outage window on the image cache's GridFTP server long enough to trip its
// circuit and force transfers over to the mirror replicas.
func recoverableSchedule() *faults.Injector {
	return faults.New(42,
		faults.Rule{Name: condor.OpExec, Kind: faults.KindTransient, Probability: 0.08},
		faults.Rule{Name: gridftp.OpTransfer, Site: "isi", Kind: faults.KindSiteDown, From: 3, Until: 9},
	)
}

// TestChaosCampaignRecoverable runs the eight-cluster campaign fault-free
// and again under a recoverable fault schedule, and requires the faulted run
// to (a) actually exercise retries, replica failover and the circuit
// breaker, and (b) still produce byte-identical science output.
func TestChaosCampaignRecoverable(t *testing.T) {
	clean := chaosTestbed(t, 8, nil)
	cleanRep, err := core.RunCampaign(clean)
	if err != nil {
		t.Fatal(err)
	}
	// Nil injector must be a true no-op: no retries, failovers or opens.
	for _, c := range cleanRep.Clusters {
		if c.Retries != 0 || c.Failovers != 0 || len(c.Degraded) != 0 {
			t.Fatalf("%s: fault-free run reports retries=%d failovers=%d degraded=%v",
				c.Cluster, c.Retries, c.Failovers, c.Degraded)
		}
	}
	if n := clean.Breakers.TotalOpens(); n != 0 {
		t.Fatalf("fault-free run opened %d circuits", n)
	}

	inj := recoverableSchedule()
	chaos := chaosTestbed(t, 8, inj)
	chaosRep, err := core.RunCampaign(chaos)
	if err != nil {
		t.Fatalf("recoverable faults must not fail the campaign: %v", err)
	}

	if inj.Injected() == 0 {
		t.Fatal("schedule injected no faults; the chaos run tested nothing")
	}
	if inj.CountKind(faults.KindSiteDown) == 0 {
		t.Error("cache-site outage window never fired")
	}
	var retries, failovers int
	for _, c := range chaosRep.Clusters {
		retries += c.Retries
		failovers += c.Failovers
		if len(c.Degraded) != 0 {
			t.Errorf("%s: no archive faults scheduled, yet degraded %v", c.Cluster, c.Degraded)
		}
	}
	if retries == 0 {
		t.Error("faulted campaign never retried a DAG node")
	}
	if failovers == 0 {
		t.Error("faulted campaign never failed a transfer over to a mirror replica")
	}
	if chaos.Breakers.TotalOpens() == 0 {
		t.Error("cache-site outage never opened a circuit")
	}

	// The science must not notice the chaos: identical tables, identical
	// Figure 7 correlations.
	want := renderTables(t, cleanRep)
	got := renderTables(t, chaosRep)
	for name, w := range want {
		if !bytes.Equal(got[name], w) {
			t.Errorf("%s: result table differs between fault-free and faulted runs", name)
		}
	}
	for i := range cleanRep.Clusters {
		if a, b := cleanRep.Clusters[i].AsymmetryRadiusRho, chaosRep.Clusters[i].AsymmetryRadiusRho; a != b {
			t.Errorf("%s: rho %v (fault-free) != %v (faulted)",
				cleanRep.Clusters[i].Cluster, a, b)
		}
	}
}

// TestChaosSameSeedSameSchedule replays the identical faulted campaign twice
// and requires the two injectors to have produced the exact same fault
// history — the property that makes a chaos failure reproducible.
func TestChaosSameSeedSameSchedule(t *testing.T) {
	run := func() (*faults.Injector, map[string][]byte) {
		inj := recoverableSchedule()
		tb := chaosTestbed(t, 2, inj)
		rep, err := core.RunCampaign(tb)
		if err != nil {
			t.Fatal(err)
		}
		return inj, renderTables(t, rep)
	}
	injA, tabA := run()
	injB, tabB := run()
	if injA.Injected() == 0 {
		t.Fatal("schedule injected no faults")
	}
	if !reflect.DeepEqual(injA.History(), injB.History()) {
		t.Errorf("fault histories diverge:\n  A: %v\n  B: %v", injA.History(), injB.History())
	}
	for name, a := range tabA {
		if !bytes.Equal(tabB[name], a) {
			t.Errorf("%s: tables differ between identical runs", name)
		}
	}
}

// tenantFaultPlan builds the per-workflow Condor fault injector of the
// concurrent-tenants campaign: every workflow gets its own deterministic
// transient-failure schedule, seeded from its cluster, independent of what
// any other tenant's workflow is doing on the shared fabric.
func tenantFaultPlan(cluster string) *faults.Injector {
	seed := int64(900)
	for _, c := range cluster {
		seed = seed*31 + int64(c)
	}
	return faults.New(seed,
		faults.Rule{Name: condor.OpExec, Kind: faults.KindTransient, Probability: 0.12})
}

// TestChaosConcurrentTenants runs N workflows simultaneously on one shared
// fabric — distinct tenants, distinct seeds, distinct fault plans — and
// requires every workflow's output table to be byte-identical to a solo
// run of the same cluster on a private testbed, with the same fault
// history. Fault isolation under interleaving: one tenant's chaos must not
// leak into another tenant's science or schedule.
func TestChaosConcurrentTenants(t *testing.T) {
	const n = 3
	tenants := []string{"alice", "bob", "carol"}

	// Solo baselines: each cluster alone on a fresh testbed, same fault plan.
	soloTables := make([]map[string][]byte, n)
	soloHist := make([][]faults.Fault, n)
	for i := 0; i < n; i++ {
		var inj *faults.Injector
		tb, err := core.NewTestbed(core.Config{
			ClusterSpecs: chaosSpecs(n),
			Seed:         7,
			Resilience:   true,
			MirrorSite:   "mirror",
			FaultsFor: func(tenant, cluster string) *faults.Injector {
				in := tenantFaultPlan(cluster)
				inj = in
				return in
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		name := tb.Clusters[i].Name
		rep, err := core.RunCluster(tb, name)
		if err != nil {
			t.Fatalf("solo %s: %v", name, err)
		}
		var b bytes.Buffer
		if err := votable.WriteTable(&b, rep.Table); err != nil {
			t.Fatal(err)
		}
		soloTables[i] = map[string][]byte{name: b.Bytes()}
		soloHist[i] = inj.History()
		if inj.Injected() == 0 {
			t.Fatalf("solo %s: fault plan injected nothing; the chaos run tests nothing", name)
		}
	}

	// Concurrent run: all N workflows at once on one shared testbed, each
	// under its own tenant with its own injector.
	injectors := make([]*faults.Injector, n)
	var mu sync.Mutex
	tb, err := core.NewTestbed(core.Config{
		ClusterSpecs: chaosSpecs(n),
		Seed:         7,
		Resilience:   true,
		MirrorSite:   "mirror",
		FaultsFor: func(tenant, cluster string) *faults.Injector {
			inj := tenantFaultPlan(cluster)
			mu.Lock()
			for i := range tenants {
				if tenant == tenants[i] {
					injectors[i] = inj
				}
			}
			mu.Unlock()
			return inj
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Catalogs are built through the shared portal up front (deterministic
	// per cluster); the workflows themselves run simultaneously.
	cats := make([]*votable.Table, n)
	for i := 0; i < n; i++ {
		cat, _, err := tb.Portal.BuildCatalogReport(tb.Clusters[i].Name)
		if err != nil {
			t.Fatal(err)
		}
		cats[i] = cat
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = tb.Compute.ComputeFor(context.Background(), cats[i],
				tb.Clusters[i].Name, webservice.RequestOptions{Tenant: tenants[i]}, nil)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent workflow %d (%s): %v", i, tenants[i], err)
		}
	}

	// Byte-identity and fault-history identity per workflow, solo vs
	// interleaved.
	for i := 0; i < n; i++ {
		name := tb.Clusters[i].Name
		morph, err := tb.Compute.ResultTable(name + ".vot")
		if err != nil {
			t.Fatal(err)
		}
		if err := votable.MergeColumns(cats[i], morph, "id", "id",
			"surface_brightness", "concentration", "asymmetry", "valid"); err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := votable.WriteTable(&b, cats[i]); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b.Bytes(), soloTables[i][name]) {
			t.Errorf("%s (%s): concurrent-tenant table differs from solo run", name, tenants[i])
		}
		if injectors[i] == nil {
			t.Fatalf("%s: FaultsFor never called for tenant %s", name, tenants[i])
		}
		if !reflect.DeepEqual(injectors[i].History(), soloHist[i]) {
			t.Errorf("%s (%s): fault history diverged between solo and concurrent runs:\n  solo: %v\n  conc: %v",
				name, tenants[i], soloHist[i], injectors[i].History())
		}
	}

	// The fabric accounted one completed workflow per tenant.
	fleet := tb.Compute.Fleet()
	if fleet.Admitted != n || fleet.Completed != n {
		t.Errorf("fleet = %+v, want %d admitted and completed", fleet, n)
	}
}

// TestChaosCampaignDegradedArchive keeps a secondary catalog archive down
// for the whole campaign: every cluster must still complete, with the outage
// recorded in its degradation report.
func TestChaosCampaignDegradedArchive(t *testing.T) {
	inj := faults.New(9, faults.Rule{
		Name: services.OpCone, Site: "mast", Kind: faults.KindSiteDown,
	})
	tb := chaosTestbed(t, 2, inj)
	rep, err := core.RunCampaign(tb)
	if err != nil {
		t.Fatalf("a dead secondary archive must not fail the campaign: %v", err)
	}
	for _, c := range rep.Clusters {
		found := false
		for _, d := range c.Degraded {
			if d.Op == "cone" {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: missing cone degradation record, got %v", c.Cluster, c.Degraded)
		}
		if c.Table == nil || c.Table.NumRows() == 0 {
			t.Errorf("%s: degraded run produced no catalog", c.Cluster)
		}
	}
}

// TestChaosUnrecoverableRescue drives a workflow into permanent failure (a
// node whose site stays down past the retry budget), verifies the rescue
// DAG holds exactly the failed and unrun work, and completes it on
// re-execution once the outage has passed — the DAGMan rescue semantics the
// paper's §4.3.1 relies on.
func TestChaosUnrecoverableRescue(t *testing.T) {
	g := dag.New()
	ids := []string{"n1", "n2", "n3", "n4"}
	for _, id := range ids {
		if err := g.AddNode(&dag.Node{ID: id, Type: "compute"}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < len(ids); i++ {
		if err := g.AddEdge(ids[i-1], ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	// n3's site is down for its first two execution attempts — exactly the
	// retry budget of round one.
	inj := faults.New(5, faults.Rule{
		Name: condor.OpExec, Key: "n3", Kind: faults.KindSiteDown, Until: 2,
	})
	runner := func(n *dag.Node, attempt int) (dagman.Spec, error) {
		return dagman.Spec{Cost: time.Second, Run: func() error { return nil }}, nil
	}
	newSim := func() *condor.Simulator {
		sim, err := condor.NewSimulator(condor.Pool{Name: "p", Slots: 2})
		if err != nil {
			t.Fatal(err)
		}
		sim.SetInjector(inj)
		return sim
	}

	rep1, err := dagman.Execute(g, runner, newSim(), dagman.Options{MaxRetries: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Succeeded() {
		t.Fatal("outage outlasting the retry budget must fail the workflow")
	}
	if rep1.Results["n3"].Attempts != 2 {
		t.Errorf("n3 attempts = %d, want 2", rep1.Results["n3"].Attempts)
	}

	rescue := rep1.RescueDAG(g)
	if rescue.Len() != 2 {
		t.Fatalf("rescue DAG has %d nodes, want 2 (failed n3 + unrun n4)", rescue.Len())
	}
	for _, id := range []string{"n3", "n4"} {
		if _, ok := rescue.Node(id); !ok {
			t.Errorf("rescue DAG missing %s", id)
		}
	}
	for _, id := range []string{"n1", "n2"} {
		if _, ok := rescue.Node(id); ok {
			t.Errorf("rescue DAG re-runs completed node %s", id)
		}
	}

	// Re-execution after the outage window completes the remaining work.
	rep2, err := dagman.Execute(rescue, runner, newSim(), dagman.Options{MaxRetries: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Succeeded() {
		t.Fatalf("rescue execution: done %d failed %d unrun %d", rep2.Done, rep2.Failed, rep2.Unrun)
	}
	if inj.Injected() != 2 {
		t.Errorf("injected %d faults, want exactly the 2 scheduled", inj.Injected())
	}
}
