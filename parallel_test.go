package repro

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/gridftp"
	"repro/internal/skysim"
	"repro/internal/wcs"
)

// parallelTestbed wires a resilient testbed with the given side-effect
// concurrency. Everything except Workers and the injector is held fixed so
// serial and parallel runs are comparable byte for byte.
func parallelTestbed(t *testing.T, clusters, workers int, inj *faults.Injector) *core.Testbed {
	t.Helper()
	tb, err := core.NewTestbed(core.Config{
		ClusterSpecs: chaosSpecs(clusters),
		Seed:         7,
		Resilience:   true,
		MirrorSite:   "mirror",
		Faults:       inj,
		Workers:      workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

// TestParallelWorkersProduceByteIdenticalTables is the determinism contract
// of the worker pool: the same seed must yield byte-identical result
// VOTables — and identical model makespans, since only side effects
// parallelize, never the discrete-event clock — at any worker count.
func TestParallelWorkersProduceByteIdenticalTables(t *testing.T) {
	serial, err := core.RunCampaign(parallelTestbed(t, 4, 1, nil))
	if err != nil {
		t.Fatal(err)
	}
	want := renderTables(t, serial)

	for _, w := range []int{2, 8} {
		rep, err := core.RunCampaign(parallelTestbed(t, 4, w, nil))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		got := renderTables(t, rep)
		for name, wb := range want {
			if !bytes.Equal(got[name], wb) {
				t.Errorf("workers=%d: %s result table differs from serial run", w, name)
			}
		}
		for i := range serial.Clusters {
			s, p := serial.Clusters[i], rep.Clusters[i]
			if s.Makespan != p.Makespan {
				t.Errorf("workers=%d: %s model makespan %v != serial %v",
					w, s.Cluster, p.Makespan, s.Makespan)
			}
			if s.FilesStaged != p.FilesStaged || s.BytesStaged != p.BytesStaged {
				t.Errorf("workers=%d: %s staging accounting (%d files, %d bytes) != serial (%d, %d)",
					w, s.Cluster, p.FilesStaged, p.BytesStaged, s.FilesStaged, s.BytesStaged)
			}
		}
	}
}

// TestParallelWorkersByteIdenticalUnderFaults injects the recoverable chaos
// schedule into a parallel run and requires the science output to still
// match the fault-free serial run byte for byte: faults shuffle retries and
// failovers, never results.
func TestParallelWorkersByteIdenticalUnderFaults(t *testing.T) {
	clean, err := core.RunCampaign(parallelTestbed(t, 2, 1, nil))
	if err != nil {
		t.Fatal(err)
	}
	want := renderTables(t, clean)

	inj := recoverableSchedule()
	faulted, err := core.RunCampaign(parallelTestbed(t, 2, 8, inj))
	if err != nil {
		t.Fatalf("recoverable faults must not fail the parallel campaign: %v", err)
	}
	if inj.Injected() == 0 {
		t.Fatal("schedule injected no faults; the parallel chaos run tested nothing")
	}
	got := renderTables(t, faulted)
	for name, wb := range want {
		if !bytes.Equal(got[name], wb) {
			t.Errorf("%s: faulted parallel table differs from fault-free serial table", name)
		}
	}
}

// TestWarmMemoRequestSkipsRecompute exercises the virtual-data memoization.
// A plain repeat request is already served by RLS-level reduction (the
// per-galaxy result LFNs stay registered, so Pegasus prunes every galMorph
// node). The memo covers the regeneration case: the derived .txt files are
// reclaimed from storage, so a repeat request must re-run every galMorph
// node — but each measurement comes out of the content-keyed cache instead
// of being recomputed, and the fresh result files are re-registered through
// the normal register nodes.
func TestWarmMemoRequestSkipsRecompute(t *testing.T) {
	tb, err := core.NewTestbed(core.Config{
		ClusterSpecs: []skysim.Spec{{
			Name: "MEMO", Center: wcs.New(150, 2), Redshift: 0.04,
			NumGalaxies: 20, Seed: 77,
		}},
		Seed:    5,
		Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	cat, err := tb.Portal.BuildCatalog("MEMO")
	if err != nil {
		t.Fatal(err)
	}

	coldLFN, coldStats, err := tb.Compute.Compute(cat, "MEMO")
	if err != nil {
		t.Fatal(err)
	}
	if coldStats.MemoHits != 0 || coldStats.MemoMisses == 0 {
		t.Fatalf("cold run: MemoHits=%d MemoMisses=%d, want 0 hits and >0 misses",
			coldStats.MemoHits, coldStats.MemoMisses)
	}

	// Reclaim the derived result files: unregister every replica and delete
	// the underlying bytes, as a storage sweep would.
	for i := 0; i < cat.NumRows(); i++ {
		lfn := cat.Cell(i, "id") + ".txt"
		for _, pfn := range tb.RLS.Lookup(lfn) {
			if err := tb.RLS.Unregister(lfn, pfn); err != nil {
				t.Fatal(err)
			}
			site, path, err := gridftp.ParseURL(pfn.URL)
			if err != nil {
				t.Fatal(err)
			}
			if err := tb.FTP.Store(site).Delete(path); err != nil {
				t.Fatal(err)
			}
		}
	}

	warmLFN, warmStats, err := tb.Compute.Compute(cat, "MEMO-AGAIN")
	if err != nil {
		t.Fatal(err)
	}
	if warmStats.MemoMisses != 0 {
		t.Errorf("warm run recomputed %d measurements, want 0", warmStats.MemoMisses)
	}
	if warmStats.MemoHits != 20 {
		t.Errorf("warm run MemoHits=%d, want 20 (one per galaxy)", warmStats.MemoHits)
	}

	coldTab, err := tb.Compute.ResultTable(coldLFN)
	if err != nil {
		t.Fatal(err)
	}
	warmTab, err := tb.Compute.ResultTable(warmLFN)
	if err != nil {
		t.Fatal(err)
	}
	if coldTab.NumRows() != warmTab.NumRows() {
		t.Fatalf("rows: cold %d, warm %d", coldTab.NumRows(), warmTab.NumRows())
	}
	for r := 0; r < coldTab.NumRows(); r++ {
		for c := range coldTab.Fields {
			if coldTab.Rows[r][c] != warmTab.Rows[r][c] {
				t.Errorf("row %d col %d: cold %v != warm %v",
					r, c, coldTab.Rows[r][c], warmTab.Rows[r][c])
			}
		}
	}
}

// benchPR2 is the record TestEmitBenchPR2 writes to BENCH_pr2.json.
type benchPR2 struct {
	Note       string             `json:"note"`
	NumCPU     int                `json:"num_cpu"`
	GoMaxProcs int                `json:"gomaxprocs"`
	Campaign   map[string]float64 `json:"campaign_wall_seconds_by_workers"`
	ColdWarm   map[string]float64 `json:"request_wall_seconds"`
	MemoHits   int                `json:"warm_request_memo_hits"`
}

// TestEmitBenchPR2 measures the eight-cluster campaign at several worker
// counts and a cold-vs-memoized repeat request, and records the wall-clock
// numbers in BENCH_pr2.json for EXPERIMENTS.md. Opt-in via EMIT_BENCH=1 so
// routine `go test ./...` and `make bench` runs never churn the checked-in
// numbers.
func TestEmitBenchPR2(t *testing.T) {
	if os.Getenv("EMIT_BENCH") == "" {
		t.Skip("benchmark emission is opt-in: set EMIT_BENCH=1 to rewrite BENCH_pr2.json")
	}
	if testing.Short() {
		t.Skip("benchmark emission skipped in -short mode")
	}
	out := benchPR2{
		Note: "wall-clock seconds; side-effect concurrency only — the model clock " +
			"is identical at every worker count. Speedups require real cores; " +
			"single-CPU containers serialize the workers.",
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Campaign:   map[string]float64{},
		ColdWarm:   map[string]float64{},
	}

	for _, w := range []int{1, 2, 4, 8} {
		tb := parallelTestbed(t, 8, w, nil)
		start := time.Now()
		if _, err := core.RunCampaign(tb); err != nil {
			t.Fatal(err)
		}
		out.Campaign[fmt.Sprintf("workers=%d", w)] = time.Since(start).Seconds()
	}

	tb := parallelTestbed(t, 1, 4, nil)
	name := tb.Portal.Clusters()[0].Name
	cat, err := tb.Portal.BuildCatalog(name)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, _, err := tb.Compute.Compute(cat, name); err != nil {
		t.Fatal(err)
	}
	out.ColdWarm["cold"] = time.Since(start).Seconds()
	// Reclaim the derived result files so the repeat request re-runs every
	// galMorph node and the timing isolates the memo, not RLS-level pruning.
	for i := 0; i < cat.NumRows(); i++ {
		lfn := cat.Cell(i, "id") + ".txt"
		for _, pfn := range tb.RLS.Lookup(lfn) {
			_ = tb.RLS.Unregister(lfn, pfn)
			if site, path, err := gridftp.ParseURL(pfn.URL); err == nil {
				_ = tb.FTP.Store(site).Delete(path)
			}
		}
	}
	start = time.Now()
	_, warmStats, err := tb.Compute.Compute(cat, name+"-WARM")
	if err != nil {
		t.Fatal(err)
	}
	out.ColdWarm["warm_memoized"] = time.Since(start).Seconds()
	out.MemoHits = warmStats.MemoHits
	if warmStats.MemoHits == 0 || warmStats.MemoMisses != 0 {
		t.Fatalf("warm request did not exercise the memo: %+v", warmStats)
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_pr2.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("BENCH_pr2.json: %s", data)
}
