// PR 4 throughput instrumentation: the planner/scheduler quantities the
// locality-and-clustering work optimizes, recorded to BENCH_pr4.json. Model
// clocks, not wall clocks — the numbers are deterministic on any machine.
package repro

import (
	"encoding/json"
	"math/rand"
	"os"
	"testing"
	"time"

	"repro/internal/chimera"
	"repro/internal/condor"
	"repro/internal/core"
	"repro/internal/pegasus"
	"repro/internal/skysim"
	"repro/internal/wcs"
)

// BenchmarkPlanReduction measures the Pegasus reduction-and-concretization
// pass at the paper's largest cluster size with half the per-galaxy products
// already cached, and reports the catalog cost: one bulk RLS round trip per
// plan, however many LFNs the workflow references.
func BenchmarkPlanReduction(b *testing.B) {
	const n = 561
	cat := galaxyVDL(b, n)
	wf, err := chimera.Compose(cat, chimera.Request{LFNs: []string{"out.vot"}})
	if err != nil {
		b.Fatal(err)
	}
	r, tc := planningServices(b, n, n/2)
	var roundTrips, jobs float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := pegasus.Map(wf, pegasus.Config{
			RLS: r, TC: tc, Rand: rand.New(rand.NewSource(int64(i))),
		})
		if err != nil {
			b.Fatal(err)
		}
		if p.RLSRoundTrips != 1 {
			b.Fatalf("plan cost %d RLS round trips, want 1", p.RLSRoundTrips)
		}
		roundTrips += float64(p.RLSRoundTrips)
		jobs += float64(p.Stats().ComputeJobs)
	}
	b.ReportMetric(roundTrips/float64(b.N), "rls_round_trips")
	b.ReportMetric(jobs/float64(b.N), "jobs_after_reduction")
}

// pr4ClusterRun is one row of the clustering sweep. Struct fields serialize
// in declaration order, so the emitted JSON has stable key ordering.
type pr4ClusterRun struct {
	ClusterSize    int     `json:"cluster_size"`
	ScheduleEvents int     `json:"schedule_events"`
	ClusteredTasks int     `json:"clustered_tasks"`
	ClusteredNodes int     `json:"clustered_nodes"`
	RLSRoundTrips  int64   `json:"rls_round_trips"`
	ModelMakespanS float64 `json:"model_makespan_s"`
}

// pr4Locality contrasts the paper's random placement with replica-cost
// selection on a fabric where the cache site can compute.
type pr4Locality struct {
	RandomBytesStaged     int64 `json:"random_bytes_staged"`
	LocalityBytesStaged   int64 `json:"locality_bytes_staged"`
	RandomPlannedBytes    int64 `json:"random_planned_bytes_moved"`
	LocalityPlannedBytes  int64 `json:"locality_planned_bytes_moved"`
	RandomTransferNodes   int   `json:"random_transfer_nodes"`
	LocalityTransferNodes int   `json:"locality_transfer_nodes"`
}

type benchPR4 struct {
	Note           string          `json:"note"`
	Galaxies       int             `json:"galaxies"`
	SchedOverheadS float64         `json:"sched_overhead_s"`
	Clustering     []pr4ClusterRun `json:"clustering"`
	Locality       pr4Locality     `json:"locality"`
}

func pr4Spec(n int) []skysim.Spec {
	return []skysim.Spec{{
		Name: "BENCH", Center: wcs.New(150, 2), Redshift: 0.04,
		NumGalaxies: n, Seed: 77,
	}}
}

// TestEmitBenchPR4 records the clustering sweep (N in {1, 4, 16}) and the
// locality-vs-random byte movement to BENCH_pr4.json for EXPERIMENTS.md.
// Opt-in via EMIT_BENCH=1 like TestEmitBenchPR2, so routine test and bench
// runs never churn the checked-in numbers. The metrics are model-clock
// quantities, so the emitted file is machine-independent.
func TestEmitBenchPR4(t *testing.T) {
	if os.Getenv("EMIT_BENCH") == "" {
		t.Skip("benchmark emission is opt-in: set EMIT_BENCH=1 to rewrite BENCH_pr4.json")
	}
	if testing.Short() {
		t.Skip("benchmark emission skipped in -short mode")
	}
	const galaxies = 48
	const overhead = time.Second

	out := benchPR4{
		Note: "deterministic model-clock metrics for one " +
			"48-galaxy cluster request; schedule_events counts Condor task " +
			"submissions (a clustered batch is one event), makespan is the " +
			"discrete-event clock, and the locality table runs on a fabric " +
			"where the cache site (isi) can compute.",
		Galaxies:       galaxies,
		SchedOverheadS: overhead.Seconds(),
	}

	for _, size := range []int{1, 4, 16} {
		tb, err := core.NewTestbed(core.Config{
			ClusterSpecs:  pr4Spec(galaxies),
			Seed:          5,
			ClusterSize:   size,
			SchedOverhead: overhead,
			TransferSlots: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		cat, err := tb.Portal.BuildCatalog("BENCH")
		if err != nil {
			t.Fatal(err)
		}
		_, stats, err := tb.Compute.Compute(cat, "BENCH")
		if err != nil {
			t.Fatal(err)
		}
		out.Clustering = append(out.Clustering, pr4ClusterRun{
			ClusterSize:    size,
			ScheduleEvents: stats.ScheduleEvents,
			ClusteredTasks: stats.ClusteredTasks,
			ClusteredNodes: stats.ClusteredNodes,
			RLSRoundTrips:  stats.RLSRoundTrips,
			ModelMakespanS: stats.Makespan.Seconds(),
		})
	}
	for i := 1; i < len(out.Clustering); i++ {
		prev, cur := out.Clustering[i-1], out.Clustering[i]
		if cur.ScheduleEvents >= prev.ScheduleEvents || cur.ModelMakespanS >= prev.ModelMakespanS {
			t.Fatalf("clustering sweep not monotone: N=%d %+v vs N=%d %+v",
				prev.ClusterSize, prev, cur.ClusterSize, cur)
		}
	}

	// Locality vs random placement, with the cache site in the compute fabric.
	localityStats := func(locality bool) core.Config {
		return core.Config{
			ClusterSpecs:     pr4Spec(galaxies),
			Pools:            append(core.DefaultPools(), condor.Pool{Name: "isi", Slots: 8}),
			Seed:             5,
			LocalityPlanning: locality,
		}
	}
	for _, locality := range []bool{false, true} {
		tb, err := core.NewTestbed(localityStats(locality))
		if err != nil {
			t.Fatal(err)
		}
		cat, err := tb.Portal.BuildCatalog("BENCH")
		if err != nil {
			t.Fatal(err)
		}
		_, stats, err := tb.Compute.Compute(cat, "BENCH")
		if err != nil {
			t.Fatal(err)
		}
		if locality {
			out.Locality.LocalityBytesStaged = stats.BytesStaged
			out.Locality.LocalityPlannedBytes = stats.PlannedBytesMoved
			out.Locality.LocalityTransferNodes = stats.TransferNodes
		} else {
			out.Locality.RandomBytesStaged = stats.BytesStaged
			out.Locality.RandomPlannedBytes = stats.PlannedBytesMoved
			out.Locality.RandomTransferNodes = stats.TransferNodes
		}
	}
	if out.Locality.LocalityBytesStaged >= out.Locality.RandomBytesStaged {
		t.Fatalf("locality did not reduce staged bytes: %+v", out.Locality)
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_pr4.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("BENCH_pr4.json: %s", data)
}
