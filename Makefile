GO ?= go

.PHONY: build test vet lint racecheck chaos bench emit-bench recovery fuzz tenants survey soak hotbench verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The nvolint suite: eleven analyzers enforcing the determinism, clock,
# resource-hygiene and concurrency invariants (see README "Static
# analysis"). The binary build goes through the Go build cache, so a warm
# rebuild is free; it runs both standalone and as a go vet -vettool, which
# exercises the same fleet through the cmd/go vet protocol. The standalone
# pass prints per-analyzer wall time (-v), fails if the suite blows its
# latency budget (-budget, so a slow new pass cannot silently degrade
# verify), and reports — without failing — any //nvolint:ignore directive
# whose until=PR<N> expiry has passed (-pr; the current PR number is the
# count of completed entries in CHANGES.md).
NVOLINT_PR ?= $(shell grep -c '^PR ' CHANGES.md)
LINT_BUDGET ?= 120s
lint:
	$(GO) build -o bin/nvolint ./cmd/nvolint
	./bin/nvolint -v -budget $(LINT_BUDGET) -pr $(NVOLINT_PR) ./...
	$(GO) vet -vettool=bin/nvolint ./...

test:
	$(GO) test ./...

# The end-to-end chaos campaign: eight clusters under seeded fault
# schedules, byte-identical science output required.
chaos:
	$(GO) test -race -run 'TestChaos' -v .

# Every benchmark, including the parallel-execution and warm-cache suites;
# BENCH=<regex> narrows the run (e.g. make bench BENCH=ParallelLeafJobs).
# The checked-in BENCH_pr*.json snapshots are never rewritten here — only by
# the opt-in emitters behind EMIT_BENCH (make emit-bench).
BENCH ?= .
bench:
	$(GO) test -run XXX -bench '$(BENCH)' -benchmem .

# Regenerate the checked-in BENCH_pr*.json snapshots.
emit-bench:
	EMIT_BENCH=1 $(GO) test -run 'TestEmitBench' -v .

# Journal-replay idempotence: the kill-and-resume sweep and corruption
# recovery, race-enabled, plus the cmd-level sweep through the full testbed.
recovery:
	$(GO) test -race -run 'TestKillAndResume|TestResume|TestJournalBrackets|TestTransferCorruption|TestCorruptIntermediate|TestCancel' -v ./internal/webservice/
	$(GO) run ./cmd/nvo-resume -cluster COMA -scale 0.1

# Fuzz smoke over the RLS text codec (seeds always run under plain `go test`;
# this also spends a short budget on new inputs).
FUZZTIME ?= 10s
fuzz:
	$(GO) test -fuzz FuzzReadReplicas -fuzztime $(FUZZTIME) ./internal/rls/

# The multi-tenant fabric campaign, race-enabled: deterministic overload
# shedding, concurrent tenants byte-identical to their solo runs, shared-
# fabric kill/resume without cross-workflow journal bleed, and cancel
# isolation. Bounded: a few minutes of simulated workflows, not a soak.
tenants:
	$(GO) test -race -run 'TestChaosConcurrentTenants' -v .
	$(GO) test -race -run 'TestDeterministicSheddingUnderOverload|TestFabricKillResumeNoJournalBleed|TestCancelIsolationAcrossWorkflows|TestQueuedStatusAndCancelWhileQueued' -v ./internal/webservice/
	$(GO) test -race ./internal/fabric/

# The survey-scale smoke, race-enabled: a 1000-galaxy request in wave mode
# must be byte-identical to the monolithic path with the scheduler's live
# graph bounded by the wave size, plus the wave-mode kill/resume sweep.
survey:
	$(GO) test -race -run 'TestSurveyWave' -v .
	$(GO) test -race -run 'TestWaveComputeByteIdentical|TestWaveKillAndResume' -v ./internal/webservice/

# The preemption soak campaign, race-enabled: SOAK_WORKFLOWS checkpointable
# workflows across priority classes on one shared fabric with runtime
# quota/weight rebalancing, plus the end-to-end slice (preempted-and-resumed
# workflows byte-identical under faults, zero journal bleed) and the
# journal-event-boundary preemption sweep. Override the scale with
# `make soak SOAK_WORKFLOWS=10000`.
SOAK_WORKFLOWS ?= 2500
soak:
	SOAK_WORKFLOWS=$(SOAK_WORKFLOWS) $(GO) test -race -run 'TestSoak' -v .
	$(GO) test -race -run 'TestPreempt' -v ./internal/webservice/

# The hot-path allocation gate, race-enabled: the zero-copy + arena measure
# pipeline must stay within its per-galaxy allocation budget and at least
# 2x below the legacy Decode+Measure pipeline, and the two must agree
# bit-for-bit (the equivalence pins in morphology/fits/tableops). Fails
# fast on any AllocsPerRun regression.
hotbench:
	$(GO) test -race -run 'TestHotPathAllocBudget' -v .
	$(GO) test -race -run 'TestMeasureRaw|TestParseViewAllocBudget|TestAppendResultMatchesFmt|TestSpoolIn' ./internal/morphology/ ./internal/fits/ ./internal/webservice/ ./internal/tableops/

# Every concurrency-bearing campaign under the race detector in one
# invocation: the chaos byte-identity campaign, the multi-tenant fabric
# campaign, the preemption soak (gate scale), and the survey-wave smoke.
# This is the dynamic closure of the static concurrency analyzers
# (lockpath/goleak/selectrevoke): nvolint proves lock/goroutine hygiene
# shapes, racecheck proves the running interleavings.
racecheck:
	$(MAKE) chaos
	$(MAKE) tenants
	$(MAKE) soak SOAK_WORKFLOWS=600
	$(MAKE) survey

# Full verification gate: vet, build, the nvolint invariants (with the
# latency budget and stale-suppression report), the race-enabled suite,
# the race campaigns (chaos, tenants, soak at gate scale, survey — `make
# soak` runs the full fleet), journal-replay idempotence, the hot-path
# allocation gate, and the codec fuzz smoke.
verify: vet build lint
	$(GO) test -race ./...
	$(MAKE) racecheck
	$(MAKE) recovery
	$(MAKE) hotbench
	$(MAKE) fuzz
