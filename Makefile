GO ?= go

.PHONY: build test vet chaos bench verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The end-to-end chaos campaign: eight clusters under seeded fault
# schedules, byte-identical science output required.
chaos:
	$(GO) test -race -run 'TestChaos' -v .

# Every benchmark, including the parallel-execution and warm-cache suites;
# BENCH=<regex> narrows the run (e.g. make bench BENCH=ParallelLeafJobs).
BENCH ?= .
bench:
	$(GO) test -run XXX -bench '$(BENCH)' -benchmem .

# Full verification gate: vet, build, the race-enabled suite, and the
# chaos campaign under the race detector.
verify: vet build
	$(GO) test -race ./...
	$(MAKE) chaos
