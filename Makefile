GO ?= go

.PHONY: build test vet chaos verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The end-to-end chaos campaign: eight clusters under seeded fault
# schedules, byte-identical science output required.
chaos:
	$(GO) test -race -run 'TestChaos' -v .

# Full verification gate: vet, build, the race-enabled suite, and the
# chaos campaign under the race detector.
verify: vet build
	$(GO) test -race ./...
	$(MAKE) chaos
