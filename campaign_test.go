package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/skysim"
)

// TestFullCampaignShape runs the complete §5 campaign — all 8 clusters at
// their paper-scale galaxy counts — and asserts the accounting shape against
// the paper's reported numbers. It takes ~20 s, so it is skipped under
// -short; the scaled version lives in internal/core.
func TestFullCampaignShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign skipped in -short mode")
	}
	tb, err := core.NewTestbed(core.Config{
		ClusterSpecs: skysim.StandardClusters(),
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := core.RunCampaign(tb)
	if err != nil {
		t.Fatal(err)
	}

	if len(report.Clusters) != 8 {
		t.Fatalf("clusters = %d, want 8 (paper §5)", len(report.Clusters))
	}
	minG, maxG := report.Clusters[0].Galaxies, report.Clusters[0].Galaxies
	for _, c := range report.Clusters {
		if c.Galaxies < minG {
			minG = c.Galaxies
		}
		if c.Galaxies > maxG {
			maxG = c.Galaxies
		}
		// Figure 7 in every cluster: positive asymmetry-radius correlation.
		if c.AsymmetryRadiusRho <= 0 {
			t.Errorf("%s: rho = %.3f, want positive", c.Cluster, c.AsymmetryRadiusRho)
		}
		// Invalid rows stay rare (the paper's occasional bad images).
		if c.InvalidRows*20 > c.Galaxies {
			t.Errorf("%s: %d/%d invalid rows", c.Cluster, c.InvalidRows, c.Galaxies)
		}
	}
	if minG != 37 || maxG != 561 {
		t.Errorf("galaxy range %d-%d, want the paper's 37-561", minG, maxG)
	}
	// Jobs exceed galaxies (per-cluster concat), as in the paper
	// (1152 jobs > galaxy count).
	if report.TotalJobs != report.TotalGalaxies+8 {
		t.Errorf("jobs = %d, want galaxies+8 = %d", report.TotalJobs, report.TotalGalaxies+8)
	}
	// One image per galaxy.
	if report.TotalImages != report.TotalGalaxies {
		t.Errorf("images = %d, want %d", report.TotalImages, report.TotalGalaxies)
	}
	// Data volume in the paper's ballpark (30 MB): same order of magnitude.
	if report.TotalBytes < 10e6 || report.TotalBytes > 100e6 {
		t.Errorf("bytes = %d, want tens of MB", report.TotalBytes)
	}
	// Transfers exceed images (stage-in + inter-site + delivery), as the
	// paper's 2295 transfers exceed its 1525 images.
	if report.TotalTransfers <= report.TotalImages {
		t.Errorf("transfers (%d) must exceed images (%d)",
			report.TotalTransfers, report.TotalImages)
	}
	if len(report.Pools) != 3 {
		t.Errorf("pools = %v, want 3", report.Pools)
	}
}
