package repro

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun builds and runs every example binary end to end and
// checks for its signature output — the "does the README actually work"
// test. Requires the go toolchain on PATH; skipped under -short.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("example smoke tests skipped in -short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	cases := []struct {
		pkg  string
		args []string
		want []string
	}{
		{"./examples/quickstart", nil, []string{"mean A", "Sp"}},
		{"./examples/workflow-reduction", nil, []string{
			"Figure 1", "pruned jobs: [d1]", "register c", "pruned jobs: [d1 d2]",
		}},
		{"./examples/grid-execution", nil, []string{
			"rescue-DAG recovery", "recovered: true", "speedup",
		}},
		{"./examples/cluster-analysis", nil, []string{
			"Dressler relation", "Spearman(asymmetry, radius)", "legend",
		}},
		{"./examples/eight-clusters", []string{"-scale", "0.1"}, []string{
			"Totals:", "Paper §5", "makespan",
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(strings.TrimPrefix(c.pkg, "./examples/"), func(t *testing.T) {
			t.Parallel()
			args := append([]string{"run", c.pkg}, c.args...)
			out, err := exec.Command("go", args...).CombinedOutput()
			if err != nil {
				t.Fatalf("go run %s: %v\n%s", c.pkg, err, out)
			}
			for _, want := range c.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("%s output missing %q:\n%s", c.pkg, want, out)
				}
			}
		})
	}
}
