// Grid execution: the workflow machinery under the hood — DAGMan monitoring
// events, retries, rescue-DAG recovery, and the makespan scaling that made
// three Condor pools worthwhile for the paper's campaign.
//
//	go run ./examples/grid-execution
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/condor"
	"repro/internal/dag"
	"repro/internal/dagman"
)

func main() {
	demoMonitoringAndRetries()
	demoRescueDAG()
	demoPoolScaling()
}

// buildFan returns the galaxy-morphology workflow shape: n independent
// compute jobs fanning into one concatenation job.
func buildFan(n int) *dag.Graph {
	g := dag.New()
	if err := g.AddNode(&dag.Node{ID: "concat", Type: "compute"}); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("galMorph-%03d", i)
		if err := g.AddNode(&dag.Node{ID: id, Type: "compute"}); err != nil {
			log.Fatal(err)
		}
		if err := g.AddEdge(id, "concat"); err != nil {
			log.Fatal(err)
		}
	}
	return g
}

func demoMonitoringAndRetries() {
	fmt.Println("== DAGMan monitoring with transient failures ==")
	g := buildFan(8)
	rng := rand.New(rand.NewSource(3))
	runner := func(n *dag.Node, attempt int) (dagman.Spec, error) {
		return dagman.Spec{Cost: 4 * time.Second, Run: func() error {
			if attempt == 1 && rng.Float64() < 0.3 {
				return errors.New("transient Grid failure")
			}
			return nil
		}}, nil
	}
	//nvolint:ignore fabricpool standalone demo of raw DAGMan/Condor, no shared fabric to lease from
	sim, err := condor.NewSimulator(condor.Pool{Name: "usc", Slots: 4})
	if err != nil {
		log.Fatal(err)
	}
	events := 0
	rep, err := dagman.Execute(g, runner, sim, dagman.Options{
		MaxRetries: 3,
		Monitor: func(e dagman.Event) {
			events++
			if e.Kind == dagman.EventRetried {
				fmt.Printf("  t=%-6v %-14s attempt %d failed (%v), resubmitting\n",
					e.At, e.Node, e.Attempt, e.Err)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d jobs done, %d monitoring events, makespan %v\n\n",
		rep.Done, events, rep.Makespan)
}

func demoRescueDAG() {
	fmt.Println("== rescue-DAG recovery ==")
	g := buildFan(6)
	// One stubborn job fails for an entire round, then heals.
	failuresLeft := 2 // MaxRetries=1 -> 2 attempts in round one
	runner := func(n *dag.Node, attempt int) (dagman.Spec, error) {
		return dagman.Spec{Cost: 4 * time.Second, Run: func() error {
			if n.ID == "galMorph-003" && failuresLeft > 0 {
				failuresLeft--
				return errors.New("pool outage")
			}
			return nil
		}}, nil
	}
	newSim := func() (*condor.Simulator, error) {
		//nvolint:ignore fabricpool standalone demo of raw DAGMan/Condor, no shared fabric to lease from
		return condor.NewSimulator(condor.Pool{Name: "usc", Slots: 4})
	}
	rep, err := dagman.ExecuteWithRescue(g, runner, newSim, dagman.Options{MaxRetries: 1}, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  recovered: %t; galMorph-003 took %d attempts across rounds; "+
		"concat state = %v\n\n",
		rep.Succeeded(), rep.Results["galMorph-003"].Attempts, rep.Results["concat"].State)
}

func demoPoolScaling() {
	fmt.Println("== makespan vs. Grid capacity (why the paper used 3 pools) ==")
	const jobs = 561 // the paper's largest cluster
	runner := func(n *dag.Node, attempt int) (dagman.Spec, error) {
		return dagman.Spec{Cost: 4 * time.Second}, nil
	}
	fmt.Printf("  %-28s %10s %8s\n", "pools", "makespan", "speedup")
	var base time.Duration
	for _, pools := range [][]condor.Pool{
		{{Name: "usc", Slots: 20}},
		{{Name: "usc", Slots: 20}, {Name: "wisc", Slots: 30}},
		{{Name: "usc", Slots: 20}, {Name: "wisc", Slots: 30}, {Name: "fnal", Slots: 20}},
	} {
		//nvolint:ignore fabricpool standalone demo of raw DAGMan/Condor, no shared fabric to lease from
		sim, err := condor.NewSimulator(pools...)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := dagman.Execute(buildFan(jobs), runner, sim, dagman.Options{})
		if err != nil || !rep.Succeeded() {
			log.Fatalf("rep=%+v err=%v", rep, err)
		}
		label := ""
		slots := 0
		for i, p := range pools {
			if i > 0 {
				label += "+"
			}
			label += fmt.Sprintf("%s(%d)", p.Name, p.Slots)
			slots += p.Slots
		}
		if base == 0 {
			base = rep.Makespan
		}
		fmt.Printf("  %-28s %10v %7.2fx\n", label, rep.Makespan,
			float64(base)/float64(rep.Makespan))
	}
}
