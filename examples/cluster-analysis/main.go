// Cluster analysis: the paper's end-to-end Figure 5 flow on one cluster —
// portal selects the cluster, finds large-scale images, builds the galaxy
// catalog from the cone-search services, ships it to the Pegasus compute
// service, polls until done, merges the results and "rediscovers" the
// Dressler density–morphology relation (Figure 7).
//
//	go run ./examples/cluster-analysis
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/skysim"
	"repro/internal/visual"
	"repro/internal/wcs"
)

func main() {
	// Wire the whole NVO testbed: archives, RLS, transformation catalog,
	// GridFTP, three Condor pools, the compute web service and the portal,
	// all talking HTTP over in-process virtual hosts.
	tb, err := core.NewTestbed(core.Config{
		ClusterSpecs: []skysim.Spec{{
			Name:        "COMA",
			Center:      wcs.New(194.95, 27.98),
			Redshift:    0.023,
			NumGalaxies: 200,
			Seed:        42,
		}},
		Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The user-facing flow (synchronous, like the paper's portal).
	res, err := tb.Portal.Analyze("COMA")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analyzed %d galaxies (image search %v, catalog %v, compute %v)\n\n",
		res.Table.NumRows(), res.ImageSearch, res.CatalogTime, res.ComputeTime)
	fmt.Println("large-scale images found:")
	for _, im := range res.Images {
		fmt.Printf("  %-24s %s\n", im.Title, im.AcRef)
	}
	fmt.Println()

	// Figure 7: sky map with glyphs by measured asymmetry.
	cl := tb.Clusters[0]
	m, err := visual.SkyMap(res.Table, cl.Center, 8*cl.CoreRadiusDeg, 72, 26)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(m)

	// The quantitative version: radial bins and the rank correlation.
	bins, err := core.DresslerBins(res.Table, cl.Center, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("morphology vs cluster radius (equal-count bins):")
	fmt.Printf("%10s %6s %10s %12s\n", "r(deg)", "N", "mean A", "early frac")
	for _, b := range bins {
		fmt.Printf("%10.4f %6d %10.4f %12.2f\n", b.MidRadiusDeg, b.N, b.MeanAsymmetry, b.EarlyFraction)
	}
	rho, n, err := core.AsymmetryRadiusCorrelation(res.Table, cl.Center)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSpearman(asymmetry, radius) = %+.3f over %d galaxies — the\n", rho, n)
	fmt.Println("positive trend is the Dressler relation: ellipticals at the core,")
	fmt.Println("spirals in the outskirts, recovered from the computed parameters alone.")

	// Export for the visualization tools the paper used.
	fmt.Printf("\nMirage export preview (first 3 lines):\n")
	mirage := visual.ToMirage(res.Table)
	for i, line := 0, 0; i < len(mirage) && line < 3; i++ {
		if mirage[i] == '\n' {
			line++
		}
		if line < 3 {
			fmt.Print(string(mirage[i]))
		}
	}
	fmt.Println()
}
