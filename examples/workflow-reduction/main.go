// Workflow reduction: the paper's Figures 1, 3 and 4 on the command line.
// The VDL catalog defines d1: a -> b and d2: b -> c; we plan a request for
// file c three times:
//
//  1. nothing cached           -> both jobs run (Figure 1);
//  2. intermediate b cached    -> d1 pruned (Figure 3), and the concrete
//     workflow is exactly "move b, run d2, move c to U, register c"
//     (Figure 4);
//  3. everything cached        -> zero compute, pure data delivery.
//
// go run ./examples/workflow-reduction
package main

import (
	"fmt"
	"log"

	"repro/internal/chimera"
	"repro/internal/gridftp"
	"repro/internal/pegasus"
	"repro/internal/rls"
	"repro/internal/tcat"
	"repro/internal/vdl"
)

const workflowVDL = `
TR step( in x, out y ) { /* any program */ }
DV d1->step( x=@{in:"a"}, y=@{out:"b"} );
DV d2->step( x=@{in:"b"}, y=@{out:"c"} );
`

func main() {
	cat, err := vdl.Parse(workflowVDL)
	if err != nil {
		log.Fatal(err)
	}
	wf, err := chimera.Compose(cat, chimera.Request{LFNs: []string{"c"}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Figure 1 — abstract workflow for request 'c':")
	printDAG(wf)

	tc := tcat.New()
	// The transformation is only installed at site B, as in Figure 4.
	must(tc.Add(tcat.Entry{Transformation: "step", Site: "B", Path: "/grid/bin/step"}))

	scenario := func(title string, registered ...string) {
		fmt.Printf("\n%s\n", title)
		r := rls.New()
		must(r.Register("a", rls.PFN{Site: "A", URL: gridftp.URL("A", "a")}))
		for _, lfn := range registered {
			must(r.Register(lfn, rls.PFN{Site: "A", URL: gridftp.URL("A", lfn)}))
		}
		plan, err := pegasus.Map(wf, pegasus.Config{
			RLS: r, TC: tc,
			OutputSite:      "U",
			RegisterOutputs: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		st := plan.Stats()
		fmt.Printf("  pruned jobs: %v\n", plan.PrunedJobs)
		fmt.Printf("  concrete workflow: %d compute, %d transfer, %d register\n",
			st.ComputeJobs, st.TransferNodes, st.RegisterNodes)
		order, _ := plan.Concrete.TopoSort()
		for _, id := range order {
			n, _ := plan.Concrete.Node(id)
			switch n.Type {
			case pegasus.NodeCompute:
				fmt.Printf("    run      %-24s at %s\n", id, n.Attr(pegasus.AttrSite))
			case pegasus.NodeTransfer:
				fmt.Printf("    move     %-24s %s -> %s\n",
					n.Attr(pegasus.AttrLFN), n.Attr(pegasus.AttrSrcURL), n.Attr(pegasus.AttrDstURL))
			case pegasus.NodeRegister:
				fmt.Printf("    register %-24s as %s\n",
					n.Attr(pegasus.AttrLFN), n.Attr(pegasus.AttrPFN))
			}
		}
	}

	scenario("Scenario 1 — nothing cached (full workflow):")
	scenario("Scenario 2 — intermediate b cached at A (Figures 3 & 4):", "b")
	scenario("Scenario 3 — final product c cached too (pure reuse):", "b", "c")
}

func printDAG(wf *chimera.Workflow) {
	order, _ := wf.Graph.TopoSort()
	for _, id := range order {
		n, _ := wf.Graph.Node(id)
		fmt.Printf("  %s: %s( %s ) -> %s\n", id,
			n.Attr(chimera.AttrTransformation),
			n.Attr(chimera.AttrInputs), n.Attr(chimera.AttrOutputs))
	}
	fmt.Printf("  raw inputs: %v, intermediates: %v\n", wf.RawInputs, wf.Intermediate)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
