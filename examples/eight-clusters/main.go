// Eight clusters: the paper's §5 campaign — analyze eight galaxy clusters
// (37 to 561 members) across three Condor pools and report the same
// accounting the paper gives: compute jobs executed, images processed,
// bytes of data, files staged.
//
//	go run ./examples/eight-clusters [-scale 0.25]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/skysim"
	"repro/internal/visual"
)

func main() {
	scale := flag.Float64("scale", 1.0, "scale factor on per-cluster galaxy counts")
	workers := flag.Int("workers", 1, "analyze clusters concurrently with this many workers")
	flag.Parse()

	specs := skysim.StandardClusters()
	for i := range specs {
		n := int(float64(specs[i].NumGalaxies) * *scale)
		if n < 3 {
			n = 3
		}
		specs[i].NumGalaxies = n
	}

	tb, err := core.NewTestbed(core.Config{ClusterSpecs: specs, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Analyzing 8 clusters over 3 Condor pools (usc, wisc, fnal), %d workers...\n", *workers)
	report, err := core.RunCampaignParallel(tb, *workers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report.Format())

	// Per-cluster makespans: the distributed execution cost in model time.
	fmt.Println("per-cluster workflow makespan (model time):")
	for _, c := range report.Clusters {
		fmt.Printf("  %-10s %8v for %4d jobs\n", c.Cluster, c.Makespan, c.ComputeJobs)
	}

	// And one Figure 7 map for the biggest cluster.
	last := report.Clusters[len(report.Clusters)-1]
	if cl, err := tb.Cluster(last.Cluster); err == nil {
		if m, err := visual.SkyMap(last.Table, cl.Center, 8*cl.CoreRadiusDeg, 72, 24); err == nil {
			fmt.Printf("\n%s — measured morphology on the sky:\n%s", last.Cluster, m)
		}
	}
}
