// Quickstart: synthesize one galaxy image and measure the paper's three
// morphology parameters with the public measurement API — the smallest
// possible tour of the library.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/morphology"
	"repro/internal/skysim"
	"repro/internal/wcs"
)

func main() {
	// A small synthetic cluster gives us realistic galaxies of every type.
	cluster := skysim.Generate(skysim.Spec{
		Name:        "DEMO",
		Center:      wcs.New(194.95, 27.98), // Coma's coordinates
		Redshift:    0.023,
		NumGalaxies: 40,
		Seed:        7,
	})

	// Measure every galaxy and average by intrinsic type: ellipticals come
	// out symmetric and concentrated, spirals and irregulars asymmetric.
	cfg := morphology.DefaultConfig(cluster.Redshift)
	type accum struct {
		n          int
		sumA, sumC float64
	}
	byType := map[skysim.GalaxyType]*accum{}
	for i, g := range cluster.Galaxies {
		// Render the cutout the NVO image service would deliver...
		im := skysim.RenderGalaxy(g, 0, int64(i))

		// ...and measure it, exactly as the Grid's galMorph jobs do.
		p, err := morphology.Measure(im, cfg)
		if err != nil {
			log.Printf("%s: %v", g.ID, err)
			continue
		}
		a := byType[g.Type]
		if a == nil {
			a = &accum{}
			byType[g.Type] = a
		}
		a.n++
		a.sumA += p.Asymmetry
		a.sumC += p.Concentration
	}

	fmt.Printf("%-5s %5s %12s %12s\n", "type", "n", "mean A", "mean C")
	for _, ty := range []skysim.GalaxyType{
		skysim.Elliptical, skysim.Lenticular, skysim.Spiral, skysim.Irregular,
	} {
		a := byType[ty]
		if a == nil || a.n == 0 {
			continue
		}
		fmt.Printf("%-5s %5d %12.4f %12.3f\n",
			ty, a.n, a.sumA/float64(a.n), a.sumC/float64(a.n))
	}

	fmt.Println("\nExpect: E/S0 with small mean asymmetry (symmetric light),")
	fmt.Println("Sp/Irr clearly higher — the discriminating power behind Figure 7.")
}
