// PR 7 survey-scale instrumentation: the memory curve of the streaming
// VOTable codec and the wave-based execution pipeline at 48 → 1k → 50k →
// 200k galaxies, recorded to BENCH_pr7.json. Scheduler/planner quantities
// are deterministic model-clock numbers; heap figures are measured live-set
// sizes (GC'd before sampling) and serve the sub-linearity asserts, not
// machine comparison.
package repro

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/condor"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/dagman"
	"repro/internal/gridftp"
	"repro/internal/pegasus"
	"repro/internal/rls"
	"repro/internal/tcat"
	"repro/internal/votable"
)

// pr7Pipe is one full-testbed run (portal → compute → merged VOTable).
type pr7Pipe struct {
	Galaxies       int     `json:"galaxies"`
	Mode           string  `json:"mode"`
	ModelMakespanS float64 `json:"model_makespan_s"`
	BytesStaged    int64   `json:"bytes_staged"`
	Waves          int     `json:"waves"`
	MaxWaveNodes   int     `json:"max_wave_nodes"`
	OutputBytes    int     `json:"output_bytes"`
}

// pr7Codec is one streaming encode→decode pass over a synthetic catalog.
type pr7Codec struct {
	Rows         int     `json:"rows"`
	StreamBytes  int64   `json:"stream_bytes"`
	PeakHeapMB   float64 `json:"peak_heap_mb"`
	AllocsPerRow float64 `json:"allocs_per_row"`
}

// pr7Wave is one wave-mode plan+execute pass over a synthetic workload.
type pr7Wave struct {
	Galaxies        int     `json:"galaxies"`
	TotalNodes      int     `json:"total_nodes"`
	MaxWaveNodes    int     `json:"max_wave_nodes"`
	Waves           int     `json:"waves"`
	ModelMakespanS  float64 `json:"model_makespan_s"`
	PeakHeapMB      float64 `json:"peak_heap_mb"`
	HeapPerGalaxyKB float64 `json:"heap_per_galaxy_kb"`
}

type pr7Mono struct {
	Galaxies       int     `json:"galaxies"`
	MonoPlanNodes  int     `json:"mono_plan_nodes"`
	MonoPlanHeapMB float64 `json:"mono_plan_heap_mb"`
	WaveMaxNodes   int     `json:"wave_max_live_nodes"`
}

type benchPR7 struct {
	Note         string     `json:"note"`
	WaveSize     int        `json:"wave_size"`
	FullPipeline []pr7Pipe  `json:"full_pipeline"`
	Codec        []pr7Codec `json:"codec_scaling"`
	WaveScale    []pr7Wave  `json:"wave_scaling"`
	MonoVsWave   pr7Mono    `json:"monolithic_vs_wave"`
}

func liveHeap() uint64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}

func mb(b uint64) float64 { return float64(b) / (1 << 20) }

// codecRun pushes rows through the streaming encoder into a pipe and back
// through the row-callback decoder, never holding the document or a Table:
// peak heap must stay flat in the row count.
func codecRun(t *testing.T, rows int) pr7Codec {
	t.Helper()
	base := liveHeap()
	var mBase runtime.MemStats
	runtime.ReadMemStats(&mBase)

	meta := votable.TableMeta{
		Name: "catalog",
		Fields: []votable.Field{
			{Name: "id", Datatype: votable.TypeChar},
			{Name: "ra", Datatype: votable.TypeDouble},
			{Name: "dec", Datatype: votable.TypeDouble},
			{Name: "z", Datatype: votable.TypeDouble},
		},
	}
	pr, pw := io.Pipe()
	go func() {
		enc := votable.NewEncoder(pw)
		err := enc.BeginDocument("survey")
		if err == nil {
			err = enc.BeginResource("r")
		}
		if err == nil {
			err = enc.BeginTable(meta)
		}
		cells := make([]string, 4)
		for i := 0; i < rows && err == nil; i++ {
			cells[0] = fmt.Sprintf("g%06d", i)
			cells[1] = "195.1250"
			cells[2] = "28.2500"
			cells[3] = "0.0231"
			err = enc.Row(cells)
		}
		if err == nil {
			err = enc.EndTable()
		}
		if err == nil {
			err = enc.EndResource()
		}
		if err == nil {
			err = enc.End()
		}
		pw.CloseWithError(err)
	}()

	cr := &countingReader{r: pr}
	var got int
	peak := base
	sampleEvery := rows / 8
	if sampleEvery == 0 {
		sampleEvery = 1
	}
	err := votable.DecodeDocument(cr, &votable.Handler{
		Row: func(cells []string) error {
			got++
			if got%sampleEvery == 0 {
				if h := liveHeap(); h > peak {
					peak = h
				}
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != rows {
		t.Fatalf("streamed %d rows, want %d", got, rows)
	}
	var mEnd runtime.MemStats
	runtime.ReadMemStats(&mEnd)
	return pr7Codec{
		Rows:         rows,
		StreamBytes:  cr.n,
		PeakHeapMB:   mb(peak - min64(peak, base)),
		AllocsPerRow: float64(mEnd.Mallocs-mBase.Mallocs) / float64(rows),
	}
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// pr7Workload is the synthetic survey: n morphology jobs feeding one
// collector, inputs pre-registered at a source site.
func pr7Workload(t *testing.T, n int) (*rls.RLS, *tcat.Catalog, pegasus.WaveSource) {
	t.Helper()
	r := rls.New()
	inputs := make([]string, n)
	for i := 0; i < n; i++ {
		lfn := fmt.Sprintf("in%06d", i)
		if err := r.Register(lfn, rls.PFN{Site: "src", URL: gridftp.URL("src", lfn)}); err != nil {
			t.Fatal(err)
		}
		inputs[i] = fmt.Sprintf("out%06d", i)
	}
	tc := tcat.New()
	_ = tc.Add(tcat.Entry{Transformation: "morph", Site: "c1", Path: "/bin/morph"})
	_ = tc.Add(tcat.Entry{Transformation: "morph", Site: "c2", Path: "/bin/morph"})
	_ = tc.Add(tcat.Entry{Transformation: "concat", Site: "c1", Path: "/bin/concat"})
	src := pegasus.WaveSource{
		Jobs: n,
		Job: func(i int) pegasus.WaveJob {
			return pegasus.WaveJob{
				ID:             fmt.Sprintf("j%06d", i),
				Transformation: "morph",
				Inputs:         []string{fmt.Sprintf("in%06d", i)},
				Outputs:        []string{fmt.Sprintf("out%06d", i)},
			}
		},
		Collector: pegasus.WaveJob{
			ID: "collect", Transformation: "concat",
			Inputs: inputs, Outputs: []string{"final.vot"},
		},
	}
	return r, tc, src
}

// pr7Runner executes plan nodes at zero data cost but with full metadata
// effects: register nodes feed the RLS so per-wave reduction and the
// collector's feasibility work exactly as in the real pipeline.
func pr7Runner(r *rls.RLS) dagman.Runner {
	return func(n *dag.Node, attempt int) (dagman.Spec, error) {
		return dagman.Spec{Cost: time.Second, Run: func() error {
			if n.Type == pegasus.NodeRegister {
				return r.Register(n.Attr(pegasus.AttrLFN),
					rls.PFN{Site: n.Attr(pegasus.AttrSite), URL: n.Attr(pegasus.AttrPFN)})
			}
			return nil
		}}, nil
	}
}

// waveRun plans and executes n galaxies in waves, sampling the live heap at
// every wave boundary.
func waveRun(t *testing.T, n, waveSize int) pr7Wave {
	t.Helper()
	r, tc, src := pr7Workload(t, n)
	base := liveHeap()
	planner, err := pegasus.NewWavePlanner(src,
		pegasus.Config{RLS: r, TC: tc, OutputSite: "c1", RegisterOutputs: true}, waveSize, 7)
	if err != nil {
		t.Fatal(err)
	}
	peak := base
	next := func(w int) (*dag.Graph, error) {
		if w >= planner.Waves() {
			return nil, nil
		}
		plan, err := planner.Plan(w)
		if err != nil {
			return nil, err
		}
		if h := liveHeap(); h > peak {
			peak = h
		}
		return plan.Concrete, nil
	}
	newSim := func() (*condor.Simulator, error) {
		return condor.NewSimulator(condor.Pool{Name: "grid", Slots: 32})
	}
	ws, err := dagman.ExecuteWaves(next, pr7Runner(r), newSim, dagman.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Exists("final.vot") {
		t.Fatal("wave run did not register the collector output")
	}
	heap := mb(peak - min64(peak, base))
	return pr7Wave{
		Galaxies:        n,
		TotalNodes:      ws.Nodes,
		MaxWaveNodes:    ws.MaxWaveNodes,
		Waves:           ws.Waves,
		ModelMakespanS:  ws.Makespan.Seconds(),
		PeakHeapMB:      heap,
		HeapPerGalaxyKB: heap * 1024 / float64(n),
	}
}

// pipelineRun is one full-testbed request (classic or wave mode).
func pipelineRun(t *testing.T, galaxies, waveSize int) ([]byte, pr7Pipe) {
	t.Helper()
	mode := "monolithic"
	if waveSize > 0 {
		mode = "waves"
	}
	out, stats := surveyRun(t, core.Config{
		ClusterSpecs: surveySpec(galaxies), Seed: 5, Workers: 4,
		WaveSize: waveSize, PageSize: 200,
	})
	return out, pr7Pipe{
		Galaxies:       galaxies,
		Mode:           mode,
		ModelMakespanS: stats.Makespan.Seconds(),
		BytesStaged:    stats.BytesStaged,
		Waves:          stats.Waves,
		MaxWaveNodes:   stats.MaxWaveNodes,
		OutputBytes:    len(out),
	}
}

// TestEmitBenchPR7 records the survey-scale memory curve to BENCH_pr7.json.
// Opt-in via EMIT_BENCH=1 like the earlier emitters. The full pipeline runs
// at 48 and 1k galaxies (byte-identity between modes asserted); 50k and 200k
// run the codec and wave-execution components, where the bounded-memory
// claims are asserted directly.
func TestEmitBenchPR7(t *testing.T) {
	if os.Getenv("EMIT_BENCH") == "" {
		t.Skip("benchmark emission is opt-in: set EMIT_BENCH=1 to rewrite BENCH_pr7.json")
	}
	if testing.Short() {
		t.Skip("benchmark emission skipped in -short mode")
	}
	const waveSize = 1000

	out := benchPR7{
		Note: "survey-scale memory curve: full portal->compute pipeline at 48 " +
			"and 1k galaxies (wave output byte-identical to monolithic, asserted), " +
			"streaming-codec and wave-execution components at 1k/50k/200k. " +
			"max_wave_nodes is the scheduler's peak live graph — constant in the " +
			"survey size; heap figures are GC'd live-set samples.",
		WaveSize: waveSize,
	}

	// Full pipeline at 48 and 1k, both modes, byte-identical.
	for _, n := range []int{48, 1000} {
		classicBytes, classicRow := pipelineRun(t, n, 0)
		waveBytes, waveRow := pipelineRun(t, n, 100)
		if string(classicBytes) != string(waveBytes) {
			t.Fatalf("%d galaxies: wave output differs from monolithic", n)
		}
		out.FullPipeline = append(out.FullPipeline, classicRow, waveRow)
	}

	// Streaming codec: peak heap must stay flat while rows scale 200x.
	for _, n := range []int{1000, 50000, 200000} {
		out.Codec = append(out.Codec, codecRun(t, n))
	}
	first, last := out.Codec[0], out.Codec[len(out.Codec)-1]
	if last.PeakHeapMB > 4*first.PeakHeapMB+4 {
		t.Fatalf("codec peak heap not flat: %v MB at %d rows vs %v MB at %d rows",
			first.PeakHeapMB, first.Rows, last.PeakHeapMB, last.Rows)
	}

	// Wave execution: live graph constant, heap per galaxy falling.
	for _, n := range []int{1000, 50000, 200000} {
		out.WaveScale = append(out.WaveScale, waveRun(t, n, waveSize))
	}
	for i, row := range out.WaveScale {
		if row.MaxWaveNodes > 4*waveSize {
			t.Fatalf("live graph exceeds the wave bound: %+v", row)
		}
		// Once the survey spans multiple waves the peak is set by the wave
		// size alone — identical at 50k and 200k.
		if i > 1 && row.MaxWaveNodes != out.WaveScale[i-1].MaxWaveNodes {
			t.Fatalf("max wave nodes varies with survey size: %+v", out.WaveScale)
		}
	}
	wFirst, wLast := out.WaveScale[0], out.WaveScale[len(out.WaveScale)-1]
	if wLast.HeapPerGalaxyKB >= wFirst.HeapPerGalaxyKB {
		t.Fatalf("heap per galaxy not sub-linear: %.1f KB at %d vs %.1f KB at %d",
			wFirst.HeapPerGalaxyKB, wFirst.Galaxies, wLast.HeapPerGalaxyKB, wLast.Galaxies)
	}

	// Monolithic plan vs wave live-set at 50k: the graph a single Map must
	// hold against the largest graph the wave executor ever sees.
	{
		const n = 50000
		r, tc, src := pr7Workload(t, n)
		base := liveHeap()
		mono, err := pegasus.NewWavePlanner(src,
			pegasus.Config{RLS: r, TC: tc, OutputSite: "c1", RegisterOutputs: true}, n, 7)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := mono.Plan(0)
		if err != nil {
			t.Fatal(err)
		}
		heap := mb(liveHeap() - base)
		waveMax := 0
		for _, row := range out.WaveScale {
			if row.Galaxies == n {
				waveMax = row.MaxWaveNodes
			}
		}
		out.MonoVsWave = pr7Mono{
			Galaxies:       n,
			MonoPlanNodes:  plan.Concrete.Len(),
			MonoPlanHeapMB: heap,
			WaveMaxNodes:   waveMax,
		}
		if plan.Concrete.Len() < 10*waveMax {
			t.Fatalf("monolithic plan (%d nodes) not >=10x the wave live-set (%d)",
				plan.Concrete.Len(), waveMax)
		}
		runtime.KeepAlive(plan)
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_pr7.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("BENCH_pr7.json: %s", data)
}
