// Package repro's top-level benchmarks regenerate every table and figure of
// the paper's evaluation, plus the ablations DESIGN.md calls out. Each
// benchmark prints (or metrics-reports) the quantities the corresponding
// paper artifact shows; EXPERIMENTS.md records paper-vs-measured.
//
// Run everything with:
//
//	go test -bench=. -benchmem .
package repro

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/chimera"
	"repro/internal/condor"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/dagman"
	"repro/internal/gridftp"
	"repro/internal/mds"
	"repro/internal/morphology"
	"repro/internal/pegasus"
	"repro/internal/rls"
	"repro/internal/services"
	"repro/internal/skysim"
	"repro/internal/tcat"
	"repro/internal/vdl"
	"repro/internal/wcs"
)

// --- E1: Table 1 — data services -------------------------------------------

// BenchmarkTable1ConeSearch measures the Cone Search data operation that
// backs every catalog query in Table 1's collections.
func BenchmarkTable1ConeSearch(b *testing.B) {
	cl := skysim.Generate(skysim.Spec{Name: "COMA", Center: wcs.New(195, 28),
		Redshift: 0.023, NumGalaxies: 561, Seed: 1})
	arch := services.NewArchive("mast", cl)
	pos := cl.Center
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if t := arch.ConeSearch(pos, 0.4); t.NumRows() == 0 {
			b.Fatal("empty cone")
		}
	}
}

// BenchmarkTable1SIAQuery measures the SIA cutout query — the per-galaxy
// image interface the paper identifies as the application bottleneck.
func BenchmarkTable1SIAQuery(b *testing.B) {
	cl := skysim.Generate(skysim.Spec{Name: "COMA", Center: wcs.New(195, 28),
		Redshift: 0.023, NumGalaxies: 561, Seed: 1})
	arch := services.NewArchive("mast", cl)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if t := arch.SIAQueryCutouts(cl.Center, 0.8); t.NumRows() == 0 {
			b.Fatal("empty SIA response")
		}
	}
}

// --- E2: Figures 1/3/4 — composition, reduction, concretization ------------

// galaxyVDL builds the N-galaxy derivation catalog the web service generates.
func galaxyVDL(b *testing.B, n int) *vdl.Catalog {
	b.Helper()
	var sb strings.Builder
	sb.WriteString("TR galMorph( in image, out res ) {}\nTR concat( ")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "in p%d, ", i)
	}
	sb.WriteString("out table ) {}\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "DV m%d->galMorph( image=@{in:\"g%d.fit\"}, res=@{out:\"g%d.txt\"} );\n", i, i, i)
	}
	sb.WriteString("DV collect->concat( ")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "p%d=@{in:\"g%d.txt\"}, ", i, i)
	}
	sb.WriteString("table=@{out:\"out.vot\"} );\n")
	cat, err := vdl.Parse(sb.String())
	if err != nil {
		b.Fatal(err)
	}
	return cat
}

func planningServices(b *testing.B, n, cachedResults int) (*rls.RLS, *tcat.Catalog) {
	b.Helper()
	r := rls.New()
	for i := 0; i < n; i++ {
		lfn := fmt.Sprintf("g%d.fit", i)
		if err := r.Register(lfn, rls.PFN{Site: "archive", URL: gridftp.URL("archive", lfn)}); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < cachedResults; i++ {
		lfn := fmt.Sprintf("g%d.txt", i)
		if err := r.Register(lfn, rls.PFN{Site: "usc", URL: gridftp.URL("usc", lfn)}); err != nil {
			b.Fatal(err)
		}
	}
	tc := tcat.New()
	for _, site := range []string{"usc", "wisc", "fnal"} {
		_ = tc.Add(tcat.Entry{Transformation: "galMorph", Site: site, Path: "/nvo/galMorph"})
		_ = tc.Add(tcat.Entry{Transformation: "concat", Site: site, Path: "/nvo/concat"})
	}
	return r, tc
}

// BenchmarkFigure1Compose measures Chimera's abstract-workflow composition
// at the paper's largest cluster size.
func BenchmarkFigure1Compose(b *testing.B) {
	cat := galaxyVDL(b, 561)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wf, err := chimera.Compose(cat, chimera.Request{LFNs: []string{"out.vot"}})
		if err != nil || wf.Graph.Len() != 562 {
			b.Fatalf("wf=%v err=%v", wf, err)
		}
	}
}

// BenchmarkFigure4Plan measures the full Pegasus pipeline: reduction,
// feasibility, site selection, transfer/register insertion.
func BenchmarkFigure4Plan(b *testing.B) {
	cat := galaxyVDL(b, 561)
	wf, err := chimera.Compose(cat, chimera.Request{LFNs: []string{"out.vot"}})
	if err != nil {
		b.Fatal(err)
	}
	r, tc := planningServices(b, 561, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := pegasus.Map(wf, pegasus.Config{
			RLS: r, TC: tc, Rand: rand.New(rand.NewSource(int64(i))),
			OutputSite: "stsci", RegisterOutputs: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if st := p.Stats(); st.ComputeJobs != 562 {
			b.Fatalf("stats=%+v", st)
		}
	}
}

// --- E3: Figure 2 — end-to-end plan+execute pipeline ------------------------

// BenchmarkFigure2PlanAndExecute runs compose -> plan -> DAGMan/Condor
// execution (with no-op job bodies) for one 561-galaxy cluster: the control
// path of the whole Figure 2 diagram.
func BenchmarkFigure2PlanAndExecute(b *testing.B) {
	cat := galaxyVDL(b, 561)
	wf, err := chimera.Compose(cat, chimera.Request{LFNs: []string{"out.vot"}})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		r, tc := planningServices(b, 561, 0)
		b.StartTimer()
		p, err := pegasus.Map(wf, pegasus.Config{
			RLS: r, TC: tc, Rand: rand.New(rand.NewSource(int64(i))),
		})
		if err != nil {
			b.Fatal(err)
		}
		sim, err := condor.NewSimulator(core.DefaultPools()...)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := dagman.Execute(p.Concrete, func(n *dagNode, attempt int) (dagman.Spec, error) {
			return dagman.Spec{Cost: 4 * time.Second}, nil
		}, sim, dagman.Options{})
		if err != nil || !rep.Succeeded() {
			b.Fatalf("rep=%+v err=%v", rep, err)
		}
	}
}

// --- E4/E5: Figures 5 & 6 — portal flow and web service ---------------------

// BenchmarkFigure5PortalAnalyze measures the complete user-visible analysis
// of a small cluster, including image rendering and morphology measurement.
func BenchmarkFigure5PortalAnalyze(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tb := newBenchTestbed(b, 25, 0)
		b.StartTimer()
		if _, err := tb.Portal.Analyze("BENCH"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6CachedRequest measures the web service answering a repeat
// request purely from the RLS (Figure 6 step 2) — the virtual-data payoff.
func BenchmarkFigure6CachedRequest(b *testing.B) {
	tb := newBenchTestbed(b, 25, 0)
	cat, err := tb.Portal.BuildCatalog("BENCH")
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := tb.Compute.Compute(cat, "BENCH"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, stats, err := tb.Compute.Compute(cat, "BENCH")
		if err != nil || !stats.ReusedOutput {
			b.Fatalf("stats=%+v err=%v", stats, err)
		}
	}
}

// --- E6: Figure 7 — the science payload -------------------------------------

// BenchmarkFigure7Morphology measures one galMorph computation on a typical
// rendered cutout.
func BenchmarkFigure7Morphology(b *testing.B) {
	cl := skysim.Generate(skysim.Spec{Name: "M", NumGalaxies: 10, Seed: 3, Redshift: 0.03})
	im := skysim.RenderGalaxy(cl.Galaxies[0], 0, 1)
	cfg := morphology.DefaultConfig(0.03)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := morphology.Measure(im, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E7: §5 campaign ---------------------------------------------------------

// BenchmarkCampaignCluster runs one mid-size cluster (the paper's per-cluster
// unit of work) end to end through the Grid.
func BenchmarkCampaignCluster(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tb := newBenchTestbed(b, 112, 0) // A0754's galaxy count
		b.StartTimer()
		run, err := core.RunCluster(tb, "BENCH")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(run.ComputeJobs), "jobs")
		b.ReportMetric(float64(run.FilesStaged), "transfers")
		b.ReportMetric(float64(run.BytesStaged), "bytes_staged")
		b.ReportMetric(run.Makespan.Seconds(), "model_makespan_s")
	}
}

// --- A1: reduction ablation ---------------------------------------------------

// BenchmarkAblationReduction compares planning+execution with half the
// per-galaxy products cached, reduction on vs off. The jobs metric shows the
// work the virtual-data reuse removes.
func BenchmarkAblationReduction(b *testing.B) {
	const n = 200
	for _, mode := range []struct {
		name     string
		noReduce bool
	}{{"reduce", false}, {"noreduce", true}} {
		b.Run(mode.name, func(b *testing.B) {
			// The final table is not cached, but half the per-galaxy
			// results are.
			cat := galaxyVDL(b, n)
			wf, err := chimera.Compose(cat, chimera.Request{LFNs: []string{"out.vot"}})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var jobs, makespan float64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				r, tc := planningServices(b, n, n/2)
				b.StartTimer()
				p, err := pegasus.Map(wf, pegasus.Config{
					RLS: r, TC: tc, NoReduce: mode.noReduce,
					Rand: rand.New(rand.NewSource(int64(i))),
				})
				if err != nil {
					b.Fatal(err)
				}
				sim, err := condor.NewSimulator(core.DefaultPools()...)
				if err != nil {
					b.Fatal(err)
				}
				rep, err := dagman.Execute(p.Concrete, func(nd *dagNode, attempt int) (dagman.Spec, error) {
					if nd.Type == pegasus.NodeCompute {
						return dagman.Spec{Cost: 4 * time.Second}, nil
					}
					return dagman.Spec{Cost: 200 * time.Millisecond}, nil
				}, sim, dagman.Options{})
				if err != nil || !rep.Succeeded() {
					b.Fatalf("rep=%+v err=%v", rep, err)
				}
				jobs += float64(p.Stats().ComputeJobs)
				makespan += rep.Makespan.Seconds()
			}
			b.ReportMetric(jobs/float64(b.N), "jobs")
			b.ReportMetric(makespan/float64(b.N), "model_makespan_s")
		})
	}
}

// --- A2: data-caching ablation -----------------------------------------------

// BenchmarkAblationCaching contrasts the first (SIA-fetch) and second
// (GridFTP-cache) requests for the same cluster under a fresh service.
func BenchmarkAblationCaching(b *testing.B) {
	b.Run("cold_sia", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			tb := newBenchTestbed(b, 20, 0)
			cat, err := tb.Portal.BuildCatalog("BENCH")
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, _, err := tb.Compute.Compute(cat, "BENCH"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm_gridftp", func(b *testing.B) {
		tb := newBenchTestbed(b, 20, 0)
		cat, err := tb.Portal.BuildCatalog("BENCH")
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := tb.Compute.Compute(cat, "BENCH"); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Distinct cluster names defeat the whole-output cache but the
			// per-image and per-result caches stay hot.
			_, stats, err := tb.Compute.Compute(cat, fmt.Sprintf("BENCH%d", i))
			if err != nil || stats.ImagesFetched != 0 {
				b.Fatalf("stats=%+v err=%v", stats, err)
			}
		}
	})
}

// --- A3: site-selection ablation ----------------------------------------------

// BenchmarkAblationSiteSelection compares makespans under random vs
// least-loaded placement on pools of very different sizes.
func BenchmarkAblationSiteSelection(b *testing.B) {
	const n = 300
	pools := []condor.Pool{
		{Name: "big", Slots: 48},
		{Name: "small", Slots: 4},
	}
	for _, mode := range []struct {
		name string
		sel  pegasus.SiteSelection
	}{{"random", pegasus.SelectRandom}, {"leastloaded", pegasus.SelectLeastLoaded}} {
		b.Run(mode.name, func(b *testing.B) {
			cat := galaxyVDL(b, n)
			wf, err := chimera.Compose(cat, chimera.Request{LFNs: []string{"out.vot"}})
			if err != nil {
				b.Fatal(err)
			}
			var makespan float64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				r := rls.New()
				for j := 0; j < n; j++ {
					lfn := fmt.Sprintf("g%d.fit", j)
					_ = r.Register(lfn, rls.PFN{Site: "archive", URL: gridftp.URL("archive", lfn)})
				}
				tc := tcat.New()
				m := mds.New()
				for _, pl := range pools {
					_ = tc.Add(tcat.Entry{Transformation: "galMorph", Site: pl.Name, Path: "/x"})
					_ = tc.Add(tcat.Entry{Transformation: "concat", Site: pl.Name, Path: "/x"})
					_ = m.Register(mds.SiteInfo{Name: pl.Name, Slots: pl.Slots})
				}
				b.StartTimer()
				p, err := pegasus.Map(wf, pegasus.Config{
					RLS: r, TC: tc, MDS: m, Selection: mode.sel,
					Rand: rand.New(rand.NewSource(int64(i))),
				})
				if err != nil {
					b.Fatal(err)
				}
				sim, err := condor.NewSimulator(pools...)
				if err != nil {
					b.Fatal(err)
				}
				rep, err := dagman.Execute(p.Concrete, func(nd *dagNode, attempt int) (dagman.Spec, error) {
					site := nd.Attr(pegasus.AttrSite)
					if nd.Type == pegasus.NodeCompute {
						return dagman.Spec{Site: site, Cost: 4 * time.Second}, nil
					}
					return dagman.Spec{Cost: 100 * time.Millisecond}, nil
				}, sim, dagman.Options{})
				if err != nil || !rep.Succeeded() {
					b.Fatalf("rep=%+v err=%v", rep, err)
				}
				makespan += rep.Makespan.Seconds()
			}
			b.ReportMetric(makespan/float64(b.N), "model_makespan_s")
		})
	}
}

// --- A4: fault-tolerance ablation ----------------------------------------------

// BenchmarkAblationFaults measures a faulty cluster run under the paper's
// validity-flag design (the strict alternative fails outright, so only the
// adopted design is benchmarkable end to end; TestStrictFaultsAblation covers
// the contrast).
func BenchmarkAblationFaults(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tb := newBenchTestbed(b, 30, 0.1)
		b.StartTimer()
		run, err := core.RunCluster(tb, "BENCH")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(run.InvalidRows), "invalid_rows")
	}
}

// --- helpers -----------------------------------------------------------------

// dagNode aliases the workflow node type for the inline runners above.
type dagNode = dag.Node

func newBenchTestbed(b *testing.B, galaxies int, failureRate float64) *core.Testbed {
	return newBenchTestbedWorkers(b, galaxies, failureRate, 0)
}

func newBenchTestbedWorkers(b *testing.B, galaxies int, failureRate float64, workers int) *core.Testbed {
	b.Helper()
	tb, err := core.NewTestbed(core.Config{
		ClusterSpecs: []skysim.Spec{{
			Name: "BENCH", Center: wcs.New(150, 2), Redshift: 0.04,
			NumGalaxies: galaxies, Seed: 77,
		}},
		Seed:        5,
		FailureRate: failureRate,
		Workers:     workers,
	})
	if err != nil {
		b.Fatal(err)
	}
	return tb
}

// --- P1: parallel leaf-job execution -------------------------------------------

// BenchmarkParallelLeafJobs measures one cluster's compute request as the
// side-effect worker pool widens. The discrete-event clock and the science
// output are identical at every width (TestParallelWorkersProduceByteIdentical-
// Tables); only wall-clock changes, and only when real cores exist —
// single-CPU machines serialize the workers.
func BenchmarkParallelLeafJobs(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				tb := newBenchTestbedWorkers(b, 60, 0, w)
				cat, err := tb.Portal.BuildCatalog("BENCH")
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, _, err := tb.Compute.Compute(cat, "BENCH"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- P2: virtual-data memoization ----------------------------------------------

// BenchmarkWarmCacheRequest contrasts a cold compute request with a repeat
// request whose derived result files have been reclaimed: the galMorph nodes
// all re-run, but every measurement is served from the content-keyed
// derived-data cache instead of being recomputed.
func BenchmarkWarmCacheRequest(b *testing.B) {
	const galaxies = 40
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			tb := newBenchTestbed(b, galaxies, 0)
			cat, err := tb.Portal.BuildCatalog("BENCH")
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, _, err := tb.Compute.Compute(cat, "BENCH"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm_memoized", func(b *testing.B) {
		tb := newBenchTestbed(b, galaxies, 0)
		cat, err := tb.Portal.BuildCatalog("BENCH")
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := tb.Compute.Compute(cat, "BENCH"); err != nil {
			b.Fatal(err)
		}
		evict := func() {
			for i := 0; i < cat.NumRows(); i++ {
				lfn := cat.Cell(i, "id") + ".txt"
				for _, pfn := range tb.RLS.Lookup(lfn) {
					_ = tb.RLS.Unregister(lfn, pfn)
					if site, path, err := gridftp.ParseURL(pfn.URL); err == nil {
						_ = tb.FTP.Store(site).Delete(path)
					}
				}
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			evict()
			b.StartTimer()
			_, stats, err := tb.Compute.Compute(cat, fmt.Sprintf("BENCH-W%d", i))
			if err != nil || stats.MemoHits != galaxies || stats.MemoMisses != 0 {
				b.Fatalf("stats=%+v err=%v", stats, err)
			}
		}
	})
}

// --- A5: pool-scaling ablation ------------------------------------------------

// BenchmarkPoolScaling measures the campaign's largest workflow's makespan
// as Condor pools are added — the capacity argument for the paper's
// three-pool deployment.
func BenchmarkPoolScaling(b *testing.B) {
	configs := []struct {
		name  string
		pools []condor.Pool
	}{
		{"usc20", []condor.Pool{{Name: "usc", Slots: 20}}},
		{"usc20_wisc30", []condor.Pool{{Name: "usc", Slots: 20}, {Name: "wisc", Slots: 30}}},
		{"usc20_wisc30_fnal20", core.DefaultPools()},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			var makespan float64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g := dag.New()
				if err := g.AddNode(&dag.Node{ID: "concat", Type: "compute"}); err != nil {
					b.Fatal(err)
				}
				for j := 0; j < 561; j++ {
					id := fmt.Sprintf("m%d", j)
					_ = g.AddNode(&dag.Node{ID: id, Type: "compute"})
					_ = g.AddEdge(id, "concat")
				}
				sim, err := condor.NewSimulator(cfg.pools...)
				if err != nil {
					b.Fatal(err)
				}
				rep, err := dagman.Execute(g, func(n *dagNode, attempt int) (dagman.Spec, error) {
					return dagman.Spec{Cost: 4 * time.Second}, nil
				}, sim, dagman.Options{})
				if err != nil || !rep.Succeeded() {
					b.Fatalf("rep=%+v err=%v", rep, err)
				}
				makespan += rep.Makespan.Seconds()
			}
			b.ReportMetric(makespan/float64(b.N), "model_makespan_s")
		})
	}
}

// --- A6: batched-cutout ablation ------------------------------------------------

// BenchmarkAblationBatchSIA contrasts the paper's one-request-per-galaxy SIA
// image collection with the batched cutout interface it proposes ("sped up
// tremendously if one could query for all images at once"). Measures the
// image-collection phase only (outputs cached per iteration name).
func BenchmarkAblationBatchSIA(b *testing.B) {
	for _, mode := range []struct {
		name  string
		batch bool
	}{{"per_galaxy", false}, {"batched", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				tb, err := core.NewTestbed(core.Config{
					ClusterSpecs: []skysim.Spec{{
						Name: "BENCH", Center: wcs.New(150, 2), Redshift: 0.04,
						NumGalaxies: 60, Seed: 77,
					}},
					Seed:       5,
					BatchFetch: mode.batch,
				})
				if err != nil {
					b.Fatal(err)
				}
				cat, err := tb.Portal.BuildCatalog("BENCH")
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				_, stats, err := tb.Compute.Compute(cat, "BENCH")
				if err != nil || stats.ImagesFetched != 60 {
					b.Fatalf("stats=%+v err=%v", stats, err)
				}
				b.ReportMetric(float64(stats.SIARequests), "sia_requests")
				b.ReportMetric(stats.SIAModelTime.Seconds(), "sia_model_s")
			}
		})
	}
}
