// Command nvolint statically enforces the repo's determinism, clock
// and resource-hygiene invariants — the properties the byte-identity
// and crash-recovery campaigns (PRs 1–4) otherwise only probe
// dynamically. It runs seven analyzers (noclock, seededrand, mapiter,
// sharedclient, errclose, fabricpool, hotalloc; see `nvolint -h` or the
// README's "Static analysis" section) over package patterns:
//
//	nvolint ./...                               # standalone
//	go vet -vettool=$(command -v nvolint) ./... # as a vet tool
//
// Findings can be silenced only by an inline directive carrying a
// written reason:
//
//	//nvolint:ignore <analyzer> <reason>
//
// A reasonless directive suppresses nothing and is itself a finding.
package main

import (
	"os"

	"repro/internal/analyze/driver"
	"repro/internal/analyze/suite"
)

func main() {
	os.Exit(driver.Main(suite.Analyzers()))
}
