// Command nvolint statically enforces the repo's determinism, clock,
// resource-hygiene and concurrency invariants — the properties the
// byte-identity and crash-recovery campaigns (PRs 1–4) otherwise only
// probe dynamically. It runs eleven analyzers: seven AST-shaped checks
// (noclock, seededrand, mapiter, sharedclient, errclose, fabricpool,
// hotalloc) plus four flow-sensitive ones built on the CFG/dataflow
// engine (lockpath, goleak, selectrevoke, errpath); see `nvolint -h`
// or the README's "Static analysis" section. Patterns:
//
//	nvolint ./...                               # standalone
//	nvolint -v -budget 120s ./...               # per-analyzer wall time + latency gate
//	go vet -vettool=$(command -v nvolint) ./... # as a vet tool
//
// Findings can be silenced only by an inline directive carrying a
// written reason:
//
//	//nvolint:ignore <analyzer> <reason>
//
// A reasonless directive suppresses nothing and is itself a finding.
// An optional `until=PR<N>` token at the start of the reason marks the
// suppression for expiry: `nvolint -pr <current>` reports (without
// failing) any directive whose PR number has passed.
package main

import (
	"os"

	"repro/internal/analyze/driver"
	"repro/internal/analyze/suite"
)

func main() {
	os.Exit(driver.Main(suite.Analyzers()))
}
