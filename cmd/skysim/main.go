// Command skysim generates a synthetic galaxy cluster and writes the data
// products a real archive would hold: the member catalog as a VOTable, the
// optical and X-ray large-scale FITS images, and (optionally) every galaxy's
// FITS cutout.
//
//	skysim -name COMA -n 200 -out ./coma -cutouts
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/catalog"
	"repro/internal/fits"
	"repro/internal/skysim"
	"repro/internal/votable"
	"repro/internal/wcs"
)

func main() {
	name := flag.String("name", "COMA", "cluster name")
	n := flag.Int("n", 200, "number of member galaxies")
	ra := flag.Float64("ra", 194.95, "cluster center RA, deg")
	dec := flag.Float64("dec", 27.98, "cluster center Dec, deg")
	z := flag.Float64("z", 0.023, "cluster redshift")
	seed := flag.Int64("seed", 1, "generation seed")
	out := flag.String("out", ".", "output directory")
	cutouts := flag.Bool("cutouts", false, "also write per-galaxy cutout FITS files")
	pageSize := flag.Int("page-size", 0, "also write the catalog as page files of at most this many rows (0 = single file only)")
	flag.Parse()

	cl := skysim.Generate(skysim.Spec{
		Name: *name, Center: wcs.New(*ra, *dec), Redshift: *z,
		NumGalaxies: *n, Seed: *seed,
	})

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	// Catalog.
	catPath := filepath.Join(*out, *name+".vot")
	f, err := os.Create(catPath)
	if err != nil {
		fatal(err)
	}
	// Stream the catalog row by row: survey-scale clusters never hold a
	// full VOTable (or a second copy of the record slice) in memory.
	cat := cl.Catalog()
	enc := votable.NewEncoder(f)
	if err := enc.BeginDocument(""); err != nil {
		fatal(err)
	}
	if err := enc.BeginResource(cat.Name()); err != nil {
		fatal(err)
	}
	if err := enc.BeginTable(cat.TableMeta()); err != nil {
		fatal(err)
	}
	var row []string
	cat.Visit(func(r catalog.Record) bool {
		row = cat.AppendRowCells(row[:0], r)
		return enc.Row(row) == nil
	})
	if err := enc.EndTable(); err != nil {
		fatal(err)
	}
	if err := enc.EndResource(); err != nil {
		fatal(err)
	}
	if err := enc.End(); err != nil {
		fatal(err)
	}
	f.Close()
	fmt.Printf("wrote %s (%d galaxies)\n", catPath, len(cl.Galaxies))

	// Paged catalog: the MAXREC/OFFSET paging protocol's on-disk shape —
	// each page is a complete, independently parseable VOTable of at most
	// page-size rows, so a survey-scale catalog can be served (or staged)
	// page-at-a-time without the archive ever building the full table.
	if *pageSize > 0 {
		pages, err := writePagedCatalog(cat, *out, *name, *pageSize)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d catalog pages of <=%d rows under %s\n", pages, *pageSize, *out)
	}

	// Large-scale images.
	const npix = 512
	scale := 2 * 8 * cl.CoreRadiusDeg / npix
	for _, pair := range []struct {
		path string
		im   *fits.Image
	}{
		{filepath.Join(*out, *name+"_optical.fit"), skysim.RenderField(cl, npix, npix, scale, *seed+1)},
		{filepath.Join(*out, *name+"_xray.fit"), skysim.RenderXRay(cl, npix, npix, scale, *seed+2)},
	} {
		f, err := os.Create(pair.path)
		if err != nil {
			fatal(err)
		}
		if err := pair.im.Encode(f); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Printf("wrote %s\n", pair.path)
	}

	if *cutouts {
		dir := filepath.Join(*out, "cutouts")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatal(err)
		}
		for i, g := range cl.Galaxies {
			im := skysim.RenderGalaxy(g, 0, *seed+int64(100+i))
			p := filepath.Join(dir, g.ID+".fit")
			f, err := os.Create(p)
			if err != nil {
				fatal(err)
			}
			if err := im.Encode(f); err != nil {
				fatal(err)
			}
			f.Close()
		}
		fmt.Printf("wrote %d cutouts under %s\n", len(cl.Galaxies), dir)
	}

	// Ground-truth summary: the Dressler relation baked into the sky.
	mids, fracs := cl.EllipticalFractionByRadius(4, 8*cl.CoreRadiusDeg)
	fmt.Println("\nground truth early-type fraction by radius (core radii):")
	for i := range mids {
		fmt.Printf("  r=%5.2f rc  f(E+S0)=%.2f\n", mids[i], fracs[i])
	}
}

// writePagedCatalog streams the catalog into NAME.pageNNNN.vot files of at
// most pageSize rows each, one encoder open at a time, and returns how many
// pages it wrote. Memory stays bounded by one row regardless of survey size.
func writePagedCatalog(cat *catalog.Catalog, dir, name string, pageSize int) (int, error) {
	var (
		f     *os.File
		enc   *votable.Encoder
		page  int
		inPg  int
		visit error
	)
	closePage := func() error {
		if enc == nil {
			return nil
		}
		for _, fn := range []func() error{enc.EndTable, enc.EndResource, enc.End, f.Close} {
			if err := fn(); err != nil {
				return err
			}
		}
		enc, f = nil, nil
		return nil
	}
	openPage := func() error {
		path := filepath.Join(dir, fmt.Sprintf("%s.page%04d.vot", name, page))
		var err error
		if f, err = os.Create(path); err != nil {
			return err
		}
		enc = votable.NewEncoder(f)
		for _, fn := range []func() error{
			func() error { return enc.BeginDocument("") },
			func() error { return enc.BeginResource(cat.Name()) },
			func() error { return enc.BeginTable(cat.TableMeta()) },
		} {
			if err := fn(); err != nil {
				return err
			}
		}
		return nil
	}
	var row []string
	cat.Visit(func(r catalog.Record) bool {
		if enc == nil || inPg >= pageSize {
			if err := closePage(); err != nil {
				visit = err
				return false
			}
			if enc == nil && inPg > 0 {
				page++
			}
			if err := openPage(); err != nil {
				visit = err
				return false
			}
			inPg = 0
		}
		row = cat.AppendRowCells(row[:0], r)
		if err := enc.Row(row); err != nil {
			visit = err
			return false
		}
		inPg++
		return true
	})
	if visit != nil {
		return 0, visit
	}
	if err := closePage(); err != nil {
		return 0, err
	}
	return page + 1, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "skysim:", err)
	os.Exit(1)
}
