// Command skysim generates a synthetic galaxy cluster and writes the data
// products a real archive would hold: the member catalog as a VOTable, the
// optical and X-ray large-scale FITS images, and (optionally) every galaxy's
// FITS cutout.
//
//	skysim -name COMA -n 200 -out ./coma -cutouts
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/catalog"
	"repro/internal/fits"
	"repro/internal/skysim"
	"repro/internal/votable"
	"repro/internal/wcs"
)

func main() {
	name := flag.String("name", "COMA", "cluster name")
	n := flag.Int("n", 200, "number of member galaxies")
	ra := flag.Float64("ra", 194.95, "cluster center RA, deg")
	dec := flag.Float64("dec", 27.98, "cluster center Dec, deg")
	z := flag.Float64("z", 0.023, "cluster redshift")
	seed := flag.Int64("seed", 1, "generation seed")
	out := flag.String("out", ".", "output directory")
	cutouts := flag.Bool("cutouts", false, "also write per-galaxy cutout FITS files")
	flag.Parse()

	cl := skysim.Generate(skysim.Spec{
		Name: *name, Center: wcs.New(*ra, *dec), Redshift: *z,
		NumGalaxies: *n, Seed: *seed,
	})

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	// Catalog.
	catPath := filepath.Join(*out, *name+".vot")
	f, err := os.Create(catPath)
	if err != nil {
		fatal(err)
	}
	// Stream the catalog row by row: survey-scale clusters never hold a
	// full VOTable (or a second copy of the record slice) in memory.
	cat := cl.Catalog()
	enc := votable.NewEncoder(f)
	if err := enc.BeginDocument(""); err != nil {
		fatal(err)
	}
	if err := enc.BeginResource(cat.Name()); err != nil {
		fatal(err)
	}
	if err := enc.BeginTable(cat.TableMeta()); err != nil {
		fatal(err)
	}
	var row []string
	cat.Visit(func(r catalog.Record) bool {
		row = cat.AppendRowCells(row[:0], r)
		return enc.Row(row) == nil
	})
	if err := enc.EndTable(); err != nil {
		fatal(err)
	}
	if err := enc.EndResource(); err != nil {
		fatal(err)
	}
	if err := enc.End(); err != nil {
		fatal(err)
	}
	f.Close()
	fmt.Printf("wrote %s (%d galaxies)\n", catPath, len(cl.Galaxies))

	// Large-scale images.
	const npix = 512
	scale := 2 * 8 * cl.CoreRadiusDeg / npix
	for _, pair := range []struct {
		path string
		im   *fits.Image
	}{
		{filepath.Join(*out, *name+"_optical.fit"), skysim.RenderField(cl, npix, npix, scale, *seed+1)},
		{filepath.Join(*out, *name+"_xray.fit"), skysim.RenderXRay(cl, npix, npix, scale, *seed+2)},
	} {
		f, err := os.Create(pair.path)
		if err != nil {
			fatal(err)
		}
		if err := pair.im.Encode(f); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Printf("wrote %s\n", pair.path)
	}

	if *cutouts {
		dir := filepath.Join(*out, "cutouts")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatal(err)
		}
		for i, g := range cl.Galaxies {
			im := skysim.RenderGalaxy(g, 0, *seed+int64(100+i))
			p := filepath.Join(dir, g.ID+".fit")
			f, err := os.Create(p)
			if err != nil {
				fatal(err)
			}
			if err := im.Encode(f); err != nil {
				fatal(err)
			}
			f.Close()
		}
		fmt.Printf("wrote %d cutouts under %s\n", len(cl.Galaxies), dir)
	}

	// Ground-truth summary: the Dressler relation baked into the sky.
	mids, fracs := cl.EllipticalFractionByRadius(4, 8*cl.CoreRadiusDeg)
	fmt.Println("\nground truth early-type fraction by radius (core radii):")
	for i := range mids {
		fmt.Printf("  r=%5.2f rc  f(E+S0)=%.2f\n", mids[i], fracs[i])
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "skysim:", err)
	os.Exit(1)
}
