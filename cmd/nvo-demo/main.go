// Command nvo-demo reproduces the paper's experiments from the command
// line:
//
//	nvo-demo -table1              print Table 1 (data collections & interfaces)
//	nvo-demo -campaign            run the §5 eight-cluster campaign and print
//	                              the paper-vs-measured accounting
//	nvo-demo -figure7 COMA        run one cluster and draw the Figure 7 sky
//	                              map plus the Dressler radial bins
//	nvo-demo -scale 0.25          scale the campaign's galaxy counts
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/fits"
	"repro/internal/services"
	"repro/internal/skysim"
	"repro/internal/visual"
)

func main() {
	table1 := flag.Bool("table1", false, "print the paper's Table 1 registry")
	campaign := flag.Bool("campaign", false, "run the §5 eight-cluster campaign")
	figure7 := flag.String("figure7", "", "analyze one cluster and draw the Figure 7 map")
	scale := flag.Float64("scale", 1.0, "scale factor on per-cluster galaxy counts")
	workers := flag.Int("workers", 1, "analyze clusters concurrently with this many workers")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	if !*table1 && !*campaign && *figure7 == "" {
		flag.Usage()
		os.Exit(2)
	}

	if *table1 {
		fmt.Println("Table 1: Data and Interfaces used by the Galaxy Morphology Application")
		fmt.Printf("%-60s %-45s %s\n", "Data Center", "Data Collection", "Interfaces")
		for _, e := range services.Table1() {
			ifaces := ""
			for i, s := range e.Interfaces {
				if i > 0 {
					ifaces += ", "
				}
				ifaces += s
			}
			fmt.Printf("%-60s %-45s %s\n", e.DataCenter, e.Collection, ifaces)
		}
		fmt.Println()
	}

	if !*campaign && *figure7 == "" {
		return
	}

	specs := skysim.StandardClusters()
	for i := range specs {
		specs[i].Seed += *seed
		n := int(float64(specs[i].NumGalaxies) * *scale)
		if n < 3 {
			n = 3
		}
		specs[i].NumGalaxies = n
	}
	tb, err := core.NewTestbed(core.Config{ClusterSpecs: specs, Seed: *seed})
	check(err)

	if *campaign {
		fmt.Printf("Running the §5 campaign (8 clusters, 3 Condor pools, %d workers)...\n", *workers)
		report, err := core.RunCampaignParallel(tb, *workers)
		check(err)
		fmt.Println(report.Format())
	}

	if *figure7 != "" {
		cl, err := tb.Cluster(*figure7)
		check(err)
		run, err := core.RunCluster(tb, *figure7)
		check(err)

		// The full Figure 7 composition: X-ray surface brightness under
		// the measured galaxy morphologies.
		xrayBytes, err := tb.MAST.FieldFITS(*figure7, services.BandXRay)
		check(err)
		xray, err := fits.Decode(bytes.NewReader(xrayBytes))
		check(err)
		m, err := visual.SkyMapOverlay(xray, run.Table, cl.Center, 8*cl.CoreRadiusDeg, 72, 28)
		check(err)
		fmt.Println(m)

		bins, err := core.DresslerBins(run.Table, cl.Center, 4)
		check(err)
		fmt.Println("Dressler radial bins (equal-count):")
		fmt.Printf("%10s %6s %10s %10s %12s\n", "r(deg)", "N", "mean A", "mean C", "early frac")
		for _, b := range bins {
			fmt.Printf("%10.4f %6d %10.4f %10.3f %12.2f\n",
				b.MidRadiusDeg, b.N, b.MeanAsymmetry, b.MeanConcentration, b.EarlyFraction)
		}
		denBins, err := core.DresslerDensityBins(run.Table, cl.Center, 4)
		check(err)
		fmt.Println("\nDressler morphology-density bins (equal-count, ascending density):")
		fmt.Printf("%14s %6s %10s %12s\n", "Σ5(gal/deg²)", "N", "mean A", "early frac")
		for _, b := range denBins {
			fmt.Printf("%14.0f %6d %10.4f %12.2f\n",
				b.MeanDensity, b.N, b.MeanAsymmetry, b.EarlyFraction)
		}

		denRho, _, err := core.AsymmetryDensityCorrelation(run.Table, cl.Center)
		check(err)
		fmt.Printf("\nSpearman(asymmetry, radius)  = %+.3f\n", run.AsymmetryRadiusRho)
		fmt.Printf("Spearman(asymmetry, density) = %+.3f over %d galaxies\n",
			denRho, run.Galaxies-run.InvalidRows)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "nvo-demo:", err)
		os.Exit(1)
	}
}
