// Command pegasus-plan maps an abstract workflow onto the Grid, standalone:
// given a VDL derivation file, a transformation catalog, a replica list and
// a requested logical file, it runs Chimera's composition and Pegasus's
// reduction/concretization and writes the DAGMan .dag file plus Condor-G
// submit files — the paper's Figure 2 pipeline as a command-line tool.
//
//	pegasus-plan -vdl wf.vdl -tc tc.txt -replicas rc.txt -request cluster.vot \
//	             -output-site stsci -register -out ./plan
//
// The replica file holds one "lfn site url" triple per line.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/chimera"
	"repro/internal/pegasus"
	"repro/internal/rls"
	"repro/internal/tcat"
	"repro/internal/vdl"
)

func main() {
	vdlPath := flag.String("vdl", "", "VDL file with TR and DV statements (required)")
	tcPath := flag.String("tc", "", "transformation catalog file (required)")
	rcPath := flag.String("replicas", "", "replica list file: lines of 'lfn site url'")
	request := flag.String("request", "", "comma-separated logical files to materialize (required)")
	outputSite := flag.String("output-site", "", "deliver requested outputs to this site")
	register := flag.Bool("register", false, "add RLS registration nodes")
	noReduce := flag.Bool("no-reduce", false, "disable abstract-DAG reduction")
	policy := flag.String("site-selection", "random", "random | roundrobin | locality")
	seed := flag.Int64("seed", 1, "random site/replica selection seed")
	out := flag.String("out", "plan", "output directory for .dag and submit files")
	flag.Parse()

	if *vdlPath == "" || *tcPath == "" || *request == "" {
		flag.Usage()
		os.Exit(2)
	}

	vdlText, err := os.ReadFile(*vdlPath)
	check(err)
	cat, err := vdl.Parse(string(vdlText))
	check(err)

	tcFile, err := os.Open(*tcPath)
	check(err)
	tc, err := tcat.Read(tcFile)
	tcFile.Close()
	check(err)

	r := rls.New()
	if *rcPath != "" {
		rcFile, err := os.Open(*rcPath)
		check(err)
		err = rls.ReadReplicas(r, rcFile)
		rcFile.Close()
		check(err)
	}

	wf, err := chimera.Compose(cat, chimera.Request{LFNs: strings.Split(*request, ",")})
	check(err)
	fmt.Printf("abstract workflow: %d jobs, %d raw inputs, %d intermediates\n",
		wf.Graph.Len(), len(wf.RawInputs), len(wf.Intermediate))

	cfg := pegasus.Config{
		RLS:             r,
		TC:              tc,
		Rand:            rand.New(rand.NewSource(*seed)),
		NoReduce:        *noReduce,
		OutputSite:      *outputSite,
		RegisterOutputs: *register,
	}
	switch *policy {
	case "roundrobin":
		cfg.Selection = pegasus.SelectRoundRobin
	case "locality":
		cfg.Selection = pegasus.SelectLocality
	}
	plan, err := pegasus.Map(wf, cfg)
	check(err)

	st := plan.Stats()
	fmt.Printf("reduced: pruned %d jobs (reused %d files)\n", st.PrunedJobs, len(plan.ReusedLFNs))
	fmt.Printf("concrete workflow: %d compute, %d transfer, %d register nodes\n",
		st.ComputeJobs, st.TransferNodes, st.RegisterNodes)
	fmt.Printf("planner cost: %d RLS round trip(s), est %d bytes moved\n",
		plan.RLSRoundTrips, plan.EstBytesMoved)
	for _, id := range plan.Reduced.Nodes() {
		fmt.Printf("  %-30s -> %s\n", id, plan.SiteOf[id])
	}

	check(os.MkdirAll(*out, 0o755))
	dagPath := filepath.Join(*out, "workflow.dag")
	check(os.WriteFile(dagPath, []byte(plan.DAGFile("workflow")), 0o644))
	for _, sf := range plan.SubmitFiles() {
		check(os.WriteFile(filepath.Join(*out, sf.Node+".submit"), []byte(sf.Text), 0o644))
	}
	check(os.WriteFile(filepath.Join(*out, "workflow.dot"),
		[]byte(plan.Concrete.DOT("workflow")), 0o644))
	fmt.Printf("wrote %s, %d submit files and workflow.dot\n", dagPath, plan.Concrete.Len())
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pegasus-plan:", err)
		os.Exit(1)
	}
}
