// Command nvo-resume demonstrates the crash-safe workflow recovery stack:
// it runs one cluster's morphology workflow with the write-ahead journal on,
// kills the run at a chosen journal-event boundary (or sweeps every
// boundary), restarts the service, resumes from the journal, and verifies
// that the recovered output VOTable is byte-identical to the uninterrupted
// run's while only the unfinished nodes re-executed.
//
//	nvo-resume -cluster COMA                   kill once mid-run, resume, verify
//	nvo-resume -cluster COMA -crash-after 7    kill after exactly 7 journal events
//	nvo-resume -cluster COMA -sweep            kill at every event boundary
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/skysim"
	"repro/internal/webservice"
)

func main() {
	cluster := flag.String("cluster", "COMA", "cluster to analyze")
	crashAfter := flag.Int("crash-after", 0, "journal events before the kill (0 = mid-run)")
	sweep := flag.Bool("sweep", false, "kill at every event boundary instead of once")
	scale := flag.Float64("scale", 0.25, "scale factor on per-cluster galaxy counts")
	seed := flag.Int64("seed", 1, "simulation seed")
	workers := flag.Int("workers", 1, "leaf-job side-effect concurrency")
	flag.IntVar(&waveSize, "wave-size", 0, "survey-scale wave execution: galaxies per wave (0 = monolithic)")
	flag.IntVar(&pageSize, "page-size", 0, "paged archive queries: rows per page (0 = unpaged)")
	flag.IntVar(&priority, "priority", 0, "fabric scheduling class of the workflow submissions")
	flag.Parse()

	specs := scaledSpecs(*scale, *seed)

	// Uninterrupted reference run: its output bytes and journal length
	// calibrate the kill points.
	refBytes, events, err := baseline(specs, *seed, *workers, *cluster)
	check(err)
	fmt.Printf("baseline: %d journal events, output %d bytes\n", events, len(refBytes))

	kills := []int{*crashAfter}
	if *sweep {
		kills = kills[:0]
		for k := 1; k < events; k++ {
			kills = append(kills, k)
		}
	} else if *crashAfter <= 0 {
		kills[0] = events / 2
	}

	fmt.Printf("%12s %10s %10s %10s %10s\n", "kill point", "done", "restored", "resumed", "identical")
	for _, k := range kills {
		res, err := killAndResume(specs, *seed, *workers, *cluster, k, refBytes)
		check(err)
		fmt.Printf("%12d %10d %10d %10d %10t\n",
			k, res.doneAtCrash, res.restored, res.resubmitted, res.identical)
		if !res.identical {
			fmt.Fprintln(os.Stderr, "nvo-resume: BYTE IDENTITY VIOLATED")
			os.Exit(1)
		}
	}
	fmt.Println("every resumed run reproduced the uninterrupted output byte-for-byte")
}

func scaledSpecs(scale float64, seed int64) []skysim.Spec {
	specs := skysim.StandardClusters()
	for i := range specs {
		specs[i].Seed += seed
		n := int(float64(specs[i].NumGalaxies) * scale)
		if n < 3 {
			n = 3
		}
		specs[i].NumGalaxies = n
	}
	return specs
}

// Survey-scale and multi-tenant knobs, settable from the command line so
// kill/resume campaigns exercise the same configurations the tests do.
var (
	waveSize int
	pageSize int
	priority int
)

func newTestbed(specs []skysim.Spec, seed int64, workers int, journalDir string, crashAfter int) (*core.Testbed, error) {
	return core.NewTestbed(core.Config{
		ClusterSpecs:     specs,
		Seed:             seed,
		Workers:          workers,
		JournalDir:       journalDir,
		CrashAfterEvents: crashAfter,
		WaveSize:         waveSize,
		PageSize:         pageSize,
		Priority:         priority,
	})
}

func runCluster(tb *core.Testbed, cluster string) error {
	cat, _, err := tb.Portal.BuildCatalogReport(cluster)
	if err != nil {
		return err
	}
	_, _, err = tb.Compute.ComputeFor(context.Background(), cat, cluster,
		webservice.RequestOptions{Priority: priority}, nil)
	return err
}

func baseline(specs []skysim.Spec, seed int64, workers int, cluster string) ([]byte, int, error) {
	dir, err := os.MkdirTemp("", "nvo-journal-*")
	if err != nil {
		return nil, 0, err
	}
	defer os.RemoveAll(dir)
	tb, err := newTestbed(specs, seed, workers, dir, 0)
	if err != nil {
		return nil, 0, err
	}
	if err := runCluster(tb, cluster); err != nil {
		return nil, 0, err
	}
	out, err := tb.FTP.Store("isi").Get(cluster + ".vot")
	if err != nil {
		return nil, 0, err
	}
	recs, _, err := journal.Replay(filepath.Join(dir, cluster+".journal"))
	if err != nil {
		return nil, 0, err
	}
	return out, len(recs) - 2, nil // minus the begin and end markers
}

type killResult struct {
	doneAtCrash int
	restored    int
	resubmitted int
	identical   bool
}

func killAndResume(specs []skysim.Spec, seed int64, workers int, cluster string, k int, want []byte) (killResult, error) {
	var res killResult
	dir, err := os.MkdirTemp("", "nvo-journal-*")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)

	tb, err := newTestbed(specs, seed, workers, dir, k)
	if err != nil {
		return res, err
	}
	if err := runCluster(tb, cluster); !errors.Is(err, journal.ErrCrash) {
		return res, fmt.Errorf("kill point %d: crash did not fire (err=%v)", k, err)
	}
	recs, _, err := journal.Replay(filepath.Join(dir, cluster+".journal"))
	if err != nil {
		return res, err
	}
	res.doneAtCrash = len(journal.CompletedNodes(recs))
	prefix := len(recs)

	// The restarted process: same Grid substrate, crash switch disarmed.
	svc, err := tb.Compute.Reopen()
	if err != nil {
		return res, err
	}
	_, stats, err := svc.ResumeFor(context.Background(), cluster,
		webservice.RequestOptions{Priority: priority}, nil)
	if err != nil {
		return res, fmt.Errorf("kill point %d: resume: %w", k, err)
	}
	res.restored = stats.RestoredNodes

	after, _, err := journal.Replay(filepath.Join(dir, cluster+".journal"))
	if err != nil {
		return res, err
	}
	for _, r := range after[prefix:] {
		if r.Kind == journal.KindSubmitted {
			res.resubmitted++
		}
	}
	got, err := tb.FTP.Store("isi").Get(cluster + ".vot")
	if err != nil {
		return res, err
	}
	res.identical = string(got) == string(want)
	return res, nil
}

// check is the shared fatal-error handler of the nvo commands.
func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "nvo-resume:", err)
		os.Exit(1)
	}
}
