// Command galmorph computes the three NVO morphology parameters (average
// surface brightness, concentration index, asymmetry index) for FITS galaxy
// cutouts — the standalone equivalent of the paper's galMorph transformation:
//
//	galmorph -z 0.027886 NGP9_F323-0927589.fit [more.fit ...]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/fits"
	"repro/internal/morphology"
)

func main() {
	z := flag.Float64("z", 0, "galaxy redshift (0 = skip physical quantities)")
	zp := flag.Float64("zeropoint", 0, "photometric zero point, mag")
	pixScale := flag.Float64("pixscale", 2.831933107035062e-4, "pixel scale, deg/pixel")
	h0 := flag.Float64("H0", 100, "Hubble constant, km/s/Mpc")
	om := flag.Float64("Om", 0.3, "matter density parameter")
	flat := flag.Bool("flat", true, "flat cosmology (OmegaLambda = 1-Om)")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: galmorph [flags] image.fit [image.fit ...]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	cfg := morphology.Config{
		Redshift:    *z,
		PixScaleDeg: *pixScale,
		ZeroPoint:   *zp,
		Cosmology:   morphology.Cosmology{H0: *h0, OmegaM: *om, Flat: *flat},
	}

	fmt.Printf("%-40s %10s %8s %8s %8s %6s\n",
		"image", "SB(mag/as2)", "C", "A", "SNR", "valid")
	exit := 0
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "galmorph: %v\n", err)
			exit = 1
			continue
		}
		im, err := fits.Decode(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "galmorph: %s: %v\n", path, err)
			exit = 1
			continue
		}
		// Per-image redshift from the header overrides the flag.
		imgCfg := cfg
		if hz := im.Header.Float("REDSHIFT", 0); hz > 0 && *z == 0 {
			imgCfg.Redshift = hz
		}
		p, err := morphology.Measure(im, imgCfg)
		if err != nil {
			fmt.Printf("%-40s %10s %8s %8s %8s %6s  (%v)\n",
				path, "-", "-", "-", "-", "false", err)
			continue
		}
		fmt.Printf("%-40s %10.3f %8.3f %8.4f %8.1f %6t\n",
			path, p.SurfaceBrightness, p.Concentration, p.Asymmetry, p.SNR, p.Valid)
	}
	os.Exit(exit)
}
