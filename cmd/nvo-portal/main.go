// Command nvo-portal runs the complete NVO prototype locally: it generates
// the synthetic sky, wires the simulated archives, replica/transformation
// catalogs, GridFTP fabric and Condor pools behind the Pegasus compute web
// service, and serves the user portal's HTML interface — the whole Figure 5
// deployment in one process.
//
//	nvo-portal -addr :8080 -clusters 3 -galaxies 80
//
// Then browse http://localhost:8080/ and pick a cluster.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"repro/internal/core"
	"repro/internal/skysim"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address for the portal UI")
	nClusters := flag.Int("clusters", 2, "number of synthetic clusters (max 8)")
	galaxies := flag.Int("galaxies", 0, "override galaxies per cluster (0 = paper counts)")
	seed := flag.Int64("seed", 1, "simulation seed")
	failureRate := flag.Float64("failure-rate", 0, "injected transient job failure rate")
	discover := flag.Bool("discover", false, "portal discovers services from the resource registry")
	batch := flag.Bool("batch", false, "compute service uses the batched cutout interface")
	pageSize := flag.Int("page-size", 0, "paged archive queries: rows per page (0 = unpaged)")
	waveSize := flag.Int("wave-size", 0, "survey-scale wave execution: galaxies per wave (0 = monolithic)")
	priority := flag.Int("priority", 0, "default fabric scheduling class of portal submissions")
	flag.Parse()

	if *nClusters < 1 {
		*nClusters = 1
	}
	if *nClusters > 8 {
		*nClusters = 8
	}
	specs := skysim.StandardClusters()[:*nClusters]
	for i := range specs {
		specs[i].Seed += *seed
		if *galaxies > 0 {
			specs[i].NumGalaxies = *galaxies
		}
	}

	tb, err := core.NewTestbed(core.Config{
		ClusterSpecs:         specs,
		Seed:                 *seed,
		FailureRate:          *failureRate,
		CacheImageSearch:     true,
		UseRegistryDiscovery: *discover,
		BatchFetch:           *batch,
		PageSize:             *pageSize,
		WaveSize:             *waveSize,
		Priority:             *priority,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "nvo-portal:", err)
		os.Exit(1)
	}

	fmt.Printf("NVO Galaxy Morphology portal on http://localhost%s/\n", *addr)
	fmt.Printf("clusters: ")
	for i, c := range tb.Clusters {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%s (%d galaxies)", c.Name, len(c.Galaxies))
	}
	fmt.Println()
	fmt.Println("backing services (in-process):", core.HostMAST+",", core.HostNED+",",
		core.HostHEASARC+",", core.HostCompute+",", core.HostRLS)

	if err := http.ListenAndServe(*addr, tb.Portal.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, "nvo-portal:", err)
		os.Exit(1)
	}
}
