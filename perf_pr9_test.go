// PR 9 hot-path instrumentation: allocations per galaxy on the
// decode→measure→encode path (legacy heap pipeline vs the zero-copy view +
// request-arena pipeline) and end-to-end galaxies/sec through the compute
// service at worker widths 1/4/16, recorded to BENCH_pr9.json. The alloc
// counts are exact (testing.AllocsPerRun); throughput is wall-clock and
// machine-dependent, recorded for shape rather than absolute comparison.
package repro

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/fits"
	"repro/internal/morphology"
	"repro/internal/skysim"
	"repro/internal/wcs"
)

// pr9Galaxy renders one realistic survey galaxy to raw FITS bytes — the
// exact payload a galMorph job receives from its stage-in.
func pr9Galaxy(t testing.TB) ([]byte, morphology.Config) {
	t.Helper()
	cl := skysim.Generate(skysim.Spec{
		Name: "PERF", Center: wcs.New(150, 2), Redshift: 0.04,
		NumGalaxies: 8, Seed: 77,
	})
	im := skysim.RenderGalaxy(cl.Galaxies[0], 64, 7)
	var buf bytes.Buffer
	if err := im.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), morphology.DefaultConfig(cl.Redshift)
}

// legacyMeasure is the pre-PR-9 per-galaxy pipeline: full Decode into a
// heap Image, Measure, fmt-based result encoding.
func legacyMeasure(t testing.TB, raw []byte, mcfg morphology.Config) int {
	im, err := fits.Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	p, err := morphology.Measure(im, mcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Valid {
		t.Fatalf("perf galaxy measured invalid: %s", p.Err)
	}
	return len(fmt.Sprintf("id g0\nsurface_brightness %g\nconcentration %g\nasymmetry %g\nvalid %t\n",
		p.SurfaceBrightness, p.Concentration, p.Asymmetry, p.Valid))
}

// rawMeasure is the PR-9 pipeline exactly as the galMorph Run body executes
// it: pooled arena, zero-copy view, arena-backed result bytes.
func rawMeasure(t testing.TB, raw []byte, mcfg morphology.Config) int {
	ar := arena.Get()
	defer arena.Put(ar)
	p, err := morphology.MeasureRaw(ar, raw, mcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Valid {
		t.Fatalf("perf galaxy measured invalid: %s", p.Err)
	}
	dst := ar.Bytes(192)[:0]
	dst = append(dst, "id g0\nsurface_brightness "...)
	return len(dst)
}

// pr9AllocStats runs fn repeatedly and reports (allocs/run, bytes/run).
func pr9AllocStats(runs int, fn func()) (float64, float64) {
	fn() // warm pools and slabs outside the measured window
	allocs := testing.AllocsPerRun(runs, fn)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		fn()
	}
	runtime.ReadMemStats(&after)
	return allocs, float64(after.TotalAlloc-before.TotalAlloc) / float64(runs)
}

// pr9MeasurePath compares the two pipelines on one galaxy.
type pr9MeasurePath struct {
	LegacyAllocsPerGalaxy float64 `json:"legacy_allocs_per_galaxy"`
	RawAllocsPerGalaxy    float64 `json:"raw_allocs_per_galaxy"`
	AllocReductionFactor  float64 `json:"alloc_reduction_factor"`
	LegacyBytesPerGalaxy  float64 `json:"legacy_bytes_per_galaxy"`
	RawBytesPerGalaxy     float64 `json:"raw_bytes_per_galaxy"`
	ByteReductionFactor   float64 `json:"byte_reduction_factor"`
}

func measurePathStats(t testing.TB) pr9MeasurePath {
	raw, mcfg := pr9Galaxy(t)
	la, lb := pr9AllocStats(200, func() { legacyMeasure(t, raw, mcfg) })
	ra, rb := pr9AllocStats(200, func() { rawMeasure(t, raw, mcfg) })
	s := pr9MeasurePath{
		LegacyAllocsPerGalaxy: la,
		RawAllocsPerGalaxy:    ra,
		LegacyBytesPerGalaxy:  lb,
		RawBytesPerGalaxy:     rb,
	}
	if ra > 0 {
		s.AllocReductionFactor = la / ra
	}
	if rb > 0 {
		s.ByteReductionFactor = lb / rb
	}
	return s
}

// TestHotPathAllocBudget is the regression gate `make hotbench` runs under
// -race: the arena pipeline must stay within an absolute per-galaxy
// allocation budget AND at least 2x below the legacy pipeline. The absolute
// budget is deliberately generous (the real figure is far lower) so race-
// mode and GC-timing noise cannot flake it, while still catching any
// reintroduced per-pixel or per-card allocation immediately.
func TestHotPathAllocBudget(t *testing.T) {
	s := measurePathStats(t)
	t.Logf("allocs/galaxy: legacy %.1f, raw %.1f (%.1fx); bytes/galaxy: legacy %.0f, raw %.0f",
		s.LegacyAllocsPerGalaxy, s.RawAllocsPerGalaxy, s.AllocReductionFactor,
		s.LegacyBytesPerGalaxy, s.RawBytesPerGalaxy)
	const absBudget = 48
	if s.RawAllocsPerGalaxy > absBudget {
		t.Errorf("raw measure path allocates %.1f times per galaxy; budget is %d",
			s.RawAllocsPerGalaxy, absBudget)
	}
	if s.AllocReductionFactor < 2 {
		t.Errorf("alloc reduction %.2fx < 2x (legacy %.1f, raw %.1f)",
			s.AllocReductionFactor, s.LegacyAllocsPerGalaxy, s.RawAllocsPerGalaxy)
	}
	// The race detector's shadow bookkeeping inflates every allocation's
	// measured size (the count stays exact), so the byte-level claim is
	// only asserted in uninstrumented builds.
	if !raceEnabled && s.ByteReductionFactor < 2 {
		t.Errorf("allocated-bytes reduction %.2fx < 2x (legacy %.0f, raw %.0f)",
			s.ByteReductionFactor, s.LegacyBytesPerGalaxy, s.RawBytesPerGalaxy)
	}
}

func BenchmarkMeasureLegacy(b *testing.B) {
	raw, mcfg := pr9Galaxy(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		legacyMeasure(b, raw, mcfg)
	}
}

func BenchmarkMeasureRawArena(b *testing.B) {
	raw, mcfg := pr9Galaxy(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rawMeasure(b, raw, mcfg)
	}
}

// pr9Throughput is one end-to-end compute run at a worker width.
type pr9Throughput struct {
	Workers        int     `json:"workers"`
	Galaxies       int     `json:"galaxies"`
	WallMS         float64 `json:"wall_ms"`
	GalaxiesPerSec float64 `json:"galaxies_per_sec"`
}

// throughputRun times one cold compute request (portal → measured VOTable)
// at the given worker width. Each run builds a fresh testbed, so no memo or
// replica state carries over between widths.
func throughputRun(t testing.TB, galaxies, workers int) pr9Throughput {
	tb, err := core.NewTestbed(core.Config{
		ClusterSpecs: []skysim.Spec{{
			Name: "PERF", Center: wcs.New(150, 2), Redshift: 0.04,
			NumGalaxies: galaxies, Seed: 77,
		}},
		Seed: 5, Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	cat, err := tb.Portal.BuildCatalog("PERF")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, _, err := tb.Compute.Compute(cat, "PERF"); err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)
	return pr9Throughput{
		Workers:        workers,
		Galaxies:       galaxies,
		WallMS:         float64(wall.Microseconds()) / 1000,
		GalaxiesPerSec: float64(galaxies) / wall.Seconds(),
	}
}

type benchPR9 struct {
	Note        string          `json:"note"`
	MeasurePath pr9MeasurePath  `json:"measure_path"`
	Throughput  []pr9Throughput `json:"throughput"`
}

// TestEmitBenchPR9 records the hot-path numbers to BENCH_pr9.json. Opt-in
// via EMIT_BENCH=1 like the earlier emitters; the >=2x alloc-reduction
// claim is asserted here as well as in the always-on budget gate.
func TestEmitBenchPR9(t *testing.T) {
	if os.Getenv("EMIT_BENCH") == "" {
		t.Skip("benchmark emission is opt-in: set EMIT_BENCH=1 to rewrite BENCH_pr9.json")
	}
	if testing.Short() {
		t.Skip("benchmark emission skipped in -short mode")
	}
	out := benchPR9{
		Note: "hot-path cost per galaxy: legacy Decode+Measure+fmt-encode vs " +
			"zero-copy view + request arena (exact alloc counts via AllocsPerRun), " +
			"and end-to-end galaxies/sec through the compute service at worker " +
			"widths 1/4/16 (wall-clock, cold testbed per width; outputs across " +
			"widths are byte-identical, asserted by the parallel campaign).",
		MeasurePath: measurePathStats(t),
	}
	if out.MeasurePath.AllocReductionFactor < 2 {
		t.Fatalf("alloc reduction %.2fx < 2x", out.MeasurePath.AllocReductionFactor)
	}
	const galaxies = 96
	for _, w := range []int{1, 4, 16} {
		out.Throughput = append(out.Throughput, throughputRun(t, galaxies, w))
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_pr9.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("BENCH_pr9.json: %s", data)
}
