package vdl

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse reads a VDL document (a sequence of TR and DV statements, with
// #-to-end-of-line and //-style comments) into a fresh catalog.
func Parse(src string) (*Catalog, error) {
	p := &parser{lex: newLexer(src), cat: NewCatalog()}
	if err := p.run(); err != nil {
		return nil, err
	}
	return p.cat, nil
}

// --- lexer ------------------------------------------------------------------

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokPunct // one of ( ) { } , ; = : @ or the two-char ->
)

type token struct {
	kind tokenKind
	text string
	line int
}

type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (l *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("%w: line %d: %s", ErrParse, l.line, fmt.Sprintf(format, args...))
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		ch := l.src[l.pos]
		switch {
		case ch == '\n':
			l.line++
			l.pos++
		case ch == ' ' || ch == '\t' || ch == '\r':
			l.pos++
		case ch == '#':
			l.skipLine()
		case ch == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			l.skipLine()
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, line: l.line}, nil

scan:
	ch := l.src[l.pos]
	switch {
	case isIdentStart(rune(ch)):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			// '-' is legal inside identifiers (NGP9-01) but "->" is the
			// derivation arrow, never part of a name.
			if l.src[l.pos] == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '>' {
				break
			}
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], line: l.line}, nil
	case ch == '"':
		return l.scanString()
	case ch == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '>':
		l.pos += 2
		return token{kind: tokPunct, text: "->", line: l.line}, nil
	case strings.ContainsRune("(){},;=:@", rune(ch)):
		l.pos++
		return token{kind: tokPunct, text: string(ch), line: l.line}, nil
	default:
		return token{}, l.errf("unexpected character %q", string(ch))
	}
}

func (l *lexer) skipLine() {
	for l.pos < len(l.src) && l.src[l.pos] != '\n' {
		l.pos++
	}
}

func (l *lexer) scanString() (token, error) {
	line := l.line
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		ch := l.src[l.pos]
		switch ch {
		case '"':
			l.pos++
			return token{kind: tokString, text: b.String(), line: line}, nil
		case '\\':
			if l.pos+1 >= len(l.src) {
				return token{}, l.errf("unterminated escape")
			}
			l.pos++
			esc := l.src[l.pos]
			switch esc {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '"', '\\':
				b.WriteByte(esc)
			default:
				return token{}, l.errf("bad escape \\%c", esc)
			}
			l.pos++
		case '\n':
			return token{}, l.errf("newline in string literal")
		default:
			b.WriteByte(ch)
			l.pos++
		}
	}
	return token{}, l.errf("unterminated string literal")
}

// scanBody captures the raw text between balanced braces; the caller has
// already consumed the opening '{'.
func (l *lexer) scanBody() (string, error) {
	depth := 1
	start := l.pos
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case '{':
			depth++
		case '}':
			depth--
			if depth == 0 {
				body := l.src[start:l.pos]
				l.pos++
				l.line += strings.Count(body, "\n")
				return body, nil
			}
		case '\n':
			// counted at the end via strings.Count; nothing here
		}
		l.pos++
	}
	return "", l.errf("unterminated transformation body")
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	// Logical names in the paper contain digits, dots and dashes
	// (NGP9_F323-0927589); allow them in identifiers but not leading.
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '.' || r == '-'
}

// --- parser ----------------------------------------------------------------

type parser struct {
	lex    *lexer
	cat    *Catalog
	tok    token
	peeked bool
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expectPunct(s string) error {
	if p.tok.kind != tokPunct || p.tok.text != s {
		return fmt.Errorf("%w: line %d: expected %q, got %q", ErrParse, p.tok.line, s, p.tok.text)
	}
	return p.advance()
}

func (p *parser) expectIdent() (string, error) {
	if p.tok.kind != tokIdent {
		return "", fmt.Errorf("%w: line %d: expected identifier, got %q", ErrParse, p.tok.line, p.tok.text)
	}
	name := p.tok.text
	return name, p.advance()
}

func (p *parser) expectString() (string, error) {
	if p.tok.kind != tokString {
		return "", fmt.Errorf("%w: line %d: expected string, got %q", ErrParse, p.tok.line, p.tok.text)
	}
	s := p.tok.text
	return s, p.advance()
}

func (p *parser) run() error {
	if err := p.advance(); err != nil {
		return err
	}
	for p.tok.kind != tokEOF {
		kw, err := p.expectIdent()
		if err != nil {
			return err
		}
		switch kw {
		case "TR":
			if err := p.parseTR(); err != nil {
				return err
			}
		case "DV":
			if err := p.parseDV(); err != nil {
				return err
			}
		default:
			return fmt.Errorf("%w: line %d: expected TR or DV, got %q", ErrParse, p.tok.line, kw)
		}
	}
	return nil
}

// parseTR parses: name ( [in|out ident {, in|out ident}] ) { body }
func (p *parser) parseTR() error {
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectPunct("("); err != nil {
		return err
	}
	t := &Transformation{Name: name}
	for !(p.tok.kind == tokPunct && p.tok.text == ")") {
		dirWord, err := p.expectIdent()
		if err != nil {
			return err
		}
		var dir Direction
		switch dirWord {
		case "in":
			dir = In
		case "out":
			dir = Out
		default:
			return fmt.Errorf("%w: line %d: expected in/out, got %q", ErrParse, p.tok.line, dirWord)
		}
		argName, err := p.expectIdent()
		if err != nil {
			return err
		}
		t.Args = append(t.Args, Arg{Name: argName, Dir: dir})
		if p.tok.kind == tokPunct && p.tok.text == "," {
			if err := p.advance(); err != nil {
				return err
			}
		}
	}
	if err := p.advance(); err != nil { // consume ')'
		return err
	}
	// '{' then raw body captured directly from the lexer.
	if p.tok.kind != tokPunct || p.tok.text != "{" {
		return fmt.Errorf("%w: line %d: expected '{', got %q", ErrParse, p.tok.line, p.tok.text)
	}
	body, err := p.lex.scanBody()
	if err != nil {
		return err
	}
	t.Body = body
	if err := p.advance(); err != nil {
		return err
	}
	return p.cat.AddTransformation(t)
}

// parseDV parses: name -> trName ( arg=value {, arg=value} ) ;
// where value is "scalar" or @{in|out:"lfn"}.
func (p *parser) parseDV() error {
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectPunct("->"); err != nil {
		return err
	}
	trName, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectPunct("("); err != nil {
		return err
	}
	d := &Derivation{Name: name, TR: trName, Bindings: map[string]Binding{}}
	for !(p.tok.kind == tokPunct && p.tok.text == ")") {
		argName, err := p.expectIdent()
		if err != nil {
			return err
		}
		if err := p.expectPunct("="); err != nil {
			return err
		}
		b, err := p.parseBinding()
		if err != nil {
			return err
		}
		if _, dup := d.Bindings[argName]; dup {
			return fmt.Errorf("%w: line %d: DV %q binds %q twice", ErrParse, p.tok.line, name, argName)
		}
		d.Bindings[argName] = b
		if p.tok.kind == tokPunct && p.tok.text == "," {
			if err := p.advance(); err != nil {
				return err
			}
		}
	}
	if err := p.advance(); err != nil { // consume ')'
		return err
	}
	if err := p.expectPunct(";"); err != nil {
		return err
	}
	return p.cat.AddDerivation(d)
}

func (p *parser) parseBinding() (Binding, error) {
	if p.tok.kind == tokString {
		v := p.tok.text
		return ScalarBinding(v), p.advance()
	}
	if p.tok.kind == tokPunct && p.tok.text == "@" {
		if err := p.advance(); err != nil {
			return Binding{}, err
		}
		if err := p.expectPunct("{"); err != nil {
			return Binding{}, err
		}
		dirWord, err := p.expectIdent()
		if err != nil {
			return Binding{}, err
		}
		var dir Direction
		switch dirWord {
		case "in":
			dir = In
		case "out":
			dir = Out
		default:
			return Binding{}, fmt.Errorf("%w: line %d: expected in/out in file binding, got %q",
				ErrParse, p.tok.line, dirWord)
		}
		if err := p.expectPunct(":"); err != nil {
			return Binding{}, err
		}
		lfn, err := p.expectString()
		if err != nil {
			return Binding{}, err
		}
		if err := p.expectPunct("}"); err != nil {
			return Binding{}, err
		}
		return FileBinding(dir, lfn), nil
	}
	return Binding{}, fmt.Errorf("%w: line %d: expected string or @{...} binding, got %q",
		ErrParse, p.tok.line, p.tok.text)
}
