package vdl

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// paperVDL is (modulo whitespace) the exact example from §3.2 of the paper.
const paperVDL = `
# The galaxy morphology transformation from the paper.
TR galMorph( in redshift, in pixScale, in zeroPoint, in Ho, in om,
             in flat, in image, out galMorph ) { /* compute CAS */ }

DV d1->galMorph( redshift="0.027886",
        image=@{in:"NGP9_F323-0927589.fit"},
        pixScale="2.831933107035062E-4",
        zeroPoint="0", Ho="100", om="0.3", flat="1",
        galMorph=@{out:"NGP9_F323-0927589.txt"} );
`

func TestParsePaperExample(t *testing.T) {
	cat, err := Parse(paperVDL)
	if err != nil {
		t.Fatal(err)
	}
	tr, ok := cat.Transformation("galMorph")
	if !ok {
		t.Fatal("galMorph TR missing")
	}
	if len(tr.Args) != 8 {
		t.Fatalf("args = %d, want 8", len(tr.Args))
	}
	if a, _ := tr.Arg("image"); a.Dir != In {
		t.Error("image must be in")
	}
	if a, _ := tr.Arg("galMorph"); a.Dir != Out {
		t.Error("galMorph must be out")
	}
	if !strings.Contains(tr.Body, "compute CAS") {
		t.Errorf("body lost: %q", tr.Body)
	}

	d, ok := cat.Derivation("d1")
	if !ok {
		t.Fatal("d1 DV missing")
	}
	if d.TR != "galMorph" {
		t.Errorf("TR ref = %q", d.TR)
	}
	if got := d.Bindings["redshift"].Value; got != "0.027886" {
		t.Errorf("redshift = %q", got)
	}
	if in := d.InputLFNs(); len(in) != 1 || in[0] != "NGP9_F323-0927589.fit" {
		t.Errorf("inputs = %v", in)
	}
	if out := d.OutputLFNs(); len(out) != 1 || out[0] != "NGP9_F323-0927589.txt" {
		t.Errorf("outputs = %v", out)
	}
	if p := cat.Producers("NGP9_F323-0927589.txt"); len(p) != 1 || p[0] != "d1" {
		t.Errorf("producers = %v", p)
	}
}

func TestRoundTrip(t *testing.T) {
	cat, err := Parse(paperVDL)
	if err != nil {
		t.Fatal(err)
	}
	text := cat.Format()
	cat2, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse: %v\ntext:\n%s", err, text)
	}
	if len(cat2.Transformations()) != 1 || len(cat2.Derivations()) != 1 {
		t.Fatalf("round trip lost definitions: %v %v", cat2.Transformations(), cat2.Derivations())
	}
	d1, _ := cat.Derivation("d1")
	d2, _ := cat2.Derivation("d1")
	for k, b := range d1.Bindings {
		if d2.Bindings[k] != b {
			t.Errorf("binding %q: %+v != %+v", k, b, d2.Bindings[k])
		}
	}
}

func TestParseChain(t *testing.T) {
	// The paper's Figure 1: d1 consumes a producing b; d2 consumes b producing c.
	src := `
TR step( in x, out y ) {}
DV d1->step( x=@{in:"a"}, y=@{out:"b"} );
DV d2->step( x=@{in:"b"}, y=@{out:"c"} );
`
	cat, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if p := cat.Producers("c"); len(p) != 1 || p[0] != "d2" {
		t.Errorf("producers(c) = %v", p)
	}
	if p := cat.Producers("b"); len(p) != 1 || p[0] != "d1" {
		t.Errorf("producers(b) = %v", p)
	}
	if p := cat.Producers("a"); len(p) != 0 {
		t.Errorf("producers(a) = %v, want none (raw input)", p)
	}
	if got := cat.Derivations(); len(got) != 2 || got[0] != "d1" || got[1] != "d2" {
		t.Errorf("derivation order = %v", got)
	}
}

func TestParseComments(t *testing.T) {
	src := `
# hash comment
// slash comment
TR t( in a, out b ) {}
DV d->t( a="1", b=@{out:"f"} ); # trailing comment
`
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestParseStringEscapes(t *testing.T) {
	src := `TR t( in a, out b ) {}
DV d->t( a="va\"l\\ue\n", b=@{out:"f"} );`
	cat, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := cat.Derivation("d")
	if d.Bindings["a"].Value != "va\"l\\ue\n" {
		t.Errorf("escaped value = %q", d.Bindings["a"].Value)
	}
}

func TestParseNestedBracesInBody(t *testing.T) {
	src := `TR t( in a, out b ) { if (x) { y(); } else { z(); } }
DV d->t( a="1", b=@{out:"f"} );`
	cat, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := cat.Transformation("t")
	if !strings.Contains(tr.Body, "else { z(); }") {
		t.Errorf("nested body lost: %q", tr.Body)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"garbage", "WHAT is this"},
		{"unterminated string", `TR t( in a, out b ) {}` + "\n" + `DV d->t( a="oops`},
		{"unterminated body", `TR t( in a, out b ) { forever`},
		{"missing arrow", `TR t( in a, out b ) {}` + "\n" + `DV d t( a="1", b=@{out:"f"} );`},
		{"bad direction", `TR t( inout a ) {}`},
		{"missing semicolon", `TR t( in a, out b ) {}` + "\n" + `DV d->t( a="1", b=@{out:"f"} )`},
		{"unknown TR", `DV d->ghost( a="1" );`},
		{"unknown arg", `TR t( in a, out b ) {}` + "\n" + `DV d->t( a="1", b=@{out:"f"}, c="2" );`},
		{"unbound arg", `TR t( in a, out b ) {}` + "\n" + `DV d->t( b=@{out:"f"} );`},
		{"direction mismatch", `TR t( in a, out b ) {}` + "\n" + `DV d->t( a=@{out:"x"}, b=@{out:"f"} );`},
		{"scalar for out", `TR t( in a, out b ) {}` + "\n" + `DV d->t( a="1", b="notafile" );`},
		{"double bind", `TR t( in a, out b ) {}` + "\n" + `DV d->t( a="1", a="2", b=@{out:"f"} );`},
		{"dup TR", `TR t( in a ) {}` + "\n" + `TR t( in a ) {}`},
		{"dup DV", `TR t( out b ) {}` + "\n" + `DV d->t( b=@{out:"f"} );` + "\n" + `DV d->t( b=@{out:"g"} );`},
		{"dup TR arg", `TR t( in a, in a ) {}`},
		{"newline in string", "TR t( in a, out b ) {}\nDV d->t( a=\"x\ny\", b=@{out:\"f\"} );"},
		{"bad escape", `TR t( in a, out b ) {}` + "\n" + `DV d->t( a="\q", b=@{out:"f"} );`},
		{"bad file binding dir", `TR t( in a, out b ) {}` + "\n" + `DV d->t( a=@{sideways:"x"}, b=@{out:"f"} );`},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: expected parse error", c.name)
		}
	}
}

func TestErrorKinds(t *testing.T) {
	_, err := Parse(`DV d->ghost( a="1" );`)
	if !errors.Is(err, ErrUnknownTR) {
		t.Errorf("want ErrUnknownTR, got %v", err)
	}
	_, err = Parse(`TR t( in a ) {}` + "\n" + `DV d->t( );`)
	if !errors.Is(err, ErrUnboundArg) {
		t.Errorf("want ErrUnboundArg, got %v", err)
	}
}

func TestMerge(t *testing.T) {
	a, err := Parse(`TR t( in x, out y ) {}
DV d1->t( x="1", y=@{out:"f1"} );`)
	if err != nil {
		t.Fatal(err)
	}
	// Same TR again (as the web service re-generates it) plus a new DV.
	b, err := Parse(`TR t( in x, out y ) {}
DV d2->t( x="2", y=@{out:"f2"} );`)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if len(a.Derivations()) != 2 {
		t.Errorf("derivations after merge = %v", a.Derivations())
	}
	// Conflicting DV names fail.
	c, _ := Parse(`TR t( in x, out y ) {}
DV d1->t( x="9", y=@{out:"f9"} );`)
	if err := a.Merge(c); err == nil {
		t.Error("conflicting derivation must fail merge")
	}
}

func TestMultipleProducers(t *testing.T) {
	src := `
TR t( in x, out y ) {}
DV d1->t( x=@{in:"a"}, y=@{out:"shared"} );
DV d2->t( x=@{in:"b"}, y=@{out:"shared"} );
`
	cat, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if p := cat.Producers("shared"); len(p) != 2 {
		t.Errorf("producers = %v, want 2", p)
	}
}

func TestDirectionString(t *testing.T) {
	if In.String() != "in" || Out.String() != "out" {
		t.Error("direction labels wrong")
	}
}

func TestLogicalNamesWithSpecialChars(t *testing.T) {
	// LFNs like NGP9_F323-0927589.fit appear as strings; identifiers with
	// dots/dashes also appear as DV names in the wild.
	src := `TR t( in a, out b ) {}
DV morph.NGP9-01->t( a=@{in:"NGP9_F323-0927589.fit"}, b=@{out:"x"} );`
	cat, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cat.Derivation("morph.NGP9-01"); !ok {
		t.Error("dotted/dashed DV name lost")
	}
}

func buildBigCatalogSrc(n int) string {
	var b strings.Builder
	b.WriteString("TR galMorph( in redshift, in image, out galMorph ) {}\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "DV d%d->galMorph( redshift=\"0.05\", image=@{in:\"g%d.fit\"}, galMorph=@{out:\"g%d.txt\"} );\n", i, i, i)
	}
	return b.String()
}

func TestParseLargeCatalog(t *testing.T) {
	cat, err := Parse(buildBigCatalogSrc(561)) // the paper's largest cluster
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.Derivations()) != 561 {
		t.Fatalf("derivations = %d", len(cat.Derivations()))
	}
}

func BenchmarkParse561Derivations(b *testing.B) {
	src := buildBigCatalogSrc(561)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFormat(b *testing.B) {
	cat, err := Parse(buildBigCatalogSrc(561))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cat.Format()
	}
}
