// Package vdl implements the Chimera Virtual Data Language of Foster et al.
// 2002, in the form the paper uses it (§3.2): TR statements declare
// transformations — templates naming a program and its formal in/out
// arguments — and DV statements declare derivations — instantiations binding
// those arguments to scalar values or logical files:
//
//	TR galMorph( in redshift, in pixScale, in zeroPoint, in Ho, in om,
//	             in flat, in image, out galMorph ) { ... }
//
//	DV d1->galMorph( redshift="0.027886",
//	                 image=@{in:"NGP9_F323-0927589.fit"},
//	                 pixScale="2.831933107035062E-4", zeroPoint="0",
//	                 Ho="100", om="0.3", flat="1",
//	                 galMorph=@{out:"NGP9_F323-0927589.txt"} );
//
// The package provides a parser, a serializer that round-trips, and the
// Virtual Data Catalog (Catalog) that stores definitions and answers the
// queries Chimera's workflow composer needs: "which derivation produces
// logical file X?".
package vdl

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Direction marks a formal argument or file binding as input or output.
type Direction int

// Argument directions.
const (
	In Direction = iota
	Out
)

// String returns "in" or "out".
func (d Direction) String() string {
	if d == Out {
		return "out"
	}
	return "in"
}

// Arg is a formal argument of a transformation.
type Arg struct {
	Name string
	Dir  Direction
}

// Transformation is a VDL TR statement: an executable template.
type Transformation struct {
	Name string
	Args []Arg
	Body string // opaque text between the braces
}

// Arg returns the formal argument with the given name.
func (t *Transformation) Arg(name string) (Arg, bool) {
	for _, a := range t.Args {
		if a.Name == name {
			return a, true
		}
	}
	return Arg{}, false
}

// Binding is an actual parameter of a derivation: either a scalar string or
// a logical file reference.
type Binding struct {
	IsFile bool
	Dir    Direction // meaningful when IsFile
	LFN    string    // logical file name, when IsFile
	Value  string    // scalar value, when !IsFile
}

// ScalarBinding returns a scalar actual parameter.
func ScalarBinding(v string) Binding { return Binding{Value: v} }

// FileBinding returns a logical-file actual parameter.
func FileBinding(dir Direction, lfn string) Binding {
	return Binding{IsFile: true, Dir: dir, LFN: lfn}
}

// Derivation is a VDL DV statement: a transformation applied to actuals.
type Derivation struct {
	Name     string
	TR       string
	Bindings map[string]Binding
}

// InputLFNs returns the derivation's input logical files, sorted.
func (d *Derivation) InputLFNs() []string { return d.lfns(In) }

// OutputLFNs returns the derivation's output logical files, sorted.
func (d *Derivation) OutputLFNs() []string { return d.lfns(Out) }

func (d *Derivation) lfns(dir Direction) []string {
	var out []string
	for _, b := range d.Bindings {
		if b.IsFile && b.Dir == dir {
			out = append(out, b.LFN)
		}
	}
	sort.Strings(out)
	return out
}

// Errors reported by the catalog and parser.
var (
	ErrDuplicate   = errors.New("vdl: duplicate definition")
	ErrUnknownTR   = errors.New("vdl: derivation references unknown transformation")
	ErrBadBinding  = errors.New("vdl: binding does not match transformation signature")
	ErrParse       = errors.New("vdl: parse error")
	ErrUnboundArg  = errors.New("vdl: unbound transformation argument")
	ErrUnknownName = errors.New("vdl: no such definition")
)

// Catalog is a Virtual Data Catalog: the store of transformations and
// derivations Chimera composes workflows from.
type Catalog struct {
	trs       map[string]*Transformation
	dvs       map[string]*Derivation
	dvOrder   []string
	producers map[string][]string // LFN -> derivation names producing it
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		trs:       map[string]*Transformation{},
		dvs:       map[string]*Derivation{},
		producers: map[string][]string{},
	}
}

// AddTransformation registers a TR definition.
func (c *Catalog) AddTransformation(t *Transformation) error {
	if t == nil || t.Name == "" {
		return fmt.Errorf("%w: nil or unnamed transformation", ErrParse)
	}
	if _, dup := c.trs[t.Name]; dup {
		return fmt.Errorf("%w: TR %q", ErrDuplicate, t.Name)
	}
	seen := map[string]bool{}
	for _, a := range t.Args {
		if a.Name == "" {
			return fmt.Errorf("%w: TR %q has unnamed argument", ErrParse, t.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("%w: TR %q repeats argument %q", ErrDuplicate, t.Name, a.Name)
		}
		seen[a.Name] = true
	}
	c.trs[t.Name] = t
	return nil
}

// AddDerivation registers a DV definition, validating it against its
// transformation: the TR must exist, every actual must name a formal, file
// directions must match, and every formal must be bound.
func (c *Catalog) AddDerivation(d *Derivation) error {
	if d == nil || d.Name == "" {
		return fmt.Errorf("%w: nil or unnamed derivation", ErrParse)
	}
	if _, dup := c.dvs[d.Name]; dup {
		return fmt.Errorf("%w: DV %q", ErrDuplicate, d.Name)
	}
	tr, ok := c.trs[d.TR]
	if !ok {
		return fmt.Errorf("%w: DV %q -> %q", ErrUnknownTR, d.Name, d.TR)
	}
	for name, b := range d.Bindings {
		formal, ok := tr.Arg(name)
		if !ok {
			return fmt.Errorf("%w: DV %q binds unknown argument %q", ErrBadBinding, d.Name, name)
		}
		if b.IsFile && b.Dir != formal.Dir {
			return fmt.Errorf("%w: DV %q argument %q is %s but bound as %s",
				ErrBadBinding, d.Name, name, formal.Dir, b.Dir)
		}
		if !b.IsFile && formal.Dir == Out {
			return fmt.Errorf("%w: DV %q binds output argument %q to a scalar",
				ErrBadBinding, d.Name, name)
		}
	}
	for _, a := range tr.Args {
		if _, ok := d.Bindings[a.Name]; !ok {
			return fmt.Errorf("%w: DV %q leaves %q unbound", ErrUnboundArg, d.Name, a.Name)
		}
	}
	c.dvs[d.Name] = d
	c.dvOrder = append(c.dvOrder, d.Name)
	for _, lfn := range d.OutputLFNs() {
		c.producers[lfn] = append(c.producers[lfn], d.Name)
	}
	return nil
}

// Transformation returns a TR by name.
func (c *Catalog) Transformation(name string) (*Transformation, bool) {
	t, ok := c.trs[name]
	return t, ok
}

// Derivation returns a DV by name.
func (c *Catalog) Derivation(name string) (*Derivation, bool) {
	d, ok := c.dvs[name]
	return d, ok
}

// Transformations returns all TR names, sorted.
func (c *Catalog) Transformations() []string {
	out := make([]string, 0, len(c.trs))
	for n := range c.trs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Derivations returns all DV names in definition order.
func (c *Catalog) Derivations() []string {
	return append([]string(nil), c.dvOrder...)
}

// Producers returns the derivations whose outputs include lfn, in
// definition order.
func (c *Catalog) Producers(lfn string) []string {
	return append([]string(nil), c.producers[lfn]...)
}

// Merge copies every definition of other into c. Duplicate transformations
// with identical names are skipped (the web service re-submits the same TR
// on every request; see §4.3 step 4); duplicate derivations are an error.
func (c *Catalog) Merge(other *Catalog) error {
	for _, name := range other.Transformations() {
		t := other.trs[name]
		if _, exists := c.trs[name]; exists {
			continue
		}
		if err := c.AddTransformation(t); err != nil {
			return err
		}
	}
	for _, name := range other.Derivations() {
		if err := c.AddDerivation(other.dvs[name]); err != nil {
			return err
		}
	}
	return nil
}

// Format serializes the catalog back to VDL text. Parsing the result yields
// an equivalent catalog.
func (c *Catalog) Format() string {
	var b strings.Builder
	for _, name := range c.Transformations() {
		t := c.trs[name]
		b.WriteString(FormatTransformation(t))
		b.WriteString("\n")
	}
	for _, name := range c.dvOrder {
		b.WriteString(FormatDerivation(c.dvs[name]))
		b.WriteString("\n")
	}
	return b.String()
}

// FormatTransformation renders one TR statement.
func FormatTransformation(t *Transformation) string {
	var b strings.Builder
	b.WriteString("TR ")
	b.WriteString(t.Name)
	b.WriteString("( ")
	for i, a := range t.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Dir.String())
		b.WriteString(" ")
		b.WriteString(a.Name)
	}
	b.WriteString(" ) {")
	b.WriteString(t.Body)
	b.WriteString("}")
	return b.String()
}

// FormatDerivation renders one DV statement with arguments in the
// transformation's declaration order when known (sorted otherwise).
func FormatDerivation(d *Derivation) string {
	var b strings.Builder
	b.WriteString("DV ")
	b.WriteString(d.Name)
	b.WriteString("->")
	b.WriteString(d.TR)
	b.WriteString("( ")
	names := make([]string, 0, len(d.Bindings))
	for n := range d.Bindings {
		names = append(names, n)
	}
	sort.Strings(names)
	for i, n := range names {
		if i > 0 {
			b.WriteString(", ")
		}
		bind := d.Bindings[n]
		b.WriteString(n)
		b.WriteString("=")
		if bind.IsFile {
			fmt.Fprintf(&b, "@{%s:%q}", bind.Dir, bind.LFN)
		} else {
			fmt.Fprintf(&b, "%q", bind.Value)
		}
	}
	b.WriteString(" );")
	return b.String()
}
