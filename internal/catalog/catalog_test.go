package catalog

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/votable"
	"repro/internal/wcs"
)

func seeded(n int, seed int64) *Catalog {
	c := New("test", "mag")
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		rec := Record{
			ID:    fmt.Sprintf("SRC%05d", i),
			Pos:   wcs.New(rng.Float64()*360, rng.Float64()*180-90),
			Props: map[string]string{"mag": fmt.Sprintf("%.2f", 14+rng.Float64()*8)},
		}
		if err := c.Add(rec); err != nil {
			panic(err)
		}
	}
	return c
}

func TestAddGet(t *testing.T) {
	c := New("t", "mag")
	r := Record{ID: "A", Pos: wcs.New(10, 10), Props: map[string]string{"mag": "15"}}
	if err := c.Add(r); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get("A")
	if !ok || got.Prop("mag") != "15" {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	if err := c.Add(r); err == nil {
		t.Error("duplicate ID must fail")
	}
	if _, ok := c.Get("B"); ok {
		t.Error("missing ID must not be found")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestConeSearchMatchesBruteForce(t *testing.T) {
	c := seeded(2000, 7)
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 25; trial++ {
		center := wcs.New(rng.Float64()*360, rng.Float64()*160-80)
		radius := rng.Float64() * 5
		got := c.ConeSearch(center, radius)

		want := map[string]bool{}
		for _, r := range c.All() {
			if center.Separation(r.Pos) <= radius {
				want[r.ID] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: cone %v r=%v: got %d, brute force %d", trial, center, radius, len(got), len(want))
		}
		for _, r := range got {
			if !want[r.ID] {
				t.Fatalf("trial %d: unexpected record %s", trial, r.ID)
			}
		}
	}
}

func TestConeSearchNearPoles(t *testing.T) {
	c := New("polar")
	_ = c.Add(Record{ID: "N", Pos: wcs.New(0, 89.9)})
	_ = c.Add(Record{ID: "S", Pos: wcs.New(0, -89.9)})
	hits := c.ConeSearch(wcs.New(180, 89.8), 1)
	if len(hits) != 1 || hits[0].ID != "N" {
		t.Errorf("polar search = %+v", hits)
	}
	// Radius reaching over the pole.
	hits = c.ConeSearch(wcs.New(0, 90), 0.2)
	if len(hits) != 1 {
		t.Errorf("over-pole search = %+v", hits)
	}
}

func TestConeSearchSorted(t *testing.T) {
	c := New("s")
	_ = c.Add(Record{ID: "far", Pos: wcs.New(10, 2)})
	_ = c.Add(Record{ID: "near", Pos: wcs.New(10, 0.5)})
	_ = c.Add(Record{ID: "mid", Pos: wcs.New(10, 1)})
	hits := c.ConeSearch(wcs.New(10, 0), 3)
	if len(hits) != 3 || hits[0].ID != "near" || hits[1].ID != "mid" || hits[2].ID != "far" {
		t.Errorf("order = %v", ids(hits))
	}
}

func ids(rs []Record) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.ID
	}
	return out
}

func TestConeSearchNegativeRadius(t *testing.T) {
	c := seeded(10, 1)
	if hits := c.ConeSearch(wcs.New(0, 0), -1); hits != nil {
		t.Errorf("negative radius should return nil, got %d", len(hits))
	}
}

func TestNearest(t *testing.T) {
	c := New("n")
	_ = c.Add(Record{ID: "a", Pos: wcs.New(100, 20)})
	_ = c.Add(Record{ID: "b", Pos: wcs.New(100, 21)})
	got, ok := c.Nearest(wcs.New(100, 20.1), 5)
	if !ok || got.ID != "a" {
		t.Errorf("Nearest = %v, %v", got.ID, ok)
	}
	if _, ok := c.Nearest(wcs.New(0, -80), 1); ok {
		t.Error("nothing should be near the south pole")
	}
}

func TestDensity(t *testing.T) {
	c := New("d")
	for i := 0; i < 100; i++ {
		_ = c.Add(Record{ID: fmt.Sprint(i), Pos: wcs.New(180+float64(i%10)*0.01, float64(i/10)*0.01)})
	}
	d := c.Density(wcs.New(180.045, 0.045), 0.2)
	if d <= 0 {
		t.Errorf("density = %v, want > 0", d)
	}
	if c.Density(wcs.New(180, 0), 0) != 0 {
		t.Error("zero radius density must be 0")
	}
}

func TestVOTableRoundTrip(t *testing.T) {
	c := seeded(50, 3)
	tab := c.ToVOTable(c.All())
	if tab.NumRows() != 50 || tab.NumCols() != 4 {
		t.Fatalf("table shape %dx%d", tab.NumRows(), tab.NumCols())
	}
	var buf bytes.Buffer
	if err := votable.WriteTable(&buf, tab); err != nil {
		t.Fatal(err)
	}
	tab2, err := votable.ReadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := FromVOTable("copy", tab2)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Len() != c.Len() {
		t.Fatalf("round trip lost records: %d != %d", c2.Len(), c.Len())
	}
	for _, r := range c.All() {
		got, ok := c2.Get(r.ID)
		if !ok {
			t.Fatalf("lost %s", r.ID)
		}
		if got.Pos.Separation(r.Pos) > 1e-6 {
			t.Errorf("%s moved by %v deg", r.ID, got.Pos.Separation(r.Pos))
		}
		if got.Prop("mag") != r.Prop("mag") {
			t.Errorf("%s mag %q != %q", r.ID, got.Prop("mag"), r.Prop("mag"))
		}
	}
}

func TestFromVOTableErrors(t *testing.T) {
	bad := votable.NewTable("bad", votable.Field{Name: "x", Datatype: votable.TypeChar})
	if _, err := FromVOTable("b", bad); err == nil {
		t.Error("table without id/ra/dec must fail")
	}
	t2 := votable.NewTable("bad2",
		votable.Field{Name: "id", Datatype: votable.TypeChar},
		votable.Field{Name: "ra", Datatype: votable.TypeDouble},
		votable.Field{Name: "dec", Datatype: votable.TypeDouble},
	)
	_ = t2.AppendRow("a", "not-a-number", "0")
	if _, err := FromVOTable("b", t2); err == nil {
		t.Error("unparsable position must fail")
	}
	t3 := votable.NewTable("dup",
		votable.Field{Name: "id", Datatype: votable.TypeChar},
		votable.Field{Name: "ra", Datatype: votable.TypeDouble},
		votable.Field{Name: "dec", Datatype: votable.TypeDouble},
	)
	_ = t3.AppendRow("a", "1", "2")
	_ = t3.AppendRow("a", "3", "4")
	if _, err := FromVOTable("b", t3); err == nil {
		t.Error("duplicate IDs must fail")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New("conc")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = c.Add(Record{ID: fmt.Sprintf("g%d-%d", g, i), Pos: wcs.New(float64(i), float64(g))})
				c.ConeSearch(wcs.New(50, 4), 10)
				c.Get(fmt.Sprintf("g%d-%d", g, i/2))
			}
		}(g)
	}
	wg.Wait()
	if c.Len() != 800 {
		t.Errorf("Len = %d, want 800", c.Len())
	}
}

func TestFormatDeg(t *testing.T) {
	cases := map[float64]string{
		0:          "0",
		180:        "180",
		10.5:       "10.5",
		10.1234567: "10.1234567",
	}
	for in, want := range cases {
		if got := formatDeg(in); got != want {
			t.Errorf("formatDeg(%v) = %q, want %q", in, got, want)
		}
	}
}

func BenchmarkConeSearch(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			c := seeded(n, 11)
			center := wcs.New(180, 0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.ConeSearch(center, 1)
			}
		})
	}
}

func BenchmarkAdd(b *testing.B) {
	b.ReportAllocs()
	c := New("bench")
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < b.N; i++ {
		_ = c.Add(Record{ID: fmt.Sprint(i), Pos: wcs.New(rng.Float64()*360, rng.Float64()*180-90)})
	}
}

func TestNameAndColumns(t *testing.T) {
	c := New("ned", "mag", "z")
	if c.Name() != "ned" {
		t.Errorf("Name = %q", c.Name())
	}
	cols := c.Columns()
	if len(cols) != 2 || cols[0] != "mag" {
		t.Errorf("Columns = %v", cols)
	}
	// The returned slice is a copy.
	cols[0] = "mutated"
	if c.Columns()[0] != "mag" {
		t.Error("Columns must return a copy")
	}
}
