package catalog

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/votable"
	"repro/internal/wcs"
)

// TestVisitMatchesAll pins the copy-free iterator against All, including
// early stop.
func TestVisitMatchesAll(t *testing.T) {
	c := seeded(500, 3)
	var visited []Record
	c.Visit(func(r Record) bool {
		visited = append(visited, r)
		return true
	})
	if !reflect.DeepEqual(visited, c.All()) {
		t.Fatal("Visit order/content diverges from All")
	}
	n := 0
	c.Visit(func(Record) bool {
		n++
		return n < 7
	})
	if n != 7 {
		t.Errorf("early stop visited %d records, want 7", n)
	}
}

// TestConeSearchVisitMatchesConeSearch pins the streaming cone search
// against the slice-returning one: same records, same deterministic order,
// separations within the radius and non-decreasing.
func TestConeSearchVisitMatchesConeSearch(t *testing.T) {
	c := seeded(2000, 7)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		center := wcs.New(rng.Float64()*360, rng.Float64()*160-80)
		radius := rng.Float64() * 5
		want := c.ConeSearch(center, radius)
		var got []Record
		lastSep := -1.0
		c.ConeSearchVisit(center, radius, func(r Record, sep float64) bool {
			if sep > radius || sep < lastSep {
				t.Fatalf("separation %v out of order (last %v, radius %v)", sep, lastSep, radius)
			}
			lastSep = sep
			got = append(got, r)
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("trial %d: visit found %d, slice found %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i].ID {
				t.Fatalf("trial %d: order diverges at %d: %q vs %q", trial, i, got[i].ID, want[i].ID)
			}
		}
	}
}

// TestConeSearchPageReassembles checks that concatenating pages of any size
// reproduces the unpaged result exactly, with a stable total.
func TestConeSearchPageReassembles(t *testing.T) {
	c := seeded(2000, 7)
	center := wcs.New(180, 0)
	const radius = 20.0
	want := c.ConeSearch(center, radius)
	for _, pageSize := range []int{1, 3, 7, 100, len(want), len(want) + 5} {
		var got []Record
		for offset := 0; ; offset += pageSize {
			page, total := c.ConeSearchPage(center, radius, offset, pageSize)
			if total != len(want) {
				t.Fatalf("page size %d offset %d: total = %d, want %d", pageSize, offset, total, len(want))
			}
			got = append(got, page...)
			if len(page) < pageSize {
				break
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("page size %d: reassembled pages diverge from unpaged search", pageSize)
		}
	}
	// Negative limit streams to the end; out-of-range offset is empty.
	all, total := c.ConeSearchPage(center, radius, 0, -1)
	if len(all) != total || total != len(want) {
		t.Errorf("limit -1: %d records, total %d, want %d", len(all), total, len(want))
	}
	none, total := c.ConeSearchPage(center, radius, total+10, 5)
	if len(none) != 0 || total != len(want) {
		t.Errorf("past-the-end page: %d records, total %d", len(none), total)
	}
}

// TestStreamingExportMatchesToVOTable checks that TableMeta+AppendRowCells
// through a votable.Encoder produce exactly the bytes of the in-memory
// ToVOTable+WriteTable path.
func TestStreamingExportMatchesToVOTable(t *testing.T) {
	c := seeded(200, 5)
	recs := c.All()

	var want bytes.Buffer
	if err := votable.WriteTable(&want, c.ToVOTable(recs)); err != nil {
		t.Fatal(err)
	}

	var got bytes.Buffer
	enc := votable.NewEncoder(&got)
	if err := enc.BeginDocument(""); err != nil {
		t.Fatal(err)
	}
	if err := enc.BeginResource(c.Name()); err != nil {
		t.Fatal(err)
	}
	if err := enc.BeginTable(c.TableMeta()); err != nil {
		t.Fatal(err)
	}
	var row []string
	c.Visit(func(r Record) bool {
		row = c.AppendRowCells(row[:0], r)
		return enc.Row(row) == nil
	})
	if err := enc.EndTable(); err != nil {
		t.Fatal(err)
	}
	if err := enc.EndResource(); err != nil {
		t.Fatal(err)
	}
	if err := enc.End(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatal("streamed catalog export diverges from in-memory ToVOTable path")
	}
}

// TestAppendColumnsMatchesColumns pins the append-into variant.
func TestAppendColumnsMatchesColumns(t *testing.T) {
	c := New("t", "mag", "z")
	scratch := make([]string, 0, 4)
	got := c.AppendColumns(scratch)
	if !reflect.DeepEqual(got, c.Columns()) {
		t.Fatalf("AppendColumns = %v, Columns = %v", got, c.Columns())
	}
	if &got[0] != &scratch[:1][0] {
		t.Error("AppendColumns must reuse the destination's backing array")
	}
}
