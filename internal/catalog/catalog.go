// Package catalog implements an in-memory astronomical source catalog that
// can be searched by sky cone, the query model of the NVO Cone Search
// protocol. It backs the simulated archives (NED, CNOC, DSS catalogs of the
// paper's Table 1) that the data services in internal/services expose over
// HTTP.
//
// Records carry a stable identifier, a sky position, and an ordered set of
// named properties (magnitudes, redshifts, colors...). A declination-band
// index keeps cone searches sublinear for the catalog sizes the prototype
// handles (10^4–10^6 sources).
package catalog

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/votable"
	"repro/internal/wcs"
)

// Record is one catalog source.
type Record struct {
	ID    string
	Pos   wcs.SkyCoord
	Props map[string]string
}

// Prop returns a property value or "".
func (r Record) Prop(name string) string { return r.Props[name] }

// Catalog is a cone-searchable collection of records. It is safe for
// concurrent use.
type Catalog struct {
	name  string
	cols  []string // property column order for table export
	mu    sync.RWMutex
	byID  map[string]int
	recs  []Record
	bands [][]int // record indices per declination band
}

// bandWidthDeg is the declination band granularity of the spatial index.
const bandWidthDeg = 1.0

// numBands covers declinations [-90, +90].
const numBands = int(180/bandWidthDeg) + 1

// ErrDuplicateID reports insertion of an already-present identifier.
var ErrDuplicateID = errors.New("catalog: duplicate record ID")

// New returns an empty catalog. cols fixes the property column order used
// when exporting to VOTable; properties not listed are not exported.
func New(name string, cols ...string) *Catalog {
	return &Catalog{
		name:  name,
		cols:  cols,
		byID:  make(map[string]int),
		bands: make([][]int, numBands),
	}
}

// Name returns the catalog name.
func (c *Catalog) Name() string { return c.name }

// Columns returns the exported property column names.
func (c *Catalog) Columns() []string { return append([]string(nil), c.cols...) }

// Len returns the number of records.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.recs)
}

func bandOf(dec float64) int {
	b := int((dec + 90) / bandWidthDeg)
	if b < 0 {
		b = 0
	}
	if b >= numBands {
		b = numBands - 1
	}
	return b
}

// Add inserts a record. IDs must be unique.
func (c *Catalog) Add(r Record) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.byID[r.ID]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateID, r.ID)
	}
	if r.Props == nil {
		r.Props = map[string]string{}
	}
	idx := len(c.recs)
	c.recs = append(c.recs, r)
	c.byID[r.ID] = idx
	b := bandOf(r.Pos.Dec)
	c.bands[b] = append(c.bands[b], idx)
	return nil
}

// Get returns the record with the given ID.
func (c *Catalog) Get(id string) (Record, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	i, ok := c.byID[id]
	if !ok {
		return Record{}, false
	}
	return c.recs[i], true
}

// ConeSearch returns all records within radiusDeg of center, sorted by
// increasing angular separation (ties broken by ID for determinism).
func (c *Catalog) ConeSearch(center wcs.SkyCoord, radiusDeg float64) []Record {
	if radiusDeg < 0 {
		return nil
	}
	c.mu.RLock()
	defer c.mu.RUnlock()

	loBand := bandOf(center.Dec - radiusDeg)
	hiBand := bandOf(center.Dec + radiusDeg)

	type hit struct {
		rec Record
		sep float64
	}
	var hits []hit
	for b := loBand; b <= hiBand; b++ {
		for _, i := range c.bands[b] {
			rec := c.recs[i]
			if sep := center.Separation(rec.Pos); sep <= radiusDeg {
				hits = append(hits, hit{rec, sep})
			}
		}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].sep != hits[j].sep {
			return hits[i].sep < hits[j].sep
		}
		return hits[i].rec.ID < hits[j].rec.ID
	})
	out := make([]Record, len(hits))
	for i, h := range hits {
		out[i] = h.rec
	}
	return out
}

// All returns every record in insertion order.
func (c *Catalog) All() []Record {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]Record(nil), c.recs...)
}

// standard field declarations for exported tables.
var baseFields = []votable.Field{
	{Name: "id", Datatype: votable.TypeChar, UCD: "meta.id;meta.main"},
	{Name: "ra", Datatype: votable.TypeDouble, Unit: "deg", UCD: "pos.eq.ra"},
	{Name: "dec", Datatype: votable.TypeDouble, Unit: "deg", UCD: "pos.eq.dec"},
}

// ToVOTable renders records as a VOTable with columns id, ra, dec followed by
// the catalog's property columns.
func (c *Catalog) ToVOTable(recs []Record) *votable.Table {
	fields := append([]votable.Field(nil), baseFields...)
	for _, col := range c.cols {
		fields = append(fields, votable.Field{Name: col, Datatype: votable.TypeChar})
	}
	t := votable.NewTable(c.name, fields...)
	for _, r := range recs {
		row := []string{r.ID, formatDeg(r.Pos.RA), formatDeg(r.Pos.Dec)}
		for _, col := range c.cols {
			row = append(row, r.Props[col])
		}
		// Row width is fields by construction; ignore the impossible error.
		_ = t.AppendRow(row...)
	}
	return t
}

// FromVOTable loads records from a table with id/ra/dec columns; every other
// column becomes a property. It is the inverse of ToVOTable.
func FromVOTable(name string, t *votable.Table) (*Catalog, error) {
	idCol := t.ColumnIndex("id")
	raCol := t.ColumnIndex("ra")
	decCol := t.ColumnIndex("dec")
	if idCol < 0 || raCol < 0 || decCol < 0 {
		return nil, errors.New("catalog: table must have id, ra and dec columns")
	}
	var props []string
	for i, f := range t.Fields {
		if i != idCol && i != raCol && i != decCol {
			props = append(props, f.Name)
		}
	}
	c := New(name, props...)
	for i := range t.Rows {
		ra, okRA := t.Float(i, "ra")
		dec, okDec := t.Float(i, "dec")
		if !okRA || !okDec {
			return nil, fmt.Errorf("catalog: row %d has unparsable position", i)
		}
		rec := Record{ID: t.Rows[i][idCol], Pos: wcs.New(ra, dec), Props: map[string]string{}}
		for j, f := range t.Fields {
			if j == idCol || j == raCol || j == decCol {
				continue
			}
			rec.Props[f.Name] = t.Rows[i][j]
		}
		if err := c.Add(rec); err != nil {
			return nil, err
		}
	}
	return c, nil
}

func formatDeg(v float64) string {
	// 7 decimals ≈ 0.4 milliarcsec: far below any pixel scale in play.
	return trimZeros(fmt.Sprintf("%.7f", v))
}

func trimZeros(s string) string {
	i := len(s)
	for i > 0 && s[i-1] == '0' {
		i--
	}
	if i > 0 && s[i-1] == '.' {
		i--
	}
	if i == 0 {
		return "0"
	}
	return s[:i]
}

// Nearest returns the record closest to pos within maxSepDeg, if any.
func (c *Catalog) Nearest(pos wcs.SkyCoord, maxSepDeg float64) (Record, bool) {
	hits := c.ConeSearch(pos, maxSepDeg)
	if len(hits) == 0 {
		return Record{}, false
	}
	return hits[0], true
}

// Density returns the local projected source density (sources per square
// degree) within radiusDeg of pos. The paper's science model uses local
// galaxy density as one axis of the Dressler relation.
func (c *Catalog) Density(pos wcs.SkyCoord, radiusDeg float64) float64 {
	if radiusDeg <= 0 {
		return 0
	}
	n := len(c.ConeSearch(pos, radiusDeg))
	area := math.Pi * radiusDeg * radiusDeg
	return float64(n) / area
}
