// Package catalog implements an in-memory astronomical source catalog that
// can be searched by sky cone, the query model of the NVO Cone Search
// protocol. It backs the simulated archives (NED, CNOC, DSS catalogs of the
// paper's Table 1) that the data services in internal/services expose over
// HTTP.
//
// Records carry a stable identifier, a sky position, and an ordered set of
// named properties (magnitudes, redshifts, colors...). A declination-band
// index keeps cone searches sublinear for the catalog sizes the prototype
// handles (10^4–10^6 sources).
package catalog

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/votable"
	"repro/internal/wcs"
)

// Record is one catalog source.
type Record struct {
	ID    string
	Pos   wcs.SkyCoord
	Props map[string]string
}

// Prop returns a property value or "".
func (r Record) Prop(name string) string { return r.Props[name] }

// Catalog is a cone-searchable collection of records. It is safe for
// concurrent use.
type Catalog struct {
	name  string
	cols  []string // property column order for table export
	mu    sync.RWMutex
	byID  map[string]int
	recs  []Record
	bands [][]int // record indices per declination band
}

// bandWidthDeg is the declination band granularity of the spatial index.
const bandWidthDeg = 1.0

// numBands covers declinations [-90, +90].
const numBands = int(180/bandWidthDeg) + 1

// ErrDuplicateID reports insertion of an already-present identifier.
var ErrDuplicateID = errors.New("catalog: duplicate record ID")

// New returns an empty catalog. cols fixes the property column order used
// when exporting to VOTable; properties not listed are not exported.
func New(name string, cols ...string) *Catalog {
	return &Catalog{
		name:  name,
		cols:  cols,
		byID:  make(map[string]int),
		bands: make([][]int, numBands),
	}
}

// Name returns the catalog name.
func (c *Catalog) Name() string { return c.name }

// Columns returns the exported property column names.
func (c *Catalog) Columns() []string { return append([]string(nil), c.cols...) }

// AppendColumns appends the exported property column names to dst and
// returns the extended slice — the allocation-free variant of Columns for
// hot paths that already hold a scratch slice.
func (c *Catalog) AppendColumns(dst []string) []string { return append(dst, c.cols...) }

// Len returns the number of records.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.recs)
}

func bandOf(dec float64) int {
	b := int((dec + 90) / bandWidthDeg)
	if b < 0 {
		b = 0
	}
	if b >= numBands {
		b = numBands - 1
	}
	return b
}

// Add inserts a record. IDs must be unique.
func (c *Catalog) Add(r Record) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.byID[r.ID]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateID, r.ID)
	}
	if r.Props == nil {
		r.Props = map[string]string{}
	}
	idx := len(c.recs)
	c.recs = append(c.recs, r)
	c.byID[r.ID] = idx
	b := bandOf(r.Pos.Dec)
	c.bands[b] = append(c.bands[b], idx)
	return nil
}

// Get returns the record with the given ID.
func (c *Catalog) Get(id string) (Record, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	i, ok := c.byID[id]
	if !ok {
		return Record{}, false
	}
	return c.recs[i], true
}

// hit is an index into recs plus its angular separation from a search
// center — the unit the cone-search index works in so sorting and paging
// never copy Records around.
type hit struct {
	idx int
	sep float64
}

// coneHits returns the sorted hit list for a cone. Callers must hold at
// least a read lock.
func (c *Catalog) coneHits(center wcs.SkyCoord, radiusDeg float64) []hit {
	if radiusDeg < 0 {
		return nil
	}
	loBand := bandOf(center.Dec - radiusDeg)
	hiBand := bandOf(center.Dec + radiusDeg)

	var hits []hit
	for b := loBand; b <= hiBand; b++ {
		for _, i := range c.bands[b] {
			if sep := center.Separation(c.recs[i].Pos); sep <= radiusDeg {
				hits = append(hits, hit{i, sep})
			}
		}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].sep != hits[j].sep {
			return hits[i].sep < hits[j].sep
		}
		return c.recs[hits[i].idx].ID < c.recs[hits[j].idx].ID
	})
	return hits
}

// ConeSearch returns all records within radiusDeg of center, sorted by
// increasing angular separation (ties broken by ID for determinism).
func (c *Catalog) ConeSearch(center wcs.SkyCoord, radiusDeg float64) []Record {
	c.mu.RLock()
	defer c.mu.RUnlock()
	hits := c.coneHits(center, radiusDeg)
	if len(hits) == 0 {
		return nil
	}
	out := make([]Record, len(hits))
	for i, h := range hits {
		out[i] = c.recs[h.idx]
	}
	return out
}

// ConeSearchVisit streams the cone-search hits in the same deterministic
// (separation, ID) order as ConeSearch without materializing the record
// slice; iteration stops early when fn returns false. fn must not mutate
// the catalog (the read lock is held across calls).
func (c *Catalog) ConeSearchVisit(center wcs.SkyCoord, radiusDeg float64, fn func(rec Record, sepDeg float64) bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, h := range c.coneHits(center, radiusDeg) {
		if !fn(c.recs[h.idx], h.sep) {
			return
		}
	}
}

// ConeSearchPage returns the [offset, offset+limit) slice of the full
// sorted cone-search hit list plus the total hit count, so paged services
// can bound each response while keeping the global deterministic order. A
// negative limit means "to the end".
func (c *Catalog) ConeSearchPage(center wcs.SkyCoord, radiusDeg float64, offset, limit int) ([]Record, int) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	hits := c.coneHits(center, radiusDeg)
	total := len(hits)
	if offset < 0 {
		offset = 0
	}
	if offset >= total {
		return nil, total
	}
	end := total
	if limit >= 0 && offset+limit < end {
		end = offset + limit
	}
	out := make([]Record, 0, end-offset)
	for _, h := range hits[offset:end] {
		out = append(out, c.recs[h.idx])
	}
	return out, total
}

// All returns every record in insertion order.
func (c *Catalog) All() []Record {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]Record(nil), c.recs...)
}

// Visit calls fn for every record in insertion order, stopping early when
// fn returns false. It is the copy-free alternative to All; fn must not
// mutate the catalog (the read lock is held across calls).
func (c *Catalog) Visit(fn func(Record) bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, r := range c.recs {
		if !fn(r) {
			return
		}
	}
}

// standard field declarations for exported tables.
var baseFields = []votable.Field{
	{Name: "id", Datatype: votable.TypeChar, UCD: "meta.id;meta.main"},
	{Name: "ra", Datatype: votable.TypeDouble, Unit: "deg", UCD: "pos.eq.ra"},
	{Name: "dec", Datatype: votable.TypeDouble, Unit: "deg", UCD: "pos.eq.dec"},
}

// TableMeta returns the VOTable metadata ToVOTable would emit — the field
// declarations a streaming producer hands to a votable.Encoder before
// streaming rows built with AppendRowCells.
func (c *Catalog) TableMeta() votable.TableMeta {
	fields := append([]votable.Field(nil), baseFields...)
	for _, col := range c.cols {
		fields = append(fields, votable.Field{Name: col, Datatype: votable.TypeChar})
	}
	return votable.TableMeta{Name: c.name, Fields: fields}
}

// AppendRowCells appends rec's exported cells (id, ra, dec, then the
// property columns) to dst and returns the extended slice, so streaming
// producers can reuse one scratch row across a whole survey.
func (c *Catalog) AppendRowCells(dst []string, r Record) []string {
	dst = append(dst, r.ID, formatDeg(r.Pos.RA), formatDeg(r.Pos.Dec))
	for _, col := range c.cols {
		dst = append(dst, r.Props[col])
	}
	return dst
}

// ToVOTable renders records as a VOTable with columns id, ra, dec followed by
// the catalog's property columns.
func (c *Catalog) ToVOTable(recs []Record) *votable.Table {
	meta := c.TableMeta()
	t := votable.NewTable(c.name, meta.Fields...)
	for _, r := range recs {
		// Row width is fields by construction; ignore the impossible error.
		_ = t.AppendRow(c.AppendRowCells(nil, r)...)
	}
	return t
}

// FromVOTable loads records from a table with id/ra/dec columns; every other
// column becomes a property. It is the inverse of ToVOTable.
func FromVOTable(name string, t *votable.Table) (*Catalog, error) {
	idCol := t.ColumnIndex("id")
	raCol := t.ColumnIndex("ra")
	decCol := t.ColumnIndex("dec")
	if idCol < 0 || raCol < 0 || decCol < 0 {
		return nil, errors.New("catalog: table must have id, ra and dec columns")
	}
	var props []string
	for i, f := range t.Fields {
		if i != idCol && i != raCol && i != decCol {
			props = append(props, f.Name)
		}
	}
	c := New(name, props...)
	for i := range t.Rows {
		ra, okRA := t.Float(i, "ra")
		dec, okDec := t.Float(i, "dec")
		if !okRA || !okDec {
			return nil, fmt.Errorf("catalog: row %d has unparsable position", i)
		}
		rec := Record{ID: t.Rows[i][idCol], Pos: wcs.New(ra, dec), Props: map[string]string{}}
		for j, f := range t.Fields {
			if j == idCol || j == raCol || j == decCol {
				continue
			}
			rec.Props[f.Name] = t.Rows[i][j]
		}
		if err := c.Add(rec); err != nil {
			return nil, err
		}
	}
	return c, nil
}

func formatDeg(v float64) string {
	// 7 decimals ≈ 0.4 milliarcsec: far below any pixel scale in play.
	return trimZeros(fmt.Sprintf("%.7f", v))
}

func trimZeros(s string) string {
	i := len(s)
	for i > 0 && s[i-1] == '0' {
		i--
	}
	if i > 0 && s[i-1] == '.' {
		i--
	}
	if i == 0 {
		return "0"
	}
	return s[:i]
}

// Nearest returns the record closest to pos within maxSepDeg, if any.
func (c *Catalog) Nearest(pos wcs.SkyCoord, maxSepDeg float64) (Record, bool) {
	hits := c.ConeSearch(pos, maxSepDeg)
	if len(hits) == 0 {
		return Record{}, false
	}
	return hits[0], true
}

// Density returns the local projected source density (sources per square
// degree) within radiusDeg of pos. The paper's science model uses local
// galaxy density as one axis of the Dressler relation.
func (c *Catalog) Density(pos wcs.SkyCoord, radiusDeg float64) float64 {
	if radiusDeg <= 0 {
		return 0
	}
	n := len(c.ConeSearch(pos, radiusDeg))
	area := math.Pi * radiusDeg * radiusDeg
	return float64(n) / area
}
