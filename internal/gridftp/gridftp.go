// Package gridftp simulates the GridFTP wide-area transfer service the
// prototype staged data with (Allcock et al. 2001). Each Grid site owns an
// in-memory file store addressed by URLs of the form
//
//	gridftp://<site>/<path>
//
// and the Service moves real bytes between stores while charging a
// bandwidth + latency cost model, so the planner's transfer nodes have both
// correct data-flow semantics and a meaningful duration for the
// discrete-event executor. The paper notes GridFTP "provides much better
// performance than the SIA" (§4.3.1 item 3) — the model's parameters encode
// exactly that contrast for ablation A2.
package gridftp

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/faults"
)

// Errors returned by the service.
var (
	ErrBadURL      = errors.New("gridftp: bad URL")
	ErrNoSuchFile  = errors.New("gridftp: no such file")
	ErrNoSuchSite  = errors.New("gridftp: no such site")
	ErrEmptyUpload = errors.New("gridftp: empty content")
)

// URL formats a gridftp URL.
func URL(site, path string) string {
	return "gridftp://" + site + "/" + strings.TrimPrefix(path, "/")
}

// ParseURL splits a gridftp URL into site and path. The site and the path
// must be non-empty, and the path may not contain empty components
// (a "//" inside, or a trailing "/").
func ParseURL(u string) (site, path string, err error) {
	const prefix = "gridftp://"
	if !strings.HasPrefix(u, prefix) {
		return "", "", fmt.Errorf("%w: %q (missing scheme)", ErrBadURL, u)
	}
	rest := u[len(prefix):]
	site, path, ok := strings.Cut(rest, "/")
	if !ok || site == "" || path == "" {
		return "", "", fmt.Errorf("%w: %q (need site and path)", ErrBadURL, u)
	}
	for _, seg := range strings.Split(path, "/") {
		if seg == "" {
			return "", "", fmt.Errorf("%w: %q (empty path component)", ErrBadURL, u)
		}
	}
	return site, path, nil
}

// Store is one site's file system. It is safe for concurrent use.
type Store struct {
	site string
	mu   sync.RWMutex
	m    map[string][]byte
}

// NewStore returns an empty store for a site.
func NewStore(site string) *Store {
	return &Store{site: site, m: map[string][]byte{}}
}

// Site returns the owning site name.
func (s *Store) Site() string { return s.site }

// Put stores content at path, replacing any previous file.
func (s *Store) Put(path string, content []byte) error {
	if len(content) == 0 {
		return ErrEmptyUpload
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := make([]byte, len(content))
	copy(cp, content)
	s.m[path] = cp
	return nil
}

// Get returns a copy of the file's content.
func (s *Store) Get(path string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.m[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s at %s", ErrNoSuchFile, path, s.site)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// Exists reports whether path is stored.
func (s *Store) Exists(path string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.m[path]
	return ok
}

// Size returns the file's size in bytes (0 if missing).
func (s *Store) Size(path string) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return int64(len(s.m[path]))
}

// Delete removes a file.
func (s *Store) Delete(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[path]; !ok {
		return fmt.Errorf("%w: %s at %s", ErrNoSuchFile, path, s.site)
	}
	delete(s.m, path)
	return nil
}

// List returns all paths, sorted.
func (s *Store) List() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.m))
	for p := range s.m {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of stored files.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// TotalBytes returns the sum of all file sizes.
func (s *Store) TotalBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, d := range s.m {
		n += int64(len(d))
	}
	return n
}

// Network is the cost model for transfers.
type Network struct {
	// WideAreaMBps is the inter-site bandwidth in MB/s (default 10,
	// year-2003 wide-area rates).
	WideAreaMBps float64
	// LocalMBps is the intra-site bandwidth in MB/s (default 100).
	LocalMBps float64
	// Latency is the per-transfer setup cost (default 50ms: authentication
	// + control channel).
	Latency time.Duration
}

// withDefaults fills zero fields.
func (n Network) withDefaults() Network {
	if n.WideAreaMBps <= 0 {
		n.WideAreaMBps = 10
	}
	if n.LocalMBps <= 0 {
		n.LocalMBps = 100
	}
	if n.Latency <= 0 {
		n.Latency = 50 * time.Millisecond
	}
	return n
}

// Cost returns the model duration of moving size bytes between two sites.
func (n Network) Cost(srcSite, dstSite string, size int64) time.Duration {
	n = n.withDefaults()
	mbps := n.WideAreaMBps
	if srcSite == dstSite {
		mbps = n.LocalMBps
	}
	seconds := float64(size) / (mbps * 1e6)
	return n.Latency + time.Duration(seconds*float64(time.Second))
}

// Stats aggregates transfer accounting (the paper reports "the transfer of
// 2295 files" for its campaign; these counters reproduce that number).
type Stats struct {
	Transfers int
	Bytes     int64
}

// OpTransfer is the fault-point name Transfer checks; rules select
// transfers by source site (Site) and source path (Key).
const OpTransfer = "gridftp.transfer"

// Service is the transfer fabric across all site stores.
type Service struct {
	net    Network
	inj    *faults.Injector
	mu     sync.Mutex
	stores map[string]*Store
	stats  Stats
}

// NewService returns a transfer service with the given cost model.
func NewService(net Network) *Service {
	return &Service{net: net.withDefaults(), stores: map[string]*Store{}}
}

// SetInjector installs (or removes, with nil) the fault injector. The nil
// default costs one pointer check per transfer.
func (s *Service) SetInjector(in *faults.Injector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inj = in
}

// injector returns the current injector under the lock.
func (s *Service) injector() *faults.Injector {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inj
}

// Store returns (creating on demand) the store for a site.
func (s *Service) Store(site string) *Store {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.stores[site]; ok {
		return st
	}
	st := NewStore(site)
	s.stores[site] = st
	return st
}

// Sites returns all known sites, sorted.
func (s *Service) Sites() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.stores))
	for site := range s.stores {
		out = append(out, site)
	}
	sort.Strings(out)
	return out
}

// Result describes one completed transfer.
type Result struct {
	SrcURL, DstURL string
	Bytes          int64
	Duration       time.Duration // model time, not wall time
}

// Transfer copies srcURL to dstURL, returning the modelled duration. The
// copy itself happens immediately (wall-clock); Duration is for the
// discrete-event executor's clock.
//
// With a fault injector installed, each transfer is a fault point keyed by
// the source site and path: transient/timeout/site-down faults fail the
// transfer outright, and a corruption fault models checksum verification
// catching damage in flight — the transfer fails and no bytes are written
// to the destination, so a retry can succeed cleanly.
func (s *Service) Transfer(srcURL, dstURL string) (Result, error) {
	srcSite, srcPath, err := ParseURL(srcURL)
	if err != nil {
		return Result{}, err
	}
	dstSite, dstPath, err := ParseURL(dstURL)
	if err != nil {
		return Result{}, err
	}
	if err := s.injector().Check(faults.Op{Name: OpTransfer, Site: srcSite, Key: srcPath}); err != nil {
		return Result{}, fmt.Errorf("gridftp: transfer %s -> %s: %w", srcURL, dstURL, err)
	}
	s.mu.Lock()
	src, ok := s.stores[srcSite]
	s.mu.Unlock()
	if !ok {
		return Result{}, fmt.Errorf("%w: %q", ErrNoSuchSite, srcSite)
	}
	data, err := src.Get(srcPath)
	if err != nil {
		return Result{}, err
	}
	if err := s.Store(dstSite).Put(dstPath, data); err != nil {
		return Result{}, err
	}
	res := Result{
		SrcURL:   srcURL,
		DstURL:   dstURL,
		Bytes:    int64(len(data)),
		Duration: s.net.Cost(srcSite, dstSite, int64(len(data))),
	}
	s.mu.Lock()
	s.stats.Transfers++
	s.stats.Bytes += res.Bytes
	s.mu.Unlock()
	return res, nil
}

// Estimate returns the modelled duration of a prospective transfer without
// performing it (schedulers need the cost before the data moves). Unknown
// sources cost the bare latency.
func (s *Service) Estimate(srcURL, dstURL string) time.Duration {
	srcSite, srcPath, err1 := ParseURL(srcURL)
	dstSite, _, err2 := ParseURL(dstURL)
	if err1 != nil || err2 != nil {
		return s.net.withDefaults().Latency
	}
	s.mu.Lock()
	src, ok := s.stores[srcSite]
	s.mu.Unlock()
	var size int64
	if ok {
		size = src.Size(srcPath)
	}
	return s.net.Cost(srcSite, dstSite, size)
}

// Stats returns the cumulative transfer counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ResetStats zeroes the counters (used between experiment runs).
func (s *Service) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = Stats{}
}
