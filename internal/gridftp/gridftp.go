// Package gridftp simulates the GridFTP wide-area transfer service the
// prototype staged data with (Allcock et al. 2001). Each Grid site owns an
// in-memory file store addressed by URLs of the form
//
//	gridftp://<site>/<path>
//
// and the Service moves real bytes between stores while charging a
// bandwidth + latency cost model, so the planner's transfer nodes have both
// correct data-flow semantics and a meaningful duration for the
// discrete-event executor. The paper notes GridFTP "provides much better
// performance than the SIA" (§4.3.1 item 3) — the model's parameters encode
// exactly that contrast for ablation A2.
package gridftp

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/faults"
)

// Errors returned by the service.
var (
	ErrBadURL      = errors.New("gridftp: bad URL")
	ErrNoSuchFile  = errors.New("gridftp: no such file")
	ErrNoSuchSite  = errors.New("gridftp: no such site")
	ErrEmptyUpload = errors.New("gridftp: empty content")
	// ErrChecksum marks a replica whose content no longer matches the
	// checksum recorded at creation — corruption, not a transient fault. The
	// right response is not a plain retry (the damage is at rest and will
	// not heal) but an alternate replica or re-derivation; see
	// resilience.Classify.
	ErrChecksum = errors.New("gridftp: checksum mismatch")
)

// Checksum returns the content checksum (hex sha256) this package records at
// file creation and verifies on every transfer.
func Checksum(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// ChecksumError reports a replica failing verification: the stored bytes
// hash to Got but the checksum of record is Want. It unwraps to ErrChecksum
// so errors.Is(err, ErrChecksum) classifies it.
type ChecksumError struct {
	Site, Path string
	Want, Got  string
}

// Error formats the mismatch.
func (e *ChecksumError) Error() string {
	return fmt.Sprintf("gridftp: checksum mismatch for %s at %s: stored bytes hash %.12s, recorded %.12s",
		e.Path, e.Site, e.Got, e.Want)
}

// Unwrap ties the typed error to the ErrChecksum sentinel.
func (e *ChecksumError) Unwrap() error { return ErrChecksum }

// URL formats a gridftp URL.
func URL(site, path string) string {
	return "gridftp://" + site + "/" + strings.TrimPrefix(path, "/")
}

// ParseURL splits a gridftp URL into site and path. The site and the path
// must be non-empty, and the path may not contain empty components
// (a "//" inside, or a trailing "/").
func ParseURL(u string) (site, path string, err error) {
	const prefix = "gridftp://"
	if !strings.HasPrefix(u, prefix) {
		return "", "", fmt.Errorf("%w: %q (missing scheme)", ErrBadURL, u)
	}
	rest := u[len(prefix):]
	site, path, ok := strings.Cut(rest, "/")
	if !ok || site == "" || path == "" {
		return "", "", fmt.Errorf("%w: %q (need site and path)", ErrBadURL, u)
	}
	for _, seg := range strings.Split(path, "/") {
		if seg == "" {
			return "", "", fmt.Errorf("%w: %q (empty path component)", ErrBadURL, u)
		}
	}
	return site, path, nil
}

// Store is one site's file system. It is safe for concurrent use. Alongside
// each file it keeps the checksum recorded when the file was created — the
// integrity baseline transfers and consumers verify against.
type Store struct {
	site string
	mu   sync.RWMutex
	m    map[string][]byte
	sums map[string]string
}

// NewStore returns an empty store for a site.
func NewStore(site string) *Store {
	return &Store{site: site, m: map[string][]byte{}, sums: map[string]string{}}
}

// Site returns the owning site name.
func (s *Store) Site() string { return s.site }

// Put stores content at path, replacing any previous file, and records the
// content checksum as the file's integrity baseline.
func (s *Store) Put(path string, content []byte) error {
	if len(content) == 0 {
		return ErrEmptyUpload
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := make([]byte, len(content))
	copy(cp, content)
	s.m[path] = cp
	s.sums[path] = Checksum(cp)
	return nil
}

// Sum returns the checksum recorded when the file was created (not a fresh
// hash of the bytes — after at-rest damage the two differ, which is the
// point).
func (s *Store) Sum(path string) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sum, ok := s.sums[path]
	return sum, ok
}

// Verify recomputes the file's checksum and compares it to the record. A
// mismatch returns a *ChecksumError (errors.Is ErrChecksum).
func (s *Store) Verify(path string) error {
	s.mu.RLock()
	data, ok := s.m[path]
	want := s.sums[path]
	s.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %s at %s", ErrNoSuchFile, path, s.site)
	}
	if got := Checksum(data); got != want {
		return &ChecksumError{Site: s.site, Path: path, Want: want, Got: got}
	}
	return nil
}

// Corrupt damages the file's bytes at rest while leaving the recorded
// checksum untouched — the persistent bit-rot a KindCorruption fault models.
// Retrying a read of a corrupted replica keeps failing verification until the
// replica is quarantined and replaced.
func (s *Store) Corrupt(path string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.m[path]
	if !ok {
		return false
	}
	data[len(data)/2] ^= 0xFF
	return true
}

// Get returns a copy of the file's content.
func (s *Store) Get(path string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.m[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s at %s", ErrNoSuchFile, path, s.site)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// Exists reports whether path is stored.
func (s *Store) Exists(path string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.m[path]
	return ok
}

// Size returns the file's size in bytes (0 if missing).
func (s *Store) Size(path string) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return int64(len(s.m[path]))
}

// Delete removes a file.
func (s *Store) Delete(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[path]; !ok {
		return fmt.Errorf("%w: %s at %s", ErrNoSuchFile, path, s.site)
	}
	delete(s.m, path)
	delete(s.sums, path)
	return nil
}

// List returns all paths, sorted.
func (s *Store) List() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.m))
	for p := range s.m {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of stored files.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// TotalBytes returns the sum of all file sizes.
func (s *Store) TotalBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, d := range s.m {
		n += int64(len(d))
	}
	return n
}

// Network is the cost model for transfers.
type Network struct {
	// WideAreaMBps is the inter-site bandwidth in MB/s (default 10,
	// year-2003 wide-area rates).
	WideAreaMBps float64
	// LocalMBps is the intra-site bandwidth in MB/s (default 100).
	LocalMBps float64
	// Latency is the per-transfer setup cost (default 50ms: authentication
	// + control channel).
	Latency time.Duration
}

// withDefaults fills zero fields.
func (n Network) withDefaults() Network {
	if n.WideAreaMBps <= 0 {
		n.WideAreaMBps = 10
	}
	if n.LocalMBps <= 0 {
		n.LocalMBps = 100
	}
	if n.Latency <= 0 {
		n.Latency = 50 * time.Millisecond
	}
	return n
}

// Cost returns the model duration of moving size bytes between two sites.
func (n Network) Cost(srcSite, dstSite string, size int64) time.Duration {
	n = n.withDefaults()
	mbps := n.WideAreaMBps
	if srcSite == dstSite {
		mbps = n.LocalMBps
	}
	seconds := float64(size) / (mbps * 1e6)
	return n.Latency + time.Duration(seconds*float64(time.Second))
}

// Stats aggregates transfer accounting (the paper reports "the transfer of
// 2295 files" for its campaign; these counters reproduce that number).
type Stats struct {
	Transfers int
	Bytes     int64
}

// OpTransfer is the fault-point name Transfer checks; rules select
// transfers by source site (Site) and source path (Key).
const OpTransfer = "gridftp.transfer"

// Service is the transfer fabric across all site stores.
type Service struct {
	net    Network
	inj    *faults.Injector
	mu     sync.Mutex
	stores map[string]*Store
	stats  Stats
}

// NewService returns a transfer service with the given cost model.
func NewService(net Network) *Service {
	return &Service{net: net.withDefaults(), stores: map[string]*Store{}}
}

// Network returns the service's link-cost model, for planners that score
// candidate sites by estimated transfer cost.
func (s *Service) Network() Network {
	return s.net
}

// SetInjector installs (or removes, with nil) the fault injector. The nil
// default costs one pointer check per transfer.
func (s *Service) SetInjector(in *faults.Injector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inj = in
}

// injector returns the current injector under the lock.
func (s *Service) injector() *faults.Injector {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inj
}

// Store returns (creating on demand) the store for a site.
func (s *Service) Store(site string) *Store {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.stores[site]; ok {
		return st
	}
	st := NewStore(site)
	s.stores[site] = st
	return st
}

// Sites returns all known sites, sorted.
func (s *Service) Sites() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.stores))
	for site := range s.stores {
		out = append(out, site)
	}
	sort.Strings(out)
	return out
}

// Result describes one completed transfer.
type Result struct {
	SrcURL, DstURL string
	Bytes          int64
	Duration       time.Duration // model time, not wall time
}

// Transfer copies srcURL to dstURL, returning the modelled duration. The
// copy itself happens immediately (wall-clock); Duration is for the
// discrete-event executor's clock.
//
// Every transfer verifies the source replica against its checksum of record
// before a single byte reaches the destination, so corruption never
// propagates. With a fault injector installed, each transfer is a fault
// point keyed by the source site and path: transient/timeout/site-down
// faults fail the transfer outright, while a corruption fault damages the
// source replica AT REST (the recorded checksum goes stale) — verification
// then fails this and every later transfer from that replica with a
// *ChecksumError until the replica is quarantined and re-derived or an
// alternate replica is used.
func (s *Service) Transfer(srcURL, dstURL string) (Result, error) {
	srcSite, srcPath, err := ParseURL(srcURL)
	if err != nil {
		return Result{}, err
	}
	dstSite, dstPath, err := ParseURL(dstURL)
	if err != nil {
		return Result{}, err
	}
	s.mu.Lock()
	src, ok := s.stores[srcSite]
	s.mu.Unlock()
	if err := s.injector().Check(faults.Op{Name: OpTransfer, Site: srcSite, Key: srcPath}); err != nil {
		if faults.Is(err, faults.KindCorruption) && ok {
			// Model bit-rot: the injector fires once, the damage persists.
			src.Corrupt(srcPath)
		} else {
			return Result{}, fmt.Errorf("gridftp: transfer %s -> %s: %w", srcURL, dstURL, err)
		}
	}
	if !ok {
		return Result{}, fmt.Errorf("%w: %q", ErrNoSuchSite, srcSite)
	}
	if err := src.Verify(srcPath); err != nil {
		return Result{}, fmt.Errorf("gridftp: transfer %s -> %s: %w", srcURL, dstURL, err)
	}
	data, err := src.Get(srcPath)
	if err != nil {
		return Result{}, err
	}
	if err := s.Store(dstSite).Put(dstPath, data); err != nil {
		return Result{}, err
	}
	res := Result{
		SrcURL:   srcURL,
		DstURL:   dstURL,
		Bytes:    int64(len(data)),
		Duration: s.net.Cost(srcSite, dstSite, int64(len(data))),
	}
	s.mu.Lock()
	s.stats.Transfers++
	s.stats.Bytes += res.Bytes
	s.mu.Unlock()
	return res, nil
}

// Verify checks the replica at url against its checksum of record — the
// pre-consumption integrity gate a leaf job runs before trusting an input.
func (s *Service) Verify(url string) error {
	site, path, err := ParseURL(url)
	if err != nil {
		return err
	}
	s.mu.Lock()
	st, ok := s.stores[site]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchSite, site)
	}
	return st.Verify(path)
}

// Estimate returns the modelled duration of a prospective transfer without
// performing it (schedulers need the cost before the data moves). Unknown
// sources cost the bare latency.
func (s *Service) Estimate(srcURL, dstURL string) time.Duration {
	srcSite, srcPath, err1 := ParseURL(srcURL)
	dstSite, _, err2 := ParseURL(dstURL)
	if err1 != nil || err2 != nil {
		return s.net.withDefaults().Latency
	}
	s.mu.Lock()
	src, ok := s.stores[srcSite]
	s.mu.Unlock()
	var size int64
	if ok {
		size = src.Size(srcPath)
	}
	return s.net.Cost(srcSite, dstSite, size)
}

// Stats returns the cumulative transfer counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ResetStats zeroes the counters (used between experiment runs).
func (s *Service) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = Stats{}
}
