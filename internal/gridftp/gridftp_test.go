package gridftp

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
)

func TestURLRoundTrip(t *testing.T) {
	u := URL("isi", "data/g1.fit")
	if u != "gridftp://isi/data/g1.fit" {
		t.Fatalf("URL = %q", u)
	}
	site, path, err := ParseURL(u)
	if err != nil || site != "isi" || path != "data/g1.fit" {
		t.Fatalf("ParseURL = %q %q %v", site, path, err)
	}
	// Leading slash in path is normalized.
	if URL("isi", "/x") != "gridftp://isi/x" {
		t.Error("leading slash not normalized")
	}
}

func TestParseURL(t *testing.T) {
	tests := []struct {
		name string
		in   string
		site string
		path string
		ok   bool
	}{
		{"simple", "gridftp://isi/x", "isi", "x", true},
		{"nested path", "gridftp://isi/data/g1.fit", "isi", "data/g1.fit", true},
		{"dotted site", "gridftp://isi.edu/d/f", "isi.edu", "d/f", true},
		{"empty string", "", "", "", false},
		{"wrong scheme", "http://isi/x", "", "", false},
		{"scheme only", "gridftp://", "", "", false},
		{"site without path", "gridftp://siteonly", "", "", false},
		{"empty site", "gridftp:///path", "", "", false},
		{"empty path", "gridftp://site/", "", "", false},
		{"empty site and path", "gridftp:///", "", "", false},
		{"empty inner component", "gridftp://site/a//b", "", "", false},
		{"trailing slash component", "gridftp://site/a/", "", "", false},
		{"double slash path start", "gridftp://site//a", "", "", false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			site, path, err := ParseURL(tc.in)
			if tc.ok {
				if err != nil || site != tc.site || path != tc.path {
					t.Fatalf("ParseURL(%q) = %q, %q, %v; want %q, %q",
						tc.in, site, path, err, tc.site, tc.path)
				}
				return
			}
			if err == nil {
				t.Fatalf("ParseURL(%q) = %q, %q; want error", tc.in, site, path)
			}
			if !errors.Is(err, ErrBadURL) {
				t.Errorf("ParseURL(%q) error %v must wrap ErrBadURL", tc.in, err)
			}
		})
	}
}

func TestTransferFaultInjection(t *testing.T) {
	svc := NewService(Network{})
	_ = svc.Store("isi").Put("g1.fit", []byte("payload"))

	// Site-down window over the first two isi-sourced transfers, then a
	// corruption fault that damages the replica at rest.
	svc.SetInjector(faults.New(1,
		faults.Rule{Name: OpTransfer, Site: "isi", Kind: faults.KindSiteDown, Until: 2},
		faults.Rule{Name: OpTransfer, Site: "isi", Kind: faults.KindCorruption, From: 2, Until: 3},
	))
	for i := 0; i < 2; i++ {
		_, err := svc.Transfer(URL("isi", "g1.fit"), URL("fnal", "g1.fit"))
		if !faults.Is(err, faults.KindSiteDown) {
			t.Fatalf("attempt %d: err = %v, want injected site-down", i, err)
		}
		if svc.Store("fnal").Exists("g1.fit") {
			t.Fatal("failed transfer must not deliver bytes")
		}
	}
	// The corruption fault surfaces as a typed checksum error, and the
	// damage is persistent: the fault window passing does not heal it.
	for i := 0; i < 2; i++ {
		_, err := svc.Transfer(URL("isi", "g1.fit"), URL("fnal", "g1.fit"))
		if !errors.Is(err, ErrChecksum) {
			t.Fatalf("corrupt attempt %d: err = %v, want ErrChecksum", i, err)
		}
		var ce *ChecksumError
		if !errors.As(err, &ce) || ce.Site != "isi" || ce.Path != "g1.fit" {
			t.Fatalf("corrupt attempt %d: err = %v, want *ChecksumError for isi/g1.fit", i, err)
		}
		if svc.Store("fnal").Exists("g1.fit") {
			t.Fatal("corrupt transfer must not deliver bytes")
		}
	}
	if st := svc.Stats(); st.Transfers != 0 {
		t.Errorf("injected failures must not count as transfers: %+v", st)
	}
	// Re-creating the replica (what re-derivation does) restores integrity.
	if err := svc.Store("isi").Put("g1.fit", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Transfer(URL("isi", "g1.fit"), URL("fnal", "g1.fit")); err != nil {
		t.Fatal(err)
	}
	if got, _ := svc.Store("fnal").Get("g1.fit"); string(got) != "payload" {
		t.Error("recovered transfer must deliver intact bytes")
	}
	// Removing the injector restores the zero-cost path.
	svc.SetInjector(nil)
	if _, err := svc.Transfer(URL("isi", "g1.fit"), URL("usc", "g1.fit")); err != nil {
		t.Fatal(err)
	}
}

func TestStoreBasics(t *testing.T) {
	st := NewStore("isi")
	if st.Site() != "isi" {
		t.Error("site name lost")
	}
	if err := st.Put("a.fit", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := st.Put("empty", nil); err == nil {
		t.Error("empty content must fail")
	}
	data, err := st.Get("a.fit")
	if err != nil || string(data) != "hello" {
		t.Fatalf("Get = %q, %v", data, err)
	}
	// Mutating the returned copy must not affect the store.
	data[0] = 'X'
	again, _ := st.Get("a.fit")
	if string(again) != "hello" {
		t.Error("Get must return a copy")
	}
	if !st.Exists("a.fit") || st.Exists("b") {
		t.Error("Exists wrong")
	}
	if st.Size("a.fit") != 5 || st.Size("b") != 0 {
		t.Error("Size wrong")
	}
	if st.Len() != 1 || st.TotalBytes() != 5 {
		t.Error("accounting wrong")
	}
	if err := st.Delete("a.fit"); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete("a.fit"); err == nil {
		t.Error("double delete must fail")
	}
	if _, err := st.Get("a.fit"); err == nil {
		t.Error("deleted file must not be readable")
	}
}

func TestStoreList(t *testing.T) {
	st := NewStore("s")
	_ = st.Put("b", []byte("1"))
	_ = st.Put("a", []byte("2"))
	l := st.List()
	if len(l) != 2 || l[0] != "a" || l[1] != "b" {
		t.Errorf("List = %v", l)
	}
}

func TestTransferMovesBytes(t *testing.T) {
	svc := NewService(Network{})
	payload := bytes.Repeat([]byte{0xAB}, 1024)
	if err := svc.Store("isi").Put("img/g1.fit", payload); err != nil {
		t.Fatal(err)
	}
	res, err := svc.Transfer(URL("isi", "img/g1.fit"), URL("fnal", "stage/g1.fit"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != 1024 {
		t.Errorf("bytes = %d", res.Bytes)
	}
	got, err := svc.Store("fnal").Get("stage/g1.fit")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatal("content not delivered intact")
	}
	// Source keeps its copy (replication, not move).
	if !svc.Store("isi").Exists("img/g1.fit") {
		t.Error("source file must remain")
	}
	st := svc.Stats()
	if st.Transfers != 1 || st.Bytes != 1024 {
		t.Errorf("stats = %+v", st)
	}
}

func TestTransferErrors(t *testing.T) {
	svc := NewService(Network{})
	if _, err := svc.Transfer("bogus", URL("a", "b")); err == nil {
		t.Error("bad src URL must fail")
	}
	if _, err := svc.Transfer(URL("a", "b"), "bogus"); err == nil {
		t.Error("bad dst URL must fail")
	}
	if _, err := svc.Transfer(URL("ghost", "x"), URL("a", "b")); err == nil {
		t.Error("unknown source site must fail")
	}
	svc.Store("isi") // create empty store
	if _, err := svc.Transfer(URL("isi", "missing"), URL("a", "b")); err == nil {
		t.Error("missing file must fail")
	}
	if st := svc.Stats(); st.Transfers != 0 {
		t.Errorf("failed transfers must not count: %+v", st)
	}
}

func TestNetworkCostModel(t *testing.T) {
	n := Network{WideAreaMBps: 10, LocalMBps: 100, Latency: 50 * time.Millisecond}
	size := int64(10 * 1e6) // 10 MB
	wide := n.Cost("isi", "fnal", size)
	local := n.Cost("isi", "isi", size)
	if wide <= local {
		t.Errorf("wide-area (%v) must cost more than local (%v)", wide, local)
	}
	wantWide := 50*time.Millisecond + time.Second
	if wide != wantWide {
		t.Errorf("wide cost = %v, want %v", wide, wantWide)
	}
	// Latency floor applies to tiny transfers.
	if got := n.Cost("a", "b", 1); got < 50*time.Millisecond {
		t.Errorf("tiny transfer cost %v below latency floor", got)
	}
	// Zero-valued network gets defaults.
	var dflt Network
	if dflt.Cost("a", "b", 1e6) <= 0 {
		t.Error("default network must have positive cost")
	}
}

func TestConcurrentTransfers(t *testing.T) {
	svc := NewService(Network{})
	for i := 0; i < 8; i++ {
		_ = svc.Store("src").Put(fmt.Sprintf("f%d", i), bytes.Repeat([]byte{1}, 100))
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 20; k++ {
				if _, err := svc.Transfer(URL("src", fmt.Sprintf("f%d", i)),
					URL(fmt.Sprintf("dst%d", k%3), fmt.Sprintf("f%d-%d", i, k))); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	st := svc.Stats()
	if st.Transfers != 160 || st.Bytes != 16000 {
		t.Errorf("stats = %+v", st)
	}
	svc.ResetStats()
	if st := svc.Stats(); st.Transfers != 0 {
		t.Error("ResetStats failed")
	}
}

func TestSites(t *testing.T) {
	svc := NewService(Network{})
	svc.Store("b")
	svc.Store("a")
	if s := svc.Sites(); len(s) != 2 || s[0] != "a" {
		t.Errorf("Sites = %v", s)
	}
}

func BenchmarkTransfer64KB(b *testing.B) {
	svc := NewService(Network{})
	payload := bytes.Repeat([]byte{7}, 64<<10)
	_ = svc.Store("src").Put("f", payload)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Transfer(URL("src", "f"), URL("dst", fmt.Sprintf("f%d", i))); err != nil {
			b.Fatal(err)
		}
	}
}

func TestEstimate(t *testing.T) {
	svc := NewService(Network{WideAreaMBps: 10, LocalMBps: 100, Latency: 50 * time.Millisecond})
	_ = svc.Store("src").Put("f", bytes.Repeat([]byte{1}, 10_000_000)) // 10 MB
	wide := svc.Estimate(URL("src", "f"), URL("dst", "f"))
	if wide != 50*time.Millisecond+time.Second {
		t.Errorf("wide estimate = %v", wide)
	}
	local := svc.Estimate(URL("src", "f"), URL("src", "f2"))
	if local >= wide {
		t.Errorf("local estimate %v should be below wide %v", local, wide)
	}
	// Unknown source or bad URLs cost bare latency.
	if got := svc.Estimate(URL("ghost", "x"), URL("dst", "x")); got != 50*time.Millisecond {
		t.Errorf("unknown source estimate = %v", got)
	}
	if got := svc.Estimate("junk", URL("dst", "x")); got != 50*time.Millisecond {
		t.Errorf("bad URL estimate = %v", got)
	}
}

func TestChecksumLifecycle(t *testing.T) {
	st := NewStore("isi")
	if err := st.Put("g.fit", []byte("galaxy pixels")); err != nil {
		t.Fatal(err)
	}
	sum, ok := st.Sum("g.fit")
	if !ok || sum != Checksum([]byte("galaxy pixels")) {
		t.Fatalf("Sum = %q, %t", sum, ok)
	}
	if err := st.Verify("g.fit"); err != nil {
		t.Fatalf("fresh file must verify: %v", err)
	}
	if !st.Corrupt("g.fit") {
		t.Fatal("Corrupt on existing file must succeed")
	}
	err := st.Verify("g.fit")
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupted file verified: %v", err)
	}
	// The recorded sum survives corruption (it is the baseline).
	if after, _ := st.Sum("g.fit"); after != sum {
		t.Error("recorded checksum must not follow the damaged bytes")
	}
	// Overwriting heals: a fresh Put records a fresh baseline.
	if err := st.Put("g.fit", []byte("galaxy pixels")); err != nil {
		t.Fatal(err)
	}
	if err := st.Verify("g.fit"); err != nil {
		t.Errorf("re-created file must verify: %v", err)
	}
	if st.Corrupt("ghost") {
		t.Error("Corrupt on a missing file must report false")
	}
	if err := st.Verify("ghost"); !errors.Is(err, ErrNoSuchFile) {
		t.Errorf("Verify missing = %v", err)
	}
}

func TestTransferCarriesChecksum(t *testing.T) {
	svc := NewService(Network{})
	_ = svc.Store("isi").Put("g.fit", []byte("payload"))
	if _, err := svc.Transfer(URL("isi", "g.fit"), URL("fnal", "g.fit")); err != nil {
		t.Fatal(err)
	}
	src, _ := svc.Store("isi").Sum("g.fit")
	dst, ok := svc.Store("fnal").Sum("g.fit")
	if !ok || dst != src {
		t.Errorf("destination sum %q, want source %q", dst, src)
	}
	if err := svc.Verify(URL("fnal", "g.fit")); err != nil {
		t.Errorf("Service.Verify = %v", err)
	}
	if err := svc.Verify(URL("ghost", "g.fit")); !errors.Is(err, ErrNoSuchSite) {
		t.Errorf("Verify unknown site = %v", err)
	}
	if err := svc.Verify("junk"); !errors.Is(err, ErrBadURL) {
		t.Errorf("Verify bad URL = %v", err)
	}
}
