package tcat

import (
	"bytes"
	"strings"
	"testing"
)

func sample() *Catalog {
	c := New()
	_ = c.Add(Entry{Transformation: "galMorph", Site: "isi", Path: "/nvo/bin/galMorph",
		Profile: map[string]string{"runtime": "4s"}})
	_ = c.Add(Entry{Transformation: "galMorph", Site: "fnal", Path: "/grid/galMorph"})
	_ = c.Add(Entry{Transformation: "concat", Site: "isi", Path: "/nvo/bin/concat"})
	return c
}

func TestAddLookup(t *testing.T) {
	c := sample()
	es, err := c.Lookup("galMorph")
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 2 || es[0].Site != "fnal" || es[1].Site != "isi" {
		t.Errorf("entries = %+v", es)
	}
	if es[1].Profile["runtime"] != "4s" {
		t.Errorf("profile lost: %+v", es[1].Profile)
	}
	e, err := c.LookupSite("galMorph", "isi")
	if err != nil || e.Path != "/nvo/bin/galMorph" {
		t.Errorf("LookupSite = %+v, %v", e, err)
	}
	if _, err := c.Lookup("ghost"); err == nil {
		t.Error("unknown transformation must fail")
	}
	if _, err := c.LookupSite("galMorph", "moon"); err == nil {
		t.Error("unknown site must fail")
	}
}

func TestAddValidation(t *testing.T) {
	c := New()
	for _, e := range []Entry{
		{},
		{Transformation: "x", Site: "s"},
		{Transformation: "x", Path: "p"},
		{Site: "s", Path: "p"},
	} {
		if err := c.Add(e); err == nil {
			t.Errorf("incomplete entry %+v must fail", e)
		}
	}
}

func TestAddReplaces(t *testing.T) {
	c := sample()
	_ = c.Add(Entry{Transformation: "galMorph", Site: "isi", Path: "/new/path"})
	e, _ := c.LookupSite("galMorph", "isi")
	if e.Path != "/new/path" {
		t.Errorf("replace failed: %q", e.Path)
	}
	es, _ := c.Lookup("galMorph")
	if len(es) != 2 {
		t.Errorf("replace duplicated: %d entries", len(es))
	}
}

func TestSitesTransformationsRemove(t *testing.T) {
	c := sample()
	if s := c.Sites("galMorph"); len(s) != 2 || s[0] != "fnal" {
		t.Errorf("sites = %v", s)
	}
	if trs := c.Transformations(); len(trs) != 2 || trs[0] != "concat" {
		t.Errorf("transformations = %v", trs)
	}
	if err := c.Remove("galMorph", "fnal"); err != nil {
		t.Fatal(err)
	}
	if s := c.Sites("galMorph"); len(s) != 1 {
		t.Errorf("sites after remove = %v", s)
	}
	if err := c.Remove("galMorph", "fnal"); err == nil {
		t.Error("double remove must fail")
	}
	if err := c.Remove("concat", "isi"); err != nil {
		t.Fatal(err)
	}
	if trs := c.Transformations(); len(trs) != 1 {
		t.Errorf("empty transformation must disappear: %v", trs)
	}
}

func TestTextRoundTrip(t *testing.T) {
	c := sample()
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range c.Transformations() {
		want, _ := c.Lookup(tr)
		have, err := got.Lookup(tr)
		if err != nil || len(have) != len(want) {
			t.Fatalf("round trip lost %q: %v", tr, err)
		}
		for i := range want {
			if have[i].Path != want[i].Path || have[i].Site != want[i].Site {
				t.Errorf("%q entry %d: %+v != %+v", tr, i, have[i], want[i])
			}
			if have[i].Profile["runtime"] != want[i].Profile["runtime"] {
				t.Errorf("%q profile mismatch", tr)
			}
		}
	}
}

func TestReadCommentsAndErrors(t *testing.T) {
	ok := `
# transformation catalog
galMorph isi /bin/gm runtime=4s

concat fnal /bin/cc
`
	c, err := Read(strings.NewReader(ok))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Transformations()) != 2 {
		t.Errorf("parsed %v", c.Transformations())
	}
	for _, bad := range []string{
		"onlytwo fields",
		"tr site path notakv",
		"tr site path =v",
	} {
		if _, err := Read(strings.NewReader(bad)); err == nil {
			t.Errorf("bad line %q must fail", bad)
		}
	}
}

func BenchmarkLookup(b *testing.B) {
	c := sample()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Lookup("galMorph"); err != nil {
			b.Fatal(err)
		}
	}
}
