// Package tcat implements the Transformation Catalog (Deelman et al. 2001)
// Pegasus consults to turn logical transformation names into concrete
// executables: for each (transformation, site) pair it records the executable
// path plus free-form profile metadata (environment, expected runtime, ...).
// The Concrete Workflow Generator queries it to learn where a component can
// run (Figure 2, steps 7–8).
//
// A line-oriented text codec mirrors the classic single-file TC format:
//
//	#transformation  site  path  key=value ...
//	galMorph isi /nvo/bin/galMorph runtime=4s
package tcat

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Entry binds a logical transformation to an executable at one site.
type Entry struct {
	Transformation string
	Site           string
	Path           string
	Profile        map[string]string
}

// Errors returned by the catalog.
var (
	ErrNotFound = errors.New("tcat: transformation not found")
	ErrBadEntry = errors.New("tcat: bad entry")
)

// Catalog is a thread-safe transformation catalog.
type Catalog struct {
	mu      sync.RWMutex
	entries map[string]map[string]Entry // tr -> site -> entry
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{entries: map[string]map[string]Entry{}}
}

// Add registers (or replaces) an entry.
func (c *Catalog) Add(e Entry) error {
	if e.Transformation == "" || e.Site == "" || e.Path == "" {
		return fmt.Errorf("%w: transformation, site and path are required", ErrBadEntry)
	}
	if e.Profile == nil {
		e.Profile = map[string]string{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries[e.Transformation] == nil {
		c.entries[e.Transformation] = map[string]Entry{}
	}
	c.entries[e.Transformation][e.Site] = e
	return nil
}

// Lookup returns every site binding for a transformation, sorted by site.
func (c *Catalog) Lookup(tr string) ([]Entry, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	sites, ok := c.entries[tr]
	if !ok || len(sites) == 0 {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, tr)
	}
	out := make([]Entry, 0, len(sites))
	for _, e := range sites {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out, nil
}

// LookupSite returns the binding of tr at one site.
func (c *Catalog) LookupSite(tr, site string) (Entry, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.entries[tr][site]
	if !ok {
		return Entry{}, fmt.Errorf("%w: %q at %q", ErrNotFound, tr, site)
	}
	return e, nil
}

// Sites returns the sites where tr is installed, sorted.
func (c *Catalog) Sites(tr string) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.entries[tr]))
	for s := range c.entries[tr] {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Transformations returns all logical names, sorted.
func (c *Catalog) Transformations() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.entries))
	for tr := range c.entries {
		out = append(out, tr)
	}
	sort.Strings(out)
	return out
}

// Remove deletes the binding of tr at site.
func (c *Catalog) Remove(tr, site string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[tr][site]; !ok {
		return fmt.Errorf("%w: %q at %q", ErrNotFound, tr, site)
	}
	delete(c.entries[tr], site)
	if len(c.entries[tr]) == 0 {
		delete(c.entries, tr)
	}
	return nil
}

// Write serializes the catalog in the text format, deterministically.
func (c *Catalog) Write(w io.Writer) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var trs []string
	for tr := range c.entries {
		trs = append(trs, tr)
	}
	sort.Strings(trs)
	for _, tr := range trs {
		var sites []string
		for s := range c.entries[tr] {
			sites = append(sites, s)
		}
		sort.Strings(sites)
		for _, s := range sites {
			e := c.entries[tr][s]
			if _, err := fmt.Fprintf(w, "%s %s %s", e.Transformation, e.Site, e.Path); err != nil {
				return err
			}
			var keys []string
			for k := range e.Profile {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				if _, err := fmt.Fprintf(w, " %s=%s", k, e.Profile[k]); err != nil {
					return err
				}
			}
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
	}
	return nil
}

// Read parses the text format into a new catalog. Blank lines and lines
// starting with '#' are skipped.
func Read(r io.Reader) (*Catalog, error) {
	c := New()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return nil, fmt.Errorf("%w: line %d: need transformation, site, path", ErrBadEntry, lineNo)
		}
		e := Entry{
			Transformation: fields[0],
			Site:           fields[1],
			Path:           fields[2],
			Profile:        map[string]string{},
		}
		for _, kv := range fields[3:] {
			eq := strings.IndexByte(kv, '=')
			if eq <= 0 {
				return nil, fmt.Errorf("%w: line %d: bad profile %q", ErrBadEntry, lineNo, kv)
			}
			e.Profile[kv[:eq]] = kv[eq+1:]
		}
		if err := c.Add(e); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return c, nil
}
