// Package sup exercises //nvolint:ignore handling for selectrevoke
// (the test points -selectrevoke.pkgs at this package).
package sup

func handshake(ready chan int) int {
	//nvolint:ignore selectrevoke fixture: startup handshake, sender is guaranteed alive until it sends
	return <-ready
}

func reasonless(ready chan int) int {
	//nvolint:ignore selectrevoke // want `nvolint:ignore directive requires a reason`
	return <-ready // want `blocking receive from ready has no revocation alternative`
}
