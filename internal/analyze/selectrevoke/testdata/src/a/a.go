// Package a exercises the selectrevoke analyzer (the test points
// -selectrevoke.pkgs at this package).
package a

import "context"

type lease struct{ revoked chan struct{} }

func (l *lease) Revoked() <-chan struct{} { return l.revoked }

func unguardedSelect(work, results chan int) {
	select { // want `blocking select has no revocation case`
	case j := <-work:
		_ = j
	case r := <-results:
		_ = r
	}
}

func unguardedSend(out chan int, v int) {
	select { // want `blocking select has no revocation case`
	case out <- v:
	}
}

func bareReceive(results chan int) int {
	return <-results // want `blocking receive from results has no revocation alternative`
}

func ctxGuarded(ctx context.Context, work chan int) {
	select {
	case j := <-work:
		_ = j
	case <-ctx.Done():
		return
	}
}

func leaseGuarded(l *lease, work chan int) {
	select {
	case j := <-work:
		_ = j
	case <-l.Revoked():
		return
	}
}

func quitGuarded(work chan int, quit chan struct{}) {
	select {
	case j := <-work:
		_ = j
	case <-quit:
		return
	}
}

func nonBlocking(work chan int) {
	select {
	case j := <-work:
		_ = j
	default:
	}
}

// doneReceive waits on a completion channel whose name declares it: a
// revocation-conventioned source is itself the signal being awaited.
func doneReceive(done chan struct{}) {
	<-done
}

func ctxWait(ctx context.Context) {
	<-ctx.Done()
}
