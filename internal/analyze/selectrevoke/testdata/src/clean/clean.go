// Package clean duplicates the unguarded patterns but is loaded with
// -selectrevoke.pkgs pointing elsewhere: out-of-scope packages must
// produce no findings.
package clean

func unguardedSelect(work, results chan int) {
	select {
	case j := <-work:
		_ = j
	case r := <-results:
		_ = r
	}
}

func bareReceive(results chan int) int {
	return <-results
}
