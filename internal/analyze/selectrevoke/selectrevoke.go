// Package selectrevoke guards the preemption paths: in the configured
// packages (the fabric, the DAG runner, the webservice runners), a
// blocking select or bare channel receive must include a
// revocation/abort alternative — <-ctx.Done(), <-lease.Revoked(), a
// quit/stop channel — so a future edit cannot silently make a
// preemption victim un-preemptible.
//
// Preemptive fair-share (PR 8) works only if every wait a tenant's
// work can park on is also watching for the revocation signal; one
// unguarded receive turns checkpoint-preempt into a hang. The check is
// syntactic over names and Done/Revoked call shapes: it runs before
// the flow-sensitive passes and is deliberately strict — a timeout
// case does not count, because a victim that ignores revocation for
// its timeout window still stalls the incoming tenant.
package selectrevoke

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"repro/internal/analyze"
)

// Analyzer is the selectrevoke check.
var Analyzer = &analyze.Analyzer{
	Name: "selectrevoke",
	Doc: "require blocking selects and bare receives in the fabric/dagman/webservice runner paths to include a " +
		"revocation case (ctx.Done(), Lease.Revoked(), quit/stop channels): one unguarded wait makes a " +
		"preemption victim un-preemptible and wedges admission for every queued tenant",
	Run: run,
}

func init() {
	Analyzer.Flags.String("pkgs",
		"repro/internal/fabric,repro/internal/dagman,repro/internal/webservice",
		"comma-separated import paths whose blocking waits must include a revocation case")
}

// revokeName matches channel identifiers that carry an abort signal by
// convention.
var revokeName = regexp.MustCompile(`(?i)(revoke|abort|cancel|done|quit|stop|kill|shutdown|preempt)`)

func run(pass *analyze.Pass) error {
	inScope := false
	for _, path := range analyze.CommaList(pass.Analyzer.Flags.Lookup("pkgs").Value.String()) {
		if pass.Pkg != nil && pass.Pkg.Path() == path {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		// Receives that are select comms are judged as part of their
		// select, not as bare receives.
		comms := map[ast.Node]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			if cc, ok := n.(*ast.CommClause); ok && cc.Comm != nil {
				comms[cc.Comm] = true
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectStmt:
				checkSelect(pass, n)
			case *ast.UnaryExpr:
				if n.Op == token.ARROW && !revocationSource(pass.TypesInfo, n.X) {
					pass.Reportf(n.OpPos,
						"blocking receive from %s has no revocation alternative; select it against ctx.Done()/Lease.Revoked()/a quit channel so preemption can reach this wait",
						types.ExprString(n.X))
				}
				return false
			case ast.Stmt:
				if comms[n] {
					return false
				}
			}
			return true
		})
	}
	return nil
}

// checkSelect flags a select that can block forever with no revocation
// case. A default clause makes the select non-blocking; a receive from
// a revocation source makes it preemptible.
func checkSelect(pass *analyze.Pass, sel *ast.SelectStmt) {
	for _, cs := range sel.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			return // default: never blocks
		}
		var recv ast.Expr
		switch comm := cc.Comm.(type) {
		case *ast.ExprStmt:
			if ue, ok := ast.Unparen(comm.X).(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
				recv = ue.X
			}
		case *ast.AssignStmt:
			if len(comm.Rhs) == 1 {
				if ue, ok := ast.Unparen(comm.Rhs[0]).(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
					recv = ue.X
				}
			}
		}
		if recv != nil && revocationSource(pass.TypesInfo, recv) {
			return
		}
	}
	pass.Reportf(sel.Pos(),
		"blocking select has no revocation case; add <-ctx.Done()/<-lease.Revoked()/a quit case (or a default) so the fabric can preempt this wait")
}

// revocationSource reports whether the channel expression e carries a
// revocation signal: a Done()/Revoked() method call, or a channel whose
// name matches the abort-signal convention.
func revocationSource(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.SelectorExpr:
			return fun.Sel.Name == "Done" || fun.Sel.Name == "Revoked"
		case *ast.Ident:
			return fun.Name == "Done" || fun.Name == "Revoked"
		}
		return false
	}
	return revokeName.MatchString(finalName(e))
}

// finalName is the last identifier of a channel expression ("t.granted"
// -> "granted", "quits[i]" -> "quits").
func finalName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.IndexExpr:
		return finalName(e.X)
	case *ast.StarExpr:
		return finalName(e.X)
	}
	return ""
}
