package selectrevoke_test

import (
	"testing"

	"repro/internal/analyze/analyzetest"
	"repro/internal/analyze/selectrevoke"
)

// scoped points the analyzer's package list at the given fixture for
// the duration of one test.
func scoped(t *testing.T, pkg string) {
	t.Helper()
	f := selectrevoke.Analyzer.Flags.Lookup("pkgs")
	old := f.Value.String()
	if err := f.Value.Set(pkg); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = f.Value.Set(old) })
}

func TestSelectRevoke(t *testing.T) {
	scoped(t, "repro/internal/analyze/selectrevoke/testdata/src/a")
	analyzetest.Run(t, "testdata", selectrevoke.Analyzer, "src/a")
}

func TestSelectRevokeSuppression(t *testing.T) {
	scoped(t, "repro/internal/analyze/selectrevoke/testdata/src/sup")
	analyzetest.Run(t, "testdata", selectrevoke.Analyzer, "src/sup")
}

func TestSelectRevokeOutOfScope(t *testing.T) {
	scoped(t, "repro/internal/other")
	analyzetest.Run(t, "testdata", selectrevoke.Analyzer, "src/clean")
}
