package noclock_test

import (
	"testing"

	"repro/internal/analyze/analyzetest"
	"repro/internal/analyze/noclock"
)

func TestNoClock(t *testing.T) {
	analyzetest.Run(t, "testdata", noclock.Analyzer, "src/a")
}

func TestNoClockSuppression(t *testing.T) {
	analyzetest.Run(t, "testdata", noclock.Analyzer, "src/sup")
}

// TestNoClockAllowlist checks that a package on the allow list is
// exempt: the fixture reads the wall clock and carries no want
// comments, so any finding fails the run.
func TestNoClockAllowlist(t *testing.T) {
	f := noclock.Analyzer.Flags.Lookup("allow")
	old := f.Value.String()
	if err := f.Value.Set("repro/internal/analyze/noclock/testdata/src/allowed"); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Value.Set(old) }()
	analyzetest.Run(t, "testdata", noclock.Analyzer, "src/allowed")
}
