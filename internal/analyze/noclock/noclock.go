// Package noclock forbids wall-clock reads in library and simulation
// code. The workflow stack executes on a model clock (the Condor
// simulator's virtual time), and the crash-recovery guarantee — a
// resumed run reproduces the original bytes — only holds if no code
// path observes how much real time has passed. A time.Now() buried in a
// validity check is exactly the bug class that let a resumed run
// diverge because a proxy credential expired between kill and resume.
// Wall-clock access must come through an injected `now func()
// time.Time` (see internal/myproxy.NewWithClock, webservice.Config.Now,
// portal.Config.Now), so tests and replays can pin it.
package noclock

import (
	"go/ast"
	"go/types"

	"repro/internal/analyze"
)

// banned lists the time-package functions that read or depend on the
// process wall clock. Constructors like time.Date or time.Unix are
// pure and stay legal.
var banned = map[string]string{
	"Now":       "reads the wall clock",
	"Since":     "reads the wall clock",
	"Until":     "reads the wall clock",
	"Sleep":     "blocks on the wall clock",
	"After":     "fires on the wall clock",
	"Tick":      "fires on the wall clock",
	"NewTimer":  "fires on the wall clock",
	"NewTicker": "fires on the wall clock",
}

// Analyzer is the noclock check.
var Analyzer = &analyze.Analyzer{
	Name: "noclock",
	Doc: "forbid wall-clock reads (time.Now, time.Since, time.Sleep, ...) in library and simulation code; " +
		"the model clock and injected now-functions are the only legal time sources, so kill/resume replays " +
		"and worker-width sweeps stay byte-identical",
	Run: run,
}

func init() {
	Analyzer.Flags.String("allow", "",
		"comma-separated import paths exempt from the wall-clock ban")
}

func run(pass *analyze.Pass) error {
	for _, path := range analyze.CommaList(pass.Analyzer.Flags.Lookup("allow").Value.String()) {
		if pass.Pkg != nil && pass.Pkg.Path() == path {
			return nil
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			// Both calls (time.Now()) and bare references (cfg.Now =
			// time.Now) are findings: a stored reference is a wall-clock
			// read at one remove, and the injection-boundary defaults
			// that legitimately hold one carry //nvolint:ignore reasons.
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			// Methods (t.After, t.Sub, ...) are pure computations on an
			// already-obtained instant; only the package-level functions
			// touch the wall clock.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			why, ok := banned[fn.Name()]
			if !ok || pass.IsTestFile(sel.Pos()) {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s %s; simulated and resumable paths must use the model clock or an injected now func() time.Time",
				fn.Name(), why)
			return true
		})
	}
	return nil
}
