// Package a exercises the noclock analyzer: wall-clock reads are
// findings, pure time computations are not.
package a

import "time"

var epoch = time.Unix(0, 0)

func bad() {
	_ = time.Now()                 // want `time\.Now reads the wall clock`
	time.Sleep(time.Millisecond)   // want `time\.Sleep blocks on the wall clock`
	_ = time.Since(epoch)          // want `time\.Since reads the wall clock`
	_ = time.Until(epoch)          // want `time\.Until reads the wall clock`
	<-time.After(time.Millisecond) // want `time\.After fires on the wall clock`
}

// Storing a reference is a wall-clock read at one remove.
var defaultNow = time.Now // want `time\.Now reads the wall clock`

func good(now func() time.Time) {
	t := now()
	_ = t.Add(time.Hour)
	_ = t.After(epoch) // the Time method, not the package function
	_ = time.Date(2004, 6, 1, 0, 0, 0, 0, time.UTC)
	_ = epoch.Sub(t)
}
