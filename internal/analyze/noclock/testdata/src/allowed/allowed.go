// Package allowed is loaded with -noclock.allow set to its own import
// path: the wall-clock read below must produce no finding.
package allowed

import "time"

func Stamp() time.Time { return time.Now() }
