// Package sup exercises //nvolint:ignore handling for noclock.
package sup

import "time"

// A well-formed standalone directive covers the line below it.

//nvolint:ignore noclock fixture: this package models the wall-clock boundary
var wallNow = time.Now

// A well-formed end-of-line directive covers its own line.
var alsoNow = time.Now //nvolint:ignore noclock fixture: boundary default

// Naming the wrong analyzer covers nothing.

//nvolint:ignore seededrand fixture: names the wrong analyzer
var wrongName = time.Now // want `time\.Now reads the wall clock`

// A reasonless directive suppresses nothing and is itself a finding.

//nvolint:ignore noclock // want `directive requires a reason`
var reasonless = time.Now // want `time\.Now reads the wall clock`

// A directive naming no analyzer at all is also a finding.

//nvolint:ignore // want `directive names no analyzer`
var nameless = time.Now // want `time\.Now reads the wall clock`
