// Package dataflow is a small forward-dataflow fixpoint solver over
// internal/analyze/cfg graphs: the engine under the nvolint
// flow-sensitive analyzers (lockpath, goleak, errpath).
//
// An analysis supplies a join semilattice over fact values F — a Join
// that must be monotone and an Equal that decides convergence — plus a
// block transfer function. The solver seeds the entry block and
// iterates a worklist until the facts stop changing. Blocks that are
// never reached from entry (dead code after return/panic) receive no
// facts and are reported in Result.Reached, so analyzers do not
// diagnose paths that cannot execute.
//
// Termination is the analysis author's contract: Join must only move
// facts up a finite-height lattice (sets growing toward a bounded
// universe, booleans and-ing toward false). Every analyzer in the
// suite uses sets over the identifiers of one function body, whose
// height is bounded by the body's size.
package dataflow

import "repro/internal/analyze/cfg"

// Analysis defines one forward dataflow problem over fact type F.
type Analysis[F any] struct {
	// Entry is the fact at function entry.
	Entry F
	// Join combines facts along merging paths. It must be commutative,
	// associative and monotone.
	Join func(a, b F) F
	// Equal decides convergence.
	Equal func(a, b F) bool
	// Transfer computes a block's out-fact from its in-fact by applying
	// the block's nodes in order. It must not mutate in.
	Transfer func(b *cfg.Block, in F) F
}

// Result carries the fixpoint.
type Result[F any] struct {
	// In and Out hold each reached block's entry and exit facts.
	In, Out map[*cfg.Block]F
	// Reached reports whether a block is reachable from entry — blocks
	// absent from the map were never visited and have no facts.
	Reached map[*cfg.Block]bool
}

// Forward solves the analysis to fixpoint over g.
func Forward[F any](g *cfg.Graph, a Analysis[F]) Result[F] {
	res := Result[F]{
		In:      map[*cfg.Block]F{},
		Out:     map[*cfg.Block]F{},
		Reached: map[*cfg.Block]bool{},
	}

	// FIFO worklist with a membership set: a block re-enqueued while
	// queued is processed once with its latest in-fact.
	var queue []*cfg.Block
	queued := map[*cfg.Block]bool{}
	push := func(b *cfg.Block) {
		if !queued[b] {
			queued[b] = true
			queue = append(queue, b)
		}
	}

	res.In[g.Entry] = a.Entry
	res.Reached[g.Entry] = true
	push(g.Entry)

	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		queued[b] = false

		out := a.Transfer(b, res.In[b])
		if prev, ok := res.Out[b]; ok && a.Equal(prev, out) {
			continue
		}
		res.Out[b] = out

		for _, s := range b.Succs {
			// Join the out-facts of every reached predecessor; never-
			// reached preds contribute nothing (bottom).
			joined, have := res.Out[b], true
			for _, p := range s.Preds {
				if p == b {
					continue
				}
				pf, ok := res.Out[p]
				if !ok {
					continue
				}
				if !have {
					joined, have = pf, true
					continue
				}
				joined = a.Join(joined, pf)
			}
			if prev, ok := res.In[s]; !ok || !a.Equal(prev, joined) {
				res.In[s] = joined
				res.Reached[s] = true
				push(s)
			} else {
				res.Reached[s] = true
			}
		}
	}
	return res
}
