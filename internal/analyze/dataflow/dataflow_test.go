package dataflow_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
	"testing"

	"repro/internal/analyze/cfg"
	"repro/internal/analyze/dataflow"
)

func build(t *testing.T, body string) *cfg.Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "fixture.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	return cfg.FuncGraph(file.Decls[len(file.Decls)-1].(*ast.FuncDecl))
}

// calls extracts the called function names in a block's nodes — the
// "gen" set of the toy analyses below.
func calls(b *cfg.Block) []string {
	var out []string
	for _, n := range b.Nodes {
		ast.Inspect(n, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok {
					out = append(out, id.Name)
				}
			}
			return true
		})
	}
	return out
}

type set map[string]bool

func (s set) with(names ...string) set {
	out := set{}
	for k := range s {
		out[k] = true
	}
	for _, n := range names {
		out[n] = true
	}
	return out
}

func (s set) String() string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ",")
}

func equal(a, b set) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// mayCalls is a union-join analysis: the set of functions that MAY have
// been called on some path reaching a point.
func mayCalls() dataflow.Analysis[set] {
	return dataflow.Analysis[set]{
		Entry: set{},
		Join: func(a, b set) set {
			out := a.with()
			for k := range b {
				out[k] = true
			}
			return out
		},
		Equal: equal,
		Transfer: func(b *cfg.Block, in set) set {
			return in.with(calls(b)...)
		},
	}
}

// mustCalls is an intersection-join analysis: functions called on EVERY
// path reaching a point.
func mustCalls() dataflow.Analysis[set] {
	return dataflow.Analysis[set]{
		Entry: set{},
		Join: func(a, b set) set {
			out := set{}
			for k := range a {
				if b[k] {
					out[k] = true
				}
			}
			return out
		},
		Equal: equal,
		Transfer: func(b *cfg.Block, in set) set {
			return in.with(calls(b)...)
		},
	}
}

func TestMayAnalysisBranches(t *testing.T) {
	g := build(t, "if c() { a() } else { b() }")
	res := dataflow.Forward(g, mayCalls())
	if got := res.In[g.Exit].String(); got != "a,b,c" {
		t.Fatalf("may-calls at exit = %q, want a,b,c", got)
	}
}

func TestMustAnalysisBranches(t *testing.T) {
	// a() runs on both arms, b() on one: only a and the condition c are
	// must-called at exit.
	g := build(t, "if c() { a(); b() } else { a() }")
	res := dataflow.Forward(g, mustCalls())
	if got := res.In[g.Exit].String(); got != "a,c" {
		t.Fatalf("must-calls at exit = %q, want a,c", got)
	}
}

func TestLoopFixpoint(t *testing.T) {
	// The loop body may never run: body() is a may-call, not a must-call.
	g := build(t, "for c() { body() }; after()")
	may := dataflow.Forward(g, mayCalls())
	if got := may.In[g.Exit].String(); got != "after,body,c" {
		t.Fatalf("may-calls at exit = %q, want after,body,c", got)
	}
	must := dataflow.Forward(g, mustCalls())
	if got := must.In[g.Exit].String(); got != "after,c" {
		t.Fatalf("must-calls at exit = %q, want after,c", got)
	}
}

func TestUnreachedBlocksGetNoFacts(t *testing.T) {
	g := build(t, "return; dead()")
	res := dataflow.Forward(g, mayCalls())
	for _, b := range g.Blocks {
		if b.Kind == "unreached" {
			if res.Reached[b] {
				t.Errorf("dead block %v marked reached", b)
			}
			if _, ok := res.In[b]; ok {
				t.Errorf("dead block %v has an in-fact", b)
			}
		}
	}
	if !res.Reached[g.Exit] {
		t.Fatalf("exit not reached")
	}
}

func TestInfiniteLoopLeavesExitUnreached(t *testing.T) {
	g := build(t, "for { spin() }")
	res := dataflow.Forward(g, mayCalls())
	if res.Reached[g.Exit] {
		t.Fatalf("exit reached through an infinite loop")
	}
}

// TestMustThroughInfiniteLoopEscape checks the pattern goleak leans on:
// an exit reachable only via a signalling case carries the signal as a
// must-fact even when the loop itself never terminates normally.
func TestMustThroughInfiniteLoopEscape(t *testing.T) {
	g := build(t, `
	for {
		select {
		case <-done():
			cleanup()
			return
		case <-work():
			handle()
		}
	}`)
	res := dataflow.Forward(g, mustCalls())
	if !res.Reached[g.Exit] {
		t.Fatalf("exit should be reachable through the done case")
	}
	fact := res.In[g.Exit]
	if !fact["cleanup"] || !fact["done"] {
		t.Fatalf("exit must-calls = %q, want cleanup and done", fact)
	}
	if fact["handle"] {
		t.Fatalf("handle() is not on every exit path, got %q", fact)
	}
}
