// Package errclose flags discarded errors from Close, Flush and Sync
// in the crash-safety write paths. The recovery guarantee (PR 3) is
// "every journal record is durable before its effect happens": a
// dropped error from (*os.File).Sync or a buffered writer's Flush means
// a torn journal can pass for a clean one, and a dropped Close on a
// written file can lose the final buffered bytes of a DAG or rescue
// file. In the configured packages, a bare `x.Close()` statement or
// `defer x.Close()` is a finding; `_ = x.Close()` is legal (explicit,
// reviewable discard), as is capturing the error.
package errclose

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analyze"
)

// checked are the method names whose errors the write paths must not
// drop.
var checked = map[string]bool{"Close": true, "Flush": true, "Sync": true}

// Analyzer is the errclose check.
var Analyzer = &analyze.Analyzer{
	Name: "errclose",
	Doc: "forbid discarded errors from Close/Flush/Sync in the journal, gridftp, dagman and webservice write " +
		"paths: a dropped fsync or close error lets a torn journal or truncated DAG file masquerade as a " +
		"durable one, voiding the crash-recovery guarantee; discard explicitly with `_ =` only where provably safe",
	Run: run,
}

func init() {
	Analyzer.Flags.String("pkgs",
		"repro/internal/journal,repro/internal/gridftp,repro/internal/dagman,repro/internal/webservice",
		"comma-separated import paths whose write paths must check Close/Flush/Sync errors")
}

func run(pass *analyze.Pass) error {
	inScope := false
	for _, path := range analyze.CommaList(pass.Analyzer.Flags.Lookup("pkgs").Value.String()) {
		if pass.Pkg != nil && pass.Pkg.Path() == path {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			var form string
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = n.X.(*ast.CallExpr)
				form = "statement"
			case *ast.DeferStmt:
				call = n.Call
				form = "defer"
			default:
				return true
			}
			if call == nil || pass.IsTestFile(call.Pos()) {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !checked[sel.Sel.Name] {
				return true
			}
			if !returnsError(pass.TypesInfo, call) {
				return true
			}
			recv := recvString(sel.X)
			if form == "defer" {
				pass.Reportf(call.Pos(),
					"defer %s.%s() discards its error on a crash-safety write path; close explicitly and check, or defer a closure that records the error",
					recv, sel.Sel.Name)
			} else {
				pass.Reportf(call.Pos(),
					"error from %s.%s() is discarded on a crash-safety write path; check it, or discard explicitly with `_ =` and a reason",
					recv, sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}

// returnsError reports whether call's type is error (or its last
// result is).
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	isErr := func(t types.Type) bool {
		named, ok := t.(*types.Named)
		return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		return tuple.Len() > 0 && isErr(tuple.At(tuple.Len()-1).Type())
	}
	return isErr(tv.Type)
}

// recvString renders the receiver expression for the diagnostic.
func recvString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return recvString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return recvString(e.Fun) + "(...)"
	}
	return strings.TrimSpace("receiver")
}
