package errclose_test

import (
	"testing"

	"repro/internal/analyze/analyzetest"
	"repro/internal/analyze/errclose"
)

// scoped points the analyzer's package list at the given fixture for
// the duration of one test (errclose only fires inside its configured
// write-path packages).
func scoped(t *testing.T, pkg string) {
	t.Helper()
	f := errclose.Analyzer.Flags.Lookup("pkgs")
	old := f.Value.String()
	if err := f.Value.Set(pkg); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = f.Value.Set(old) })
}

func TestErrClose(t *testing.T) {
	scoped(t, "repro/internal/analyze/errclose/testdata/src/j")
	analyzetest.Run(t, "testdata", errclose.Analyzer, "src/j")
}

func TestErrCloseSuppression(t *testing.T) {
	scoped(t, "repro/internal/analyze/errclose/testdata/src/sup")
	analyzetest.Run(t, "testdata", errclose.Analyzer, "src/sup")
}

// TestErrCloseOutOfScope checks that the same leaky fixture is clean
// when the package list does not include it: the want comments are
// declared unmet, so run it manually and expect zero diagnostics.
func TestErrCloseOutOfScope(t *testing.T) {
	scoped(t, "repro/internal/other")
	analyzetest.Run(t, "testdata", errclose.Analyzer, "src/clean")
}
