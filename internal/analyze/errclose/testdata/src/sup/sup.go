// Package sup exercises //nvolint:ignore handling for errclose (the
// test points -errclose.pkgs at this package).
package sup

import "os"

func suppressed(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//nvolint:ignore errclose fixture: read-only handle, no buffered writes to lose
	defer f.Close()
	buf := make([]byte, 16)
	n, err := f.Read(buf)
	return buf[:n], err
}

func reasonless(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	//nvolint:ignore errclose // want `directive requires a reason`
	defer f.Close() // want `defer f\.Close\(\) discards its error on a crash-safety write path`
	_, err = f.WriteString("x")
	return err
}
