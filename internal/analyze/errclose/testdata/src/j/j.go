// Package j exercises the errclose analyzer on a mock crash-safety
// write path (the test points -errclose.pkgs at this package).
package j

import (
	"bufio"
	"os"
)

func leaky(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want `defer f\.Close\(\) discards its error on a crash-safety write path`
	if _, err := f.Write(data); err != nil {
		return err
	}
	f.Sync() // want `error from f\.Sync\(\) is discarded on a crash-safety write path`
	return nil
}

func leakyFlush(w *bufio.Writer) {
	w.Flush() // want `error from w\.Flush\(\) is discarded on a crash-safety write path`
}

func checked(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close() // explicit discard is legal: the write error wins
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

// noError has a Close that returns nothing; calling it bare is fine.
type noError struct{}

func (noError) Close() {}

func closesNoError() {
	var n noError
	n.Close()
	defer n.Close()
}
