// Package clean duplicates the leaky pattern but is loaded with
// -errclose.pkgs pointing elsewhere: out-of-scope packages must
// produce no findings.
package clean

import "os"

func leaky(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.WriteString("x")
	return err
}
