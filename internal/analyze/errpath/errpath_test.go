package errpath_test

import (
	"testing"

	"repro/internal/analyze/analyzetest"
	"repro/internal/analyze/errpath"
)

func TestErrPath(t *testing.T) {
	analyzetest.Run(t, "testdata", errpath.Analyzer, "src/a")
}

func TestErrPathSuppression(t *testing.T) {
	analyzetest.Run(t, "testdata", errpath.Analyzer, "src/sup")
}
