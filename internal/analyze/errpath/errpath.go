// Package errpath is the flow-sensitive upgrade of errclose: an
// assigned `error` that can reach a return (or fall off the end of the
// function) without being checked, returned, or otherwise consumed on
// that path is a finding — even when some *other* path does check it,
// which is exactly the case the AST-shaped errclose analyzer
// structurally cannot see.
//
// The compiler already rejects an error variable that is never read at
// all; what survives review is the path-shaped drop:
//
//	err := journal.Append(rec)
//	if verbose { log.Printf("append: %v", err) }
//	return nil // silent on the non-verbose path
//
// The analyzer tracks, per CFG path, the set of local error variables
// holding an unconsumed result. Any read of the variable — a
// comparison, a return, a wrap, a capture by a deferred closure —
// consumes it on that path; paths ending in panic are exempt (the
// error did not masquerade as success).
package errpath

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analyze"
	"repro/internal/analyze/cfg"
	"repro/internal/analyze/dataflow"
)

// Analyzer is the errpath check.
var Analyzer = &analyze.Analyzer{
	Name: "errpath",
	Doc: "forbid error values that reach a return or the end of the function unchecked on some path: a dropped " +
		"error lets a failed journal append, transfer or DAG write masquerade as success on exactly the path " +
		"that needed it; check, return, or consume the error on every path",
	Run: run,
}

func init() {
	Analyzer.Flags.String("pkgs", "",
		"comma-separated import paths to check (empty = every package)")
}

// fact tracks, along one path, the local error variables holding an
// unconsumed result (pending, keyed to the assignment position) and
// the variables some registered deferred closure will read at exit
// (deferred) — a defer registered before the assignment still consumes
// it, because it runs after every return on the paths that ran it.
type fact struct {
	pending  map[*types.Var]token.Pos
	deferred map[*types.Var]bool
}

func newFact() fact {
	return fact{pending: map[*types.Var]token.Pos{}, deferred: map[*types.Var]bool{}}
}

func (f fact) clone() fact {
	out := newFact()
	for k, v := range f.pending {
		out.pending[k] = v
	}
	for k := range f.deferred {
		out.deferred[k] = true
	}
	return out
}

func run(pass *analyze.Pass) error {
	if pkgs := analyze.CommaList(pass.Analyzer.Flags.Lookup("pkgs").Value.String()); len(pkgs) > 0 {
		in := false
		for _, path := range pkgs {
			if pass.Pkg != nil && pass.Pkg.Path() == path {
				in = true
				break
			}
		}
		if !in {
			return nil
		}
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				check(pass, cfg.FuncGraph(fd), fd.Body, fd.Type.Results)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				check(pass, cfg.LitGraph(lit), lit.Body, lit.Type.Results)
			}
			return true
		})
	}
	return nil
}

type fnAnalysis struct {
	pass    *analyze.Pass
	body    *ast.BlockStmt
	results []types.Object // named results, consumed by naked returns
	// reported dedupes findings per assignment site across the paths
	// that reach different returns.
	reported map[token.Pos]bool
}

func check(pass *analyze.Pass, g *cfg.Graph, body *ast.BlockStmt, results *ast.FieldList) {
	a := &fnAnalysis{pass: pass, body: body, reported: map[token.Pos]bool{}}
	if results != nil {
		for _, field := range results.List {
			for _, name := range field.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					a.results = append(a.results, obj)
				}
			}
		}
	}
	res := dataflow.Forward(g, dataflow.Analysis[fact]{
		Entry: newFact(),
		Join: func(x, y fact) fact {
			out := x.clone()
			for k, v := range y.pending {
				if prev, ok := out.pending[k]; !ok || v < prev {
					out.pending[k] = v
				}
			}
			for k := range y.deferred {
				out.deferred[k] = true
			}
			return out
		},
		Equal: func(x, y fact) bool {
			if len(x.pending) != len(y.pending) || len(x.deferred) != len(y.deferred) {
				return false
			}
			for k, v := range x.pending {
				if w, ok := y.pending[k]; !ok || w != v {
					return false
				}
			}
			for k := range x.deferred {
				if !y.deferred[k] {
					return false
				}
			}
			return true
		},
		Transfer: func(b *cfg.Block, in fact) fact {
			out := in.clone()
			for _, n := range b.Nodes {
				a.apply(out, n)
			}
			return out
		},
	})

	// Replay reached blocks and report facts that survive to a return
	// or to the implicit return at the end of the body.
	for _, b := range g.Blocks {
		if !res.Reached[b] {
			continue
		}
		f := res.In[b].clone()
		exits := false
		for _, s := range b.Succs {
			if s == g.Exit {
				exits = true
			}
		}
		for _, n := range b.Nodes {
			if ret, ok := n.(*ast.ReturnStmt); ok {
				a.apply(f, n) // the return's own operands consume
				a.report(f, "the return at line %d", a.pass.Fset.Position(ret.Pos()).Line)
				continue
			}
			a.apply(f, n)
		}
		if exits && !endsExplicitly(b) {
			a.report(f, "the end of the function")
		}
	}
}

// endsExplicitly reports whether block b's last node is a return or a
// panic — exits that are not the implicit fall-off-the-end return.
// Panic paths are exempt: a panicking function does not claim success.
func endsExplicitly(b *cfg.Block) bool {
	if len(b.Nodes) == 0 {
		return false
	}
	switch last := b.Nodes[len(b.Nodes)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func (a *fnAnalysis) report(f fact, whereFormat string, args ...any) {
	where := fmt.Sprintf(whereFormat, args...)
	type finding struct {
		pos  token.Pos
		name string
	}
	var fs []finding
	for v, pos := range f.pending {
		if f.deferred[v] || a.reported[pos] {
			continue
		}
		a.reported[pos] = true
		fs = append(fs, finding{pos: pos, name: v.Name()})
	}
	sort.Slice(fs, func(i, j int) bool { return fs[i].pos < fs[j].pos })
	for _, fd := range fs {
		a.pass.Reportf(fd.pos,
			"error assigned to %s here can reach %s without being checked, returned, or consumed; handle it on every path (or discard with `_ =` and a reason)",
			fd.name, where)
	}
}

// apply folds one node into the fact: reads consume (including reads
// inside nested function literals — a deferred check counts), then
// fresh error-producing assignments begin tracking.
func (a *fnAnalysis) apply(f fact, n ast.Node) {
	if d, ok := n.(*ast.DeferStmt); ok {
		// Argument reads happen at registration; reads inside a deferred
		// closure happen at exit, after any later assignment — record
		// them as exit-time consumers instead of killing now.
		a.kill(f, d.Call, false)
		ast.Inspect(d.Call, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				a.markDeferred(f, lit)
				return false
			}
			return true
		})
		return
	}
	// Kills: every identifier read. The type checker puts `=`-LHS
	// identifiers in Uses too, so a plain overwrite clears the previous
	// value — deliberate noise control; the gen below re-tracks it when
	// the new source is a call.
	a.kill(f, n, true)
	// Naked return in a function with named results reads them all.
	if ret, ok := n.(*ast.ReturnStmt); ok && len(ret.Results) == 0 {
		for _, obj := range a.results {
			if v, ok := obj.(*types.Var); ok {
				delete(f.pending, v)
			}
		}
	}
	// Gens.
	switch s := n.(type) {
	case *ast.AssignStmt:
		for i, lhs := range s.Lhs {
			var rhs ast.Expr
			if len(s.Rhs) == len(s.Lhs) {
				rhs = s.Rhs[i]
			} else if len(s.Rhs) == 1 {
				rhs = s.Rhs[0]
			}
			a.gen(f, lhs, rhs)
		}
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) == 0 {
				continue
			}
			for i, name := range vs.Names {
				var rhs ast.Expr
				if len(vs.Values) == len(vs.Names) {
					rhs = vs.Values[i]
				} else if len(vs.Values) == 1 {
					rhs = vs.Values[0]
				}
				a.gen(f, name, rhs)
			}
		}
	}
}

// kill deletes every variable read in n from the pending set.
// intoLits extends the scan into function literal bodies: a closure
// that captures the variable may check it whenever it runs.
func (a *fnAnalysis) kill(f fact, n ast.Node, intoLits bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && !intoLits {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj, ok := a.pass.TypesInfo.Uses[id].(*types.Var); ok {
				delete(f.pending, obj)
			}
		}
		return true
	})
}

// markDeferred records every variable the deferred closure reads as
// consumed-at-exit on the paths that registered it.
func (a *fnAnalysis) markDeferred(f fact, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj, ok := a.pass.TypesInfo.Uses[id].(*types.Var); ok {
				f.deferred[obj] = true
			}
		}
		return true
	})
}

// gen starts tracking lhs when it is a local error-typed variable
// assigned from an error-producing expression (a call, a receive, a
// type assertion).
func (a *fnAnalysis) gen(f fact, lhs, rhs ast.Expr) {
	if rhs == nil {
		return
	}
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := a.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = a.pass.TypesInfo.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || !types.Identical(v.Type(), types.Universe.Lookup("error").Type()) {
		return
	}
	// Only variables declared inside this body: writes to captured
	// variables escape intraprocedural reasoning.
	if !v.Pos().IsValid() || v.Pos() < a.body.Pos() || v.Pos() >= a.body.End() {
		return
	}
	if !producesValue(rhs) {
		return
	}
	f.pending[v] = id.Pos()
}

// producesValue reports whether e computes a fresh value worth
// tracking: a call, a channel receive, or a type assertion. Plain
// copies (`err2 := err`) and nil-resets are not tracked.
func producesValue(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr, *ast.TypeAssertExpr:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		}
		return !found
	})
	return found
}
