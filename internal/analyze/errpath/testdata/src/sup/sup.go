// Package sup exercises //nvolint:ignore handling for errpath.
package sup

func produce() error      { return nil }
func logf(string, ...any) {}

func bestEffort(verbose bool) error {
	//nvolint:ignore errpath fixture: best-effort cache warm, failure is logged in verbose mode only
	err := produce()
	if verbose {
		logf("warm: %v", err)
	}
	return nil
}

func reasonless(verbose bool) error {
	//nvolint:ignore errpath // want `nvolint:ignore directive requires a reason`
	err := produce() // want `error assigned to err here can reach the return at line \d+`
	if verbose {
		logf("warm: %v", err)
	}
	return nil
}
