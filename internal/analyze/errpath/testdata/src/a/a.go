// Package a exercises the errpath analyzer: path-shaped error drops
// that the AST-level errclose check cannot see.
package a

import (
	"errors"
	"fmt"
)

func produce() error            { return nil }
func compute() (int, error)     { return 0, nil }
func logf(string, ...any)       {}
func sink(error)                {}

// droppedOnQuietPath reads err on one path only: the non-verbose path
// returns nil with the error still pending.
func droppedOnQuietPath(verbose bool) error {
	err := produce() // want `error assigned to err here can reach the return at line \d+ without being checked`
	if verbose {
		logf("produce: %v", err)
	}
	return nil
}

// reassignedAndDropped reads the first result, then overwrites and
// drops the second on the way out of a void function.
func reassignedAndDropped() {
	err := produce() // checked below: clean
	if err != nil {
		logf("first: %v", err)
	}
	err = produce() // want `error assigned to err here can reach the end of the function without being checked`
	logf("done")
}

// tupleDrop tracks the error half of a tuple assignment.
func tupleDrop() int {
	n, err := compute() // want `error assigned to err here can reach the return at line \d+ without being checked`
	if n > 0 {
		sink(err)
		return n
	}
	return 0
}

// checkedEverywhere is the canonical clean shape.
func checkedEverywhere() error {
	err := produce()
	if err != nil {
		return fmt.Errorf("produce: %w", err)
	}
	return nil
}

// returnedDirectly consumes by returning.
func returnedDirectly() error {
	err := produce()
	return err
}

// consumedByDefer is read inside a deferred closure: every return path
// runs it after the defer registers.
func consumedByDefer() error {
	var report error
	defer func() { sink(report) }()
	report = produce()
	return nil
}

// namedResult is consumed by the naked return.
func namedResult() (err error) {
	err = produce()
	return
}

// explicitDiscard is the reviewable opt-out.
func explicitDiscard() {
	err := produce()
	_ = err
}

// panicPath does not claim success: no finding on the panic arm.
func panicPath() error {
	err := produce()
	if err != nil {
		panic(err)
	}
	return nil
}

// copyNotTracked: plain copies and nil resets are not fresh values.
func copyNotTracked() error {
	err := produce()
	err2 := err
	err = nil
	_ = err
	return err2
}

// litDrop shows function literals get their own analysis.
var litDrop = func(deep bool) error {
	err := errors.New("inner") // want `error assigned to err here can reach the return at line \d+ without being checked`
	if deep {
		return err
	}
	return nil
}
