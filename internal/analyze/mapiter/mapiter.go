// Package mapiter flags range-over-map loops whose bodies feed
// order-sensitive sinks: appending to slices that outlive the loop,
// writing to output streams, emitting journal records, or sending on
// channels. Go randomizes map iteration order per run, so any such loop
// makes output bytes (or the write-ahead journal a resume replays)
// depend on scheduler dice. The deterministic idiom — collect the keys,
// sort them, range the sorted slice — is recognized and exempt: a loop
// that only appends keys/values to slices which are then sorted before
// use in the same block passes clean.
package mapiter

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analyze"
)

// Analyzer is the mapiter check.
var Analyzer = &analyze.Analyzer{
	Name: "mapiter",
	Doc: "flag range-over-map loops that append to outer slices, write output, emit records, or send on " +
		"channels: map order is randomized per run, so these loops break byte-identity unless the keys are " +
		"collected and sorted first (that idiom is recognized and exempt)",
	Run: run,
}

// writeMethods are method names whose call inside a map-range body
// makes the emission order observable (stream writers, journal sinks,
// encoders).
var writeMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Append": true, "Emit": true, "Record": true, "Encode": true,
}

// sink is one order-sensitive effect found in a loop body.
type sink struct {
	pos  token.Pos
	desc string
	// appendTo is set when the sink is an append to a variable declared
	// outside the loop; such sinks are forgiven if the variable is
	// sorted later in the enclosing block.
	appendTo *types.Var
}

func run(pass *analyze.Pass) error {
	for _, f := range pass.Files {
		sorts := collectSortCalls(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			if rs, ok := n.(*ast.RangeStmt); ok {
				checkRange(pass, rs, sorts)
			}
			return true
		})
	}
	return nil
}

// sortCall is one sorting call site: a sort./slices. entry point or a
// local helper whose name contains "sort", with the variables it was
// handed.
type sortCall struct {
	pos  token.Pos
	vars map[*types.Var]bool
}

func checkRange(pass *analyze.Pass, rs *ast.RangeStmt, sorts []sortCall) {
	if pass.IsTestFile(rs.Pos()) {
		return
	}
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok {
		return
	}
	if _, ok := tv.Type.Underlying().(*types.Map); !ok {
		return
	}
	sinks := findSinks(pass, rs.Body)
	if len(sinks) == 0 {
		return
	}
	// The collect-and-sort idiom: every sink is an append to an outer
	// slice, and every such slice is sorted after the loop (anywhere
	// later in the file — the object identity ties it to the same
	// variable, so a later sort in another function can only be a
	// closure over the same slice).
	deterministic := true
	for _, s := range sinks {
		if s.appendTo == nil || !sortedLater(rs, sorts, s.appendTo) {
			deterministic = false
			break
		}
	}
	if deterministic {
		return
	}
	var descs []string
	seen := map[string]bool{}
	for _, s := range sinks {
		if !seen[s.desc] {
			seen[s.desc] = true
			descs = append(descs, s.desc)
		}
	}
	pass.Reportf(rs.Pos(),
		"range over map %s visits keys in randomized order and the body %s; collect the keys, sort them, then range the sorted slice",
		exprString(rs.X), strings.Join(descs, " and "))
}

// findSinks walks a loop body for order-sensitive effects.
func findSinks(pass *analyze.Pass, body *ast.BlockStmt) []sink {
	var sinks []sink
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			sinks = append(sinks, sink{pos: n.Pos(), desc: "sends on a channel"})
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && len(n.Args) > 0 {
					if v := outerVar(pass, n.Args[0], body); v != nil {
						sinks = append(sinks, sink{
							pos:      n.Pos(),
							desc:     "appends to " + v.Name(),
							appendTo: v,
						})
					}
				}
				return true
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if writeMethods[sel.Sel.Name] {
					if _, isMethod := pass.TypesInfo.Selections[sel]; isMethod {
						sinks = append(sinks, sink{pos: n.Pos(), desc: "calls " + exprString(sel.X) + "." + sel.Sel.Name})
						return true
					}
				}
			}
			if name, ok := analyze.PkgFunc(pass.TypesInfo, n, "fmt"); ok && strings.HasPrefix(name, "Fprint") {
				sinks = append(sinks, sink{pos: n.Pos(), desc: "writes output via fmt." + name})
			} else if ok && strings.HasPrefix(name, "Print") {
				sinks = append(sinks, sink{pos: n.Pos(), desc: "writes output via fmt." + name})
			}
		}
		return true
	})
	return sinks
}

// outerVar resolves expr to a variable declared outside body, or nil.
// Appends to loop-local scratch are not sinks — their contents only
// escape through some later effect the walk will catch on its own.
func outerVar(pass *analyze.Pass, expr ast.Expr, body *ast.BlockStmt) *types.Var {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		return nil
	}
	if v.Pos() >= body.Pos() && v.Pos() < body.End() {
		return nil
	}
	return v
}

// collectSortCalls gathers every sorting call site in the file.
func collectSortCalls(pass *analyze.Pass, f *ast.File) []sortCall {
	var sorts []sortCall
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !isSortCall(pass, call) {
			return true
		}
		sc := sortCall{pos: call.Pos(), vars: map[*types.Var]bool{}}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok {
				if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
					sc.vars[v] = true
				}
			}
		}
		if len(sc.vars) > 0 {
			sorts = append(sorts, sc)
		}
		return true
	})
	return sorts
}

// isSortCall recognizes sort./slices. entry points and, as a
// concession to local helpers, any callee whose name mentions "sort".
func isSortCall(pass *analyze.Pass, call *ast.CallExpr) bool {
	if name, ok := analyze.PkgFunc(pass.TypesInfo, call, "sort"); ok {
		return sortFunc(name)
	}
	if name, ok := analyze.PkgFunc(pass.TypesInfo, call, "slices"); ok {
		return sortFunc(name)
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return strings.Contains(strings.ToLower(fun.Name), "sort")
	case *ast.SelectorExpr:
		return strings.Contains(strings.ToLower(fun.Sel.Name), "sort")
	}
	return false
}

// sortedLater reports whether v is passed to a sorting call positioned
// after the loop.
func sortedLater(rs *ast.RangeStmt, sorts []sortCall, v *types.Var) bool {
	for _, sc := range sorts {
		if sc.pos > rs.End() && sc.vars[v] {
			return true
		}
	}
	return false
}

// sortFunc reports whether name is a sorting entry point of package
// sort or slices.
func sortFunc(name string) bool {
	switch name {
	case "Strings", "Ints", "Float64s", "Sort", "Stable", "Slice", "SliceStable":
		return true
	}
	return strings.HasPrefix(name, "Sort")
}

// exprString renders a short source form of expr for diagnostics.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	}
	return "expression"
}
