// Package a exercises the mapiter analyzer: map-range loops feeding
// order-sensitive sinks are findings; the collect-and-sort idiom and
// order-free accumulation are not.
package a

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

func appendsOuter(m map[string]int) []string {
	var out []string
	for k := range m { // want `range over map m visits keys in randomized order and the body appends to out`
		out = append(out, k)
	}
	return out
}

func collectAndSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // exempt: keys is sorted before use
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortKeys(s []string) { sort.Strings(s) }

func collectAndHelperSort(m map[string]int) []string {
	var keys []string
	for k := range m { // exempt: sorted by the local helper below
		keys = append(keys, k)
	}
	sortKeys(keys)
	return keys
}

func writesOutput(w io.Writer, m map[string]int) {
	for k, v := range m { // want `randomized order and the body writes output via fmt\.Fprintf`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

func writesBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m { // want `randomized order and the body calls b\.WriteString`
		b.WriteString(k)
	}
	return b.String()
}

func sendsChannel(m map[string]int, ch chan<- string) {
	for k := range m { // want `sends on a channel`
		ch <- k
	}
}

func orderFree(m map[string]int) int {
	n := 0
	for _, v := range m { // no sink: scalar accumulation is order-free
		n += v
	}
	return n
}

func loopLocalScratch(m map[string][]string) int {
	n := 0
	for _, vs := range m { // no sink: the append target is loop-local
		var dedup []string
		dedup = append(dedup, vs...)
		n += len(dedup)
	}
	return n
}
