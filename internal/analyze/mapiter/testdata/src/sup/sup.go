// Package sup exercises //nvolint:ignore handling for mapiter.
package sup

func suppressed(m map[string]bool) []string {
	var out []string
	//nvolint:ignore mapiter fixture: order provably irrelevant downstream
	for k := range m {
		out = append(out, k)
	}
	return out
}

func reasonless(m map[string]bool) []string {
	var out []string
	//nvolint:ignore mapiter // want `directive requires a reason`
	for k := range m { // want `randomized order and the body appends to out`
		out = append(out, k)
	}
	return out
}
