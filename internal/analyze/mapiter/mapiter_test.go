package mapiter_test

import (
	"testing"

	"repro/internal/analyze/analyzetest"
	"repro/internal/analyze/mapiter"
)

func TestMapIter(t *testing.T) {
	analyzetest.Run(t, "testdata", mapiter.Analyzer, "src/a")
}

func TestMapIterSuppression(t *testing.T) {
	analyzetest.Run(t, "testdata", mapiter.Analyzer, "src/sup")
}
