// Package analyzetest is the repo's analysistest equivalent: it runs
// one analyzer over fixture packages under testdata/ and checks the
// findings against `// want "regexp"` comments in the fixture source.
//
// A fixture line expecting a diagnostic carries a trailing comment
//
//	code() // want "part of the expected message"
//
// with one quoted Go-syntax regexp per expected diagnostic. Suppression
// directives (//nvolint:ignore) in fixtures are honoured before
// matching, so the suppression path — including the reasonless form
// that must still diagnose — is testable end to end.
package analyzetest

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analyze"
	"repro/internal/analyze/loader"
)

// expectation is one `// want` entry.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

// Run loads each fixture package (a directory relative to testdataDir,
// e.g. "src/a"), applies the analyzer plus suppression filtering, and
// reports any mismatch between findings and want-comments as test
// errors.
func Run(t *testing.T, testdataDir string, a *analyze.Analyzer, fixtures ...string) {
	t.Helper()
	patterns := make([]string, len(fixtures))
	for i, f := range fixtures {
		patterns[i] = "./" + strings.TrimPrefix(f, "./")
	}
	pkgs, err := loader.Load(testdataDir, patterns...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("fixture %s: type error: %v", pkg.ImportPath, terr)
		}
		pass := &analyze.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		if err := a.Run(pass); err != nil {
			t.Fatalf("fixture %s: analyzer %s: %v", pkg.ImportPath, a.Name, err)
		}
		diags := analyze.Suppress(pkg.Fset, pkg.Files, pass.Diagnostics())
		checkPackage(t, pkg, diags)
	}
}

// checkPackage matches findings against the package's want-comments.
func checkPackage(t *testing.T, pkg *loader.Package, diags []analyze.Diagnostic) {
	t.Helper()
	wants := collectWants(t, pkg.Fset, pkg.Files)
	for _, d := range diags {
		p := pkg.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.met && w.file == p.Filename && w.line == p.Line && w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic [%s]: %s", p, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// collectWants parses every `// want` comment in the fixture files.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue
				}
				trimmed := strings.TrimSpace(rest)
				rest, ok = strings.CutPrefix(trimmed, "want ")
				if !ok {
					// A want clause may ride at the end of another directive
					// comment — the only way to expect a diagnostic on the
					// directive's own line (e.g. the reasonless-ignore case).
					if i := strings.LastIndex(trimmed, "// want "); i >= 0 {
						rest, ok = trimmed[i+len("// want "):], true
					}
				}
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				res, err := parseWantPatterns(rest)
				if err != nil {
					t.Fatalf("%s: bad want comment: %v", pos, err)
				}
				for _, re := range res {
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// parseWantPatterns reads the sequence of quoted regexps after "want".
func parseWantPatterns(s string) ([]*regexp.Regexp, error) {
	var res []*regexp.Regexp
	for s = strings.TrimSpace(s); s != ""; s = strings.TrimSpace(s) {
		if s[0] != '"' && s[0] != '`' {
			return nil, fmt.Errorf("expected quoted regexp, found %q", s)
		}
		quoted, rest, err := cutQuoted(s)
		if err != nil {
			return nil, err
		}
		pat, err := strconv.Unquote(quoted)
		if err != nil {
			return nil, fmt.Errorf("unquoting %s: %v", quoted, err)
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			return nil, err
		}
		res = append(res, re)
		s = rest
	}
	if len(res) == 0 {
		return nil, fmt.Errorf("want comment has no patterns")
	}
	return res, nil
}

// cutQuoted splits off the leading Go string literal.
func cutQuoted(s string) (quoted, rest string, err error) {
	quote := s[0]
	for i := 1; i < len(s); i++ {
		switch {
		case s[i] == '\\' && quote == '"':
			i++
		case s[i] == quote:
			return s[:i+1], s[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated string in want comment: %s", s)
}
