// Package lockpath is the flow-sensitive lock-hygiene analyzer: a
// sync.Mutex or sync.RWMutex acquired in a function must be released
// on every path to return or panic, and must not be held across a
// channel operation or a call into the configured I/O packages.
//
// The fabric (PR 6) and the preemptive scheduler (PR 8) are shared
// services in the paper's sense — long-running, multi-tenant,
// database-style. A lock leaked on one early-return path wedges every
// tenant behind it forever; a lock held across a blocking channel send
// or a journal write turns one slow disk into a fabric-wide stall. The
// analyzer builds a CFG per function body and runs a forward
// may-analysis: `defer mu.Unlock()` and the guarded
// `if ok { mu.Lock(); defer mu.Unlock() }` idiom are both recognized,
// because the defer is a path-sensitive fact set only on the paths
// that executed it.
package lockpath

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analyze"
	"repro/internal/analyze/cfg"
	"repro/internal/analyze/dataflow"
)

// Analyzer is the lockpath check.
var Analyzer = &analyze.Analyzer{
	Name: "lockpath",
	Doc: "require every sync.Mutex/RWMutex acquisition to be released on every path to return/panic, and forbid " +
		"holding a lock across channel operations or calls into the journal/network I/O packages: the fabric is a " +
		"shared long-running service, and a leaked or I/O-blocked lock stalls every tenant behind it",
	Run: run,
}

func init() {
	Analyzer.Flags.String("iopkgs",
		"repro/internal/journal,repro/internal/gridftp,net,net/http",
		"comma-separated import paths whose calls count as blocking I/O while a mutex is held")
}

// acq records one acquisition site.
type acq struct {
	pos  token.Pos
	call string // rendered acquire call, e.g. "s.mu.Lock"
}

// fact is the dataflow fact: the set of locks acquired on some path.
// leaked drops a lock when an unlock runs OR is deferred (the leak
// check asks "is release guaranteed by function exit"); held drops it
// only when an unlock actually runs (the held-across check asks "is
// the lock held right now" — a deferred unlock releases too late to
// help a blocking send inside the critical section).
type fact struct {
	leaked map[string]acq
	held   map[string]acq
}

func (f fact) clone() fact {
	out := fact{leaked: map[string]acq{}, held: map[string]acq{}}
	for k, v := range f.leaked {
		out.leaked[k] = v
	}
	for k, v := range f.held {
		out.held[k] = v
	}
	return out
}

func joinMaps(a, b map[string]acq) map[string]acq {
	out := map[string]acq{}
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		if prev, ok := out[k]; !ok || v.pos < prev.pos {
			out[k] = v
		}
	}
	return out
}

func equalMaps(a, b map[string]acq) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if w, ok := b[k]; !ok || w != v {
			return false
		}
	}
	return true
}

func run(pass *analyze.Pass) error {
	iopkgs := map[string]bool{}
	for _, p := range analyze.CommaList(pass.Analyzer.Flags.Lookup("iopkgs").Value.String()) {
		iopkgs[p] = true
	}
	a := &analysis{pass: pass, iopkgs: iopkgs}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				a.check(cfg.FuncGraph(fd))
			}
		}
		// Function literals are opaque to the enclosing graph; each gets
		// its own.
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				a.check(cfg.LitGraph(lit))
			}
			return true
		})
	}
	return nil
}

type analysis struct {
	pass   *analyze.Pass
	iopkgs map[string]bool
}

func (a *analysis) check(g *cfg.Graph) {
	res := dataflow.Forward(g, dataflow.Analysis[fact]{
		Entry: fact{leaked: map[string]acq{}, held: map[string]acq{}},
		Join: func(x, y fact) fact {
			return fact{leaked: joinMaps(x.leaked, y.leaked), held: joinMaps(x.held, y.held)}
		},
		Equal: func(x, y fact) bool {
			return equalMaps(x.leaked, y.leaked) && equalMaps(x.held, y.held)
		},
		Transfer: a.transfer,
	})

	// Leak check: a lock still pending release when control reaches Exit
	// escaped some return/panic path.
	if res.Reached[g.Exit] {
		for _, k := range sortedKeys(res.In[g.Exit].leaked) {
			at := res.In[g.Exit].leaked[k]
			a.pass.Reportf(at.pos,
				"%s() acquired here is not released on every path to return/panic; defer the unlock or release before each return",
				at.call)
		}
	}

	// Held-across check: replay each reached block from its in-fact and
	// flag channel operations and I/O calls made while a lock is held.
	for _, b := range g.Blocks {
		if !res.Reached[b] {
			continue
		}
		f := res.In[b].clone()
		for _, n := range b.Nodes {
			if len(f.held) > 0 {
				a.flagRisky(f, n)
			}
			a.apply(&f, n)
		}
	}
}

func (a *analysis) transfer(b *cfg.Block, in fact) fact {
	out := in.clone()
	for _, n := range b.Nodes {
		a.apply(&out, n)
	}
	return out
}

// apply folds one block node into the fact.
func (a *analysis) apply(f *fact, n ast.Node) {
	if d, ok := n.(*ast.DeferStmt); ok {
		// A deferred unlock (direct or inside a deferred closure)
		// guarantees release at exit on every path from here on, but the
		// lock stays held until then.
		for _, op := range a.mutexOps(d, true) {
			if !op.acquire {
				delete(f.leaked, op.key)
			}
		}
		return
	}
	for _, op := range a.mutexOps(n, false) {
		if op.acquire {
			at := acq{pos: op.pos, call: op.call}
			f.leaked[op.key] = at
			f.held[op.key] = at
		} else {
			delete(f.leaked, op.key)
			delete(f.held, op.key)
		}
	}
}

// flagRisky reports channel operations and I/O-package calls in n made
// while f.held is non-empty. Function literals are skipped (their
// bodies are separate graphs and do not run here); defers are skipped
// (they run at return, outside the critical section being replayed).
func (a *analysis) flagRisky(f fact, n ast.Node) {
	if _, ok := n.(*ast.DeferStmt); ok {
		return
	}
	held := sortedKeys(f.held)
	ast.Inspect(n, func(n ast.Node) bool {
		var what string
		var pos token.Pos
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			what, pos = "a channel send", n.Arrow
		case *ast.UnaryExpr:
			if n.Op != token.ARROW {
				return true
			}
			what, pos = "a channel receive", n.OpPos
		case *ast.CallExpr:
			pkg, ok := a.ioCall(n)
			if !ok {
				return true
			}
			what, pos = "a call into "+pkg, n.Pos()
		default:
			return true
		}
		for _, k := range held {
			a.pass.Reportf(pos,
				"%s() is held across %s; a blocked operation here stalls every tenant waiting on the lock — release first, or move the operation outside the critical section",
				f.held[k].call, what)
		}
		return true
	})
}

// op is one mutex acquire/release site.
type mutexOp struct {
	key     string // pairs acquire with release: receiver + lock flavor
	call    string // rendered call for diagnostics, e.g. "s.mu.RLock"
	acquire bool
	pos     token.Pos
}

// mutexOps extracts the sync.Mutex/RWMutex operations in n, in source
// order. intoLits additionally descends into function literals — used
// only for defers, where `defer func() { mu.Unlock() }()` releases on
// the deferring function's exit paths. TryLock/TryRLock are ignored:
// their result is branch-dependent, and the suite forbids them
// elsewhere anyway.
func (a *analysis) mutexOps(n ast.Node, intoLits bool) []mutexOp {
	var ops []mutexOp
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && !intoLits {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selInfo := a.pass.TypesInfo.Selections[sel]
		if selInfo == nil {
			return true
		}
		fn, ok := selInfo.Obj().(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return true
		}
		var acquire, reader bool
		switch fn.Name() {
		case "Lock":
			acquire = true
		case "RLock":
			acquire, reader = true, true
		case "Unlock":
		case "RUnlock":
			reader = true
		default:
			return true
		}
		recv := types.ExprString(sel.X)
		key := recv
		lock := recv + ".Lock"
		if reader {
			key += "/r"
			lock = recv + ".RLock"
		}
		ops = append(ops, mutexOp{
			key:     key,
			call:    lock,
			acquire: acquire,
			pos:     call.Pos(),
		})
		return true
	})
	return ops
}

// ioCall reports whether call crosses into one of the configured I/O
// packages. Calls within the I/O package itself do not count — the
// rule guards foreign critical sections from blocking on I/O, not an
// I/O package's own internal helpers.
func (a *analysis) ioCall(call *ast.CallExpr) (string, bool) {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if selInfo := a.pass.TypesInfo.Selections[fun]; selInfo != nil {
			obj = selInfo.Obj()
		} else {
			obj = a.pass.TypesInfo.Uses[fun.Sel]
		}
	case *ast.Ident:
		obj = a.pass.TypesInfo.Uses[fun]
	}
	if obj == nil || obj.Pkg() == nil || !a.iopkgs[obj.Pkg().Path()] {
		return "", false
	}
	if a.pass.Pkg != nil && obj.Pkg().Path() == a.pass.Pkg.Path() {
		return "", false
	}
	return obj.Pkg().Path(), true
}

func sortedKeys(m map[string]acq) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
