// Package sup exercises //nvolint:ignore handling for lockpath.
package sup

import "sync"

type box struct {
	mu sync.Mutex
	n  int
}

// handoff intentionally returns holding the lock; release() is the
// documented counterpart. The suppression carries the reason.
func (b *box) handoff() {
	//nvolint:ignore lockpath fixture: lock handoff protocol, caller releases via release()
	b.mu.Lock()
	b.n++
}

func (b *box) release() {
	b.mu.Unlock()
}

func (b *box) reasonless() {
	//nvolint:ignore lockpath // want `nvolint:ignore directive requires a reason`
	b.mu.Lock() // want `b\.mu\.Lock\(\) acquired here is not released on every path to return/panic`
	b.n++
}
