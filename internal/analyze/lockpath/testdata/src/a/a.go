// Package a exercises the lockpath analyzer: leaks on early-return and
// panic paths, the defer and guard-clause idioms, RLock/RUnlock
// pairing, and locks held across channel operations and I/O calls.
package a

import (
	"net"
	"sync"
)

type store struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	data map[string]string
}

func (s *store) leak(k string) string {
	s.mu.Lock() // want `s\.mu\.Lock\(\) acquired here is not released on every path to return/panic`
	v, ok := s.data[k]
	if !ok {
		return "" // leaks the lock
	}
	s.mu.Unlock()
	return v
}

func (s *store) panicLeak(k string) string {
	s.mu.Lock() // want `s\.mu\.Lock\(\) acquired here is not released on every path to return/panic`
	v, ok := s.data[k]
	if !ok {
		panic("missing key")
	}
	s.mu.Unlock()
	return v
}

func (s *store) readLeak() int {
	s.rw.RLock() // want `s\.rw\.RLock\(\) acquired here is not released on every path to return/panic`
	if len(s.data) == 0 {
		return 0
	}
	s.rw.RUnlock()
	return len(s.data)
}

// deferred is the canonical clean shape.
func (s *store) deferred(k string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.data[k]
}

// guarded conditionally acquires with a defer inside the guard: the
// unlock fact is set exactly on the paths that locked.
func (s *store) guarded(lock bool) int {
	if lock {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	return len(s.data)
}

// deferClosure releases through a deferred literal.
func (s *store) deferClosure() {
	s.mu.Lock()
	defer func() { s.mu.Unlock() }()
	s.data["y"] = "z"
}

// explicitPaths unlocks on each branch by hand.
func (s *store) explicitPaths(k string) string {
	s.mu.Lock()
	if v, ok := s.data[k]; ok {
		s.mu.Unlock()
		return v
	}
	s.mu.Unlock()
	return ""
}

func (s *store) heldSend(ch chan string, k string) {
	s.mu.Lock()
	ch <- s.data[k] // want `s\.mu\.Lock\(\) is held across a channel send`
	s.mu.Unlock()
}

func (s *store) heldRecv(ch chan string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := <-ch // want `s\.mu\.Lock\(\) is held across a channel receive`
	s.data["x"] = v
}

func (s *store) heldIO(host, port string) {
	s.mu.Lock()
	s.data["addr"] = net.JoinHostPort(host, port) // want `s\.mu\.Lock\(\) is held across a call into net`
	s.mu.Unlock()
}

// sendOutsideLock releases before the send: clean.
func sendOutsideLock(s *store, ch chan int) {
	s.mu.Lock()
	n := len(s.data)
	s.mu.Unlock()
	ch <- n
}

// leakyLit shows function literals get their own graph.
var leakyLit = func(mu *sync.Mutex, cond bool) {
	mu.Lock() // want `mu\.Lock\(\) acquired here is not released on every path to return/panic`
	if cond {
		return
	}
	mu.Unlock()
}
