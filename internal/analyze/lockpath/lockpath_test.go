package lockpath_test

import (
	"testing"

	"repro/internal/analyze/analyzetest"
	"repro/internal/analyze/lockpath"
)

func TestLockPath(t *testing.T) {
	analyzetest.Run(t, "testdata", lockpath.Analyzer, "src/a")
}

func TestLockPathSuppression(t *testing.T) {
	analyzetest.Run(t, "testdata", lockpath.Analyzer, "src/sup")
}
