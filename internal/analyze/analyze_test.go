package analyze

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

// posOnLine returns a Pos on the given 1-based line of the single file.
func posOnLine(fset *token.FileSet, line int) token.Pos {
	var pos token.Pos
	fset.Iterate(func(f *token.File) bool {
		pos = f.LineStart(line)
		return false
	})
	return pos
}

func TestSuppressCoversSameAndNextLine(t *testing.T) {
	src := `package p

//nvolint:ignore demo the next line is fine
var a = 1
var b = 2 //nvolint:ignore demo this line is fine
var c = 3
`
	fset, files := parseOne(t, src)
	diags := []Diagnostic{
		{Analyzer: "demo", Pos: posOnLine(fset, 4), Message: "on the covered next line"},
		{Analyzer: "demo", Pos: posOnLine(fset, 5), Message: "on the directive's own line"},
		{Analyzer: "demo", Pos: posOnLine(fset, 6), Message: "uncovered"},
	}
	kept := Suppress(fset, files, diags)
	if len(kept) != 1 || kept[0].Message != "uncovered" {
		t.Fatalf("Suppress kept %v, want only the uncovered finding", kept)
	}
}

func TestSuppressRequiresMatchingAnalyzer(t *testing.T) {
	src := `package p

//nvolint:ignore other a reason that names a different analyzer
var a = 1
`
	fset, files := parseOne(t, src)
	diags := []Diagnostic{{Analyzer: "demo", Pos: posOnLine(fset, 4), Message: "m"}}
	if kept := Suppress(fset, files, diags); len(kept) != 1 {
		t.Fatalf("directive for a different analyzer suppressed the finding: %v", kept)
	}
}

func TestSuppressCommaSeparatedAnalyzers(t *testing.T) {
	src := `package p

//nvolint:ignore demo,other both analyzers are justified here
var a = 1
`
	fset, files := parseOne(t, src)
	diags := []Diagnostic{
		{Analyzer: "demo", Pos: posOnLine(fset, 4), Message: "m1"},
		{Analyzer: "other", Pos: posOnLine(fset, 4), Message: "m2"},
	}
	if kept := Suppress(fset, files, diags); len(kept) != 0 {
		t.Fatalf("comma-list directive left findings: %v", kept)
	}
}

func TestSuppressReasonlessDirectiveDiagnosed(t *testing.T) {
	src := `package p

//nvolint:ignore demo
var a = 1
`
	fset, files := parseOne(t, src)
	diags := []Diagnostic{{Analyzer: "demo", Pos: posOnLine(fset, 4), Message: "survives"}}
	kept := Suppress(fset, files, diags)
	if len(kept) != 2 {
		t.Fatalf("got %d findings, want 2 (original + malformed directive): %v", len(kept), kept)
	}
	if kept[0].Analyzer != "nvolint" || !strings.Contains(kept[0].Message, "requires a reason") {
		t.Fatalf("first finding should be the reasonless directive, got %+v", kept[0])
	}
	if kept[1].Message != "survives" {
		t.Fatalf("underlying finding did not survive: %+v", kept[1])
	}
}

func TestSuppressNamelessDirectiveDiagnosed(t *testing.T) {
	src := `package p

//nvolint:ignore
var a = 1
`
	fset, files := parseOne(t, src)
	kept := Suppress(fset, files, nil)
	if len(kept) != 1 || !strings.Contains(kept[0].Message, "names no analyzer") {
		t.Fatalf("got %v, want the names-no-analyzer finding", kept)
	}
}

func TestSuppressSortsByPosition(t *testing.T) {
	src := "package p\n\nvar a = 1\n"
	fset, files := parseOne(t, src)
	diags := []Diagnostic{
		{Analyzer: "z", Pos: posOnLine(fset, 3), Message: "later"},
		{Analyzer: "a", Pos: posOnLine(fset, 1), Message: "earlier"},
	}
	kept := Suppress(fset, files, diags)
	if kept[0].Message != "earlier" || kept[1].Message != "later" {
		t.Fatalf("findings not sorted by position: %v", kept)
	}
}

func TestCommaList(t *testing.T) {
	got := CommaList(" a, b ,,c ")
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("CommaList = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CommaList = %v, want %v", got, want)
		}
	}
	if CommaList("") != nil {
		t.Fatalf("CommaList(%q) should be empty", "")
	}
}
