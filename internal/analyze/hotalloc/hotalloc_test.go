package hotalloc_test

import (
	"testing"

	"repro/internal/analyze/analyzetest"
	"repro/internal/analyze/hotalloc"
)

func TestHotAlloc(t *testing.T) {
	analyzetest.Run(t, "testdata", hotalloc.Analyzer, "src/a")
}

func TestHotAllocSuppression(t *testing.T) {
	analyzetest.Run(t, "testdata", hotalloc.Analyzer, "src/sup")
}
