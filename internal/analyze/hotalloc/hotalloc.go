// Package hotalloc flags per-call heap allocations inside functions
// annotated //nvo:hotpath — the cone→cutout→measure request path whose
// allocs/galaxy budget the hot-path benchmark pins. Inside an annotated
// function the analyzer reports:
//
//   - make and new builtin calls;
//   - &T{...} composite literals (the address forces a heap escape);
//   - slice and map composite literals (plain struct VALUE literals are
//     exempt: they live in registers or on the stack);
//   - append calls whose result is not assigned back to their own first
//     argument (x = append(x, ...) reuses x's capacity after the arena
//     or scratch pool pre-sized it; anything else grows a fresh backing
//     array per call).
//
// The sanctioned pattern is to route allocation through an unannotated,
// reviewed helper — an arena method, a scratch-pool grow function — so
// the annotated body itself performs none. Findings are suppressible
// with //nvolint:ignore hotalloc <reason> like any other analyzer, and
// test files are exempt.
package hotalloc

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analyze"
)

// Marker is the doc-comment annotation that opts a function into the
// check.
const Marker = "nvo:hotpath"

// Analyzer is the hotalloc check.
var Analyzer = &analyze.Analyzer{
	Name: "hotalloc",
	Doc: "flag per-call heap allocations (make/new, &T{}, slice and map literals, append that cannot reuse " +
		"capacity) inside functions annotated //nvo:hotpath: the measure hot path draws from request arenas " +
		"and scratch pools, so an allocation here silently regresses the pinned allocs/galaxy budget",
	Run: run,
}

func run(pass *analyze.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotPath(fd) {
				continue
			}
			if pass.IsTestFile(fd.Pos()) {
				continue
			}
			checkBody(pass, fd)
		}
	}
	return nil
}

// isHotPath reports whether the declaration's doc comment carries the
// //nvo:hotpath marker.
func isHotPath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimLeft(strings.TrimPrefix(c.Text, "//"), " \t")
		if strings.HasPrefix(text, Marker) {
			return true
		}
	}
	return false
}

func checkBody(pass *analyze.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	// First pass: appends assigned back to their own first argument are
	// the capacity-reusing idiom and sanctioned.
	sanctioned := map[*ast.CallExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltin(pass, call, "append") || len(call.Args) == 0 {
				continue
			}
			if exprString(as.Lhs[i]) == exprString(call.Args[0]) {
				sanctioned[call] = true
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A closure's body runs on its own schedule; the annotation
			// binds the annotated function's own statements.
			return false
		case *ast.CallExpr:
			switch {
			case isBuiltin(pass, n, "make"):
				pass.Reportf(n.Pos(), "make in hot-path function %s allocates per call; draw from the request arena or a reused scratch buffer", name)
			case isBuiltin(pass, n, "new"):
				pass.Reportf(n.Pos(), "new in hot-path function %s allocates per call; draw from the request arena or a reused scratch buffer", name)
			case isBuiltin(pass, n, "append") && !sanctioned[n]:
				pass.Reportf(n.Pos(), "append in hot-path function %s does not assign back to %s, so it cannot reuse capacity and may allocate per call", name, exprString(n.Args[0]))
			}
		case *ast.UnaryExpr:
			if lit, ok := innerCompositeLit(n); ok {
				pass.Reportf(lit.Pos(), "&composite literal in hot-path function %s escapes to the heap per call; reuse a request-scoped value", name)
				return false // the literal inside is already reported
			}
		case *ast.CompositeLit:
			tv, ok := pass.TypesInfo.Types[n]
			if !ok {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal in hot-path function %s allocates per call; draw from the request arena or a reused scratch buffer", name)
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal in hot-path function %s allocates per call; hoist it to a package-level table or the request arena", name)
			}
		}
		return true
	})
}

// innerCompositeLit matches &T{...}, including the parenthesized form.
func innerCompositeLit(u *ast.UnaryExpr) (*ast.CompositeLit, bool) {
	if u.Op.String() != "&" {
		return nil, false
	}
	e := u.X
	for {
		if p, ok := e.(*ast.ParenExpr); ok {
			e = p.X
			continue
		}
		break
	}
	lit, ok := e.(*ast.CompositeLit)
	return lit, ok
}

// isBuiltin reports whether call invokes the named builtin (resolved
// through the type checker, so shadowing is handled).
func isBuiltin(pass *analyze.Pass, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

// exprString renders a short source form of expr, used to pair an
// append's destination with its first argument.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.BasicLit:
		return e.Value
	}
	return "?"
}
