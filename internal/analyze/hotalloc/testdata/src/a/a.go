// Package a exercises the hotalloc analyzer: allocations inside
// //nvo:hotpath functions are findings; the same constructs in
// unannotated functions, and the sanctioned capacity-reusing idioms,
// are not.
package a

type params struct {
	a, b float64
}

type scratch struct {
	vals []float64
}

// grow is the sanctioned unannotated helper: annotated callers route
// allocation through it.
func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	return buf[:n]
}

// hotMake allocates a fresh buffer per call.
//
//nvo:hotpath
func hotMake(n int) []float64 {
	return make([]float64, n) // want `make in hot-path function hotMake allocates per call`
}

// hotNew heap-allocates per call.
//
//nvo:hotpath
func hotNew() *params {
	return new(params) // want `new in hot-path function hotNew allocates per call`
}

// hotAddr forces a heap escape per call.
//
//nvo:hotpath
func hotAddr() *params {
	return &params{a: 1} // want `&composite literal in hot-path function hotAddr escapes to the heap per call`
}

// hotSliceLit allocates backing storage per call.
//
//nvo:hotpath
func hotSliceLit() []float64 {
	return []float64{1, 2, 3} // want `slice literal in hot-path function hotSliceLit allocates per call`
}

// hotMapLit allocates a map per call.
//
//nvo:hotpath
func hotMapLit() map[string]int {
	return map[string]int{"a": 1} // want `map literal in hot-path function hotMapLit allocates per call`
}

// hotAppendOther grows a fresh backing array per call.
//
//nvo:hotpath
func hotAppendOther(dst, src []float64) []float64 {
	out := append(dst, src...) // want `append in hot-path function hotAppendOther does not assign back to dst`
	return out
}

// hotSelfAppend reuses pre-sized capacity: the sanctioned idiom.
//
//nvo:hotpath
func hotSelfAppend(vals []float64, v float64) []float64 {
	vals = vals[:0]
	vals = append(vals, v)
	vals = append(vals, v*2)
	return vals
}

// hotStructValue builds a plain struct VALUE: stack-resident, exempt.
//
//nvo:hotpath
func hotStructValue(a, b float64) params {
	return params{a: a, b: b}
}

// hotViaHelper routes allocation through the unannotated helper and a
// method on request state: both are calls, not allocations here.
//
//nvo:hotpath
func hotViaHelper(sc *scratch, n int) []float64 {
	sc.vals = grow(sc.vals, n)
	return sc.vals
}

// hotClosure only pays for the closure body when the closure runs; the
// annotation binds the annotated function's own statements.
//
//nvo:hotpath
func hotClosure() func() []float64 {
	return func() []float64 { return make([]float64, 4) }
}

// cold is unannotated: every allocation below is fine.
func cold(n int) []float64 {
	m := map[string]int{"a": 1}
	_ = m
	p := &params{a: 1}
	_ = p
	out := append([]float64{1}, 2)
	_ = out
	return make([]float64, n)
}
