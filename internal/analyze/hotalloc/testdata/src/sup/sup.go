// Package sup exercises hotalloc suppression: a directive with a
// reason silences the finding; a reasonless one suppresses nothing and
// is itself diagnosed.
package sup

// coldFallback documents why its one allocation is acceptable.
//
//nvo:hotpath
func coldFallback(cells []string) []string {
	//nvolint:ignore hotalloc cold fallback used only when no arena is configured
	return append([]string(nil), cells...)
}

// reasonless shows the directive without a reason: the finding stands
// and the directive is diagnosed.
//
//nvo:hotpath
func reasonless(n int) []float64 {
	//nvolint:ignore hotalloc // want `nvolint:ignore directive requires a reason`
	return make([]float64, n) // want `make in hot-path function reasonless allocates per call`
}
