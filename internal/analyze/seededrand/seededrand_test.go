package seededrand_test

import (
	"testing"

	"repro/internal/analyze/analyzetest"
	"repro/internal/analyze/seededrand"
)

func TestSeededRand(t *testing.T) {
	analyzetest.Run(t, "testdata", seededrand.Analyzer, "src/a")
}

func TestSeededRandSuppression(t *testing.T) {
	analyzetest.Run(t, "testdata", seededrand.Analyzer, "src/sup")
}
