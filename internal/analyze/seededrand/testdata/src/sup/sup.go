// Package sup exercises //nvolint:ignore handling for seededrand.
package sup

import "math/rand"

//nvolint:ignore seededrand fixture: demo code outside any replayed path
func suppressed() int { return rand.Int() }

//nvolint:ignore seededrand // want `directive requires a reason`
func reasonless() int { return rand.Int() } // want `rand\.Int draws from the process-global math/rand source`
