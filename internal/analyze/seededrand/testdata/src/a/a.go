// Package a exercises the seededrand analyzer: global-source draws are
// findings, explicitly seeded generators are not.
package a

import (
	"math/rand"
	randv2 "math/rand/v2"
)

func bad() {
	_ = rand.Intn(10)                  // want `rand\.Intn draws from the process-global math/rand source`
	_ = rand.Float64()                 // want `rand\.Float64 draws from the process-global math/rand source`
	rand.Shuffle(3, func(i, j int) {}) // want `rand\.Shuffle draws from the process-global math/rand source`
	_ = randv2.IntN(10)                // want `math/rand/v2 IntN uses a global source that cannot be seeded`
}

func good(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10) // a method on an explicitly seeded *rand.Rand
}
