// Package seededrand forbids the process-global math/rand source in
// non-test code. Every stochastic decision in the stack — site
// selection, fault schedules, retry jitter — must draw from a
// *rand.Rand built over an explicitly threaded seed (the request seed,
// the fault-campaign seed), because the byte-identity guarantees are
// proved by replaying those seeds. The top-level math/rand functions
// (and all of math/rand/v2, whose global source cannot be seeded at
// all) draw from shared process state that a resumed or re-sharded run
// cannot reproduce.
package seededrand

import (
	"go/ast"

	"repro/internal/analyze"
)

// constructors are the math/rand package-level functions that build
// seeded sources rather than drawing from the global one.
var constructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// Analyzer is the seededrand check.
var Analyzer = &analyze.Analyzer{
	Name: "seededrand",
	Doc: "forbid the global math/rand source (top-level rand.Intn, rand.Float64, rand.Shuffle, ..., and all " +
		"of math/rand/v2) in non-test code; randomness must flow from rand.New(rand.NewSource(seed)) with the " +
		"seed threaded from the request or campaign, or replays cannot reproduce the original bytes",
	Run: run,
}

func run(pass *analyze.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pass.IsTestFile(call.Pos()) {
				return true
			}
			if name, ok := analyze.PkgFunc(pass.TypesInfo, call, "math/rand"); ok && !constructors[name] {
				pass.Reportf(call.Pos(),
					"rand.%s draws from the process-global math/rand source; thread the run seed through rand.New(rand.NewSource(seed)) instead",
					name)
			}
			if name, ok := analyze.PkgFunc(pass.TypesInfo, call, "math/rand/v2"); ok {
				pass.Reportf(call.Pos(),
					"math/rand/v2 %s uses a global source that cannot be seeded; use math/rand with an explicit rand.NewSource(seed)",
					name)
			}
			return true
		})
	}
	return nil
}
