// Package cfg builds a control-flow graph per function body for the
// nvolint flow-sensitive analyzers. It is the stdlib-only counterpart
// of golang.org/x/tools/go/cfg, trimmed to what the suite needs: basic
// blocks of *simple* nodes (assignments, calls, channel operations,
// conditions, defers) connected by edges that encode the structured
// control flow of if/for/range/switch/select, labeled break/continue,
// goto, return and explicit panic exits.
//
// Design rules the analyzers rely on:
//
//   - A block's Nodes are disjoint subtrees: compound statements (if,
//     for, switch, select) never appear as nodes; their conditions, tags
//     and comm statements do. A transfer function may therefore
//     ast.Inspect each node without double-visiting a branch body.
//   - Function literals are opaque: a FuncLit appearing inside a node is
//     a value, not control flow of this function. Analyzers analyze each
//     literal's body as its own graph.
//   - defer statements are ordinary nodes in the block where they
//     execute — a dataflow fact set at a DeferStmt is naturally
//     path-sensitive ("an unlock is pending on exactly the paths that
//     ran the defer"), which is how the lockpath analyzer recognizes the
//     guarded `if ok { mu.Lock(); defer mu.Unlock() }` idiom.
//   - Every function has one Entry and one Exit block. return edges to
//     Exit; an explicit panic(...) statement edges to Exit with the
//     panic call as its block's final node, so "every path to
//     return/panic" is exactly "every path to Exit".
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// A Graph is the control-flow graph of one function body.
type Graph struct {
	// Name labels the graph in dumps and diagnostics (the function
	// name, or "func literal").
	Name string
	// Blocks holds every block in creation order; Blocks[0] is Entry
	// and Blocks[1] is Exit.
	Blocks []*Block
	Entry  *Block
	Exit   *Block
}

// A Block is one basic block: a maximal sequence of simple nodes
// executed in order, followed by a branch described by Succs.
type Block struct {
	Index int
	// Kind names the structural role the builder gave the block
	// ("entry", "exit", "if.then", "for.head", "select.case", ...).
	// Analyzers use it sparingly (e.g. to recognize a range head);
	// tests assert on it.
	Kind  string
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// String renders the block compactly for diagnostics.
func (b *Block) String() string { return fmt.Sprintf("b%d(%s)", b.Index, b.Kind) }

// New builds the graph of one function body. A nil body (declaration
// without definition) yields the trivial entry→exit graph.
func New(name string, body *ast.BlockStmt) *Graph {
	g := &Graph{Name: name}
	b := &builder{g: g}
	g.Entry = b.newBlock("entry")
	g.Exit = b.newBlock("exit")
	b.cur = g.Entry
	if body != nil {
		b.stmt(body)
	}
	// Implicit return: falling off the end of the body reaches Exit.
	b.edge(b.cur, g.Exit)
	b.patchGotos()
	return g
}

// FuncGraph builds the graph of a declared function.
func FuncGraph(fd *ast.FuncDecl) *Graph { return New(fd.Name.Name, fd.Body) }

// LitGraph builds the graph of a function literal.
func LitGraph(lit *ast.FuncLit) *Graph { return New("func literal", lit.Body) }

// frame is one enclosing breakable/continuable construct.
type frame struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select
}

// pendingGoto is a goto awaiting its label's block.
type pendingGoto struct {
	from  *Block
	label string
}

type builder struct {
	g      *Graph
	cur    *Block
	frames []frame
	labels map[string]*Block
	gotos  []pendingGoto
	// fallTarget is the next case block of the innermost switch clause
	// being built — the fallthrough destination.
	fallTarget *Block
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

func (b *builder) append(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

// terminate ends the current path: subsequent statements (dead code)
// collect in a fresh, predecessor-less block.
func (b *builder) terminate() {
	b.cur = b.newBlock("unreached")
}

func (b *builder) setLabel(name string, blk *Block) {
	if name == "" {
		return
	}
	if b.labels == nil {
		b.labels = map[string]*Block{}
	}
	b.labels[name] = blk
}

func (b *builder) patchGotos() {
	for _, pg := range b.gotos {
		if target, ok := b.labels[pg.label]; ok {
			b.edge(pg.from, target)
		}
	}
}

// stmt translates one statement, leaving b.cur at the fallthrough
// block.
func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, sub := range s.List {
			b.stmt(sub)
		}
	case *ast.LabeledStmt:
		b.labeled(s.Label.Name, s.Stmt)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt("", s)
	case *ast.RangeStmt:
		b.rangeStmt("", s)
	case *ast.SwitchStmt:
		b.switchStmt("", s.Init, s.Tag, nil, s.Body)
	case *ast.TypeSwitchStmt:
		b.switchStmt("", s.Init, nil, s.Assign, s.Body)
	case *ast.SelectStmt:
		b.selectStmt("", s)
	case *ast.ReturnStmt:
		b.append(s)
		b.edge(b.cur, b.g.Exit)
		b.terminate()
	case *ast.BranchStmt:
		b.branch(s)
	case *ast.ExprStmt:
		b.append(s)
		if isPanicCall(s.X) {
			b.edge(b.cur, b.g.Exit)
			b.terminate()
		}
	case *ast.EmptyStmt:
		// nothing
	default:
		// Simple statements: assign, decl, send, incdec, defer, go.
		b.append(s)
	}
}

// labeled attaches a label to the statement it governs: loops, switches
// and selects take it as their break/continue label; anything else
// becomes a plain goto target.
func (b *builder) labeled(name string, s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ForStmt:
		b.forStmt(name, s)
	case *ast.RangeStmt:
		b.rangeStmt(name, s)
	case *ast.SwitchStmt:
		b.switchStmt(name, s.Init, s.Tag, nil, s.Body)
	case *ast.TypeSwitchStmt:
		b.switchStmt(name, s.Init, nil, s.Assign, s.Body)
	case *ast.SelectStmt:
		b.selectStmt(name, s)
	default:
		target := b.newBlock("label." + name)
		b.edge(b.cur, target)
		b.cur = target
		b.setLabel(name, target)
		b.stmt(s)
	}
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.append(s.Init)
	}
	b.append(s.Cond)
	cond := b.cur
	then := b.newBlock("if.then")
	b.edge(cond, then)
	b.cur = then
	b.stmt(s.Body)
	thenEnd := b.cur
	var elseEnd *Block
	if s.Else != nil {
		els := b.newBlock("if.else")
		b.edge(cond, els)
		b.cur = els
		b.stmt(s.Else)
		elseEnd = b.cur
	}
	done := b.newBlock("if.done")
	b.edge(thenEnd, done)
	if elseEnd != nil {
		b.edge(elseEnd, done)
	} else {
		b.edge(cond, done)
	}
	b.cur = done
}

func (b *builder) forStmt(label string, s *ast.ForStmt) {
	if s.Init != nil {
		b.append(s.Init)
	}
	head := b.newBlock("for.head")
	b.edge(b.cur, head)
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
	}
	b.setLabel(label, head)
	body := b.newBlock("for.body")
	b.edge(head, body)
	done := b.newBlock("for.done")
	if s.Cond != nil {
		// for {} without a condition loops forever: done is reachable
		// only through break.
		b.edge(head, done)
	}
	contTo := head
	if s.Post != nil {
		post := b.newBlock("for.post")
		post.Nodes = append(post.Nodes, s.Post)
		b.edge(post, head)
		contTo = post
	}
	b.frames = append(b.frames, frame{label: label, breakTo: done, continueTo: contTo})
	b.cur = body
	b.stmt(s.Body)
	b.edge(b.cur, contTo)
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = done
}

func (b *builder) rangeStmt(label string, s *ast.RangeStmt) {
	head := b.newBlock("range.head")
	b.edge(b.cur, head)
	head.Nodes = append(head.Nodes, s.X)
	b.setLabel(label, head)
	body := b.newBlock("range.body")
	b.edge(head, body)
	done := b.newBlock("range.done")
	b.edge(head, done)
	b.frames = append(b.frames, frame{label: label, breakTo: done, continueTo: head})
	b.cur = body
	b.stmt(s.Body)
	b.edge(b.cur, head)
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = done
}

// switchStmt handles both value switches (tag != nil possible) and type
// switches (assign != nil).
func (b *builder) switchStmt(label string, init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt) {
	if init != nil {
		b.append(init)
	}
	if tag != nil {
		b.append(tag)
	}
	if assign != nil {
		b.append(assign)
	}
	head := b.cur
	b.setLabel(label, head)
	done := b.newBlock("switch.done")
	b.frames = append(b.frames, frame{label: label, breakTo: done})

	var clauses []*ast.CaseClause
	var caseBlocks []*Block
	hasDefault := false
	for _, cs := range body.List {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		kind := "switch.case"
		if cc.List == nil {
			kind = "switch.default"
			hasDefault = true
		}
		blk := b.newBlock(kind)
		b.edge(head, blk)
		if tag != nil || assign == nil {
			// Value-switch case expressions are evaluated; type-switch
			// case lists are types, not runtime nodes.
			for _, e := range cc.List {
				blk.Nodes = append(blk.Nodes, e)
			}
		}
		clauses = append(clauses, cc)
		caseBlocks = append(caseBlocks, blk)
	}
	if !hasDefault {
		b.edge(head, done)
	}
	for i, cc := range clauses {
		savedFall := b.fallTarget
		b.fallTarget = nil
		if i+1 < len(caseBlocks) {
			b.fallTarget = caseBlocks[i+1]
		}
		b.cur = caseBlocks[i]
		for _, sub := range cc.Body {
			b.stmt(sub)
		}
		b.edge(b.cur, done)
		b.fallTarget = savedFall
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = done
}

func (b *builder) selectStmt(label string, s *ast.SelectStmt) {
	head := b.cur
	b.setLabel(label, head)
	done := b.newBlock("select.done")
	b.frames = append(b.frames, frame{label: label, breakTo: done})
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		kind := "select.case"
		if cc.Comm == nil {
			kind = "select.default"
		}
		blk := b.newBlock(kind)
		b.edge(head, blk)
		if cc.Comm != nil {
			blk.Nodes = append(blk.Nodes, cc.Comm)
		}
		b.cur = blk
		for _, sub := range cc.Body {
			b.stmt(sub)
		}
		b.edge(b.cur, done)
	}
	// select{} with no cases blocks forever: done keeps no predecessor
	// beyond the case exits, which is exactly right.
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = done
}

func (b *builder) branch(s *ast.BranchStmt) {
	b.append(s)
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		if t := b.findFrame(label, false); t != nil {
			b.edge(b.cur, t.breakTo)
		}
		b.terminate()
	case token.CONTINUE:
		if t := b.findFrame(label, true); t != nil {
			b.edge(b.cur, t.continueTo)
		}
		b.terminate()
	case token.GOTO:
		b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: label})
		b.terminate()
	case token.FALLTHROUGH:
		if b.fallTarget != nil {
			b.edge(b.cur, b.fallTarget)
		}
		b.terminate()
	}
}

// findFrame resolves a break/continue target: the innermost matching
// frame, where continue only matches loops (continueTo != nil).
func (b *builder) findFrame(label string, isContinue bool) *frame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if isContinue && f.continueTo == nil {
			continue
		}
		if label == "" || f.label == label {
			return f
		}
	}
	return nil
}

// isPanicCall reports whether e is a call of the panic builtin. The
// builder has no type information, so a shadowed `panic` identifier
// would be misread — no code in this repo (and very little anywhere)
// shadows it.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// Dump renders the graph one block per line — "index kind -> succ
// indices" — the stable form the construction tests assert against.
func (g *Graph) Dump() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "%d %s", blk.Index, blk.Kind)
		if len(blk.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range blk.Succs {
				fmt.Fprintf(&sb, " %d", s.Index)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
