package cfg_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/analyze/cfg"
)

// build parses a function body and returns its graph.
func build(t *testing.T, body string) *cfg.Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "fixture.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	fd := file.Decls[len(file.Decls)-1].(*ast.FuncDecl)
	return cfg.FuncGraph(fd)
}

// TestConstruction asserts exact block/edge sets for the shapes the
// flow-sensitive analyzers depend on.
func TestConstruction(t *testing.T) {
	cases := []struct {
		name string
		body string
		want []string // Dump lines
	}{
		{
			name: "straight line",
			body: "x := 1; _ = x",
			want: []string{
				"0 entry -> 1",
				"1 exit",
			},
		},
		{
			name: "if without else",
			body: "if x := 1; x > 0 { x++ }",
			want: []string{
				"0 entry -> 2 3",
				"1 exit",
				"2 if.then -> 3",
				"3 if.done -> 1",
			},
		},
		{
			name: "if else with returns",
			body: "if c() { return } else { return }",
			want: []string{
				"0 entry -> 2 4",
				"1 exit",
				"2 if.then -> 1",
				"3 unreached -> 6", // dead tails keep structural edges; no preds = unreachable
				"4 if.else -> 1",
				"5 unreached -> 6",
				"6 if.done -> 1", // both arms terminated: done is dead but falls to exit
			},
		},
		{
			name: "for with cond and post",
			body: "for i := 0; i < 3; i++ { use(i) }",
			want: []string{
				"0 entry -> 2",
				"1 exit",
				"2 for.head -> 3 4",
				"3 for.body -> 5",
				"4 for.done -> 1",
				"5 for.post -> 2",
			},
		},
		{
			name: "infinite for reaches done only by break",
			body: "for { if c() { break } }",
			want: []string{
				"0 entry -> 2",
				"1 exit",
				"2 for.head -> 3",
				"3 for.body -> 5 7",
				"4 for.done -> 1",
				"5 if.then -> 4",
				"6 unreached -> 7",
				"7 if.done -> 2",
			},
		},
		{
			name: "labeled break and continue pick the outer loop",
			body: `
outer:
	for i := 0; i < 3; i++ {
		for {
			if c() {
				continue outer
			}
			break outer
		}
	}`,
			want: []string{
				"0 entry -> 2",
				"1 exit",
				"2 for.head -> 3 4", // outer head
				"3 for.body -> 6",
				"4 for.done -> 1", // outer done
				"5 for.post -> 2", // outer post (continue outer lands here)
				"6 for.head -> 7", // inner head (infinite)
				"7 for.body -> 9 11",
				"8 for.done -> 5", // inner done: dead (both exits jump out of the outer loop)
				"9 if.then -> 5",
				"10 unreached -> 11",
				"11 if.done -> 4",
				"12 unreached -> 6", // after break outer, loop back edge from dead tail
			},
		},
		{
			name: "range",
			body: "for _, v := range xs { use(v) }",
			want: []string{
				"0 entry -> 2",
				"1 exit",
				"2 range.head -> 3 4",
				"3 range.body -> 2",
				"4 range.done -> 1",
			},
		},
		{
			name: "switch with default and fallthrough",
			body: `
	switch x() {
	case 1:
		a()
		fallthrough
	case 2:
		b()
	default:
		d()
	}`,
			want: []string{
				"0 entry -> 3 4 5",
				"1 exit",
				"2 switch.done -> 1",
				"3 switch.case -> 4", // fallthrough edge to case 2, no direct edge to done
				"4 switch.case -> 2",
				"5 switch.default -> 2",
				"6 unreached -> 2", // dead tail after fallthrough
			},
		},
		{
			name: "switch without default falls through to done",
			body: "switch c() { case true: a() }",
			want: []string{
				"0 entry -> 3 2",
				"1 exit",
				"2 switch.done -> 1",
				"3 switch.case -> 2",
			},
		},
		{
			name: "select with default never blocks",
			body: `
	select {
	case <-ch:
		a()
	default:
		b()
	}`,
			want: []string{
				"0 entry -> 3 4",
				"1 exit",
				"2 select.done -> 1",
				"3 select.case -> 2",
				"4 select.default -> 2",
			},
		},
		{
			name: "select without default has only comm successors",
			body: `
	select {
	case v := <-ch:
		use(v)
	case ch2 <- 1:
	}`,
			want: []string{
				"0 entry -> 3 4",
				"1 exit",
				"2 select.done -> 1",
				"3 select.case -> 2",
				"4 select.case -> 2",
			},
		},
		{
			name: "defer inside loop stays a loop-body node",
			body: "for i := 0; i < n; i++ { defer release(i) }",
			want: []string{
				"0 entry -> 2",
				"1 exit",
				"2 for.head -> 3 4",
				"3 for.body -> 5",
				"4 for.done -> 1",
				"5 for.post -> 2",
			},
		},
		{
			name: "panic is an exit edge",
			body: "if bad() { panic(\"boom\") }; ok()",
			want: []string{
				"0 entry -> 2 4",
				"1 exit",
				"2 if.then -> 1", // panic exits
				"3 unreached -> 4",
				"4 if.done -> 1",
			},
		},
		{
			name: "panic recover pair: recover lives in a deferred literal, no extra edges",
			body: "defer func() { _ = recover() }(); if bad() { panic(1) }",
			want: []string{
				"0 entry -> 2 4",
				"1 exit",
				"2 if.then -> 1", // panic edges to exit; the deferred recover is a plain entry node
				"3 unreached -> 4",
				"4 if.done -> 1",
			},
		},
		{
			name: "goto forward and backward",
			body: `
	i := 0
loop:
	i++
	if i < 3 {
		goto loop
	}
	goto out
	bad()
out:
	done()`,
			want: []string{
				"0 entry -> 2",
				"1 exit",
				"2 label.loop -> 3 5",
				"3 if.then -> 2",   // goto loop (backward)
				"4 unreached -> 5", // dead tail after goto loop
				"5 if.done -> 7",   // goto out (forward, patched after build)
				"6 unreached -> 7", // bad() is dead
				"7 label.out -> 1",
			},
		},
		{
			name: "empty select blocks forever",
			body: "select {}; never()",
			want: []string{
				"0 entry",
				"1 exit",
				"2 select.done -> 1", // unreachable: no case ever fires
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := build(t, tc.body)
			got := strings.TrimSpace(g.Dump())
			want := strings.Join(tc.want, "\n")
			if got != want {
				t.Errorf("graph mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
			}
		})
	}
}

// TestEntryExitInvariants checks the structural promises analyzers rely
// on: Blocks[0] is Entry, Blocks[1] is Exit, Exit has no successors.
func TestEntryExitInvariants(t *testing.T) {
	g := build(t, "for { if c() { return } }")
	if g.Blocks[0] != g.Entry || g.Entry.Kind != "entry" {
		t.Fatalf("Blocks[0] = %v, want entry", g.Blocks[0])
	}
	if g.Blocks[1] != g.Exit || g.Exit.Kind != "exit" {
		t.Fatalf("Blocks[1] = %v, want exit", g.Blocks[1])
	}
	if len(g.Exit.Succs) != 0 {
		t.Fatalf("exit has successors: %v", g.Exit.Succs)
	}
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			found := false
			for _, p := range s.Preds {
				if p == blk {
					found = true
				}
			}
			if !found {
				t.Errorf("edge %v->%v missing from Preds", blk, s)
			}
		}
	}
}

// TestNilBody covers declarations without definitions.
func TestNilBody(t *testing.T) {
	g := cfg.New("external", nil)
	if got := strings.TrimSpace(g.Dump()); got != "0 entry -> 1\n1 exit" {
		t.Fatalf("nil body graph:\n%s", got)
	}
}
