package loader

import "testing"

// TestLoadTypeChecksRealPackage loads a real repo package through the
// go list -export path and checks full type information came back.
func TestLoadTypeChecksRealPackage(t *testing.T) {
	pkgs, err := Load("../../..", "./internal/journal")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.ImportPath != "repro/internal/journal" {
		t.Fatalf("ImportPath = %q", p.ImportPath)
	}
	if len(p.TypeErrors) != 0 {
		t.Fatalf("type errors: %v", p.TypeErrors)
	}
	if len(p.Files) == 0 {
		t.Fatal("no files parsed")
	}
	if p.Types == nil || p.Types.Scope().Lookup("Writer") == nil {
		t.Fatal("journal.Writer not in package scope; export-data importing failed")
	}
	if len(p.TypesInfo.Uses) == 0 {
		t.Fatal("TypesInfo.Uses empty; type checking did not run")
	}
}

// TestLoadMultiplePatterns loads two packages in one call.
func TestLoadMultiplePatterns(t *testing.T) {
	pkgs, err := Load("../../..", "./internal/journal", "./internal/dag")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
}

func TestLoadBadPattern(t *testing.T) {
	if _, err := Load("../../..", "./internal/does-not-exist"); err == nil {
		t.Fatal("expected an error for a nonexistent package")
	}
}
