// Package loader parses and type-checks packages for the analysis
// framework without golang.org/x/tools. It shells out to the Go
// toolchain once per Load — `go list -export -deps -json` — which
// compiles (or reuses from the build cache) export data for every
// dependency, then type-checks each target package from source with a
// gc-export-data importer. This is the same division of labour as the
// `go vet` driver: the toolchain owns dependency resolution and
// compilation; the analysis process owns only the target's syntax
// trees and types.
//
// Limitation (irrelevant to this repo): import paths are assumed
// canonical — vendored or gccgo-mapped paths are not rewritten.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// A Package is one parsed, type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
	// TypeErrors collects type-checker soft errors. Analysis results
	// over a package with type errors are best-effort.
	TypeErrors []error
}

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	Dir        string
	ImportPath string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// Load lists patterns in dir and returns every matched (non-dependency)
// package, parsed and type-checked. Test files are not loaded: the
// invariants the analyzers enforce bind non-test code only.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Export,Dir,GoFiles,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("loader: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := map[string]string{}
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("loader: decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			if p.Error != nil {
				return nil, fmt.Errorf("loader: %s: %s", p.ImportPath, p.Error.Err)
			}
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("loader: no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, t := range targets {
		p, err := check(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// check parses and type-checks one listed package.
func check(fset *token.FileSet, imp types.Importer, t listPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("loader: %v", err)
		}
		files = append(files, f)
	}
	p := &Package{ImportPath: t.ImportPath, Dir: t.Dir, Fset: fset, Files: files}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, _ := conf.Check(t.ImportPath, fset, files, info) // errors collected via conf.Error
	p.Types = pkg
	p.TypesInfo = info
	return p, nil
}
