package fabricpool_test

import (
	"testing"

	"repro/internal/analyze/analyzetest"
	"repro/internal/analyze/fabricpool"
)

func TestFabricPool(t *testing.T) {
	analyzetest.Run(t, "testdata", fabricpool.Analyzer, "src/a")
}

func TestFabricPoolSuppression(t *testing.T) {
	analyzetest.Run(t, "testdata", fabricpool.Analyzer, "src/sup")
}

// TestFabricPoolAllowlist checks the allow-listed package (the fabric
// stand-in) is exempt from the construction ban.
func TestFabricPoolAllowlist(t *testing.T) {
	f := fabricpool.Analyzer.Flags.Lookup("allow")
	old := f.Value.String()
	if err := f.Value.Set("repro/internal/analyze/fabricpool/testdata/src/allowed"); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Value.Set(old) }()
	analyzetest.Run(t, "testdata", fabricpool.Analyzer, "src/allowed")
}
