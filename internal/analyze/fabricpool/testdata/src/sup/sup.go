// Package sup exercises //nvolint:ignore handling for fabricpool.
package sup

import "repro/internal/condor"

//nvolint:ignore fabricpool fixture: standalone demo, no shared fabric to lease from
var demo, _ = condor.NewSimulator(condor.Pool{Name: "p", Slots: 1})

//nvolint:ignore fabricpool // want `directive requires a reason`
var reasonless, _ = condor.NewSimulator(condor.Pool{Name: "p", Slots: 1}) // want `condor\.NewSimulator outside the fabric mints execution capacity`
