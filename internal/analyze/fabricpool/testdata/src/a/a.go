// Package a exercises the fabricpool analyzer: constructing a Condor
// simulator directly is a finding; capacity obtained through an
// injected simulator is not.
package a

import "repro/internal/condor"

func bad() {
	sim, err := condor.NewSimulator(condor.Pool{Name: "usc", Slots: 4}) // want `condor\.NewSimulator outside the fabric mints execution capacity`
	_, _ = sim, err
}

func good(sim *condor.Simulator) *condor.Simulator {
	return sim // injected: the fabric minted it
}
