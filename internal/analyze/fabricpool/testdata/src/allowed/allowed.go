// Package allowed is loaded with -fabricpool.allow set to its own
// import path: the construction below must produce no finding (this is
// the stand-in for internal/fabric itself).
package allowed

import "repro/internal/condor"

func New() (*condor.Simulator, error) {
	return condor.NewSimulator(condor.Pool{Name: "usc", Slots: 4})
}
