// Package fabricpool forbids constructing Condor simulators outside the
// shared execution fabric. PR 6 made the fabric the single owner of the
// pool substrate: every workflow's simulator is stamped out by a fabric
// lease, so admission control, per-tenant quotas and fair-share
// accounting actually govern all execution. A stray condor.NewSimulator
// in request-handling code would mint capacity the scheduler never
// granted — jobs running outside every quota, invisible to /stats.
// Simulators must come from fabric.Lease.NewSimulator (or the package
// listed in -fabricpool.allow).
package fabricpool

import (
	"go/ast"

	"repro/internal/analyze"
)

// Analyzer is the fabricpool check.
var Analyzer = &analyze.Analyzer{
	Name: "fabricpool",
	Doc: "forbid condor.NewSimulator outside internal/fabric; all execution capacity is minted by fabric " +
		"leases so admission control, tenant quotas and fair-share accounting govern every workflow",
	Run: run,
}

func init() {
	Analyzer.Flags.String("allow", "repro/internal/fabric",
		"comma-separated import paths allowed to construct Condor simulators")
}

func run(pass *analyze.Pass) error {
	for _, path := range analyze.CommaList(pass.Analyzer.Flags.Lookup("allow").Value.String()) {
		if pass.Pkg != nil && pass.Pkg.Path() == path {
			return nil
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil || pass.IsTestFile(n.Pos()) {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := analyze.PkgFunc(pass.TypesInfo, call, "repro/internal/condor"); ok && name == "NewSimulator" {
				pass.Reportf(call.Pos(),
					"condor.NewSimulator outside the fabric mints execution capacity no quota governs; take a fabric lease and call lease.NewSimulator")
			}
			return true
		})
	}
	return nil
}
