// Package goleak is the flow-sensitive goroutine-hygiene analyzer: a
// `go` statement must launch work that is joined (WaitGroup, Future
// completion channel, result send/close) or that observes a
// cancellation signal (ctx.Done(), Lease.Revoked(), a fabric ticket or
// quit channel) on every path, so the fabric can always reclaim it.
//
// The paper's portal is a persistent shared service: a goroutine that
// neither finishes into a join nor watches for revocation is capacity
// leaked until process death, invisible to admission control. The
// analyzer resolves the spawned body (function literal or same-package
// declaration), builds its CFG, and runs a forward must-analysis — a
// path that reaches exit without ever touching an external join or
// cancellation object is a finding at the `go` statement. A body that
// never exits (server loop) must observe cancellation somewhere
// reachable. A secondary check flags sends on external channels used
// as blocking semaphore acquires with more work following and no
// select alternative: that is the one place a cancellable-looking
// goroutine can still wedge forever before reaching its cancellation
// point.
package goleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analyze"
	"repro/internal/analyze/cfg"
	"repro/internal/analyze/dataflow"
)

// Analyzer is the goleak check.
var Analyzer = &analyze.Analyzer{
	Name: "goleak",
	Doc: "require every goroutine launched outside the workpool to be joined (WaitGroup/Future/channel) or to " +
		"observe cancellation (ctx.Done(), Lease.Revoked(), quit channels) on every path: an unjoined, " +
		"uncancellable goroutine is fabric capacity leaked until process death",
	Run: run,
}

func run(pass *analyze.Pass) error {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if gs, ok := n.(*ast.GoStmt); ok {
				checkGo(pass, decls, gs)
			}
			return true
		})
	}
	return nil
}

func checkGo(pass *analyze.Pass, decls map[*types.Func]*ast.FuncDecl, gs *ast.GoStmt) {
	var body *ast.BlockStmt
	name := "goroutine"
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		if fn, ok := callee(pass, gs.Call).(*types.Func); ok {
			if fd := decls[fn]; fd != nil && fd.Body != nil {
				body, name = fd.Body, fn.Name()
			}
		}
	}
	if body == nil {
		pass.Reportf(gs.Pos(),
			"goroutine launched here runs a body nvolint cannot see (external or indirect callee), so join/cancellation cannot be proven; wrap it in a local func, route it through internal/workpool, or suppress with a reason")
		return
	}

	a := &goAnalysis{pass: pass, body: body}
	g := cfg.New(name, body)

	// Must-analysis: true iff every path to this point has touched a
	// join or cancellation object.
	res := dataflow.Forward(g, dataflow.Analysis[bool]{
		Entry: false,
		Join:  func(x, y bool) bool { return x && y },
		Equal: func(x, y bool) bool { return x == y },
		Transfer: func(b *cfg.Block, in bool) bool {
			out := in
			for _, n := range b.Nodes {
				c, o := a.classify(n, b.Kind)
				if c || o {
					out = true
				}
			}
			return out
		},
	})

	if res.Reached[g.Exit] {
		if !res.In[g.Exit] {
			pass.Reportf(gs.Pos(),
				"goroutine launched here is neither joined nor observes cancellation on every path; signal completion via WaitGroup/channel/close, select on ctx.Done()/Lease.Revoked(), or route the work through internal/workpool")
			return
		}
	} else {
		// The body never falls off the end: a server loop. It must be
		// able to see cancellation from inside the loop.
		observes := false
		for _, b := range g.Blocks {
			if !res.Reached[b] {
				continue
			}
			for _, n := range b.Nodes {
				if _, o := a.classify(n, b.Kind); o {
					observes = true
				}
			}
		}
		if !observes {
			pass.Reportf(gs.Pos(),
				"goroutine launched here loops forever without observing cancellation; add a ctx.Done()/Lease.Revoked()/quit case so the fabric can reclaim it")
			return
		}
	}

	// The goroutine is controlled — but a blocking semaphore-style send
	// with work still to do can wedge before reaching its control point.
	a.checkBlockingAcquire(g, res)
}

type goAnalysis struct {
	pass *analyze.Pass
	body *ast.BlockStmt
}

// external reports whether id resolves to an object declared outside
// the goroutine body — a captured variable, a parameter, or a package
// var: the only objects a spawner or supervisor can share.
func (a *goAnalysis) external(id *ast.Ident) bool {
	obj := a.pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = a.pass.TypesInfo.Defs[id]
	}
	if obj == nil || !obj.Pos().IsValid() {
		return false
	}
	return obj.Pos() < a.body.Pos() || obj.Pos() >= a.body.End()
}

// rootIdent peels selectors/indexes/derefs down to the base identifier
// of an expression ("p.sem" -> p), or nil for call results and
// literals.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func (a *goAnalysis) externalExpr(e ast.Expr) bool {
	id := rootIdent(e)
	return id != nil && a.external(id)
}

// classify decides whether node n signals completion (controls) or
// observes cancellation. kind is the CFG block kind — a range head
// over an external channel is a receive even though only the ranged
// expression appears as a node.
func (a *goAnalysis) classify(n ast.Node, kind string) (controls, observes bool) {
	intoLits := false
	if _, ok := n.(*ast.DeferStmt); ok {
		// `defer wg.Done()` and `defer func(){ close(done) }()` run on
		// every exit path from here on.
		intoLits = true
	}
	if kind == "range.head" {
		if e, ok := n.(ast.Expr); ok {
			if t := a.pass.TypesInfo.TypeOf(e); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan && a.externalExpr(e) {
					observes = true
				}
			}
		}
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return intoLits
		case *ast.SendStmt:
			if a.externalExpr(n.Chan) {
				controls = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && a.externalExpr(n.X) {
				observes = true
			}
		case *ast.CallExpr:
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				if _, isBuiltin := a.pass.TypesInfo.Uses[fun].(*types.Builtin); isBuiltin && fun.Name == "close" &&
					len(n.Args) == 1 && a.externalExpr(n.Args[0]) {
					controls = true
				}
			case *ast.SelectorExpr:
				if sel := a.pass.TypesInfo.Selections[fun]; sel != nil {
					if fn, ok := sel.Obj().(*types.Func); ok && a.externalExpr(fun.X) {
						if fn.Pkg() != nil && fn.Pkg().Path() == "sync" && fn.Name() == "Done" {
							controls = true // wg.Done()
						}
						if fn.Name() == "Done" || fn.Name() == "Revoked" {
							observes = true // ctx.Done(), lease.Revoked()
						}
					}
				}
			}
		case *ast.Ident:
			// Handing an external cancellation-capable object (anything
			// with a Done()/Revoked() channel method) to further work
			// counts as observation: the callee can see the signal.
			if a.external(n) {
				if obj, ok := a.pass.TypesInfo.Uses[n].(*types.Var); ok && hasCancelMethod(obj.Type()) {
					observes = true
				}
			}
		}
		return true
	})
	return controls, observes
}

// hasCancelMethod reports whether t (or *t) has a niladic Done or
// Revoked method returning a receivable channel — the structural
// shape of context.Context, fabric.Context and *fabric.Lease.
func hasCancelMethod(t types.Type) bool {
	for _, name := range []string{"Done", "Revoked"} {
		obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name)
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
			continue
		}
		if ch, ok := sig.Results().At(0).Type().Underlying().(*types.Chan); ok && ch.Dir() != types.SendOnly {
			return true
		}
	}
	return false
}

// checkBlockingAcquire flags sends on external channels that behave as
// unbounded semaphore acquires: not a select alternative, with real
// work still ahead. The goroutine passes the join check only because
// its control point lies beyond a block that nothing can interrupt.
func (a *goAnalysis) checkBlockingAcquire(g *cfg.Graph, res dataflow.Result[bool]) {
	for _, b := range g.Blocks {
		if !res.Reached[b] || b.Kind == "select.case" {
			continue
		}
		for i, n := range b.Nodes {
			send, ok := n.(*ast.SendStmt)
			if !ok || !a.externalExpr(send.Chan) {
				continue
			}
			if a.workFollows(g, b, i+1) {
				a.pass.Reportf(send.Arrow,
					"goroutine blocks here sending to %s with work still ahead and no select alternative; a full channel wedges it before any join/cancellation point — select the send against ctx.Done()/quit",
					types.ExprString(send.Chan))
			}
		}
	}
}

// workFollows reports whether any call is reachable after block b's
// node index from, ignoring defers (they run at exit regardless) and
// function literal interiors.
func (a *goAnalysis) workFollows(g *cfg.Graph, b *cfg.Block, from int) bool {
	seen := map[*cfg.Block]bool{b: true}
	var hasCall func(nodes []ast.Node) bool
	hasCall = func(nodes []ast.Node) bool {
		for _, n := range nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				continue
			}
			found := false
			ast.Inspect(n, func(n ast.Node) bool {
				switch n.(type) {
				case *ast.FuncLit:
					return false
				case *ast.CallExpr:
					found = true
				}
				return !found
			})
			if found {
				return true
			}
		}
		return false
	}
	if hasCall(b.Nodes[from:]) {
		return true
	}
	queue := append([]*cfg.Block{}, b.Succs...)
	for len(queue) > 0 {
		blk := queue[0]
		queue = queue[1:]
		if seen[blk] {
			continue
		}
		seen[blk] = true
		if hasCall(blk.Nodes) {
			return true
		}
		queue = append(queue, blk.Succs...)
	}
	return false
}

// callee resolves the called object of a go statement's call.
func callee(pass *analyze.Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		if sel := pass.TypesInfo.Selections[fun]; sel != nil {
			return sel.Obj()
		}
		return pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}
