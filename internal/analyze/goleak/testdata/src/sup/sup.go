// Package sup exercises //nvolint:ignore handling for goleak.
package sup

var stats = map[string]int{}

func flush(map[string]int) {}

func fireAndForget() {
	//nvolint:ignore goleak fixture: fire-and-forget stats flush, bounded by process exit
	go flush(stats)
}

func reasonless() {
	//nvolint:ignore goleak // want `nvolint:ignore directive requires a reason`
	go flush(stats) // want `neither joined nor observes cancellation`
}
