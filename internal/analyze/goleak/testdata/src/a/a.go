// Package a exercises the goleak analyzer: unjoined goroutines,
// server loops without a cancellation case, unanalyzable callees,
// blocking semaphore acquires, and the sanctioned join/cancel shapes.
package a

import (
	"context"
	"fmt"
	"sync"
)

type srv struct {
	sem  chan struct{}
	quit chan struct{}
	jobs chan int
}

type future struct {
	done chan struct{}
	err  error
}

func compute(n int) int { return n * n }

func handle(int) {}

func process(context.Context, int) {}

func orphan(n int) {
	go func() { // want `neither joined nor observes cancellation on every path`
		compute(n)
	}()
}

func serverLoopNoCancel(n int) {
	go func() { // want `loops forever without observing cancellation`
		for {
			compute(n)
		}
	}()
}

func unanalyzable() {
	go fmt.Println("boom") // want `runs a body nvolint cannot see`
}

func onePathMisses(ch chan int, cond bool) {
	go func() { // want `neither joined nor observes cancellation on every path`
		if cond {
			ch <- 1
			return
		}
		compute(2) // this path finishes silently
	}()
}

// blockingAcquire is the unbounded-semaphore shape: joined via close,
// but wedged forever if the semaphore never drains.
func blockingAcquire(s *srv, fn func() error) *future {
	f := &future{done: make(chan struct{})}
	go func() {
		s.sem <- struct{}{} // want `blocks here sending to s\.sem with work still ahead`
		defer func() { <-s.sem }()
		f.err = fn()
		close(f.done)
	}()
	return f
}

// selectAcquire is the fixed shape: the acquire can lose to the quit
// signal, so the goroutine is always reclaimable.
func selectAcquire(s *srv, fn func() error) *future {
	f := &future{done: make(chan struct{})}
	go func() {
		defer close(f.done)
		select {
		case s.sem <- struct{}{}:
		case <-s.quit:
			return
		}
		defer func() { <-s.sem }()
		f.err = fn()
	}()
	return f
}

// joined is the WaitGroup shape.
func joined(wg *sync.WaitGroup, job int) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		handle(job)
	}()
}

// namedWorker resolves a same-package declaration through the go call.
func namedWorker(wg *sync.WaitGroup, job int) {
	wg.Add(1)
	go worker(wg, job)
}

func worker(wg *sync.WaitGroup, job int) {
	defer wg.Done()
	handle(job)
}

// serve is a server loop with a quit case: reclaimable.
func (s *srv) run() {
	go s.serve()
}

func (s *srv) serve() {
	for {
		select {
		case <-s.quit:
			return
		case job := <-s.jobs:
			handle(job)
		}
	}
}

// drain ranges over an external channel: close() is the join signal.
func drain(jobs chan int) {
	go func() {
		for job := range jobs {
			handle(job)
		}
	}()
}

// ctxHandoff passes the cancellation capability into the work.
func ctxHandoff(ctx context.Context, job int) {
	go func() {
		process(ctx, job)
	}()
}

// resultSend finishes into a channel send with nothing after it.
func resultSend(out chan int, n int) {
	go func() {
		out <- compute(n)
	}()
}
