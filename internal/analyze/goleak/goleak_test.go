package goleak_test

import (
	"testing"

	"repro/internal/analyze/analyzetest"
	"repro/internal/analyze/goleak"
)

func TestGoLeak(t *testing.T) {
	analyzetest.Run(t, "testdata", goleak.Analyzer, "src/a")
}

func TestGoLeakSuppression(t *testing.T) {
	analyzetest.Run(t, "testdata", goleak.Analyzer, "src/sup")
}
