// Package sharedclient forbids ad-hoc HTTP clients outside the one
// pooled client package. PR 4 made connection reuse a measured
// property (TestPortalReusesKeepAliveConnections): every component
// reaches archives through internal/httpclient's shared transport, so
// keep-alives amortize across the portal's fan-out. A stray
// &http.Client{} — or http.DefaultClient, or the package-level
// http.Get/Post helpers that use it — silently reintroduces per-call
// connection churn and dodges the testbed's request router. Clients
// must come from internal/httpclient (or be injected through a
// config).
package sharedclient

import (
	"go/ast"
	"go/types"

	"repro/internal/analyze"
)

// defaultClientFuncs are the net/http package-level helpers that route
// through http.DefaultClient.
var defaultClientFuncs = map[string]bool{
	"Get": true, "Head": true, "Post": true, "PostForm": true,
}

// Analyzer is the sharedclient check.
var Analyzer = &analyze.Analyzer{
	Name: "sharedclient",
	Doc: "forbid &http.Client{} composite literals, http.DefaultClient, and the http.Get/Post/Head/PostForm " +
		"helpers outside internal/httpclient; all HTTP flows through the shared pooled client so keep-alive " +
		"reuse stays a provable property",
	Run: run,
}

func init() {
	Analyzer.Flags.String("allow", "repro/internal/httpclient",
		"comma-separated import paths allowed to construct HTTP clients")
}

func run(pass *analyze.Pass) error {
	for _, path := range analyze.CommaList(pass.Analyzer.Flags.Lookup("allow").Value.String()) {
		if pass.Pkg != nil && pass.Pkg.Path() == path {
			return nil
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil || pass.IsTestFile(n.Pos()) {
				return false
			}
			switch n := n.(type) {
			case *ast.CompositeLit:
				if tv, ok := pass.TypesInfo.Types[n]; ok && isHTTPClient(tv.Type) {
					pass.Reportf(n.Pos(),
						"ad-hoc http.Client literal bypasses the pooled shared client; use httpclient.Shared() or httpclient.New(transport)")
				}
			case *ast.SelectorExpr:
				if name, ok := analyze.PkgVar(pass.TypesInfo, n, "net/http"); ok && name == "DefaultClient" {
					pass.Reportf(n.Pos(),
						"http.DefaultClient has no pooled-transport tuning and dodges the testbed router; use httpclient.Shared()")
				}
			case *ast.CallExpr:
				if name, ok := analyze.PkgFunc(pass.TypesInfo, n, "net/http"); ok && defaultClientFuncs[name] {
					pass.Reportf(n.Pos(),
						"http.%s uses http.DefaultClient under the hood; call the method on httpclient.Shared() or an injected client",
						name)
				}
			}
			return true
		})
	}
	return nil
}

// isHTTPClient reports whether t is net/http.Client.
func isHTTPClient(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Client" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}
