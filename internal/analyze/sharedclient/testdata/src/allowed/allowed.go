// Package allowed is loaded with -sharedclient.allow set to its own
// import path: the construction below must produce no finding (this is
// the stand-in for internal/httpclient itself).
package allowed

import "net/http"

func New() *http.Client { return &http.Client{} }
