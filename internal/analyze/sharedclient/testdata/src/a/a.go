// Package a exercises the sharedclient analyzer: ad-hoc client
// construction and default-client helpers are findings; using an
// injected client is not.
package a

import "net/http"

func bad() {
	c := &http.Client{}         // want `ad-hoc http\.Client literal bypasses the pooled shared client`
	_ = c
	_ = http.DefaultClient      // want `http\.DefaultClient has no pooled-transport tuning`
	_, _ = http.Get("http://x") // want `http\.Get uses http\.DefaultClient under the hood`
}

func good(c *http.Client) (*http.Response, error) {
	return c.Get("http://x") // method on an injected client
}
