// Package sup exercises //nvolint:ignore handling for sharedclient.
package sup

import "net/http"

//nvolint:ignore sharedclient fixture: isolated probe client, never pooled
var probe = &http.Client{}

//nvolint:ignore sharedclient // want `directive requires a reason`
var reasonless = &http.Client{} // want `ad-hoc http\.Client literal bypasses the pooled shared client`
