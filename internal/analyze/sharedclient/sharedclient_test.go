package sharedclient_test

import (
	"testing"

	"repro/internal/analyze/analyzetest"
	"repro/internal/analyze/sharedclient"
)

func TestSharedClient(t *testing.T) {
	analyzetest.Run(t, "testdata", sharedclient.Analyzer, "src/a")
}

func TestSharedClientSuppression(t *testing.T) {
	analyzetest.Run(t, "testdata", sharedclient.Analyzer, "src/sup")
}

// TestSharedClientAllowlist checks the allow-listed package (the
// httpclient stand-in) is exempt from the construction ban.
func TestSharedClientAllowlist(t *testing.T) {
	f := sharedclient.Analyzer.Flags.Lookup("allow")
	old := f.Value.String()
	if err := f.Value.Set("repro/internal/analyze/sharedclient/testdata/src/allowed"); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Value.Set(old) }()
	analyzetest.Run(t, "testdata", sharedclient.Analyzer, "src/allowed")
}
