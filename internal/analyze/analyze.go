// Package analyze is the repo's static-analysis framework: a small,
// self-contained reimplementation of the slice of
// golang.org/x/tools/go/analysis that the nvolint suite needs. The
// build environment is offline (no module proxy), so the framework
// depends only on the standard library: analyzers are functions over a
// parsed, type-checked package; the loader (internal/analyze/loader)
// obtains type information from `go list -export` build-cache export
// data, and the driver (internal/analyze/driver) runs the fleet both
// standalone and under the `go vet -vettool` protocol.
//
// The suite exists because the repo's headline guarantee —
// byte-identical VOTables across worker widths, fault schedules and
// kill/resume points — rests on invariants (model clock only, seeded
// randomness, ordered map iteration on output paths, one pooled HTTP
// client, checked errors on journal/gridftp writes) that dynamic sweeps
// alone cannot prove. Each analyzer turns one such invariant into a
// compile-time property.
package analyze

import (
	"flag"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// An Analyzer statically checks one invariant over one package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //nvolint:ignore directives. It must be a valid identifier.
	Name string
	// Doc is the one-paragraph description printed by `nvolint help`:
	// what the analyzer enforces and why the invariant matters.
	Doc string
	// Flags holds analyzer-specific options. The driver exposes each
	// flag F as -<name>.<F> on the command line.
	Flags flag.FlagSet
	// Run performs the check, reporting findings through the pass.
	Run func(*Pass) error
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostics returns the findings reported so far.
func (p *Pass) Diagnostics() []Diagnostic { return p.diags }

// IsTestFile reports whether pos lies in a _test.go file. The repo's
// invariants bind library and simulation code, not tests: tests may
// sleep, time out and use ad-hoc clients freely.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// PkgFunc resolves call to a package-level function: it returns the
// function name when call invokes a top-level function (not a method)
// of the package with import path pkgPath. Resolution goes through the
// type checker's Uses map, so aliased imports and shadowed identifiers
// are handled correctly.
func PkgFunc(info *types.Info, call *ast.CallExpr, pkgPath string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return "", false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return "", false
	}
	return fn.Name(), true
}

// PkgVar resolves expr to a package-level variable: it returns the
// variable name when expr denotes a top-level var of pkgPath.
func PkgVar(info *types.Info, expr ast.Expr, pkgPath string) (string, bool) {
	var id *ast.Ident
	switch e := expr.(type) {
	case *ast.SelectorExpr:
		id = e.Sel
	case *ast.Ident:
		id = e
	default:
		return "", false
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Pkg().Path() != pkgPath || v.IsField() {
		return "", false
	}
	return v.Name(), true
}

// IgnorePrefix is the suppression directive comment prefix. A directive
//
//	//nvolint:ignore <analyzer>[,<analyzer>...] <reason>
//
// suppresses diagnostics from the named analyzers on the directive's
// own line (end-of-line form) or on the line directly below it
// (standalone form). The reason is mandatory: a directive without one
// suppresses nothing, and is itself diagnosed, so every silenced
// finding carries a written justification into the tree.
const IgnorePrefix = "nvolint:ignore"

// directive is one parsed //nvolint:ignore comment.
type directive struct {
	pos       token.Pos
	file      string
	line      int
	analyzers map[string]bool
	reason    string
	untilPR   int // from an `until=PR<N>` token leading the reason; 0 = no expiry
}

// A Directive is one //nvolint:ignore comment as exposed to tooling
// (the driver's stale-suppression report).
type Directive struct {
	Pos       token.Pos
	File      string
	Line      int
	Analyzers []string
	Reason    string
	// UntilPR is the PR number after which the suppression should be
	// re-audited, parsed from an `until=PR<N>` token at the start of
	// the reason; 0 means the directive never expires.
	UntilPR int
}

// Directives returns every suppression directive in files, in source
// order.
func Directives(fset *token.FileSet, files []*ast.File) []Directive {
	var out []Directive
	for _, d := range parseDirectives(fset, files) {
		names := make([]string, 0, len(d.analyzers))
		for name := range d.analyzers {
			names = append(names, name)
		}
		sort.Strings(names)
		out = append(out, Directive{
			Pos:       d.pos,
			File:      d.file,
			Line:      d.line,
			Analyzers: names,
			Reason:    d.reason,
			UntilPR:   d.untilPR,
		})
	}
	return out
}

// parseDirectives extracts every suppression directive from files.
func parseDirectives(fset *token.FileSet, files []*ast.File) []directive {
	var ds []directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // block comments are not directives
				}
				text, ok = strings.CutPrefix(strings.TrimLeft(text, " \t"), IgnorePrefix)
				if !ok {
					continue
				}
				// Fixtures append `// want ...` expectations to directive
				// comments under test; the clause is not part of the reason.
				if i := strings.Index(text, "// want "); i >= 0 {
					text = text[:i]
				}
				pos := fset.Position(c.Pos())
				d := directive{pos: c.Pos(), file: pos.Filename, line: pos.Line, analyzers: map[string]bool{}}
				fields := strings.Fields(text)
				if len(fields) > 0 {
					for _, name := range strings.Split(fields[0], ",") {
						d.analyzers[name] = true
					}
					d.reason = strings.Join(fields[1:], " ")
					// An optional `until=PR<N>` token opening the reason
					// marks the suppression for expiry review.
					if len(fields) > 1 {
						if n, ok := strings.CutPrefix(fields[1], "until=PR"); ok {
							if pr, err := strconv.Atoi(n); err == nil && pr > 0 {
								d.untilPR = pr
							}
						}
					}
				}
				ds = append(ds, d)
			}
		}
	}
	return ds
}

// Suppress applies //nvolint:ignore directives to diags: findings
// covered by a well-formed directive (matching analyzer, non-empty
// reason) are dropped; malformed directives — no analyzer name or no
// reason — are converted into findings of their own, attributed to the
// pseudo-analyzer "nvolint". The returned slice is sorted by position.
func Suppress(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	ds := parseDirectives(fset, files)
	code := codeLines(fset, files)
	covered := func(d Diagnostic) bool {
		p := fset.Position(d.Pos)
		for _, dir := range ds {
			if dir.reason == "" || !dir.analyzers[d.Analyzer] || dir.file != p.Filename {
				continue
			}
			if dir.line == p.Line {
				return true
			}
			// Only a standalone directive (no code on its own line)
			// reaches down to the next line; an end-of-line directive
			// covers exactly the line it annotates.
			if dir.line+1 == p.Line && !code[dir.file][dir.line] {
				return true
			}
		}
		return false
	}
	var kept []Diagnostic
	for _, d := range diags {
		if !covered(d) {
			kept = append(kept, d)
		}
	}
	for _, dir := range ds {
		switch {
		case len(dir.analyzers) == 0:
			kept = append(kept, Diagnostic{
				Analyzer: "nvolint",
				Pos:      dir.pos,
				Message:  "nvolint:ignore directive names no analyzer",
			})
		case dir.reason == "":
			kept = append(kept, Diagnostic{
				Analyzer: "nvolint",
				Pos:      dir.pos,
				Message:  "nvolint:ignore directive requires a reason: //nvolint:ignore <analyzer> <why this is safe>",
			})
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].Pos != kept[j].Pos {
			return kept[i].Pos < kept[j].Pos
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept
}

// codeLines records, per file, the lines on which some non-comment
// syntax node begins or ends — the test distinguishing an end-of-line
// directive from a standalone one.
func codeLines(fset *token.FileSet, files []*ast.File) map[string]map[int]bool {
	lines := map[string]map[int]bool{}
	for _, f := range files {
		name := fset.Position(f.Pos()).Filename
		m := lines[name]
		if m == nil {
			m = map[int]bool{}
			lines[name] = m
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case nil, *ast.File, *ast.Comment, *ast.CommentGroup:
				return n != nil
			}
			m[fset.Position(n.Pos()).Line] = true
			m[fset.Position(n.End()).Line] = true
			return true
		})
	}
	return lines
}

// CommaList splits a comma-separated flag value into its non-empty
// elements (the format of every path-list analyzer flag).
func CommaList(s string) []string {
	var out []string
	for _, e := range strings.Split(s, ",") {
		if e = strings.TrimSpace(e); e != "" {
			out = append(out, e)
		}
	}
	return out
}
