// Package suite assembles the nvolint analyzer fleet — the eleven
// checks that together make the repo's determinism, clock,
// resource-hygiene, hot-path and concurrency invariants a compile-time
// property:
//
//	noclock      no wall clock in library/simulation code
//	seededrand   no process-global math/rand
//	mapiter      no randomized map order feeding output or journals
//	sharedclient no HTTP client construction outside internal/httpclient
//	errclose     no dropped Close/Flush/Sync errors on write paths
//	fabricpool   no Condor simulator construction outside internal/fabric
//	hotalloc     no per-request heap allocation in //nvo:hotpath functions
//	lockpath     every mutex released on every path; no lock held across chan ops/I/O
//	goleak       every goroutine joined or observing cancellation on every path
//	selectrevoke blocking waits in fabric/dagman/webservice carry a revocation case
//	errpath      no error value reaching a return unchecked on some path
//
// The last four are flow-sensitive: they run on a per-function CFG
// (internal/analyze/cfg) under a forward fixpoint solver
// (internal/analyze/dataflow) instead of a per-node AST walk.
//
// cmd/nvolint runs this fleet standalone and as a `go vet -vettool`;
// the suite test runs it over the whole tree and fails on any finding,
// so `go test ./...` alone proves the tree lint-clean.
package suite

import (
	"repro/internal/analyze"
	"repro/internal/analyze/errclose"
	"repro/internal/analyze/errpath"
	"repro/internal/analyze/fabricpool"
	"repro/internal/analyze/goleak"
	"repro/internal/analyze/hotalloc"
	"repro/internal/analyze/lockpath"
	"repro/internal/analyze/mapiter"
	"repro/internal/analyze/noclock"
	"repro/internal/analyze/seededrand"
	"repro/internal/analyze/selectrevoke"
	"repro/internal/analyze/sharedclient"
)

// Analyzers returns the full nvolint fleet in reporting order.
func Analyzers() []*analyze.Analyzer {
	return []*analyze.Analyzer{
		noclock.Analyzer,
		seededrand.Analyzer,
		mapiter.Analyzer,
		sharedclient.Analyzer,
		errclose.Analyzer,
		fabricpool.Analyzer,
		hotalloc.Analyzer,
		lockpath.Analyzer,
		goleak.Analyzer,
		selectrevoke.Analyzer,
		errpath.Analyzer,
	}
}
