// Package driver runs an analyzer fleet. It supports two entry modes,
// dispatched by Main the way x/tools' multichecker+unitchecker pair
// does:
//
//   - standalone: `nvolint [flags] [packages]` loads the patterns via
//     internal/analyze/loader and prints findings;
//   - vettool: `go vet -vettool=$(which nvolint) ./...` — cmd/go probes
//     the binary with -V=full, optionally asks for -flags, then invokes
//     it once per package with a vet.cfg JSON file (see vet.go).
//
// Exit codes follow go vet convention: 0 clean, 1 usage/driver error,
// 2 findings reported.
package driver

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/analyze"
	"repro/internal/analyze/loader"
)

// Main is the entry point for cmd/nvolint. It returns the process exit
// code.
func Main(analyzers []*analyze.Analyzer) int {
	fs := flag.NewFlagSet("nvolint", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: nvolint [flags] [package patterns]\n")
		fmt.Fprintf(os.Stderr, "       go vet -vettool=$(command -v nvolint) [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "\n  %s\n    %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(os.Stderr, "\nFlags:\n")
		fs.PrintDefaults()
	}
	version := fs.Bool("V", false, "print version and exit (cmd/go vettool probe)")
	printFlags := fs.Bool("flags", false, "print analyzer flags as JSON and exit (cmd/go vettool probe)")
	verbose := fs.Bool("v", false, "print per-analyzer cumulative wall time after the run")
	budget := fs.Duration("budget", 0, "fail (exit 1) if total analysis wall time exceeds this duration (0 = unbounded)")
	pr := fs.Int("pr", 0, "current PR number; report (without failing) //nvolint:ignore directives whose until=PR<N> note has expired")
	registerAnalyzerFlags(fs, analyzers)

	// cmd/go probes with -V=full; tolerate the =full value on our bool.
	args := os.Args[1:]
	for i, a := range args {
		if a == "-V=full" || a == "--V=full" {
			args[i] = "-V"
		}
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}
	switch {
	case *version:
		printVersion()
		return 0
	case *printFlags:
		return emitFlagDefs(analyzers)
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return RunVet(rest[0], analyzers)
	}
	return RunStandaloneOpts(".", rest, analyzers, os.Stderr, Options{
		Verbose: *verbose,
		Budget:  *budget,
		PR:      *pr,
	})
}

// Options are the standalone driver's reporting and gating knobs.
type Options struct {
	// Verbose prints per-analyzer cumulative wall time after the run.
	Verbose bool
	// Budget, when positive, turns the run into a latency gate: if the
	// fleet's total wall time exceeds it, the driver exits 1 even on a
	// finding-free tree, so a slow new pass cannot silently blow up
	// verify latency.
	Budget time.Duration
	// PR, when positive, reports suppressions whose `until=PR<N>` note
	// has expired (N <= PR). Stale notes never change the exit code:
	// they are a re-audit prompt, not a failure.
	PR int
}

// registerAnalyzerFlags exposes each analyzer flag F as -<name>.<F>.
func registerAnalyzerFlags(fs *flag.FlagSet, analyzers []*analyze.Analyzer) {
	for _, a := range analyzers {
		a.Flags.VisitAll(func(f *flag.Flag) {
			fs.Var(f.Value, a.Name+"."+f.Name, f.Usage)
		})
	}
}

// printVersion emits the toolID line cmd/go parses: "<name> version
// <id>". The id hashes the binary itself so editing an analyzer
// invalidates go vet's action cache.
func printVersion() {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("%x", h.Sum(nil)[:12])
			}
			_ = f.Close() // read-only binary; nothing buffered to lose
		}
	}
	fmt.Printf("nvolint version nvolint-%s\n", id)
}

// emitFlagDefs answers cmd/go's -flags probe with the JSON schema it
// expects from a vettool.
func emitFlagDefs(analyzers []*analyze.Analyzer) int {
	type flagDef struct {
		Name  string
		Bool  bool
		Usage string
	}
	defs := []flagDef{}
	for _, a := range analyzers {
		a.Flags.VisitAll(func(f *flag.Flag) {
			b, ok := f.Value.(interface{ IsBoolFlag() bool })
			defs = append(defs, flagDef{
				Name:  a.Name + "." + f.Name,
				Bool:  ok && b.IsBoolFlag(),
				Usage: f.Usage,
			})
		})
	}
	data, err := json.Marshal(defs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Println(string(data))
	return 0
}

// RunStandalone loads patterns rooted at dir, runs the fleet over every
// matched package, and prints suppressed-filtered findings to w. It
// returns the process exit code.
func RunStandalone(dir string, patterns []string, analyzers []*analyze.Analyzer, w io.Writer) int {
	return RunStandaloneOpts(dir, patterns, analyzers, w, Options{})
}

// RunStandaloneOpts is RunStandalone with timing, budget and
// stale-suppression reporting.
func RunStandaloneOpts(dir string, patterns []string, analyzers []*analyze.Analyzer, w io.Writer, opts Options) int {
	//nvolint:ignore noclock lint tooling measures its own wall time; never on a replayed path
	start := time.Now()
	res := AnalyzeOpts(dir, patterns, analyzers, opts)
	//nvolint:ignore noclock lint tooling measures its own wall time; never on a replayed path
	elapsed := time.Since(start)
	for _, err := range res.Errs {
		fmt.Fprintln(w, err)
	}
	if len(res.Errs) > 0 {
		return 1
	}
	for _, s := range res.Stale {
		fmt.Fprintf(w, "nvolint: stale suppression: %s\n", s)
	}
	if opts.Verbose {
		for _, at := range res.Times {
			fmt.Fprintf(w, "nvolint: %-14s %8.1fms\n", at.Analyzer, float64(at.Elapsed.Microseconds())/1000)
		}
		fmt.Fprintf(w, "nvolint: %-14s %8.1fms (load + analyze)\n", "total", float64(elapsed.Microseconds())/1000)
	}
	for _, d := range res.Findings {
		fmt.Fprintln(w, d)
	}
	if len(res.Findings) > 0 {
		return 2
	}
	if opts.Budget > 0 && elapsed > opts.Budget {
		fmt.Fprintf(w, "nvolint: suite took %s, over the %s budget; speed up the slow analyzer or raise the budget deliberately\n",
			elapsed.Round(time.Millisecond), opts.Budget)
		return 1
	}
	return 0
}

// A Finding is one formatted, position-resolved diagnostic.
type Finding struct {
	Position string // file:line:col
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Position, f.Analyzer, f.Message)
}

// AnalyzerTime is one analyzer's cumulative wall time across every
// analyzed package.
type AnalyzerTime struct {
	Analyzer string
	Elapsed  time.Duration
}

// Result is everything one standalone analysis run produced.
type Result struct {
	Findings []Finding
	Errs     []error
	// Times holds per-analyzer cumulative wall time, in fleet order.
	Times []AnalyzerTime
	// Stale lists suppressions whose until=PR<N> note expired (only
	// populated when Options.PR > 0).
	Stale []string
}

// Analyze runs the fleet over the packages matched by patterns under
// dir and returns sorted findings. Type-check errors in target
// packages are returned as errs: analysis over a broken tree would
// under-report, which must read as failure, not cleanliness.
func Analyze(dir string, patterns []string, analyzers []*analyze.Analyzer) (findings []Finding, errs []error) {
	res := AnalyzeOpts(dir, patterns, analyzers, Options{})
	return res.Findings, res.Errs
}

// AnalyzeOpts is Analyze plus per-analyzer timing and the
// stale-suppression scan.
func AnalyzeOpts(dir string, patterns []string, analyzers []*analyze.Analyzer, opts Options) Result {
	var res Result
	pkgs, err := loader.Load(dir, patterns...)
	if err != nil {
		res.Errs = []error{err}
		return res
	}
	elapsed := make([]time.Duration, len(analyzers))
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			res.Errs = append(res.Errs, fmt.Errorf("%s: %v", pkg.ImportPath, terr))
		}
		var diags []analyze.Diagnostic
		for i, a := range analyzers {
			pass := &analyze.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			//nvolint:ignore noclock lint tooling measures its own wall time; never on a replayed path
			start := time.Now()
			err := a.Run(pass)
			//nvolint:ignore noclock lint tooling measures its own wall time; never on a replayed path
			elapsed[i] += time.Since(start)
			if err != nil {
				res.Errs = append(res.Errs, fmt.Errorf("%s: analyzer %s: %v", pkg.ImportPath, a.Name, err))
				continue
			}
			diags = append(diags, pass.Diagnostics()...)
		}
		for _, d := range analyze.Suppress(pkg.Fset, pkg.Files, diags) {
			res.Findings = append(res.Findings, Finding{
				Position: pkg.Fset.Position(d.Pos).String(),
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		if opts.PR > 0 {
			for _, dir := range analyze.Directives(pkg.Fset, pkg.Files) {
				if dir.UntilPR > 0 && dir.UntilPR <= opts.PR {
					res.Stale = append(res.Stale, fmt.Sprintf(
						"%s:%d: suppression of %s expired at PR %d (now PR %d), re-audit: %s",
						dir.File, dir.Line, strings.Join(dir.Analyzers, ","), dir.UntilPR, opts.PR, dir.Reason))
				}
			}
		}
	}
	for i, a := range analyzers {
		res.Times = append(res.Times, AnalyzerTime{Analyzer: a.Name, Elapsed: elapsed[i]})
	}
	sort.Slice(res.Findings, func(i, j int) bool {
		if res.Findings[i].Position != res.Findings[j].Position {
			return res.Findings[i].Position < res.Findings[j].Position
		}
		return res.Findings[i].Analyzer < res.Findings[j].Analyzer
	})
	sort.Strings(res.Stale)
	return res
}
