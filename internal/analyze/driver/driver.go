// Package driver runs an analyzer fleet. It supports two entry modes,
// dispatched by Main the way x/tools' multichecker+unitchecker pair
// does:
//
//   - standalone: `nvolint [flags] [packages]` loads the patterns via
//     internal/analyze/loader and prints findings;
//   - vettool: `go vet -vettool=$(which nvolint) ./...` — cmd/go probes
//     the binary with -V=full, optionally asks for -flags, then invokes
//     it once per package with a vet.cfg JSON file (see vet.go).
//
// Exit codes follow go vet convention: 0 clean, 1 usage/driver error,
// 2 findings reported.
package driver

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/analyze"
	"repro/internal/analyze/loader"
)

// Main is the entry point for cmd/nvolint. It returns the process exit
// code.
func Main(analyzers []*analyze.Analyzer) int {
	fs := flag.NewFlagSet("nvolint", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: nvolint [flags] [package patterns]\n")
		fmt.Fprintf(os.Stderr, "       go vet -vettool=$(command -v nvolint) [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "\n  %s\n    %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(os.Stderr, "\nFlags:\n")
		fs.PrintDefaults()
	}
	version := fs.Bool("V", false, "print version and exit (cmd/go vettool probe)")
	printFlags := fs.Bool("flags", false, "print analyzer flags as JSON and exit (cmd/go vettool probe)")
	registerAnalyzerFlags(fs, analyzers)

	// cmd/go probes with -V=full; tolerate the =full value on our bool.
	args := os.Args[1:]
	for i, a := range args {
		if a == "-V=full" || a == "--V=full" {
			args[i] = "-V"
		}
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}
	switch {
	case *version:
		printVersion()
		return 0
	case *printFlags:
		return emitFlagDefs(analyzers)
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return RunVet(rest[0], analyzers)
	}
	return RunStandalone(".", rest, analyzers, os.Stderr)
}

// registerAnalyzerFlags exposes each analyzer flag F as -<name>.<F>.
func registerAnalyzerFlags(fs *flag.FlagSet, analyzers []*analyze.Analyzer) {
	for _, a := range analyzers {
		a.Flags.VisitAll(func(f *flag.Flag) {
			fs.Var(f.Value, a.Name+"."+f.Name, f.Usage)
		})
	}
}

// printVersion emits the toolID line cmd/go parses: "<name> version
// <id>". The id hashes the binary itself so editing an analyzer
// invalidates go vet's action cache.
func printVersion() {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("%x", h.Sum(nil)[:12])
			}
			_ = f.Close() // read-only binary; nothing buffered to lose
		}
	}
	fmt.Printf("nvolint version nvolint-%s\n", id)
}

// emitFlagDefs answers cmd/go's -flags probe with the JSON schema it
// expects from a vettool.
func emitFlagDefs(analyzers []*analyze.Analyzer) int {
	type flagDef struct {
		Name  string
		Bool  bool
		Usage string
	}
	defs := []flagDef{}
	for _, a := range analyzers {
		a.Flags.VisitAll(func(f *flag.Flag) {
			b, ok := f.Value.(interface{ IsBoolFlag() bool })
			defs = append(defs, flagDef{
				Name:  a.Name + "." + f.Name,
				Bool:  ok && b.IsBoolFlag(),
				Usage: f.Usage,
			})
		})
	}
	data, err := json.Marshal(defs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Println(string(data))
	return 0
}

// RunStandalone loads patterns rooted at dir, runs the fleet over every
// matched package, and prints suppressed-filtered findings to w. It
// returns the process exit code.
func RunStandalone(dir string, patterns []string, analyzers []*analyze.Analyzer, w io.Writer) int {
	diags, errs := Analyze(dir, patterns, analyzers)
	for _, err := range errs {
		fmt.Fprintln(w, err)
	}
	if len(errs) > 0 {
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(w, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// A Finding is one formatted, position-resolved diagnostic.
type Finding struct {
	Position string // file:line:col
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Position, f.Analyzer, f.Message)
}

// Analyze runs the fleet over the packages matched by patterns under
// dir and returns sorted findings. Type-check errors in target
// packages are returned as errs: analysis over a broken tree would
// under-report, which must read as failure, not cleanliness.
func Analyze(dir string, patterns []string, analyzers []*analyze.Analyzer) (findings []Finding, errs []error) {
	pkgs, err := loader.Load(dir, patterns...)
	if err != nil {
		return nil, []error{err}
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			errs = append(errs, fmt.Errorf("%s: %v", pkg.ImportPath, terr))
		}
		var diags []analyze.Diagnostic
		for _, a := range analyzers {
			pass := &analyze.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			if err := a.Run(pass); err != nil {
				errs = append(errs, fmt.Errorf("%s: analyzer %s: %v", pkg.ImportPath, a.Name, err))
				continue
			}
			diags = append(diags, pass.Diagnostics()...)
		}
		for _, d := range analyze.Suppress(pkg.Fset, pkg.Files, diags) {
			findings = append(findings, Finding{
				Position: pkg.Fset.Position(d.Pos).String(),
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].Position != findings[j].Position {
			return findings[i].Position < findings[j].Position
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, errs
}
