package driver_test

import (
	"bytes"
	"encoding/json"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/analyze/driver"
	"repro/internal/analyze/suite"
)

// TestTreeClean runs the full fleet over the repository: the tree must
// stay free of findings — every legitimate wall-clock or close-discard
// boundary carries a reasoned //nvolint:ignore, and everything else has
// been fixed.
func TestTreeClean(t *testing.T) {
	findings, errs := driver.Analyze("../../..", []string{"./..."}, suite.Analyzers())
	for _, err := range errs {
		t.Errorf("analysis error: %v", err)
	}
	for _, f := range findings {
		t.Errorf("finding: %s", f)
	}
}

// buildNvolint compiles the cmd/nvolint binary into a temp dir.
func buildNvolint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "nvolint")
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/nvolint")
	cmd.Dir = "../../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building nvolint: %v\n%s", err, out)
	}
	return bin
}

// TestVettoolProtocol checks the handshake go vet performs before
// trusting a -vettool: the -V=full version line and the -flags JSON.
func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildNvolint(t)

	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("nvolint -V=full: %v", err)
	}
	f := strings.Fields(strings.TrimSpace(string(out)))
	// cmd/go requires f[1]=="version" and f[2] != "devel" to accept the
	// whole line as the tool's cache ID.
	if len(f) != 3 || f[1] != "version" || f[2] == "devel" {
		t.Fatalf("version line %q does not satisfy the vettool contract", out)
	}

	out, err = exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatalf("nvolint -flags: %v", err)
	}
	var defs []struct {
		Name  string
		Bool  bool
		Usage string
	}
	if err := json.Unmarshal(out, &defs); err != nil {
		t.Fatalf("-flags output is not the expected JSON: %v\n%s", err, out)
	}
}

// TestGoVetVettool runs the real thing: go vet -vettool over the whole
// repository must exit clean.
func TestGoVetVettool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and type-checks the tree twice")
	}
	bin := buildNvolint(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = "../../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool: %v\n%s", err, out)
	}
}

// TestAnalyzeOptsTimesAndStale checks the instrumented entry point: one
// cumulative wall-time entry per analyzer in fleet order, and the
// expired until=PR1 suppression in the stale fixture reported — without
// unsuppressing the finding it covers.
func TestAnalyzeOptsTimesAndStale(t *testing.T) {
	analyzers := suite.Analyzers()
	res := driver.AnalyzeOpts("testdata", []string{"./src/stale"}, analyzers, driver.Options{PR: 5})
	for _, err := range res.Errs {
		t.Fatalf("analysis error: %v", err)
	}
	for _, f := range res.Findings {
		t.Errorf("finding leaked through the suppression: %s", f)
	}
	if len(res.Times) != len(analyzers) {
		t.Fatalf("Times has %d entries, want one per analyzer (%d)", len(res.Times), len(analyzers))
	}
	for i, at := range res.Times {
		if at.Analyzer != analyzers[i].Name {
			t.Errorf("Times[%d] = %q, want fleet order (%q)", i, at.Analyzer, analyzers[i].Name)
		}
		if at.Elapsed < 0 {
			t.Errorf("Times[%d] negative elapsed %v", i, at.Elapsed)
		}
	}
	if len(res.Stale) != 1 || !strings.Contains(res.Stale[0], "expired at PR 1 (now PR 5)") {
		t.Fatalf("Stale = %q, want the until=PR1 directive reported", res.Stale)
	}
	// Without -pr the scan is off entirely.
	res = driver.AnalyzeOpts("testdata", []string{"./src/stale"}, analyzers, driver.Options{})
	if len(res.Stale) != 0 {
		t.Fatalf("Stale = %q without Options.PR, want none", res.Stale)
	}
}

// TestRunStandaloneVerboseAndBudget drives the printing layer: verbose
// mode emits per-analyzer timing lines, stale suppressions are reported
// without changing the exit code, and an exceeded budget turns an
// otherwise-clean run into exit 1.
func TestRunStandaloneVerboseAndBudget(t *testing.T) {
	var buf bytes.Buffer
	code := driver.RunStandaloneOpts("testdata", []string{"./src/stale"}, suite.Analyzers(), &buf,
		driver.Options{Verbose: true, Budget: time.Nanosecond, PR: 2})
	out := buf.String()
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (budget exceeded)\n%s", code, out)
	}
	if !strings.Contains(out, "over the 1ns budget") {
		t.Errorf("missing budget diagnostic:\n%s", out)
	}
	if !strings.Contains(out, "noclock") || !strings.Contains(out, "(load + analyze)") {
		t.Errorf("missing verbose timing lines:\n%s", out)
	}
	if !strings.Contains(out, "nvolint: stale suppression:") {
		t.Errorf("missing stale-suppression report:\n%s", out)
	}

	// A generous budget over the same clean fixture exits 0: the stale
	// report alone never fails the run.
	buf.Reset()
	code = driver.RunStandaloneOpts("testdata", []string{"./src/stale"}, suite.Analyzers(), &buf,
		driver.Options{Budget: 10 * time.Minute, PR: 2})
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (within budget, stale is report-only)\n%s", code, buf.String())
	}
}

// TestStandaloneFindingsExitCode runs the binary over a fixture package
// that contains known findings: exit code 2, diagnostics on stderr.
func TestStandaloneFindingsExitCode(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildNvolint(t)
	cmd := exec.Command(bin, "./src/a")
	cmd.Dir = "../noclock/testdata"
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("exit = %v (stderr %q), want exit code 2", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "[noclock]") {
		t.Fatalf("stderr lacks noclock findings:\n%s", stderr.String())
	}
}
