// Package stale carries a suppression whose until=PR note has expired,
// exercising the driver's -pr stale-suppression report: the finding
// stays suppressed (stale notes are a re-audit prompt, not a failure),
// but `nvolint -pr <N>` for N >= 1 must surface the directive.
package stale

import "time"

// Clock returns the wall time.
//
//nvolint:ignore noclock until=PR1 placeholder until the model clock lands
func Clock() time.Time { return time.Now() }
