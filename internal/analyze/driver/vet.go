// vet.go implements the `go vet -vettool` side of the driver: cmd/go
// hands the tool a JSON config naming one package's sources and the
// export-data files of its dependencies; the tool type-checks, runs
// the fleet, writes the (empty — the suite is factless) vetx output
// cmd/go caches, and reports findings on stderr with a nonzero exit.
package driver

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"repro/internal/analyze"
)

// vetConfig mirrors cmd/go/internal/work.vetConfig.
type vetConfig struct {
	ID         string
	Compiler   string
	Dir        string
	ImportPath string
	GoFiles    []string

	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	VetxOnly    bool
	VetxOutput  string
	GoVersion   string

	SucceedOnTypecheckFailure bool
}

// RunVet analyzes the single package described by the vet config file
// at cfgPath and returns the process exit code.
func RunVet(cfgPath string, analyzers []*analyze.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nvolint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "nvolint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The vetx file is how cmd/go caches and threads inter-package
	// analysis facts. The suite is factless, but the file must exist
	// for the cache entry to form.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("nvolint: no facts\n"), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "nvolint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0 // dependency pass: facts only, no diagnostics wanted
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "nvolint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	conf := types.Config{Importer: imp}
	if cfg.GoVersion != "" {
		conf.GoVersion = cfg.GoVersion
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "nvolint: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	var diags []analyze.Diagnostic
	for _, a := range analyzers {
		pass := &analyze.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		if err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "nvolint: analyzer %s: %v\n", a.Name, err)
			return 1
		}
		diags = append(diags, pass.Diagnostics()...)
	}
	kept := analyze.Suppress(fset, files, diags)
	for _, d := range kept {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(kept) > 0 {
		return 2
	}
	return 0
}
