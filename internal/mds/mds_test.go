package mds

import (
	"sync"
	"testing"
)

func sample() *Service {
	s := New()
	_ = s.Register(SiteInfo{Name: "isi", Slots: 10, GridFTPBase: "gridftp://isi/data"})
	_ = s.Register(SiteInfo{Name: "wisc", Slots: 20})
	_ = s.Register(SiteInfo{Name: "fnal", Slots: 5, Speed: 2})
	return s
}

func TestRegisterLookup(t *testing.T) {
	s := sample()
	info, err := s.Lookup("isi")
	if err != nil || info.Slots != 10 || info.GridFTPBase != "gridftp://isi/data" {
		t.Fatalf("Lookup = %+v, %v", info, err)
	}
	if info.Speed != 1 {
		t.Errorf("default speed = %v, want 1", info.Speed)
	}
	if _, err := s.Lookup("moon"); err == nil {
		t.Error("unknown site must fail")
	}
	if err := s.Register(SiteInfo{Name: "", Slots: 1}); err == nil {
		t.Error("unnamed site must fail")
	}
	if err := s.Register(SiteInfo{Name: "x", Slots: 0}); err == nil {
		t.Error("zero slots must fail")
	}
	if got := s.Sites(); len(got) != 3 || got[0] != "fnal" {
		t.Errorf("sites = %v", got)
	}
}

func TestLoadTracking(t *testing.T) {
	s := sample()
	if err := s.SetLoad("isi", 5); err != nil {
		t.Fatal(err)
	}
	if s.Load("isi") != 5 {
		t.Errorf("load = %d", s.Load("isi"))
	}
	if u := s.Utilization("isi"); u != 0.5 {
		t.Errorf("utilization = %v", u)
	}
	_ = s.AddLoad("isi", -10)
	if s.Load("isi") != 0 {
		t.Error("load must clamp at 0")
	}
	if err := s.SetLoad("moon", 1); err == nil {
		t.Error("unknown site must fail")
	}
	if err := s.AddLoad("moon", 1); err == nil {
		t.Error("unknown site must fail")
	}
	if u := s.Utilization("moon"); u != 0 {
		t.Errorf("unknown utilization = %v", u)
	}
}

func TestLeastLoaded(t *testing.T) {
	s := sample()
	_ = s.SetLoad("isi", 9)  // 0.9
	_ = s.SetLoad("wisc", 5) // 0.25
	_ = s.SetLoad("fnal", 2) // 0.4

	best, err := s.LeastLoaded()
	if err != nil || best != "wisc" {
		t.Errorf("LeastLoaded() = %q, %v", best, err)
	}
	best, err = s.LeastLoaded("isi", "fnal")
	if err != nil || best != "fnal" {
		t.Errorf("LeastLoaded(isi,fnal) = %q, %v", best, err)
	}
	// Tie: both at 0 load -> lexicographically first.
	_ = s.SetLoad("isi", 0)
	_ = s.SetLoad("fnal", 0)
	best, _ = s.LeastLoaded("isi", "fnal")
	if best != "fnal" {
		t.Errorf("tie break = %q, want fnal", best)
	}
	if _, err := s.LeastLoaded("moon"); err == nil {
		t.Error("all-unknown candidates must fail")
	}
}

func TestConcurrentLoad(t *testing.T) {
	s := sample()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = s.AddLoad("isi", 1)
				_ = s.AddLoad("isi", -1)
				_, _ = s.LeastLoaded()
			}
		}()
	}
	wg.Wait()
	if s.Load("isi") != 0 {
		t.Errorf("final load = %d", s.Load("isi"))
	}
}
