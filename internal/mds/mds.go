// Package mds implements the resource-information service the paper lists as
// near-future work for its Pegasus configuration ("we plan to include dynamic
// information provided by Globus Monitoring and Discovery Service (MDS)",
// §3.2): a registry of compute sites with static attributes (slot counts,
// data-transfer endpoints) and dynamic load, which the planner's
// least-loaded site-selection policy consults (ablation A3 in DESIGN.md).
package mds

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// SiteInfo describes one Grid site.
type SiteInfo struct {
	Name        string
	Slots       int     // compute slots in the site's Condor pool
	Speed       float64 // relative CPU speed (1.0 = baseline)
	GridFTPBase string  // e.g. "gridftp://isi.edu/data"
	WorkDir     string  // scratch directory jobs run in
}

// Errors returned by the service.
var (
	ErrUnknownSite = errors.New("mds: unknown site")
	ErrBadSite     = errors.New("mds: bad site info")
)

// Service is a thread-safe site registry with dynamic load tracking.
type Service struct {
	mu    sync.RWMutex
	sites map[string]SiteInfo
	load  map[string]int // currently running jobs per site
}

// New returns an empty registry.
func New() *Service {
	return &Service{sites: map[string]SiteInfo{}, load: map[string]int{}}
}

// Register adds or updates a site.
func (s *Service) Register(info SiteInfo) error {
	if info.Name == "" || info.Slots <= 0 {
		return fmt.Errorf("%w: need name and positive slots", ErrBadSite)
	}
	if info.Speed <= 0 {
		info.Speed = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sites[info.Name] = info
	return nil
}

// Lookup returns a site's static information.
func (s *Service) Lookup(name string) (SiteInfo, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	info, ok := s.sites[name]
	if !ok {
		return SiteInfo{}, fmt.Errorf("%w: %q", ErrUnknownSite, name)
	}
	return info, nil
}

// Sites returns all registered site names, sorted.
func (s *Service) Sites() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.sites))
	for n := range s.sites {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SetLoad records the number of running jobs at a site.
func (s *Service) SetLoad(name string, running int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.sites[name]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSite, name)
	}
	if running < 0 {
		running = 0
	}
	s.load[name] = running
	return nil
}

// AddLoad increments (delta may be negative) a site's running-job count.
func (s *Service) AddLoad(name string, delta int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.sites[name]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSite, name)
	}
	s.load[name] += delta
	if s.load[name] < 0 {
		s.load[name] = 0
	}
	return nil
}

// Load returns a site's running-job count.
func (s *Service) Load(name string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.load[name]
}

// Utilization returns running/slots for a site (0 for unknown sites).
func (s *Service) Utilization(name string) float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	info, ok := s.sites[name]
	if !ok || info.Slots == 0 {
		return 0
	}
	return float64(s.load[name]) / float64(info.Slots)
}

// LeastLoaded returns, among the candidate sites (all registered sites when
// candidates is empty), the one with the lowest utilization; ties break by
// name for determinism.
func (s *Service) LeastLoaded(candidates ...string) (string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(candidates) == 0 {
		for n := range s.sites {
			candidates = append(candidates, n)
		}
	}
	sort.Strings(candidates)
	best := ""
	bestU := 0.0
	for _, name := range candidates {
		info, ok := s.sites[name]
		if !ok {
			continue
		}
		u := float64(s.load[name]) / float64(info.Slots)
		if best == "" || u < bestU {
			best = name
			bestU = u
		}
	}
	if best == "" {
		return "", fmt.Errorf("%w: none of %v registered", ErrUnknownSite, candidates)
	}
	return best, nil
}
