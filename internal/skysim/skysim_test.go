package skysim

import (
	"math"
	"testing"

	"repro/internal/morphology"
	"repro/internal/wcs"
)

func testSpec(n int) Spec {
	return Spec{
		Name:        "TEST",
		Center:      wcs.New(150, 2),
		Redshift:    0.05,
		NumGalaxies: n,
		Seed:        42,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(testSpec(100))
	b := Generate(testSpec(100))
	if len(a.Galaxies) != 100 || len(b.Galaxies) != 100 {
		t.Fatalf("counts: %d, %d", len(a.Galaxies), len(b.Galaxies))
	}
	for i := range a.Galaxies {
		if a.Galaxies[i] != b.Galaxies[i] {
			t.Fatalf("galaxy %d differs between identical seeds", i)
		}
	}
	c := Generate(Spec{Name: "TEST", Center: wcs.New(150, 2), Redshift: 0.05, NumGalaxies: 100, Seed: 43})
	same := 0
	for i := range a.Galaxies {
		if a.Galaxies[i].Pos == c.Galaxies[i].Pos {
			same++
		}
	}
	if same == 100 {
		t.Error("different seeds must give different skies")
	}
}

func TestGenerateUniqueIDsAndSanePropertiess(t *testing.T) {
	c := Generate(testSpec(500))
	seen := map[string]bool{}
	for _, g := range c.Galaxies {
		if seen[g.ID] {
			t.Fatalf("duplicate ID %s", g.ID)
		}
		seen[g.ID] = true
		if g.AxisRatio <= 0 || g.AxisRatio > 1 {
			t.Errorf("%s axis ratio %v", g.ID, g.AxisRatio)
		}
		if g.ReArcsec <= 0 || g.ReArcsec > 20 {
			t.Errorf("%s Re %v", g.ID, g.ReArcsec)
		}
		if g.Mag < 10 || g.Mag > 30 {
			t.Errorf("%s mag %v", g.ID, g.Mag)
		}
		if got := c.Center.Separation(g.Pos); math.Abs(got-g.RadiusDeg) > 1e-6 {
			t.Errorf("%s RadiusDeg %v but separation %v", g.ID, g.RadiusDeg, got)
		}
	}
}

func TestDensityProfileCentrallyConcentrated(t *testing.T) {
	c := Generate(testSpec(2000))
	var inner, outer int
	for _, g := range c.Galaxies {
		if g.RadiusDeg < c.CoreRadiusDeg {
			inner++
		}
		if g.RadiusDeg > 4*c.CoreRadiusDeg {
			outer++
		}
	}
	if inner < 100 {
		t.Errorf("only %d galaxies inside the core radius", inner)
	}
	// Surface density inside rc must exceed the 4-8 rc annulus density.
	innerDensity := float64(inner) / (math.Pi * c.CoreRadiusDeg * c.CoreRadiusDeg)
	outerArea := math.Pi * c.CoreRadiusDeg * c.CoreRadiusDeg * (64 - 16)
	outerDensity := float64(outer) / outerArea
	if innerDensity < 5*outerDensity {
		t.Errorf("density contrast too weak: inner %v vs outer %v", innerDensity, outerDensity)
	}
}

func TestMorphologyDensityRelation(t *testing.T) {
	c := Generate(testSpec(4000))
	mids, fracs := c.EllipticalFractionByRadius(4, 8*c.CoreRadiusDeg)
	if len(mids) != 4 {
		t.Fatalf("bins = %d", len(mids))
	}
	if fracs[0] < fracs[3]+0.15 {
		t.Errorf("early-type fraction must fall with radius: inner %v outer %v", fracs[0], fracs[3])
	}
}

func TestEllipticalFractionDegenerate(t *testing.T) {
	c := Generate(testSpec(10))
	if m, f := c.EllipticalFractionByRadius(0, 1); m != nil || f != nil {
		t.Error("zero bins must return nil")
	}
	// Empty bins yield NaN, not a panic.
	_, fracs := c.EllipticalFractionByRadius(100, 10)
	sawNaN := false
	for _, f := range fracs {
		if math.IsNaN(f) {
			sawNaN = true
		}
	}
	if !sawNaN {
		t.Log("note: expected some empty bins with 10 galaxies and 100 bins")
	}
}

func TestCatalogExport(t *testing.T) {
	c := Generate(testSpec(50))
	cat := c.Catalog()
	if cat.Len() != 50 {
		t.Fatalf("catalog size %d", cat.Len())
	}
	rec, ok := cat.Get(c.Galaxies[0].ID)
	if !ok {
		t.Fatal("first galaxy missing from catalog")
	}
	if rec.Prop("true_type") == "" || rec.Prop("mag") == "" || rec.Prop("z") == "" {
		t.Errorf("catalog properties missing: %+v", rec.Props)
	}
	hits := cat.ConeSearch(c.Center, 8*c.CoreRadiusDeg*1.01)
	if len(hits) != 50 {
		t.Errorf("cone search around center found %d of 50", len(hits))
	}
}

func TestGalaxyLookup(t *testing.T) {
	c := Generate(testSpec(10))
	if _, ok := c.Galaxy(c.Galaxies[3].ID); !ok {
		t.Error("existing galaxy not found")
	}
	if _, ok := c.Galaxy("nope"); ok {
		t.Error("missing galaxy found")
	}
}

func TestRenderGalaxyMeasurable(t *testing.T) {
	c := Generate(testSpec(200))
	cfg := morphology.DefaultConfig(c.Redshift)
	okCount := 0
	for i, g := range c.Galaxies[:30] {
		im := RenderGalaxy(g, 0, int64(i))
		p, err := morphology.Measure(im, cfg)
		if err != nil {
			continue
		}
		if p.Valid {
			okCount++
		}
	}
	if okCount < 25 {
		t.Errorf("only %d/30 rendered galaxies measurable", okCount)
	}
}

func TestRenderedMorphologySeparatesTypes(t *testing.T) {
	// The pipeline's asymmetry must statistically separate rendered
	// ellipticals from spirals — this is the physical content of Figure 7.
	c := Generate(testSpec(3000))
	cfg := morphology.DefaultConfig(c.Redshift)
	var sumE, sumS float64
	var nE, nS int
	for i, g := range c.Galaxies {
		if nE >= 25 && nS >= 25 {
			break
		}
		switch g.Type {
		case Elliptical:
			if nE >= 25 {
				continue
			}
		case Spiral:
			if nS >= 25 {
				continue
			}
		default:
			continue
		}
		im := RenderGalaxy(g, 0, int64(i))
		p, err := morphology.Measure(im, cfg)
		if err != nil || !p.Valid {
			continue
		}
		if g.Type == Elliptical {
			sumE += p.Asymmetry
			nE++
		} else {
			sumS += p.Asymmetry
			nS++
		}
	}
	if nE < 15 || nS < 15 {
		t.Fatalf("not enough measurable galaxies: E=%d S=%d", nE, nS)
	}
	meanE := sumE / float64(nE)
	meanS := sumS / float64(nS)
	if meanS <= meanE+0.03 {
		t.Errorf("spiral asymmetry %v must clearly exceed elliptical %v", meanS, meanE)
	}
}

func TestRenderGalaxyHasWCSAndHeader(t *testing.T) {
	c := Generate(testSpec(5))
	g := c.Galaxies[0]
	im := RenderGalaxy(g, 64, 1)
	if im.Nx != 64 || im.Ny != 64 {
		t.Fatalf("size %dx%d", im.Nx, im.Ny)
	}
	p, ok := im.WCS()
	if !ok {
		t.Fatal("cutout must carry WCS")
	}
	if p.Center.Separation(g.Pos) > 1e-9 {
		t.Error("WCS not centered on the galaxy")
	}
	if im.Header.Str("OBJECT", "") != g.ID {
		t.Error("OBJECT header missing")
	}
	if im.Header.Float("REDSHIFT", 0) == 0 {
		t.Error("REDSHIFT header missing")
	}
}

func TestCutoutSizePx(t *testing.T) {
	small := Galaxy{ReArcsec: 0.1}
	if CutoutSizePx(small) != 48 {
		t.Errorf("small galaxy cutout %d, want clamp to 48", CutoutSizePx(small))
	}
	big := Galaxy{ReArcsec: 100}
	if CutoutSizePx(big) != 160 {
		t.Errorf("big galaxy cutout %d, want clamp to 160", CutoutSizePx(big))
	}
	mid := Galaxy{ReArcsec: 8}
	n := CutoutSizePx(mid)
	if n%2 != 0 || n < 48 || n > 160 {
		t.Errorf("mid cutout %d", n)
	}
}

func TestRenderField(t *testing.T) {
	c := Generate(testSpec(300))
	im := RenderField(c, 256, 256, 2*8*c.CoreRadiusDeg/256, 9)
	if im.Nx != 256 {
		t.Fatal("bad size")
	}
	// The field center must be brighter than the corners (cluster core).
	var center, corner float64
	for y := 120; y < 136; y++ {
		for x := 120; x < 136; x++ {
			center += im.At(x, y)
		}
	}
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			corner += im.At(x, y)
		}
	}
	if center <= corner {
		t.Errorf("cluster core (%v) not brighter than corner (%v)", center, corner)
	}
	if _, ok := im.WCS(); !ok {
		t.Error("field must carry WCS")
	}
}

func TestRenderXRay(t *testing.T) {
	c := Generate(testSpec(50))
	im := RenderXRay(c, 128, 128, 2*8*c.CoreRadiusDeg/128, 10)
	peak := im.At(63, 63)
	edge := im.At(2, 2)
	if peak < 5*edge {
		t.Errorf("beta model peak %v vs edge %v: contrast too weak", peak, edge)
	}
	for _, v := range im.Data {
		if v < 0 {
			t.Fatal("X-ray counts must be non-negative")
		}
	}
	if im.Header.Str("TELESCOP", "") != "SIMXRAY" {
		t.Error("X-ray header missing")
	}
}

func TestStandardClusters(t *testing.T) {
	specs := StandardClusters()
	if len(specs) != 8 {
		t.Fatalf("want 8 clusters, got %d", len(specs))
	}
	if specs[0].NumGalaxies != 37 || specs[7].NumGalaxies != 561 {
		t.Errorf("galaxy counts must span the paper's 37-561: %d..%d",
			specs[0].NumGalaxies, specs[7].NumGalaxies)
	}
	names := map[string]bool{}
	total := 0
	for _, s := range specs {
		if names[s.Name] {
			t.Errorf("duplicate cluster name %s", s.Name)
		}
		names[s.Name] = true
		total += s.NumGalaxies
	}
	if total < 1152 {
		t.Errorf("total galaxies %d < 1152 jobs the paper ran", total)
	}
}

func TestGalaxyTypeString(t *testing.T) {
	if Elliptical.String() != "E" || Spiral.String() != "Sp" ||
		Lenticular.String() != "S0" || Irregular.String() != "Irr" {
		t.Error("type labels wrong")
	}
	if GalaxyType(99).String() == "" {
		t.Error("unknown type must still format")
	}
}

func BenchmarkRenderGalaxy(b *testing.B) {
	c := Generate(testSpec(5))
	g := c.Galaxies[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RenderGalaxy(g, 64, int64(i))
	}
}

func BenchmarkGenerateCluster500(b *testing.B) {
	spec := testSpec(500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Generate(spec)
	}
}

func BenchmarkRenderField(b *testing.B) {
	c := Generate(testSpec(300))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RenderField(c, 512, 512, 0.001, int64(i))
	}
}
