package skysim

import (
	"math"
	"math/rand"

	"repro/internal/fits"
	"repro/internal/wcs"
)

// Observing parameters shared by the simulated archives.
const (
	// PixScaleArcsec matches the paper's example derivation pixel scale
	// (2.831933107035062e-4 deg ≈ 1.0195 arcsec).
	PixScaleArcsec = 2.831933107035062e-4 * 3600

	// ZeroPointCounts converts magnitudes to detector counts:
	// counts = 10^(-0.4 (mag - ZeroPointCounts)). Chosen so an m=16 cluster
	// galaxy collects ~5·10⁴ counts.
	ZeroPointCounts = 27.8

	// SkyLevel and SkyNoise are the background level and per-pixel RMS.
	SkyLevel = 100.0
	SkyNoise = 2.0

	// SeeingSigmaPx is the Gaussian PSF width (≈2.4 px FWHM ≈ 2.4").
	SeeingSigmaPx = 1.0
)

// sersicIndex returns the profile shape for a galaxy type.
func sersicIndex(t GalaxyType) float64 {
	switch t {
	case Elliptical:
		return 4
	case Lenticular:
		return 2.5
	case Spiral:
		return 1.2
	default: // Irregular
		return 1
	}
}

// CutoutSizePx returns the cutout side (pixels) the image archive would use
// for a galaxy: generously 10 effective radii, clamped to [48, 160] and even.
func CutoutSizePx(g Galaxy) int {
	n := int(10 * g.ReArcsec / PixScaleArcsec)
	if n < 48 {
		n = 48
	}
	if n > 160 {
		n = 160
	}
	return n &^ 1
}

// TotalCounts converts the galaxy's apparent magnitude to detector counts.
func TotalCounts(mag float64) float64 {
	return math.Pow(10, -0.4*(mag-ZeroPointCounts))
}

// RenderGalaxy synthesizes the cutout image of a single galaxy centered in a
// size×size frame: a type-dependent Sérsic profile with the galaxy's axis
// ratio and position angle, an m=1 "lopsidedness" perturbation and m=2
// logarithmic spiral arms (both zero for ellipticals), convolved with the
// seeing PSF, over sky background with Gaussian noise. noiseSeed makes the
// realization deterministic.
func RenderGalaxy(g Galaxy, size int, noiseSeed int64) *fits.Image {
	if size <= 0 {
		size = CutoutSizePx(g)
	}
	im := fits.NewImage(size, size, -32)
	cx := float64(size-1) / 2
	cy := float64(size-1) / 2

	rePx := g.ReArcsec / PixScaleArcsec
	n := sersicIndex(g.Type)
	bn := 2*n - 1.0/3 + 4/(405*n)
	cosp, sinp := math.Cos(g.PA), math.Sin(g.PA)
	rTrunc := 0.42 * float64(size)

	// Paint the unit-amplitude profile with 3x3 subpixel integration (steep
	// cores vary strongly within a pixel).
	const os = 3
	var sum float64
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			var f float64
			for sy := 0; sy < os; sy++ {
				for sx := 0; sx < os; sx++ {
					dx := float64(x) + (float64(sx)+0.5)/os - 0.5 - cx
					dy := float64(y) + (float64(sy)+0.5)/os - 0.5 - cy
					u := dx*cosp + dy*sinp
					v := (-dx*sinp + dy*cosp) / g.AxisRatio
					r := math.Hypot(u, v)
					theta := math.Atan2(v, u)
					p := math.Exp(-bn * math.Pow(r/rePx, 1/n))
					// m=1 lopsidedness grows with radius (tidal features
					// live in the outskirts).
					p *= 1 + g.Lopside*math.Cos(theta)*sat(r/rePx)
					// m=2 logarithmic spiral arms outside the core.
					if g.ArmAmp > 0 && r > 0.3*rePx {
						phase := 2*theta - 2.2*math.Log(r/rePx+1)*2*math.Pi
						p *= 1 + g.ArmAmp*math.Cos(phase)*sat(r/rePx)
					}
					if r > rTrunc {
						p *= math.Exp(-(r - rTrunc))
					}
					if p > 0 {
						f += p
					}
				}
			}
			f /= os * os
			im.Data[y*size+x] = f
			sum += f
		}
	}

	// Normalize the smooth component to its share of the total counts.
	total := TotalCounts(g.Mag)
	if sum > 0 {
		scale := total * (1 - g.ClumpFrac) / sum
		for i := range im.Data {
			im.Data[i] *= scale
		}
	}

	// Star-forming clumps: the dominant source of measured asymmetry in
	// late-type galaxies. Positions are drawn from the galaxy's own
	// structure seed so its appearance is identical across re-renders.
	if g.ClumpFrac > 0 {
		srng := rand.New(rand.NewSource(g.StructSeed))
		nClumps := 3 + srng.Intn(6)
		per := total * g.ClumpFrac / float64(nClumps)
		for k := 0; k < nClumps; k++ {
			// Random position within ~2.2 Re along the disk ellipse.
			rr := rePx * (0.4 + 1.8*srng.Float64())
			th := srng.Float64() * 2 * math.Pi
			u := rr * math.Cos(th)
			v := rr * math.Sin(th) * g.AxisRatio
			kx := cx + u*cosp - v*sinp
			ky := cy + u*sinp + v*cosp
			cs := 1.0 + srng.Float64() // clump sigma, px
			amp := per / (2 * math.Pi * cs * cs)
			r := int(3*cs) + 1
			for y := clampInt(int(ky)-r, 0, size-1); y <= clampInt(int(ky)+r, 0, size-1); y++ {
				for x := clampInt(int(kx)-r, 0, size-1); x <= clampInt(int(kx)+r, 0, size-1); x++ {
					dx := float64(x) - kx
					dy := float64(y) - ky
					im.Data[y*size+x] += amp * math.Exp(-(dx*dx+dy*dy)/(2*cs*cs))
				}
			}
		}
	}

	BlurGaussian(im, SeeingSigmaPx)

	rng := rand.New(rand.NewSource(noiseSeed))
	for i := range im.Data {
		im.Data[i] += SkyLevel + rng.NormFloat64()*SkyNoise
	}

	im.Header.Set("OBJECT", g.ID, "galaxy identifier")
	im.Header.Set("REDSHIFT", g.Redshift, "cluster redshift + peculiar velocity")
	im.Header.Set("MAG", g.Mag, "apparent magnitude")
	im.SetWCS(wcs.NewTanProjection(g.Pos, size, size, PixScaleArcsec/3600))
	return im
}

// sat is a smooth saturation x/(1+x) used to turn perturbations on with
// radius.
func sat(x float64) float64 { return x / (1 + x) }

// BlurGaussian convolves the image in place with a separable Gaussian PSF of
// the given sigma (pixels). Exposed because the X-ray renderer and tests
// reuse it.
func BlurGaussian(im *fits.Image, sigma float64) {
	radius := int(3 * sigma)
	if radius < 1 {
		return
	}
	kernel := make([]float64, 2*radius+1)
	var ksum float64
	for i := range kernel {
		d := float64(i - radius)
		kernel[i] = math.Exp(-d * d / (2 * sigma * sigma))
		ksum += kernel[i]
	}
	for i := range kernel {
		kernel[i] /= ksum
	}
	tmp := make([]float64, len(im.Data))
	for y := 0; y < im.Ny; y++ {
		for x := 0; x < im.Nx; x++ {
			var s float64
			for k, w := range kernel {
				xx := clampInt(x+k-radius, 0, im.Nx-1)
				s += w * im.Data[y*im.Nx+xx]
			}
			tmp[y*im.Nx+x] = s
		}
	}
	for y := 0; y < im.Ny; y++ {
		for x := 0; x < im.Nx; x++ {
			var s float64
			for k, w := range kernel {
				yy := clampInt(y+k-radius, 0, im.Ny-1)
				s += w * tmp[yy*im.Nx+x]
			}
			im.Data[y*im.Nx+x] = s
		}
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// RenderField synthesizes a wide-field optical survey plate of the cluster
// (the DSS analog): every member galaxy is painted as a PSF-blurred Gaussian
// blob of the right total flux at its sky position. Individual structure is
// irrelevant at plate scale, so blobs keep the rendering tractable.
func RenderField(c *Cluster, nx, ny int, pixScaleDeg float64, noiseSeed int64) *fits.Image {
	im := fits.NewImage(nx, ny, -32)
	proj := wcs.NewTanProjection(c.Center, nx, ny, pixScaleDeg)
	for gi, g := range c.Galaxies {
		px, py, ok := proj.SkyToPixel(g.Pos)
		if !ok {
			continue
		}
		// 0-based pixel coordinates.
		px--
		py--
		sigma := g.ReArcsec / 3600 / pixScaleDeg
		if sigma < 0.8 {
			sigma = 0.8
		}
		amp := TotalCounts(g.Mag) / (2 * math.Pi * sigma * sigma)
		r := int(4*sigma) + 1
		x0 := clampInt(int(px)-r, 0, nx-1)
		x1 := clampInt(int(px)+r, 0, nx-1)
		y0 := clampInt(int(py)-r, 0, ny-1)
		y1 := clampInt(int(py)+r, 0, ny-1)
		for y := y0; y <= y1; y++ {
			for x := x0; x <= x1; x++ {
				dx := float64(x) - px
				dy := float64(y) - py
				im.Data[y*nx+x] += amp * math.Exp(-(dx*dx+dy*dy)/(2*sigma*sigma))
			}
		}
		_ = gi
	}
	rng := rand.New(rand.NewSource(noiseSeed))
	for i := range im.Data {
		im.Data[i] += SkyLevel + rng.NormFloat64()*SkyNoise
	}
	im.Header.Set("OBJECT", c.Name, "cluster")
	im.Header.Set("SURVEY", "SIMDSS", "simulated optical survey")
	im.SetWCS(proj)
	return im
}

// XRayBeta are the standard beta-model parameters for the simulated
// intracluster medium emission.
const (
	xrayBeta = 0.66
	xrayPeak = 500.0
)

// RenderXRay synthesizes the cluster's X-ray surface brightness (the
// ROSAT/Chandra analog): an isothermal beta model
// S(r) = S0·(1+(r/rc)²)^(−3β+1/2) centered on the cluster, tracing the hot
// intra-cluster gas that marks the dynamical center.
func RenderXRay(c *Cluster, nx, ny int, pixScaleDeg float64, noiseSeed int64) *fits.Image {
	im := fits.NewImage(nx, ny, -32)
	proj := wcs.NewTanProjection(c.Center, nx, ny, pixScaleDeg)
	cxPix, cyPix, _ := proj.SkyToPixel(c.Center)
	cxPix--
	cyPix--
	rcPx := c.CoreRadiusDeg / pixScaleDeg
	expo := -3*xrayBeta + 0.5
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			dx := float64(x) - cxPix
			dy := float64(y) - cyPix
			r2 := (dx*dx + dy*dy) / (rcPx * rcPx)
			im.Data[y*nx+x] = xrayPeak * math.Pow(1+r2, expo)
		}
	}
	rng := rand.New(rand.NewSource(noiseSeed))
	for i := range im.Data {
		// Photon-counting noise: sqrt(signal) + detector floor.
		im.Data[i] += rng.NormFloat64() * (math.Sqrt(math.Abs(im.Data[i])) + 1)
		if im.Data[i] < 0 {
			im.Data[i] = 0
		}
	}
	im.Header.Set("OBJECT", c.Name, "cluster")
	im.Header.Set("TELESCOP", "SIMXRAY", "simulated X-ray mission")
	im.SetWCS(proj)
	return im
}
