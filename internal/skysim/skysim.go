// Package skysim synthesizes the sky the NVO prototype observed: rich galaxy
// clusters whose member galaxies follow a King-profile surface density and
// the Dressler (1980) morphology–density relation — ellipticals concentrated
// toward the cluster core, spirals in the outskirts — plus the optical survey
// plates, X-ray halos and per-galaxy cutout images the archives of the
// paper's Table 1 would have served.
//
// Everything is generated deterministically from a seed, so experiments are
// reproducible and the morphology pipeline's output can be validated against
// the generator's ground truth.
package skysim

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/catalog"
	"repro/internal/wcs"
)

// GalaxyType is the intrinsic morphology class assigned by the generator.
type GalaxyType int

// Galaxy types, in decreasing order of symmetry.
const (
	Elliptical GalaxyType = iota
	Lenticular
	Spiral
	Irregular
)

// String returns the conventional Hubble-class label.
func (t GalaxyType) String() string {
	switch t {
	case Elliptical:
		return "E"
	case Lenticular:
		return "S0"
	case Spiral:
		return "Sp"
	case Irregular:
		return "Irr"
	default:
		return fmt.Sprintf("GalaxyType(%d)", int(t))
	}
}

// Galaxy is one simulated cluster member with both observable properties and
// the generator's ground truth.
type Galaxy struct {
	ID         string
	Pos        wcs.SkyCoord
	Type       GalaxyType // ground truth
	Mag        float64    // apparent magnitude
	ReArcsec   float64    // effective radius
	AxisRatio  float64    // minor/major, (0,1]
	PA         float64    // position angle, radians
	Lopside    float64    // m=1 asymmetric perturbation amplitude, [0,~0.5]
	ArmAmp     float64    // m=2 spiral-arm amplitude
	ClumpFrac  float64    // flux fraction in asymmetric star-forming clumps
	StructSeed int64      // deterministic seed for the clump realization
	// EWHalpha is the Hα equivalent width in Å — the spectral star-formation
	// indicator the paper's catalogs carry (§2's "star formation
	// indicators, both spectral and morphological"). Near zero for
	// quiescent early types, tens of Å for star-forming disks.
	EWHalpha  float64
	Redshift  float64
	RadiusDeg float64 // projected distance from the cluster center
}

// Cluster is a simulated rich galaxy cluster.
type Cluster struct {
	Name          string
	Center        wcs.SkyCoord
	Redshift      float64
	CoreRadiusDeg float64 // King-profile core radius
	Galaxies      []Galaxy
}

// Spec parameterizes cluster generation.
type Spec struct {
	Name          string
	Center        wcs.SkyCoord
	Redshift      float64
	NumGalaxies   int
	CoreRadiusDeg float64 // default 0.05
	MaxRadiusDeg  float64 // default 8 * core radius
	Seed          int64
}

// withDefaults fills unset Spec fields.
func (s Spec) withDefaults() Spec {
	if s.CoreRadiusDeg <= 0 {
		s.CoreRadiusDeg = 0.05
	}
	if s.MaxRadiusDeg <= 0 {
		s.MaxRadiusDeg = 8 * s.CoreRadiusDeg
	}
	if s.Redshift <= 0 {
		s.Redshift = 0.05
	}
	return s
}

// Morphology–density relation parameters: the elliptical (+S0) fraction
// decays from fracE0 at the center to fracEFloor far out, with scale
// fracScale core radii. These shape Figure 7's expected signal.
const (
	fracE0     = 0.75
	fracEFloor = 0.15
	fracScale  = 2.0
	fracS0     = 0.3 // portion of the "early type" budget that is S0
)

// earlyTypeFraction returns the probability that a galaxy at x = r/rc core
// radii is an early type (E or S0).
func earlyTypeFraction(x float64) float64 {
	return fracEFloor + (fracE0-fracEFloor)*math.Exp(-x/fracScale)
}

// Generate builds a cluster from a spec. Galaxies follow a projected King
// profile Σ(r) ∝ (1 + (r/rc)²)^(-1); morphology mixes follow the Dressler
// relation; luminosities follow a Schechter-like magnitude distribution.
func Generate(spec Spec) *Cluster {
	spec = spec.withDefaults()
	rng := rand.New(rand.NewSource(spec.Seed))

	c := &Cluster{
		Name:          spec.Name,
		Center:        spec.Center,
		Redshift:      spec.Redshift,
		CoreRadiusDeg: spec.CoreRadiusDeg,
		Galaxies:      make([]Galaxy, 0, spec.NumGalaxies),
	}

	for i := 0; i < spec.NumGalaxies; i++ {
		r := sampleKingRadius(rng, spec.CoreRadiusDeg, spec.MaxRadiusDeg)
		pa := rng.Float64() * 360
		pos := spec.Center.Offset(pa, r)

		g := Galaxy{
			ID:        fmt.Sprintf("%s-%06d", spec.Name, i),
			Pos:       pos,
			Redshift:  spec.Redshift + rng.NormFloat64()*0.002, // velocity dispersion
			RadiusDeg: r,
		}
		assignMorphology(&g, r/spec.CoreRadiusDeg, rng)
		c.Galaxies = append(c.Galaxies, g)
	}
	return c
}

// sampleKingRadius draws a projected radius from the King surface-density
// profile Σ(r) ∝ (1+(r/rc)²)^(-1), truncated at rmax, by inverse-transform
// sampling of the enclosed-count function N(<r) ∝ ln(1+(r/rc)²).
func sampleKingRadius(rng *rand.Rand, rc, rmax float64) float64 {
	xmax := rmax / rc
	norm := math.Log(1 + xmax*xmax)
	u := rng.Float64()
	x := math.Sqrt(math.Exp(u*norm) - 1)
	return x * rc
}

// assignMorphology draws the galaxy's type from the morphology–density
// relation at x core radii and fills in the type-dependent structural
// parameters.
func assignMorphology(g *Galaxy, x float64, rng *rand.Rand) {
	fE := earlyTypeFraction(x)
	u := rng.Float64()
	switch {
	case u < fE*(1-fracS0):
		g.Type = Elliptical
	case u < fE:
		g.Type = Lenticular
	case u < fE+(1-fE)*0.85:
		g.Type = Spiral
	default:
		g.Type = Irregular
	}

	// Magnitudes: brighter toward the core (giant ellipticals), with a
	// Schechter-like spread. m* ≈ 16 at z≈0.05.
	g.Mag = 16 + rng.ExpFloat64()*1.2 + rng.NormFloat64()*0.5
	if g.Type == Elliptical {
		g.Mag -= 0.5
	}

	switch g.Type {
	case Elliptical:
		g.ReArcsec = 2 + rng.Float64()*3
		g.AxisRatio = 0.6 + rng.Float64()*0.4
		g.Lopside = rng.Float64() * 0.03
		g.ArmAmp = 0
		g.ClumpFrac = 0
	case Lenticular:
		g.ReArcsec = 2.5 + rng.Float64()*3
		g.AxisRatio = 0.4 + rng.Float64()*0.5
		g.Lopside = 0.02 + rng.Float64()*0.05
		g.ArmAmp = rng.Float64() * 0.05
		g.ClumpFrac = rng.Float64() * 0.03
	case Spiral:
		g.ReArcsec = 3 + rng.Float64()*4
		g.AxisRatio = 0.3 + rng.Float64()*0.6
		g.Lopside = 0.10 + rng.Float64()*0.25
		g.ArmAmp = 0.3 + rng.Float64()*0.4
		g.ClumpFrac = 0.20 + rng.Float64()*0.20
	case Irregular:
		g.ReArcsec = 2 + rng.Float64()*3
		g.AxisRatio = 0.4 + rng.Float64()*0.5
		g.Lopside = 0.30 + rng.Float64()*0.30
		g.ArmAmp = 0.1 + rng.Float64()*0.2
		g.ClumpFrac = 0.35 + rng.Float64()*0.25
	}
	g.PA = rng.Float64() * math.Pi
	g.StructSeed = rng.Int63()

	// Spectral star-formation indicator, correlated with type (and hence,
	// through the Dressler relation, anticorrelated with local density).
	switch g.Type {
	case Elliptical:
		g.EWHalpha = math.Abs(rng.NormFloat64()) * 0.5
	case Lenticular:
		g.EWHalpha = 1 + math.Abs(rng.NormFloat64())*2
	case Spiral:
		g.EWHalpha = 10 + rng.Float64()*30
	case Irregular:
		g.EWHalpha = 20 + rng.Float64()*40
	}
}

// Catalog exports the cluster members as a cone-searchable catalog with the
// property columns the NVO catalogs of the paper carry (magnitude, redshift,
// and — for validation only — the true type).
func (c *Cluster) Catalog() *catalog.Catalog {
	cat := catalog.New(c.Name, "mag", "z", "ew_halpha", "true_type")
	for _, g := range c.Galaxies {
		// IDs are unique by construction; ignore the impossible error.
		_ = cat.Add(catalog.Record{
			ID:  g.ID,
			Pos: g.Pos,
			Props: map[string]string{
				"mag":       fmt.Sprintf("%.2f", g.Mag),
				"z":         fmt.Sprintf("%.5f", g.Redshift),
				"ew_halpha": fmt.Sprintf("%.2f", g.EWHalpha),
				"true_type": g.Type.String(),
			},
		})
	}
	return cat
}

// Galaxy returns the member with the given ID.
func (c *Cluster) Galaxy(id string) (Galaxy, bool) {
	for _, g := range c.Galaxies {
		if g.ID == id {
			return g, true
		}
	}
	return Galaxy{}, false
}

// EllipticalFractionByRadius bins members into nbins equal-width radial bins
// out to maxRadiusDeg and returns, per bin, the mid radius (in core radii)
// and the early-type fraction. This is the generator-side truth for the
// Dressler relation that Figure 7's analysis must rediscover.
func (c *Cluster) EllipticalFractionByRadius(nbins int, maxRadiusDeg float64) (mids, fracs []float64) {
	if nbins <= 0 {
		return nil, nil
	}
	counts := make([]int, nbins)
	early := make([]int, nbins)
	for _, g := range c.Galaxies {
		b := int(g.RadiusDeg / maxRadiusDeg * float64(nbins))
		if b < 0 || b >= nbins {
			continue
		}
		counts[b]++
		if g.Type == Elliptical || g.Type == Lenticular {
			early[b]++
		}
	}
	for b := 0; b < nbins; b++ {
		mid := (float64(b) + 0.5) * maxRadiusDeg / float64(nbins) / c.CoreRadiusDeg
		mids = append(mids, mid)
		if counts[b] == 0 {
			fracs = append(fracs, math.NaN())
		} else {
			fracs = append(fracs, float64(early[b])/float64(counts[b]))
		}
	}
	return mids, fracs
}

// StandardClusters returns the specs for the eight-cluster campaign of the
// paper's §5. Galaxy counts span the reported 37–561 range; positions are
// spread over the sky; seeds are fixed for reproducibility.
func StandardClusters() []Spec {
	counts := []int{37, 84, 112, 158, 203, 297, 414, 561}
	names := []string{"CL0024", "A0085", "A0754", "A1689", "A2029", "A2142", "A2256", "COMA"}
	specs := make([]Spec, len(counts))
	for i := range counts {
		specs[i] = Spec{
			Name:        names[i],
			Center:      wcs.New(15+40*float64(i), -30+12*float64(i)),
			Redshift:    0.02 + 0.01*float64(i),
			NumGalaxies: counts[i],
			Seed:        int64(1000 + i),
		}
	}
	return specs
}
