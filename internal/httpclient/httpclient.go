// Package httpclient provides the process-wide pooled HTTP client that the
// portal and the thin service clients (RLS, registry, tableops, compute)
// default to when no client is injected. A single client means a single
// transport, so keep-alive connections are reused across calls and
// components instead of each call paying a fresh TCP (and, in a real
// deployment, TLS) handshake — the connection-churn analog of the planner's
// one-round-trip-per-plan rule.
package httpclient

import (
	"net/http"
	"time"
)

// shared is the singleton pooled client. The transport mirrors
// http.DefaultTransport's pooling posture but with a higher per-host idle
// limit: the testbed concentrates traffic on a handful of archive hosts, so
// the default of 2 idle conns per host would discard most keep-alives under
// the portal's parallel fan-out.
var shared = &http.Client{
	Transport: &http.Transport{
		Proxy:               http.ProxyFromEnvironment,
		MaxIdleConns:        100,
		MaxIdleConnsPerHost: 16,
		IdleConnTimeout:     90 * time.Second,
	},
}

// Shared returns the process-wide pooled client. Callers must not mutate it;
// components needing different behaviour (timeouts, test routers) should
// inject their own client instead.
func Shared() *http.Client {
	return shared
}

// New returns a client over the given transport. It exists so that the
// few places that legitimately need a non-shared client (the testbed's
// in-memory request router) still construct it here: the sharedclient
// analyzer forbids http.Client literals everywhere else, which keeps
// this package the single audit point for connection behaviour.
func New(transport http.RoundTripper) *http.Client {
	return &http.Client{Transport: transport}
}
