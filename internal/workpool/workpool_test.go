package workpool

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 16} {
		const n = 100
		hits := make([]int32, n)
		Run(workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestRunSerialPreservesOrder(t *testing.T) {
	var order []int
	Run(1, 10, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order %v", order)
		}
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak int32
	var mu sync.Mutex
	Run(workers, 50, func(int) {
		c := atomic.AddInt32(&cur, 1)
		mu.Lock()
		if c > peak {
			peak = c
		}
		mu.Unlock()
		atomic.AddInt32(&cur, -1)
	})
	if peak > workers {
		t.Fatalf("peak concurrency %d > bound %d", peak, workers)
	}
}

func TestRunZeroTasks(t *testing.T) {
	Run(4, 0, func(int) { t.Fatal("must not run") })
}

func TestPoolInlineRunsSynchronously(t *testing.T) {
	p := NewPool(1)
	ran := false
	f := p.Submit(func() error { ran = true; return nil })
	if !ran {
		t.Fatal("inline pool must run the body before Submit returns")
	}
	if err := f.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestNilPoolIsInline(t *testing.T) {
	var p *Pool
	if p.Workers() != 1 {
		t.Fatalf("nil pool workers = %d", p.Workers())
	}
	want := errors.New("x")
	if err := p.Submit(func() error { return want }).Wait(); err != want {
		t.Fatalf("err = %v", err)
	}
}

func TestPoolConcurrentResolvesAllFutures(t *testing.T) {
	p := NewPool(4)
	const n = 64
	futs := make([]*Future, n)
	errWant := errors.New("boom")
	for i := 0; i < n; i++ {
		i := i
		futs[i] = p.Submit(func() error {
			if i%7 == 0 {
				return errWant
			}
			return nil
		})
	}
	for i, f := range futs {
		err := f.Wait()
		if i%7 == 0 && err != errWant {
			t.Fatalf("future %d: err = %v, want %v", i, err, errWant)
		}
		if i%7 != 0 && err != nil {
			t.Fatalf("future %d: err = %v", i, err)
		}
	}
}

func TestPoolWaitIsIdempotent(t *testing.T) {
	p := NewPool(2)
	f := p.Submit(func() error { return nil })
	for i := 0; i < 3; i++ {
		if err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPoolCloseJoinsAndRevokesParkedWaiters(t *testing.T) {
	p := NewPool(2)
	gate := make(chan struct{})
	var running sync.WaitGroup
	running.Add(2)
	hold := func() error { running.Done(); <-gate; return nil }
	f1, f2 := p.Submit(hold), p.Submit(hold)
	running.Wait() // both slots now held

	// This submission parks on the slot wait: the pool is full and stays
	// full until gate closes, so Close's revocation must be what resolves it.
	f3 := p.Submit(func() error {
		t.Error("revoked task body must not run")
		return nil
	})

	closed := make(chan struct{})
	go func() {
		p.Close()
		close(closed)
	}()
	if err := f3.Wait(); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("parked submission after Close: err = %v, want ErrPoolClosed", err)
	}

	// In-flight bodies run to completion, and Close joins them.
	close(gate)
	if err := f1.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := f2.Wait(); err != nil {
		t.Fatal(err)
	}
	<-closed
}

func TestPoolCloseAfterDrainReturnsImmediately(t *testing.T) {
	p := NewPool(4)
	var done int32
	futs := make([]*Future, 16)
	for i := range futs {
		futs[i] = p.Submit(func() error {
			atomic.AddInt32(&done, 1)
			return nil
		})
	}
	for i, f := range futs {
		if err := f.Wait(); err != nil {
			t.Fatalf("future %d: err = %v", i, err)
		}
	}
	p.Close()
	if got := atomic.LoadInt32(&done); got != 16 {
		t.Fatalf("Close returned with %d/16 bodies finished", got)
	}
}

func TestPoolSubmitAfterCloseIsRefused(t *testing.T) {
	p := NewPool(2)
	p.Close()
	f := p.Submit(func() error {
		t.Error("body must not run after Close")
		return nil
	})
	if err := f.Wait(); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("err = %v, want ErrPoolClosed", err)
	}
}

func TestPoolCloseIsIdempotent(t *testing.T) {
	p := NewPool(3)
	p.Submit(func() error { return nil })
	p.Close()
	p.Close()
}

func TestInlinePoolCloseIsNoop(t *testing.T) {
	var nilPool *Pool
	nilPool.Close()
	p := NewPool(1)
	p.Close()
	if err := p.Submit(func() error { return nil }).Wait(); err != nil {
		t.Fatalf("inline pool must keep running after Close: %v", err)
	}
}
