// Package workpool is the bounded worker pool behind every concurrent fan-out
// in the grid stack: the Condor simulator's parallel leaf-job side effects,
// the portal's concurrent archive queries, and the compute service's image
// staging. It offers two shapes:
//
//   - Run: an indexed parallel for-loop over a fixed task count, for callers
//     that fan out, wait for everything, and merge results in index order —
//     the deterministic-merge pattern the portal and image cache use.
//   - Pool/Future: streaming submission with per-task completion handles, for
//     the discrete-event simulator, which launches a task's side effects the
//     moment the model starts it and collects the result when the model clock
//     reaches its completion instant.
//
// Both shapes bound concurrency with a semaphore, so a worker count of W
// never runs more than W task bodies at once no matter how many tasks are
// submitted. A worker count ≤ 1 degenerates to inline, submission-order
// execution — byte-identical to the pre-concurrency serial code paths.
package workpool

import (
	"errors"
	"sync"
)

// ErrPoolClosed resolves the Future of any task submitted after Close.
var ErrPoolClosed = errors.New("workpool: pool closed")

// Run invokes fn(i) for every i in [0, n) using at most workers concurrent
// goroutines, and returns when all calls have finished. With workers <= 1 (or
// n <= 1) the calls run inline in index order, making the serial mode an
// exact replay of a plain loop. fn must write its results into caller-owned,
// index-addressed slots; Run itself imposes no ordering on completion, so the
// caller's merge order — not scheduling — determines the output order.
func Run(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// Pool is a bounded streaming worker pool: Submit launches a task body on a
// free worker slot (or inline when Workers <= 1) and returns a Future that
// resolves when the body finishes. Close revokes slot waiters and joins
// every goroutine the pool ever spawned, so a Pool never leaks workers past
// its owner's lifetime.
type Pool struct {
	workers int
	sem     chan struct{}
	quit    chan struct{} // closed by Close; revokes workers parked on sem
	once    sync.Once
	wg      sync.WaitGroup
}

// NewPool builds a pool with the given worker bound. workers <= 1 yields an
// inline pool: Submit runs the body synchronously before returning, which is
// the deterministic serial mode.
func NewPool(workers int) *Pool {
	p := &Pool{workers: workers}
	if workers > 1 {
		p.sem = make(chan struct{}, workers)
		p.quit = make(chan struct{})
	}
	return p
}

// Close marks the pool closed and blocks until every in-flight task body has
// finished. Tasks already holding or waiting for a slot at close time still
// run to completion if they win the slot; tasks submitted after Close resolve
// immediately with ErrPoolClosed. Close is idempotent; Submit racing Close is
// the caller's error.
func (p *Pool) Close() {
	if p == nil || p.sem == nil {
		return
	}
	p.once.Do(func() { close(p.quit) })
	p.wg.Wait()
}

// Workers returns the concurrency bound (minimum 1).
func (p *Pool) Workers() int {
	if p == nil || p.workers < 1 {
		return 1
	}
	return p.workers
}

// Future is the completion handle of one submitted task.
type Future struct {
	done chan struct{}
	err  error
}

// Resolved returns an already-completed Future carrying err. Callers use it
// to put a precomputed outcome (an injected fault decided before the task
// body would run, a nil-bodied task) behind the same handle as live work.
func Resolved(err error) *Future { return &Future{err: err} }

// Wait blocks until the task body has finished and returns its error.
func (f *Future) Wait() error {
	if f.done != nil {
		<-f.done
	}
	return f.err
}

// Submit schedules fn on the pool. On an inline pool (nil, or Workers <= 1)
// fn runs before Submit returns, so submission order equals execution order —
// the property the simulator's serial mode relies on. On a concurrent pool
// fn runs on a worker goroutine as soon as a slot frees up; the goroutine is
// joined by Close, and its slot wait observes the pool's revocation channel,
// so a worker parked behind a full pool cannot outlive the pool itself.
func (p *Pool) Submit(fn func() error) *Future {
	if p == nil || p.sem == nil {
		return &Future{err: fn()}
	}
	select {
	case <-p.quit:
		return Resolved(ErrPoolClosed)
	default:
	}
	f := &Future{done: make(chan struct{})}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		defer close(f.done)
		select {
		case p.sem <- struct{}{}:
		case <-p.quit:
			f.err = ErrPoolClosed
			return
		}
		defer func() { <-p.sem }()
		f.err = fn()
	}()
	return f
}
