package morphology

import (
	"errors"
	"math"
)

// Cosmology is the Friedmann model the galMorph transformation of the paper
// parameterizes with (Ho, om, flat): a matter + curvature (+ optionally
// lambda, when flat) universe. It converts a galaxy's redshift into the
// angular and luminosity distances needed to turn pixel measurements into
// physical surface brightness and sizes.
type Cosmology struct {
	H0     float64 // Hubble constant, km/s/Mpc
	OmegaM float64 // matter density parameter
	Flat   bool    // if true, OmegaLambda = 1 - OmegaM; else open, no lambda
}

// speedOfLight in km/s.
const speedOfLight = 299792.458

// ErrBadCosmology reports unphysical parameters.
var ErrBadCosmology = errors.New("morphology: bad cosmology parameters")

// Validate checks the parameters.
func (c Cosmology) Validate() error {
	if c.H0 <= 0 || c.OmegaM < 0 {
		return ErrBadCosmology
	}
	return nil
}

// omegaLambda returns the dark-energy density parameter implied by Flat.
func (c Cosmology) omegaLambda() float64 {
	if c.Flat {
		return 1 - c.OmegaM
	}
	return 0
}

// omegaK returns the curvature density parameter.
func (c Cosmology) omegaK() float64 {
	return 1 - c.OmegaM - c.omegaLambda()
}

// ez is the dimensionless Hubble parameter E(z) = H(z)/H0.
func (c Cosmology) ez(z float64) float64 {
	zp := 1 + z
	return math.Sqrt(c.OmegaM*zp*zp*zp + c.omegaK()*zp*zp + c.omegaLambda())
}

// hubbleDistance is c/H0 in Mpc.
func (c Cosmology) hubbleDistance() float64 { return speedOfLight / c.H0 }

// ComovingDistance returns the line-of-sight comoving distance to redshift z
// in Mpc, by Simpson integration of dz/E(z).
func (c Cosmology) ComovingDistance(z float64) float64 {
	if z <= 0 {
		return 0
	}
	const steps = 512 // even
	h := z / steps
	sum := 1/c.ez(0) + 1/c.ez(z)
	for i := 1; i < steps; i++ {
		w := 2.0
		if i%2 == 1 {
			w = 4
		}
		sum += w / c.ez(float64(i)*h)
	}
	return c.hubbleDistance() * sum * h / 3
}

// transverseComovingDistance applies the curvature correction.
func (c Cosmology) transverseComovingDistance(z float64) float64 {
	dc := c.ComovingDistance(z)
	ok := c.omegaK()
	dh := c.hubbleDistance()
	switch {
	case math.Abs(ok) < 1e-9:
		return dc
	case ok > 0:
		s := math.Sqrt(ok)
		return dh / s * math.Sinh(s*dc/dh)
	default:
		s := math.Sqrt(-ok)
		return dh / s * math.Sin(s*dc/dh)
	}
}

// AngularDiameterDistance returns D_A(z) in Mpc.
func (c Cosmology) AngularDiameterDistance(z float64) float64 {
	if z <= 0 {
		return 0
	}
	return c.transverseComovingDistance(z) / (1 + z)
}

// LuminosityDistance returns D_L(z) in Mpc.
func (c Cosmology) LuminosityDistance(z float64) float64 {
	if z <= 0 {
		return 0
	}
	return c.transverseComovingDistance(z) * (1 + z)
}

// DistanceModulus returns m - M = 5 log10(D_L/10pc).
func (c Cosmology) DistanceModulus(z float64) float64 {
	dl := c.LuminosityDistance(z) // Mpc
	if dl <= 0 {
		return 0
	}
	return 5 * math.Log10(dl*1e5) // Mpc -> 10pc units: 1 Mpc = 1e5 * 10pc
}

// KpcPerArcsec returns the physical scale at redshift z in kpc/arcsec.
func (c Cosmology) KpcPerArcsec(z float64) float64 {
	da := c.AngularDiameterDistance(z) // Mpc
	// 1 arcsec in radians times D_A, converted Mpc -> kpc.
	return da * 1000 * (math.Pi / 180 / 3600)
}
