package morphology

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fits"
)

// renderSersic paints a Sérsic profile I(r) = I0·exp(-b_n·(r/re)^(1/n))
// at (cx, cy) with effective (half-light) radius re, axis ratio q and
// position angle pa, over background bg with Gaussian noise sigma. The
// profile is tapered to zero beyond ~35% of the image size so the high-n
// wings do not contaminate the border sky estimate (real cutout pipelines
// size the cutout to contain the galaxy).
func renderSersic(nx, ny int, cx, cy, i0, re, n, q, pa, bg, sigma float64, seed int64) *fits.Image {
	im := fits.NewImage(nx, ny, -64)
	rng := rand.New(rand.NewSource(seed))
	cosp, sinp := math.Cos(pa), math.Sin(pa)
	bn := 2*n - 1.0/3 + 4/(405*n) // Ciotti & Bertin approximation
	rTrunc := 0.35 * float64(minInt(nx, ny))
	// 4x4 subpixel sampling: steep Sérsic cores vary enormously within one
	// pixel, so point-sampling the center would spike the central pixel.
	const os = 4
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			var flux float64
			for sy := 0; sy < os; sy++ {
				for sx := 0; sx < os; sx++ {
					dx := float64(x) + (float64(sx)+0.5)/os - 0.5 - cx
					dy := float64(y) + (float64(sy)+0.5)/os - 0.5 - cy
					// rotate into the galaxy frame, squeeze the minor axis
					u := dx*cosp + dy*sinp
					v := (-dx*sinp + dy*cosp) / q
					r := math.Hypot(u, v)
					f := i0 * math.Exp(-bn*math.Pow(r/re, 1/n))
					if r > rTrunc {
						f *= math.Exp(-(r - rTrunc))
					}
					flux += f
				}
			}
			im.SetAt(x, y, flux/(os*os))
		}
	}
	blurGaussian(im, 1.2) // atmospheric seeing, so steep cores are resolved
	for i := range im.Data {
		im.Data[i] += bg + rng.NormFloat64()*sigma
	}
	return im
}

// blurGaussian convolves in place with a separable Gaussian PSF.
func blurGaussian(im *fits.Image, sigma float64) {
	radius := int(3 * sigma)
	if radius < 1 {
		return
	}
	kernel := make([]float64, 2*radius+1)
	var ksum float64
	for i := range kernel {
		d := float64(i - radius)
		kernel[i] = math.Exp(-d * d / (2 * sigma * sigma))
		ksum += kernel[i]
	}
	for i := range kernel {
		kernel[i] /= ksum
	}
	tmp := make([]float64, len(im.Data))
	for y := 0; y < im.Ny; y++ {
		for x := 0; x < im.Nx; x++ {
			var s float64
			for k, w := range kernel {
				xx := x + k - radius
				if xx < 0 {
					xx = 0
				}
				if xx >= im.Nx {
					xx = im.Nx - 1
				}
				s += w * im.Data[y*im.Nx+xx]
			}
			tmp[y*im.Nx+x] = s
		}
	}
	for y := 0; y < im.Ny; y++ {
		for x := 0; x < im.Nx; x++ {
			var s float64
			for k, w := range kernel {
				yy := y + k - radius
				if yy < 0 {
					yy = 0
				}
				if yy >= im.Ny {
					yy = im.Ny - 1
				}
				s += w * tmp[yy*im.Nx+x]
			}
			im.Data[y*im.Nx+x] = s
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// renderAsymmetric renders a main blob plus a strong one-sided companion.
func renderAsymmetric(nx, ny int, seed int64) *fits.Image {
	im := renderSersic(nx, ny, float64(nx)/2, float64(ny)/2, 1000, 4, 1, 1, 0, 100, 2, seed)
	// One-sided lump at 1/4 of the image, Gaussian.
	lx, ly := float64(nx)*0.70, float64(ny)*0.62
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			dx := float64(x) - lx
			dy := float64(y) - ly
			im.SetAt(x, y, im.At(x, y)+600*math.Exp(-(dx*dx+dy*dy)/(2*9)))
		}
	}
	return im
}

func cfg() Config { return DefaultConfig(0.0279) }

func TestMeasureSymmetricElliptical(t *testing.T) {
	// de Vaucouleurs-like (n=4): highly concentrated, symmetric.
	im := renderSersic(64, 64, 32, 32, 50000, 5, 4, 0.8, 0.5, 100, 2, 1)
	p, err := Measure(im, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if !p.Valid {
		t.Fatalf("invalid: %s", p.Err)
	}
	if p.Asymmetry > 0.12 {
		t.Errorf("elliptical asymmetry = %v, want < 0.12", p.Asymmetry)
	}
	if p.Concentration < 2.5 {
		t.Errorf("elliptical concentration = %v, want > 2.5", p.Concentration)
	}
	if math.Abs(p.CentroidX-32) > 1 || math.Abs(p.CentroidY-32) > 1 {
		t.Errorf("centroid = (%v,%v), want near (32,32)", p.CentroidX, p.CentroidY)
	}
	if math.Abs(p.Background-100) > 1.5 {
		t.Errorf("background = %v, want ~100", p.Background)
	}
}

func TestMeasureDiskLessConcentratedThanElliptical(t *testing.T) {
	disk := renderSersic(64, 64, 32, 32, 1000, 8, 1, 1, 0, 100, 2, 2)
	ell := renderSersic(64, 64, 32, 32, 50000, 5, 4, 1, 0, 100, 2, 3)
	pd, err := Measure(disk, cfg())
	if err != nil {
		t.Fatal(err)
	}
	pe, err := Measure(ell, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if pd.Concentration >= pe.Concentration {
		t.Errorf("disk C=%v should be below elliptical C=%v", pd.Concentration, pe.Concentration)
	}
}

func TestMeasureAsymmetricAboveSymmetric(t *testing.T) {
	sym := renderSersic(64, 64, 32, 32, 1000, 4, 1, 1, 0, 100, 2, 4)
	asym := renderAsymmetric(64, 64, 5)
	ps, err := Measure(sym, cfg())
	if err != nil {
		t.Fatal(err)
	}
	pa, err := Measure(asym, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if pa.Asymmetry <= ps.Asymmetry+0.05 {
		t.Errorf("asymmetric A=%v should clearly exceed symmetric A=%v", pa.Asymmetry, ps.Asymmetry)
	}
}

func TestMeasureBrighterGalaxyBrighterSB(t *testing.T) {
	faint := renderSersic(64, 64, 32, 32, 500, 3, 1, 1, 0, 100, 2, 6)
	bright := renderSersic(64, 64, 32, 32, 5000, 3, 1, 1, 0, 100, 2, 7)
	pf, _ := Measure(faint, cfg())
	pb, _ := Measure(bright, cfg())
	if !pf.Valid || !pb.Valid {
		t.Fatal("both must be valid")
	}
	// Surface brightness is in magnitudes: smaller = brighter.
	if pb.SurfaceBrightness >= pf.SurfaceBrightness {
		t.Errorf("bright SB=%v should be < faint SB=%v (mag scale)", pb.SurfaceBrightness, pf.SurfaceBrightness)
	}
	if pb.TotalFlux <= pf.TotalFlux {
		t.Errorf("bright flux %v <= faint flux %v", pb.TotalFlux, pf.TotalFlux)
	}
}

func TestMeasureOffCenterGalaxy(t *testing.T) {
	im := renderSersic(64, 64, 22, 40, 2000, 3, 1, 1, 0, 100, 2, 8)
	p, err := Measure(im, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.CentroidX-22) > 1.5 || math.Abs(p.CentroidY-40) > 1.5 {
		t.Errorf("centroid = (%v,%v), want near (22,40)", p.CentroidX, p.CentroidY)
	}
	if p.Asymmetry > 0.15 {
		t.Errorf("off-center symmetric galaxy A=%v, want small", p.Asymmetry)
	}
}

func TestMeasureFailsGracefully(t *testing.T) {
	// Blank image: nothing above background.
	blank := fits.NewImage(32, 32, -64)
	rng := rand.New(rand.NewSource(9))
	for i := range blank.Data {
		blank.Data[i] = 100 + rng.NormFloat64()*2
	}
	p, err := Measure(blank, cfg())
	if err == nil || p.Valid {
		t.Errorf("blank image must be invalid, got %+v", p)
	}
	if p.Err == "" {
		t.Error("invalid result must carry a reason")
	}

	// Nil and empty.
	if p, err := Measure(nil, cfg()); err == nil || p.Valid {
		t.Error("nil image must fail")
	}
	// Too small.
	tiny := fits.NewImage(4, 4, -64)
	if p, err := Measure(tiny, cfg()); err == nil || p.Valid {
		t.Error("tiny image must fail")
	}
	// Non-finite pixels.
	bad := fits.NewImage(32, 32, -64)
	bad.Data[5] = math.NaN()
	if p, err := Measure(bad, cfg()); err == nil || p.Valid {
		t.Error("NaN image must fail")
	}
}

func TestMeasureNeverPanicsOnRandomImages(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 50; i++ {
		nx := 8 + rng.Intn(64)
		ny := 8 + rng.Intn(64)
		im := fits.NewImage(nx, ny, -64)
		for j := range im.Data {
			im.Data[j] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(6)))
		}
		p, _ := Measure(im, cfg()) // error is acceptable; panic is not
		if p.Valid {
			if math.IsNaN(p.Asymmetry) || math.IsNaN(p.Concentration) || math.IsNaN(p.SurfaceBrightness) {
				t.Fatalf("valid result with NaN fields: %+v", p)
			}
			if p.Asymmetry < 0 {
				t.Fatalf("negative asymmetry: %v", p.Asymmetry)
			}
		}
	}
}

func TestAsymmetryRotationInvariance(t *testing.T) {
	// The asymmetry of an image and its 180°-rotated copy must match closely.
	im := renderAsymmetric(64, 64, 11)
	rot := fits.NewImage(64, 64, -64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			rot.SetAt(63-x, 63-y, im.At(x, y))
		}
	}
	p1, err := Measure(im, cfg())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Measure(rot, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p1.Asymmetry-p2.Asymmetry) > 0.02 {
		t.Errorf("A(im)=%v vs A(rot)=%v", p1.Asymmetry, p2.Asymmetry)
	}
}

func TestEstimateBackground(t *testing.T) {
	im := fits.NewImage(50, 50, -64)
	rng := rand.New(rand.NewSource(12))
	for i := range im.Data {
		im.Data[i] = 250 + rng.NormFloat64()*5
	}
	// Bright center should not bias the border estimate.
	for y := 20; y < 30; y++ {
		for x := 20; x < 30; x++ {
			im.SetAt(x, y, 5000)
		}
	}
	level, sigma := EstimateBackground(im)
	if math.Abs(level-250) > 2 {
		t.Errorf("background level = %v, want ~250", level)
	}
	if math.Abs(sigma-5) > 2 {
		t.Errorf("background sigma = %v, want ~5", sigma)
	}
}

func TestSigmaClipRejectsOutliers(t *testing.T) {
	vals := make([]float64, 0, 1000)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 990; i++ {
		vals = append(vals, 10+rng.NormFloat64())
	}
	for i := 0; i < 10; i++ {
		vals = append(vals, 1e6)
	}
	mean, sd := sigmaClip(vals, 3, 5)
	if math.Abs(mean-10) > 0.5 {
		t.Errorf("clipped mean = %v, want ~10", mean)
	}
	if sd > 2 {
		t.Errorf("clipped sd = %v, want ~1", sd)
	}
}

func TestSigmaClipDegenerate(t *testing.T) {
	if m, s := sigmaClip(nil, 3, 5); m != 0 || s != 0 {
		t.Error("empty input must return zeros")
	}
	if m, s := sigmaClip([]float64{7, 7, 7}, 3, 5); m != 7 || s != 0 {
		t.Errorf("constant input = %v, %v", m, s)
	}
}

func TestBilinear(t *testing.T) {
	data := []float64{0, 1, 2, 3} // 2x2: (0,0)=0 (1,0)=1 (0,1)=2 (1,1)=3
	if v, ok := bilinear(data, 2, 2, 0.5, 0.5); !ok || v != 1.5 {
		t.Errorf("bilinear center = %v, %v", v, ok)
	}
	if v, ok := bilinear(data, 2, 2, 0, 0); !ok || v != 0 {
		t.Errorf("bilinear corner = %v, %v", v, ok)
	}
	if _, ok := bilinear(data, 2, 2, -0.1, 0); ok {
		t.Error("outside must not be sampled")
	}
	if _, ok := bilinear(data, 2, 2, 0, 1.1); ok {
		t.Error("outside must not be sampled")
	}
}

func BenchmarkMorphologyGalaxy(b *testing.B) {
	im := renderSersic(64, 64, 32, 32, 2000, 3, 2, 0.9, 0.3, 100, 2, 20)
	c := cfg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Measure(im, c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMorphologyLargeCutout(b *testing.B) {
	im := renderSersic(256, 256, 128, 128, 2000, 10, 2, 0.9, 0.3, 100, 2, 21)
	c := cfg()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Measure(im, c); err != nil {
			b.Fatal(err)
		}
	}
}
