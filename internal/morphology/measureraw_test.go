package morphology

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/arena"
	"repro/internal/fits"
)

// rawBytes encodes an image to its on-disk FITS form.
func rawBytes(t testing.TB, im *fits.Image) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := im.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return buf.Bytes()
}

// TestMeasureRawMatchesMeasure is the hot-path equivalence pin: for a sweep
// of synthetic galaxies and encodings, MeasureRaw over the raw bytes must
// reproduce Decode+Measure exactly — same Params bits, same error text.
func TestMeasureRawMatchesMeasure(t *testing.T) {
	images := []*fits.Image{
		renderSersic(64, 64, 32, 32, 50000, 5, 4, 0.8, 0.5, 100, 2, 1),
		renderSersic(48, 56, 20, 30, 20000, 3, 1, 1, 0, 50, 1, 2),
		renderAsymmetric(64, 64, 3),
		fits.NewImage(32, 32, -64), // flat zero image: measurement fails gracefully
	}
	// Integer-encoded variant: quantization changes pixels, but both paths
	// must see the same quantized values.
	quant := renderSersic(40, 40, 20, 20, 30000, 4, 2, 0.9, 1.0, 100, 2, 4)
	quant.Bitpix = 16
	quant.Header.Set("BSCALE", 0.5, "")
	quant.Header.Set("BZERO", 500.0, "")
	images = append(images, quant)

	a := arena.Get()
	defer arena.Put(a)
	valid := 0
	for i, im := range images {
		raw := rawBytes(t, im)
		dec, derr := fits.Decode(bytes.NewReader(raw))
		var want Params
		var werr error
		if derr == nil {
			want, werr = Measure(dec, cfg())
		} else {
			werr = derr
		}
		if want.Valid {
			valid++
		}
		got, gerr := MeasureRaw(a, raw, cfg())
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("image %d: error mismatch: legacy %v, raw %v", i, werr, gerr)
		}
		if werr != nil && werr.Error() != gerr.Error() {
			t.Fatalf("image %d: error text diverged:\nlegacy: %s\nraw:    %s", i, werr, gerr)
		}
		if got != want {
			t.Fatalf("image %d: params diverged:\nlegacy: %+v\nraw:    %+v", i, want, got)
		}
		a.Reset()
	}
	if valid < 3 {
		t.Fatalf("only %d sweep images measured valid; the sweep must exercise the full pipeline", valid)
	}
}

// TestMeasureRawErrorPaths pins the precheck errors to Measure's.
func TestMeasureRawErrorPaths(t *testing.T) {
	a := arena.Get()
	defer arena.Put(a)

	// Garbage bytes: same error as Decode.
	_, derr := fits.Decode(bytes.NewReader([]byte("not a fits file at all")))
	_, gerr := MeasureRaw(a, []byte("not a fits file at all"), cfg())
	if derr == nil || gerr == nil || derr.Error() != gerr.Error() {
		t.Fatalf("garbage: legacy %v, raw %v", derr, gerr)
	}

	// Too-small image.
	small := fits.NewImage(4, 4, -64)
	_, werr := Measure(small, cfg())
	_, gerr = MeasureRaw(a, rawBytes(t, small), cfg())
	if werr == nil || gerr == nil || werr.Error() != gerr.Error() {
		t.Fatalf("too small: legacy %v, raw %v", werr, gerr)
	}

	// Non-finite pixels.
	bad := renderSersic(32, 32, 16, 16, 500, 4, 1, 1, 0, 100, 2, 9)
	bad.Data[17] = math.NaN()
	_, werr = Measure(bad, cfg())
	_, gerr = MeasureRaw(a, rawBytes(t, bad), cfg())
	if werr == nil || gerr == nil || werr.Error() != gerr.Error() {
		t.Fatalf("NaN pixel: legacy %v, raw %v", werr, gerr)
	}
}

// TestMeasureRawDeterministicAcrossArenas: results must not depend on arena
// reuse state (stale slab contents must never leak into a measurement).
func TestMeasureRawDeterministicAcrossArenas(t *testing.T) {
	raw := rawBytes(t, renderSersic(64, 64, 32, 32, 50000, 5, 4, 0.8, 0.5, 100, 2, 11))
	fresh := &arena.Arena{}
	want, err := MeasureRaw(fresh, raw, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if !want.Valid {
		t.Fatalf("reference measurement invalid: %s", want.Err)
	}
	dirty := arena.Get()
	defer arena.Put(dirty)
	// Soil the arena with unrelated garbage first.
	g := dirty.Floats(64 * 64 * 2)
	rng := rand.New(rand.NewSource(99))
	for i := range g {
		g[i] = rng.NormFloat64() * 1e9
	}
	dirty.Reset()
	got, err := MeasureRaw(dirty, raw, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("params depend on arena history:\nfresh: %+v\ndirty: %+v", want, got)
	}
}

// TestEstimateBackgroundInMatchesHeap pins the arena variant to the
// scratch-pool one.
func TestEstimateBackgroundInMatchesHeap(t *testing.T) {
	im := renderSersic(48, 48, 24, 24, 900, 4, 2, 1, 0, 77, 3, 5)
	bg1, s1 := EstimateBackground(im)
	a := arena.Get()
	defer arena.Put(a)
	bg2, s2 := EstimateBackgroundIn(a, im)
	if bg1 != bg2 || s1 != s2 {
		t.Fatalf("background diverged: heap (%v, %v), arena (%v, %v)", bg1, s1, bg2, s2)
	}
}
