package morphology

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fits"
)

// TestAsymmetryFluxScaleInvariance: A = Σ|I-I180| / 2Σ|I| is scale free, so
// multiplying the galaxy flux (not the sky) by a constant must leave the
// asymmetry essentially unchanged.
func TestAsymmetryFluxScaleInvariance(t *testing.T) {
	base := renderAsymmetric(64, 64, 31)
	cfg := cfg()
	p1, err := Measure(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []float64{2, 5, 10} {
		scaled := fits.NewImage(64, 64, -64)
		for i, v := range base.Data {
			// Scale the signal above the (known) injected background of 100.
			scaled.Data[i] = (v-100)*k + 100
		}
		p2, err := Measure(scaled, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p1.Asymmetry-p2.Asymmetry) > 0.02 {
			t.Errorf("k=%v: A changed %v -> %v", k, p1.Asymmetry, p2.Asymmetry)
		}
		if math.Abs(p1.Concentration-p2.Concentration) > 0.15 {
			t.Errorf("k=%v: C changed %v -> %v", k, p1.Concentration, p2.Concentration)
		}
	}
}

// TestBackgroundShiftInvariance: adding a constant sky level must not change
// any morphology parameter (the background estimator removes it).
func TestBackgroundShiftInvariance(t *testing.T) {
	base := renderSersic(64, 64, 32, 32, 2000, 4, 1.5, 0.9, 0.7, 100, 2, 33)
	cfg := cfg()
	p1, err := Measure(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, shift := range []float64{50, 500, 5000} {
		shifted := fits.NewImage(64, 64, -64)
		for i, v := range base.Data {
			shifted.Data[i] = v + shift
		}
		p2, err := Measure(shifted, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p1.Asymmetry-p2.Asymmetry) > 0.01 ||
			math.Abs(p1.Concentration-p2.Concentration) > 0.05 ||
			math.Abs(p1.SurfaceBrightness-p2.SurfaceBrightness) > 0.05 {
			t.Errorf("shift %v: params moved: A %v->%v C %v->%v SB %v->%v",
				shift, p1.Asymmetry, p2.Asymmetry, p1.Concentration, p2.Concentration,
				p1.SurfaceBrightness, p2.SurfaceBrightness)
		}
	}
}

// TestTranslationInvariance: moving the galaxy within the frame must not
// change the measured parameters appreciably.
func TestTranslationInvariance(t *testing.T) {
	cfg := cfg()
	ref, err := Measure(renderSersic(96, 96, 48, 48, 2000, 4, 1.5, 1, 0, 100, 2, 35), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range [][2]float64{{-10, 5}, {8, -12}, {15, 15}} {
		im := renderSersic(96, 96, 48+off[0], 48+off[1], 2000, 4, 1.5, 1, 0, 100, 2, 35)
		p, err := Measure(im, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p.Asymmetry-ref.Asymmetry) > 0.03 {
			t.Errorf("offset %v: A %v vs %v", off, p.Asymmetry, ref.Asymmetry)
		}
		if math.Abs(p.Concentration-ref.Concentration) > 0.25 {
			t.Errorf("offset %v: C %v vs %v", off, p.Concentration, ref.Concentration)
		}
	}
}

// TestGrowthCurveOrderProperty: r20 <= r80 <= aperture for any valid
// measurement of random smooth blobs.
func TestGrowthCurveOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	f := func() bool {
		re := 2 + rng.Float64()*6
		n := 0.8 + rng.Float64()*3
		q := 0.4 + rng.Float64()*0.6
		im := renderSersic(64, 64, 32, 32, 3000, re, n, q, rng.Float64()*3, 100, 2, rng.Int63())
		p, err := Measure(im, cfg())
		if err != nil {
			return true // non-detection is acceptable, mis-ordering is not
		}
		return p.R20 <= p.R80+1e-9 && p.R80 <= p.ApertureRadius+1e-9 && p.Asymmetry >= 0
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestCosmologyDistanceOrdering: for any z > 0, D_A < D_C < D_L.
func TestCosmologyDistanceOrdering(t *testing.T) {
	c := paperCosmology()
	f := func(zRaw float64) bool {
		z := math.Abs(math.Mod(zRaw, 5))
		if z == 0 {
			return true
		}
		da := c.AngularDiameterDistance(z)
		dc := c.ComovingDistance(z)
		dl := c.LuminosityDistance(z)
		return da < dc && dc < dl
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
