package morphology

import (
	"math"
	"testing"
	"testing/quick"
)

// paperCosmology is the parameter set from the paper's example derivation:
// Ho=100, om=0.3, flat=1.
func paperCosmology() Cosmology { return Cosmology{H0: 100, OmegaM: 0.3, Flat: true} }

func TestValidate(t *testing.T) {
	if err := paperCosmology().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Cosmology{H0: 0, OmegaM: 0.3}).Validate(); err == nil {
		t.Error("H0=0 must be invalid")
	}
	if err := (Cosmology{H0: 70, OmegaM: -1}).Validate(); err == nil {
		t.Error("negative OmegaM must be invalid")
	}
}

func TestZeroRedshift(t *testing.T) {
	c := paperCosmology()
	if c.ComovingDistance(0) != 0 || c.AngularDiameterDistance(0) != 0 || c.LuminosityDistance(0) != 0 {
		t.Error("all distances must vanish at z=0")
	}
}

func TestLowRedshiftHubbleLaw(t *testing.T) {
	// At z<<1, D ≈ cz/H0 regardless of densities.
	c := paperCosmology()
	z := 0.001
	want := speedOfLight * z / c.H0
	got := c.ComovingDistance(z)
	if math.Abs(got-want)/want > 0.01 {
		t.Errorf("D_C(%v) = %v, want ~%v", z, got, want)
	}
}

func TestKnownLCDMValue(t *testing.T) {
	// For H0=70, Om=0.3 flat, D_C(1) ≈ 3303 Mpc (standard value).
	c := Cosmology{H0: 70, OmegaM: 0.3, Flat: true}
	got := c.ComovingDistance(1)
	if math.Abs(got-3303) > 15 {
		t.Errorf("D_C(1) = %v Mpc, want ~3303", got)
	}
	// D_L = (1+z)·D_M, D_A = D_M/(1+z) in flat space.
	if dl := c.LuminosityDistance(1); math.Abs(dl-2*got) > 1 {
		t.Errorf("D_L(1) = %v, want %v", dl, 2*got)
	}
	if da := c.AngularDiameterDistance(1); math.Abs(da-got/2) > 1 {
		t.Errorf("D_A(1) = %v, want %v", da, got/2)
	}
}

func TestEinsteinDeSitterClosedForm(t *testing.T) {
	// For Om=1 flat (EdS), D_C(z) = 2(c/H0)(1 - 1/sqrt(1+z)).
	c := Cosmology{H0: 70, OmegaM: 1, Flat: true}
	for _, z := range []float64{0.1, 0.5, 1, 2} {
		want := 2 * (speedOfLight / 70) * (1 - 1/math.Sqrt(1+z))
		got := c.ComovingDistance(z)
		if math.Abs(got-want)/want > 1e-4 {
			t.Errorf("EdS D_C(%v) = %v, want %v", z, got, want)
		}
	}
}

func TestOpenUniverseCurvature(t *testing.T) {
	// Open universe (Om=0.3, no lambda): transverse distance exceeds the
	// line-of-sight comoving distance (sinh correction > identity).
	c := Cosmology{H0: 100, OmegaM: 0.3, Flat: false}
	dc := c.ComovingDistance(1)
	dm := c.transverseComovingDistance(1)
	if dm <= dc {
		t.Errorf("open universe D_M=%v should exceed D_C=%v", dm, dc)
	}
}

func TestDistancesMonotonic(t *testing.T) {
	c := paperCosmology()
	f := func(z1, z2 float64) bool {
		z1 = math.Abs(math.Mod(z1, 5))
		z2 = math.Abs(math.Mod(z2, 5))
		if z1 > z2 {
			z1, z2 = z2, z1
		}
		if z1 == z2 {
			return true
		}
		return c.ComovingDistance(z1) < c.ComovingDistance(z2) &&
			c.LuminosityDistance(z1) < c.LuminosityDistance(z2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDistanceModulus(t *testing.T) {
	c := paperCosmology()
	// Coma-like z=0.023: D_L ≈ 70 Mpc for H0=100 → mu ≈ 34.2.
	mu := c.DistanceModulus(0.023)
	if mu < 33.5 || mu > 35 {
		t.Errorf("mu(0.023) = %v, want ~34.2", mu)
	}
	if c.DistanceModulus(0) != 0 {
		t.Error("mu(0) must be 0")
	}
}

func TestKpcPerArcsec(t *testing.T) {
	// For H0=100 Om=0.3 flat at z=0.0279 (the paper's example galaxy),
	// D_A ≈ 80 Mpc → ~0.39 kpc/arcsec.
	c := paperCosmology()
	got := c.KpcPerArcsec(0.0279)
	if got < 0.3 || got > 0.5 {
		t.Errorf("kpc/arcsec at z=0.0279 = %v, want ~0.39", got)
	}
}

func BenchmarkComovingDistance(b *testing.B) {
	c := paperCosmology()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = c.ComovingDistance(0.5)
	}
}
