// Package morphology computes the three galaxy-morphology parameters the
// paper's science prototype derives from each galaxy cutout image (§2,
// following Conselice 2003):
//
//   - Average surface brightness — detected light per unit sky area.
//   - Concentration index — C = 5·log10(r80/r20), separating uniform disks
//     from core-dominated ellipticals.
//   - Asymmetry index — the normalized residual between the image and its
//     180°-rotation, separating spirals (asymmetric) from ellipticals
//     (symmetric).
//
// Measure is the computational payload of the Chimera transformation
//
//	TR galMorph(in redshift, in pixScale, in zeroPoint, in Ho, in om,
//	            in flat, in image, out galMorph)
//
// and Config mirrors that argument list. Failures (blank or corrupted
// cutouts) are reported through Params.Valid rather than aborting, matching
// the prototype's fault-tolerance design (§4.3.1 item 4).
package morphology

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sync"

	"repro/internal/arena"
	"repro/internal/fits"
)

// scratch holds the reusable per-measurement buffers. Measure runs inside
// parallel leaf jobs when the compute service is configured with workers, so
// the buffers live in a sync.Pool rather than package-level slices; each
// in-flight measurement owns one scratch exclusively.
//
// The request arena (MeasureRaw) extends rather than replaces this pool:
// float buffers whose size is known up front come from the arena, while the
// growth-curve pixel buffer — a typed slice with its own grow policy —
// stays here.
type scratch struct {
	sub  []float64 // background-subtracted working copy
	px   []gcPixel // growth-curve pixels
	vals []float64 // background border samples
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// growFloats returns s resized to n, reallocating only when capacity lacks.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// pixels returns the growth-curve buffer, empty, with capacity for n
// samples. The grow-on-demand make lives here — outside the annotated hot
// path — so allocation policy stays in one reviewed place.
func (sc *scratch) pixels(n int) []gcPixel {
	if cap(sc.px) < n {
		sc.px = make([]gcPixel, 0, n)
	}
	return sc.px[:0]
}

// Config carries the per-galaxy inputs of the galMorph transformation.
type Config struct {
	Redshift    float64   // galaxy redshift (z)
	PixScaleDeg float64   // pixel scale, degrees/pixel (paper: 2.83e-4)
	ZeroPoint   float64   // photometric zero point, mag
	Cosmology   Cosmology // Ho, om, flat
}

// DefaultConfig returns the parameter values the paper's example derivation
// uses: Ho=100, om=0.3, flat=1.
func DefaultConfig(redshift float64) Config {
	return Config{
		Redshift:    redshift,
		PixScaleDeg: 2.831933107035062e-4,
		ZeroPoint:   0,
		Cosmology:   Cosmology{H0: 100, OmegaM: 0.3, Flat: true},
	}
}

// Params is the morphology measurement for one galaxy.
type Params struct {
	// The paper's three morphology parameters.
	SurfaceBrightness float64 // mean surface brightness, mag/arcsec²
	Concentration     float64 // C = 5 log10(r80/r20)
	Asymmetry         float64 // A in [0, ~1]

	// Supporting measurements.
	TotalFlux      float64 // background-subtracted flux in the aperture
	Background     float64 // estimated sky level, counts/pixel
	NoiseSigma     float64 // estimated sky noise, counts/pixel
	CentroidX      float64 // flux-weighted center, 0-based pixels
	CentroidY      float64
	ApertureRadius float64 // analysis aperture, pixels
	R20, R80       float64 // growth-curve radii, pixels
	AbsoluteMag    float64 // total magnitude corrected by distance modulus
	PhysicalR80Kpc float64 // r80 converted to kpc at the galaxy redshift
	SNR            float64 // total flux / noise in aperture

	// Fault-tolerance flag (§4.3.1 item 4): false means the computation
	// failed and Err says why; numeric fields are then meaningless.
	Valid bool
	Err   string
}

// Measurement failure reasons.
var (
	ErrEmptyImage = errors.New("morphology: empty image")
	ErrNoSignal   = errors.New("morphology: no significant flux above background")
	ErrTooSmall   = errors.New("morphology: image too small")
)

// minImageDim is the smallest cutout side Measure accepts.
const minImageDim = 8

// detectionSNR is the minimum aperture signal-to-noise for a measurement to
// count as a detection.
const detectionSNR = 5

// Measure computes the morphology parameters of the galaxy in im. It never
// panics on bad pixel data; unrecoverable inputs produce a Params with
// Valid=false and a non-nil error describing the failure.
func Measure(im *fits.Image, cfg Config) (Params, error) {
	if im == nil || len(im.Data) == 0 {
		return invalid(ErrEmptyImage), ErrEmptyImage
	}
	if im.Nx < minImageDim || im.Ny < minImageDim {
		err := fmt.Errorf("%w: %dx%d (min %d)", ErrTooSmall, im.Nx, im.Ny, minImageDim)
		return invalid(err), err
	}
	for _, v := range im.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			err := errors.New("morphology: non-finite pixel values")
			return invalid(err), err
		}
	}

	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)

	sc.vals = growFloats(sc.vals, borderSamples(im.Nx, im.Ny))
	bg, sigma := estimateBackground(im.Data, im.Nx, im.Ny, sc.vals)

	// Background-subtracted working copy — im.Data belongs to the caller
	// and must stay physical.
	sub := growFloats(sc.sub, len(im.Data))
	sc.sub = sub
	for i, v := range im.Data {
		sub[i] = v - bg
	}
	return measureSub(sub, im.Nx, im.Ny, bg, sigma, cfg, sc)
}

// MeasureRaw measures the galaxy in an encoded FITS image without first
// materializing a decoded Image: the pixels stream from a zero-copy
// fits.View into an arena-backed buffer that is background-subtracted in
// place. Results and errors are identical to fits.Decode followed by
// Measure — the view produces bit-identical pixel values and the same
// error text on every stream Decode accepts — while the per-galaxy heap
// traffic drops to the handful of strings the header scan needs.
//
//nvo:hotpath
func MeasureRaw(a *arena.Arena, raw []byte, cfg Config) (Params, error) {
	v, err := fits.ParseView(raw)
	if err != nil {
		return invalid(err), err
	}
	if v.Nx < minImageDim || v.Ny < minImageDim {
		err := fmt.Errorf("%w: %dx%d (min %d)", ErrTooSmall, v.Nx, v.Ny, minImageDim)
		return invalid(err), err
	}
	data := v.ReadInto(a.Floats(v.NPix()))
	for _, val := range data {
		if math.IsNaN(val) || math.IsInf(val, 0) {
			err := errors.New("morphology: non-finite pixel values")
			return invalid(err), err
		}
	}

	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)

	bg, sigma := estimateBackground(data, v.Nx, v.Ny, a.Floats(borderSamples(v.Nx, v.Ny)))
	// The decoded buffer is private to this measurement: subtract in place
	// instead of copying. data[i] -= bg is the same IEEE operation as
	// Measure's sub[i] = v - bg, so the working pixels are bit-identical.
	for i := range data {
		data[i] -= bg
	}
	return measureSub(data, v.Nx, v.Ny, bg, sigma, cfg, sc)
}

// measureSub is the shared measurement core: sub holds background-
// subtracted pixels (which it may reorder or reuse but never grows), and
// the returned Params are a pure function of (sub, nx, ny, bg, sigma, cfg).
//
//nvo:hotpath
func measureSub(sub []float64, nx, ny int, bg, sigma float64, cfg Config, sc *scratch) (Params, error) {
	cx, cy, ok := centroid(sub, nx, ny, 2*sigma)
	if !ok {
		return invalid(ErrNoSignal), ErrNoSignal
	}

	r20, r80, total, rap := growthCurve(sub, nx, ny, cx, cy, sc)
	if total <= 0 || r80 <= 0 {
		return invalid(ErrNoSignal), ErrNoSignal
	}

	// Detection criterion: the aperture flux must be significant, or the
	// "galaxy" is just sky noise and the job should be flagged invalid
	// rather than emitting garbage numbers (§4.3.1 item 4).
	if sigma > 0 {
		nAp := float64(pixelsWithin(nx, ny, cx, cy, rap))
		if snr := total / (sigma * math.Sqrt(nAp)); snr < detectionSNR {
			return invalid(ErrNoSignal), ErrNoSignal
		}
	}

	p := Params{
		Background:     bg,
		NoiseSigma:     sigma,
		CentroidX:      cx,
		CentroidY:      cy,
		TotalFlux:      total,
		R20:            r20,
		R80:            r80,
		ApertureRadius: rap,
		Valid:          true,
	}

	// Concentration. Radii below half a pixel are unresolved; clamp both so
	// an unresolved source measures C = 0 rather than a spurious value.
	if r20 < 0.5 {
		r20 = 0.5
	}
	if r80 < r20 {
		r80 = r20
	}
	p.Concentration = 5 * math.Log10(r80/r20)

	// Asymmetry, minimized over a small grid of rotation centers.
	p.Asymmetry = asymmetry(sub, nx, ny, cx, cy, rap, sigma)

	// Average surface brightness within the aperture, mag/arcsec².
	pixArcsec := cfg.PixScaleDeg * 3600
	if pixArcsec <= 0 {
		pixArcsec = 1
	}
	nPix := float64(pixelsWithin(nx, ny, cx, cy, rap))
	areaArcsec2 := nPix * pixArcsec * pixArcsec
	p.SurfaceBrightness = cfg.ZeroPoint - 2.5*math.Log10(total/areaArcsec2)

	// Noise within the aperture and SNR.
	if sigma > 0 && nPix > 0 {
		p.SNR = total / (sigma * math.Sqrt(nPix))
	} else {
		p.SNR = math.Inf(1)
	}

	// Physical quantities, when a redshift and sane cosmology are supplied.
	if cfg.Redshift > 0 && cfg.Cosmology.Validate() == nil {
		apparentMag := cfg.ZeroPoint - 2.5*math.Log10(total)
		p.AbsoluteMag = apparentMag - cfg.Cosmology.DistanceModulus(cfg.Redshift)
		p.PhysicalR80Kpc = r80 * pixArcsec * cfg.Cosmology.KpcPerArcsec(cfg.Redshift)
	}
	return p, nil
}

func invalid(err error) Params {
	return Params{Valid: false, Err: err.Error()}
}

// EstimateBackground returns a sigma-clipped estimate of the sky level and
// noise from the image border (the galaxy is centered in an NVO cutout, so
// the border is sky). Exposed for tests and for the image simulator's
// calibration checks.
func EstimateBackground(im *fits.Image) (level, sigma float64) {
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)
	sc.vals = growFloats(sc.vals, borderSamples(im.Nx, im.Ny))
	return estimateBackground(im.Data, im.Nx, im.Ny, sc.vals)
}

// EstimateBackgroundIn is EstimateBackground drawing its border buffer
// from a request arena instead of the scratch pool — the variant for
// callers that already hold an arena on the hot path.
func EstimateBackgroundIn(a *arena.Arena, im *fits.Image) (level, sigma float64) {
	return estimateBackground(im.Data, im.Nx, im.Ny, a.Floats(borderSamples(im.Nx, im.Ny)))
}

// borderWidth is the sky-border width estimateBackground samples.
func borderWidth(nx, ny int) int {
	border := nx / 10
	if b2 := ny / 10; b2 < border {
		border = b2
	}
	if border < 2 {
		border = 2
	}
	return border
}

// borderSamples is the exact number of border pixels estimateBackground
// collects for an nx-by-ny image — callers size the vals buffer with it.
func borderSamples(nx, ny int) int {
	border := borderWidth(nx, ny)
	inner := 0
	if w, h := nx-2*border, ny-2*border; w > 0 && h > 0 {
		inner = w * h
	}
	return nx*ny - inner
}

// estimateBackground is EstimateBackground over a caller-supplied sample
// buffer, which must have capacity for borderSamples(nx, ny) values and is
// reordered in place by the clipping.
//
//nvo:hotpath
func estimateBackground(data []float64, nx, ny int, vals []float64) (level, sigma float64) {
	border := borderWidth(nx, ny)
	vals = vals[:0]
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			if x >= border && x < nx-border && y >= border && y < ny-border {
				continue
			}
			vals = append(vals, data[y*nx+x])
		}
	}
	return sigmaClip(vals, 3, 5)
}

// sigmaClip iteratively rejects outliers beyond k standard deviations and
// returns the surviving mean and standard deviation. It reorders vals in
// place (the caller's scratch buffer) instead of copying.
//
//nvo:hotpath
func sigmaClip(vals []float64, k float64, iters int) (mean, sd float64) {
	if len(vals) == 0 {
		return 0, 0
	}
	work := vals
	for it := 0; it < iters; it++ {
		mean, sd = meanStd(work)
		if sd == 0 {
			return mean, sd
		}
		kept := work[:0]
		for _, v := range work {
			if math.Abs(v-mean) <= k*sd {
				kept = append(kept, v)
			}
		}
		if len(kept) == len(work) || len(kept) < 8 {
			break
		}
		work = kept
	}
	return meanStd(work)
}

//nvo:hotpath
func meanStd(vals []float64) (mean, sd float64) {
	if len(vals) == 0 {
		return 0, 0
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	mean = sum / float64(len(vals))
	var ss float64
	for _, v := range vals {
		d := v - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(vals)))
}

// centroid returns the flux-weighted center of pixels above threshold,
// iterated once within a shrinking window for robustness against neighbors.
//
//nvo:hotpath
func centroid(sub []float64, nx, ny int, threshold float64) (cx, cy float64, ok bool) {
	cx, cy, ok = weightedCenter(sub, nx, ny, threshold, float64(nx+ny)) // whole image
	if !ok {
		return 0, 0, false
	}
	// Refine within a window of half the image size around the first pass.
	r := float64(min(nx, ny)) / 3
	if cx2, cy2, ok2 := weightedCenterAround(sub, nx, ny, threshold, cx, cy, r); ok2 {
		return cx2, cy2, true
	}
	return cx, cy, true
}

//nvo:hotpath
func weightedCenter(sub []float64, nx, ny int, threshold, _ float64) (float64, float64, bool) {
	var sw, sx, sy float64
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			v := sub[y*nx+x]
			if v > threshold {
				sw += v
				sx += v * float64(x)
				sy += v * float64(y)
			}
		}
	}
	if sw <= 0 {
		return 0, 0, false
	}
	return sx / sw, sy / sw, true
}

//nvo:hotpath
func weightedCenterAround(sub []float64, nx, ny int, threshold, cx, cy, r float64) (float64, float64, bool) {
	var sw, sx, sy float64
	r2 := r * r
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			dx := float64(x) - cx
			dy := float64(y) - cy
			if dx*dx+dy*dy > r2 {
				continue
			}
			v := sub[y*nx+x]
			if v > threshold {
				sw += v
				sx += v * float64(x)
				sy += v * float64(y)
			}
		}
	}
	if sw <= 0 {
		return 0, 0, false
	}
	return sx / sw, sy / sw, true
}

// gcPixel is one growth-curve sample: squared radius, value, and the flat
// pixel index as a deterministic sort tie-break.
type gcPixel struct {
	r2  float64
	v   float64
	idx int32
}

// growthCurve sorts pixels by radius about (cx, cy) and finds the radii
// enclosing 20% and 80% of the total flux, the total flux, and the analysis
// aperture (1.5·r80, clipped to the image). Pixels sort on squared radius —
// monotone in radius, no per-pixel Hypot — with the flat index as tie-break,
// so equal-radius pixels accumulate in a fixed raster order regardless of
// the sorting algorithm.
//
//nvo:hotpath
func growthCurve(sub []float64, nx, ny int, cx, cy float64, sc *scratch) (r20, r80, total, rap float64) {
	maxR := maxUsableRadius(nx, ny, cx, cy)
	maxR2 := maxR * maxR
	xlo, xhi, ylo, yhi := boundingBox(nx, ny, cx, cy, maxR)
	pixels := sc.pixels(nx * ny)
	for y := ylo; y <= yhi; y++ {
		dy := float64(y) - cy
		dy2 := dy * dy
		row := y * nx
		for x := xlo; x <= xhi; x++ {
			dx := float64(x) - cx
			r2 := dx*dx + dy2
			if r2 > maxR2 {
				continue
			}
			pixels = append(pixels, gcPixel{r2: r2, v: sub[row+x], idx: int32(row + x)})
		}
	}
	sc.px = pixels
	slices.SortFunc(pixels, func(a, b gcPixel) int {
		switch {
		case a.r2 < b.r2:
			return -1
		case a.r2 > b.r2:
			return 1
		}
		return int(a.idx) - int(b.idx)
	})

	// Signed sum: sky noise cancels instead of biasing the total upward,
	// which is what lets the SNR detection test reject blank cutouts.
	for _, p := range pixels {
		total += p.v
	}
	if total <= 0 {
		return 0, 0, 0, 0
	}
	var cum float64
	for _, p := range pixels {
		cum += p.v
		if r20 == 0 && cum >= 0.2*total {
			r20 = math.Sqrt(p.r2)
		}
		if r80 == 0 && cum >= 0.8*total {
			r80 = math.Sqrt(p.r2)
			break
		}
	}
	if r80 == 0 {
		// Noise dips kept the cumulative sum below 80% until the very edge.
		r80 = math.Sqrt(pixels[len(pixels)-1].r2)
	}
	rap = 1.5 * r80
	if rap > maxR {
		rap = maxR
	}
	if rap < 3 {
		rap = 3
	}
	return r20, r80, total, rap
}

// boundingBox clips the axis-aligned box enclosing the circle (cx, cy, r)
// to the image, so aperture loops skip rows and columns that cannot pass
// the radius test. Pixels inside the box still run the exact test, so the
// selected set — and the accumulation order — is unchanged.
//
//nvo:hotpath
func boundingBox(nx, ny int, cx, cy, r float64) (xlo, xhi, ylo, yhi int) {
	xlo = int(math.Ceil(cx - r))
	if xlo < 0 {
		xlo = 0
	}
	xhi = int(math.Floor(cx + r))
	if xhi > nx-1 {
		xhi = nx - 1
	}
	ylo = int(math.Ceil(cy - r))
	if ylo < 0 {
		ylo = 0
	}
	yhi = int(math.Floor(cy + r))
	if yhi > ny-1 {
		yhi = ny - 1
	}
	return xlo, xhi, ylo, yhi
}

// maxUsableRadius is the largest circle about (cx, cy) fully inside the image.
//
//nvo:hotpath
func maxUsableRadius(nx, ny int, cx, cy float64) float64 {
	r := cx
	if v := float64(nx-1) - cx; v < r {
		r = v
	}
	if cy < r {
		r = cy
	}
	if v := float64(ny-1) - cy; v < r {
		r = v
	}
	if r < 1 {
		r = 1
	}
	return r
}

//nvo:hotpath
func pixelsWithin(nx, ny int, cx, cy, r float64) int {
	n := 0
	r2 := r * r
	xlo, xhi, ylo, yhi := boundingBox(nx, ny, cx, cy, r)
	for y := ylo; y <= yhi; y++ {
		dy := float64(y) - cy
		dy2 := dy * dy
		for x := xlo; x <= xhi; x++ {
			dx := float64(x) - cx
			if dx*dx+dy2 <= r2 {
				n++
			}
		}
	}
	return n
}

// asymmetry computes A = min_c Σ|I − I180(c)| / (2 Σ|I|) over a 3×3 grid of
// rotation centers at half-pixel steps around the centroid, restricted to the
// analysis aperture. The minimization removes the spurious asymmetry a
// miscentered rotation introduces (Conselice 2003 §3). A noise term measured
// by rotating a pure-background annulus is subtracted.
//
//nvo:hotpath
func asymmetry(sub []float64, nx, ny int, cx, cy, rap, sigma float64) float64 {
	best := math.Inf(1)
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			a := asymmetryAt(sub, nx, ny, cx+0.5*float64(dx), cy+0.5*float64(dy), rap)
			if a < best {
				best = a
			}
		}
	}
	if math.IsInf(best, 1) {
		return 0
	}
	// First-order noise correction: each |I - I180| term accumulates
	// ~2σ/√(2π)·2 of pure noise per pixel pair; estimate it directly by
	// computing the same statistic on a sign-scrambled noise field is
	// overkill here, so subtract the analytic expectation.
	if sigma > 0 {
		var sumAbs float64
		n := 0
		r2 := rap * rap
		xlo, xhi, ylo, yhi := boundingBox(nx, ny, cx, cy, rap)
		for y := ylo; y <= yhi; y++ {
			dyp := float64(y) - cy
			dyp2 := dyp * dyp
			row := y * nx
			for x := xlo; x <= xhi; x++ {
				dxp := float64(x) - cx
				if dxp*dxp+dyp2 <= r2 {
					sumAbs += math.Abs(sub[row+x])
					n++
				}
			}
		}
		if sumAbs > 0 {
			noise := float64(n) * sigma * 2 / math.Sqrt(math.Pi) // E|N(0,σ)-N(0,σ)| = 2σ/√π
			best -= noise / (2 * sumAbs)
		}
	}
	if best < 0 {
		best = 0
	}
	return best
}

// asymmetryAt evaluates the asymmetry statistic for one rotation center.
//
// The 180° rotation maps (x, y) to (2cx − x, 2cy − y). Because x and y walk
// integer pixels, the fractional parts of the rotated coordinates are the
// constants frac(2cx) and frac(2cy): the four bilinear weights are fixed for
// the whole aperture, and the rotated sample's integer cell just walks
// backwards (floor(2cx) − x). That turns the inner loop's general bilinear
// lookup — float floor, bounds checks, weight products per pixel — into four
// indexed loads against precomputed weights.
//
//nvo:hotpath
func asymmetryAt(sub []float64, nx, ny int, cx, cy, rap float64) float64 {
	var num, den float64
	r2 := rap * rap
	tx := 2 * cx // exact: scaling by 2 does not round
	ty := 2 * cy

	// Integer x with the rotated coordinate in [0, nx-1]: rx = tx − x ≥ 0
	// ⟺ x ≤ floor(tx); rx ≤ nx−1 ⟺ x ≥ ceil(tx−(nx−1)). Likewise for y.
	rxMin := int(math.Ceil(tx - float64(nx-1)))
	rxMax := int(math.Floor(tx))
	ryMin := int(math.Ceil(ty - float64(ny-1)))
	ryMax := int(math.Floor(ty))

	// Constant bilinear weights: fx = frac(2cx), fy = frac(2cy).
	fx := tx - float64(rxMax)
	fy := ty - float64(ryMax)
	gx := 1 - fx
	gy := 1 - fy

	xlo, xhi, ylo, yhi := boundingBox(nx, ny, cx, cy, rap)
	for y := ylo; y <= yhi; y++ {
		dy := float64(y) - cy
		dy2 := dy * dy
		row := y * nx
		if y < ryMin || y > ryMax {
			continue // rotated row falls outside the image
		}
		ry0 := ryMax - y // floor(ty − y), since y is an integer
		ry1 := ry0 + 1
		if ry1 >= ny {
			ry1 = ny - 1 // fy is 0 here; the clamped sample has zero weight
		}
		rrow0 := ry0 * nx
		rrow1 := ry1 * nx
		for x := xlo; x <= xhi; x++ {
			dx := float64(x) - cx
			if dx*dx+dy2 > r2 {
				continue
			}
			if x < rxMin || x > rxMax {
				continue // rotated column falls outside the image
			}
			v := sub[row+x]
			rx0 := rxMax - x
			rx1 := rx0 + 1
			if rx1 >= nx {
				rx1 = nx - 1
			}
			rv := sub[rrow0+rx0]*gx*gy + sub[rrow0+rx1]*fx*gy +
				sub[rrow1+rx0]*gx*fy + sub[rrow1+rx1]*fx*fy
			num += math.Abs(v - rv)
			den += math.Abs(v)
		}
	}
	if den <= 0 {
		return math.Inf(1)
	}
	return num / (2 * den)
}

// bilinear samples the image at fractional coordinates; ok is false outside.
func bilinear(data []float64, nx, ny int, x, y float64) (float64, bool) {
	if x < 0 || y < 0 || x > float64(nx-1) || y > float64(ny-1) {
		return 0, false
	}
	x0 := int(x)
	y0 := int(y)
	x1 := x0 + 1
	y1 := y0 + 1
	if x1 >= nx {
		x1 = nx - 1
	}
	if y1 >= ny {
		y1 = ny - 1
	}
	fx := x - float64(x0)
	fy := y - float64(y0)
	v00 := data[y0*nx+x0]
	v10 := data[y0*nx+x1]
	v01 := data[y1*nx+x0]
	v11 := data[y1*nx+x1]
	return v00*(1-fx)*(1-fy) + v10*fx*(1-fy) + v01*(1-fx)*fy + v11*fx*fy, true
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
