package morphology

import (
	"math"
	"sync"
	"testing"

	"repro/internal/fits"
)

// TestMeasureRepeatIsBitIdentical guards the scratch-buffer reuse: pooled
// buffers must never leak state between measurements, so measuring the same
// image repeatedly — interleaved with measurements of other images, which
// share the pool — must reproduce every field bit-for-bit.
func TestMeasureRepeatIsBitIdentical(t *testing.T) {
	im := renderSersic(96, 96, 48, 48, 60000, 9, 4, 0.8, 0.4, 110, 3.5, 7)
	other := renderAsymmetric(64, 64, 9)

	ref, err := Measure(im, cfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := Measure(other, cfg()); err != nil {
			t.Fatal(err)
		}
		got, err := Measure(im, cfg())
		if err != nil {
			t.Fatal(err)
		}
		if got != ref {
			t.Fatalf("repeat %d: %+v != %+v", i, got, ref)
		}
	}
}

// TestMeasureConcurrentMatchesSerial runs many concurrent measurements (the
// parallel leaf-job situation) and checks each against its serial result.
func TestMeasureConcurrentMatchesSerial(t *testing.T) {
	type tcase struct {
		im  *fits.Image
		ref Params
	}
	imgs := []*tcase{
		{im: renderSersic(80, 80, 40, 40, 50000, 8, 4, 0.9, 0, 100, 3, 1)},
		{im: renderSersic(96, 96, 47.3, 48.6, 70000, 12, 1, 0.7, 0.8, 90, 2, 2)},
		{im: renderAsymmetric(72, 72, 3)},
		{im: renderSersic(64, 64, 32, 32, 40000, 6, 2, 1, 0, 120, 4, 4)},
	}
	for _, c := range imgs {
		p, err := Measure(c.im, cfg())
		if err != nil {
			t.Fatal(err)
		}
		c.ref = p
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				c := imgs[(g+i)%len(imgs)]
				p, err := Measure(c.im, cfg())
				if err != nil || p != c.ref {
					t.Errorf("concurrent measurement diverged: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestAsymmetryIndexingMatchesBilinear pins the precomputed rotation
// indexing to the reference bilinear sampler: for integer pixels the
// fractional parts of the rotated coordinates are constant, so the fast
// path must agree bit-for-bit with the general one.
func TestAsymmetryIndexingMatchesBilinear(t *testing.T) {
	im := renderAsymmetric(80, 80, 5)
	bg, _ := EstimateBackground(im)
	sub := make([]float64, len(im.Data))
	for i, v := range im.Data {
		sub[i] = v - bg
	}
	for _, center := range [][2]float64{
		{40, 40}, {39.5, 40.5}, {41.25, 38.75}, {3.5, 76.5}, {77.9, 2.1},
	} {
		cx, cy := center[0], center[1]
		for _, rap := range []float64{5, 17.5, 60} {
			got := asymmetryAt(sub, im.Nx, im.Ny, cx, cy, rap)
			want := asymmetryAtReference(sub, im.Nx, im.Ny, cx, cy, rap)
			if got != want && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
				t.Errorf("center (%g,%g) rap %g: fast %v != reference %v", cx, cy, rap, got, want)
			}
		}
	}
}

// asymmetryAtReference is the pre-optimization implementation: per-pixel
// rotated coordinates through the general bilinear sampler.
func asymmetryAtReference(sub []float64, nx, ny int, cx, cy, rap float64) float64 {
	var num, den float64
	r2 := rap * rap
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			dx := float64(x) - cx
			dy := float64(y) - cy
			if dx*dx+dy*dy > r2 {
				continue
			}
			v := sub[y*nx+x]
			rx := 2*cx - float64(x)
			ry := 2*cy - float64(y)
			rv, ok := bilinear(sub, nx, ny, rx, ry)
			if !ok {
				continue
			}
			num += math.Abs(v - rv)
			den += math.Abs(v)
		}
	}
	if den <= 0 {
		return math.Inf(1)
	}
	return num / (2 * den)
}

// TestBoundingBoxCoversCircle checks the loop-narrowing helper never
// excludes a pixel that passes the radius test.
func TestBoundingBoxCoversCircle(t *testing.T) {
	const nx, ny = 33, 29
	for _, c := range [][3]float64{
		{16, 14, 5}, {0.4, 0.4, 3}, {32.6, 28.6, 7}, {16.5, 14.5, 100}, {16, 14, 0.2},
	} {
		cx, cy, r := c[0], c[1], c[2]
		xlo, xhi, ylo, yhi := boundingBox(nx, ny, cx, cy, r)
		r2 := r * r
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				dx := float64(x) - cx
				dy := float64(y) - cy
				inside := dx*dx+dy*dy <= r2
				inBox := x >= xlo && x <= xhi && y >= ylo && y <= yhi
				if inside && !inBox {
					t.Fatalf("pixel (%d,%d) inside circle (%g,%g,%g) but outside box [%d,%d]x[%d,%d]",
						x, y, cx, cy, r, xlo, xhi, ylo, yhi)
				}
			}
		}
	}
}
