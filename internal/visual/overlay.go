package visual

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/fits"
	"repro/internal/votable"
	"repro/internal/wcs"
)

// backgroundLevels are the glyphs for increasing background surface
// brightness (the "X-ray emission shown in blue" of Figure 7, rendered as
// intensity shading).
var backgroundLevels = []rune{' ', '.', ':', '-', '=', '%'}

// SkyMapOverlay renders the full Figure 7 composition: the X-ray (or
// optical) image as an intensity-shaded background, sampled through its own
// WCS, with the measured galaxies overprinted by asymmetry class. The
// background image must carry a TAN WCS.
func SkyMapOverlay(bg *fits.Image, t *votable.Table, center wcs.SkyCoord,
	radiusDeg float64, w, h int) (string, error) {
	if t.ColumnIndex("ra") < 0 || t.ColumnIndex("dec") < 0 ||
		t.ColumnIndex("asymmetry") < 0 || t.ColumnIndex("valid") < 0 {
		return "", ErrBadTable
	}
	if w < 8 || h < 4 {
		return "", errors.New("visual: map too small")
	}
	proj, ok := bg.WCS()
	if !ok {
		return "", errors.New("visual: background image has no WCS")
	}

	// Quantile thresholds over the background pixel values give robust
	// shading regardless of the image's dynamic range.
	thresholds := quantiles(bg.Data, len(backgroundLevels)-1)

	grid := make([][]rune, h)
	cosDec := math.Cos(center.Dec * wcs.Deg2Rad)
	for y := 0; y < h; y++ {
		grid[y] = make([]rune, w)
		for x := 0; x < w; x++ {
			// Cell center -> sky -> background pixel.
			dx := (0.5 - (float64(x)+0.5)/float64(w)) * 2 * radiusDeg / cosDec
			dy := (0.5 - (float64(y)+0.5)/float64(h)) * 2 * radiusDeg
			sky := wcs.New(center.RA+dx, center.Dec+dy)
			px, py, inFront := proj.SkyToPixel(sky)
			glyph := backgroundLevels[0]
			if inFront {
				v := bg.At(int(px-1), int(py-1)) // WCS pixels are 1-based
				glyph = backgroundLevels[levelOf(v, thresholds)]
			}
			grid[y][x] = glyph
		}
	}

	// Overprint the galaxies.
	for i := 0; i < t.NumRows(); i++ {
		ra, ok1 := t.Float(i, "ra")
		dec, ok2 := t.Float(i, "dec")
		if !ok1 || !ok2 {
			continue
		}
		dx := (ra - center.RA) * cosDec
		if dx > 180 {
			dx -= 360
		}
		if dx < -180 {
			dx += 360
		}
		dy := dec - center.Dec
		px := int((0.5 - dx/(2*radiusDeg)) * float64(w-1))
		py := int((0.5 - dy/(2*radiusDeg)) * float64(h-1))
		if px < 0 || px >= w || py < 0 || py >= h {
			continue
		}
		asym, _ := t.Float(i, "asymmetry")
		valid, _ := t.Bool(i, "valid")
		grid[py][px] = glyphFor(asym, valid)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "X-ray + morphology overlay, %.3f deg across, centered on %s\n",
		2*radiusDeg, center)
	b.WriteString("+" + strings.Repeat("-", w) + "+\n")
	for _, row := range grid {
		b.WriteString("|")
		b.WriteString(string(row))
		b.WriteString("|\n")
	}
	b.WriteString("+" + strings.Repeat("-", w) + "+\n")
	fmt.Fprintf(&b, "background shading: X-ray surface brightness; galaxies: %c A<0.05  %c<0.1  %c<0.2  %c>=0.2\n",
		GlyphEarly, GlyphMid, GlyphLate, GlyphVeryAsy)
	return b.String(), nil
}

// quantiles returns n ascending thresholds splitting vals into n+1 equal
// population bins.
func quantiles(vals []float64, n int) []float64 {
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	out := make([]float64, n)
	for i := 1; i <= n; i++ {
		idx := i * len(sorted) / (n + 1)
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		out[i-1] = sorted[idx]
	}
	return out
}

func levelOf(v float64, thresholds []float64) int {
	level := 0
	for _, th := range thresholds {
		if v >= th {
			level++
		}
	}
	return level
}
