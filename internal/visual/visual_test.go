package visual

import (
	"strings"
	"testing"

	"repro/internal/fits"
	"repro/internal/votable"
	"repro/internal/wcs"
)

func morphTable() *votable.Table {
	t := votable.NewTable("m",
		votable.Field{Name: "ra", Datatype: votable.TypeDouble},
		votable.Field{Name: "dec", Datatype: votable.TypeDouble},
		votable.Field{Name: "asymmetry", Datatype: votable.TypeDouble},
		votable.Field{Name: "valid", Datatype: votable.TypeBoolean},
	)
	_ = t.AppendRow("195.0", "28.0", "0.02", "T") // E at center
	_ = t.AppendRow("195.1", "28.1", "0.07", "T") // mid
	_ = t.AppendRow("195.2", "27.9", "0.15", "T") // spiral
	_ = t.AppendRow("194.8", "28.2", "0.30", "T") // very asymmetric
	_ = t.AppendRow("194.9", "27.8", "0.50", "F") // invalid
	_ = t.AppendRow("250.0", "-10.0", "0.1", "T") // off map
	_ = t.AppendRow("bogus", "28.0", "0.1", "T")  // unparsable: skipped
	return t
}

func TestSkyMap(t *testing.T) {
	tab := morphTable()
	m, err := SkyMap(tab, wcs.New(195, 28), 0.5, 40, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []string{"E", "o", "s", "*", "."} {
		if !strings.Contains(m, g) {
			t.Errorf("map missing glyph %q:\n%s", g, m)
		}
	}
	if !strings.Contains(m, "legend:") {
		t.Error("legend missing")
	}
	// The center glyph must be the elliptical: row h/2, middle column.
	lines := strings.Split(m, "\n")
	midLine := lines[1+10] // border + half of 20 rows
	if !strings.Contains(midLine, "E") {
		t.Errorf("center row lacks E glyph: %q", midLine)
	}
}

func TestSkyMapErrors(t *testing.T) {
	bad := votable.NewTable("b", votable.Field{Name: "x", Datatype: votable.TypeChar})
	if _, err := SkyMap(bad, wcs.New(0, 0), 1, 40, 20); err == nil {
		t.Error("missing columns must fail")
	}
	if _, err := SkyMap(morphTable(), wcs.New(0, 0), 1, 2, 2); err == nil {
		t.Error("tiny map must fail")
	}
}

func TestSkyMapRAWrap(t *testing.T) {
	tab := votable.NewTable("m",
		votable.Field{Name: "ra", Datatype: votable.TypeDouble},
		votable.Field{Name: "dec", Datatype: votable.TypeDouble},
		votable.Field{Name: "asymmetry", Datatype: votable.TypeDouble},
		votable.Field{Name: "valid", Datatype: votable.TypeBoolean},
	)
	_ = tab.AppendRow("359.9", "0", "0.02", "T")
	_ = tab.AppendRow("0.1", "0", "0.3", "T")
	m, err := SkyMap(tab, wcs.New(0, 0), 0.5, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m, "E") || !strings.Contains(m, "*") {
		t.Errorf("RA-wrap galaxies missing:\n%s", m)
	}
}

func TestScatterPlot(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{0, 1, 4, 9, 16}
	p, err := ScatterPlot(xs, ys, "radius", "asymmetry", 30, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p, "asymmetry vs radius") || !strings.Contains(p, "n=5") {
		t.Errorf("plot header:\n%s", p)
	}
	if !strings.Contains(p, ".") {
		t.Error("no points plotted")
	}
}

func TestScatterPlotOverplotting(t *testing.T) {
	xs := []float64{1, 1, 1, 1}
	ys := []float64{2, 2, 2, 2}
	p, err := ScatterPlot(xs, ys, "x", "y", 20, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p, "@") {
		t.Errorf("triple overplot should yield '@':\n%s", p)
	}
}

func TestScatterPlotErrors(t *testing.T) {
	if _, err := ScatterPlot(nil, nil, "x", "y", 30, 10); err == nil {
		t.Error("empty samples must fail")
	}
	if _, err := ScatterPlot([]float64{1}, []float64{1, 2}, "x", "y", 30, 10); err == nil {
		t.Error("length mismatch must fail")
	}
	if _, err := ScatterPlot([]float64{1}, []float64{1}, "x", "y", 2, 2); err == nil {
		t.Error("tiny plot must fail")
	}
}

func TestToCSV(t *testing.T) {
	tab := votable.NewTable("t",
		votable.Field{Name: "id", Datatype: votable.TypeChar},
		votable.Field{Name: "note", Datatype: votable.TypeChar},
	)
	_ = tab.AppendRow("a", `has,comma and "quote"`)
	csv := ToCSV(tab)
	want := "id,note\na,\"has,comma and \"\"quote\"\"\"\n"
	if csv != want {
		t.Errorf("csv = %q, want %q", csv, want)
	}
}

func TestToMirage(t *testing.T) {
	tab := votable.NewTable("t",
		votable.Field{Name: "id", Datatype: votable.TypeChar},
		votable.Field{Name: "surface brightness", Datatype: votable.TypeDouble},
	)
	_ = tab.AppendRow("a", "21.5")
	_ = tab.AppendRow("b", "")
	m := ToMirage(tab)
	lines := strings.Split(strings.TrimSpace(m), "\n")
	if lines[0] != "format id surface_brightness" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "a\t21.5" {
		t.Errorf("row 1 = %q", lines[1])
	}
	if lines[2] != "b\tNaN" {
		t.Errorf("empty cell must become NaN: %q", lines[2])
	}
}

func BenchmarkSkyMap(b *testing.B) {
	tab := morphTable()
	center := wcs.New(195, 28)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SkyMap(tab, center, 0.5, 72, 30); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSkyMapOverlay(t *testing.T) {
	// Synthesize an X-ray-like background with WCS and overlay galaxies.
	center := wcs.New(195, 28)
	bg := fits.NewImage(64, 64, -32)
	proj := wcs.NewTanProjection(center, 64, 64, 0.5/32) // 1 deg across
	bg.SetWCS(proj)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			dx := float64(x) - 31.5
			dy := float64(y) - 31.5
			bg.SetAt(x, y, 1000/(1+(dx*dx+dy*dy)/64))
		}
	}
	tab := morphTable()
	m, err := SkyMapOverlay(bg, tab, center, 0.5, 48, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Background shading: the central region must use a denser glyph than
	// the corners.
	if !strings.Contains(m, "%") {
		t.Errorf("no bright background shading:\n%s", m)
	}
	// Galaxies overprinted.
	if !strings.Contains(m, "E") || !strings.Contains(m, "*") {
		t.Errorf("galaxies missing from overlay:\n%s", m)
	}
	if !strings.Contains(m, "X-ray surface brightness") {
		t.Error("legend missing")
	}
}

func TestSkyMapOverlayErrors(t *testing.T) {
	center := wcs.New(0, 0)
	noWCS := fits.NewImage(16, 16, -32)
	if _, err := SkyMapOverlay(noWCS, morphTable(), center, 1, 40, 20); err == nil {
		t.Error("background without WCS must fail")
	}
	withWCS := fits.NewImage(16, 16, -32)
	withWCS.SetWCS(wcs.NewTanProjection(center, 16, 16, 0.001))
	bad := votable.NewTable("b", votable.Field{Name: "x", Datatype: votable.TypeChar})
	if _, err := SkyMapOverlay(withWCS, bad, center, 1, 40, 20); err == nil {
		t.Error("bad table must fail")
	}
	if _, err := SkyMapOverlay(withWCS, morphTable(), center, 1, 2, 2); err == nil {
		t.Error("tiny map must fail")
	}
}

func TestQuantiles(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	th := quantiles(vals, 4)
	if len(th) != 4 {
		t.Fatalf("thresholds = %v", th)
	}
	for i := 1; i < len(th); i++ {
		if th[i] < th[i-1] {
			t.Errorf("thresholds not ascending: %v", th)
		}
	}
	if levelOf(0, th) != 0 || levelOf(100, th) != 4 {
		t.Errorf("levelOf extremes wrong: %d, %d", levelOf(0, th), levelOf(100, th))
	}
}
