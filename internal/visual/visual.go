// Package visual stands in for the visualization tools the paper used on
// the returned VOTables — Aladin (sky overlay of the morphology parameters,
// Figure 7) and Mirage (scatter plots of parameter correlations). It renders
// ASCII sky maps and scatter plots for terminal output and exports tables to
// the CSV and tab-separated (Mirage-native) formats, the way the paper's
// XSL stylesheet converted VOTables for Mirage.
package visual

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/votable"
	"repro/internal/wcs"
)

// Glyphs for the asymmetry classes on the sky map, from most symmetric
// (ellipticals, concentrated in the core per Figure 7) to most asymmetric.
const (
	GlyphEarly   = 'E' // A < 0.05: elliptical-like
	GlyphMid     = 'o' // 0.05 <= A < 0.1
	GlyphLate    = 's' // 0.1 <= A < 0.2: spiral-like
	GlyphVeryAsy = '*' // A >= 0.2
	GlyphInvalid = '.'
)

// glyphFor classifies a galaxy's asymmetry.
func glyphFor(asym float64, valid bool) rune {
	switch {
	case !valid:
		return GlyphInvalid
	case asym < 0.05:
		return GlyphEarly
	case asym < 0.1:
		return GlyphMid
	case asym < 0.2:
		return GlyphLate
	default:
		return GlyphVeryAsy
	}
}

// ErrBadTable reports a table without the needed columns.
var ErrBadTable = errors.New("visual: table lacks ra/dec/asymmetry/valid columns")

// SkyMap renders the cluster's galaxies on a w×h character grid centered on
// center and spanning 2×radiusDeg on each axis, each galaxy drawn with its
// asymmetry-class glyph. It is the ASCII analog of Figure 7's Aladin overlay:
// 'E' glyphs crowd the center, 's'/'*' scatter outside.
func SkyMap(t *votable.Table, center wcs.SkyCoord, radiusDeg float64, w, h int) (string, error) {
	if t.ColumnIndex("ra") < 0 || t.ColumnIndex("dec") < 0 ||
		t.ColumnIndex("asymmetry") < 0 || t.ColumnIndex("valid") < 0 {
		return "", ErrBadTable
	}
	if w < 8 || h < 4 {
		return "", errors.New("visual: map too small")
	}
	grid := make([][]rune, h)
	for y := range grid {
		grid[y] = make([]rune, w)
		for x := range grid[y] {
			grid[y][x] = ' '
		}
	}
	cosDec := math.Cos(center.Dec * wcs.Deg2Rad)
	for i := 0; i < t.NumRows(); i++ {
		ra, ok1 := t.Float(i, "ra")
		dec, ok2 := t.Float(i, "dec")
		if !ok1 || !ok2 {
			continue
		}
		dx := (ra - center.RA) * cosDec // flat-sky offsets suffice at map scale
		if dx > 180 {
			dx -= 360
		}
		if dx < -180 {
			dx += 360
		}
		dy := dec - center.Dec
		// RA increases to the left on sky charts.
		px := int((0.5 - dx/(2*radiusDeg)) * float64(w-1))
		py := int((0.5 - dy/(2*radiusDeg)) * float64(h-1))
		if px < 0 || px >= w || py < 0 || py >= h {
			continue
		}
		asym, _ := t.Float(i, "asymmetry")
		valid, _ := t.Bool(i, "valid")
		grid[py][px] = glyphFor(asym, valid)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Sky map %.3f deg across, centered on %s\n", 2*radiusDeg, center)
	b.WriteString("+" + strings.Repeat("-", w) + "+\n")
	for _, row := range grid {
		b.WriteString("|")
		b.WriteString(string(row))
		b.WriteString("|\n")
	}
	b.WriteString("+" + strings.Repeat("-", w) + "+\n")
	fmt.Fprintf(&b, "legend: %c A<0.05  %c A<0.1  %c A<0.2  %c A>=0.2  %c invalid\n",
		GlyphEarly, GlyphMid, GlyphLate, GlyphVeryAsy, GlyphInvalid)
	return b.String(), nil
}

// ScatterPlot renders an ASCII scatter plot of y against x — the Mirage
// analog the paper used "to look for correlations between our morphology
// parameters and other galaxy characteristics".
func ScatterPlot(xs, ys []float64, xlabel, ylabel string, w, h int) (string, error) {
	if len(xs) != len(ys) || len(xs) == 0 {
		return "", errors.New("visual: need equal-length non-empty samples")
	}
	if w < 10 || h < 5 {
		return "", errors.New("visual: plot too small")
	}
	xmin, xmax := minMax(xs)
	ymin, ymax := minMax(ys)
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]rune, h)
	for y := range grid {
		grid[y] = make([]rune, w)
		for x := range grid[y] {
			grid[y][x] = ' '
		}
	}
	for i := range xs {
		px := int((xs[i] - xmin) / (xmax - xmin) * float64(w-1))
		py := int((1 - (ys[i]-ymin)/(ymax-ymin)) * float64(h-1))
		switch grid[py][px] {
		case ' ':
			grid[py][px] = '.'
		case '.':
			grid[py][px] = 'o'
		default:
			grid[py][px] = '@'
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s vs %s  (x: %.4g..%.4g, y: %.4g..%.4g, n=%d)\n",
		ylabel, xlabel, xmin, xmax, ymin, ymax, len(xs))
	for _, row := range grid {
		b.WriteString("|")
		b.WriteString(string(row))
		b.WriteString("\n")
	}
	b.WriteString("+" + strings.Repeat("-", w) + "> " + xlabel + "\n")
	return b.String(), nil
}

func minMax(v []float64) (lo, hi float64) {
	lo, hi = v[0], v[0]
	for _, x := range v {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// ToCSV renders a table as RFC-4180-style CSV.
func ToCSV(t *votable.Table) string {
	var b strings.Builder
	for i, f := range t.Fields {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(csvEscape(f.Name))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvEscape(cell))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// ToMirage renders a table in the tab-separated format IBM Mirage ingests
// (a "format" header line naming the columns, then one row per line) —
// what the paper's XSL stylesheet produced.
func ToMirage(t *votable.Table) string {
	var b strings.Builder
	b.WriteString("format ")
	for i, f := range t.Fields {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(strings.ReplaceAll(f.Name, " ", "_"))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteByte('\t')
			}
			if cell == "" {
				cell = "NaN" // Mirage needs a placeholder in numeric columns
			}
			b.WriteString(strings.ReplaceAll(cell, "\t", " "))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
