package condor

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/faults"
)

func sim(t testing.TB, pools ...Pool) *Simulator {
	t.Helper()
	if len(pools) == 0 {
		pools = []Pool{{Name: "usc", Slots: 2}, {Name: "wisc", Slots: 4}, {Name: "fnal", Slots: 2}}
	}
	s, err := NewSimulator(pools...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSimulatorValidation(t *testing.T) {
	if _, err := NewSimulator(); err == nil {
		t.Error("no pools must fail")
	}
	if _, err := NewSimulator(Pool{Name: "", Slots: 1}); err == nil {
		t.Error("unnamed pool must fail")
	}
	if _, err := NewSimulator(Pool{Name: "a", Slots: 0}); err == nil {
		t.Error("zero slots must fail")
	}
	if _, err := NewSimulator(Pool{Name: "a", Slots: 1}, Pool{Name: "a", Slots: 1}); err == nil {
		t.Error("duplicate pool must fail")
	}
}

func TestSubmitValidation(t *testing.T) {
	s := sim(t)
	if err := s.Submit(Task{ID: "", Cost: time.Second}); err == nil {
		t.Error("empty id must fail")
	}
	if err := s.Submit(Task{ID: "x", Cost: -1}); err == nil {
		t.Error("negative cost must fail")
	}
	if err := s.Submit(Task{ID: "x", Site: "moon"}); err == nil {
		t.Error("unknown pool must fail")
	}
	if err := s.Submit(Task{ID: "x", Cost: time.Second}); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(Task{ID: "x", Cost: time.Second}); err == nil {
		t.Error("duplicate in-flight id must fail")
	}
}

func TestSingleTaskLifecycle(t *testing.T) {
	s := sim(t)
	ran := false
	if err := s.Submit(Task{ID: "j1", Cost: 4 * time.Second, Run: func() error { ran = true; return nil }}); err != nil {
		t.Fatal(err)
	}
	if s.Idle() {
		t.Error("not idle with a running task")
	}
	cs, ok := s.Step()
	if !ok || len(cs) != 1 {
		t.Fatalf("Step = %v, %v", cs, ok)
	}
	c := cs[0]
	if c.TaskID != "j1" || c.Start != 0 || c.End != 4*time.Second || c.Err != nil {
		t.Errorf("completion = %+v", c)
	}
	if !ran {
		t.Error("Run not executed")
	}
	if s.Now() != 4*time.Second {
		t.Errorf("Now = %v", s.Now())
	}
	if !s.Idle() {
		t.Error("must be idle after drain")
	}
	st := s.Stats()
	if st.Submitted != 1 || st.Completed != 1 || st.Failed != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.BusyTime[c.Site] != 4*time.Second {
		t.Errorf("busy time = %v", st.BusyTime)
	}
}

func TestPinnedSiteAndSpeed(t *testing.T) {
	s := sim(t, Pool{Name: "slow", Slots: 1, Speed: 1}, Pool{Name: "fast", Slots: 1, Speed: 2})
	_ = s.Submit(Task{ID: "a", Site: "fast", Cost: 10 * time.Second})
	cs, _ := s.Step()
	if cs[0].Site != "fast" || cs[0].End != 5*time.Second {
		t.Errorf("fast pool completion = %+v", cs[0])
	}
}

func TestQueueingWhenSaturated(t *testing.T) {
	s := sim(t, Pool{Name: "p", Slots: 1})
	_ = s.Submit(Task{ID: "a", Cost: time.Second})
	_ = s.Submit(Task{ID: "b", Cost: time.Second})
	if s.QueueLen() != 1 || s.RunningLen() != 1 {
		t.Fatalf("queue=%d running=%d", s.QueueLen(), s.RunningLen())
	}
	cs, _ := s.Step()
	if cs[0].TaskID != "a" {
		t.Errorf("first completion = %v", cs[0].TaskID)
	}
	cs, _ = s.Step()
	if cs[0].TaskID != "b" || cs[0].Start != time.Second || cs[0].End != 2*time.Second {
		t.Errorf("queued task completion = %+v", cs[0])
	}
}

func TestMatchmakingPrefersFreestPool(t *testing.T) {
	s := sim(t, Pool{Name: "small", Slots: 1}, Pool{Name: "big", Slots: 8})
	for i := 0; i < 4; i++ {
		_ = s.Submit(Task{ID: fmt.Sprintf("t%d", i), Cost: time.Second})
	}
	if s.BusySlots("big") < 3 {
		t.Errorf("big pool busy = %d, want most of the work", s.BusySlots("big"))
	}
}

func TestMakespanParallelism(t *testing.T) {
	// 8 unit tasks on 4 slots -> makespan 2 units.
	s := sim(t, Pool{Name: "p", Slots: 4})
	for i := 0; i < 8; i++ {
		_ = s.Submit(Task{ID: fmt.Sprintf("t%d", i), Cost: time.Minute})
	}
	all := s.Drain()
	if len(all) != 8 {
		t.Fatalf("completions = %d", len(all))
	}
	if s.Now() != 2*time.Minute {
		t.Errorf("makespan = %v, want 2m", s.Now())
	}
}

func TestFailedRun(t *testing.T) {
	s := sim(t)
	boom := errors.New("boom")
	_ = s.Submit(Task{ID: "bad", Cost: time.Second, Run: func() error { return boom }})
	cs, _ := s.Step()
	if cs[0].Err == nil {
		t.Error("error lost")
	}
	st := s.Stats()
	if st.Failed != 1 || st.Completed != 0 {
		t.Errorf("stats = %+v", st)
	}
	// The id is reusable after completion (retries resubmit it).
	if err := s.Submit(Task{ID: "bad", Cost: time.Second}); err != nil {
		t.Errorf("resubmit after failure: %v", err)
	}
}

func TestStarvedPinnedTask(t *testing.T) {
	s := sim(t, Pool{Name: "p", Slots: 1}, Pool{Name: "q", Slots: 1})
	_ = s.Submit(Task{ID: "long", Site: "p", Cost: time.Hour})
	_ = s.Submit(Task{ID: "pinned", Site: "p", Cost: time.Second})
	// q is idle but "pinned" must wait for p.
	if s.BusySlots("q") != 0 {
		t.Error("pinned task must not run on q")
	}
	cs, _ := s.Step()
	if cs[0].TaskID != "long" {
		t.Errorf("completion order wrong: %v", cs[0].TaskID)
	}
	cs, _ = s.Step()
	if cs[0].TaskID != "pinned" || cs[0].Start != time.Hour {
		t.Errorf("pinned completion = %+v", cs[0])
	}
}

func TestStepOnIdle(t *testing.T) {
	s := sim(t)
	if _, ok := s.Step(); ok {
		t.Error("Step on idle simulator must report !ok")
	}
}

func TestDeterministicCompletionOrder(t *testing.T) {
	run := func() []string {
		s := sim(t, Pool{Name: "p", Slots: 4})
		for i := 0; i < 4; i++ {
			_ = s.Submit(Task{ID: fmt.Sprintf("t%d", i), Cost: time.Second})
		}
		var order []string
		for _, c := range s.Drain() {
			order = append(order, c.TaskID)
		}
		return order
	}
	a := run()
	b := run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order differs: %v vs %v", a, b)
		}
	}
	// Simultaneous completions arrive in submission order.
	for i, id := range a {
		if id != fmt.Sprintf("t%d", i) {
			t.Errorf("order = %v", a)
			break
		}
	}
}

func TestZeroCostTask(t *testing.T) {
	s := sim(t)
	_ = s.Submit(Task{ID: "instant", Cost: 0})
	cs, ok := s.Step()
	if !ok || cs[0].End != 0 {
		t.Errorf("zero-cost completion = %+v", cs)
	}
}

func TestPoolsAccessors(t *testing.T) {
	s := sim(t)
	p := s.Pools()
	if len(p) != 3 || p[0] != "fnal" || p[1] != "usc" || p[2] != "wisc" {
		t.Errorf("pools = %v", p)
	}
	if s.BusySlots("moon") != 0 {
		t.Error("unknown pool busy slots must be 0")
	}
}

func BenchmarkCampaign1152Jobs(b *testing.B) {
	// The paper's full campaign: 1152 jobs across three pools.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := NewSimulator(
			Pool{Name: "usc", Slots: 20},
			Pool{Name: "wisc", Slots: 30},
			Pool{Name: "fnal", Slots: 20},
		)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 1152; j++ {
			if err := s.Submit(Task{ID: fmt.Sprintf("j%d", j), Cost: time.Duration(1+j%7) * time.Second}); err != nil {
				b.Fatal(err)
			}
		}
		if got := len(s.Drain()); got != 1152 {
			b.Fatalf("completions = %d", got)
		}
	}
}

func TestExecFaultInjection(t *testing.T) {
	s := sim(t, Pool{Name: "usc", Slots: 1})
	ran := false
	s.SetInjector(faults.New(1,
		faults.Rule{Name: OpExec, Site: "usc", Key: "j1", Kind: faults.KindTransient, Until: 1},
	))
	if err := s.Submit(Task{ID: "j1", Site: "usc", Cost: time.Second,
		Run: func() error { ran = true; return nil }}); err != nil {
		t.Fatal(err)
	}
	cs, ok := s.Step()
	if !ok || len(cs) != 1 {
		t.Fatalf("completions = %v, %v", cs, ok)
	}
	if !faults.Is(cs[0].Err, faults.KindTransient) {
		t.Fatalf("err = %v, want injected transient", cs[0].Err)
	}
	if ran {
		t.Error("injected fault must suppress the task's side effects")
	}
	if st := s.Stats(); st.Failed != 1 || st.Completed != 0 {
		t.Errorf("stats = %+v", st)
	}
	// Resubmitting after the fault window succeeds (a DAGMan retry).
	if err := s.Submit(Task{ID: "j1", Site: "usc", Cost: time.Second,
		Run: func() error { ran = true; return nil }}); err != nil {
		t.Fatal(err)
	}
	cs, _ = s.Step()
	if cs[0].Err != nil || !ran {
		t.Fatalf("retry must succeed: %v ran=%v", cs[0].Err, ran)
	}
	// Removing the injector restores the zero-cost path.
	s.SetInjector(nil)
	if err := s.Submit(Task{ID: "j2", Site: "usc", Cost: time.Second}); err != nil {
		t.Fatal(err)
	}
	if cs, _ := s.Step(); cs[0].Err != nil {
		t.Fatal(cs[0].Err)
	}
}
