package condor

import (
	"testing"
	"time"
)

// drainAll steps the simulator to quiescence and returns every completion.
func drainAll(t *testing.T, s *Simulator) []Completion {
	t.Helper()
	var all []Completion
	for {
		cs, ok := s.Step()
		if !ok {
			break
		}
		all = append(all, cs...)
	}
	if s.QueueLen() > 0 {
		t.Fatalf("%d tasks starved", s.QueueLen())
	}
	return all
}

// TestTransferLaneOverlapsCompute: with a dedicated transfer slot, a stage-in
// no longer competes with computation for the CPU slot — both finish in
// parallel instead of back to back.
func TestTransferLaneOverlapsCompute(t *testing.T) {
	run := func(txSlots int) time.Duration {
		s, err := NewSimulator(Pool{Name: "usc", Slots: 1, TransferSlots: txSlots})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Submit(Task{ID: "compute", Site: "usc", Cost: 10 * time.Second}); err != nil {
			t.Fatal(err)
		}
		if err := s.Submit(Task{ID: "stagein", Site: "usc", Cost: 10 * time.Second,
			Lane: LaneTransfer}); err != nil {
			t.Fatal(err)
		}
		drainAll(t, s)
		return s.Now()
	}
	if serial := run(0); serial != 20*time.Second {
		t.Errorf("without transfer lane makespan = %v, want 20s (slot contention)", serial)
	}
	if overlapped := run(1); overlapped != 10*time.Second {
		t.Errorf("with transfer lane makespan = %v, want 10s (overlap)", overlapped)
	}
}

// TestTransferLaneCapacity: the transfer lane has its own capacity — a third
// transfer waits for a transfer slot even while CPU slots sit idle.
func TestTransferLaneCapacity(t *testing.T) {
	s, err := NewSimulator(Pool{Name: "usc", Slots: 4, TransferSlots: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Submit(Task{ID: string(rune('a' + i)), Site: "usc",
			Cost: time.Second, Lane: LaneTransfer}); err != nil {
			t.Fatal(err)
		}
	}
	drainAll(t, s)
	if s.Now() != 2*time.Second {
		t.Errorf("3 transfers over 2 transfer slots: makespan %v, want 2s", s.Now())
	}
}

// TestSubmitOverheadSerializesStarts models the 2003 Condor-G/GRAM submission
// bottleneck: task starts clear a serial gate one at a time, so even a wide
// pool pays overhead × tasks end to end. This is the cost horizontal
// clustering amortizes.
func TestSubmitOverheadSerializesStarts(t *testing.T) {
	s, err := NewSimulator(Pool{Name: "usc", Slots: 8})
	if err != nil {
		t.Fatal(err)
	}
	s.SetSubmitOverhead(time.Second)
	for i := 0; i < 4; i++ {
		if err := s.Submit(Task{ID: string(rune('a' + i)), Site: "usc", Cost: time.Second}); err != nil {
			t.Fatal(err)
		}
	}
	cs := drainAll(t, s)
	starts := map[time.Duration]bool{}
	for _, c := range cs {
		starts[c.Start] = true
	}
	for _, want := range []time.Duration{1, 2, 3, 4} {
		if !starts[want*time.Second] {
			t.Errorf("no task started at %vs; starts must serialize through the gate", want)
		}
	}
	if s.Now() != 5*time.Second {
		t.Errorf("makespan %v, want 5s (last start at 4s + 1s run)", s.Now())
	}
}

// TestSubmitOverheadAmortizedByBatching: one task carrying the work of four
// pays the gate once — the clustering win in miniature.
func TestSubmitOverheadAmortizedByBatching(t *testing.T) {
	s, err := NewSimulator(Pool{Name: "usc", Slots: 8})
	if err != nil {
		t.Fatal(err)
	}
	s.SetSubmitOverhead(time.Second)
	if err := s.Submit(Task{ID: "batch", Site: "usc", Cost: 4 * time.Second}); err != nil {
		t.Fatal(err)
	}
	drainAll(t, s)
	if s.Now() != 5*time.Second {
		t.Errorf("batched makespan %v, want 5s (one gate + 4s of work)", s.Now())
	}
}

// TestZeroOverheadIsLegacy: the default simulator starts tasks instantly.
func TestZeroOverheadIsLegacy(t *testing.T) {
	s, err := NewSimulator(Pool{Name: "usc", Slots: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(Task{ID: "a", Site: "usc", Cost: time.Second}); err != nil {
		t.Fatal(err)
	}
	cs := drainAll(t, s)
	if len(cs) != 1 || cs[0].Start != 0 {
		t.Errorf("legacy task start = %+v, want immediate", cs)
	}
}
