package condor

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faults"
)

// runSchedule drains a simulator loaded with the given tasks and returns the
// completion stream plus final stats.
func runSchedule(t *testing.T, workers int, inj *faults.Injector, tasks []Task) ([]Completion, Stats) {
	t.Helper()
	s := sim(t)
	s.SetInjector(inj)
	s.SetWorkers(workers)
	for _, task := range tasks {
		if err := s.Submit(task); err != nil {
			t.Fatal(err)
		}
	}
	return s.Drain(), s.Stats()
}

// mixedTasks builds a task set with unequal costs (so completions land on
// many distinct instants) whose side effects record execution and contend on
// a shared counter.
func mixedTasks(n int, counter *int64, order *[]string, mu *sync.Mutex) []Task {
	tasks := make([]Task, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("t%02d", i)
		cost := time.Duration(1+i%7) * time.Second
		tasks[i] = Task{ID: id, Cost: cost, Run: func() error {
			atomic.AddInt64(counter, 1)
			mu.Lock()
			*order = append(*order, id)
			mu.Unlock()
			return nil
		}}
	}
	return tasks
}

// TestParallelScheduleMatchesSerial requires the parallel worker pool to
// leave the model schedule byte-identical: same completion stream (task,
// site, start, end, order), same stats, for any worker count.
func TestParallelScheduleMatchesSerial(t *testing.T) {
	var serialCount int64
	var serialOrder []string
	var mu sync.Mutex
	serial, serialStats := runSchedule(t, 1, nil, mixedTasks(24, &serialCount, &serialOrder, &mu))

	for _, workers := range []int{2, 4, 8} {
		var count int64
		var order []string
		par, parStats := runSchedule(t, workers, nil, mixedTasks(24, &count, &order, &mu))
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d completions, want %d", workers, len(par), len(serial))
		}
		for i := range par {
			if par[i] != serial[i] {
				t.Errorf("workers=%d: completion %d = %+v, want %+v", workers, i, par[i], serial[i])
			}
		}
		if count != serialCount {
			t.Errorf("workers=%d: %d side effects, want %d", workers, count, serialCount)
		}
		if parStats.Submitted != serialStats.Submitted || parStats.Completed != serialStats.Completed {
			t.Errorf("workers=%d: stats %+v, want %+v", workers, parStats, serialStats)
		}
		for site, busy := range serialStats.BusyTime {
			if parStats.BusyTime[site] != busy {
				t.Errorf("workers=%d: busy[%s] = %v, want %v", workers, site, parStats.BusyTime[site], busy)
			}
		}
	}
}

// TestParallelSideEffectsOverlap proves side effects actually run
// concurrently in parallel mode: two tasks block until both have started,
// which deadlocks under serial execution but completes with workers >= 2.
func TestParallelSideEffectsOverlap(t *testing.T) {
	s := sim(t)
	s.SetWorkers(2)
	var wg sync.WaitGroup
	wg.Add(2)
	meet := func() error {
		wg.Done()
		wg.Wait() // both bodies must be running at once to pass this point
		return nil
	}
	if err := s.Submit(Task{ID: "a", Cost: time.Second, Run: meet}); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(Task{ID: "b", Cost: 2 * time.Second, Run: meet}); err != nil {
		t.Fatal(err)
	}
	done := make(chan []Completion, 1)
	go func() { done <- s.Drain() }()
	select {
	case cs := <-done:
		if len(cs) != 2 {
			t.Fatalf("completions = %d, want 2", len(cs))
		}
	case <-time.After(10 * time.Second):
		t.Fatal("parallel side effects never overlapped (deadlock)")
	}
}

// TestParallelFaultInjectionSkipsRun verifies that an injected execution
// fault in parallel mode fails the task without running its side effects,
// exactly as in serial mode.
func TestParallelFaultInjectionSkipsRun(t *testing.T) {
	inj := faults.New(1, faults.Rule{Name: OpExec, Key: "bad", Kind: faults.KindTransient})
	var ran int64
	tasks := []Task{
		{ID: "good", Cost: time.Second, Run: func() error { atomic.AddInt64(&ran, 1); return nil }},
		{ID: "bad", Cost: time.Second, Run: func() error { atomic.AddInt64(&ran, 1); return nil }},
	}
	cs, stats := runSchedule(t, 4, inj, tasks)
	if len(cs) != 2 {
		t.Fatalf("completions = %d", len(cs))
	}
	for _, c := range cs {
		if c.TaskID == "bad" && c.Err == nil {
			t.Error("faulted task completed without error")
		}
		if c.TaskID == "good" && c.Err != nil {
			t.Errorf("clean task failed: %v", c.Err)
		}
	}
	if ran != 1 {
		t.Errorf("side effects ran %d times, want 1 (fault must skip Run)", ran)
	}
	if stats.Failed != 1 || stats.Completed != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

// TestParallelQueuedTasksRunInLaterWave checks that tasks waiting for a slot
// are launched when capacity frees and still produce the serial schedule.
func TestParallelQueuedTasksRunInLaterWave(t *testing.T) {
	pools := []Pool{{Name: "solo", Slots: 1}}
	build := func() []Task {
		var tasks []Task
		for i := 0; i < 5; i++ {
			tasks = append(tasks, Task{ID: fmt.Sprintf("q%d", i), Site: "solo", Cost: time.Second})
		}
		return tasks
	}
	ser, err := NewSimulator(pools...)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewSimulator(pools...)
	if err != nil {
		t.Fatal(err)
	}
	par.SetWorkers(4)
	for _, task := range build() {
		if err := ser.Submit(task); err != nil {
			t.Fatal(err)
		}
	}
	for _, task := range build() {
		if err := par.Submit(task); err != nil {
			t.Fatal(err)
		}
	}
	a, b := ser.Drain(), par.Drain()
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("completions %d/%d, want 5/5", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("completion %d: serial %+v != parallel %+v", i, a[i], b[i])
		}
	}
}

// TestSetWorkersClampsAndReports covers the accessor contract.
func TestSetWorkersClampsAndReports(t *testing.T) {
	s := sim(t)
	if s.Workers() != 1 {
		t.Errorf("default workers = %d", s.Workers())
	}
	s.SetWorkers(0)
	if s.Workers() != 1 {
		t.Errorf("clamped workers = %d", s.Workers())
	}
	s.SetWorkers(8)
	if s.Workers() != 8 {
		t.Errorf("workers = %d", s.Workers())
	}
	s.SetWorkers(1)
	if s.pool != nil {
		t.Error("serial mode must drop the pool")
	}
}
