package condor

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// TestConservationProperty: for any random workload, every submitted task
// completes exactly once, slot capacity is never exceeded (checked via busy
// time), and the makespan is bounded below by both the critical job and the
// total-work/total-slots ratio.
func TestConservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	f := func() bool {
		nPools := 1 + rng.Intn(3)
		pools := make([]Pool, nPools)
		totalSlots := 0
		for i := range pools {
			pools[i] = Pool{Name: fmt.Sprintf("p%d", i), Slots: 1 + rng.Intn(8)}
			totalSlots += pools[i].Slots
		}
		s, err := NewSimulator(pools...)
		if err != nil {
			return false
		}
		n := 1 + rng.Intn(60)
		var totalWork, maxCost time.Duration
		for i := 0; i < n; i++ {
			cost := time.Duration(1+rng.Intn(50)) * time.Second
			totalWork += cost
			if cost > maxCost {
				maxCost = cost
			}
			if err := s.Submit(Task{ID: fmt.Sprintf("t%d", i), Cost: cost}); err != nil {
				return false
			}
		}
		completions := s.Drain()
		if len(completions) != n {
			return false
		}
		st := s.Stats()
		if st.Submitted != n || st.Completed != n || st.Failed != 0 {
			return false
		}
		// Busy time across pools equals total work (speed 1 pools).
		var busy time.Duration
		for _, d := range st.BusyTime {
			busy += d
		}
		if busy != totalWork {
			return false
		}
		// Makespan lower bounds.
		makespan := s.Now()
		if makespan < maxCost {
			return false
		}
		if makespan < totalWork/time.Duration(totalSlots) {
			return false
		}
		// Per-completion sanity: start <= end, end <= makespan.
		for _, c := range completions {
			if c.Start > c.End || c.End > makespan {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSlotCapacityProperty: at no instant do more tasks run on a pool than
// it has slots. Verified by replaying completion intervals.
func TestSlotCapacityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 20; trial++ {
		slots := 1 + rng.Intn(5)
		s, err := NewSimulator(Pool{Name: "p", Slots: slots})
		if err != nil {
			t.Fatal(err)
		}
		n := 5 + rng.Intn(40)
		for i := 0; i < n; i++ {
			_ = s.Submit(Task{ID: fmt.Sprintf("t%d", i),
				Cost: time.Duration(1+rng.Intn(20)) * time.Second})
		}
		completions := s.Drain()
		// Sweep: count overlapping [start, end) intervals at each start.
		for _, probe := range completions {
			overlap := 0
			for _, c := range completions {
				if c.Start <= probe.Start && probe.Start < c.End {
					overlap++
				}
			}
			if overlap > slots {
				t.Fatalf("trial %d: %d tasks overlap at %v with %d slots",
					trial, overlap, probe.Start, slots)
			}
		}
	}
}
