// Package condor simulates the Condor-G multi-pool execution fabric the
// prototype submitted its concrete workflows to (Frey et al. 2001). The
// paper's campaign ran on three Condor pools (USC, Wisconsin, Fermilab); this
// simulator models any number of pools, each with a slot count and relative
// CPU speed, a FIFO matchmaking queue, and a discrete-event clock, so the
// 1152-job campaign executes deterministically in milliseconds of wall time
// while preserving queueing and contention behaviour.
//
// The caller (internal/dagman) submits Tasks and repeatedly calls Step to
// advance the virtual clock to the next completion. A Task's Run closure
// carries its real side effects (computing morphology, moving files,
// registering replicas); by default it executes at completion time in model
// order, and with SetWorkers(n > 1) side effects fan out to a bounded worker
// pool while the model clock stays byte-identical to the serial schedule.
package condor

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/faults"
	"repro/internal/workpool"
)

// Pool describes one Condor pool.
type Pool struct {
	Name  string
	Slots int
	Speed float64 // relative CPU speed; execution time = Cost / Speed
	// TransferSlots, when > 0, gives the pool a dedicated data-movement
	// lane: tasks with Lane == LaneTransfer occupy these slots instead of
	// compute slots, so stage-ins run concurrently with computation (the
	// GridFTP server is not a worker node). 0 keeps the legacy behaviour
	// of transfers competing for compute slots.
	TransferSlots int
}

// LaneTransfer marks data-movement tasks eligible for a pool's dedicated
// transfer lane.
const LaneTransfer = "transfer"

// Task is one schedulable job.
type Task struct {
	ID   string
	Site string        // required pool; "" lets the matchmaker choose
	Cost time.Duration // model execution time at Speed 1.0
	Lane string        // "" = compute slots; LaneTransfer = transfer lane
	Run  func() error  // side effects, executed at completion (may be nil)
}

// Completion reports one finished task.
type Completion struct {
	TaskID string
	Site   string
	Start  time.Duration // model time the task began executing
	End    time.Duration // model time it finished
	Err    error         // non-nil if Run failed
}

// Errors returned by the simulator.
var (
	ErrUnknownPool = errors.New("condor: unknown pool")
	ErrBadTask     = errors.New("condor: bad task")
	ErrDuplicate   = errors.New("condor: duplicate task id in flight")
)

// Stats aggregates scheduler counters.
type Stats struct {
	Submitted int
	Completed int
	Failed    int
	// BusyTime accumulates slot-seconds of execution per site.
	BusyTime map[string]time.Duration
}

type poolState struct {
	Pool
	busy   int // compute slots in use
	txBusy int // transfer-lane slots in use
}

// lane reports which capacity a task consumes at this pool: the transfer
// lane only exists when the pool is configured with TransferSlots.
func (p *poolState) isTransferLane(t Task) bool {
	return t.Lane == LaneTransfer && p.TransferSlots > 0
}

func (p *poolState) freeFor(t Task) int {
	if p.isTransferLane(t) {
		return p.TransferSlots - p.txBusy
	}
	return p.Slots - p.busy
}

// event is a scheduled completion.
type event struct {
	at    time.Duration
	seq   int // FIFO tie-break for determinism
	task  Task
	site  string
	start time.Duration
	// async carries the task's in-flight side effects in parallel mode: the
	// Run closure is launched on the worker pool the moment the model starts
	// the task, and Step waits on this handle when the clock reaches the
	// completion instant. Nil in serial mode.
	async *workpool.Future
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// OpExec is the fault-point name checked when a task completes; rules
// select executions by pool (Site) and task id (Key).
const OpExec = "condor.exec"

// Simulator is the discrete-event scheduler. It is not safe for concurrent
// use; drive it from one goroutine (as DAGMan does). With SetWorkers(n > 1)
// the side effects of running tasks execute on a bounded worker pool — see
// SetWorkers for the determinism contract.
type Simulator struct {
	pools    map[string]*poolState
	ordered  []string // pool names, sorted, for deterministic matchmaking
	now      time.Duration
	queue    []Task
	running  eventQueue
	inFlight map[string]bool
	seq      int
	stats    Stats
	inj      *faults.Injector
	workers  int
	pool     *workpool.Pool

	// submitOverhead models the serialized per-job scheduling cost of the
	// 2003 Condor-G/GRAM submission path: the scheduler hands jobs to the
	// gatekeeper one at a time, so each placed task's start is gated behind
	// the previous submission plus this overhead. Zero (the default)
	// reproduces the instant-start legacy behaviour exactly. This is the
	// overhead horizontal clustering amortizes: a clustered task pays it
	// once for its whole batch.
	submitOverhead time.Duration
	submitGate     time.Duration
}

// NewSimulator builds a simulator over the given pools.
func NewSimulator(pools ...Pool) (*Simulator, error) {
	if len(pools) == 0 {
		return nil, errors.New("condor: need at least one pool")
	}
	s := &Simulator{
		pools:    map[string]*poolState{},
		inFlight: map[string]bool{},
		stats:    Stats{BusyTime: map[string]time.Duration{}},
	}
	for _, p := range pools {
		if p.Name == "" || p.Slots <= 0 {
			return nil, fmt.Errorf("condor: pool needs name and positive slots: %+v", p)
		}
		if p.Speed <= 0 {
			p.Speed = 1
		}
		if p.TransferSlots < 0 {
			p.TransferSlots = 0
		}
		if _, dup := s.pools[p.Name]; dup {
			return nil, fmt.Errorf("condor: duplicate pool %q", p.Name)
		}
		s.pools[p.Name] = &poolState{Pool: p}
		s.ordered = append(s.ordered, p.Name)
	}
	sort.Strings(s.ordered)
	return s, nil
}

// SetInjector installs (or removes, with nil) the fault injector. An
// injected fault fails the task at its completion instant — the job ran on
// a flaky node — without executing its Run side effects, exactly what a
// dead worker looks like to DAGMan.
func (s *Simulator) SetInjector(in *faults.Injector) { s.inj = in }

// SetWorkers bounds the worker pool that executes task side effects. The
// default (n <= 1) is fully serial: each Run executes inline at its
// completion instant, in model order — the classic single-threaded DAGMan
// event loop, byte-identical to prior behaviour.
//
// With n > 1 the simulator launches a task's Run the moment the matchmaker
// places it on a slot (every task simultaneously in flight is independent:
// DAGMan releases a node only after all its parents have completed), lets up
// to n side-effect bodies run concurrently, and joins each task's result when
// the model clock reaches its completion instant. The discrete-event clock,
// matchmaking, completion order and per-site accounting stay byte-identical
// to the serial schedule; only wall-clock time and the interleaving of side
// effects change, so Run closures must be safe to run concurrently with each
// other. Fault-injection checks happen at placement time, in deterministic
// dispatch order.
//
// Call SetWorkers before submitting tasks; changing it mid-run leaves
// already-placed tasks on their original execution mode.
func (s *Simulator) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	s.workers = n
	if n > 1 {
		s.pool = workpool.NewPool(n)
	} else {
		s.pool = nil
	}
}

// SetSubmitOverhead installs the serialized per-task scheduling overhead
// (see the field doc). Call before submitting tasks; 0 disables.
func (s *Simulator) SetSubmitOverhead(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.submitOverhead = d
}

// Workers returns the side-effect concurrency bound (minimum 1).
func (s *Simulator) Workers() int {
	if s.workers < 1 {
		return 1
	}
	return s.workers
}

// Now returns the current model time.
func (s *Simulator) Now() time.Duration { return s.now }

// Pools returns the pool names, sorted.
func (s *Simulator) Pools() []string { return append([]string(nil), s.ordered...) }

// BusySlots returns the running-job count at a site.
func (s *Simulator) BusySlots(site string) int {
	if p, ok := s.pools[site]; ok {
		return p.busy
	}
	return 0
}

// QueueLen returns the number of tasks waiting for a slot.
func (s *Simulator) QueueLen() int { return len(s.queue) }

// RunningLen returns the number of tasks currently executing.
func (s *Simulator) RunningLen() int { return len(s.running) }

// Idle reports whether nothing is queued or running.
func (s *Simulator) Idle() bool { return len(s.queue) == 0 && len(s.running) == 0 }

// Stats returns the cumulative counters.
func (s *Simulator) Stats() Stats {
	out := s.stats
	out.BusyTime = make(map[string]time.Duration, len(s.stats.BusyTime))
	for k, v := range s.stats.BusyTime {
		out.BusyTime[k] = v
	}
	return out
}

// Submit enqueues a task and dispatches it immediately if a slot is free.
func (s *Simulator) Submit(t Task) error {
	if t.ID == "" {
		return fmt.Errorf("%w: empty id", ErrBadTask)
	}
	if t.Cost < 0 {
		return fmt.Errorf("%w: negative cost", ErrBadTask)
	}
	if t.Site != "" {
		if _, ok := s.pools[t.Site]; !ok {
			return fmt.Errorf("%w: %q", ErrUnknownPool, t.Site)
		}
	}
	if s.inFlight[t.ID] {
		return fmt.Errorf("%w: %q", ErrDuplicate, t.ID)
	}
	s.inFlight[t.ID] = true
	s.stats.Submitted++
	s.queue = append(s.queue, t)
	s.dispatch()
	return nil
}

// dispatch starts every queued task that can get a slot, preserving FIFO
// order per matchmaking constraint.
func (s *Simulator) dispatch() {
	remaining := s.queue[:0]
	for _, t := range s.queue {
		site := s.match(t)
		if site == "" {
			remaining = append(remaining, t)
			continue
		}
		p := s.pools[site]
		if p.isTransferLane(t) {
			p.txBusy++
		} else {
			p.busy++
		}
		start := s.now
		if s.submitOverhead > 0 {
			// The submission path is a serial resource: this job starts
			// only after every earlier submission has cleared it.
			if s.submitGate > start {
				start = s.submitGate
			}
			start += s.submitOverhead
			s.submitGate = start
		}
		dur := time.Duration(float64(t.Cost) / p.Speed)
		s.seq++
		e := event{
			at:    start + dur,
			seq:   s.seq,
			task:  t,
			site:  site,
			start: start,
		}
		if s.pool != nil {
			e.async = s.launch(t, site)
		}
		heap.Push(&s.running, e)
	}
	s.queue = remaining
}

// launch starts a placed task's side effects on the worker pool (parallel
// mode). The fault check happens here, in deterministic placement order; an
// injected fault skips the Run body entirely — the job landed on a flaky
// node — and surfaces at the completion instant.
func (s *Simulator) launch(t Task, site string) *workpool.Future {
	if err := s.inj.Check(faults.Op{Name: OpExec, Site: site, Key: t.ID}); err != nil {
		return workpool.Resolved(err)
	}
	if t.Run == nil {
		return workpool.Resolved(nil)
	}
	return s.pool.Submit(t.Run)
}

// match picks a pool with a free slot for the task: its pinned site, or the
// pool with the most free slots (ties by name). Returns "" if none is free.
// Transfer-lane tasks consume a pool's TransferSlots where configured.
func (s *Simulator) match(t Task) string {
	if t.Site != "" {
		if p := s.pools[t.Site]; p.freeFor(t) > 0 {
			return t.Site
		}
		return ""
	}
	best := ""
	bestFree := 0
	for _, name := range s.ordered {
		p := s.pools[name]
		free := p.freeFor(t)
		if free > bestFree {
			best = name
			bestFree = free
		}
	}
	return best
}

// Step advances the clock to the next completion time and returns every task
// completing at that instant (deterministic order). It returns ok=false when
// nothing is running; if tasks remain queued at that point they are starved
// (pinned to saturated pools) — callers detect that via QueueLen.
func (s *Simulator) Step() (completions []Completion, ok bool) {
	if len(s.running) == 0 {
		return nil, false
	}
	next := s.running[0].at
	s.now = next
	for len(s.running) > 0 && s.running[0].at == next {
		e := heap.Pop(&s.running).(event)
		p := s.pools[e.site]
		if p.isTransferLane(e.task) {
			p.txBusy--
		} else {
			p.busy--
		}
		s.stats.BusyTime[e.site] += e.at - e.start
		delete(s.inFlight, e.task.ID)

		var err error
		if e.async != nil {
			// Parallel mode: the side effects (and the fault check) ran when
			// the task was placed; join the result at its completion instant.
			err = e.async.Wait()
		} else {
			err = s.inj.Check(faults.Op{Name: OpExec, Site: e.site, Key: e.task.ID})
			if err == nil && e.task.Run != nil {
				err = e.task.Run()
			}
		}
		if err != nil {
			s.stats.Failed++
		} else {
			s.stats.Completed++
		}
		completions = append(completions, Completion{
			TaskID: e.task.ID,
			Site:   e.site,
			Start:  e.start,
			End:    e.at,
			Err:    err,
		})
	}
	// Freed slots may admit queued work.
	s.dispatch()
	return completions, true
}

// Abort discards all queued work and waits for the side effects of
// already-launched tasks to finish, leaving the simulator quiet. It models
// the workflow manager dying: nothing new is dispatched, but side effects
// already handed to worker nodes run to completion unobserved (their
// completions are never reported, so nothing downstream acts on them).
func (s *Simulator) Abort() {
	for _, e := range s.running {
		if e.async != nil {
			_ = e.async.Wait()
		}
	}
	s.running = nil
	s.queue = nil
}

// Drain runs Step until the simulator is quiet and returns all completions.
func (s *Simulator) Drain() []Completion {
	var all []Completion
	for {
		cs, ok := s.Step()
		if !ok {
			return all
		}
		all = append(all, cs...)
	}
}
