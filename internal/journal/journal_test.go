package journal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func tmpJournal(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "wf.journal")
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := tmpJournal(t)
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		{Kind: KindBegin, Detail: "cluster=COMA seed=5"},
		{Kind: KindSubmitted, Node: "m-a", Attempt: 1, At: time.Second},
		{Kind: KindCompleted, Node: "m-a", Site: "usc", Attempt: 1, At: 3 * time.Second},
		{Kind: KindRetried, Node: "m-b", Attempt: 1, Err: "flaky"},
		{Kind: KindEnd, Detail: "out.vot sha=abc"},
	}
	for _, r := range want {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != len(want) {
		t.Errorf("Count = %d, want %d", w.Count(), len(want))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	recs, truncated, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if truncated {
		t.Error("clean journal reported truncated")
	}
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if r.Seq != i {
			t.Errorf("record %d has seq %d", i, r.Seq)
		}
		w := want[i]
		if r.Kind != w.Kind || r.Node != w.Node || r.Site != w.Site ||
			r.Attempt != w.Attempt || r.At != w.At || r.Err != w.Err || r.Detail != w.Detail {
			t.Errorf("record %d = %+v, want %+v", i, r, w)
		}
	}
}

func TestReplayTornTail(t *testing.T) {
	path := tmpJournal(t)
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Append(Record{Kind: KindSubmitted, Node: "n"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: append half a line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`0123abcd {"seq":5,"kind":"comp`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recs, truncated, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if !truncated {
		t.Error("torn tail not reported")
	}
	if len(recs) != 5 {
		t.Errorf("replayed %d records, want the 5 intact ones", len(recs))
	}
}

func TestReplayCorruptMiddleStopsThere(t *testing.T) {
	path := tmpJournal(t)
	w, _ := Create(path)
	for i := 0; i < 4; i++ {
		if err := w.Append(Record{Kind: KindSubmitted, Node: "n"}); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	// Flip a byte inside the third record's payload.
	lines[2] = strings.Replace(lines[2], `"kind"`, `"kinX"`, 1)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, truncated, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if !truncated || len(recs) != 2 {
		t.Errorf("replay past corruption: %d records, truncated=%t (want 2, true)", len(recs), truncated)
	}
}

func TestOpenAppendContinuesSequence(t *testing.T) {
	path := tmpJournal(t)
	w, _ := Create(path)
	_ = w.Append(Record{Kind: KindBegin})
	_ = w.Append(Record{Kind: KindSubmitted, Node: "a"})
	w.Close()

	w2, recs, err := OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("OpenAppend replayed %d records, want 2", len(recs))
	}
	if err := w2.Append(Record{Kind: KindCompleted, Node: "a"}); err != nil {
		t.Fatal(err)
	}
	w2.Close()

	all, truncated, err := Replay(path)
	if err != nil || truncated {
		t.Fatalf("replay: %v truncated=%t", err, truncated)
	}
	if len(all) != 3 || all[2].Seq != 2 || all[2].Kind != KindCompleted {
		t.Errorf("appended journal = %+v", all)
	}
}

func TestCompletedNodes(t *testing.T) {
	recs := []Record{
		{Kind: KindBegin},
		{Kind: KindSubmitted, Node: "a"},
		{Kind: KindCompleted, Node: "a"},
		{Kind: KindSubmitted, Node: "b"},
		{Kind: KindRetried, Node: "b"},
		{Kind: KindRestored, Node: "c"},
		{Kind: KindFailed, Node: "d"},
	}
	done := CompletedNodes(recs)
	if !done["a"] || !done["c"] {
		t.Errorf("done = %v, want a and c", done)
	}
	if done["b"] || done["d"] {
		t.Errorf("b (retried) and d (failed) must not be done: %v", done)
	}
}

func TestEnded(t *testing.T) {
	if _, ok := Ended([]Record{{Kind: KindBegin}}); ok {
		t.Error("unfinished journal reported ended")
	}
	end, ok := Ended([]Record{{Kind: KindBegin}, {Kind: KindEnd, Detail: "x"}})
	if !ok || end.Detail != "x" {
		t.Errorf("Ended = %+v, %t", end, ok)
	}
}

func TestCrashSink(t *testing.T) {
	path := tmpJournal(t)
	w, _ := Create(path)
	defer w.Close()
	crash := &CrashSink{Sink: w, After: 3}
	var err error
	n := 0
	for i := 0; i < 10; i++ {
		if err = crash.Append(Record{Kind: KindSubmitted, Node: "n"}); err != nil {
			break
		}
		n++
	}
	if err != ErrCrash {
		t.Fatalf("err = %v, want ErrCrash", err)
	}
	if n != 3 || crash.Appended() != 3 {
		t.Errorf("appended %d (sink says %d), want 3", n, crash.Appended())
	}
	recs, _, _ := Replay(path)
	if len(recs) != 3 {
		t.Errorf("journal holds %d records, want exactly the 3 pre-crash ones", len(recs))
	}
}

func TestNilWriterIsNoop(t *testing.T) {
	var w *Writer
	if err := w.Append(Record{Kind: KindBegin}); err != nil {
		t.Errorf("nil writer Append = %v", err)
	}
	if w.Count() != 0 {
		t.Error("nil writer Count != 0")
	}
	if err := w.Close(); err != nil {
		t.Errorf("nil writer Close = %v", err)
	}
}

func TestAppendAfterClose(t *testing.T) {
	w, _ := Create(tmpJournal(t))
	w.Close()
	if err := w.Append(Record{}); err != ErrClosed {
		t.Errorf("append after close = %v, want ErrClosed", err)
	}
}

func TestReplayMissingFile(t *testing.T) {
	if _, _, err := Replay(filepath.Join(t.TempDir(), "absent.journal")); err == nil {
		t.Error("missing journal must error")
	}
}

func TestScopedWriterStampsRecords(t *testing.T) {
	path := tmpJournal(t)
	w, err := CreateScoped(path, "alice/COMA")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Kind: KindBegin}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Kind: KindCompleted, Node: "n1"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, truncated, err := Replay(path)
	if err != nil || truncated {
		t.Fatalf("replay: %v truncated=%v", err, truncated)
	}
	for _, r := range recs {
		if r.Scope != "alice/COMA" {
			t.Fatalf("record %d scope = %q, want alice/COMA", r.Seq, r.Scope)
		}
	}
}

func TestOpenAppendScopedAcceptsOwnScope(t *testing.T) {
	path := tmpJournal(t)
	w, _ := CreateScoped(path, "alice/COMA")
	w.Append(Record{Kind: KindBegin})
	w.Close()

	w2, recs, err := OpenAppendScoped(path, "alice/COMA")
	if err != nil {
		t.Fatalf("reopen same scope: %v", err)
	}
	if len(recs) != 1 {
		t.Fatalf("replayed %d records, want 1", len(recs))
	}
	if err := w2.Append(Record{Kind: KindEnd}); err != nil {
		t.Fatal(err)
	}
	w2.Close()
}

func TestOpenAppendScopedRejectsForeignScope(t *testing.T) {
	// Resuming one workflow's journal under another workflow's identity is
	// cross-workflow bleed and must fail loudly, not silently merge.
	path := tmpJournal(t)
	w, _ := CreateScoped(path, "alice/COMA")
	w.Append(Record{Kind: KindBegin})
	w.Close()

	_, _, err := OpenAppendScoped(path, "bob/COMA")
	if err == nil || !strings.Contains(err.Error(), "scope mismatch") {
		t.Fatalf("foreign scope reopen = %v, want ErrScope", err)
	}
}

func TestOpenAppendScopedAcceptsLegacyUnscoped(t *testing.T) {
	// Journals written before scoping existed carry no scope; they must
	// remain resumable under any identity.
	path := tmpJournal(t)
	w, _ := Create(path)
	w.Append(Record{Kind: KindBegin})
	w.Close()

	w2, recs, err := OpenAppendScoped(path, "alice/COMA")
	if err != nil {
		t.Fatalf("legacy reopen: %v", err)
	}
	if len(recs) != 1 {
		t.Fatalf("replayed %d records, want 1", len(recs))
	}
	w2.Append(Record{Kind: KindEnd})
	w2.Close()
	recs, _, _ = Replay(path)
	if recs[1].Scope != "alice/COMA" {
		t.Fatalf("appended record scope = %q, want alice/COMA", recs[1].Scope)
	}
}
