// Package journal is the crash-recovery substrate of the workflow stack: an
// append-only, fsync-ordered event log (write-ahead log) that DAGMan writes
// at every node state transition, in the spirit of Condor DAGMan's log files
// and rescue DAGs. A killed or crashed workflow run leaves behind a journal
// whose replay reconstructs exactly which nodes completed, so a resubmission
// re-executes only the unfinished work.
//
// The on-disk format is one record per line:
//
//	<crc32-hex> <json-record>\n
//
// Each record carries a sequence number, and every Append is followed by an
// fsync, so the journal on disk is always a prefix of the logical event
// stream: a crash can at worst leave one torn final line, which Replay
// detects via the CRC and discards. Records never mutate — recovery is a
// pure replay.
package journal

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strings"
	"time"
)

// Record kinds. The workflow-level markers (begin/end/aborted) bracket the
// node-level transitions DAGMan writes.
const (
	KindBegin     = "begin"     // workflow accepted; Detail carries metadata
	KindSubmitted = "submitted" // node released to the scheduler
	KindCompleted = "completed" // node finished successfully
	KindRetried   = "retried"   // node failed an attempt and was resubmitted
	KindFailed    = "failed"    // node failed permanently (retries exhausted)
	KindRestored  = "restored"  // node recovered as done from a prior journal
	KindAborted   = "aborted"   // run stopped cleanly before completion
	KindPreempted = "preempted" // run checkpoint-stopped: slot revoked for a higher class
	KindEnd       = "end"       // workflow completed; Detail carries the result
)

// Record is one journaled event.
type Record struct {
	Seq int `json:"seq"`
	// Scope names the workflow the record belongs to (tenant/cluster on a
	// multi-tenant fabric). Every record a scoped Writer appends is stamped
	// with it, and OpenAppendScoped refuses to resume over records from a
	// different scope — the guard against cross-workflow journal bleed when
	// many workflows share one journal directory. Empty on journals written
	// before scoping existed; such records replay under any scope.
	Scope   string        `json:"wf,omitempty"`
	Kind    string        `json:"kind"`
	Node    string        `json:"node,omitempty"`
	Site    string        `json:"site,omitempty"`
	Attempt int           `json:"attempt,omitempty"`
	At      time.Duration `json:"at,omitempty"` // model time of the transition
	Err     string        `json:"err,omitempty"`
	Detail  string        `json:"detail,omitempty"` // free-form: seed, checksum, LFN
}

// Sink receives journal records. dagman journals through this interface so
// tests can interpose crash injection or counting without touching the disk
// format.
type Sink interface {
	Append(Record) error
}

// Errors returned by the package.
var (
	ErrClosed = errors.New("journal: writer closed")
	// ErrCrash is returned by CrashSink once its budget is exhausted — the
	// simulated kill -9 of a kill-and-resume campaign.
	ErrCrash = errors.New("journal: simulated crash")
)

// Writer appends records to a journal file, fsyncing after every record so
// the state transition is durable before the executor acts on it.
type Writer struct {
	f      *os.File
	w      *bufio.Writer
	next   int
	closed bool
	// Scope, when non-empty, is stamped onto every appended record (see
	// Record.Scope). Set by CreateScoped/OpenAppendScoped.
	Scope string
	// NoSync skips the per-record fsync. The write ordering is still exact;
	// only durability against machine crashes is weakened. Tests writing
	// thousands of records use it; production paths keep the default.
	NoSync bool
}

// Create truncates (or creates) the journal at path and returns a writer
// whose next sequence number is 0.
func Create(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return &Writer{f: f, w: bufio.NewWriter(f)}, nil
}

// CreateScoped is Create with a workflow scope: every appended record is
// stamped with scope, namespacing the journal to one workflow of one
// tenant even when many workflows write under a shared journal directory.
func CreateScoped(path, scope string) (*Writer, error) {
	w, err := Create(path)
	if err != nil {
		return nil, err
	}
	w.Scope = scope
	return w, nil
}

// ErrScope reports a resume over another workflow's journal — the
// cross-workflow bleed a scoped journal exists to prevent.
var ErrScope = errors.New("journal: workflow scope mismatch")

// OpenAppendScoped is OpenAppend with a workflow scope: the replayed
// records are verified to belong to scope (records with no scope, written
// before scoping existed, are accepted), and the returned writer stamps
// scope onto everything it appends.
func OpenAppendScoped(path, scope string) (*Writer, []Record, error) {
	w, recs, err := OpenAppend(path)
	if err != nil {
		return nil, nil, err
	}
	for _, r := range recs {
		if r.Scope != "" && r.Scope != scope {
			_ = w.Close()
			return nil, nil, fmt.Errorf("%w: journal %s belongs to workflow %q, resuming %q",
				ErrScope, path, r.Scope, scope)
		}
	}
	w.Scope = scope
	return w, recs, nil
}

// OpenAppend opens an existing journal for appending, replaying it first to
// find the next sequence number. The replayed records are returned so the
// caller does not read the file twice.
func OpenAppend(path string) (*Writer, []Record, error) {
	recs, _, err := Replay(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	next := 0
	if n := len(recs); n > 0 {
		next = recs[n-1].Seq + 1
	}
	return &Writer{f: f, w: bufio.NewWriter(f), next: next}, recs, nil
}

// Append assigns the record its sequence number, writes it, and fsyncs. The
// caller must not act on the state transition until Append returns nil —
// that ordering is what makes replay-to-resume sound.
func (w *Writer) Append(rec Record) error {
	if w == nil {
		return nil // disabled journal: zero-cost no-op, like a nil fault injector
	}
	if w.closed {
		return ErrClosed
	}
	rec.Seq = w.next
	if w.Scope != "" {
		rec.Scope = w.Scope
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: marshal: %w", err)
	}
	line := fmt.Sprintf("%08x %s\n", crc32.ChecksumIEEE(payload), payload)
	if _, err := w.w.WriteString(line); err != nil {
		return err
	}
	if err := w.w.Flush(); err != nil {
		return err
	}
	if !w.NoSync {
		if err := w.f.Sync(); err != nil {
			return err
		}
	}
	w.next++
	return nil
}

// Count returns how many records this writer has appended (plus any replayed
// by OpenAppend).
func (w *Writer) Count() int {
	if w == nil {
		return 0
	}
	return w.next
}

// Close flushes and closes the underlying file. Append after Close fails.
func (w *Writer) Close() error {
	if w == nil || w.closed {
		return nil
	}
	w.closed = true
	flushErr := w.w.Flush()
	closeErr := w.f.Close()
	return errors.Join(flushErr, closeErr)
}

// Replay reads every intact record from the journal at path. A torn or
// corrupt line ends the replay at that point: truncated reports whether
// trailing bytes were discarded (the signature of a crash mid-Append).
// Records after a bad line are never trusted — the fsync ordering guarantees
// the good prefix is the complete history.
func Replay(path string) (recs []Record, truncated bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, err
		}
		return nil, false, err
	}
	//nvolint:ignore errclose read-only replay handle; there are no buffered writes a failed close could lose
	defer f.Close()
	return ReplayFrom(f)
}

// ReplayFrom is Replay over an arbitrary reader.
func ReplayFrom(r io.Reader) (recs []Record, truncated bool, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	wantSeq := 0
	for sc.Scan() {
		line := sc.Text()
		crcHex, payload, ok := strings.Cut(line, " ")
		if !ok || len(crcHex) != 8 {
			return recs, true, nil
		}
		var crc uint32
		if _, err := fmt.Sscanf(crcHex, "%08x", &crc); err != nil {
			return recs, true, nil
		}
		if crc32.ChecksumIEEE([]byte(payload)) != crc {
			return recs, true, nil
		}
		var rec Record
		if err := json.Unmarshal([]byte(payload), &rec); err != nil {
			return recs, true, nil
		}
		if rec.Seq != wantSeq {
			return recs, true, nil
		}
		wantSeq++
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		// An over-long garbage tail is torn-write damage, not a caller error.
		if errors.Is(err, bufio.ErrTooLong) {
			return recs, true, nil
		}
		return recs, truncated, err
	}
	return recs, truncated, nil
}

// CompletedNodes extracts the set of nodes the journal records as done —
// the nodes a resumed execution must not re-run.
func CompletedNodes(recs []Record) map[string]bool {
	done := map[string]bool{}
	for _, r := range recs {
		switch r.Kind {
		case KindCompleted, KindRestored:
			done[r.Node] = true
		}
	}
	return done
}

// Ended reports whether the journal records a completed workflow, returning
// the end record when present.
func Ended(recs []Record) (Record, bool) {
	for i := len(recs) - 1; i >= 0; i-- {
		if recs[i].Kind == KindEnd {
			return recs[i], true
		}
	}
	return Record{}, false
}

// CrashSink wraps a sink and fails with ErrCrash after After successful
// appends — the deterministic kill point of a kill-and-resume campaign.
// After <= 0 never crashes.
type CrashSink struct {
	Sink  Sink
	After int
	n     int
}

// Append forwards to the wrapped sink until the crash point, then refuses
// every further record. The record at the crash point itself is NOT written:
// the process died before the fsync, and recovery must treat the transition
// as never having happened.
func (c *CrashSink) Append(rec Record) error {
	if c.After > 0 && c.n >= c.After {
		return ErrCrash
	}
	if err := c.Sink.Append(rec); err != nil {
		return err
	}
	c.n++
	return nil
}

// Appended returns how many records made it through before the crash.
func (c *CrashSink) Appended() int { return c.n }
