package myproxy

import (
	"errors"
	"testing"
	"time"
)

// fakeClock is a controllable time source.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newClock() *fakeClock                   { return &fakeClock{t: time.Unix(1_060_000_000, 0)} }
func repoWith(c *fakeClock) *Repository      { return NewWithClock(c.now) }
func delegate(t *testing.T, r *Repository) string {
	t.Helper()
	if err := r.Delegate("jane", "s3cret", "/C=US/O=NVO/CN=Jane", 10*time.Hour, time.Hour); err != nil {
		t.Fatal(err)
	}
	return "jane"
}

func TestDelegateValidation(t *testing.T) {
	r := New()
	cases := []struct {
		u, p, s string
		life    time.Duration
	}{
		{"", "p", "s", time.Hour},
		{"u", "", "s", time.Hour},
		{"u", "p", "", time.Hour},
		{"u", "p", "s", 0},
		{"u", "p", "s", -time.Hour},
	}
	for _, c := range cases {
		if err := r.Delegate(c.u, c.p, c.s, c.life, time.Hour); err == nil {
			t.Errorf("Delegate(%q,%q,%q,%v) must fail", c.u, c.p, c.s, c.life)
		}
	}
	if err := r.Delegate("u", "p", "s", time.Hour, 0); err == nil {
		t.Error("zero proxy lifetime must fail")
	}
}

func TestRetrieveHappyPath(t *testing.T) {
	clock := newClock()
	r := repoWith(clock)
	delegate(t, r)

	p, err := r.Retrieve("jane", "s3cret", 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Valid(clock.t) {
		t.Error("fresh proxy must be valid")
	}
	if p.Subject != "/C=US/O=NVO/CN=Jane" {
		t.Errorf("subject = %q", p.Subject)
	}
	if got := p.Expires.Sub(p.IssuedAt); got != 30*time.Minute {
		t.Errorf("lifetime = %v", got)
	}
	// Each retrieval yields distinct credential material.
	p2, err := r.Retrieve("jane", "s3cret", 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Token == p.Token {
		t.Error("proxies must be distinct")
	}
}

func TestRetrieveAuthFailures(t *testing.T) {
	r := repoWith(newClock())
	delegate(t, r)
	if _, err := r.Retrieve("nobody", "x", time.Hour); !errors.Is(err, ErrUnknownUser) {
		t.Errorf("unknown user: %v", err)
	}
	if _, err := r.Retrieve("jane", "wrong", time.Hour); !errors.Is(err, ErrBadPassphrase) {
		t.Errorf("bad passphrase: %v", err)
	}
	if _, err := r.Retrieve("jane", "s3cret", 0); !errors.Is(err, ErrShortLifetime) {
		t.Errorf("zero lifetime: %v", err)
	}
}

func TestProxyLifetimeClamping(t *testing.T) {
	clock := newClock()
	r := repoWith(clock)
	delegate(t, r) // max proxy lifetime: 1h

	// Requested lifetime above the delegation's max is clamped.
	p, err := r.Retrieve("jane", "s3cret", 8*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Expires.Sub(p.IssuedAt); got != time.Hour {
		t.Errorf("clamped lifetime = %v, want 1h", got)
	}

	// Near the delegation's end the proxy cannot outlive it.
	clock.advance(9*time.Hour + 30*time.Minute) // 30m of delegation left
	p, err = r.Retrieve("jane", "s3cret", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Expires.Sub(clock.t); got != 30*time.Minute {
		t.Errorf("end-clamped lifetime = %v, want 30m", got)
	}
}

func TestDelegationExpiry(t *testing.T) {
	clock := newClock()
	r := repoWith(clock)
	delegate(t, r)
	clock.advance(11 * time.Hour)
	if _, err := r.Retrieve("jane", "s3cret", time.Minute); !errors.Is(err, ErrExpired) {
		t.Errorf("expired delegation: %v", err)
	}
}

func TestProxyExpiry(t *testing.T) {
	clock := newClock()
	r := repoWith(clock)
	delegate(t, r)
	p, err := r.Retrieve("jane", "s3cret", 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Valid(clock.t) {
		t.Error("proxy must start valid")
	}
	if p.Valid(clock.t.Add(11 * time.Minute)) {
		t.Error("proxy must expire")
	}
	if (Proxy{}).Valid(clock.t) {
		t.Error("zero proxy must be invalid")
	}
}

func TestRedelegationReplaces(t *testing.T) {
	clock := newClock()
	r := repoWith(clock)
	delegate(t, r)
	if err := r.Delegate("jane", "newpass", "/C=US/O=NVO/CN=Jane", time.Hour, time.Hour); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Retrieve("jane", "s3cret", time.Minute); !errors.Is(err, ErrBadPassphrase) {
		t.Error("old passphrase must stop working")
	}
	if _, err := r.Retrieve("jane", "newpass", time.Minute); err != nil {
		t.Errorf("new passphrase: %v", err)
	}
}

func TestDestroyAndInfo(t *testing.T) {
	r := repoWith(newClock())
	delegate(t, r)

	subject, expires, err := r.Info("jane")
	if err != nil || subject == "" || expires.IsZero() {
		t.Fatalf("Info = %q, %v, %v", subject, expires, err)
	}
	if _, _, err := r.Info("ghost"); !errors.Is(err, ErrUnknownUser) {
		t.Errorf("Info ghost: %v", err)
	}

	if err := r.Destroy("jane", "wrong"); !errors.Is(err, ErrBadPassphrase) {
		t.Errorf("Destroy wrong pass: %v", err)
	}
	if err := r.Destroy("jane", "s3cret"); err != nil {
		t.Fatal(err)
	}
	if err := r.Destroy("jane", "s3cret"); !errors.Is(err, ErrUnknownUser) {
		t.Errorf("double destroy: %v", err)
	}
}

func BenchmarkRetrieve(b *testing.B) {
	r := New()
	if err := r.Delegate("jane", "s3cret", "/CN=Jane", 24*time.Hour, time.Hour); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := r.Retrieve("jane", "s3cret", time.Hour); err != nil {
			b.Fatal(err)
		}
	}
}
