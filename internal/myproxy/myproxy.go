// Package myproxy implements the online credential repository the paper
// plans for user authentication (§4.3.1 item 5: "for a more general
// solution, we are planning to use MyProxy", after Novotny et al. 2001).
//
// The model follows MyProxy's: a user delegates a proxy credential to the
// repository under a username and passphrase with a lifetime; a service
// acting on the user's behalf retrieves a short-lived proxy by presenting
// the passphrase; proxies expire and can be renewed from the stored
// delegation while it remains valid. Cryptography is simulated — the
// "credential" is an opaque token derived by hashing — but the lifetime,
// passphrase and delegation-chain semantics are real, which is what the
// Grid-workflow code paths depend on.
package myproxy

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Proxy is a short-lived credential retrieved from the repository.
type Proxy struct {
	Subject  string // identity, e.g. "/C=US/O=NVO/CN=Jane Astronomer"
	Token    string // opaque credential material
	IssuedAt time.Time
	Expires  time.Time
}

// Valid reports whether the proxy is usable at the given instant.
func (p Proxy) Valid(now time.Time) bool {
	return p.Token != "" && now.Before(p.Expires)
}

// Errors returned by the repository.
var (
	ErrBadRequest    = errors.New("myproxy: username, passphrase and subject required")
	ErrUnknownUser   = errors.New("myproxy: no credential stored for user")
	ErrBadPassphrase = errors.New("myproxy: passphrase mismatch")
	ErrExpired       = errors.New("myproxy: stored delegation expired")
	ErrShortLifetime = errors.New("myproxy: lifetime must be positive")
)

// stored is one delegated credential.
type stored struct {
	subject    string
	passHash   [32]byte
	delegated  time.Time
	expires    time.Time
	maxProxyTT time.Duration
	serial     int
}

// Repository is the credential store. The clock is injectable so lifetime
// behaviour is testable without sleeping.
type Repository struct {
	now func() time.Time

	mu    sync.Mutex
	users map[string]*stored
}

// New returns a repository using the real clock.
//
//nvolint:ignore noclock New is the documented wall-clock boundary: live credential lifetimes are real time; deterministic paths use NewWithClock
func New() *Repository { return NewWithClock(time.Now) }

// NewWithClock returns a repository with an injected clock.
func NewWithClock(now func() time.Time) *Repository {
	return &Repository{now: now, users: map[string]*stored{}}
}

// Delegate stores a credential for username protected by passphrase. The
// delegation lives for lifetime; proxies retrieved from it last at most
// maxProxyLifetime (clamped to the remaining delegation lifetime).
// Re-delegating replaces any previous credential.
func (r *Repository) Delegate(username, passphrase, subject string, lifetime, maxProxyLifetime time.Duration) error {
	if username == "" || passphrase == "" || subject == "" {
		return ErrBadRequest
	}
	if lifetime <= 0 || maxProxyLifetime <= 0 {
		return ErrShortLifetime
	}
	now := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.users[username] = &stored{
		subject:    subject,
		passHash:   sha256.Sum256([]byte(passphrase)),
		delegated:  now,
		expires:    now.Add(lifetime),
		maxProxyTT: maxProxyLifetime,
	}
	return nil
}

// Retrieve issues a short-lived proxy from the stored delegation.
func (r *Repository) Retrieve(username, passphrase string, lifetime time.Duration) (Proxy, error) {
	if lifetime <= 0 {
		return Proxy{}, ErrShortLifetime
	}
	now := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.users[username]
	if !ok {
		return Proxy{}, fmt.Errorf("%w: %q", ErrUnknownUser, username)
	}
	want := sha256.Sum256([]byte(passphrase))
	if !hmac.Equal(s.passHash[:], want[:]) {
		return Proxy{}, ErrBadPassphrase
	}
	if !now.Before(s.expires) {
		return Proxy{}, fmt.Errorf("%w (at %s)", ErrExpired, s.expires.Format(time.RFC3339))
	}
	if lifetime > s.maxProxyTT {
		lifetime = s.maxProxyTT
	}
	expires := now.Add(lifetime)
	if expires.After(s.expires) {
		expires = s.expires
	}
	s.serial++
	return Proxy{
		Subject:  s.subject,
		Token:    deriveToken(username, s.passHash, s.serial, expires),
		IssuedAt: now,
		Expires:  expires,
	}, nil
}

// Destroy removes a user's delegation.
func (r *Repository) Destroy(username, passphrase string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.users[username]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownUser, username)
	}
	want := sha256.Sum256([]byte(passphrase))
	if !hmac.Equal(s.passHash[:], want[:]) {
		return ErrBadPassphrase
	}
	delete(r.users, username)
	return nil
}

// Info reports a delegation's subject and expiry without authenticating
// (MyProxy's anonymous info operation).
func (r *Repository) Info(username string) (subject string, expires time.Time, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.users[username]
	if !ok {
		return "", time.Time{}, fmt.Errorf("%w: %q", ErrUnknownUser, username)
	}
	return s.subject, s.expires, nil
}

// deriveToken builds the opaque credential material. Including the serial
// makes every retrieval distinct, as real proxy certificates are.
func deriveToken(username string, passHash [32]byte, serial int, expires time.Time) string {
	mac := hmac.New(sha256.New, passHash[:])
	fmt.Fprintf(mac, "%s|%d|%d", username, serial, expires.UnixNano())
	return hex.EncodeToString(mac.Sum(nil))
}
