package services

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"repro/internal/votable"
	"repro/internal/wcs"
)

// tableBytes renders a table exactly as the HTTP layer would.
func tableBytes(t *testing.T, tab *votable.Table) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := votable.WriteTable(&buf, tab); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestConeSearchPagedByteIdentical checks that the paged client's merged
// table renders byte-identically to the unpaged protocol for every page
// size, including pages larger than the result set.
func TestConeSearchPagedByteIdentical(t *testing.T) {
	a := testArchive(t)
	srv := httptest.NewServer(a.Handler())
	defer srv.Close()
	hc := srv.Client()
	pos := wcs.New(195, 28)

	want, err := ConeSearch(hc, srv.URL+"/cone", pos, 1)
	if err != nil {
		t.Fatal(err)
	}
	if want.NumRows() < 10 {
		t.Fatalf("fixture too small: %d rows", want.NumRows())
	}
	wantBytes := tableBytes(t, want)

	for _, pageSize := range []int{1, 3, 7, want.NumRows(), want.NumRows() + 50} {
		got, err := ConeSearchPaged(hc, srv.URL+"/cone", pos, 1, pageSize)
		if err != nil {
			t.Fatalf("page size %d: %v", pageSize, err)
		}
		if !bytes.Equal(tableBytes(t, got), wantBytes) {
			t.Fatalf("page size %d: merged table diverges from unpaged response", pageSize)
		}
	}
	// pageSize <= 0 falls back to the classic protocol.
	got, err := ConeSearchPaged(hc, srv.URL+"/cone", pos, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tableBytes(t, got), wantBytes) {
		t.Fatal("pageSize 0 must be the unpaged protocol")
	}
}

// TestConeSearchPageBounded checks that a paged response really is bounded
// by MAXREC server-side.
func TestConeSearchPageBounded(t *testing.T) {
	a := testArchive(t)
	srv := httptest.NewServer(a.Handler())
	defer srv.Close()
	hc := srv.Client()

	page, err := getVOTable(hc, srv.URL+"/cone?RA=195&DEC=28&SR=1&MAXREC=5&OFFSET=0")
	if err != nil {
		t.Fatal(err)
	}
	if page.NumRows() != 5 {
		t.Fatalf("MAXREC=5 returned %d rows", page.NumRows())
	}
	// OFFSET without MAXREC streams from the offset to the end.
	full := a.ConeSearch(wcs.New(195, 28), 1)
	tail, err := getVOTable(hc, srv.URL+"/cone?RA=195&DEC=28&SR=1&OFFSET=2")
	if err != nil {
		t.Fatal(err)
	}
	if tail.NumRows() != full.NumRows()-2 {
		t.Fatalf("OFFSET=2 returned %d rows, want %d", tail.NumRows(), full.NumRows()-2)
	}
	if !reflect.DeepEqual(tail.Rows, full.Rows[2:]) {
		t.Fatal("OFFSET tail diverges from the unpaged row order")
	}
}

// TestConeSearchRowsStreams checks the row-callback paged client against
// the in-memory table: same metadata, same rows, same order.
func TestConeSearchRowsStreams(t *testing.T) {
	a := testArchive(t)
	srv := httptest.NewServer(a.Handler())
	defer srv.Close()
	hc := srv.Client()
	pos := wcs.New(195, 28)

	want, err := ConeSearch(hc, srv.URL+"/cone", pos, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, pageSize := range []int{0, 1, 7, want.NumRows() + 5} {
		var rows [][]string
		var fields []votable.Field
		err := ConeSearchRows(hc, srv.URL+"/cone", pos, 1, pageSize, func(meta *votable.TableMeta, cells []string) error {
			fields = meta.Fields
			rows = append(rows, append([]string(nil), cells...))
			return nil
		})
		if err != nil {
			t.Fatalf("page size %d: %v", pageSize, err)
		}
		if !reflect.DeepEqual(rows, want.Rows) {
			t.Fatalf("page size %d: streamed rows diverge from table", pageSize)
		}
		if !reflect.DeepEqual(fields, want.Fields) {
			t.Fatalf("page size %d: streamed metadata diverges", pageSize)
		}
	}
}

// TestSIAQueryPagedMatchesUnpaged covers both SIA endpoints: the cutout
// service (one row per galaxy — the big one) and the field-image listing.
func TestSIAQueryPagedMatchesUnpaged(t *testing.T) {
	a := testArchive(t)
	srv := httptest.NewServer(a.Handler())
	defer srv.Close()
	hc := srv.Client()
	pos := wcs.New(195, 28)

	for _, ep := range []struct {
		path string
		size float64
	}{{"/siacut", 1}, {"/sia", 0.5}} {
		want, err := SIAQuery(hc, srv.URL+ep.path, pos, ep.size)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) == 0 {
			t.Fatalf("%s: empty fixture", ep.path)
		}
		for _, pageSize := range []int{1, 3, len(want), len(want) + 5} {
			got, err := SIAQueryPaged(hc, srv.URL+ep.path, pos, ep.size, pageSize)
			if err != nil {
				t.Fatalf("%s page size %d: %v", ep.path, pageSize, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s page size %d: paged records diverge", ep.path, pageSize)
			}
		}
	}
}

// TestSIAQueryCutoutsPageReassembles pins the archive-level paging: pages
// concatenate into the unpaged table, and only the final page comes short.
func TestSIAQueryCutoutsPageReassembles(t *testing.T) {
	a := testArchive(t)
	pos := wcs.New(195, 28)
	want := a.SIAQueryCutouts(pos, 2)
	for _, pageSize := range []int{1, 4, want.NumRows(), want.NumRows() + 3} {
		merged := votable.NewTable(want.Name, want.Fields...)
		for offset := 0; ; offset += pageSize {
			page := a.SIAQueryCutoutsPage(pos, 2, offset, pageSize)
			if page.NumRows() > pageSize {
				t.Fatalf("page size %d: page holds %d rows", pageSize, page.NumRows())
			}
			merged.Rows = append(merged.Rows, page.Rows...)
			if page.NumRows() < pageSize {
				break
			}
		}
		if !bytes.Equal(tableBytes(t, merged), tableBytes(t, want)) {
			t.Fatalf("page size %d: reassembled cutout pages diverge", pageSize)
		}
	}
	if n := a.SIAQueryCutoutsPage(pos, 2, 0, 0).NumRows(); n != 0 {
		t.Errorf("maxrec 0 returned %d rows", n)
	}
	if n := a.SIAQueryCutoutsPage(pos, 2, want.NumRows()+10, 5).NumRows(); n != 0 {
		t.Errorf("past-the-end page returned %d rows", n)
	}
}

// TestPagingBadParams checks that malformed MAXREC/OFFSET answer 400.
func TestPagingBadParams(t *testing.T) {
	a := testArchive(t)
	srv := httptest.NewServer(a.Handler())
	defer srv.Close()

	for _, path := range []string{
		"/cone?RA=195&DEC=28&SR=1&MAXREC=x",
		"/cone?RA=195&DEC=28&SR=1&MAXREC=-1",
		"/cone?RA=195&DEC=28&SR=1&OFFSET=-3",
		"/siacut?POS=195,28&SIZE=1&MAXREC=1.5",
		"/sia?POS=195,28&SIZE=1&OFFSET=nope",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body := make([]byte, 128)
		n, _ := resp.Body.Read(body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s -> %d, want 400", path, resp.StatusCode)
		}
		if !strings.Contains(string(body[:n]), "bad query") {
			t.Errorf("%s body %q lacks bad-query marker", path, body[:n])
		}
	}
}
