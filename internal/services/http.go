package services

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"repro/internal/faults"
	"repro/internal/fits"
	"repro/internal/votable"
	"repro/internal/wcs"
)

// faultGate consults the injector for one request. Corruption faults let the
// request proceed but mark the response for damage (a truncated payload the
// client's VOTable/FITS parser rejects); every other fault kind answers 503,
// the face an unreachable or overloaded archive shows a portal.
func (a *Archive) faultGate(w http.ResponseWriter, op faults.Op) (corrupt, proceed bool) {
	err := a.injector().Check(op)
	if err == nil {
		return false, true
	}
	if faults.Is(err, faults.KindCorruption) {
		return true, true
	}
	http.Error(w, err.Error(), http.StatusServiceUnavailable)
	return false, false
}

// writeBody sends a response payload, truncating it when a corruption fault
// is in effect so the damage is detectable downstream.
func writeBody(w http.ResponseWriter, ctype string, data []byte, corrupt bool) {
	if corrupt && len(data) > 1 {
		data = data[:len(data)/2]
	}
	w.Header().Set("Content-Type", ctype)
	_, _ = w.Write(data)
}

// Handler exposes the archive over HTTP with the NVO protocol endpoints:
//
//	GET /cone?RA=&DEC=&SR=            Cone Search        -> VOTable
//	GET /sia?POS=ra,dec&SIZE=deg      large-scale images -> VOTable of acrefs
//	GET /siacut?POS=ra,dec&SIZE=deg   cutout service     -> VOTable of acrefs
//	GET /cutout?id=<galaxy>           cutout image       -> FITS
//	GET /image?cluster=&band=         large-scale image  -> FITS
func (a *Archive) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("/cone", func(w http.ResponseWriter, req *http.Request) {
		pos, err := parseRADecSR(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		page, err := parsePage(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		corrupt, proceed := a.faultGate(w, faults.Op{Name: OpCone, Site: a.name})
		if !proceed {
			return
		}
		if page.active {
			writeVOTable(w, a.ConeSearchPage(pos.center, pos.radius, page.offset, page.maxrec), corrupt)
			return
		}
		writeVOTable(w, a.ConeSearch(pos.center, pos.radius), corrupt)
	})

	mux.HandleFunc("/sia", func(w http.ResponseWriter, req *http.Request) {
		pos, size, err := parsePosSize(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		page, err := parsePage(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		corrupt, proceed := a.faultGate(w, faults.Op{Name: OpSIA, Site: a.name, Key: "sia"})
		if !proceed {
			return
		}
		t := a.SIAQueryFields(pos, size)
		if page.active {
			t = pageOf(t, page.offset, page.maxrec)
		}
		writeVOTable(w, t, corrupt)
	})

	mux.HandleFunc("/siacut", func(w http.ResponseWriter, req *http.Request) {
		pos, size, err := parsePosSize(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		page, err := parsePage(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		corrupt, proceed := a.faultGate(w, faults.Op{Name: OpSIA, Site: a.name, Key: "siacut"})
		if !proceed {
			return
		}
		if page.active {
			writeVOTable(w, a.SIAQueryCutoutsPage(pos, size, page.offset, page.maxrec), corrupt)
			return
		}
		writeVOTable(w, a.SIAQueryCutouts(pos, size), corrupt)
	})

	mux.HandleFunc("/cutout", func(w http.ResponseWriter, req *http.Request) {
		id := req.URL.Query().Get("id")
		if id == "" {
			http.Error(w, "missing id", http.StatusBadRequest)
			return
		}
		corrupt, proceed := a.faultGate(w, faults.Op{Name: OpCutout, Site: a.name, Key: id})
		if !proceed {
			return
		}
		_, data, err := a.CutoutFITS(id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeBody(w, "application/fits", data, corrupt)
	})

	mux.HandleFunc("/cutoutbatch", func(w http.ResponseWriter, req *http.Request) {
		idsParam := req.URL.Query().Get("ids")
		if idsParam == "" {
			http.Error(w, "missing ids", http.StatusBadRequest)
			return
		}
		corrupt, proceed := a.faultGate(w, faults.Op{Name: OpCutout, Site: a.name, Key: idsParam})
		if !proceed {
			return
		}
		data, err := a.CutoutBatchFITS(strings.Split(idsParam, ","))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeBody(w, "application/fits", data, corrupt)
	})

	mux.HandleFunc("/image", func(w http.ResponseWriter, req *http.Request) {
		cluster := req.URL.Query().Get("cluster")
		band := Band(req.URL.Query().Get("band"))
		if cluster == "" || band == "" {
			http.Error(w, "missing cluster or band", http.StatusBadRequest)
			return
		}
		corrupt, proceed := a.faultGate(w, faults.Op{Name: OpCutout, Site: a.name, Key: cluster + "/" + string(band)})
		if !proceed {
			return
		}
		data, err := a.FieldFITS(cluster, band)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeBody(w, "application/fits", data, corrupt)
	})

	return mux
}

type coneParams struct {
	center wcs.SkyCoord
	radius float64
}

func parseRADecSR(req *http.Request) (coneParams, error) {
	q := req.URL.Query()
	ra, err1 := strconv.ParseFloat(q.Get("RA"), 64)
	dec, err2 := strconv.ParseFloat(q.Get("DEC"), 64)
	sr, err3 := strconv.ParseFloat(q.Get("SR"), 64)
	if err1 != nil || err2 != nil || err3 != nil {
		return coneParams{}, fmt.Errorf("%w: need numeric RA, DEC, SR", ErrBadQuery)
	}
	if sr < 0 || dec < -90 || dec > 90 {
		return coneParams{}, fmt.Errorf("%w: out-of-range RA/DEC/SR", ErrBadQuery)
	}
	return coneParams{center: wcs.New(ra, dec), radius: sr}, nil
}

func parsePosSize(req *http.Request) (wcs.SkyCoord, float64, error) {
	q := req.URL.Query()
	parts := strings.Split(q.Get("POS"), ",")
	if len(parts) != 2 {
		return wcs.SkyCoord{}, 0, fmt.Errorf("%w: POS must be ra,dec", ErrBadQuery)
	}
	ra, err1 := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	dec, err2 := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	size, err3 := strconv.ParseFloat(q.Get("SIZE"), 64)
	if err1 != nil || err2 != nil || err3 != nil {
		return wcs.SkyCoord{}, 0, fmt.Errorf("%w: need numeric POS and SIZE", ErrBadQuery)
	}
	if size < 0 || dec < -90 || dec > 90 {
		return wcs.SkyCoord{}, 0, fmt.Errorf("%w: out-of-range POS/SIZE", ErrBadQuery)
	}
	return wcs.New(ra, dec), size, nil
}

// pageParams carries the optional MAXREC/OFFSET paging window of a request.
// active is false when neither parameter is present, in which case the
// handler answers the classic unpaged table so existing clients keep seeing
// byte-identical responses.
type pageParams struct {
	offset int
	maxrec int // -1: unbounded (OFFSET without MAXREC)
	active bool
}

func parsePage(req *http.Request) (pageParams, error) {
	q := req.URL.Query()
	mr, off := q.Get("MAXREC"), q.Get("OFFSET")
	if mr == "" && off == "" {
		return pageParams{}, nil
	}
	p := pageParams{maxrec: -1, active: true}
	var err error
	if mr != "" {
		if p.maxrec, err = strconv.Atoi(mr); err != nil || p.maxrec < 0 {
			return pageParams{}, fmt.Errorf("%w: MAXREC must be a non-negative integer", ErrBadQuery)
		}
	}
	if off != "" {
		if p.offset, err = strconv.Atoi(off); err != nil || p.offset < 0 {
			return pageParams{}, fmt.Errorf("%w: OFFSET must be a non-negative integer", ErrBadQuery)
		}
	}
	return p, nil
}

// pageOf returns a shallow copy of t restricted to the [offset,
// offset+maxrec) rows; a negative maxrec means "to the end". It serves the
// endpoints whose tables are already bounded (per-cluster field listings)
// and only need protocol-level paging, not a bounded-memory build.
func pageOf(t *votable.Table, offset, maxrec int) *votable.Table {
	page := *t
	if offset < 0 {
		offset = 0
	}
	if offset > len(t.Rows) {
		offset = len(t.Rows)
	}
	end := len(t.Rows)
	if maxrec >= 0 && offset+maxrec < end {
		end = offset + maxrec
	}
	page.Rows = t.Rows[offset:end]
	return &page
}

func writeVOTable(w http.ResponseWriter, t *votable.Table, corrupt bool) {
	var buf bytes.Buffer
	_ = votable.WriteTable(&buf, t)
	writeBody(w, "text/xml", buf.Bytes(), corrupt)
}

// --- protocol clients -------------------------------------------------------

// ConeSearch performs a Cone Search request against base (e.g.
// "http://ned.example/cone") and parses the VOTable response.
func ConeSearch(hc *http.Client, base string, pos wcs.SkyCoord, sr float64) (*votable.Table, error) {
	u := fmt.Sprintf("%s?RA=%s&DEC=%s&SR=%s", base,
		url.QueryEscape(votable.FormatFloat(pos.RA)),
		url.QueryEscape(votable.FormatFloat(pos.Dec)),
		url.QueryEscape(votable.FormatFloat(sr)))
	return getVOTable(hc, u)
}

// ConeSearchPaged performs a Cone Search in pages of pageSize rows
// (MAXREC/OFFSET) and returns the merged table. The server slices one
// globally sorted hit list, so the merged table is byte-identical to an
// unpaged ConeSearch while each HTTP response — and the server-side table
// build — stays bounded by pageSize. pageSize <= 0 falls back to the
// unpaged protocol.
func ConeSearchPaged(hc *http.Client, base string, pos wcs.SkyCoord, sr float64, pageSize int) (*votable.Table, error) {
	if pageSize <= 0 {
		return ConeSearch(hc, base, pos, sr)
	}
	var merged *votable.Table
	for offset := 0; ; offset += pageSize {
		page, err := getVOTable(hc, conePageURL(base, pos, sr, offset, pageSize))
		if err != nil {
			return nil, err
		}
		if merged == nil {
			merged = page
		} else {
			merged.Rows = append(merged.Rows, page.Rows...)
		}
		if page.NumRows() < pageSize {
			return merged, nil
		}
	}
}

// ConeSearchRows streams a paged Cone Search row by row: fn sees the table
// metadata plus each row's cells, in the same global order ConeSearch
// returns, without the client ever holding a page table in memory. cells is
// only valid for the duration of the call. pageSize <= 0 streams one
// unpaged response.
func ConeSearchRows(hc *http.Client, base string, pos wcs.SkyCoord, sr float64, pageSize int, fn func(meta *votable.TableMeta, cells []string) error) error {
	if pageSize <= 0 {
		u := fmt.Sprintf("%s?RA=%s&DEC=%s&SR=%s", base,
			url.QueryEscape(votable.FormatFloat(pos.RA)),
			url.QueryEscape(votable.FormatFloat(pos.Dec)),
			url.QueryEscape(votable.FormatFloat(sr)))
		_, err := getVOTableRows(hc, u, fn)
		return err
	}
	for offset := 0; ; offset += pageSize {
		n, err := getVOTableRows(hc, conePageURL(base, pos, sr, offset, pageSize), fn)
		if err != nil {
			return err
		}
		if n < pageSize {
			return nil
		}
	}
}

func conePageURL(base string, pos wcs.SkyCoord, sr float64, offset, maxrec int) string {
	return fmt.Sprintf("%s?RA=%s&DEC=%s&SR=%s&MAXREC=%d&OFFSET=%d", base,
		url.QueryEscape(votable.FormatFloat(pos.RA)),
		url.QueryEscape(votable.FormatFloat(pos.Dec)),
		url.QueryEscape(votable.FormatFloat(sr)),
		maxrec, offset)
}

// getVOTableRows fetches u and decodes the response incrementally through
// votable.DecodeRows, returning the number of rows seen.
func getVOTableRows(hc *http.Client, u string, fn func(meta *votable.TableMeta, cells []string) error) (int, error) {
	resp, err := hc.Get(u)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return 0, fmt.Errorf("services: GET %s: status %d: %s", u, resp.StatusCode, body)
	}
	n := 0
	err = votable.DecodeRows(resp.Body, nil, func(meta *votable.TableMeta, cells []string) error {
		n++
		return fn(meta, cells)
	})
	return n, err
}

// SIARecord is one parsed row of an SIA response.
type SIARecord struct {
	Title  string
	Pos    wcs.SkyCoord
	Naxis1 int
	Naxis2 int
	Format string
	AcRef  string
}

// SIAQuery performs an SIA request against base (".../sia" or ".../siacut")
// and parses the image references.
func SIAQuery(hc *http.Client, base string, pos wcs.SkyCoord, sizeDeg float64) ([]SIARecord, error) {
	u := fmt.Sprintf("%s?POS=%s,%s&SIZE=%s", base,
		url.QueryEscape(votable.FormatFloat(pos.RA)),
		url.QueryEscape(votable.FormatFloat(pos.Dec)),
		url.QueryEscape(votable.FormatFloat(sizeDeg)))
	t, err := getVOTable(hc, u)
	if err != nil {
		return nil, err
	}
	return siaRecords(nil, t), nil
}

// SIAQueryPaged performs an SIA request in pages of pageSize rows
// (MAXREC/OFFSET) and returns the merged record list, identical to an
// unpaged SIAQuery while each response stays bounded by pageSize.
// pageSize <= 0 falls back to the unpaged protocol.
func SIAQueryPaged(hc *http.Client, base string, pos wcs.SkyCoord, sizeDeg float64, pageSize int) ([]SIARecord, error) {
	if pageSize <= 0 {
		return SIAQuery(hc, base, pos, sizeDeg)
	}
	var out []SIARecord
	for offset := 0; ; offset += pageSize {
		u := fmt.Sprintf("%s?POS=%s,%s&SIZE=%s&MAXREC=%d&OFFSET=%d", base,
			url.QueryEscape(votable.FormatFloat(pos.RA)),
			url.QueryEscape(votable.FormatFloat(pos.Dec)),
			url.QueryEscape(votable.FormatFloat(sizeDeg)),
			pageSize, offset)
		t, err := getVOTable(hc, u)
		if err != nil {
			return nil, err
		}
		out = siaRecords(out, t)
		if t.NumRows() < pageSize {
			return out, nil
		}
	}
}

// siaRecords appends t's rows to dst as parsed SIA records.
func siaRecords(dst []SIARecord, t *votable.Table) []SIARecord {
	for i := 0; i < t.NumRows(); i++ {
		ra, _ := t.Float(i, "ra")
		dec, _ := t.Float(i, "dec")
		n1, _ := t.Int(i, "naxis1")
		n2, _ := t.Int(i, "naxis2")
		dst = append(dst, SIARecord{
			Title:  t.Cell(i, "title"),
			Pos:    wcs.New(ra, dec),
			Naxis1: int(n1),
			Naxis2: int(n2),
			Format: t.Cell(i, "format"),
			AcRef:  t.Cell(i, "acref"),
		})
	}
	return dst
}

func getVOTable(hc *http.Client, u string) (*votable.Table, error) {
	resp, err := hc.Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("services: GET %s: status %d: %s", u, resp.StatusCode, body)
	}
	return votable.ReadTable(resp.Body)
}

// FetchFITSBatch downloads a concatenated FITS stream (a /cutoutbatch
// response) and decodes every image in it.
func FetchFITSBatch(hc *http.Client, u string) ([]*fits.Image, error) {
	resp, err := hc.Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("services: GET %s: status %d: %s", u, resp.StatusCode, body)
	}
	// Decode straight off the wire: each image is parsed from its
	// 2880-byte records as they arrive, so a survey-sized batch never
	// buffers the whole response body.
	var out []*fits.Image
	err = fits.DecodeStream(resp.Body, func(_ int, im *fits.Image) error {
		out = append(out, im)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("services: batch from %s: %w", u, err)
	}
	return out, nil
}

// FetchFITS downloads and decodes a FITS image (an SIA acref dereference).
func FetchFITS(hc *http.Client, u string) (*fits.Image, error) {
	resp, err := hc.Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("services: GET %s: status %d: %s", u, resp.StatusCode, body)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return fits.Decode(bytes.NewReader(data))
}
