package services

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/fits"
	"repro/internal/skysim"
	"repro/internal/wcs"
)

func testArchive(t testing.TB) *Archive {
	t.Helper()
	c1 := skysim.Generate(skysim.Spec{
		Name: "COMA", Center: wcs.New(195, 28), Redshift: 0.023, NumGalaxies: 60, Seed: 1,
	})
	c2 := skysim.Generate(skysim.Spec{
		Name: "A1689", Center: wcs.New(197.8, -1.3), Redshift: 0.18, NumGalaxies: 40, Seed: 2,
	})
	return NewArchive("mast", c1, c2)
}

func TestArchiveBasics(t *testing.T) {
	a := testArchive(t)
	if a.Name() != "mast" {
		t.Error("name lost")
	}
	cl := a.Clusters()
	if len(cl) != 2 || cl[0] != "A1689" || cl[1] != "COMA" {
		t.Errorf("clusters = %v", cl)
	}
	if _, ok := a.Cluster("COMA"); !ok {
		t.Error("COMA missing")
	}
	if a.Catalog().Len() != 100 {
		t.Errorf("merged catalog = %d", a.Catalog().Len())
	}
}

func TestConeSearchScopesToCluster(t *testing.T) {
	a := testArchive(t)
	tab := a.ConeSearch(wcs.New(195, 28), 1)
	if tab.NumRows() == 0 || tab.NumRows() > 60 {
		t.Fatalf("cone rows = %d", tab.NumRows())
	}
	for i := 0; i < tab.NumRows(); i++ {
		if got := tab.Cell(i, "cluster"); got != "COMA" {
			t.Fatalf("row %d cluster = %q", i, got)
		}
	}
}

func TestGalaxyLookup(t *testing.T) {
	a := testArchive(t)
	c, _ := a.Cluster("COMA")
	g, ok := a.Galaxy(c.Galaxies[0].ID)
	if !ok || g.ID != c.Galaxies[0].ID {
		t.Fatalf("Galaxy = %+v, %v", g, ok)
	}
	for _, id := range []string{"", "noclash", "GHOST-000001", "COMA-999999"} {
		if _, ok := a.Galaxy(id); ok {
			t.Errorf("Galaxy(%q) should fail", id)
		}
	}
}

func TestCutoutFITSDeterministic(t *testing.T) {
	a := testArchive(t)
	c, _ := a.Cluster("COMA")
	id := c.Galaxies[0].ID
	_, d1, err := a.CutoutFITS(id)
	if err != nil {
		t.Fatal(err)
	}
	_, d2, err := a.CutoutFITS(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d1, d2) {
		t.Error("cutouts must be bit-identical across requests")
	}
	im, err := fits.Decode(bytes.NewReader(d1))
	if err != nil {
		t.Fatal(err)
	}
	if im.Header.Str("OBJECT", "") != id {
		t.Errorf("OBJECT = %q", im.Header.Str("OBJECT", ""))
	}
	if _, _, err := a.CutoutFITS("GHOST-1"); err == nil {
		t.Error("unknown galaxy must fail")
	}
}

func TestFieldFITSAndCache(t *testing.T) {
	a := testArchive(t)
	d1, err := a.FieldFITS("COMA", BandOptical)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := a.FieldFITS("COMA", BandOptical)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d1, d2) {
		t.Error("cached field image must be identical")
	}
	if _, err := a.FieldFITS("COMA", BandXRay); err != nil {
		t.Fatal(err)
	}
	if _, err := a.FieldFITS("GHOST", BandOptical); err == nil {
		t.Error("unknown cluster must fail")
	}
	if _, err := a.FieldFITS("COMA", Band("radio")); err == nil {
		t.Error("unknown band must fail")
	}
}

func TestSIAQueryFields(t *testing.T) {
	a := testArchive(t)
	tab := a.SIAQueryFields(wcs.New(195, 28), 0.5)
	if tab.NumRows() != 2 { // optical + xray for COMA only
		t.Fatalf("rows = %d", tab.NumRows())
	}
	if !strings.Contains(tab.Cell(0, "acref"), "/image?cluster=COMA") {
		t.Errorf("acref = %q", tab.Cell(0, "acref"))
	}
	// Far away: nothing.
	if n := a.SIAQueryFields(wcs.New(10, -70), 0.5).NumRows(); n != 0 {
		t.Errorf("far query rows = %d", n)
	}
}

func TestSIAQueryCutouts(t *testing.T) {
	a := testArchive(t)
	tab := a.SIAQueryCutouts(wcs.New(195, 28), 2)
	if tab.NumRows() == 0 {
		t.Fatal("no cutout rows")
	}
	if !strings.HasPrefix(tab.Cell(0, "acref"), "/cutout?id=COMA-") {
		t.Errorf("acref = %q", tab.Cell(0, "acref"))
	}
}

func TestHTTPEndToEnd(t *testing.T) {
	a := testArchive(t)
	srv := httptest.NewServer(a.Handler())
	defer srv.Close()
	hc := srv.Client()

	// Cone search.
	tab, err := ConeSearch(hc, srv.URL+"/cone", wcs.New(195, 28), 1)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() == 0 {
		t.Fatal("cone search returned nothing")
	}

	// SIA for large-scale images, then dereference one.
	recs, err := SIAQuery(hc, srv.URL+"/sia", wcs.New(195, 28), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("sia records = %d", len(recs))
	}
	im, err := FetchFITS(hc, srv.URL+recs[0].AcRef)
	if err != nil {
		t.Fatal(err)
	}
	if im.Nx != 512 || im.Ny != 512 {
		t.Errorf("field image %dx%d", im.Nx, im.Ny)
	}

	// Cutout SIA, then dereference a cutout.
	cuts, err := SIAQuery(hc, srv.URL+"/siacut", wcs.New(195, 28), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cuts) == 0 {
		t.Fatal("no cutouts")
	}
	cut, err := FetchFITS(hc, srv.URL+cuts[0].AcRef)
	if err != nil {
		t.Fatal(err)
	}
	if cut.Nx != cuts[0].Naxis1 {
		t.Errorf("cutout size %d, SIA said %d", cut.Nx, cuts[0].Naxis1)
	}
	if _, ok := cut.WCS(); !ok {
		t.Error("cutout lost WCS")
	}
}

func TestHTTPBadRequests(t *testing.T) {
	a := testArchive(t)
	srv := httptest.NewServer(a.Handler())
	defer srv.Close()

	cases := []string{
		"/cone",
		"/cone?RA=x&DEC=0&SR=1",
		"/cone?RA=0&DEC=95&SR=1",
		"/cone?RA=0&DEC=0&SR=-1",
		"/sia?POS=1&SIZE=1",
		"/sia?POS=a,b&SIZE=1",
		"/sia?POS=1,2&SIZE=-1",
		"/siacut?POS=1&SIZE=1",
		"/cutout",
		"/image?cluster=COMA",
	}
	for _, path := range cases {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s -> %d, want 400", path, resp.StatusCode)
		}
	}
	for _, path := range []string{"/cutout?id=GHOST-1", "/image?cluster=GHOST&band=optical"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s -> %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestTable1Registry(t *testing.T) {
	entries := Table1()
	if len(entries) != 5 {
		t.Fatalf("Table 1 has %d entries, want 5", len(entries))
	}
	// Spot-check the interface bindings against the paper.
	byCollection := map[string][]string{}
	for _, e := range entries {
		byCollection[e.Collection] = e.Interfaces
	}
	if got := byCollection["Chandra Data Archive"]; len(got) != 1 || got[0] != InterfaceSIA {
		t.Errorf("Chandra interfaces = %v", got)
	}
	if got := byCollection["NASA Extragalactic Database (NED)"]; len(got) != 1 || got[0] != InterfaceCone {
		t.Errorf("NED interfaces = %v", got)
	}
	if got := byCollection["Digitized Sky Survey (DSS)"]; len(got) != 2 {
		t.Errorf("DSS interfaces = %v", got)
	}

	tab := RegistryVOTable(entries)
	if tab.NumRows() != 5 {
		t.Fatalf("registry table rows = %d", tab.NumRows())
	}
	if !strings.Contains(tab.Cell(4, "interfaces"), InterfaceCone) {
		t.Errorf("MAST row = %v", tab.Rows[4])
	}
}

func BenchmarkConeSearchHTTP(b *testing.B) {
	a := testArchive(b)
	srv := httptest.NewServer(a.Handler())
	defer srv.Close()
	hc := srv.Client()
	pos := wcs.New(195, 28)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ConeSearch(hc, srv.URL+"/cone", pos, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSIACutoutQuery(b *testing.B) {
	a := testArchive(b)
	pos := wcs.New(195, 28)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tab := a.SIAQueryCutouts(pos, 2); tab.NumRows() == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkCutoutRender(b *testing.B) {
	a := testArchive(b)
	c, _ := a.Cluster("COMA")
	id := c.Galaxies[0].ID
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := a.CutoutFITS(id); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCutoutBatch(t *testing.T) {
	a := testArchive(t)
	c, _ := a.Cluster("COMA")
	ids := []string{c.Galaxies[0].ID, c.Galaxies[1].ID, c.Galaxies[2].ID}
	data, err := a.CutoutBatchFITS(ids)
	if err != nil {
		t.Fatal(err)
	}
	segments, err := fits.SplitStream(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(segments) != 3 {
		t.Fatalf("segments = %d", len(segments))
	}
	for i, seg := range segments {
		im, err := fits.Decode(bytes.NewReader(seg))
		if err != nil {
			t.Fatal(err)
		}
		if got := im.Header.Str("OBJECT", ""); got != ids[i] {
			t.Errorf("segment %d OBJECT = %q, want %q", i, got, ids[i])
		}
		// Batch segments must be bit-identical to single-cutout responses.
		_, single, err := a.CutoutFITS(ids[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(seg, single) {
			t.Errorf("segment %d differs from single cutout", i)
		}
	}
	if _, err := a.CutoutBatchFITS(nil); err == nil {
		t.Error("empty batch must fail")
	}
	if _, err := a.CutoutBatchFITS([]string{"GHOST-1"}); err == nil {
		t.Error("unknown id in batch must fail")
	}
}

func TestCutoutBatchHTTP(t *testing.T) {
	a := testArchive(t)
	srv := httptest.NewServer(a.Handler())
	defer srv.Close()
	c, _ := a.Cluster("COMA")
	ids := c.Galaxies[0].ID + "," + c.Galaxies[1].ID

	imgs, err := FetchFITSBatch(srv.Client(), srv.URL+"/cutoutbatch?ids="+ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(imgs) != 2 {
		t.Fatalf("images = %d", len(imgs))
	}
	if imgs[0].Header.Str("OBJECT", "") != c.Galaxies[0].ID {
		t.Errorf("first image OBJECT = %q", imgs[0].Header.Str("OBJECT", ""))
	}
	// Errors.
	resp, _ := http.Get(srv.URL + "/cutoutbatch")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing ids = %d", resp.StatusCode)
	}
	if _, err := FetchFITSBatch(srv.Client(), srv.URL+"/cutoutbatch?ids=GHOST-1"); err == nil {
		t.Error("unknown id must fail")
	}
}

func TestHandlerFaultInjection(t *testing.T) {
	a := testArchive(t)
	c, _ := a.Cluster("COMA")
	id := c.Galaxies[0].ID
	// Site-down on the first cone search, corruption on the first cutout.
	a.SetInjector(faults.New(1,
		faults.Rule{Name: OpCone, Site: "mast", Kind: faults.KindSiteDown, Until: 1},
		faults.Rule{Name: OpCutout, Site: "mast", Key: id, Kind: faults.KindCorruption, Until: 1},
	))
	srv := httptest.NewServer(a.Handler())
	defer srv.Close()
	hc := srv.Client()

	// The down archive answers 503 and the client surfaces it.
	if _, err := ConeSearch(hc, srv.URL+"/cone", wcs.New(195, 28), 1); err == nil {
		t.Fatal("cone search against a down archive must fail")
	}
	// A corrupted cutout arrives as a 200 with a damaged FITS payload the
	// client's decoder rejects.
	if _, err := FetchFITS(hc, srv.URL+"/cutout?id="+id); err == nil {
		t.Fatal("corrupted cutout must fail to decode")
	}
	// Both windows have passed: retries succeed.
	tab, err := ConeSearch(hc, srv.URL+"/cone", wcs.New(195, 28), 1)
	if err != nil || tab.NumRows() == 0 {
		t.Fatalf("recovered cone search = %v rows, %v", tab, err)
	}
	if _, err := FetchFITS(hc, srv.URL+"/cutout?id="+id); err != nil {
		t.Fatalf("recovered cutout: %v", err)
	}
	// SIA fault points are independent of cone ones.
	a.SetInjector(faults.New(1,
		faults.Rule{Name: OpSIA, Site: "mast", Kind: faults.KindTimeout, Until: 1},
	))
	if _, err := SIAQuery(hc, srv.URL+"/siacut", wcs.New(195, 28), 0.5); err == nil {
		t.Fatal("SIA against a timed-out archive must fail")
	}
	if _, err := ConeSearch(hc, srv.URL+"/cone", wcs.New(195, 28), 1); err != nil {
		t.Fatalf("cone must be unaffected by SIA rules: %v", err)
	}
	a.SetInjector(nil)
	if _, err := SIAQuery(hc, srv.URL+"/siacut", wcs.New(195, 28), 0.5); err != nil {
		t.Fatalf("nil injector must restore service: %v", err)
	}
}
