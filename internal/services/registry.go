package services

import "repro/internal/votable"

// Interface names used in the registry.
const (
	InterfaceSIA  = "SIA"
	InterfaceCone = "Cone Search"
)

// RegistryEntry describes one data collection and the protocol interfaces it
// implements.
type RegistryEntry struct {
	DataCenter string
	Collection string
	Interfaces []string
}

// Table1 is the paper's Table 1: the data collections and interfaces the
// Galaxy Morphology application consumed. The simulated archives in this
// repository stand in for each of them.
func Table1() []RegistryEntry {
	return []RegistryEntry{
		{
			DataCenter: "Chandra X-ray Center",
			Collection: "Chandra Data Archive",
			Interfaces: []string{InterfaceSIA},
		},
		{
			DataCenter: "NASA High-Energy Astrophysical Science Archive (HEASARC)",
			Collection: "ROSAT X-ray data",
			Interfaces: []string{InterfaceSIA},
		},
		{
			DataCenter: "NASA Infrared Processing and Analysis Center (IPAC)",
			Collection: "NASA Extragalactic Database (NED)",
			Interfaces: []string{InterfaceCone},
		},
		{
			DataCenter: "Canadian Astrophysical Data Center (CADC)",
			Collection: "Canadian Network for Cosmology (CNOC) Survey",
			Interfaces: []string{InterfaceSIA, InterfaceCone},
		},
		{
			DataCenter: "Multimission Archive at Space Telescope (MAST)",
			Collection: "Digitized Sky Survey (DSS)",
			Interfaces: []string{InterfaceSIA, InterfaceCone},
		},
	}
}

// RegistryVOTable renders registry entries as a VOTable, the way an NVO
// registry service (called out as missing infrastructure in §5) would
// publish them.
func RegistryVOTable(entries []RegistryEntry) *votable.Table {
	t := votable.NewTable("registry",
		votable.Field{Name: "data_center", Datatype: votable.TypeChar},
		votable.Field{Name: "collection", Datatype: votable.TypeChar},
		votable.Field{Name: "interfaces", Datatype: votable.TypeChar},
	)
	for _, e := range entries {
		ifaces := ""
		for i, s := range e.Interfaces {
			if i > 0 {
				ifaces += ", "
			}
			ifaces += s
		}
		_ = t.AppendRow(e.DataCenter, e.Collection, ifaces)
	}
	return t
}
