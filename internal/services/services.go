// Package services implements the NVO data-access services of the paper's
// §3.1 over HTTP: the Cone Search protocol for catalog queries and the
// Simple Image Access (SIA) protocol for both large-scale survey images and
// per-galaxy cutouts. An Archive bundles simulated clusters (internal/skysim)
// behind these interfaces, playing the role of the five data centers in the
// paper's Table 1.
//
// Both protocols follow the 2002-era NVO definitions: HTTP GET with
// positional parameters (RA, DEC, SR for cone search; POS, SIZE for SIA),
// responses as VOTable documents, image references delivered as access URLs
// ("acref") the client dereferences to fetch FITS data.
package services

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/catalog"
	"repro/internal/faults"
	"repro/internal/skysim"
	"repro/internal/votable"
	"repro/internal/wcs"
)

// Fault-point names checked by the HTTP handler, one per NVO protocol
// surface. Rules select requests by archive name (Site); cutout rules can
// additionally match the galaxy id (Key).
const (
	OpCone   = "archive.cone"
	OpSIA    = "archive.sia"
	OpCutout = "archive.cutout"
)

// Band identifies the wavelength regime of an image collection.
type Band string

// Bands served by the simulated archives.
const (
	BandOptical Band = "optical"
	BandXRay    Band = "xray"
)

// Archive is one simulated data center: a set of clusters exposed through
// Cone Search and SIA.
type Archive struct {
	name     string
	clusters map[string]*skysim.Cluster
	cats     map[string]*catalog.Catalog
	merged   *catalog.Catalog

	mu         sync.Mutex
	fieldCache map[string][]byte // rendered large-scale FITS, keyed name/band
	inj        *faults.Injector
}

// NewArchive bundles clusters into an archive named name.
func NewArchive(name string, clusters ...*skysim.Cluster) *Archive {
	a := &Archive{
		name:       name,
		clusters:   map[string]*skysim.Cluster{},
		cats:       map[string]*catalog.Catalog{},
		merged:     catalog.New(name, "mag", "z", "ew_halpha", "true_type", "cluster"),
		fieldCache: map[string][]byte{},
	}
	for _, c := range clusters {
		a.clusters[c.Name] = c
		a.cats[c.Name] = c.Catalog()
		for _, g := range c.Galaxies {
			// Unique by construction across clusters (IDs embed the name).
			_ = a.merged.Add(catalog.Record{
				ID:  g.ID,
				Pos: g.Pos,
				Props: map[string]string{
					"mag":       fmt.Sprintf("%.2f", g.Mag),
					"z":         fmt.Sprintf("%.5f", g.Redshift),
					"ew_halpha": fmt.Sprintf("%.2f", g.EWHalpha),
					"true_type": g.Type.String(),
					"cluster":   c.Name,
				},
			})
		}
	}
	return a
}

// Name returns the archive name.
func (a *Archive) Name() string { return a.name }

// SetInjector installs (or removes, with nil) the fault injector consulted
// by the HTTP handler's endpoints.
func (a *Archive) SetInjector(in *faults.Injector) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.inj = in
}

// injector returns the current injector under the lock.
func (a *Archive) injector() *faults.Injector {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inj
}

// Clusters returns the hosted cluster names, sorted.
func (a *Archive) Clusters() []string {
	out := make([]string, 0, len(a.clusters))
	for n := range a.clusters {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Cluster returns a hosted cluster.
func (a *Archive) Cluster(name string) (*skysim.Cluster, bool) {
	c, ok := a.clusters[name]
	return c, ok
}

// Catalog returns the merged catalog across all hosted clusters.
func (a *Archive) Catalog() *catalog.Catalog { return a.merged }

// ConeSearch returns the VOTable of sources within sr degrees of pos —
// the Cone Search protocol's data operation.
func (a *Archive) ConeSearch(pos wcs.SkyCoord, sr float64) *votable.Table {
	recs := a.merged.ConeSearch(pos, sr)
	return a.merged.ToVOTable(recs)
}

// ConeSearchPage is ConeSearch restricted to the [offset, offset+maxrec)
// window of the globally sorted hit list, so survey-scale responses stay
// bounded by the page size. The order is the same deterministic
// (separation, ID) order as ConeSearch: concatenating consecutive pages
// reproduces the unpaged table row for row. A negative maxrec means "to the
// end".
func (a *Archive) ConeSearchPage(pos wcs.SkyCoord, sr float64, offset, maxrec int) *votable.Table {
	recs, _ := a.merged.ConeSearchPage(pos, sr, offset, maxrec)
	return a.merged.ToVOTable(recs)
}

// Galaxy resolves a galaxy ID to its simulation record.
func (a *Archive) Galaxy(id string) (skysim.Galaxy, bool) {
	dash := strings.LastIndexByte(id, '-')
	if dash <= 0 {
		return skysim.Galaxy{}, false
	}
	c, ok := a.clusters[id[:dash]]
	if !ok {
		return skysim.Galaxy{}, false
	}
	return c.Galaxy(id)
}

// errors returned by image operations.
var (
	ErrUnknownGalaxy  = errors.New("services: unknown galaxy")
	ErrUnknownCluster = errors.New("services: unknown cluster")
	ErrBadQuery       = errors.New("services: bad query")
)

// seedFor derives a deterministic noise seed from a galaxy ID so repeated
// cutout requests return bit-identical FITS files (required for caching).
func seedFor(id string) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(id))
	return int64(h.Sum64())
}

// CutoutFITS renders the FITS cutout for one galaxy.
func (a *Archive) CutoutFITS(galaxyID string) (*skysim.Galaxy, []byte, error) {
	g, ok := a.Galaxy(galaxyID)
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownGalaxy, galaxyID)
	}
	im := skysim.RenderGalaxy(g, 0, seedFor(g.ID))
	bw := &byteWriter{}
	if err := im.Encode(bw); err != nil {
		return nil, nil, err
	}
	return &g, bw.data, nil
}

// byteWriter is a minimal io.Writer accumulating bytes.
type byteWriter struct{ data []byte }

func (w *byteWriter) Write(p []byte) (int, error) {
	w.data = append(w.data, p...)
	return len(p), nil
}

// CutoutBatchFITS renders many cutouts as one concatenated FITS stream —
// the batched interface the paper says would "[speed] up tremendously" the
// one-request-per-galaxy SIA bottleneck (§4.2). FITS files are
// self-delimiting (2880-byte records), so clients decode the stream
// sequentially.
func (a *Archive) CutoutBatchFITS(ids []string) ([]byte, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("%w: empty id list", ErrBadQuery)
	}
	var out []byte
	for _, id := range ids {
		_, data, err := a.CutoutFITS(id)
		if err != nil {
			return nil, err
		}
		out = append(out, data...)
	}
	return out, nil
}

// FieldFITS renders (and caches) the large-scale image of a cluster in the
// given band: the optical survey plate or the X-ray surface-brightness map.
func (a *Archive) FieldFITS(cluster string, band Band) ([]byte, error) {
	c, ok := a.clusters[cluster]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownCluster, cluster)
	}
	key := cluster + "/" + string(band)
	a.mu.Lock()
	if data, hit := a.fieldCache[key]; hit {
		a.mu.Unlock()
		return data, nil
	}
	a.mu.Unlock()

	const npix = 512
	scale := 2 * 8 * c.CoreRadiusDeg / npix
	bw := &byteWriter{}
	switch band {
	case BandOptical:
		if err := skysim.RenderField(c, npix, npix, scale, seedFor(key)).Encode(bw); err != nil {
			return nil, err
		}
	case BandXRay:
		if err := skysim.RenderXRay(c, npix, npix, scale, seedFor(key)).Encode(bw); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("%w: band %q", ErrBadQuery, band)
	}
	a.mu.Lock()
	a.fieldCache[key] = bw.data
	a.mu.Unlock()
	return bw.data, nil
}

// SIAFields is the column set of SIA responses.
var SIAFields = []votable.Field{
	{Name: "title", Datatype: votable.TypeChar, UCD: "meta.title"},
	{Name: "ra", Datatype: votable.TypeDouble, Unit: "deg", UCD: "pos.eq.ra"},
	{Name: "dec", Datatype: votable.TypeDouble, Unit: "deg", UCD: "pos.eq.dec"},
	{Name: "naxis1", Datatype: votable.TypeInt},
	{Name: "naxis2", Datatype: votable.TypeInt},
	{Name: "scale", Datatype: votable.TypeDouble, Unit: "deg/pix"},
	{Name: "format", Datatype: votable.TypeChar},
	{Name: "acref", Datatype: votable.TypeChar, UCD: "VOX:Image_AccessReference"},
}

// SIAQueryFields queries the archive for large-scale images overlapping the
// POS/SIZE region and returns one VOTable row per available image. acref
// values are relative URLs under the archive's HTTP root.
func (a *Archive) SIAQueryFields(pos wcs.SkyCoord, sizeDeg float64) *votable.Table {
	t := votable.NewTable(a.name+"_sia", SIAFields...)
	for _, name := range a.Clusters() {
		c := a.clusters[name]
		reach := sizeDeg/2 + 8*c.CoreRadiusDeg
		if pos.Separation(c.Center) > reach {
			continue
		}
		const npix = 512
		scale := 2 * 8 * c.CoreRadiusDeg / npix
		for _, band := range []Band{BandOptical, BandXRay} {
			_ = t.AppendRow(
				fmt.Sprintf("%s %s image", name, band),
				votable.FormatFloat(c.Center.RA),
				votable.FormatFloat(c.Center.Dec),
				strconv.Itoa(npix), strconv.Itoa(npix),
				votable.FormatFloat(scale),
				"image/fits",
				fmt.Sprintf("/image?cluster=%s&band=%s", name, band),
			)
		}
	}
	return t
}

// SIAQueryCutouts queries the archive's cutout service: one row per galaxy
// within the POS/SIZE region, each with an acref generating that galaxy's
// cutout on demand. This is the interface whose one-request-per-galaxy cost
// the paper identifies as the application's bottleneck (§4.2).
func (a *Archive) SIAQueryCutouts(pos wcs.SkyCoord, sizeDeg float64) *votable.Table {
	return a.SIAQueryCutoutsPage(pos, sizeDeg, 0, -1)
}

// SIAQueryCutoutsPage is SIAQueryCutouts restricted to the
// [offset, offset+maxrec) window of the response rows. Paging is applied
// after the unresolvable-galaxy filter, so consecutive pages concatenate
// into exactly the unpaged table and only the final page comes up short.
// The scan streams over the cone hits and stops as soon as the page is
// full, so a page response never materializes the full survey. A negative
// maxrec means "to the end".
func (a *Archive) SIAQueryCutoutsPage(pos wcs.SkyCoord, sizeDeg float64, offset, maxrec int) *votable.Table {
	t := votable.NewTable(a.name+"_cutouts", SIAFields...)
	if maxrec == 0 {
		return t
	}
	if offset < 0 {
		offset = 0
	}
	matched := 0
	a.merged.ConeSearchVisit(pos, sizeDeg/2, func(rec catalog.Record, _ float64) bool {
		g, ok := a.Galaxy(rec.ID)
		if !ok {
			return true
		}
		idx := matched
		matched++
		if idx < offset {
			return true
		}
		size := skysim.CutoutSizePx(g)
		_ = t.AppendRow(
			g.ID,
			votable.FormatFloat(g.Pos.RA),
			votable.FormatFloat(g.Pos.Dec),
			strconv.Itoa(size), strconv.Itoa(size),
			votable.FormatFloat(skysim.PixScaleArcsec/3600),
			"image/fits",
			"/cutout?id="+g.ID,
		)
		return maxrec < 0 || t.NumRows() < maxrec
	})
	return t
}
