// Zero-copy FITS reads. A View wraps the raw encoded bytes of one FITS
// file and decodes pixels on demand, straight out of the 2880-byte logical
// records — no intermediate full-image []float64, no Header allocation. It
// is the request hot path's replacement for Decode (+ Cutout): the
// webservice's per-galaxy measurement parses a View over the staged bytes
// and streams the pixels into an arena-backed buffer.
//
// A View accepts every stream Decode accepts and produces bit-identical
// pixel values (the physical value is computed as BZERO + BSCALE*stored
// with the exact same floating-point expression). It is lenient only about
// header cards it never consults: a malformed card with an irrelevant
// keyword fails Decode but not ParseView. Errors on the shared rejection
// domain — bad geometry, unsupported BITPIX, truncated data — carry the
// same text as Decode's.
package fits

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// View is a zero-copy window over one encoded FITS image. The raw bytes
// must not be mutated while the View is in use.
type View struct {
	raw     []byte
	dataOff int // offset of the data array (header blocks end here)

	Nx, Ny int
	Bitpix int     // 8, 16, 32, -32 or -64
	Bscale float64 // linear scaling: physical = Bzero + Bscale*stored
	Bzero  float64
}

// Header-value slots the view scan consults.
const (
	kwSimple = iota
	kwBitpix
	kwNaxis
	kwNaxis1
	kwNaxis2
	kwBscale
	kwBzero
	numKW
)

// scanVal is one header value in the shape Header.Int/Float/Bool see it:
// typed, with absence and type mismatches falling back to defaults.
type scanVal struct {
	kind byte // 0 absent/valueless, 'b' bool, 'i' int, 'f' float, 's' string
	b    bool
	i    int64
	f    float64
}

func (v scanVal) toBool(def bool) bool {
	if v.kind == 'b' {
		return v.b
	}
	return def
}

func (v scanVal) toInt(def int64) int64 {
	switch v.kind {
	case 'i':
		return v.i
	case 'f':
		return int64(v.f)
	}
	return def
}

func (v scanVal) toFloat(def float64) float64 {
	switch v.kind {
	case 'f':
		return v.f
	case 'i':
		return float64(v.i)
	}
	return def
}

// ParseView validates raw as a single-HDU two-dimensional FITS image and
// returns a zero-copy view over it. Validation mirrors Decode: same
// geometry and BITPIX checks, same tolerance for absent trailing padding,
// same error text. The scan allocates only when parsing numeric card
// values (strconv needs a string); it never builds a Header.
func ParseView(raw []byte) (View, error) {
	vals, dataOff, err := scanViewHeader(raw)
	if err != nil {
		return View{}, err
	}
	if !vals[kwSimple].toBool(false) {
		return View{}, ErrNotFITS
	}
	naxis := vals[kwNaxis].toInt(0)
	if naxis != 2 {
		return View{}, fmt.Errorf("%w: NAXIS=%d (only 2-D images supported)", ErrUnsupported, naxis)
	}
	nx := int(vals[kwNaxis1].toInt(0))
	ny := int(vals[kwNaxis2].toInt(0))
	bitpix := int(vals[kwBitpix].toInt(0))
	if nx <= 0 || ny <= 0 {
		return View{}, fmt.Errorf("%w: NAXIS1=%d NAXIS2=%d", ErrBadHeader, nx, ny)
	}
	switch bitpix {
	case 8, 16, 32, -32, -64:
	default:
		return View{}, fmt.Errorf("%w: BITPIX %d", ErrUnsupported, bitpix)
	}
	dataLen := nx * ny * (abs(bitpix) / 8)
	if avail := len(raw) - dataOff; avail < dataLen {
		// Decode reads the array record by record: a completely absent
		// array reports io.EOF, a mid-array truncation an unexpected EOF.
		// Truncated trailing *padding* is tolerated, like Decode's lenient
		// padding read.
		cause := io.ErrUnexpectedEOF
		if avail == 0 {
			cause = io.EOF
		}
		return View{}, fmt.Errorf("%w: %v", ErrShortData, cause)
	}
	return View{
		raw:     raw,
		dataOff: dataOff,
		Nx:      nx,
		Ny:      ny,
		Bitpix:  bitpix,
		Bscale:  vals[kwBscale].toFloat(1),
		Bzero:   vals[kwBzero].toFloat(0),
	}, nil
}

// scanViewHeader walks the header records of raw, validating every card
// exactly as readHeader+parseCard would (so malformed headers fail with
// identical errors) while extracting only the values ParseView consults.
// It returns the byte offset at which the data array begins.
func scanViewHeader(raw []byte) (vals [numKW]scanVal, dataOff int, err error) {
	for blockNum := 0; ; blockNum++ {
		off := blockNum * BlockSize
		if len(raw)-off < BlockSize {
			cause := io.ErrUnexpectedEOF
			if len(raw)-off <= 0 {
				cause = io.EOF
			}
			return vals, 0, fmt.Errorf("%w: header block %d: %v", ErrBadHeader, blockNum, cause)
		}
		block := raw[off : off+BlockSize]
		for i := 0; i < cardsPerBlock; i++ {
			card := block[i*CardSize : (i+1)*CardSize]
			// readHeader's keyword form: the 8-byte field right-trimmed of
			// spaces (and only spaces), original case preserved.
			kw := trimRightSpaces(card[:8])
			if bytes.Equal(kw, kwEND) {
				return vals, (blockNum + 1) * BlockSize, nil
			}
			if blockNum == 0 && i == 0 && !bytes.Equal(kw, kwSIMPLE) {
				return vals, 0, ErrNotFITS
			}
			if len(kw) == 0 {
				continue
			}
			sv, cerr := scanCardValue(kw, card)
			if cerr != nil {
				return vals, 0, cerr
			}
			if idx := kwIndex(kw); idx >= 0 {
				// Header.Set replaces on duplicate keywords, so lookups see
				// the last card's value; overwriting mirrors that.
				vals[idx] = sv
			}
		}
	}
}

var (
	kwEND     = []byte("END")
	kwSIMPLE  = []byte("SIMPLE")
	kwCOMMENT = []byte("COMMENT")
	kwHISTORY = []byte("HISTORY")
)

// trimRightSpaces mirrors strings.TrimRight(s, " "): spaces only.
func trimRightSpaces(b []byte) []byte {
	for len(b) > 0 && b[len(b)-1] == ' ' {
		b = b[:len(b)-1]
	}
	return b
}

// kwIndex maps a raw keyword (readHeader form) to the value slot ParseView
// consults, or -1. Matching applies Header.Set's normalization —
// strings.ToUpper(strings.TrimSpace(kw)) — without allocating on the
// all-ASCII path.
func kwIndex(kw []byte) int {
	var buf [8]byte
	n := 0
	start, end := 0, len(kw)
	for start < end && asciiSpace(kw[start]) {
		start++
	}
	for end > start && asciiSpace(kw[end-1]) {
		end--
	}
	if end-start > len(buf) {
		return -1 // longer than any target keyword
	}
	for _, c := range kw[start:end] {
		if c >= 0x80 {
			// Non-ASCII: fall back to the exact library normalization
			// (ToUpper and TrimSpace have Unicode cases ASCII code misses).
			return kwIndexSlow(string(kw))
		}
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		buf[n] = c
		n++
	}
	return kwIndexNorm(string(buf[:n]))
}

func kwIndexSlow(kw string) int {
	return kwIndexNorm(strings.ToUpper(strings.TrimSpace(kw)))
}

// kwIndexNorm matches a Set-normalized keyword against the consulted slots.
func kwIndexNorm(kw string) int {
	switch kw {
	case "SIMPLE":
		return kwSimple
	case "BITPIX":
		return kwBitpix
	case "NAXIS":
		return kwNaxis
	case "NAXIS1":
		return kwNaxis1
	case "NAXIS2":
		return kwNaxis2
	case "BSCALE":
		return kwBscale
	case "BZERO":
		return kwBzero
	}
	return -1
}

// asciiSpace reports the ASCII subset of unicode.IsSpace.
func asciiSpace(c byte) bool {
	switch c {
	case ' ', '\t', '\n', '\v', '\f', '\r':
		return true
	}
	return false
}

// scanCardValue is parseCard restricted to validation and typed-value
// extraction: identical acceptance, identical errors, no Card, no comment
// string, and no allocation except the string strconv needs for numeric
// values (and the error paths).
func scanCardValue(kw, card []byte) (scanVal, error) {
	if bytes.Equal(kw, kwCOMMENT) || bytes.Equal(kw, kwHISTORY) {
		return scanVal{}, nil
	}
	if len(card) < 10 || card[8] != '=' {
		return scanVal{}, nil // valueless card
	}
	body := card[10:]
	trimmed := body
	for len(trimmed) > 0 && trimmed[0] == ' ' {
		trimmed = trimmed[1:]
	}
	if len(trimmed) > 0 && trimmed[0] == '\'' {
		// String value: find the closing quote, honoring '' escapes.
		rest := trimmed[1:]
		for i := 0; i < len(rest); i++ {
			if rest[i] == '\'' {
				if i+1 < len(rest) && rest[i+1] == '\'' {
					i++
					continue
				}
				return scanVal{kind: 's'}, nil
			}
		}
		return scanVal{}, fmt.Errorf("%w: unterminated string in card %q", ErrBadHeader, string(kw))
	}

	// Non-string: value runs to '/' or end.
	valPart := body
	if slash := bytes.IndexByte(body, '/'); slash >= 0 {
		valPart = body[:slash]
	}
	valStr := bytes.TrimSpace(valPart)
	switch {
	case len(valStr) == 0:
		return scanVal{}, nil
	case len(valStr) == 1 && valStr[0] == 'T':
		return scanVal{kind: 'b', b: true}, nil
	case len(valStr) == 1 && valStr[0] == 'F':
		return scanVal{kind: 'b', b: false}, nil
	}
	s := string(valStr)
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return scanVal{kind: 'i', i: i}, nil
	}
	// FITS permits 'D' exponents in double-precision values.
	if f, err := strconv.ParseFloat(strings.ReplaceAll(s, "D", "E"), 64); err == nil {
		return scanVal{kind: 'f', f: f}, nil
	}
	return scanVal{}, fmt.Errorf("%w: unparsable value %q in card %q", ErrBadHeader, s, string(kw))
}

// NPix returns the number of pixels in the image.
func (v *View) NPix() int { return v.Nx * v.Ny }

// At returns the pixel at 0-based (x, y); out-of-range coordinates return
// 0, like Image.At.
//
//nvo:hotpath
func (v *View) At(x, y int) float64 {
	if x < 0 || y < 0 || x >= v.Nx || y >= v.Ny {
		return 0
	}
	var px [1]float64
	v.readRange(px[:], y*v.Nx+x, 1)
	return px[0]
}

// ReadInto decodes the full pixel array into dst, which must have capacity
// for Nx*Ny values, and returns dst[:Nx*Ny]. Values are bit-identical to
// Decode's Image.Data.
//
//nvo:hotpath
func (v *View) ReadInto(dst []float64) []float64 {
	return v.readRange(dst, 0, v.Nx*v.Ny)
}

// readRange decodes pixels [start, start+n) of the flat array into dst.
// One loop per BITPIX keeps the per-pixel work branch-free; the physical
// value uses Decode's exact expression (bzero + bscale*stored) so results
// are bit-identical.
//
//nvo:hotpath
func (v *View) readRange(dst []float64, start, n int) []float64 {
	dst = dst[:n]
	bs, bz := v.Bscale, v.Bzero
	switch v.Bitpix {
	case 8:
		p := v.raw[v.dataOff+start:]
		for i := 0; i < n; i++ {
			dst[i] = bz + bs*float64(p[i])
		}
	case 16:
		p := v.raw[v.dataOff+2*start:]
		for i := 0; i < n; i++ {
			dst[i] = bz + bs*float64(int16(binary.BigEndian.Uint16(p[2*i:])))
		}
	case 32:
		p := v.raw[v.dataOff+4*start:]
		for i := 0; i < n; i++ {
			dst[i] = bz + bs*float64(int32(binary.BigEndian.Uint32(p[4*i:])))
		}
	case -32:
		p := v.raw[v.dataOff+4*start:]
		for i := 0; i < n; i++ {
			dst[i] = bz + bs*float64(math.Float32frombits(binary.BigEndian.Uint32(p[4*i:])))
		}
	case -64:
		p := v.raw[v.dataOff+8*start:]
		for i := 0; i < n; i++ {
			dst[i] = bz + bs*math.Float64frombits(binary.BigEndian.Uint64(p[8*i:]))
		}
	}
	return dst
}

// Section is a zero-copy rectangular window into a View — the cutout
// operation without the intermediate full-image decode.
type Section struct {
	view *View
	// Clipped 0-based geometry, Cutout semantics.
	X0, Y0, W, H int
}

// Section selects the w-by-h window whose lower-left corner is at 0-based
// (x0, y0), clipping to the image bounds exactly as Image.Cutout does.
// Regions entirely outside the image yield an error naming the requested
// rectangle and the image dimensions.
func (v *View) Section(x0, y0, w, h int) (Section, error) {
	if w <= 0 || h <= 0 {
		return Section{}, fmt.Errorf("fits: cutout size %dx%d must be positive", w, h)
	}
	rx0, ry0 := x0, y0
	x1 := x0 + w
	y1 := y0 + h
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > v.Nx {
		x1 = v.Nx
	}
	if y1 > v.Ny {
		y1 = v.Ny
	}
	if x0 >= x1 || y0 >= y1 {
		return Section{}, fmt.Errorf("fits: cutout (%d,%d)+%dx%d outside %dx%d image", rx0, ry0, w, h, v.Nx, v.Ny)
	}
	return Section{view: v, X0: x0, Y0: y0, W: x1 - x0, H: y1 - y0}, nil
}

// ReadInto decodes the section into dst, which must have capacity for W*H
// values, and returns dst[:W*H]. Rows decode directly from the underlying
// record bytes; the values are bit-identical to Cutout's Image.Data.
//
//nvo:hotpath
func (s Section) ReadInto(dst []float64) []float64 {
	dst = dst[:s.W*s.H]
	for y := 0; y < s.H; y++ {
		s.view.readRange(dst[y*s.W:(y+1)*s.W], (s.Y0+y)*s.view.Nx+s.X0, s.W)
	}
	return dst
}

// Image materializes the view as a decoded Image, identical (header,
// geometry and pixel bits) to Decode over the same bytes. This is the
// compatibility bridge for callers that need the full Header.
func (v *View) Image() (*Image, error) {
	h, err := readHeader(bytes.NewReader(v.raw))
	if err != nil {
		return nil, err
	}
	im := &Image{Header: h, Nx: v.Nx, Ny: v.Ny, Bitpix: v.Bitpix, Data: make([]float64, v.Nx*v.Ny)}
	v.ReadInto(im.Data)
	return im, nil
}

// Image materializes the section as a decoded Image, identical to
// Decode followed by Cutout over the same bytes and rectangle: same
// shifted WCS reference pixels, same copied cards, bit-identical pixels.
func (s Section) Image() (*Image, error) {
	h, err := readHeader(bytes.NewReader(s.view.raw))
	if err != nil {
		return nil, err
	}
	out := NewImage(s.W, s.H, s.view.Bitpix)
	s.ReadInto(out.Data)
	for _, c := range h.Cards() {
		switch c.Keyword {
		case "SIMPLE", "BITPIX", "NAXIS", "NAXIS1", "NAXIS2", "END":
			continue
		case "CRPIX1":
			out.Header.Set("CRPIX1", h.Float("CRPIX1", 1)-float64(s.X0), c.Comment)
		case "CRPIX2":
			out.Header.Set("CRPIX2", h.Float("CRPIX2", 1)-float64(s.Y0), c.Comment)
		default:
			out.Header.Set(c.Keyword, c.Value, c.Comment)
		}
	}
	return out, nil
}
