package fits

import (
	"bytes"
	"math/rand"
	"testing"
)

// encodeRaw renders an image to its on-disk FITS bytes.
func encodeRaw(t testing.TB, im *Image) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := im.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return buf.Bytes()
}

// testImage builds a deterministic image exercising the given encoding.
func testImage(t testing.TB, nx, ny, bitpix int, scaled bool) *Image {
	t.Helper()
	im := NewImage(nx, ny, bitpix)
	rng := rand.New(rand.NewSource(int64(nx*1000 + ny*10 + bitpix)))
	for i := range im.Data {
		switch {
		case bitpix == -64:
			im.Data[i] = rng.NormFloat64() * 1e3
		case bitpix == -32:
			im.Data[i] = float64(float32(rng.NormFloat64()))
		default:
			im.Data[i] = float64(rng.Intn(200))
		}
	}
	if scaled {
		im.Header.Set("BSCALE", 0.25, "")
		im.Header.Set("BZERO", 50.0, "")
	}
	im.Header.Set("OBJECT", "view test", "with a comment")
	return im
}

// TestViewMatchesDecodeAcrossBitpix is the core zero-copy contract: for
// every BITPIX (with and without BSCALE/BZERO), the view reports the
// geometry Decode reports and yields bit-identical pixels.
func TestViewMatchesDecodeAcrossBitpix(t *testing.T) {
	for _, bp := range []int{8, 16, 32, -32, -64} {
		for _, scaled := range []bool{false, true} {
			raw := encodeRaw(t, testImage(t, 17, 9, bp, scaled))
			want, err := Decode(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("bitpix %d scaled %t: Decode: %v", bp, scaled, err)
			}
			v, err := ParseView(raw)
			if err != nil {
				t.Fatalf("bitpix %d scaled %t: ParseView: %v", bp, scaled, err)
			}
			if v.Nx != want.Nx || v.Ny != want.Ny || v.Bitpix != want.Bitpix {
				t.Fatalf("bitpix %d: geometry %dx%d/%d != %dx%d/%d",
					bp, v.Nx, v.Ny, v.Bitpix, want.Nx, want.Ny, want.Bitpix)
			}
			got := v.ReadInto(make([]float64, v.NPix()))
			for i := range want.Data {
				if got[i] != want.Data[i] {
					t.Fatalf("bitpix %d scaled %t pixel %d: view %v != decode %v",
						bp, scaled, i, got[i], want.Data[i])
				}
			}
			for y := 0; y < v.Ny; y++ {
				for x := 0; x < v.Nx; x++ {
					if v.At(x, y) != want.At(x, y) {
						t.Fatalf("At(%d,%d): %v != %v", x, y, v.At(x, y), want.At(x, y))
					}
				}
			}
			if v.At(-1, 0) != 0 || v.At(v.Nx, 0) != 0 || v.At(0, v.Ny) != 0 {
				t.Fatal("out-of-bounds At must return 0")
			}
		}
	}
}

// TestViewImageEqualsDecode pins View.Image against Decode down to the
// re-encoded bytes, so header semantics (comments, keyword order) match too.
func TestViewImageEqualsDecode(t *testing.T) {
	raw := encodeRaw(t, testImage(t, 8, 6, -32, true))
	want, err := Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	v, err := ParseView(raw)
	if err != nil {
		t.Fatal(err)
	}
	got, err := v.Image()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeRaw(t, got), encodeRaw(t, want)) {
		t.Fatal("View.Image re-encodes differently from Decode")
	}
}

// TestSectionMatchesCutout sweeps interior, edge-clipped and
// negative-origin rectangles: Section.Image must re-encode byte-identically
// to the legacy Decode+Cutout pipeline.
func TestSectionMatchesCutout(t *testing.T) {
	im := testImage(t, 20, 14, -64, false)
	im.Header.Set("CRPIX1", 10.0, "ref x")
	im.Header.Set("CRPIX2", 7.0, "ref y")
	raw := encodeRaw(t, im)
	dec, err := Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	v, err := ParseView(raw)
	if err != nil {
		t.Fatal(err)
	}
	rects := []struct{ x0, y0, w, h int }{
		{0, 0, 20, 14},  // identity
		{3, 2, 5, 4},    // interior
		{15, 10, 10, 9}, // clipped right/bottom
		{-4, -3, 8, 7},  // clipped left/top (negative origin)
		{-2, 5, 30, 4},  // clipped both horizontal edges
		{19, 13, 1, 1},  // single corner pixel
	}
	for _, r := range rects {
		wantIm, werr := dec.Cutout(r.x0, r.y0, r.w, r.h)
		sec, serr := v.Section(r.x0, r.y0, r.w, r.h)
		if werr != nil || serr != nil {
			t.Fatalf("rect %+v: cutout err %v, section err %v", r, werr, serr)
		}
		gotIm, err := sec.Image()
		if err != nil {
			t.Fatalf("rect %+v: Section.Image: %v", r, err)
		}
		if !bytes.Equal(encodeRaw(t, gotIm), encodeRaw(t, wantIm)) {
			t.Fatalf("rect %+v: section re-encodes differently from cutout", r)
		}
	}
}

// TestSectionErrorsMatchCutout pins the error text for degenerate and
// fully-outside rectangles to Cutout's, including the requested (not
// post-clip) coordinates.
func TestSectionErrorsMatchCutout(t *testing.T) {
	raw := encodeRaw(t, testImage(t, 10, 8, 16, false))
	dec, err := Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	v, err := ParseView(raw)
	if err != nil {
		t.Fatal(err)
	}
	rects := []struct{ x0, y0, w, h int }{
		{0, 0, 0, 5},     // zero width
		{0, 0, 5, -1},    // negative height
		{50, 50, 3, 3},   // fully outside, positive
		{-20, -20, 5, 5}, // fully outside, negative
	}
	for _, r := range rects {
		_, werr := dec.Cutout(r.x0, r.y0, r.w, r.h)
		_, serr := v.Section(r.x0, r.y0, r.w, r.h)
		if werr == nil || serr == nil {
			t.Fatalf("rect %+v: expected errors, got cutout=%v section=%v", r, werr, serr)
		}
		if werr.Error() != serr.Error() {
			t.Fatalf("rect %+v: error text diverged:\ncutout:  %s\nsection: %s", r, werr, serr)
		}
	}
}

// TestCutoutErrorReportsRequestedRect pins the OOB message to the
// coordinates the caller asked for — an all-negative rectangle used to be
// reported as the clipped (0,0), hiding what the caller did wrong.
func TestCutoutErrorReportsRequestedRect(t *testing.T) {
	raw := encodeRaw(t, testImage(t, 10, 8, 16, false))
	dec, err := Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	_, cerr := dec.Cutout(-20, -30, 5, 5)
	const want = "fits: cutout (-20,-30)+5x5 outside 10x8 image"
	if cerr == nil || cerr.Error() != want {
		t.Fatalf("Cutout error = %v, want %q", cerr, want)
	}
}

// TestViewTornTrailingBlock checks truncation semantics match Decode: lost
// trailing padding is tolerated, truncated pixel data is the same error.
func TestViewTornTrailingBlock(t *testing.T) {
	im := testImage(t, 7, 5, -64, false) // 7*5*8 = 280 data bytes, 2600 padding
	raw := encodeRaw(t, im)
	dataBytes := im.Nx * im.Ny * 8

	// Tear off the padding, down to the exact data end.
	for _, keep := range []int{len(raw) - 1, len(raw) - BlockSize/2, len(raw) - BlockSize + dataBytes} {
		torn := raw[:keep]
		want, werr := Decode(bytes.NewReader(torn))
		v, verr := ParseView(torn)
		if werr != nil || verr != nil {
			t.Fatalf("keep %d: decode err %v, view err %v", keep, werr, verr)
		}
		got := v.ReadInto(make([]float64, v.NPix()))
		for i := range want.Data {
			if got[i] != want.Data[i] {
				t.Fatalf("keep %d pixel %d: %v != %v", keep, i, got[i], want.Data[i])
			}
		}
	}

	// Truncate into (or before) the pixel data: identical failure text,
	// both for a partial array (unexpected EOF) and a missing one (EOF).
	for _, keep := range []int{len(raw) - BlockSize, len(raw) - BlockSize + 1, len(raw) - BlockSize + dataBytes - 1} {
		torn := raw[:keep]
		_, werr := Decode(bytes.NewReader(torn))
		_, verr := ParseView(torn)
		if werr == nil || verr == nil {
			t.Fatalf("keep %d: expected errors, decode=%v view=%v", keep, werr, verr)
		}
		if werr.Error() != verr.Error() {
			t.Fatalf("keep %d: error text diverged:\ndecode: %s\nview:   %s", keep, werr, verr)
		}
	}
}

// TestViewTruncatedHeader checks header-block truncation fails like Decode.
func TestViewTruncatedHeader(t *testing.T) {
	raw := encodeRaw(t, testImage(t, 4, 4, 16, false))
	for _, keep := range []int{0, 1, BlockSize - 1} {
		_, werr := Decode(bytes.NewReader(raw[:keep]))
		_, verr := ParseView(raw[:keep])
		if werr == nil || verr == nil {
			t.Fatalf("keep %d: expected errors", keep)
		}
		if werr.Error() != verr.Error() {
			t.Fatalf("keep %d: error text diverged:\ndecode: %s\nview:   %s", keep, werr, verr)
		}
	}
}

// TestViewRejectsWhatDecodeRejects spot-checks structured corruption.
func TestViewRejectsWhatDecodeRejects(t *testing.T) {
	raw := encodeRaw(t, testImage(t, 4, 4, 16, false))
	corrupt := func(mutate func(b []byte)) []byte {
		b := append([]byte(nil), raw...)
		mutate(b)
		return b
	}
	cases := map[string][]byte{
		"not simple":   corrupt(func(b []byte) { copy(b, "SIMPLE  =                    F") }),
		"wrong magic":  corrupt(func(b []byte) { copy(b, "BOGUS   = 1") }),
		"unterminated": corrupt(func(b []byte) { copy(b[80:], `OBJECT  = 'never ends`+"          ") }),
	}
	for name, b := range cases {
		_, werr := Decode(bytes.NewReader(b))
		_, verr := ParseView(b)
		if werr == nil {
			t.Fatalf("%s: Decode unexpectedly succeeded", name)
		}
		if verr == nil {
			t.Fatalf("%s: ParseView accepted what Decode rejected: %v", name, werr)
		}
		if werr.Error() != verr.Error() {
			t.Fatalf("%s: error text diverged:\ndecode: %s\nview:   %s", name, werr, verr)
		}
	}
}

// TestSectionReadInto checks the row-striped section read against At.
func TestSectionReadInto(t *testing.T) {
	raw := encodeRaw(t, testImage(t, 12, 10, -32, false))
	v, err := ParseView(raw)
	if err != nil {
		t.Fatal(err)
	}
	sec, err := v.Section(-3, 4, 9, 20) // clipped on two sides
	if err != nil {
		t.Fatal(err)
	}
	got := sec.ReadInto(make([]float64, sec.W*sec.H))
	for y := 0; y < sec.H; y++ {
		for x := 0; x < sec.W; x++ {
			if want := v.At(sec.X0+x, sec.Y0+y); got[y*sec.W+x] != want {
				t.Fatalf("section pixel (%d,%d): %v != %v", x, y, got[y*sec.W+x], want)
			}
		}
	}
}

// FuzzView holds the zero-copy contract over arbitrary bytes: whenever
// Decode accepts an input, the view must accept it and agree bit-for-bit;
// whenever the view rejects an input, Decode must reject it too.
func FuzzView(f *testing.F) {
	f.Add(encodeRaw(f, testImage(f, 4, 3, -64, false)))
	f.Add(encodeRaw(f, testImage(f, 3, 4, 16, true)))
	f.Add(encodeRaw(f, testImage(f, 2, 2, 8, false)))
	short := encodeRaw(f, testImage(f, 5, 5, -32, false))
	f.Add(short[:len(short)-BlockSize])
	f.Add([]byte("SIMPLE  =                    T"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		im, derr := Decode(bytes.NewReader(raw))
		v, verr := ParseView(raw)
		if derr == nil && verr != nil {
			t.Fatalf("Decode accepted, ParseView rejected: %v", verr)
		}
		if verr != nil {
			return // both rejected (View may accept a superset; see view.go)
		}
		if derr != nil {
			return // documented leniency: malformed unconsulted cards
		}
		if v.Nx != im.Nx || v.Ny != im.Ny || v.Bitpix != im.Bitpix {
			t.Fatalf("geometry: view %dx%d/%d, decode %dx%d/%d",
				v.Nx, v.Ny, v.Bitpix, im.Nx, im.Ny, im.Bitpix)
		}
		got := v.ReadInto(make([]float64, v.NPix()))
		for i := range im.Data {
			w, g := im.Data[i], got[i]
			if w != g && !(w != w && g != g) { // NaN-tolerant bit agreement
				t.Fatalf("pixel %d: view %v != decode %v", i, g, w)
			}
		}
	})
}

// TestParseViewAllocBudget pins the header-scan cost: parsing a view of a
// typical image must stay within a few small allocations (the numeric
// string conversions), never scaling with pixel count.
func TestParseViewAllocBudget(t *testing.T) {
	raw := encodeRaw(t, testImage(t, 64, 64, -64, true))
	buf := make([]float64, 64*64)
	allocs := testing.AllocsPerRun(200, func() {
		v, err := ParseView(raw)
		if err != nil {
			t.Fatal(err)
		}
		_ = v.ReadInto(buf)
	})
	if allocs > 24 {
		t.Fatalf("ParseView+ReadInto allocates %.1f times per image; want <= 24", allocs)
	}
}
