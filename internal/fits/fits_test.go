package fits

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/wcs"
)

func TestHeaderSetGet(t *testing.T) {
	h := NewHeader()
	h.Set("OBJECT", "Abell 2256", "target")
	h.Set("EXPTIME", 300.5, "seconds")
	h.Set("NCOMBINE", 4, "")
	h.Set("GOODWCS", true, "")

	if got := h.Str("OBJECT", ""); got != "Abell 2256" {
		t.Errorf("Str(OBJECT) = %q", got)
	}
	if got := h.Float("EXPTIME", 0); got != 300.5 {
		t.Errorf("Float(EXPTIME) = %v", got)
	}
	if got := h.Int("NCOMBINE", 0); got != 4 {
		t.Errorf("Int(NCOMBINE) = %v", got)
	}
	if !h.Bool("GOODWCS", false) {
		t.Error("Bool(GOODWCS) = false")
	}
	// Replacement keeps a single card.
	n := h.Len()
	h.Set("OBJECT", "Abell 2255", "retarget")
	if h.Len() != n {
		t.Errorf("replacing card grew header: %d -> %d", n, h.Len())
	}
	if got := h.Str("OBJECT", ""); got != "Abell 2255" {
		t.Errorf("after replace, Str(OBJECT) = %q", got)
	}
}

func TestHeaderCommentsAccumulate(t *testing.T) {
	h := NewHeader()
	h.Set("COMMENT", nil, "first")
	h.Set("COMMENT", nil, "second")
	h.Set("HISTORY", nil, "processed")
	count := 0
	for _, c := range h.Cards() {
		if c.Keyword == "COMMENT" {
			count++
		}
	}
	if count != 2 {
		t.Errorf("COMMENT cards = %d, want 2", count)
	}
}

func TestHeaderDefaults(t *testing.T) {
	h := NewHeader()
	if h.Int("NOPE", 7) != 7 || h.Float("NOPE", 2.5) != 2.5 || h.Str("NOPE", "d") != "d" || !h.Bool("NOPE", true) {
		t.Error("missing keywords must return defaults")
	}
}

func TestImagePixelAccess(t *testing.T) {
	im := NewImage(4, 3, -32)
	im.SetAt(2, 1, 5.5)
	if got := im.At(2, 1); got != 5.5 {
		t.Errorf("At(2,1) = %v", got)
	}
	if got := im.Data[1*4+2]; got != 5.5 {
		t.Errorf("row-major layout violated: Data[6] = %v", got)
	}
	// Out-of-range access is a no-op / zero.
	im.SetAt(-1, 0, 9)
	im.SetAt(0, 99, 9)
	if im.At(-1, 0) != 0 || im.At(4, 0) != 0 || im.At(0, 3) != 0 {
		t.Error("out-of-range At must return 0")
	}
}

func encodeDecode(t *testing.T, im *Image) *Image {
	t.Helper()
	var buf bytes.Buffer
	if err := im.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if buf.Len()%BlockSize != 0 {
		t.Fatalf("encoded length %d not a multiple of %d", buf.Len(), BlockSize)
	}
	out, err := Decode(&buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	return out
}

func TestRoundTripFloat64(t *testing.T) {
	im := NewImage(17, 9, -64)
	rng := rand.New(rand.NewSource(1))
	for i := range im.Data {
		im.Data[i] = rng.NormFloat64() * 1e3
	}
	im.Header.Set("OBJECT", "it's a test", "quote escaping")
	im.Header.Set("REDSHIFT", 0.027886, "z")

	out := encodeDecode(t, im)
	if out.Nx != 17 || out.Ny != 9 || out.Bitpix != -64 {
		t.Fatalf("geometry mismatch: %dx%d bitpix %d", out.Nx, out.Ny, out.Bitpix)
	}
	for i := range im.Data {
		if im.Data[i] != out.Data[i] {
			t.Fatalf("pixel %d: %v != %v", i, im.Data[i], out.Data[i])
		}
	}
	if got := out.Header.Str("OBJECT", ""); got != "it's a test" {
		t.Errorf("OBJECT = %q", got)
	}
	if got := out.Header.Float("REDSHIFT", 0); got != 0.027886 {
		t.Errorf("REDSHIFT = %v", got)
	}
}

func TestRoundTripFloat32(t *testing.T) {
	im := NewImage(5, 5, -32)
	for i := range im.Data {
		im.Data[i] = float64(float32(float64(i) * 0.125))
	}
	out := encodeDecode(t, im)
	for i := range im.Data {
		if im.Data[i] != out.Data[i] {
			t.Fatalf("pixel %d: %v != %v", i, im.Data[i], out.Data[i])
		}
	}
}

func TestRoundTripIntegerBitpix(t *testing.T) {
	for _, bp := range []int{8, 16, 32} {
		im := NewImage(3, 2, bp)
		im.Data = []float64{0, 1, 2, 100, 200, 255}
		out := encodeDecode(t, im)
		for i := range im.Data {
			if im.Data[i] != out.Data[i] {
				t.Errorf("bitpix %d pixel %d: %v != %v", bp, i, im.Data[i], out.Data[i])
			}
		}
	}
}

func TestBscaleBzero(t *testing.T) {
	im := NewImage(2, 2, 16)
	im.Header.Set("BSCALE", 0.01, "")
	im.Header.Set("BZERO", 100.0, "")
	im.Data = []float64{100, 100.01, 99.99, 105}
	out := encodeDecode(t, im)
	for i := range im.Data {
		if math.Abs(im.Data[i]-out.Data[i]) > 0.005 {
			t.Errorf("pixel %d: %v != %v", i, im.Data[i], out.Data[i])
		}
	}
}

func TestIntegerSaturation(t *testing.T) {
	im := NewImage(2, 1, 8)
	im.Data = []float64{-5, 300}
	out := encodeDecode(t, im)
	if out.Data[0] != 0 || out.Data[1] != 255 {
		t.Errorf("saturation failed: %v", out.Data)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			vals = []float64{0}
		}
		if len(vals) > 64 {
			vals = vals[:64]
		}
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				vals[i] = 0
			}
		}
		im := NewImage(len(vals), 1, -64)
		copy(im.Data, vals)
		var buf bytes.Buffer
		if err := im.Encode(&buf); err != nil {
			return false
		}
		out, err := Decode(&buf)
		if err != nil {
			return false
		}
		for i := range vals {
			if out.Data[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWCSRoundTrip(t *testing.T) {
	im := NewImage(512, 512, -32)
	p := wcs.NewTanProjection(wcs.New(210.25, -12.5), 512, 512, 1.7/3600)
	im.SetWCS(p)
	out := encodeDecode(t, im)
	q, ok := out.WCS()
	if !ok {
		t.Fatal("WCS lost in round trip")
	}
	if q.Center.Separation(p.Center) > 1e-9 || q.RefX != p.RefX || q.ScaleY != p.ScaleY {
		t.Errorf("WCS mismatch: got %+v want %+v", q, p)
	}
}

func TestWCSMissing(t *testing.T) {
	im := NewImage(8, 8, -32)
	if _, ok := im.WCS(); ok {
		t.Error("image without CTYPE1 must not report a WCS")
	}
}

func TestCutout(t *testing.T) {
	im := NewImage(10, 10, -64)
	for y := 0; y < 10; y++ {
		for x := 0; x < 10; x++ {
			im.SetAt(x, y, float64(y*10+x))
		}
	}
	p := wcs.NewTanProjection(wcs.New(50, 50), 10, 10, 1.0/3600)
	im.SetWCS(p)

	cut, err := im.Cutout(3, 4, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cut.Nx != 4 || cut.Ny != 3 {
		t.Fatalf("cutout is %dx%d", cut.Nx, cut.Ny)
	}
	if got := cut.At(0, 0); got != 43 {
		t.Errorf("cut(0,0) = %v, want 43", got)
	}
	if got := cut.At(3, 2); got != 66 {
		t.Errorf("cut(3,2) = %v, want 66", got)
	}
	// WCS consistency: the same sky position must map into both frames.
	q, ok := cut.WCS()
	if !ok {
		t.Fatal("cutout lost WCS")
	}
	sky := p.PixelToSky(5, 6)
	cx, cy, _ := q.SkyToPixel(sky)
	if math.Abs(cx-(5-3)) > 1e-9 || math.Abs(cy-(6-4)) > 1e-9 {
		t.Errorf("cutout WCS maps to (%v,%v), want (2,2)", cx, cy)
	}
}

func TestCutoutClipping(t *testing.T) {
	im := NewImage(10, 10, -32)
	cut, err := im.Cutout(-5, -5, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if cut.Nx != 3 || cut.Ny != 3 {
		t.Errorf("clipped cutout is %dx%d, want 3x3", cut.Nx, cut.Ny)
	}
	if _, err := im.Cutout(20, 20, 5, 5); err == nil {
		t.Error("fully outside cutout must fail")
	}
	if _, err := im.Cutout(0, 0, 0, 5); err == nil {
		t.Error("zero-size cutout must fail")
	}
}

func TestStats(t *testing.T) {
	im := NewImage(2, 2, -64)
	im.Data = []float64{1, 2, 3, 4}
	min, max, mean, sd := im.Stats()
	if min != 1 || max != 4 || mean != 2.5 {
		t.Errorf("Stats = %v %v %v", min, max, mean)
	}
	if math.Abs(sd-math.Sqrt(1.25)) > 1e-12 {
		t.Errorf("stddev = %v", sd)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(strings.NewReader(strings.Repeat("x", BlockSize))); err == nil {
		t.Error("garbage must not decode")
	}
	if _, err := Decode(strings.NewReader("short")); err == nil {
		t.Error("short input must not decode")
	}
}

func TestDecodeTruncatedData(t *testing.T) {
	im := NewImage(100, 100, -64)
	var buf bytes.Buffer
	if err := im.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()[:BlockSize*2] // header + less data than needed
	if _, err := Decode(bytes.NewReader(raw)); err == nil {
		t.Error("truncated data must not decode")
	}
}

func TestHeaderLargerThanOneBlock(t *testing.T) {
	im := NewImage(2, 2, -32)
	for i := 0; i < 60; i++ { // > 36 cards forces a second header block
		im.Header.Set("HISTORY", nil, "step")
	}
	out := encodeDecode(t, im)
	if out.Nx != 2 || out.Ny != 2 {
		t.Errorf("multi-block header broke geometry: %dx%d", out.Nx, out.Ny)
	}
}

func TestParseCardDExponent(t *testing.T) {
	card := make([]byte, CardSize)
	copy(card, "REDSHIFT=            2.788D-2 / z                                       ")
	for i := len("REDSHIFT=            2.788D-2 / z"); i < CardSize; i++ {
		card[i] = ' '
	}
	c, err := parseCard("REDSHIFT", card)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := c.Value.(float64); !ok || math.Abs(v-0.02788) > 1e-12 {
		t.Errorf("D-exponent parsed as %v", c.Value)
	}
}

func BenchmarkEncode256(b *testing.B) {
	im := NewImage(256, 256, -32)
	for i := range im.Data {
		im.Data[i] = float64(i % 251)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := im.Encode(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode256(b *testing.B) {
	im := NewImage(256, 256, -32)
	var buf bytes.Buffer
	if err := im.Encode(&buf); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCutout(b *testing.B) {
	im := NewImage(1024, 1024, -32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := im.Cutout(400, 400, 64, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDecodeHeaderOnly(t *testing.T) {
	im := NewImage(32, 16, -32)
	im.Header.Set("OBJECT", "COMA-000001", "")
	var buf bytes.Buffer
	if err := im.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	h, err := DecodeHeader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.Int("NAXIS1", 0) != 32 || h.Int("NAXIS2", 0) != 16 {
		t.Errorf("geometry = %dx%d", h.Int("NAXIS1", 0), h.Int("NAXIS2", 0))
	}
	if h.Str("OBJECT", "") != "COMA-000001" {
		t.Errorf("OBJECT = %q", h.Str("OBJECT", ""))
	}
	if _, err := DecodeHeader(strings.NewReader(strings.Repeat("x", BlockSize))); err == nil {
		t.Error("garbage must not decode")
	}
	// A non-SIMPLE file with valid card syntax is rejected.
	var b2 bytes.Buffer
	h2 := NewHeader()
	h2.Set("SIMPLE", false, "")
	if err := writeHeader(&b2, h2); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeHeader(&b2); err == nil {
		t.Error("SIMPLE=F must be rejected")
	}
}

func TestSplitStream(t *testing.T) {
	var stream bytes.Buffer
	sizes := [][2]int{{8, 8}, {16, 4}, {10, 10}}
	for i, sz := range sizes {
		im := NewImage(sz[0], sz[1], -32)
		im.Header.Set("IMGNUM", i, "")
		if err := im.Encode(&stream); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := SplitStream(stream.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 3 {
		t.Fatalf("segments = %d", len(segs))
	}
	for i, seg := range segs {
		im, err := Decode(bytes.NewReader(seg))
		if err != nil {
			t.Fatal(err)
		}
		if im.Nx != sizes[i][0] || int(im.Header.Int("IMGNUM", -1)) != i {
			t.Errorf("segment %d: %dx%d num=%d", i, im.Nx, im.Ny, im.Header.Int("IMGNUM", -1))
		}
	}
	if _, err := SplitStream(nil); err == nil {
		t.Error("empty stream must fail")
	}
	if _, err := SplitStream([]byte("garbage that is not FITS at all")); err == nil {
		t.Error("garbage must fail")
	}
}
