// Package fits implements the subset of the Flexible Image Transport System
// (FITS, Hanisch et al. 2001) that the NVO galaxy-morphology prototype
// exchanges: single-HDU two-dimensional images with integer or IEEE floating
// point pixels, including the linear-scaling keywords BSCALE/BZERO and the
// tangent-plane WCS keywords that tie pixels to the sky.
//
// A FITS file is a sequence of 2880-byte logical records. The header is a
// series of 80-character "cards" (KEYWORD = value / comment), terminated by
// an END card and padded with blanks to a record boundary. The data array
// follows in big-endian order, padded with zero bytes to a record boundary.
package fits

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"sync"

	"repro/internal/wcs"
)

// BlockSize is the FITS logical record length in bytes.
const BlockSize = 2880

// CardSize is the length of one header card in bytes.
const CardSize = 80

// cardsPerBlock is the number of header cards per logical record.
const cardsPerBlock = BlockSize / CardSize

// blockPool recycles the 2880-byte record buffers Encode, Decode and the
// header reader work through. Every galaxy measured and every cutout
// written cycles at least two of these; pooling keeps the block traffic
// off the per-request allocation budget.
var blockPool = sync.Pool{New: func() any {
	b := make([]byte, BlockSize)
	return &b
}}

func getBlock() *[]byte  { return blockPool.Get().(*[]byte) }
func putBlock(b *[]byte) { blockPool.Put(b) }

// Errors returned by the decoder.
var (
	ErrNotFITS     = errors.New("fits: not a FITS file (missing SIMPLE card)")
	ErrBadHeader   = errors.New("fits: malformed header")
	ErrUnsupported = errors.New("fits: unsupported feature")
	ErrShortData   = errors.New("fits: truncated data array")
)

// Card is one 80-character header record. Value holds one of: nil (comment
// or valueless card), bool, int64, float64 or string.
type Card struct {
	Keyword string
	Value   any
	Comment string
}

// Header is an ordered collection of cards with keyword lookup. Keyword
// comparisons are case-sensitive; FITS keywords are upper case by convention
// and this package always writes them that way.
type Header struct {
	cards []Card
	index map[string]int // keyword -> first occurrence in cards
}

// NewHeader returns an empty header.
func NewHeader() *Header {
	return &Header{index: make(map[string]int)}
}

// Len returns the number of cards (excluding the END card, which is implicit).
func (h *Header) Len() int { return len(h.cards) }

// Cards returns the cards in order. The returned slice must not be modified.
func (h *Header) Cards() []Card { return h.cards }

// Set appends or replaces the card for keyword. COMMENT and HISTORY keywords
// are always appended (FITS allows many of each).
func (h *Header) Set(keyword string, value any, comment string) {
	keyword = strings.ToUpper(strings.TrimSpace(keyword))
	c := Card{Keyword: keyword, Value: normalizeValue(value), Comment: comment}
	if keyword != "COMMENT" && keyword != "HISTORY" && keyword != "" {
		if i, ok := h.index[keyword]; ok {
			h.cards[i] = c
			return
		}
	}
	if h.index == nil {
		h.index = make(map[string]int)
	}
	if _, ok := h.index[keyword]; !ok {
		h.index[keyword] = len(h.cards)
	}
	h.cards = append(h.cards, c)
}

// normalizeValue widens native numeric types so lookups behave uniformly.
func normalizeValue(v any) any {
	switch x := v.(type) {
	case int:
		return int64(x)
	case int32:
		return int64(x)
	case float32:
		return float64(x)
	default:
		return v
	}
}

// Get returns the value for keyword and whether it is present.
func (h *Header) Get(keyword string) (any, bool) {
	i, ok := h.index[strings.ToUpper(strings.TrimSpace(keyword))]
	if !ok {
		return nil, false
	}
	return h.cards[i].Value, true
}

// Int returns the integer value of keyword, or def if absent or non-integer.
func (h *Header) Int(keyword string, def int64) int64 {
	if v, ok := h.Get(keyword); ok {
		switch x := v.(type) {
		case int64:
			return x
		case float64:
			return int64(x)
		}
	}
	return def
}

// Float returns the float value of keyword, or def if absent or non-numeric.
func (h *Header) Float(keyword string, def float64) float64 {
	if v, ok := h.Get(keyword); ok {
		switch x := v.(type) {
		case float64:
			return x
		case int64:
			return float64(x)
		}
	}
	return def
}

// Str returns the string value of keyword, or def if absent or non-string.
func (h *Header) Str(keyword, def string) string {
	if v, ok := h.Get(keyword); ok {
		if s, ok := v.(string); ok {
			return s
		}
	}
	return def
}

// Bool returns the logical value of keyword, or def if absent or non-logical.
func (h *Header) Bool(keyword string, def bool) bool {
	if v, ok := h.Get(keyword); ok {
		if b, ok := v.(bool); ok {
			return b
		}
	}
	return def
}

// Image is a two-dimensional FITS image. Pixels are stored as float64
// regardless of on-disk BITPIX; Bitpix controls the encoding used on write.
// The pixel at column x (0-based, fastest axis / NAXIS1) and row y (0-based,
// NAXIS2) is Data[y*Nx+x].
type Image struct {
	Header *Header
	Nx, Ny int
	Bitpix int // 8, 16, 32, -32 or -64
	Data   []float64
}

// NewImage allocates a zeroed nx-by-ny image with the given BITPIX and a
// minimal mandatory header.
func NewImage(nx, ny, bitpix int) *Image {
	h := NewHeader()
	h.Set("SIMPLE", true, "conforms to FITS standard")
	h.Set("BITPIX", bitpix, "bits per pixel")
	h.Set("NAXIS", 2, "number of axes")
	h.Set("NAXIS1", nx, "axis 1 length")
	h.Set("NAXIS2", ny, "axis 2 length")
	return &Image{
		Header: h,
		Nx:     nx,
		Ny:     ny,
		Bitpix: bitpix,
		Data:   make([]float64, nx*ny),
	}
}

// At returns the pixel at 0-based (x, y); out-of-range coordinates return 0.
func (im *Image) At(x, y int) float64 {
	if x < 0 || y < 0 || x >= im.Nx || y >= im.Ny {
		return 0
	}
	return im.Data[y*im.Nx+x]
}

// SetAt stores v at 0-based (x, y); out-of-range coordinates are ignored.
func (im *Image) SetAt(x, y int, v float64) {
	if x < 0 || y < 0 || x >= im.Nx || y >= im.Ny {
		return
	}
	im.Data[y*im.Nx+x] = v
}

// SetWCS records a tangent-plane projection in the standard WCS keywords.
func (im *Image) SetWCS(p wcs.TanProjection) {
	im.Header.Set("CTYPE1", "RA---TAN", "gnomonic projection")
	im.Header.Set("CTYPE2", "DEC--TAN", "gnomonic projection")
	im.Header.Set("CRVAL1", p.Center.RA, "reference RA (deg)")
	im.Header.Set("CRVAL2", p.Center.Dec, "reference Dec (deg)")
	im.Header.Set("CRPIX1", p.RefX, "reference pixel, axis 1")
	im.Header.Set("CRPIX2", p.RefY, "reference pixel, axis 2")
	im.Header.Set("CDELT1", p.ScaleX, "deg/pixel, axis 1")
	im.Header.Set("CDELT2", p.ScaleY, "deg/pixel, axis 2")
}

// WCS reconstructs the tangent-plane projection from header keywords. The
// second return is false if the image carries no TAN projection.
func (im *Image) WCS() (wcs.TanProjection, bool) {
	if im.Header.Str("CTYPE1", "") != "RA---TAN" {
		return wcs.TanProjection{}, false
	}
	return wcs.TanProjection{
		Center: wcs.New(im.Header.Float("CRVAL1", 0), im.Header.Float("CRVAL2", 0)),
		RefX:   im.Header.Float("CRPIX1", 1),
		RefY:   im.Header.Float("CRPIX2", 1),
		ScaleX: im.Header.Float("CDELT1", -1.0/3600),
		ScaleY: im.Header.Float("CDELT2", 1.0/3600),
	}, true
}

// Cutout extracts the w-by-h sub-image whose lower-left corner is at 0-based
// (x0, y0), clipping to the image bounds. Regions entirely outside the image
// yield an error. WCS reference pixels are shifted so the cutout's projection
// still maps pixels to the correct sky positions — this is the operation the
// NVO "image cutout service" performs for each galaxy.
func (im *Image) Cutout(x0, y0, w, h int) (*Image, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("fits: cutout size %dx%d must be positive", w, h)
	}
	// Remember the requested origin: the error must name the rectangle the
	// caller asked for, not the clipped coordinates (which degenerate to
	// (0,0) for any fully off-image request and made the message opaque).
	rx0, ry0 := x0, y0
	x1 := x0 + w
	y1 := y0 + h
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > im.Nx {
		x1 = im.Nx
	}
	if y1 > im.Ny {
		y1 = im.Ny
	}
	if x0 >= x1 || y0 >= y1 {
		return nil, fmt.Errorf("fits: cutout (%d,%d)+%dx%d outside %dx%d image", rx0, ry0, w, h, im.Nx, im.Ny)
	}

	out := NewImage(x1-x0, y1-y0, im.Bitpix)
	for y := y0; y < y1; y++ {
		copy(out.Data[(y-y0)*out.Nx:(y-y0+1)*out.Nx], im.Data[y*im.Nx+x0:y*im.Nx+x1])
	}
	// Copy non-structural cards and shift the WCS reference pixel.
	for _, c := range im.Header.Cards() {
		switch c.Keyword {
		case "SIMPLE", "BITPIX", "NAXIS", "NAXIS1", "NAXIS2", "END":
			continue
		case "CRPIX1":
			out.Header.Set("CRPIX1", im.Header.Float("CRPIX1", 1)-float64(x0), c.Comment)
		case "CRPIX2":
			out.Header.Set("CRPIX2", im.Header.Float("CRPIX2", 1)-float64(y0), c.Comment)
		default:
			out.Header.Set(c.Keyword, c.Value, c.Comment)
		}
	}
	return out, nil
}

// Stats returns the minimum, maximum, mean and standard deviation of the
// pixel values.
func (im *Image) Stats() (min, max, mean, stddev float64) {
	if len(im.Data) == 0 {
		return 0, 0, 0, 0
	}
	min, max = im.Data[0], im.Data[0]
	var sum, sum2 float64
	for _, v := range im.Data {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		sum += v
		sum2 += v * v
	}
	n := float64(len(im.Data))
	mean = sum / n
	variance := sum2/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return min, max, mean, math.Sqrt(variance)
}

// Encode writes the image as a standards-conformant FITS file. Integer
// BITPIX values are rounded; values outside the integer range saturate.
func (im *Image) Encode(w io.Writer) error {
	if len(im.Data) != im.Nx*im.Ny {
		return fmt.Errorf("fits: data length %d != %d*%d", len(im.Data), im.Nx, im.Ny)
	}
	// Refresh the mandatory cards so they reflect the actual geometry.
	im.Header.Set("SIMPLE", true, "conforms to FITS standard")
	im.Header.Set("BITPIX", im.Bitpix, "bits per pixel")
	im.Header.Set("NAXIS", 2, "number of axes")
	im.Header.Set("NAXIS1", im.Nx, "axis 1 length")
	im.Header.Set("NAXIS2", im.Ny, "axis 2 length")

	if err := writeHeader(w, im.Header); err != nil {
		return err
	}
	return writeData(w, im)
}

// writeHeader emits the cards in canonical order (mandatory cards first) and
// pads to a record boundary.
func writeHeader(w io.Writer, h *Header) error {
	var buf []byte
	emit := func(c Card) {
		buf = append(buf, formatCard(c)...)
	}
	// Mandatory cards in required order.
	for _, k := range []string{"SIMPLE", "BITPIX", "NAXIS", "NAXIS1", "NAXIS2"} {
		if i, ok := h.index[k]; ok {
			emit(h.cards[i])
		}
	}
	for _, c := range h.cards {
		switch c.Keyword {
		case "SIMPLE", "BITPIX", "NAXIS", "NAXIS1", "NAXIS2", "END":
			continue
		}
		emit(c)
	}
	buf = append(buf, formatCard(Card{Keyword: "END"})...)
	for len(buf)%BlockSize != 0 {
		buf = append(buf, ' ')
	}
	_, err := w.Write(buf)
	return err
}

// formatCard renders one 80-byte card.
func formatCard(c Card) []byte {
	card := make([]byte, CardSize)
	for i := range card {
		card[i] = ' '
	}
	copy(card, c.Keyword)
	if c.Keyword == "COMMENT" || c.Keyword == "HISTORY" || c.Keyword == "" {
		copy(card[8:], c.Comment)
		return card
	}
	if c.Keyword == "END" {
		return card
	}
	card[8] = '='
	var val string
	switch v := c.Value.(type) {
	case nil:
		val = ""
	case bool:
		if v {
			val = "T"
		} else {
			val = "F"
		}
		val = fmt.Sprintf("%20s", val)
	case int64:
		val = fmt.Sprintf("%20d", v)
	case float64:
		val = fmt.Sprintf("%20s", formatFloat(v))
	case string:
		s := strings.ReplaceAll(v, "'", "''")
		val = fmt.Sprintf("'%-8s'", s)
	default:
		val = fmt.Sprintf("%20v", v)
	}
	pos := 10
	copy(card[pos:], val)
	pos += len(val)
	if c.Comment != "" && pos+3 < CardSize {
		copy(card[pos+1:], "/ ")
		copy(card[pos+3:], c.Comment)
	}
	return card
}

// formatFloat renders a float in a FITS-legal form that always round-trips.
func formatFloat(v float64) string {
	s := strconv.FormatFloat(v, 'G', 17, 64)
	if !strings.ContainsAny(s, ".E") {
		s += "."
	}
	return s
}

// writeData emits the big-endian data array with BSCALE/BZERO applied
// inversely (physical = BZERO + BSCALE*stored, so stored = (physical-BZERO)/BSCALE).
// Pixels are encoded one 2880-byte logical record at a time — every legal
// pixel width divides BlockSize, so no pixel straddles a record — keeping
// the encoder's memory constant regardless of image size.
func writeData(w io.Writer, im *Image) error {
	bscale := im.Header.Float("BSCALE", 1)
	bzero := im.Header.Float("BZERO", 0)
	if bscale == 0 {
		return fmt.Errorf("%w: BSCALE = 0", ErrBadHeader)
	}
	switch im.Bitpix {
	case 8, 16, 32, -32, -64:
	default:
		return fmt.Errorf("%w: BITPIX %d", ErrUnsupported, im.Bitpix)
	}

	bytesPerPix := abs(im.Bitpix) / 8
	blockBuf := getBlock()
	defer putBlock(blockBuf)
	block := *blockBuf
	fill := 0
	for _, phys := range im.Data {
		stored := (phys - bzero) / bscale
		switch im.Bitpix {
		case 8:
			block[fill] = uint8(clampRound(stored, 0, 255))
		case 16:
			binary.BigEndian.PutUint16(block[fill:], uint16(int16(clampRound(stored, math.MinInt16, math.MaxInt16))))
		case 32:
			binary.BigEndian.PutUint32(block[fill:], uint32(int32(clampRound(stored, math.MinInt32, math.MaxInt32))))
		case -32:
			binary.BigEndian.PutUint32(block[fill:], math.Float32bits(float32(stored)))
		case -64:
			binary.BigEndian.PutUint64(block[fill:], math.Float64bits(stored))
		}
		fill += bytesPerPix
		if fill == BlockSize {
			if _, err := w.Write(block); err != nil {
				return err
			}
			fill = 0
		}
	}
	if fill > 0 {
		// Zero-pad the final partial record.
		for i := fill; i < BlockSize; i++ {
			block[i] = 0
		}
		if _, err := w.Write(block); err != nil {
			return err
		}
	}
	return nil
}

func clampRound(v, lo, hi float64) int64 {
	r := math.Round(v)
	if r < lo {
		r = lo
	}
	if r > hi {
		r = hi
	}
	return int64(r)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// SplitStream cuts a concatenation of FITS files into the raw byte segments
// of its constituents, using the format's self-delimiting 2880-byte record
// structure. Each returned segment decodes independently. Batched image
// services deliver many cutouts as one such stream. Segments are delimited
// by walking headers only — the geometry keywords give each data array's
// extent — so splitting never decodes a pixel.
func SplitStream(data []byte) ([][]byte, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("%w: empty stream", ErrShortData)
	}
	var out [][]byte
	offset := 0
	for offset < len(data) {
		n, err := segmentLen(data[offset:])
		if err != nil {
			return nil, fmt.Errorf("fits: stream segment %d: %w", len(out), err)
		}
		out = append(out, data[offset:offset+n])
		offset += n
	}
	return out, nil
}

// segmentLen measures the first FITS file in rest, running exactly the
// validation Decode would so malformed streams fail with the same errors.
// A truncated trailing padding record is tolerated, like Decode's lenient
// padding read.
func segmentLen(rest []byte) (int, error) {
	r := bytes.NewReader(rest)
	h, err := readHeader(r)
	if err != nil {
		return 0, err
	}
	if !h.Bool("SIMPLE", false) {
		return 0, ErrNotFITS
	}
	naxis := h.Int("NAXIS", 0)
	if naxis != 2 {
		return 0, fmt.Errorf("%w: NAXIS=%d (only 2-D images supported)", ErrUnsupported, naxis)
	}
	nx := int(h.Int("NAXIS1", 0))
	ny := int(h.Int("NAXIS2", 0))
	bitpix := int(h.Int("BITPIX", 0))
	if nx <= 0 || ny <= 0 {
		return 0, fmt.Errorf("%w: NAXIS1=%d NAXIS2=%d", ErrBadHeader, nx, ny)
	}
	switch bitpix {
	case 8, 16, 32, -32, -64:
	default:
		return 0, fmt.Errorf("%w: BITPIX %d", ErrUnsupported, bitpix)
	}
	headerLen := len(rest) - r.Len()
	dataLen := nx * ny * (abs(bitpix) / 8)
	padded := ((dataLen + BlockSize - 1) / BlockSize) * BlockSize
	if avail := len(rest) - headerLen; avail < dataLen {
		cause := io.ErrUnexpectedEOF
		if avail == 0 {
			cause = io.EOF
		}
		return 0, fmt.Errorf("%w: %v", ErrShortData, cause)
	}
	end := headerLen + padded
	if end > len(rest) {
		end = len(rest)
	}
	return end, nil
}

// DecodeStream decodes a concatenation of FITS files from r, calling fn
// with each image in stream order — the incremental counterpart of
// SplitStream+Decode that never buffers the stream. fn errors abort the
// scan and are returned verbatim.
func DecodeStream(r io.Reader, fn func(index int, im *Image) error) error {
	br := bufio.NewReaderSize(r, BlockSize)
	if _, err := br.Peek(1); err != nil {
		if err == io.EOF {
			return fmt.Errorf("%w: empty stream", ErrShortData)
		}
		return err
	}
	for i := 0; ; i++ {
		im, err := Decode(br)
		if err != nil {
			return fmt.Errorf("fits: stream segment %d: %w", i, err)
		}
		if err := fn(i, im); err != nil {
			return err
		}
		if _, err := br.Peek(1); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
	}
}

// DecodeHeader reads only the header of a FITS file — the cheap metadata
// path archive services use to answer queries without decoding pixels.
func DecodeHeader(r io.Reader) (*Header, error) {
	h, err := readHeader(r)
	if err != nil {
		return nil, err
	}
	if !h.Bool("SIMPLE", false) {
		return nil, ErrNotFITS
	}
	return h, nil
}

// Decode reads a single-HDU FITS image.
func Decode(r io.Reader) (*Image, error) {
	h, err := readHeader(r)
	if err != nil {
		return nil, err
	}
	if !h.Bool("SIMPLE", false) {
		return nil, ErrNotFITS
	}
	naxis := h.Int("NAXIS", 0)
	if naxis != 2 {
		return nil, fmt.Errorf("%w: NAXIS=%d (only 2-D images supported)", ErrUnsupported, naxis)
	}
	nx := int(h.Int("NAXIS1", 0))
	ny := int(h.Int("NAXIS2", 0))
	bitpix := int(h.Int("BITPIX", 0))
	if nx <= 0 || ny <= 0 {
		return nil, fmt.Errorf("%w: NAXIS1=%d NAXIS2=%d", ErrBadHeader, nx, ny)
	}
	switch bitpix {
	case 8, 16, 32, -32, -64:
	default:
		return nil, fmt.Errorf("%w: BITPIX %d", ErrUnsupported, bitpix)
	}

	bytesPerPix := abs(bitpix) / 8
	n := nx * ny
	dataLen := n * bytesPerPix
	padded := ((dataLen + BlockSize - 1) / BlockSize) * BlockSize

	bscale := h.Float("BSCALE", 1)
	bzero := h.Float("BZERO", 0)

	// Read the data array one 2880-byte logical record at a time — every
	// legal pixel width divides BlockSize, so no pixel straddles a record —
	// instead of materializing the whole (padded) array before decoding.
	im := &Image{Header: h, Nx: nx, Ny: ny, Bitpix: bitpix, Data: make([]float64, n)}
	blockBuf := getBlock()
	defer putBlock(blockBuf)
	block := *blockBuf
	i := 0
	for read := 0; read < dataLen; {
		chunk := dataLen - read
		if chunk > BlockSize {
			chunk = BlockSize
		}
		if _, err := io.ReadFull(r, block[:chunk]); err != nil {
			if err == io.EOF && read > 0 {
				// The whole-array read reported any mid-array truncation as
				// an unexpected EOF; keep that contract across record reads.
				err = io.ErrUnexpectedEOF
			}
			return nil, fmt.Errorf("%w: %v", ErrShortData, err)
		}
		for off := 0; off < chunk; off += bytesPerPix {
			var stored float64
			switch bitpix {
			case 8:
				stored = float64(block[off])
			case 16:
				stored = float64(int16(binary.BigEndian.Uint16(block[off:])))
			case 32:
				stored = float64(int32(binary.BigEndian.Uint32(block[off:])))
			case -32:
				stored = float64(math.Float32frombits(binary.BigEndian.Uint32(block[off:])))
			case -64:
				stored = math.Float64frombits(binary.BigEndian.Uint64(block[off:]))
			}
			im.Data[i] = bzero + bscale*stored
			i++
		}
		read += chunk
	}
	// Trailing padding may be absent in lenient writers; ignore errors here.
	if pad := padded - dataLen; pad > 0 {
		_, _ = io.ReadFull(r, block[:pad])
	}
	return im, nil
}

// readHeader consumes 2880-byte records until an END card appears.
func readHeader(r io.Reader) (*Header, error) {
	h := NewHeader()
	blockBuf := getBlock()
	defer putBlock(blockBuf)
	block := *blockBuf
	for blockNum := 0; ; blockNum++ {
		if _, err := io.ReadFull(r, block); err != nil {
			return nil, fmt.Errorf("%w: header block %d: %v", ErrBadHeader, blockNum, err)
		}
		for i := 0; i < cardsPerBlock; i++ {
			card := block[i*CardSize : (i+1)*CardSize]
			kw := strings.TrimRight(string(card[:8]), " ")
			if kw == "END" {
				return h, nil
			}
			if blockNum == 0 && i == 0 && kw != "SIMPLE" {
				return nil, ErrNotFITS
			}
			if kw == "" {
				continue
			}
			c, err := parseCard(kw, card)
			if err != nil {
				return nil, err
			}
			h.Set(c.Keyword, c.Value, c.Comment)
		}
	}
}

// parseCard interprets the value-indicator syntax of one card.
func parseCard(kw string, card []byte) (Card, error) {
	if kw == "COMMENT" || kw == "HISTORY" {
		return Card{Keyword: kw, Comment: strings.TrimRight(string(card[8:]), " ")}, nil
	}
	if len(card) < 10 || card[8] != '=' {
		// Valueless card; keep the text as a comment.
		return Card{Keyword: kw, Comment: strings.TrimSpace(string(card[8:]))}, nil
	}
	body := string(card[10:])
	trimmed := strings.TrimLeft(body, " ")
	if strings.HasPrefix(trimmed, "'") {
		// String value: find closing quote, honoring '' escapes.
		rest := trimmed[1:]
		var sb strings.Builder
		for i := 0; i < len(rest); i++ {
			if rest[i] == '\'' {
				if i+1 < len(rest) && rest[i+1] == '\'' {
					sb.WriteByte('\'')
					i++
					continue
				}
				comment := extractComment(rest[i+1:])
				return Card{Keyword: kw, Value: strings.TrimRight(sb.String(), " "), Comment: comment}, nil
			}
			sb.WriteByte(rest[i])
		}
		return Card{}, fmt.Errorf("%w: unterminated string in card %q", ErrBadHeader, kw)
	}

	// Non-string: value runs to '/' or end.
	valPart := body
	comment := ""
	if slash := strings.Index(body, "/"); slash >= 0 {
		valPart = body[:slash]
		comment = strings.TrimSpace(body[slash+1:])
	}
	valStr := strings.TrimSpace(valPart)
	switch {
	case valStr == "":
		return Card{Keyword: kw, Comment: comment}, nil
	case valStr == "T":
		return Card{Keyword: kw, Value: true, Comment: comment}, nil
	case valStr == "F":
		return Card{Keyword: kw, Value: false, Comment: comment}, nil
	}
	if i, err := strconv.ParseInt(valStr, 10, 64); err == nil {
		return Card{Keyword: kw, Value: i, Comment: comment}, nil
	}
	// FITS permits 'D' exponents in double-precision values.
	if f, err := strconv.ParseFloat(strings.ReplaceAll(valStr, "D", "E"), 64); err == nil {
		return Card{Keyword: kw, Value: f, Comment: comment}, nil
	}
	return Card{}, fmt.Errorf("%w: unparsable value %q in card %q", ErrBadHeader, valStr, kw)
}

func extractComment(after string) string {
	if slash := strings.Index(after, "/"); slash >= 0 {
		return strings.TrimSpace(after[slash+1:])
	}
	return ""
}
