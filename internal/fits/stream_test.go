package fits

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"testing"
)

// legacySplitStream is the original decode-based splitter, frozen as the
// oracle for the header-walk implementation: both must cut identical
// segments and fail with identical errors.
func legacySplitStream(data []byte) ([][]byte, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("%w: empty stream", ErrShortData)
	}
	var out [][]byte
	r := bytes.NewReader(data)
	for r.Len() > 0 {
		start := len(data) - r.Len()
		if _, err := Decode(r); err != nil {
			return nil, fmt.Errorf("fits: stream segment %d: %w", len(out), err)
		}
		end := len(data) - r.Len()
		out = append(out, data[start:end])
	}
	return out, nil
}

// randomStream encodes a few random images back to back.
func randomStream(t *testing.T, rng *rand.Rand, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	bitpixes := []int{8, 16, 32, -32, -64}
	for i := 0; i < n; i++ {
		im := NewImage(1+rng.Intn(40), 1+rng.Intn(40), bitpixes[rng.Intn(len(bitpixes))])
		for j := range im.Data {
			im.Data[j] = float64(rng.Intn(200))
		}
		im.Header.Set("IMGNUM", i, "")
		if err := im.Encode(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestSplitStreamMatchesLegacy checks segment-for-segment equality with the
// decode-based splitter on well-formed streams and error-for-error equality
// on malformed ones (truncations at every block boundary plus garbage).
func TestSplitStreamMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		stream := randomStream(t, rng, 1+rng.Intn(4))
		want, wantErr := legacySplitStream(stream)
		got, gotErr := SplitStream(stream)
		if wantErr != nil || gotErr != nil {
			t.Fatalf("trial %d: unexpected errors %v / %v", trial, wantErr, gotErr)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: segments diverge", trial)
		}

		// Every truncation point must fail (or split) identically.
		for cut := 0; cut < len(stream); cut += BlockSize {
			want, wantErr := legacySplitStream(stream[:cut])
			got, gotErr := SplitStream(stream[:cut])
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("trial %d cut %d: legacy err %v, header-walk err %v", trial, cut, wantErr, gotErr)
			}
			if wantErr != nil {
				if wantErr.Error() != gotErr.Error() {
					t.Fatalf("trial %d cut %d: error text %q vs %q", trial, cut, gotErr, wantErr)
				}
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d cut %d: segments diverge", trial, cut)
			}
		}
	}
	for _, bad := range [][]byte{nil, []byte("garbage"), bytes.Repeat([]byte{'x'}, BlockSize)} {
		want, wantErr := legacySplitStream(bad)
		got, gotErr := SplitStream(bad)
		if want != nil || got != nil || wantErr == nil || gotErr == nil || wantErr.Error() != gotErr.Error() {
			t.Errorf("malformed %q: legacy (%v, %v) vs header-walk (%v, %v)", bad[:min(8, len(bad))], want, wantErr, got, gotErr)
		}
	}
}

// TestSplitStreamNeverDecodesPixels plants an out-of-range geometry that
// only pixel decoding would choke on... it cannot, so instead check the
// splitter is cheap: a stream whose data blocks are pure garbage still
// splits (headers alone delimit segments).
func TestSplitStreamNeverDecodesPixels(t *testing.T) {
	im := NewImage(32, 32, -64)
	var buf bytes.Buffer
	if err := im.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	stream := buf.Bytes()
	// Trash every data byte; the header-walk must not care.
	for i := BlockSize; i < len(stream); i++ {
		stream[i] = 0xFF
	}
	segs, err := SplitStream(stream)
	if err != nil || len(segs) != 1 || len(segs[0]) != len(stream) {
		t.Fatalf("split over trashed pixels: %d segments, %v", len(segs), err)
	}
}

// TestDecodeStreamMatchesSplit checks the incremental decoder against
// SplitStream+Decode: same images, same order, same errors, callback errors
// verbatim.
func TestDecodeStreamMatchesSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	stream := randomStream(t, rng, 4)

	segs, err := SplitStream(stream)
	if err != nil {
		t.Fatal(err)
	}
	var want []*Image
	for _, seg := range segs {
		im, err := Decode(bytes.NewReader(seg))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, im)
	}

	var got []*Image
	err = DecodeStream(bytes.NewReader(stream), func(i int, im *Image) error {
		if i != len(got) {
			t.Fatalf("index %d out of order", i)
		}
		got = append(got, im)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("streamed images diverge from split+decode")
	}

	// Empty stream: same sentinel as SplitStream.
	if err := DecodeStream(bytes.NewReader(nil), nil); !errors.Is(err, ErrShortData) {
		t.Errorf("empty stream error = %v", err)
	}
	// Callback errors pass through verbatim.
	sentinel := errors.New("stop")
	err = DecodeStream(bytes.NewReader(stream), func(int, *Image) error { return sentinel })
	if err != sentinel {
		t.Errorf("callback error = %v, want sentinel verbatim", err)
	}
	// A stream cut inside a data array fails with the segment-indexed error.
	big := NewImage(100, 100, -64)
	var bigBuf bytes.Buffer
	if err := big.Encode(&bigBuf); err != nil {
		t.Fatal(err)
	}
	err = DecodeStream(bytes.NewReader(bigBuf.Bytes()[:BlockSize*2]), func(int, *Image) error { return nil })
	if err == nil || !errors.Is(err, ErrShortData) {
		t.Errorf("truncated stream error = %v", err)
	}
}

// TestDecodeMidArrayTruncationError pins the unexpected-EOF contract the
// record-at-a-time reader must keep: truncation after some data was read
// reports io.ErrUnexpectedEOF, a completely absent array reports io.EOF.
func TestDecodeMidArrayTruncationError(t *testing.T) {
	im := NewImage(100, 100, -64)
	var buf bytes.Buffer
	if err := im.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	_, err := Decode(bytes.NewReader(full[:BlockSize*3])) // header + 2 data records
	if err == nil || !errors.Is(err, ErrShortData) || !contains(err, io.ErrUnexpectedEOF.Error()) {
		t.Errorf("mid-array truncation = %v, want ErrShortData: unexpected EOF", err)
	}
	_, err = Decode(bytes.NewReader(full[:BlockSize])) // header only
	if err == nil || !errors.Is(err, ErrShortData) || contains(err, io.ErrUnexpectedEOF.Error()) {
		t.Errorf("absent array = %v, want ErrShortData: EOF", err)
	}
}

func contains(err error, substr string) bool {
	return err != nil && bytes.Contains([]byte(err.Error()), []byte(substr))
}
