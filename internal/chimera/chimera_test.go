package chimera

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/vdl"
)

// figure1Catalog builds the paper's Figure 1 example: d1 takes a -> b,
// d2 takes b -> c.
func figure1Catalog(t *testing.T) *vdl.Catalog {
	t.Helper()
	cat, err := vdl.Parse(`
TR step( in x, out y ) {}
DV d1->step( x=@{in:"a"}, y=@{out:"b"} );
DV d2->step( x=@{in:"b"}, y=@{out:"c"} );
`)
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestFigure1AbstractWorkflow(t *testing.T) {
	// Requesting file c must yield the two-node chain d1 -> d2 (Figure 1).
	wf, err := Compose(figure1Catalog(t), Request{LFNs: []string{"c"}})
	if err != nil {
		t.Fatal(err)
	}
	g := wf.Graph
	if g.Len() != 2 {
		t.Fatalf("nodes = %v", g.Nodes())
	}
	if !g.HasEdge("d1", "d2") {
		t.Error("edge d1 -> d2 missing")
	}
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	if order[0] != "d1" || order[1] != "d2" {
		t.Errorf("order = %v", order)
	}
	if len(wf.RawInputs) != 1 || wf.RawInputs[0] != "a" {
		t.Errorf("raw inputs = %v", wf.RawInputs)
	}
	if len(wf.Intermediate) != 1 || wf.Intermediate[0] != "b" {
		t.Errorf("intermediate = %v", wf.Intermediate)
	}
	n, _ := g.Node("d2")
	if n.Attr(AttrTransformation) != "step" || n.Attr(AttrInputs) != "b" || n.Attr(AttrOutputs) != "c" {
		t.Errorf("node attrs = %v", n.Attrs)
	}
}

func TestComposeIntermediateRequest(t *testing.T) {
	// Asking for the intermediate b needs only d1.
	wf, err := Compose(figure1Catalog(t), Request{LFNs: []string{"b"}})
	if err != nil {
		t.Fatal(err)
	}
	if wf.Graph.Len() != 1 {
		t.Fatalf("nodes = %v", wf.Graph.Nodes())
	}
}

func TestComposeErrors(t *testing.T) {
	cat := figure1Catalog(t)
	if _, err := Compose(cat, Request{}); err == nil {
		t.Error("empty request must fail")
	}
	_, err := Compose(cat, Request{LFNs: []string{"ghost"}})
	if !errors.Is(err, ErrNoProducer) {
		t.Errorf("want ErrNoProducer, got %v", err)
	}
}

func TestComposeAmbiguous(t *testing.T) {
	cat, err := vdl.Parse(`
TR t( in x, out y ) {}
DV d1->t( x=@{in:"a"}, y=@{out:"dup"} );
DV d2->t( x=@{in:"b"}, y=@{out:"dup"} );
`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Compose(cat, Request{LFNs: []string{"dup"}})
	if !errors.Is(err, ErrAmbiguous) {
		t.Errorf("want ErrAmbiguous, got %v", err)
	}
}

func TestComposeDiamond(t *testing.T) {
	// a -> (left, right) -> join: classic diamond dependency.
	cat, err := vdl.Parse(`
TR split( in x, out l, out r ) {}
TR work( in x, out y ) {}
TR join( in l, in r, out z ) {}
DV dsplit->split( x=@{in:"a"}, l=@{out:"b1"}, r=@{out:"b2"} );
DV dleft->work( x=@{in:"b1"}, y=@{out:"c1"} );
DV dright->work( x=@{in:"b2"}, y=@{out:"c2"} );
DV djoin->join( l=@{in:"c1"}, r=@{in:"c2"}, z=@{out:"d"} );
`)
	if err != nil {
		t.Fatal(err)
	}
	wf, err := Compose(cat, Request{LFNs: []string{"d"}})
	if err != nil {
		t.Fatal(err)
	}
	g := wf.Graph
	if g.Len() != 4 {
		t.Fatalf("nodes = %v", g.Nodes())
	}
	for _, e := range [][2]string{{"dsplit", "dleft"}, {"dsplit", "dright"}, {"dleft", "djoin"}, {"dright", "djoin"}} {
		if !g.HasEdge(e[0], e[1]) {
			t.Errorf("edge %v missing", e)
		}
	}
	levels, _ := g.Levels()
	if len(levels) != 3 || len(levels[1]) != 2 {
		t.Errorf("levels = %v", levels)
	}
}

func TestComposeSharedAncestorNotDuplicated(t *testing.T) {
	// Two requested files sharing one upstream producer: the producer node
	// must appear once.
	cat, err := vdl.Parse(`
TR t( in x, out y ) {}
DV base->t( x=@{in:"raw"}, y=@{out:"mid"} );
DV left->t( x=@{in:"mid"}, y=@{out:"out1"} );
DV right->t( x=@{in:"mid"}, y=@{out:"out2"} );
`)
	if err != nil {
		t.Fatal(err)
	}
	wf, err := Compose(cat, Request{LFNs: []string{"out1", "out2"}})
	if err != nil {
		t.Fatal(err)
	}
	if wf.Graph.Len() != 3 {
		t.Fatalf("nodes = %v", wf.Graph.Nodes())
	}
	if len(wf.Graph.Children("base")) != 2 {
		t.Errorf("base children = %v", wf.Graph.Children("base"))
	}
}

// galMorphCatalog mimics the web service's generated derivation file: one
// galMorph DV per galaxy plus a concat DV collecting all outputs.
func galMorphCatalog(t testing.TB, n int) *vdl.Catalog {
	t.Helper()
	var b strings.Builder
	b.WriteString("TR galMorph( in redshift, in image, out galMorph ) {}\n")
	b.WriteString("TR concat( ")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "in p%d, ", i)
	}
	b.WriteString("out table ) {}\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "DV morph%d->galMorph( redshift=\"0.05\", image=@{in:\"g%d.fit\"}, galMorph=@{out:\"g%d.txt\"} );\n", i, i, i)
	}
	b.WriteString("DV collect->concat( ")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "p%d=@{in:\"g%d.txt\"}, ", i, i)
	}
	b.WriteString("table=@{out:\"cluster.vot\"} );\n")
	cat, err := vdl.Parse(b.String())
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestComposeGalaxyMorphologyShape(t *testing.T) {
	// The application workflow: N parallel galMorph jobs fanning into one
	// concat job, rooted at N raw image files.
	cat := galMorphCatalog(t, 37) // the paper's smallest cluster
	wf, err := Compose(cat, Request{LFNs: []string{"cluster.vot"}})
	if err != nil {
		t.Fatal(err)
	}
	g := wf.Graph
	if g.Len() != 38 {
		t.Fatalf("nodes = %d, want 38", g.Len())
	}
	if len(wf.RawInputs) != 37 {
		t.Errorf("raw inputs = %d", len(wf.RawInputs))
	}
	if len(g.Parents("collect")) != 37 {
		t.Errorf("collect parents = %d", len(g.Parents("collect")))
	}
	levels, _ := g.Levels()
	if len(levels) != 2 || len(levels[0]) != 37 {
		t.Errorf("levels = %d/%d", len(levels), len(levels[0]))
	}
}

func TestComposeAll(t *testing.T) {
	cat := galMorphCatalog(t, 5)
	wf, err := ComposeAll(cat)
	if err != nil {
		t.Fatal(err)
	}
	if wf.Graph.Len() != 6 {
		t.Errorf("nodes = %d", wf.Graph.Len())
	}
	empty := vdl.NewCatalog()
	if _, err := ComposeAll(empty); err == nil {
		t.Error("empty catalog must fail")
	}
}

func TestSplitLFNs(t *testing.T) {
	cases := map[string][]string{
		"":       nil,
		"a":      {"a"},
		"a,b,c":  {"a", "b", "c"},
		"a,,b":   {"a", "b"},
		"trail,": {"trail"},
		",lead":  {"lead"},
	}
	for in, want := range cases {
		got := SplitLFNs(in)
		if len(got) != len(want) {
			t.Errorf("SplitLFNs(%q) = %v, want %v", in, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("SplitLFNs(%q) = %v, want %v", in, got, want)
			}
		}
	}
}

func BenchmarkCompose561(b *testing.B) {
	cat := galMorphCatalog(b, 561)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compose(cat, Request{LFNs: []string{"cluster.vot"}}); err != nil {
			b.Fatal(err)
		}
	}
}
