// Package chimera implements the workflow-composition half of the GriPhyN
// Virtual Data System (Foster et al. 2002) as the paper uses it: given a
// Virtual Data Catalog of transformations and derivations and a requested
// logical file, compose the abstract workflow — the DAG of derivations that
// materializes the file, chaining backward through derivations whose outputs
// feed other derivations' inputs (Figure 1 of the paper).
//
// The abstract workflow names only logical transformations and logical
// files; no resources are assigned. That is Pegasus's job (internal/pegasus).
package chimera

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/dag"
	"repro/internal/vdl"
)

// Node attribute keys used on abstract workflow nodes. Downstream packages
// (pegasus, dagman) read these.
const (
	// AttrTransformation is the logical transformation name of a job node.
	AttrTransformation = "transformation"
	// AttrInputs / AttrOutputs are comma-joined logical file lists.
	AttrInputs  = "inputs"
	AttrOutputs = "outputs"
	// AttrDerivation is the originating DV name.
	AttrDerivation = "derivation"
)

// NodeType is the Type of every abstract-workflow job node.
const NodeType = "job"

// Errors returned by composition.
var (
	ErrNoProducer = errors.New("chimera: no derivation produces the requested file")
	ErrAmbiguous  = errors.New("chimera: multiple derivations produce the same file")
)

// Request asks for one or more logical files to be materialized.
type Request struct {
	LFNs []string
}

// Workflow is the result of composition: the abstract DAG plus the file sets
// Pegasus needs for feasibility checks and reduction.
type Workflow struct {
	Graph *dag.Graph
	// RequestedLFNs are the files the user asked for.
	RequestedLFNs []string
	// RawInputs are input files no derivation in the catalog produces; they
	// must pre-exist somewhere in the Grid (Pegasus checks the RLS).
	RawInputs []string
	// Intermediate are files both produced and consumed inside the workflow.
	Intermediate []string
}

// Compose builds the abstract workflow that materializes every requested
// LFN, walking the catalog backward from the requested files through their
// producing derivations. A file produced by more than one derivation is an
// ErrAmbiguous error; a requested file with no producer is ErrNoProducer.
func Compose(cat *vdl.Catalog, req Request) (*Workflow, error) {
	if len(req.LFNs) == 0 {
		return nil, errors.New("chimera: empty request")
	}
	g := dag.New()
	wf := &Workflow{Graph: g, RequestedLFNs: append([]string(nil), req.LFNs...)}

	// visit composes the producer chain for lfn; returns the derivation
	// name producing it, or "" for raw inputs.
	visited := map[string]string{} // lfn -> producing node id ("" = raw)
	rawSet := map[string]bool{}
	interSet := map[string]bool{}

	var visit func(lfn string, needed bool) (string, error)
	visit = func(lfn string, requested bool) (string, error) {
		if prod, seen := visited[lfn]; seen {
			return prod, nil
		}
		producers := cat.Producers(lfn)
		switch {
		case len(producers) == 0:
			if requested {
				return "", fmt.Errorf("%w: %q", ErrNoProducer, lfn)
			}
			visited[lfn] = ""
			rawSet[lfn] = true
			return "", nil
		case len(producers) > 1:
			return "", fmt.Errorf("%w: %q produced by %v", ErrAmbiguous, lfn, producers)
		}
		dvName := producers[0]
		visited[lfn] = dvName
		dv, _ := cat.Derivation(dvName)

		if _, exists := g.Node(dvName); !exists {
			n := &dag.Node{ID: dvName, Type: NodeType}
			n.SetAttr(AttrTransformation, dv.TR)
			n.SetAttr(AttrDerivation, dvName)
			n.SetAttr(AttrInputs, joinLFNs(dv.InputLFNs()))
			n.SetAttr(AttrOutputs, joinLFNs(dv.OutputLFNs()))
			if err := g.AddNode(n); err != nil {
				return "", err
			}
			// Mark every output of this DV as visited to avoid re-walking.
			for _, out := range dv.OutputLFNs() {
				visited[out] = dvName
			}
			// Recurse into the DV's inputs.
			for _, in := range dv.InputLFNs() {
				parent, err := visit(in, false)
				if err != nil {
					return "", err
				}
				if parent != "" {
					interSet[in] = true
					if err := g.AddEdge(parent, dvName); err != nil {
						return "", err
					}
				}
			}
		}
		return dvName, nil
	}

	for _, lfn := range req.LFNs {
		if _, err := visit(lfn, true); err != nil {
			return nil, err
		}
	}

	wf.RawInputs = sortedSet(rawSet)
	wf.Intermediate = sortedSet(interSet)
	return wf, nil
}

// ComposeAll materializes the outputs of every derivation in the catalog —
// the "run the whole request" mode the galaxy-morphology web service uses,
// where the derivation file contains exactly the jobs wanted.
func ComposeAll(cat *vdl.Catalog) (*Workflow, error) {
	var lfns []string
	seen := map[string]bool{}
	for _, dvName := range cat.Derivations() {
		dv, _ := cat.Derivation(dvName)
		for _, out := range dv.OutputLFNs() {
			if !seen[out] {
				seen[out] = true
				lfns = append(lfns, out)
			}
		}
	}
	if len(lfns) == 0 {
		return nil, errors.New("chimera: catalog has no derivations")
	}
	return Compose(cat, Request{LFNs: lfns})
}

func joinLFNs(lfns []string) string {
	out := ""
	for i, l := range lfns {
		if i > 0 {
			out += ","
		}
		out += l
	}
	return out
}

// SplitLFNs reverses joinLFNs for node-attribute consumers.
func SplitLFNs(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func sortedSet(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
