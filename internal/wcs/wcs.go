// Package wcs implements the small amount of world-coordinate-system
// machinery the NVO prototype needs: equatorial sky coordinates, great-circle
// separations, gnomonic (tangent-plane) projection between sky and pixel
// coordinates, and sexagesimal parsing/formatting.
//
// Positions are J2000 equatorial: right ascension (RA) and declination (Dec)
// in decimal degrees. RA is normalized to [0, 360); Dec is clamped to
// [-90, +90]. The Cone Search and Simple Image Access protocols both select
// data by (RA, Dec, radius), so this package underpins every data service in
// the repository.
package wcs

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Deg2Rad converts degrees to radians.
const Deg2Rad = math.Pi / 180

// Rad2Deg converts radians to degrees.
const Rad2Deg = 180 / math.Pi

// SkyCoord is a position on the celestial sphere in decimal degrees (J2000).
type SkyCoord struct {
	RA  float64 // right ascension, degrees, [0, 360)
	Dec float64 // declination, degrees, [-90, +90]
}

// New returns a normalized SkyCoord: RA wrapped into [0,360) and Dec clamped
// to the poles.
func New(raDeg, decDeg float64) SkyCoord {
	return SkyCoord{RA: NormalizeRA(raDeg), Dec: ClampDec(decDeg)}
}

// NormalizeRA wraps a right ascension into [0, 360).
func NormalizeRA(ra float64) float64 {
	ra = math.Mod(ra, 360)
	if ra < 0 {
		ra += 360
	}
	return ra
}

// ClampDec limits a declination to the physical range [-90, +90].
func ClampDec(dec float64) float64 {
	if dec > 90 {
		return 90
	}
	if dec < -90 {
		return -90
	}
	return dec
}

// String renders the coordinate as "RA=10.68471 Dec=+41.26875".
func (c SkyCoord) String() string {
	return fmt.Sprintf("RA=%.5f Dec=%+.5f", c.RA, c.Dec)
}

// Separation returns the great-circle angular distance in degrees between c
// and o, computed with the Vincenty formula, which is numerically stable at
// all separations (haversine loses precision near antipodal points and the
// spherical law of cosines near zero).
func (c SkyCoord) Separation(o SkyCoord) float64 {
	a1 := c.RA * Deg2Rad
	d1 := c.Dec * Deg2Rad
	a2 := o.RA * Deg2Rad
	d2 := o.Dec * Deg2Rad
	dra := a2 - a1

	sd1, cd1 := math.Sincos(d1)
	sd2, cd2 := math.Sincos(d2)
	sdra, cdra := math.Sincos(dra)

	num := math.Hypot(cd2*sdra, cd1*sd2-sd1*cd2*cdra)
	den := sd1*sd2 + cd1*cd2*cdra
	return math.Atan2(num, den) * Rad2Deg
}

// PositionAngle returns the position angle (degrees east of north, [0,360))
// of o as seen from c.
func (c SkyCoord) PositionAngle(o SkyCoord) float64 {
	a1 := c.RA * Deg2Rad
	d1 := c.Dec * Deg2Rad
	a2 := o.RA * Deg2Rad
	d2 := o.Dec * Deg2Rad
	dra := a2 - a1
	y := math.Sin(dra) * math.Cos(d2)
	x := math.Cos(d1)*math.Sin(d2) - math.Sin(d1)*math.Cos(d2)*math.Cos(dra)
	pa := math.Atan2(y, x) * Rad2Deg
	if pa < 0 {
		pa += 360
	}
	return pa
}

// Offset returns the coordinate reached by moving sepDeg degrees from c along
// position angle paDeg (east of north). It inverts PositionAngle/Separation:
// for small, non-polar offsets, c.Offset(pa, sep) lies at separation sep and
// position angle pa from c.
func (c SkyCoord) Offset(paDeg, sepDeg float64) SkyCoord {
	d1 := c.Dec * Deg2Rad
	pa := paDeg * Deg2Rad
	sep := sepDeg * Deg2Rad

	sinD2 := math.Sin(d1)*math.Cos(sep) + math.Cos(d1)*math.Sin(sep)*math.Cos(pa)
	d2 := math.Asin(clamp(sinD2, -1, 1))
	y := math.Sin(pa) * math.Sin(sep) * math.Cos(d1)
	x := math.Cos(sep) - math.Sin(d1)*sinD2
	ra2 := c.RA + math.Atan2(y, x)*Rad2Deg
	return New(ra2, d2*Rad2Deg)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// InCone reports whether c lies within radiusDeg of center. Every cone-search
// implementation in the repository delegates to this.
func InCone(center, c SkyCoord, radiusDeg float64) bool {
	return center.Separation(c) <= radiusDeg
}

// TanProjection is a gnomonic (TAN) projection tying pixel coordinates to the
// sky, mirroring the FITS WCS keywords CRVAL1/2 (reference sky position),
// CRPIX1/2 (reference pixel, 1-based per FITS convention) and CDELT1/2
// (degrees per pixel; CDELT1 is conventionally negative because RA increases
// to the left).
type TanProjection struct {
	Center SkyCoord // CRVAL1, CRVAL2
	RefX   float64  // CRPIX1 (1-based)
	RefY   float64  // CRPIX2 (1-based)
	ScaleX float64  // CDELT1, degrees/pixel (typically negative)
	ScaleY float64  // CDELT2, degrees/pixel
}

// NewTanProjection builds a projection centered on center with the reference
// pixel at the middle of an nx-by-ny image and a square pixel scale of
// scaleDeg degrees/pixel (applied as -scaleDeg on the RA axis).
func NewTanProjection(center SkyCoord, nx, ny int, scaleDeg float64) TanProjection {
	return TanProjection{
		Center: center,
		RefX:   (float64(nx) + 1) / 2,
		RefY:   (float64(ny) + 1) / 2,
		ScaleX: -scaleDeg,
		ScaleY: scaleDeg,
	}
}

// SkyToPixel converts a sky position to 1-based pixel coordinates. The second
// return is false if the position is on the far hemisphere where the gnomonic
// projection diverges.
func (p TanProjection) SkyToPixel(c SkyCoord) (x, y float64, ok bool) {
	a0 := p.Center.RA * Deg2Rad
	d0 := p.Center.Dec * Deg2Rad
	a := c.RA * Deg2Rad
	d := c.Dec * Deg2Rad

	cosC := math.Sin(d0)*math.Sin(d) + math.Cos(d0)*math.Cos(d)*math.Cos(a-a0)
	if cosC <= 1e-12 {
		return 0, 0, false
	}
	xi := math.Cos(d) * math.Sin(a-a0) / cosC
	eta := (math.Cos(d0)*math.Sin(d) - math.Sin(d0)*math.Cos(d)*math.Cos(a-a0)) / cosC

	x = p.RefX + xi*Rad2Deg/p.ScaleX
	y = p.RefY + eta*Rad2Deg/p.ScaleY
	return x, y, true
}

// PixelToSky converts 1-based pixel coordinates back to the sky.
func (p TanProjection) PixelToSky(x, y float64) SkyCoord {
	xi := (x - p.RefX) * p.ScaleX * Deg2Rad
	eta := (y - p.RefY) * p.ScaleY * Deg2Rad

	a0 := p.Center.RA * Deg2Rad
	d0 := p.Center.Dec * Deg2Rad

	den := math.Cos(d0) - eta*math.Sin(d0)
	dra := math.Atan2(xi, den)
	a := a0 + dra
	d := math.Atan2((math.Sin(d0)+eta*math.Cos(d0))*math.Cos(dra), den)
	return New(a*Rad2Deg, d*Rad2Deg)
}

// FormatSexagesimal renders the coordinate as "HH:MM:SS.ss +DD:MM:SS.s",
// the form astronomical catalogs conventionally publish.
func (c SkyCoord) FormatSexagesimal() string {
	raH := c.RA / 15
	h := int(raH)
	m := int((raH - float64(h)) * 60)
	s := (raH - float64(h) - float64(m)/60) * 3600

	dec := c.Dec
	sign := "+"
	if dec < 0 {
		sign = "-"
		dec = -dec
	}
	dd := int(dec)
	dm := int((dec - float64(dd)) * 60)
	ds := (dec - float64(dd) - float64(dm)/60) * 3600

	return fmt.Sprintf("%02d:%02d:%05.2f %s%02d:%02d:%04.1f", h, m, s, sign, dd, dm, ds)
}

// ErrBadCoordinate reports an unparsable coordinate string.
var ErrBadCoordinate = errors.New("wcs: bad coordinate")

// ParseSexagesimal parses "HH:MM:SS.ss [+-]DD:MM:SS.s" (whitespace-separated)
// back into a SkyCoord. It tolerates missing fractional parts.
func ParseSexagesimal(s string) (SkyCoord, error) {
	fields := strings.Fields(strings.TrimSpace(s))
	if len(fields) != 2 {
		return SkyCoord{}, fmt.Errorf("%w: %q (want two fields)", ErrBadCoordinate, s)
	}
	ra, err := parseHMS(fields[0], 15)
	if err != nil {
		return SkyCoord{}, fmt.Errorf("%w: RA %q: %v", ErrBadCoordinate, fields[0], err)
	}
	dec, err := parseHMS(fields[1], 1)
	if err != nil {
		return SkyCoord{}, fmt.Errorf("%w: Dec %q: %v", ErrBadCoordinate, fields[1], err)
	}
	if dec < -90 || dec > 90 {
		return SkyCoord{}, fmt.Errorf("%w: Dec %v out of range", ErrBadCoordinate, dec)
	}
	return New(ra, dec), nil
}

// parseHMS parses "A:B:C" with an optional sign and returns
// sign*(A + B/60 + C/3600)*unit.
func parseHMS(s string, unit float64) (float64, error) {
	sign := 1.0
	switch {
	case strings.HasPrefix(s, "-"):
		sign = -1
		s = s[1:]
	case strings.HasPrefix(s, "+"):
		s = s[1:]
	}
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return 0, fmt.Errorf("want 3 colon-separated parts, got %d", len(parts))
	}
	var vals [3]float64
	for i, p := range parts {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return 0, err
		}
		if v < 0 {
			return 0, fmt.Errorf("negative component %q", p)
		}
		vals[i] = v
	}
	return sign * (vals[0] + vals[1]/60 + vals[2]/3600) * unit, nil
}
