package wcs

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewNormalizes(t *testing.T) {
	cases := []struct {
		inRA, inDec  float64
		wantRA, wDec float64
	}{
		{0, 0, 0, 0},
		{360, 10, 0, 10},
		{-10, 10, 350, 10},
		{725, -95, 5, -90},
		{359.999, 95, 359.999, 90},
	}
	for _, c := range cases {
		got := New(c.inRA, c.inDec)
		if !almostEq(got.RA, c.wantRA, 1e-9) || !almostEq(got.Dec, c.wDec, 1e-9) {
			t.Errorf("New(%v,%v) = %v, want RA=%v Dec=%v", c.inRA, c.inDec, got, c.wantRA, c.wDec)
		}
	}
}

func TestSeparationKnownValues(t *testing.T) {
	cases := []struct {
		a, b SkyCoord
		want float64
	}{
		{New(0, 0), New(0, 0), 0},
		{New(0, 0), New(1, 0), 1},
		{New(0, 0), New(0, 1), 1},
		{New(0, 89), New(180, 89), 2},   // across the pole
		{New(0, 0), New(180, 0), 180},   // antipodal on the equator
		{New(10, 0), New(350, 0), 20},   // straddling RA wrap
		{New(0, 90), New(123, 90), 0},   // same pole regardless of RA
		{New(0, 90), New(45, -90), 180}, // pole to pole
	}
	for _, c := range cases {
		got := c.a.Separation(c.b)
		if !almostEq(got, c.want, 1e-9) {
			t.Errorf("Separation(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSeparationSymmetric(t *testing.T) {
	f := func(ra1, dec1, ra2, dec2 float64) bool {
		a := New(math.Mod(ra1, 360), math.Mod(dec1, 90))
		b := New(math.Mod(ra2, 360), math.Mod(dec2, 90))
		s1 := a.Separation(b)
		s2 := b.Separation(a)
		return almostEq(s1, s2, 1e-9) && s1 >= 0 && s1 <= 180+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeparationTriangleInequality(t *testing.T) {
	f := func(ra1, dec1, ra2, dec2, ra3, dec3 float64) bool {
		a := New(math.Mod(ra1, 360), math.Mod(dec1, 90))
		b := New(math.Mod(ra2, 360), math.Mod(dec2, 90))
		c := New(math.Mod(ra3, 360), math.Mod(dec3, 90))
		return a.Separation(c) <= a.Separation(b)+b.Separation(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOffsetRoundTrip(t *testing.T) {
	c := New(150, 30)
	for _, pa := range []float64{0, 45, 90, 180, 270, 333} {
		for _, sep := range []float64{0.001, 0.1, 1, 5} {
			o := c.Offset(pa, sep)
			if got := c.Separation(o); !almostEq(got, sep, 1e-9) {
				t.Errorf("Offset(pa=%v, sep=%v): separation = %v", pa, sep, got)
			}
			if gotPA := c.PositionAngle(o); !almostEq(gotPA, pa, 1e-6) {
				t.Errorf("Offset(pa=%v, sep=%v): position angle = %v", pa, sep, gotPA)
			}
		}
	}
}

func TestInCone(t *testing.T) {
	center := New(180, -45)
	if !InCone(center, New(180.5, -45), 1) {
		t.Error("point 0.35 deg away should be inside 1-deg cone")
	}
	if InCone(center, New(180, -42), 1) {
		t.Error("point 3 deg away should be outside 1-deg cone")
	}
	if !InCone(center, center, 0) {
		t.Error("center must be inside zero-radius cone")
	}
}

func TestTanProjectionCenter(t *testing.T) {
	p := NewTanProjection(New(200, 47), 512, 512, 1.0/3600)
	x, y, ok := p.SkyToPixel(p.Center)
	if !ok {
		t.Fatal("center not projectable")
	}
	if !almostEq(x, 256.5, 1e-9) || !almostEq(y, 256.5, 1e-9) {
		t.Errorf("center maps to (%v,%v), want (256.5,256.5)", x, y)
	}
}

func TestTanProjectionRoundTrip(t *testing.T) {
	p := NewTanProjection(New(10, -30), 1024, 768, 0.5/3600)
	for _, px := range []struct{ x, y float64 }{
		{1, 1}, {512.5, 384.5}, {1024, 768}, {100.25, 700.75},
	} {
		sky := p.PixelToSky(px.x, px.y)
		x, y, ok := p.SkyToPixel(sky)
		if !ok {
			t.Fatalf("pixel (%v,%v) round trip not projectable", px.x, px.y)
		}
		if !almostEq(x, px.x, 1e-6) || !almostEq(y, px.y, 1e-6) {
			t.Errorf("round trip (%v,%v) -> (%v,%v)", px.x, px.y, x, y)
		}
	}
}

func TestTanProjectionSkyRoundTrip(t *testing.T) {
	f := func(dra, ddec float64) bool {
		// Offsets within ~0.5 degree of the projection center.
		dra = math.Mod(dra, 0.5)
		ddec = math.Mod(ddec, 0.5)
		p := NewTanProjection(New(120, 15), 2048, 2048, 1.0/3600)
		in := New(120+dra, 15+ddec)
		x, y, ok := p.SkyToPixel(in)
		if !ok {
			return false
		}
		out := p.PixelToSky(x, y)
		return in.Separation(out) < 1e-8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTanProjectionFarHemisphere(t *testing.T) {
	p := NewTanProjection(New(0, 0), 100, 100, 1.0/3600)
	if _, _, ok := p.SkyToPixel(New(180, 0)); ok {
		t.Error("antipodal point must not be projectable")
	}
}

func TestTanProjectionRAAxisDirection(t *testing.T) {
	// With the conventional negative CDELT1, larger RA means smaller x.
	p := NewTanProjection(New(100, 0), 100, 100, 1.0/3600)
	x1, _, _ := p.SkyToPixel(New(100.001, 0))
	x0, _, _ := p.SkyToPixel(New(100, 0))
	if x1 >= x0 {
		t.Errorf("RA east should map to decreasing x: x(RA+eps)=%v x(RA)=%v", x1, x0)
	}
}

func TestSexagesimalRoundTrip(t *testing.T) {
	for _, c := range []SkyCoord{
		New(0, 0), New(10.68471, 41.26875), New(359.99, -89.9), New(182.5, 2.0),
	} {
		s := c.FormatSexagesimal()
		got, err := ParseSexagesimal(s)
		if err != nil {
			t.Fatalf("ParseSexagesimal(%q): %v", s, err)
		}
		if c.Separation(got) > 0.5/3600 { // half an arcsecond
			t.Errorf("round trip %v -> %q -> %v", c, s, got)
		}
	}
}

func TestParseSexagesimalErrors(t *testing.T) {
	for _, s := range []string{
		"", "12:00:00", "12:00 +45:00:00", "aa:bb:cc +45:00:00",
		"12:00:00 +95:00:00", "12:-1:00 +45:00:00", "12:00:00 +45:00:00 extra",
	} {
		if _, err := ParseSexagesimal(s); err == nil {
			t.Errorf("ParseSexagesimal(%q): want error", s)
		}
	}
}

func TestPositionAngleCardinal(t *testing.T) {
	c := New(180, 0)
	north := New(180, 1)
	east := New(181, 0)
	if pa := c.PositionAngle(north); !almostEq(pa, 0, 1e-9) {
		t.Errorf("PA to north = %v, want 0", pa)
	}
	if pa := c.PositionAngle(east); !almostEq(pa, 90, 1e-6) {
		t.Errorf("PA to east = %v, want 90", pa)
	}
}

func BenchmarkSeparation(b *testing.B) {
	a := New(150.1, 2.2)
	c := New(150.2, 2.3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = a.Separation(c)
	}
}

func BenchmarkTanSkyToPixel(b *testing.B) {
	p := NewTanProjection(New(150, 2), 2048, 2048, 1.0/3600)
	c := New(150.1, 2.1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _, _ = p.SkyToPixel(c)
	}
}

func TestSkyCoordString(t *testing.T) {
	s := New(10.5, -3.25).String()
	if s != "RA=10.50000 Dec=-3.25000" {
		t.Errorf("String = %q", s)
	}
}
