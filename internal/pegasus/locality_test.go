package pegasus

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/chimera"
	"repro/internal/gridftp"
	"repro/internal/rls"
	"repro/internal/tcat"
	"repro/internal/vdl"
)

// fanWorkflow builds k independent step jobs, a_i -> b_i, all requested —
// the shape of the galMorph leaf layer.
func fanWorkflow(t testing.TB, k int) *chimera.Workflow {
	t.Helper()
	var b strings.Builder
	b.WriteString("TR step( in x, out y ) {}\n")
	var req []string
	for i := 0; i < k; i++ {
		fmt.Fprintf(&b, "DV d%03d->step( x=@{in:\"a%03d\"}, y=@{out:\"b%03d\"} );\n", i, i, i)
		req = append(req, fmt.Sprintf("b%03d", i))
	}
	cat, err := vdl.Parse(b.String())
	if err != nil {
		t.Fatal(err)
	}
	wf, err := chimera.Compose(cat, chimera.Request{LFNs: req})
	if err != nil {
		t.Fatal(err)
	}
	return wf
}

// fanServices registers every a_i at dataSite and step at both sites.
func fanServices(t testing.TB, k int, dataSite string) (*rls.RLS, *tcat.Catalog) {
	t.Helper()
	r := rls.New()
	for i := 0; i < k; i++ {
		lfn := fmt.Sprintf("a%03d", i)
		if err := r.Register(lfn, rls.PFN{Site: dataSite, URL: gridftp.URL(dataSite, lfn)}); err != nil {
			t.Fatal(err)
		}
	}
	tc := tcat.New()
	_ = tc.Add(tcat.Entry{Transformation: "step", Site: "A", Path: "/bin/step"})
	_ = tc.Add(tcat.Entry{Transformation: "step", Site: "B", Path: "/grid/step"})
	return r, tc
}

// TestPlanIsSingleRLSRoundTrip is the tentpole's O(1) contract: however many
// LFNs the workflow names, planning costs exactly one RLS read round trip
// (the BulkLookup snapshot).
func TestPlanIsSingleRLSRoundTrip(t *testing.T) {
	for _, k := range []int{1, 8, 64} {
		wf := fanWorkflow(t, k)
		r, tc := fanServices(t, k, "A")
		r.ResetRoundTrips()
		p, err := Map(wf, Config{RLS: r, TC: tc, Rand: rand.New(rand.NewSource(3))})
		if err != nil {
			t.Fatal(err)
		}
		if got := r.RoundTrips(); got != 1 {
			t.Errorf("k=%d: planning cost %d RLS round trips, want 1", k, got)
		}
		if p.RLSRoundTrips != 1 {
			t.Errorf("k=%d: plan recorded %d round trips, want 1", k, p.RLSRoundTrips)
		}
		if len(p.Replicas) != k {
			t.Errorf("k=%d: snapshot has %d LFNs, want %d", k, len(p.Replicas), k)
		}
	}
}

// TestLocalityComputesWhereDataLives: with every input replica at site A,
// SelectLocality maps every job to A and emits zero transfer nodes, while
// the paper's random policy scatters jobs and pays stage-ins.
func TestLocalityComputesWhereDataLives(t *testing.T) {
	const k = 16
	wf := fanWorkflow(t, k)
	r, tc := fanServices(t, k, "A")

	local, err := Map(wf, Config{RLS: r, TC: tc, Selection: SelectLocality})
	if err != nil {
		t.Fatal(err)
	}
	for job, site := range local.SiteOf {
		if site != "A" {
			t.Errorf("locality put %s at %s; all replicas are at A", job, site)
		}
	}
	if n := local.Stats().TransferNodes; n != 0 {
		t.Errorf("locality plan has %d transfer nodes, want 0", n)
	}
	if local.EstBytesMoved != 0 {
		t.Errorf("locality plan estimates %d bytes moved, want 0", local.EstBytesMoved)
	}

	random, err := Map(wf, Config{RLS: r, TC: tc, Selection: SelectRandom,
		Rand: rand.New(rand.NewSource(7))})
	if err != nil {
		t.Fatal(err)
	}
	if n := random.Stats().TransferNodes; n == 0 {
		t.Fatalf("random plan moved nothing; seed no longer scatters jobs, pick another")
	}
	if random.EstBytesMoved <= local.EstBytesMoved {
		t.Errorf("random est %d bytes <= locality est %d bytes",
			random.EstBytesMoved, local.EstBytesMoved)
	}
}

// TestLocalitySpreadsEqualCostJobs: when inputs are replicated everywhere,
// locality degenerates to balanced assignment, not a pileup on one site.
func TestLocalitySpreadsEqualCostJobs(t *testing.T) {
	const k = 10
	wf := fanWorkflow(t, k)
	r, tc := fanServices(t, k, "A")
	for i := 0; i < k; i++ {
		lfn := fmt.Sprintf("a%03d", i)
		if err := r.Register(lfn, rls.PFN{Site: "B", URL: gridftp.URL("B", lfn)}); err != nil {
			t.Fatal(err)
		}
	}
	p, err := Map(wf, Config{RLS: r, TC: tc, Selection: SelectLocality})
	if err != nil {
		t.Fatal(err)
	}
	perSite := map[string]int{}
	for _, site := range p.SiteOf {
		perSite[site]++
	}
	if perSite["A"] != k/2 || perSite["B"] != k/2 {
		t.Errorf("equal-cost jobs unbalanced: %v", perSite)
	}
}

// TestLocalityPlanDeterministic: no rng in the policy — two runs agree
// exactly (required by the kill/resume byte-identity sweep).
func TestLocalityPlanDeterministic(t *testing.T) {
	wf := fanWorkflow(t, 12)
	r, tc := fanServices(t, 12, "B")
	p1, err := Map(wf, Config{RLS: r, TC: tc, Selection: SelectLocality})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Map(wf, Config{RLS: r, TC: tc, Selection: SelectLocality})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1.SiteOf, p2.SiteOf) {
		t.Errorf("site maps differ:\n%v\n%v", p1.SiteOf, p2.SiteOf)
	}
	if !reflect.DeepEqual(p1.Concrete.Nodes(), p2.Concrete.Nodes()) {
		t.Errorf("concrete node sets differ")
	}
}
