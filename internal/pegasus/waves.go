package pegasus

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/chimera"
	"repro/internal/dag"
	"repro/internal/gridftp"
)

// WaveJob describes one abstract job a WaveSource yields. The ID doubles as
// the derivation name, exactly as on chimera-composed graphs (where every
// node's ID is its DV name), so downstream runners dispatch identically on
// wave-planned and monolithically-planned nodes.
type WaveJob struct {
	ID             string
	Transformation string
	Inputs         []string
	Outputs        []string
}

// WaveSource yields a request's leaf jobs on demand, so a survey-scale
// request never materializes a per-job list (let alone a per-job DAG node)
// for the whole workload at once.
type WaveSource struct {
	// Jobs is the number of leaf jobs.
	Jobs int
	// Job returns the i-th leaf job (0 <= i < Jobs). It is called once per
	// job per planned wave, in index order.
	Job func(i int) WaveJob
	// Collector is the fan-in job consuming the leaves' outputs (the
	// concatVOT derivation of the morphology workload). A zero ID means the
	// request has no collector wave.
	Collector WaveJob
}

// WavePlanner plans one request as a sequence of bounded concrete workflows
// ("waves") instead of a single monolithic DAG: each leaf wave covers at most
// waveSize jobs and is planned with the ordinary Map — RLS reduction, site
// selection, transfer and registration nodes — while the collector wave is a
// hand-built single-job plan pinned to a deterministic collector site.
//
// Leaf waves deliver and register their outputs at the collector site, so by
// the time the collector wave is planned every input is a local replica and
// the collector plan stays O(1) in the request size. Because every wave is
// reduced against the RLS, replanning a wave after a crash prunes exactly the
// jobs whose outputs were already registered — resume falls out of the
// paper's own reduction semantics.
type WavePlanner struct {
	src           WaveSource
	cfg           Config
	waveSize      int
	seed          int64
	collectorSite string
}

// NewWavePlanner validates the source and picks the collector site: the
// configured OutputSite when the Transformation Catalog can run the collector
// there, else the first TC site (sorted) that can — a deterministic choice a
// resumed run recomputes identically.
func NewWavePlanner(src WaveSource, cfg Config, waveSize int, seed int64) (*WavePlanner, error) {
	if cfg.RLS == nil || cfg.TC == nil {
		return nil, errors.New("pegasus: RLS and TC are required")
	}
	if waveSize <= 0 {
		return nil, fmt.Errorf("pegasus: wave size %d must be positive", waveSize)
	}
	if src.Jobs < 0 || (src.Jobs > 0 && src.Job == nil) {
		return nil, errors.New("pegasus: wave source needs a Job func for its jobs")
	}
	p := &WavePlanner{src: src, cfg: cfg, waveSize: waveSize, seed: seed}
	if src.Collector.ID != "" {
		entries, err := cfg.TC.Lookup(src.Collector.Transformation)
		if err != nil {
			return nil, fmt.Errorf("%w: %q (%v)", ErrNoSite, src.Collector.Transformation, err)
		}
		p.collectorSite = entries[0].Site // Lookup sorts by site
		for _, e := range entries {
			if e.Site == cfg.OutputSite {
				p.collectorSite = e.Site
				break
			}
		}
	}
	return p, nil
}

// LeafWaves is the number of bounded leaf waves.
func (p *WavePlanner) LeafWaves() int {
	return (p.src.Jobs + p.waveSize - 1) / p.waveSize
}

// Waves is the total wave count, collector included.
func (p *WavePlanner) Waves() int {
	n := p.LeafWaves()
	if p.src.Collector.ID != "" {
		n++
	}
	return n
}

// CollectorSite is the site the collector job is pinned to ("" when the
// source has no collector).
func (p *WavePlanner) CollectorSite() string { return p.collectorSite }

// WaveBounds returns the [lo, hi) job-index window of one leaf wave.
func (p *WavePlanner) WaveBounds(wave int) (lo, hi int) {
	lo = wave * p.waveSize
	hi = lo + p.waveSize
	if hi > p.src.Jobs {
		hi = p.src.Jobs
	}
	return lo, hi
}

// Plan produces the concrete plan of one wave. Leaf waves run through the
// ordinary Map pipeline; when a collector exists they are planned with the
// collector site as their output site (with registration forced on), so leaf
// outputs land where the collector consumes them. The final wave is the
// hand-built collector plan.
func (p *WavePlanner) Plan(wave int) (*Plan, error) {
	leaf := p.LeafWaves()
	switch {
	case wave < 0 || wave >= p.Waves():
		return nil, fmt.Errorf("pegasus: wave %d out of range [0, %d)", wave, p.Waves())
	case wave < leaf:
		return p.leafPlan(wave)
	default:
		return p.collectorPlan()
	}
}

// leafPlan assembles one wave's abstract sub-workflow and maps it. Each wave
// draws its site-selection randomness from its own (seed, wave) stream, so a
// wave's plan never depends on how many waves ran before it — the property
// that lets a resume replan any single wave in isolation.
func (p *WavePlanner) leafPlan(wave int) (*Plan, error) {
	lo, hi := p.WaveBounds(wave)
	g := dag.New()
	producerOf := map[string]string{}
	var requested []string
	jobs := make([]WaveJob, 0, hi-lo)
	for i := lo; i < hi; i++ {
		j := p.src.Job(i)
		n := &dag.Node{ID: j.ID, Type: chimera.NodeType}
		n.SetAttr(chimera.AttrTransformation, j.Transformation)
		n.SetAttr(chimera.AttrDerivation, j.ID)
		n.SetAttr(chimera.AttrInputs, strings.Join(j.Inputs, ","))
		n.SetAttr(chimera.AttrOutputs, strings.Join(j.Outputs, ","))
		if err := g.AddNode(n); err != nil {
			return nil, err
		}
		for _, out := range j.Outputs {
			producerOf[out] = j.ID
			requested = append(requested, out)
		}
		jobs = append(jobs, j)
	}
	// Intra-wave dependencies (leaf jobs are typically independent, but the
	// source is free to yield small producer/consumer chains).
	for _, j := range jobs {
		for _, in := range j.Inputs {
			if prod, ok := producerOf[in]; ok && prod != j.ID {
				if err := g.AddEdge(prod, j.ID); err != nil {
					return nil, err
				}
			}
		}
	}
	wf := &chimera.Workflow{Graph: g, RequestedLFNs: requested}
	cfg := p.cfg
	cfg.Rand = rand.New(rand.NewSource(p.seed + int64(wave)))
	if p.src.Collector.ID != "" {
		cfg.OutputSite = p.collectorSite
		cfg.RegisterOutputs = true
	}
	return Map(wf, cfg)
}

// collectorPlan hand-builds the fan-in wave: one compute node at the
// collector site, stage-ins only for inputs without a local replica (none,
// when the leaf waves delivered there), and the classic output delivery and
// registration tail. Map cannot be used here — its site selection could map
// the collector away from its inputs and plan one stage-in per leaf job,
// unbounded in the request size.
func (p *WavePlanner) collectorPlan() (*Plan, error) {
	job := p.src.Collector
	cfg := p.cfg
	site := p.collectorSite
	exe, err := cfg.TC.LookupSite(job.Transformation, site)
	if err != nil {
		return nil, fmt.Errorf("%w: %q at %q", ErrNoSite, job.Transformation, site)
	}

	abstract := dag.New()
	an := &dag.Node{ID: job.ID, Type: chimera.NodeType}
	an.SetAttr(chimera.AttrTransformation, job.Transformation)
	an.SetAttr(chimera.AttrDerivation, job.ID)
	an.SetAttr(chimera.AttrInputs, strings.Join(job.Inputs, ","))
	an.SetAttr(chimera.AttrOutputs, strings.Join(job.Outputs, ","))
	if err := abstract.AddNode(an); err != nil {
		return nil, err
	}

	plan := &Plan{Abstract: abstract, Reduced: abstract, SiteOf: map[string]string{job.ID: site}}
	before := cfg.RLS.RoundTrips()
	snap := cfg.RLS.BulkLookup(job.Inputs)
	plan.Replicas = snap

	cw := dag.New()
	cn := &dag.Node{ID: job.ID, Type: NodeCompute}
	cn.SetAttr(AttrSite, site)
	cn.SetAttr(AttrExecutable, exe.Path)
	cn.SetAttr(chimera.AttrTransformation, job.Transformation)
	cn.SetAttr(chimera.AttrDerivation, job.ID)
	cn.SetAttr(chimera.AttrInputs, strings.Join(job.Inputs, ","))
	cn.SetAttr(chimera.AttrOutputs, strings.Join(job.Outputs, ","))
	if err := cw.AddNode(cn); err != nil {
		return nil, err
	}

	for _, lfn := range job.Inputs {
		replicas := snap[lfn]
		if len(replicas) == 0 {
			return nil, fmt.Errorf("%w: %q", ErrInfeasible, lfn)
		}
		local := false
		for _, r := range replicas {
			if r.Site == site {
				local = true
				break
			}
		}
		if local {
			continue
		}
		src := replicas[0] // sorted: deterministic source choice
		txID := fmt.Sprintf("stagein_%s_to_%s", sanitize(lfn), site)
		if _, exists := cw.Node(txID); !exists {
			tn := &dag.Node{ID: txID, Type: NodeTransfer}
			tn.SetAttr(AttrLFN, lfn)
			tn.SetAttr(AttrSrcURL, src.URL)
			tn.SetAttr(AttrDstURL, gridftp.URL(site, lfn))
			if err := cw.AddNode(tn); err != nil {
				return nil, err
			}
			plan.EstBytesMoved += cfg.sizeOf(lfn)
		}
		if err := cw.AddEdge(txID, job.ID); err != nil {
			return nil, err
		}
	}

	for _, lfn := range job.Outputs {
		finalSite := site
		lastNode := job.ID
		if cfg.OutputSite != "" && cfg.OutputSite != site {
			txID := fmt.Sprintf("stageout_%s_to_%s", sanitize(lfn), cfg.OutputSite)
			tn := &dag.Node{ID: txID, Type: NodeTransfer}
			tn.SetAttr(AttrLFN, lfn)
			tn.SetAttr(AttrSrcURL, gridftp.URL(site, lfn))
			tn.SetAttr(AttrDstURL, gridftp.URL(cfg.OutputSite, lfn))
			if err := cw.AddNode(tn); err != nil {
				return nil, err
			}
			if err := cw.AddEdge(job.ID, txID); err != nil {
				return nil, err
			}
			plan.EstBytesMoved += cfg.sizeOf(lfn)
			finalSite = cfg.OutputSite
			lastNode = txID
		}
		if cfg.RegisterOutputs {
			regID := "reg_" + sanitize(lfn)
			rn := &dag.Node{ID: regID, Type: NodeRegister}
			rn.SetAttr(AttrLFN, lfn)
			rn.SetAttr(AttrSite, finalSite)
			rn.SetAttr(AttrPFN, gridftp.URL(finalSite, lfn))
			if err := cw.AddNode(rn); err != nil {
				return nil, err
			}
			if err := cw.AddEdge(lastNode, regID); err != nil {
				return nil, err
			}
		}
	}

	plan.Concrete = cw
	plan.RLSRoundTrips = cfg.RLS.RoundTrips() - before
	return plan, nil
}
