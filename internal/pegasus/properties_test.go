package pegasus

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/chimera"
	"repro/internal/gridftp"
	"repro/internal/rls"
	"repro/internal/tcat"
	"repro/internal/vdl"
)

// TestPlanSoundnessProperty is the planner's central invariant: in every
// concrete workflow, each compute job's inputs are available at its site
// before it runs — produced upstream at the same site, staged by an
// ancestor transfer node, or already replicated there. Checked across random
// workflow shapes, cache states and seeds.
func TestPlanSoundnessProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	for trial := 0; trial < 60; trial++ {
		nGal := 1 + rng.Intn(15)
		cat := randomGalaxyCatalog(t, nGal)
		wf, err := chimera.Compose(cat, chimera.Request{LFNs: []string{"out.vot"}})
		if err != nil {
			t.Fatal(err)
		}

		r := rls.New()
		sites := []string{"usc", "wisc", "fnal"}
		for i := 0; i < nGal; i++ {
			lfn := fmt.Sprintf("g%d.fit", i)
			// Replicas at 1-2 random locations (sometimes at compute sites).
			for k := 0; k <= rng.Intn(2); k++ {
				site := append(sites, "archive")[rng.Intn(4)]
				_ = r.Register(lfn, rls.PFN{Site: site, URL: gridftp.URL(site, lfn)})
			}
			// Random subset of results already materialized.
			if rng.Float64() < 0.3 {
				lfn := fmt.Sprintf("g%d.txt", i)
				_ = r.Register(lfn, rls.PFN{Site: sites[rng.Intn(3)], URL: gridftp.URL(sites[rng.Intn(3)], lfn)})
			}
		}
		tc := tcat.New()
		for _, s := range sites {
			_ = tc.Add(tcat.Entry{Transformation: "galMorph", Site: s, Path: "/x"})
			_ = tc.Add(tcat.Entry{Transformation: "concat", Site: s, Path: "/x"})
		}

		cfg := Config{
			RLS: r, TC: tc,
			Rand:            rand.New(rand.NewSource(int64(trial))),
			OutputSite:      "stsci",
			RegisterOutputs: rng.Float64() < 0.5,
		}
		if rng.Float64() < 0.3 {
			cfg.Selection = SelectRoundRobin
		}
		p, err := Map(wf, cfg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkPlanSound(t, trial, p, r)
	}
}

// checkPlanSound verifies data availability for every compute node.
func checkPlanSound(t *testing.T, trial int, p *Plan, r *rls.RLS) {
	t.Helper()
	cw := p.Concrete
	if _, err := cw.TopoSort(); err != nil {
		t.Fatalf("trial %d: concrete workflow cyclic: %v", trial, err)
	}

	// producedAt maps (lfn, site) availability through upstream nodes.
	type key struct{ lfn, site string }
	availableVia := map[string]map[key]bool{} // node -> what it makes available
	for _, id := range cw.Nodes() {
		n, _ := cw.Node(id)
		avail := map[key]bool{}
		switch n.Type {
		case NodeCompute:
			for _, lfn := range chimera.SplitLFNs(n.Attr(chimera.AttrOutputs)) {
				avail[key{lfn, n.Attr(AttrSite)}] = true
			}
		case NodeTransfer:
			_, dstSite := mustURL(t, n.Attr(AttrDstURL))
			avail[key{n.Attr(AttrLFN), dstSite}] = true
		}
		availableVia[id] = avail
	}

	for _, id := range cw.Nodes() {
		n, _ := cw.Node(id)
		if n.Type != NodeCompute {
			continue
		}
		site := n.Attr(AttrSite)
		for _, lfn := range chimera.SplitLFNs(n.Attr(chimera.AttrInputs)) {
			// (a) replica already at the site?
			at := false
			for _, rep := range r.Lookup(lfn) {
				if rep.Site == site {
					at = true
					break
				}
			}
			if at {
				continue
			}
			// (b/c) some ancestor provides (lfn, site)?
			ok := false
			for _, anc := range cw.Ancestors(id) {
				if availableVia[anc][key{lfn, site}] {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("trial %d: job %s at %s has no source for input %q\n%s",
					trial, id, site, lfn, cw.DOT("plan"))
			}
		}
	}
}

func mustURL(t *testing.T, u string) (path, site string) {
	t.Helper()
	site, path, err := gridftp.ParseURL(u)
	if err != nil {
		t.Fatalf("bad URL %q: %v", u, err)
	}
	return path, site
}

// randomGalaxyCatalog builds the N-galaxy fan + concat VDL catalog.
func randomGalaxyCatalog(t *testing.T, n int) *vdl.Catalog {
	t.Helper()
	cat := vdl.NewCatalog()
	if err := cat.AddTransformation(&vdl.Transformation{
		Name: "galMorph",
		Args: []vdl.Arg{{Name: "image", Dir: vdl.In}, {Name: "res", Dir: vdl.Out}},
	}); err != nil {
		t.Fatal(err)
	}
	concat := &vdl.Transformation{Name: "concat"}
	collect := &vdl.Derivation{Name: "collect", TR: "concat", Bindings: map[string]vdl.Binding{}}
	for i := 0; i < n; i++ {
		concat.Args = append(concat.Args, vdl.Arg{Name: fmt.Sprintf("p%d", i), Dir: vdl.In})
		collect.Bindings[fmt.Sprintf("p%d", i)] = vdl.FileBinding(vdl.In, fmt.Sprintf("g%d.txt", i))
	}
	concat.Args = append(concat.Args, vdl.Arg{Name: "table", Dir: vdl.Out})
	collect.Bindings["table"] = vdl.FileBinding(vdl.Out, "out.vot")
	if err := cat.AddTransformation(concat); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		dv := &vdl.Derivation{
			Name: fmt.Sprintf("m%d", i),
			TR:   "galMorph",
			Bindings: map[string]vdl.Binding{
				"image": vdl.FileBinding(vdl.In, fmt.Sprintf("g%d.fit", i)),
				"res":   vdl.FileBinding(vdl.Out, fmt.Sprintf("g%d.txt", i)),
			},
		}
		if err := cat.AddDerivation(dv); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.AddDerivation(collect); err != nil {
		t.Fatal(err)
	}
	return cat
}
