package pegasus

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/gridftp"
	"repro/internal/rls"
	"repro/internal/tcat"
)

// surveySource mimics the morphology workload: n leaf jobs j<i> turning
// in<i> into out<i>, fanned into a single collector.
func surveySource(n int) WaveSource {
	inputs := make([]string, n)
	for i := range inputs {
		inputs[i] = fmt.Sprintf("out%d", i)
	}
	return WaveSource{
		Jobs: n,
		Job: func(i int) WaveJob {
			return WaveJob{
				ID:             fmt.Sprintf("j%d", i),
				Transformation: "morph",
				Inputs:         []string{fmt.Sprintf("in%d", i)},
				Outputs:        []string{fmt.Sprintf("out%d", i)},
			}
		},
		Collector: WaveJob{
			ID:             "collect",
			Transformation: "concat",
			Inputs:         inputs,
			Outputs:        []string{"final"},
		},
	}
}

// surveyServices registers morph at A and B, concat at B and C, and every
// raw input at A. The collector transformation deliberately does NOT run at
// the output site "home", exercising the fallback collector-site choice.
func surveyServices(t testing.TB, n int) (*rls.RLS, *tcat.Catalog) {
	t.Helper()
	r := rls.New()
	for i := 0; i < n; i++ {
		lfn := fmt.Sprintf("in%d", i)
		if err := r.Register(lfn, rls.PFN{Site: "A", URL: gridftp.URL("A", lfn)}); err != nil {
			t.Fatal(err)
		}
	}
	tc := tcat.New()
	_ = tc.Add(tcat.Entry{Transformation: "morph", Site: "A", Path: "/bin/morph"})
	_ = tc.Add(tcat.Entry{Transformation: "morph", Site: "B", Path: "/bin/morph"})
	_ = tc.Add(tcat.Entry{Transformation: "concat", Site: "C", Path: "/bin/concat"})
	_ = tc.Add(tcat.Entry{Transformation: "concat", Site: "B", Path: "/bin/concat"})
	return r, tc
}

func TestWavePlannerValidation(t *testing.T) {
	r, tc := surveyServices(t, 1)
	src := surveySource(1)
	if _, err := NewWavePlanner(src, Config{}, 4, 1); err == nil {
		t.Error("missing services must fail")
	}
	if _, err := NewWavePlanner(src, Config{RLS: r, TC: tc}, 0, 1); err == nil {
		t.Error("zero wave size must fail")
	}
	if _, err := NewWavePlanner(WaveSource{Jobs: 3}, Config{RLS: r, TC: tc}, 4, 1); err == nil {
		t.Error("jobs without a Job func must fail")
	}
	bad := src
	bad.Collector.Transformation = "nosuch"
	if _, err := NewWavePlanner(bad, Config{RLS: r, TC: tc}, 4, 1); !errors.Is(err, ErrNoSite) {
		t.Errorf("unknown collector transformation = %v, want ErrNoSite", err)
	}
}

func TestWaveMathAndCollectorSite(t *testing.T) {
	r, tc := surveyServices(t, 10)
	p, err := NewWavePlanner(surveySource(10), Config{RLS: r, TC: tc, OutputSite: "home"}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.LeafWaves() != 3 || p.Waves() != 4 {
		t.Fatalf("leaf=%d waves=%d, want 3/4", p.LeafWaves(), p.Waves())
	}
	wantBounds := [][2]int{{0, 4}, {4, 8}, {8, 10}}
	for w, wb := range wantBounds {
		lo, hi := p.WaveBounds(w)
		if lo != wb[0] || hi != wb[1] {
			t.Errorf("wave %d bounds = [%d,%d), want %v", w, lo, hi, wb)
		}
	}
	// "home" cannot run concat; the deterministic fallback is the first
	// TC site in sorted order, "B".
	if p.CollectorSite() != "B" {
		t.Errorf("collector site = %q, want fallback B", p.CollectorSite())
	}
	// When the output site can run the collector it wins.
	_ = tc.Add(tcat.Entry{Transformation: "concat", Site: "home", Path: "/bin/concat"})
	p2, err := NewWavePlanner(surveySource(10), Config{RLS: r, TC: tc, OutputSite: "home"}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p2.CollectorSite() != "home" {
		t.Errorf("collector site = %q, want home", p2.CollectorSite())
	}
	if _, err := p.Plan(4); err == nil {
		t.Error("out-of-range wave must fail")
	}
	if _, err := p.Plan(-1); err == nil {
		t.Error("negative wave must fail")
	}
}

// TestLeafWavesBoundedAndCovering verifies the two load-bearing properties
// of leaf planning: every wave's concrete graph is bounded by a constant
// multiple of the wave size regardless of the request size, and the union of
// compute nodes across waves covers every job exactly once.
func TestLeafWavesBoundedAndCovering(t *testing.T) {
	const n, waveSize = 23, 5
	r, tc := surveyServices(t, n)
	p, err := NewWavePlanner(surveySource(n), Config{RLS: r, TC: tc, OutputSite: "home"}, waveSize, 42)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for w := 0; w < p.LeafWaves(); w++ {
		plan, err := p.Plan(w)
		if err != nil {
			t.Fatal(err)
		}
		// 1 compute + <=1 stage-in + <=1 stage-out + <=1 register per job.
		if got, bound := plan.Concrete.Len(), 4*waveSize; got > bound {
			t.Errorf("wave %d: %d concrete nodes > bound %d", w, got, bound)
		}
		for _, id := range plan.Concrete.Nodes() {
			node, _ := plan.Concrete.Node(id)
			if node.Type == NodeCompute {
				seen[id]++
				// Leaf outputs must be delivered to the collector site and
				// registered there, so the collector wave plans no stage-ins.
				if s := plan.SiteOf[id]; s == "" {
					t.Errorf("wave %d: %s has no site", w, id)
				}
			}
			if node.Type == NodeRegister && node.Attr(AttrSite) != p.CollectorSite() {
				t.Errorf("wave %d: %s registers at %q, want collector site %q",
					w, id, node.Attr(AttrSite), p.CollectorSite())
			}
		}
	}
	if len(seen) != n {
		t.Fatalf("united compute nodes = %d, want %d", len(seen), n)
	}
	for id, count := range seen {
		if count != 1 {
			t.Errorf("job %s planned %d times", id, count)
		}
	}
}

// TestLeafWavePlansIndependently pins the per-wave rng property: a wave's
// plan is identical whether or not other waves were planned before it.
func TestLeafWavePlansIndependently(t *testing.T) {
	const n, waveSize = 12, 4
	mk := func() *WavePlanner {
		r, tc := surveyServices(t, n)
		p, err := NewWavePlanner(surveySource(n), Config{RLS: r, TC: tc, OutputSite: "home"}, waveSize, 7)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	sequential := mk()
	for w := 0; w < sequential.LeafWaves(); w++ {
		want, err := sequential.Plan(w)
		if err != nil {
			t.Fatal(err)
		}
		got, err := mk().Plan(w) // fresh planner, no prior waves
		if err != nil {
			t.Fatal(err)
		}
		if len(want.SiteOf) != len(got.SiteOf) {
			t.Fatalf("wave %d: site maps diverge", w)
		}
		for id, site := range want.SiteOf {
			if got.SiteOf[id] != site {
				t.Errorf("wave %d: %s at %q vs %q", w, id, got.SiteOf[id], site)
			}
		}
	}
}

// TestWaveResumeReduction checks that replanning a wave after some outputs
// were registered prunes exactly those jobs — the paper's RLS reduction
// doubling as the resume mechanism.
func TestWaveResumeReduction(t *testing.T) {
	const n, waveSize = 8, 8
	r, tc := surveyServices(t, n)
	p, err := NewWavePlanner(surveySource(n), Config{RLS: r, TC: tc, OutputSite: "home"}, waveSize, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, done := range []string{"out0", "out3", "out5"} {
		if err := r.Register(done, rls.PFN{Site: "B", URL: gridftp.URL("B", done)}); err != nil {
			t.Fatal(err)
		}
	}
	plan, err := p.Plan(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.PrunedJobs) != 3 {
		t.Fatalf("pruned = %v, want j0 j3 j5", plan.PrunedJobs)
	}
	for _, id := range []string{"j0", "j3", "j5"} {
		if _, ok := plan.Concrete.Node(id); ok {
			t.Errorf("%s must be pruned from the resumed wave", id)
		}
	}
}

// TestCollectorPlanShape checks the hand-built fan-in wave: zero stage-ins
// when every input has a collector-site replica, a stage-in only for the one
// input that lives elsewhere, the output-delivery tail when the output site
// differs, and infeasibility on a missing input.
func TestCollectorPlanShape(t *testing.T) {
	const n = 6
	r, tc := surveyServices(t, n)
	cfg := Config{RLS: r, TC: tc, OutputSite: "home", RegisterOutputs: true}
	p, err := NewWavePlanner(surveySource(n), cfg, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	site := p.CollectorSite()

	// Missing inputs: infeasible.
	if _, err := p.Plan(p.Waves() - 1); !errors.Is(err, ErrInfeasible) {
		t.Errorf("collector with unregistered inputs = %v, want ErrInfeasible", err)
	}

	// All inputs local to the collector site except out4, which only has a
	// replica at A.
	for i := 0; i < n; i++ {
		lfn := fmt.Sprintf("out%d", i)
		at := site
		if i == 4 {
			at = "A"
		}
		if err := r.Register(lfn, rls.PFN{Site: at, URL: gridftp.URL(at, lfn)}); err != nil {
			t.Fatal(err)
		}
	}
	plan, err := p.Plan(p.Waves() - 1)
	if err != nil {
		t.Fatal(err)
	}
	var transfers, registers, computes int
	for _, id := range plan.Concrete.Nodes() {
		node, _ := plan.Concrete.Node(id)
		switch node.Type {
		case NodeTransfer:
			transfers++
		case NodeRegister:
			registers++
			if node.Attr(AttrLFN) != "final" || node.Attr(AttrSite) != "home" {
				t.Errorf("register node %s = %v", id, node.Attrs)
			}
		case NodeCompute:
			computes++
			if node.Attr(AttrSite) != site {
				t.Errorf("collector at %q, want %q", node.Attr(AttrSite), site)
			}
		}
	}
	// One stage-in (out4) plus one stage-out (final to home).
	if computes != 1 || transfers != 2 || registers != 1 {
		t.Fatalf("collector plan: %d compute, %d transfer, %d register; want 1/2/1",
			computes, transfers, registers)
	}
	if plan.Concrete.Len() != 4 {
		t.Errorf("collector plan size = %d, want 4 — bounded regardless of %d leaves",
			plan.Concrete.Len(), n)
	}
}
