// Package pegasus implements the planner half of the GriPhyN Virtual Data
// System as the paper configures it (§3.2, Figure 2): it receives an
// abstract workflow from Chimera and produces a concrete, executable
// workflow by
//
//  1. reducing the abstract DAG against the Replica Location Service —
//     jobs whose data products already exist anywhere in the Grid are
//     pruned, on the assumption that fetching data is always cheaper than
//     recomputing it (Figures 1 → 3 of the paper);
//  2. checking feasibility — the root jobs' input files must exist in the
//     RLS and be reachable by a transport protocol;
//  3. mapping each remaining job onto a site where the Transformation
//     Catalog has its executable (random, round-robin, or MDS-driven
//     least-loaded selection);
//  4. adding transfer nodes that stage inputs to the chosen sites (replica
//     source picked at random, as in the paper), transfer nodes that
//     deliver requested outputs to the user's storage location U, and
//     registration nodes that publish new data products in the RLS
//     (Figure 4);
//  5. generating Condor-G submit files and the DAGMan .dag file.
package pegasus

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/chimera"
	"repro/internal/dag"
	"repro/internal/gridftp"
	"repro/internal/mds"
	"repro/internal/rls"
	"repro/internal/tcat"
)

// Node types in concrete workflows.
const (
	NodeCompute  = "compute"
	NodeTransfer = "transfer"
	NodeRegister = "register"
)

// Node attribute keys on concrete-workflow nodes.
const (
	AttrSite       = "site"       // compute: execution site
	AttrExecutable = "executable" // compute: executable path from the TC
	AttrSrcURL     = "src"        // transfer: source physical URL
	AttrDstURL     = "dst"        // transfer: destination physical URL
	AttrLFN        = "lfn"        // transfer/register: logical file
	AttrPFN        = "pfn"        // register: physical URL to publish
)

// SiteSelection is the policy for mapping jobs to sites.
type SiteSelection int

// Site-selection policies. The paper's prototype "picks a random location to
// execute from among the returned locations"; round-robin and least-loaded
// are the natural alternatives its related-work section discusses.
// SelectLocality is the replica-cost policy this repo adds: a job runs where
// its input replicas already live, so data moves only when it must.
const (
	SelectRandom SiteSelection = iota
	SelectRoundRobin
	SelectLeastLoaded
	SelectLocality
)

// Errors returned by the planner.
var (
	ErrInfeasible = errors.New("pegasus: workflow infeasible: missing input replicas")
	ErrNoSite     = errors.New("pegasus: no site can run transformation")
	ErrNeedMDS    = errors.New("pegasus: least-loaded selection requires an MDS service")
)

// Config wires the planner to its information services.
type Config struct {
	RLS *rls.RLS
	TC  *tcat.Catalog
	MDS *mds.Service // required for SelectLeastLoaded

	Selection SiteSelection
	// Rand drives random site and replica selection; a fixed seed makes
	// plans reproducible. Defaults to a seed-1 source.
	Rand *rand.Rand

	// NoReduce disables the abstract-DAG reduction (ablation A1).
	NoReduce bool

	// OutputSite is the user-specified storage location U; requested
	// outputs are delivered there and, when RegisterOutputs is set,
	// registered with their U replica.
	OutputSite string
	// RegisterOutputs adds RLS registration nodes for every data product.
	RegisterOutputs bool

	// Net is the link-cost model SelectLocality scores candidate sites
	// with; the zero value uses the gridftp defaults (10 MB/s wide-area,
	// 100 MB/s local, 50 ms latency).
	Net gridftp.Network
	// SizeOf reports the size in bytes of an existing logical file, for
	// replica-cost scoring and planner byte estimates. Files it cannot
	// size (or a nil hook) are assumed to be defaultFileSize.
	SizeOf func(lfn string) int64
}

// defaultFileSize stands in for files whose size the planner cannot learn
// (e.g. outputs not yet materialized): the ~1 MB of a cutout image, the
// dominant file class in the paper's workload.
const defaultFileSize = 1 << 20

func (c Config) sizeOf(lfn string) int64 {
	if c.SizeOf != nil {
		if s := c.SizeOf(lfn); s > 0 {
			return s
		}
	}
	return defaultFileSize
}

func (c Config) rng() *rand.Rand {
	if c.Rand != nil {
		return c.Rand
	}
	return rand.New(rand.NewSource(1))
}

// Plan is the planner's result.
type Plan struct {
	// Abstract is the workflow as received (not mutated).
	Abstract *dag.Graph
	// Reduced is the abstract workflow after RLS-based pruning.
	Reduced *dag.Graph
	// Concrete is the executable workflow with transfer/register nodes.
	Concrete *dag.Graph

	// PrunedJobs are abstract jobs eliminated because their outputs were
	// already materialized.
	PrunedJobs []string
	// ReusedLFNs are files satisfied from existing replicas.
	ReusedLFNs []string
	// SiteOf maps each compute job to its execution site.
	SiteOf map[string]string

	// Replicas is the replica snapshot the whole plan was computed from,
	// fetched in a single RLS BulkLookup. Callers may prime a read-through
	// rls.Cache with it so the runner's lookups are free.
	Replicas map[string][]rls.PFN
	// EstBytesMoved is the planner's estimate of bytes the transfer nodes
	// will move (sum of input sizes over stage-in/inter-stage/stage-out
	// nodes) — the quantity SelectLocality minimizes.
	EstBytesMoved int64
	// RLSRoundTrips is the number of RLS read round trips this plan cost.
	RLSRoundTrips int64
}

// Stats summarizes a plan for reports and experiments.
type Stats struct {
	AbstractJobs  int
	PrunedJobs    int
	ComputeJobs   int
	TransferNodes int
	RegisterNodes int
}

// Stats computes the plan's node counts.
func (p *Plan) Stats() Stats {
	byType := p.Concrete.CountByType()
	return Stats{
		AbstractJobs:  p.Abstract.Len(),
		PrunedJobs:    len(p.PrunedJobs),
		ComputeJobs:   byType[NodeCompute],
		TransferNodes: byType[NodeTransfer],
		RegisterNodes: byType[NodeRegister],
	}
}

// Map plans an abstract workflow onto the Grid, producing a concrete plan.
func Map(wf *chimera.Workflow, cfg Config) (*Plan, error) {
	if wf == nil || wf.Graph == nil || wf.Graph.Len() == 0 {
		return nil, errors.New("pegasus: empty workflow")
	}
	if cfg.RLS == nil || cfg.TC == nil {
		return nil, errors.New("pegasus: RLS and TC are required")
	}
	if cfg.Selection == SelectLeastLoaded && cfg.MDS == nil {
		return nil, ErrNeedMDS
	}
	rng := cfg.rng()

	p := &Plan{Abstract: wf.Graph, SiteOf: map[string]string{}}

	// --- 0. Replica snapshot: every planner decision below reads replica
	// state from one BulkLookup over the workflow's whole file set — a
	// single RLS round trip per plan, however many LFNs the request names
	// (previously reduction + feasibility + source selection each paid one
	// round trip per LFN).
	before := cfg.RLS.RoundTrips()
	snap := cfg.RLS.BulkLookup(workflowLFNs(wf))
	p.Replicas = snap

	// --- 1. Abstract DAG reduction (Figure 2 step "Abstract DAG reduction").
	reduced, pruned, reused := reduce(wf, cfg, snap)
	p.Reduced = reduced
	p.PrunedJobs = pruned
	p.ReusedLFNs = reused

	// --- 2. Feasibility: every input consumed from outside the reduced
	// workflow must have a replica.
	produced := map[string]bool{}
	for _, id := range reduced.Nodes() {
		n, _ := reduced.Node(id)
		for _, lfn := range chimera.SplitLFNs(n.Attr(chimera.AttrOutputs)) {
			produced[lfn] = true
		}
	}
	var missing []string
	for _, id := range reduced.Nodes() {
		n, _ := reduced.Node(id)
		for _, lfn := range chimera.SplitLFNs(n.Attr(chimera.AttrInputs)) {
			if !produced[lfn] && len(snap[lfn]) == 0 {
				missing = append(missing, lfn)
			}
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return nil, fmt.Errorf("%w: %v", ErrInfeasible, dedup(missing))
	}

	// --- 3 & 4. Site selection and concrete workflow construction.
	if err := concretize(p, wf, cfg, rng, snap); err != nil {
		return nil, err
	}
	p.RLSRoundTrips = cfg.RLS.RoundTrips() - before
	return p, nil
}

// workflowLFNs collects every logical file the plan can touch — requested
// outputs plus all job inputs and outputs — sorted and deduplicated, so one
// BulkLookup covers the planner's entire replica working set.
func workflowLFNs(wf *chimera.Workflow) []string {
	seen := map[string]bool{}
	for _, lfn := range wf.RequestedLFNs {
		seen[lfn] = true
	}
	for _, id := range wf.Graph.Nodes() {
		n, _ := wf.Graph.Node(id)
		for _, lfn := range chimera.SplitLFNs(n.Attr(chimera.AttrInputs)) {
			seen[lfn] = true
		}
		for _, lfn := range chimera.SplitLFNs(n.Attr(chimera.AttrOutputs)) {
			seen[lfn] = true
		}
	}
	return sortedKeys(seen)
}

// reduce prunes jobs whose required outputs already exist in the RLS. A job
// survives only if one of its outputs is required and absent: requirements
// start at the requested LFNs and propagate to the inputs of surviving jobs
// (walked in reverse topological order).
func reduce(wf *chimera.Workflow, cfg Config, snap map[string][]rls.PFN) (g *dag.Graph, pruned, reused []string) {
	g = wf.Graph.Clone()
	if cfg.NoReduce {
		return g, nil, nil
	}
	order, err := g.TopoSort()
	if err != nil {
		// Chimera guarantees acyclicity; a cycle here is a programming
		// error upstream, and returning the unreduced graph is safe.
		return g, nil, nil
	}

	required := map[string]bool{}
	reusedSet := map[string]bool{}
	for _, lfn := range wf.RequestedLFNs {
		if len(snap[lfn]) > 0 {
			reusedSet[lfn] = true
		} else {
			required[lfn] = true
		}
	}

	var prunedIDs []string
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		n, _ := g.Node(id)
		needed := false
		for _, lfn := range chimera.SplitLFNs(n.Attr(chimera.AttrOutputs)) {
			if required[lfn] {
				needed = true
				break
			}
		}
		if !needed {
			prunedIDs = append(prunedIDs, id)
			continue
		}
		for _, lfn := range chimera.SplitLFNs(n.Attr(chimera.AttrInputs)) {
			if len(snap[lfn]) > 0 {
				reusedSet[lfn] = true
			} else {
				required[lfn] = true
			}
		}
	}
	for _, id := range prunedIDs {
		_ = g.RemoveNode(id)
	}
	sort.Strings(prunedIDs)
	return g, prunedIDs, sortedKeys(reusedSet)
}

// concretize performs site selection and inserts transfer and registration
// nodes around the reduced workflow's compute jobs.
func concretize(p *Plan, wf *chimera.Workflow, cfg Config, rng *rand.Rand, snap map[string][]rls.PFN) error {
	cw := dag.New()
	reduced := p.Reduced

	// producerOf maps LFN -> producing job id within the reduced workflow.
	producerOf := map[string]string{}
	for _, id := range reduced.Nodes() {
		n, _ := reduced.Node(id)
		for _, lfn := range chimera.SplitLFNs(n.Attr(chimera.AttrOutputs)) {
			producerOf[lfn] = id
		}
	}

	// Site selection, in deterministic job order. SelectLocality assigns in
	// topological order instead, so a consumer can see where its producers
	// landed and follow the bytes.
	jobs := reduced.Nodes()
	if cfg.Selection == SelectLocality {
		if order, err := reduced.TopoSort(); err == nil {
			jobs = order
		}
	}
	rrIndex := 0
	assigned := map[string]int{} // jobs per site, for locality tie-breaks
	for _, id := range jobs {
		n, _ := reduced.Node(id)
		tr := n.Attr(chimera.AttrTransformation)
		entries, err := cfg.TC.Lookup(tr)
		if err != nil {
			return fmt.Errorf("%w: %q (%v)", ErrNoSite, tr, err)
		}
		var site string
		switch cfg.Selection {
		case SelectRoundRobin:
			site = entries[rrIndex%len(entries)].Site
			rrIndex++
		case SelectLeastLoaded:
			sites := make([]string, len(entries))
			for i, e := range entries {
				sites[i] = e.Site
			}
			site, err = cfg.MDS.LeastLoaded(sites...)
			if err != nil {
				return fmt.Errorf("%w: %q (%v)", ErrNoSite, tr, err)
			}
			// Planner-side load accounting so successive picks spread out.
			_ = cfg.MDS.AddLoad(site, 1)
		case SelectLocality:
			inputs := chimera.SplitLFNs(n.Attr(chimera.AttrInputs))
			site = pickByLocality(cfg, entries, inputs, snap, producerOf, p.SiteOf, assigned)
			assigned[site]++
		default: // SelectRandom — the paper's behaviour
			site = entries[rng.Intn(len(entries))].Site
		}
		exe, err := cfg.TC.LookupSite(tr, site)
		if err != nil {
			return fmt.Errorf("%w: %q at %q", ErrNoSite, tr, site)
		}
		p.SiteOf[id] = site

		cn := &dag.Node{ID: id, Type: NodeCompute}
		cn.SetAttr(AttrSite, site)
		cn.SetAttr(AttrExecutable, exe.Path)
		cn.SetAttr(chimera.AttrTransformation, tr)
		cn.SetAttr(chimera.AttrDerivation, n.Attr(chimera.AttrDerivation))
		cn.SetAttr(chimera.AttrInputs, n.Attr(chimera.AttrInputs))
		cn.SetAttr(chimera.AttrOutputs, n.Attr(chimera.AttrOutputs))
		if err := cw.AddNode(cn); err != nil {
			return err
		}
	}

	// Dependency edges between surviving compute jobs.
	for _, id := range jobs {
		for _, child := range reduced.Children(id) {
			if err := cw.AddEdge(id, child); err != nil {
				return err
			}
		}
	}

	// Transfer nodes for inputs.
	for _, id := range jobs {
		n, _ := reduced.Node(id)
		site := p.SiteOf[id]
		for _, lfn := range chimera.SplitLFNs(n.Attr(chimera.AttrInputs)) {
			if prod, ok := producerOf[lfn]; ok {
				// Inter-stage: producer runs in this workflow.
				srcSite := p.SiteOf[prod]
				if srcSite == site {
					continue // same site: no staging needed
				}
				txID := fmt.Sprintf("tx_%s_%s_to_%s", sanitize(lfn), srcSite, site)
				if _, exists := cw.Node(txID); !exists {
					tn := &dag.Node{ID: txID, Type: NodeTransfer}
					tn.SetAttr(AttrLFN, lfn)
					tn.SetAttr(AttrSrcURL, gridftp.URL(srcSite, lfn))
					tn.SetAttr(AttrDstURL, gridftp.URL(site, lfn))
					if err := cw.AddNode(tn); err != nil {
						return err
					}
					if err := cw.AddEdge(prod, txID); err != nil {
						return err
					}
					p.EstBytesMoved += cfg.sizeOf(lfn)
				}
				if err := cw.AddEdge(txID, id); err != nil {
					return err
				}
				continue
			}
			// Stage-in from an existing replica, read from the plan's
			// snapshot. The source replica is picked at random, as in the
			// paper — except under SelectLocality, which takes the cheapest
			// link deterministically.
			replicas := snap[lfn]
			if len(replicas) == 0 {
				return fmt.Errorf("%w: %q", ErrInfeasible, lfn)
			}
			atSite := false
			for _, r := range replicas {
				if r.Site == site {
					atSite = true
					break
				}
			}
			if atSite {
				continue // replica already local: genuinely nothing to move
			}
			src := pickSource(cfg, rng, replicas, site, lfn)
			txID := fmt.Sprintf("stagein_%s_to_%s", sanitize(lfn), site)
			if _, exists := cw.Node(txID); !exists {
				tn := &dag.Node{ID: txID, Type: NodeTransfer}
				tn.SetAttr(AttrLFN, lfn)
				tn.SetAttr(AttrSrcURL, src.URL)
				tn.SetAttr(AttrDstURL, gridftp.URL(site, lfn))
				if err := cw.AddNode(tn); err != nil {
					return err
				}
				p.EstBytesMoved += cfg.sizeOf(lfn)
			}
			if err := cw.AddEdge(txID, id); err != nil {
				return err
			}
		}
	}

	// Output delivery and registration.
	requested := map[string]bool{}
	for _, lfn := range wf.RequestedLFNs {
		requested[lfn] = true
	}
	for _, id := range jobs {
		n, _ := reduced.Node(id)
		site := p.SiteOf[id]
		for _, lfn := range chimera.SplitLFNs(n.Attr(chimera.AttrOutputs)) {
			finalSite := site
			lastNode := id
			if requested[lfn] && cfg.OutputSite != "" && cfg.OutputSite != site {
				txID := fmt.Sprintf("stageout_%s_to_%s", sanitize(lfn), cfg.OutputSite)
				tn := &dag.Node{ID: txID, Type: NodeTransfer}
				tn.SetAttr(AttrLFN, lfn)
				tn.SetAttr(AttrSrcURL, gridftp.URL(site, lfn))
				tn.SetAttr(AttrDstURL, gridftp.URL(cfg.OutputSite, lfn))
				if err := cw.AddNode(tn); err != nil {
					return err
				}
				if err := cw.AddEdge(id, txID); err != nil {
					return err
				}
				p.EstBytesMoved += cfg.sizeOf(lfn)
				finalSite = cfg.OutputSite
				lastNode = txID
			}
			if cfg.RegisterOutputs {
				regID := "reg_" + sanitize(lfn)
				rn := &dag.Node{ID: regID, Type: NodeRegister}
				rn.SetAttr(AttrLFN, lfn)
				rn.SetAttr(AttrSite, finalSite)
				rn.SetAttr(AttrPFN, gridftp.URL(finalSite, lfn))
				if err := cw.AddNode(rn); err != nil {
					return err
				}
				if err := cw.AddEdge(lastNode, regID); err != nil {
					return err
				}
			}
		}
	}

	// Requested files fully satisfied from the RLS still need delivery to U.
	if cfg.OutputSite != "" {
		for _, lfn := range wf.RequestedLFNs {
			if _, producedHere := producerOf[lfn]; producedHere {
				continue
			}
			replicas := snap[lfn]
			if len(replicas) == 0 {
				continue // reduction guarantees this does not happen
			}
			already := false
			for _, r := range replicas {
				if r.Site == cfg.OutputSite {
					already = true
					break
				}
			}
			if already {
				continue
			}
			src := pickSource(cfg, rng, replicas, cfg.OutputSite, lfn)
			txID := fmt.Sprintf("stageout_%s_to_%s", sanitize(lfn), cfg.OutputSite)
			tn := &dag.Node{ID: txID, Type: NodeTransfer}
			tn.SetAttr(AttrLFN, lfn)
			tn.SetAttr(AttrSrcURL, src.URL)
			tn.SetAttr(AttrDstURL, gridftp.URL(cfg.OutputSite, lfn))
			if err := cw.AddNode(tn); err != nil {
				return err
			}
			p.EstBytesMoved += cfg.sizeOf(lfn)
			if cfg.RegisterOutputs {
				regID := "reg_" + sanitize(lfn)
				rn := &dag.Node{ID: regID, Type: NodeRegister}
				rn.SetAttr(AttrLFN, lfn)
				rn.SetAttr(AttrSite, cfg.OutputSite)
				rn.SetAttr(AttrPFN, gridftp.URL(cfg.OutputSite, lfn))
				if err := cw.AddNode(rn); err != nil {
					return err
				}
				if err := cw.AddEdge(txID, regID); err != nil {
					return err
				}
			}
		}
	}

	p.Concrete = cw
	return nil
}

// pickByLocality scores each candidate site by the simulated cost of moving
// the job's inputs there — for every input not already replicated at the
// site, the cheapest link from an existing replica (or from the producer's
// assigned site for inter-stage files), weighted by file size — and returns
// the cheapest site. Ties break toward the site with fewer jobs assigned so
// equal-cost work still spreads across pools, then by name; the whole pick
// is deterministic, which the kill/resume byte-identity sweep depends on.
func pickByLocality(cfg Config, entries []tcat.Entry, inputs []string,
	snap map[string][]rls.PFN, producerOf, siteOf map[string]string,
	assigned map[string]int) string {

	net := cfg.Net
	best := ""
	var bestCost time.Duration
	for _, e := range entries {
		site := e.Site
		var cost time.Duration
		for _, lfn := range inputs {
			size := cfg.sizeOf(lfn)
			if prod, ok := producerOf[lfn]; ok {
				if srcSite, placed := siteOf[prod]; placed && srcSite != site {
					cost += net.Cost(srcSite, site, size)
				}
				continue
			}
			replicas := snap[lfn]
			if len(replicas) == 0 {
				continue // feasibility already rejected truly missing inputs
			}
			cheapest := time.Duration(-1)
			for _, r := range replicas {
				if r.Site == site {
					cheapest = 0
					break
				}
				if c := net.Cost(r.Site, site, size); cheapest < 0 || c < cheapest {
					cheapest = c
				}
			}
			cost += cheapest
		}
		if best == "" || cost < bestCost ||
			(cost == bestCost && assigned[site] < assigned[best]) ||
			(cost == bestCost && assigned[site] == assigned[best] && site < best) {
			best, bestCost = site, cost
		}
	}
	return best
}

// pickSource chooses the replica a transfer stages from: random under the
// paper's policies, the cheapest link (ties by site then URL — the replica
// list is already sorted) under SelectLocality.
func pickSource(cfg Config, rng *rand.Rand, replicas []rls.PFN, dst, lfn string) rls.PFN {
	if cfg.Selection != SelectLocality {
		return replicas[rng.Intn(len(replicas))]
	}
	size := cfg.sizeOf(lfn)
	best := replicas[0]
	bestCost := cfg.Net.Cost(best.Site, dst, size)
	for _, r := range replicas[1:] {
		if c := cfg.Net.Cost(r.Site, dst, size); c < bestCost {
			best, bestCost = r, c
		}
	}
	return best
}

// sanitize turns an LFN into a legal node-id fragment.
func sanitize(lfn string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, lfn)
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func dedup(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}
