package pegasus

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/chimera"
	"repro/internal/gridftp"
	"repro/internal/mds"
	"repro/internal/rls"
	"repro/internal/tcat"
	"repro/internal/vdl"
)

// figureWorkflow is the paper's running example: d1: a -> b, d2: b -> c.
func figureWorkflow(t testing.TB) *chimera.Workflow {
	t.Helper()
	cat, err := vdl.Parse(`
TR step( in x, out y ) {}
DV d1->step( x=@{in:"a"}, y=@{out:"b"} );
DV d2->step( x=@{in:"b"}, y=@{out:"c"} );
`)
	if err != nil {
		t.Fatal(err)
	}
	wf, err := chimera.Compose(cat, chimera.Request{LFNs: []string{"c"}})
	if err != nil {
		t.Fatal(err)
	}
	return wf
}

// basicServices registers "step" at sites A and B, with the raw input a at
// site A.
func basicServices(t testing.TB) (*rls.RLS, *tcat.Catalog) {
	t.Helper()
	r := rls.New()
	if err := r.Register("a", rls.PFN{Site: "A", URL: gridftp.URL("A", "a")}); err != nil {
		t.Fatal(err)
	}
	tc := tcat.New()
	_ = tc.Add(tcat.Entry{Transformation: "step", Site: "A", Path: "/bin/step"})
	_ = tc.Add(tcat.Entry{Transformation: "step", Site: "B", Path: "/grid/step"})
	return r, tc
}

func TestPlanValidation(t *testing.T) {
	wf := figureWorkflow(t)
	r, tc := basicServices(t)
	if _, err := Map(nil, Config{RLS: r, TC: tc}); err == nil {
		t.Error("nil workflow must fail")
	}
	if _, err := Map(wf, Config{}); err == nil {
		t.Error("missing services must fail")
	}
	if _, err := Map(wf, Config{RLS: r, TC: tc, Selection: SelectLeastLoaded}); !errors.Is(err, ErrNeedMDS) {
		t.Error("least-loaded without MDS must fail")
	}
}

func TestFigure2FullPlan(t *testing.T) {
	// No intermediates cached: both jobs survive.
	wf := figureWorkflow(t)
	r, tc := basicServices(t)
	p, err := Map(wf, Config{RLS: r, TC: tc, Rand: rand.New(rand.NewSource(7))})
	if err != nil {
		t.Fatal(err)
	}
	if p.Reduced.Len() != 2 || len(p.PrunedJobs) != 0 {
		t.Fatalf("reduced = %v pruned = %v", p.Reduced.Nodes(), p.PrunedJobs)
	}
	// Compute jobs present with sites and executables assigned.
	for _, id := range []string{"d1", "d2"} {
		n, ok := p.Concrete.Node(id)
		if !ok {
			t.Fatalf("missing compute node %s", id)
		}
		if n.Attr(AttrSite) == "" || n.Attr(AttrExecutable) == "" {
			t.Errorf("%s attrs incomplete: %v", id, n.Attrs)
		}
	}
	// d1 must precede d2 (directly or via a transfer node).
	order, err := p.Concrete.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, id := range order {
		pos[id] = i
	}
	if pos["d1"] >= pos["d2"] {
		t.Error("d1 must come before d2")
	}
}

func TestFigure3Reduction(t *testing.T) {
	// Intermediate b already exists at some location: d1 is pruned and the
	// workflow reduces to d2 alone (Figure 3 of the paper).
	wf := figureWorkflow(t)
	r, tc := basicServices(t)
	if err := r.Register("b", rls.PFN{Site: "A", URL: gridftp.URL("A", "b")}); err != nil {
		t.Fatal(err)
	}
	p, err := Map(wf, Config{RLS: r, TC: tc})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.PrunedJobs) != 1 || p.PrunedJobs[0] != "d1" {
		t.Fatalf("pruned = %v, want [d1]", p.PrunedJobs)
	}
	if p.Reduced.Len() != 1 {
		t.Fatalf("reduced nodes = %v", p.Reduced.Nodes())
	}
	if _, ok := p.Reduced.Node("d2"); !ok {
		t.Error("d2 must survive")
	}
	found := false
	for _, lfn := range p.ReusedLFNs {
		if lfn == "b" {
			found = true
		}
	}
	if !found {
		t.Errorf("reused = %v, want to include b", p.ReusedLFNs)
	}
}

func TestFigure4ConcreteWorkflow(t *testing.T) {
	// The paper's Figure 4: with b cached at A, d2 forced to B, output site
	// U and registration on, the concrete workflow is exactly:
	//   Move b from A to B -> Execute d2 at B -> Move c from B to U
	//   -> Register c in the RLS.
	wf := figureWorkflow(t)
	r := rls.New()
	_ = r.Register("a", rls.PFN{Site: "A", URL: gridftp.URL("A", "a")})
	_ = r.Register("b", rls.PFN{Site: "A", URL: gridftp.URL("A", "b")})
	tc := tcat.New()
	_ = tc.Add(tcat.Entry{Transformation: "step", Site: "B", Path: "/grid/step"}) // only B

	p, err := Map(wf, Config{
		RLS: r, TC: tc,
		OutputSite:      "U",
		RegisterOutputs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.ComputeJobs != 1 || st.TransferNodes != 2 || st.RegisterNodes != 1 {
		t.Fatalf("stats = %+v, want 1 compute, 2 transfers, 1 register\n%s",
			st, p.Concrete.DOT("fig4"))
	}
	order, err := p.Concrete.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 4 {
		t.Fatalf("nodes = %v", order)
	}
	// Check the chain semantics.
	stagein, _ := p.Concrete.Node("stagein_b_to_B")
	if stagein == nil {
		t.Fatalf("missing stage-in node; nodes = %v", p.Concrete.Nodes())
	}
	if stagein.Attr(AttrSrcURL) != gridftp.URL("A", "b") || stagein.Attr(AttrDstURL) != gridftp.URL("B", "b") {
		t.Errorf("stage-in urls = %v", stagein.Attrs)
	}
	stageout, _ := p.Concrete.Node("stageout_c_to_U")
	if stageout == nil {
		t.Fatal("missing stage-out node")
	}
	reg, _ := p.Concrete.Node("reg_c")
	if reg == nil || reg.Attr(AttrPFN) != gridftp.URL("U", "c") {
		t.Fatalf("register node wrong: %+v", reg)
	}
	for _, e := range [][2]string{
		{"stagein_b_to_B", "d2"},
		{"d2", "stageout_c_to_U"},
		{"stageout_c_to_U", "reg_c"},
	} {
		if !p.Concrete.HasEdge(e[0], e[1]) {
			t.Errorf("edge %v missing", e)
		}
	}
}

func TestFullyReducedWorkflowDeliversFromRLS(t *testing.T) {
	// Even c itself is cached: nothing to compute, but delivery to U (and
	// registration of the new U replica) still happens.
	wf := figureWorkflow(t)
	r, tc := basicServices(t)
	_ = r.Register("b", rls.PFN{Site: "A", URL: gridftp.URL("A", "b")})
	_ = r.Register("c", rls.PFN{Site: "B", URL: gridftp.URL("B", "c")})
	p, err := Map(wf, Config{RLS: r, TC: tc, OutputSite: "U", RegisterOutputs: true})
	if err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.ComputeJobs != 0 {
		t.Errorf("compute jobs = %d, want 0", st.ComputeJobs)
	}
	if st.TransferNodes != 1 || st.RegisterNodes != 1 {
		t.Errorf("stats = %+v, want one delivery transfer + register", st)
	}
	// Already at U: no transfer at all.
	r2, tc2 := basicServices(t)
	_ = r2.Register("c", rls.PFN{Site: "U", URL: gridftp.URL("U", "c")})
	p2, err := Map(wf, Config{RLS: r2, TC: tc2, OutputSite: "U"})
	if err != nil {
		t.Fatal(err)
	}
	if p2.Concrete.Len() != 0 {
		t.Errorf("nodes = %v, want empty workflow", p2.Concrete.Nodes())
	}
}

func TestNoReduceAblation(t *testing.T) {
	wf := figureWorkflow(t)
	r, tc := basicServices(t)
	_ = r.Register("b", rls.PFN{Site: "A", URL: gridftp.URL("A", "b")})
	p, err := Map(wf, Config{RLS: r, TC: tc, NoReduce: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.Reduced.Len() != 2 || len(p.PrunedJobs) != 0 {
		t.Errorf("NoReduce must keep all jobs: %v", p.Reduced.Nodes())
	}
}

func TestInfeasibleWorkflow(t *testing.T) {
	wf := figureWorkflow(t)
	r := rls.New() // input a nowhere to be found
	tc := tcat.New()
	_ = tc.Add(tcat.Entry{Transformation: "step", Site: "A", Path: "/bin/step"})
	_, err := Map(wf, Config{RLS: r, TC: tc})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
	if !strings.Contains(err.Error(), `"a"`) && !strings.Contains(err.Error(), "[a]") {
		t.Errorf("error should name the missing file: %v", err)
	}
}

func TestNoSiteForTransformation(t *testing.T) {
	wf := figureWorkflow(t)
	r, _ := basicServices(t)
	tc := tcat.New() // empty
	_, err := Map(wf, Config{RLS: r, TC: tc})
	if !errors.Is(err, ErrNoSite) {
		t.Fatalf("want ErrNoSite, got %v", err)
	}
}

func TestSameSitePlacementSkipsTransfers(t *testing.T) {
	// Only site A exists: both jobs run there, input a is already there, so
	// the concrete workflow has no transfer nodes at all.
	wf := figureWorkflow(t)
	r := rls.New()
	_ = r.Register("a", rls.PFN{Site: "A", URL: gridftp.URL("A", "a")})
	tc := tcat.New()
	_ = tc.Add(tcat.Entry{Transformation: "step", Site: "A", Path: "/bin/step"})
	p, err := Map(wf, Config{RLS: r, TC: tc})
	if err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.TransferNodes != 0 || st.ComputeJobs != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRoundRobinSelection(t *testing.T) {
	// A fan of independent jobs must spread across both sites.
	cat, err := vdl.Parse(`
TR t( in x, out y ) {}
DV j1->t( x=@{in:"a"}, y=@{out:"o1"} );
DV j2->t( x=@{in:"a"}, y=@{out:"o2"} );
DV j3->t( x=@{in:"a"}, y=@{out:"o3"} );
DV j4->t( x=@{in:"a"}, y=@{out:"o4"} );
`)
	if err != nil {
		t.Fatal(err)
	}
	wf, err := chimera.Compose(cat, chimera.Request{LFNs: []string{"o1", "o2", "o3", "o4"}})
	if err != nil {
		t.Fatal(err)
	}
	r := rls.New()
	_ = r.Register("a", rls.PFN{Site: "A", URL: gridftp.URL("A", "a")})
	tc := tcat.New()
	_ = tc.Add(tcat.Entry{Transformation: "t", Site: "A", Path: "/bin/t"})
	_ = tc.Add(tcat.Entry{Transformation: "t", Site: "B", Path: "/bin/t"})
	p, err := Map(wf, Config{RLS: r, TC: tc, Selection: SelectRoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, s := range p.SiteOf {
		counts[s]++
	}
	if counts["A"] != 2 || counts["B"] != 2 {
		t.Errorf("round robin spread = %v", counts)
	}
}

func TestLeastLoadedSelection(t *testing.T) {
	cat, err := vdl.Parse(`
TR t( in x, out y ) {}
DV j1->t( x=@{in:"a"}, y=@{out:"o1"} );
DV j2->t( x=@{in:"a"}, y=@{out:"o2"} );
DV j3->t( x=@{in:"a"}, y=@{out:"o3"} );
`)
	if err != nil {
		t.Fatal(err)
	}
	wf, err := chimera.Compose(cat, chimera.Request{LFNs: []string{"o1", "o2", "o3"}})
	if err != nil {
		t.Fatal(err)
	}
	r := rls.New()
	_ = r.Register("a", rls.PFN{Site: "big", URL: gridftp.URL("big", "a")})
	tc := tcat.New()
	_ = tc.Add(tcat.Entry{Transformation: "t", Site: "big", Path: "/bin/t"})
	_ = tc.Add(tcat.Entry{Transformation: "t", Site: "small", Path: "/bin/t"})
	m := mds.New()
	_ = m.Register(mds.SiteInfo{Name: "big", Slots: 100})
	_ = m.Register(mds.SiteInfo{Name: "small", Slots: 1})

	p, err := Map(wf, Config{RLS: r, TC: tc, MDS: m, Selection: SelectLeastLoaded})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, s := range p.SiteOf {
		counts[s]++
	}
	// 3 jobs: big (100 slots) should absorb most; small at most 1.
	if counts["small"] > 1 {
		t.Errorf("least-loaded overloaded the small site: %v", counts)
	}
}

func TestRandomSelectionDeterministicWithSeed(t *testing.T) {
	plan := func(seed int64) map[string]string {
		wf := figureWorkflow(t)
		r, tc := basicServices(t)
		p, err := Map(wf, Config{RLS: r, TC: tc, Rand: rand.New(rand.NewSource(seed))})
		if err != nil {
			t.Fatal(err)
		}
		return p.SiteOf
	}
	a := plan(3)
	b := plan(3)
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("same seed must give same placement: %v vs %v", a, b)
		}
	}
}

func TestSubmitFilesAndDAGFile(t *testing.T) {
	wf := figureWorkflow(t)
	r, tc := basicServices(t)
	_ = r.Register("b", rls.PFN{Site: "A", URL: gridftp.URL("A", "b")})
	p, err := Map(wf, Config{RLS: r, TC: tc, OutputSite: "U", RegisterOutputs: true})
	if err != nil {
		t.Fatal(err)
	}
	subs := p.SubmitFiles()
	if len(subs) != p.Concrete.Len() {
		t.Fatalf("submit files = %d, nodes = %d", len(subs), p.Concrete.Len())
	}
	byNode := map[string]string{}
	for _, s := range subs {
		byNode[s.Node] = s.Text
		if !strings.Contains(s.Text, "queue") || !strings.Contains(s.Text, "universe = globus") {
			t.Errorf("submit file for %s malformed:\n%s", s.Node, s.Text)
		}
	}
	if txt := byNode["d2"]; !strings.Contains(txt, "executable = /") || !strings.Contains(txt, "globusscheduler") {
		t.Errorf("compute submit file:\n%s", txt)
	}
	if txt := byNode["reg_c"]; !strings.Contains(txt, "globus-rls-cli") {
		t.Errorf("register submit file:\n%s", txt)
	}

	dagTxt := p.DAGFile("fig4")
	for _, want := range []string{"JOB d2 d2.submit", "PARENT d2 CHILD"} {
		if !strings.Contains(dagTxt, want) {
			t.Errorf("DAG file missing %q:\n%s", want, dagTxt)
		}
	}
}

// buildGalaxyWorkflow builds the N-galaxy fan + concat workflow with all
// inputs registered at the archive site.
func buildGalaxyWorkflow(t testing.TB, n int) (*chimera.Workflow, *rls.RLS, *tcat.Catalog) {
	var b strings.Builder
	b.WriteString("TR galMorph( in image, out res ) {}\n")
	b.WriteString("TR concat( ")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "in p%d, ", i)
	}
	b.WriteString("out table ) {}\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "DV m%d->galMorph( image=@{in:\"g%d.fit\"}, res=@{out:\"g%d.txt\"} );\n", i, i, i)
	}
	b.WriteString("DV collect->concat( ")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "p%d=@{in:\"g%d.txt\"}, ", i, i)
	}
	b.WriteString("table=@{out:\"cluster.vot\"} );\n")
	cat, err := vdl.Parse(b.String())
	if err != nil {
		t.Fatal(err)
	}
	wf, err := chimera.Compose(cat, chimera.Request{LFNs: []string{"cluster.vot"}})
	if err != nil {
		t.Fatal(err)
	}
	r := rls.New()
	for i := 0; i < n; i++ {
		lfn := fmt.Sprintf("g%d.fit", i)
		_ = r.Register(lfn, rls.PFN{Site: "archive", URL: gridftp.URL("archive", lfn)})
	}
	tc := tcat.New()
	for _, site := range []string{"usc", "wisc", "fnal"} {
		_ = tc.Add(tcat.Entry{Transformation: "galMorph", Site: site, Path: "/nvo/galMorph"})
		_ = tc.Add(tcat.Entry{Transformation: "concat", Site: site, Path: "/nvo/concat"})
	}
	return wf, r, tc
}

func TestGalaxyWorkflowPlan(t *testing.T) {
	wf, r, tc := buildGalaxyWorkflow(t, 37)
	p, err := Map(wf, Config{RLS: r, TC: tc, OutputSite: "stsci", RegisterOutputs: true,
		Rand: rand.New(rand.NewSource(2))})
	if err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.ComputeJobs != 38 {
		t.Errorf("compute jobs = %d, want 38", st.ComputeJobs)
	}
	// Every galaxy image needs staging from the archive (jobs never run at
	// "archive"), so at least 37 stage-ins exist.
	if st.TransferNodes < 37 {
		t.Errorf("transfers = %d, want >= 37", st.TransferNodes)
	}
	// 37 per-galaxy results + 1 final table registered.
	if st.RegisterNodes != 38 {
		t.Errorf("register nodes = %d, want 38", st.RegisterNodes)
	}
	if _, err := p.Concrete.TopoSort(); err != nil {
		t.Fatal(err)
	}
}

func TestSecondRequestFullyPruned(t *testing.T) {
	// After the outputs are registered (as the executed workflow would),
	// re-planning the same request prunes every compute job — the data
	// reuse the paper highlights.
	wf, r, tc := buildGalaxyWorkflow(t, 10)
	for i := 0; i < 10; i++ {
		lfn := fmt.Sprintf("g%d.txt", i)
		_ = r.Register(lfn, rls.PFN{Site: "usc", URL: gridftp.URL("usc", lfn)})
	}
	_ = r.Register("cluster.vot", rls.PFN{Site: "stsci", URL: gridftp.URL("stsci", "cluster.vot")})
	p, err := Map(wf, Config{RLS: r, TC: tc, OutputSite: "stsci"})
	if err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.ComputeJobs != 0 || st.TransferNodes != 0 {
		t.Errorf("second request stats = %+v, want all pruned", st)
	}
	if len(p.PrunedJobs) != 11 {
		t.Errorf("pruned = %d, want 11", len(p.PrunedJobs))
	}
}

func BenchmarkPlan561(b *testing.B) {
	wf, r, tc := buildGalaxyWorkflow(b, 561)
	cfg := Config{RLS: r, TC: tc, OutputSite: "stsci", RegisterOutputs: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Rand = rand.New(rand.NewSource(int64(i)))
		if _, err := Map(wf, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanReduce(b *testing.B) {
	// Reduction benefit: plan with half the outputs already materialized.
	wf, r, tc := buildGalaxyWorkflow(b, 200)
	for i := 0; i < 100; i++ {
		lfn := fmt.Sprintf("g%d.txt", i)
		_ = r.Register(lfn, rls.PFN{Site: "usc", URL: gridftp.URL("usc", lfn)})
	}
	cfg := Config{RLS: r, TC: tc}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Rand = rand.New(rand.NewSource(int64(i)))
		p, err := Map(wf, cfg)
		if err != nil {
			b.Fatal(err)
		}
		// The 100 producers of cached results are pruned; their outputs
		// stage in from the RLS instead.
		if len(p.PrunedJobs) != 100 {
			b.Fatalf("pruned = %d, want 100", len(p.PrunedJobs))
		}
	}
}
