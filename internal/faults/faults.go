// Package faults is a seeded, deterministic fault injector for the grid
// stack. The paper's production runs survived exactly the failures this
// package can express — flaky archive services, failed transfers, dead
// worker nodes — via DAGMan retries and rescue DAGs (§4); related CMS
// production work reports transient grid faults as the dominant operational
// cost. Proving the stack resilient first requires injecting those faults
// reproducibly.
//
// Components expose a fault point by calling
//
//	if err := inj.Check(faults.Op{Name: "gridftp.transfer", Site: src, Key: lfn}); err != nil { ... }
//
// on their *Injector field. A nil injector is the zero-cost default: Check
// on a nil receiver returns nil immediately, so undisturbed production paths
// pay one pointer comparison.
//
// Faults are declared as Rules — probability-based (every matching call
// draws from the seeded stream) or schedule-based (a [From, Until)
// occurrence window of matching calls) — and every injected fault is
// recorded in an append-only history so tests can assert the exact
// sequence. Same seed + same call sequence ⇒ same injected faults.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// Kind classifies an injected fault.
type Kind int

// Fault kinds, mirroring the operational failure classes of the paper's §4:
// transient service errors, hung transfers, garbled payloads, and sites
// dropping off the Grid.
const (
	// KindTransient is a one-shot error; an immediate retry may succeed.
	KindTransient Kind = iota
	// KindTimeout models an operation exceeding its deadline budget.
	KindTimeout
	// KindCorruption models payload damage detected by the receiver
	// (checksum mismatch); the operation fails without delivering data.
	KindCorruption
	// KindSiteDown models a whole site being unreachable; retries against
	// the same site keep failing until the schedule window closes, so the
	// caller must fail over to another site to make progress.
	KindSiteDown
)

// String labels the kind.
func (k Kind) String() string {
	switch k {
	case KindTransient:
		return "transient"
	case KindTimeout:
		return "timeout"
	case KindCorruption:
		return "corruption"
	case KindSiteDown:
		return "site-down"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Op identifies one invocation of a fault point.
type Op struct {
	Name string // fault point, e.g. "gridftp.transfer", "condor.exec"
	Site string // site or archive the operation targets ("" if none)
	Key  string // operation detail: LFN, path, task id ("" if none)
}

// Fault is the error returned by an injected failure.
type Fault struct {
	Kind Kind
	Op   Op
	Seq  int // global injection index (0-based), for history assertions
}

// Error renders the fault.
func (f *Fault) Error() string {
	return fmt.Sprintf("faults: injected %s at %s site=%q key=%q (#%d)",
		f.Kind, f.Op.Name, f.Op.Site, f.Op.Key, f.Seq)
}

// As extracts the *Fault from an error chain, if any.
func As(err error) (*Fault, bool) {
	var f *Fault
	if errors.As(err, &f) {
		return f, true
	}
	return nil, false
}

// Is reports whether err carries an injected fault of the given kind.
func Is(err error, kind Kind) bool {
	f, ok := As(err)
	return ok && f.Kind == kind
}

// Rule declares one fault source. A rule matches a Check call when every
// non-zero selector (Name, Site, Key) equals the op's field. Matching calls
// are counted per rule; the rule fires when the occurrence index falls in
// [From, Until) and either Probability is 1 (or unset with a window) or the
// seeded coin comes up.
type Rule struct {
	// Name, Site, Key select the ops this rule applies to ("" = any).
	Name string
	Site string
	Key  string
	// Kind is the fault to inject.
	Kind Kind
	// Probability in (0, 1] fires the rule on that fraction of matching
	// calls, drawn from the injector's seeded stream. 0 means 1 (always,
	// within the window) so pure schedule rules need no boilerplate.
	Probability float64
	// From and Until bound the matching-call occurrence window (0-based;
	// Until 0 = unbounded). A rule with From=3, Until=6 can fire only on
	// the 4th..6th matching calls.
	From, Until int
	// MaxFaults caps the total injections by this rule (0 = unlimited).
	MaxFaults int
}

// matches reports whether the rule's selectors accept the op.
func (r Rule) matches(op Op) bool {
	return (r.Name == "" || r.Name == op.Name) &&
		(r.Site == "" || r.Site == op.Site) &&
		(r.Key == "" || r.Key == op.Key)
}

// ruleState tracks one rule's per-run counters.
type ruleState struct {
	Rule
	seen     int // matching calls observed
	injected int // faults fired
}

// Injector is the fault source. It is safe for concurrent use; determinism
// holds whenever the sequence of Check calls is itself deterministic.
type Injector struct {
	mu      sync.Mutex
	rng     *rand.Rand
	rules   []ruleState
	history []Fault
	checks  int
}

// New builds an injector with the given seed and rules.
func New(seed int64, rules ...Rule) *Injector {
	in := &Injector{rng: rand.New(rand.NewSource(seed))}
	for _, r := range rules {
		in.rules = append(in.rules, ruleState{Rule: r})
	}
	return in
}

// Check evaluates every rule against the op and returns the first fault
// fired, or nil. Calling Check on a nil *Injector is the disabled fast
// path: it returns nil without any work.
func (in *Injector) Check(op Op) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.checks++
	var fired *Fault
	for i := range in.rules {
		rs := &in.rules[i]
		if !rs.matches(op) {
			continue
		}
		occ := rs.seen
		rs.seen++
		if fired != nil {
			continue // at most one fault per call, but count every match
		}
		if occ < rs.From || (rs.Until > 0 && occ >= rs.Until) {
			continue
		}
		if rs.MaxFaults > 0 && rs.injected >= rs.MaxFaults {
			continue
		}
		if p := rs.Probability; p > 0 && p < 1 {
			// Drawing only for probabilistic rules keeps schedule-based
			// runs byte-stable when probabilities are edited.
			if in.rng.Float64() >= p {
				continue
			}
		}
		rs.injected++
		f := Fault{Kind: rs.Kind, Op: op, Seq: len(in.history)}
		in.history = append(in.history, f)
		fired = &in.history[len(in.history)-1]
	}
	if fired == nil {
		return nil
	}
	out := *fired
	return &out
}

// History returns a copy of every injected fault, in order.
func (in *Injector) History() []Fault {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Fault(nil), in.history...)
}

// Injected returns the total number of faults fired.
func (in *Injector) Injected() int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.history)
}

// Checks returns the number of fault-point evaluations seen.
func (in *Injector) Checks() int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.checks
}

// CountKind returns how many injected faults have the given kind.
func (in *Injector) CountKind(kind Kind) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	n := 0
	for _, f := range in.history {
		if f.Kind == kind {
			n++
		}
	}
	return n
}
