package faults

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
)

func TestNilInjectorIsZeroCostNoop(t *testing.T) {
	var in *Injector
	for i := 0; i < 100; i++ {
		if err := in.Check(Op{Name: "x", Site: "s"}); err != nil {
			t.Fatalf("nil injector injected: %v", err)
		}
	}
	if in.Injected() != 0 || in.Checks() != 0 || in.History() != nil ||
		in.CountKind(KindTransient) != 0 {
		t.Error("nil injector must report nothing")
	}
}

func TestScheduleWindow(t *testing.T) {
	in := New(1, Rule{Name: "op", Site: "a", Kind: KindSiteDown, From: 2, Until: 5})
	var got []bool
	for i := 0; i < 8; i++ {
		got = append(got, in.Check(Op{Name: "op", Site: "a"}) != nil)
		// Non-matching ops must not advance the window.
		if err := in.Check(Op{Name: "op", Site: "b"}); err != nil {
			t.Fatalf("site b hit: %v", err)
		}
	}
	want := []bool{false, false, true, true, true, false, false, false}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("window pattern = %v, want %v", got, want)
	}
	if n := in.Injected(); n != 3 {
		t.Errorf("injected = %d, want 3", n)
	}
	if n := in.CountKind(KindSiteDown); n != 3 {
		t.Errorf("site-down count = %d, want 3", n)
	}
}

func TestMaxFaultsCap(t *testing.T) {
	in := New(1, Rule{Name: "op", Kind: KindTransient, MaxFaults: 2})
	n := 0
	for i := 0; i < 10; i++ {
		if in.Check(Op{Name: "op"}) != nil {
			n++
		}
	}
	if n != 2 {
		t.Errorf("fired %d, want cap 2", n)
	}
}

func TestProbabilityDeterminismAcrossSeeds(t *testing.T) {
	run := func(seed int64) []Fault {
		in := New(seed,
			Rule{Name: "op", Kind: KindTransient, Probability: 0.3},
			Rule{Name: "op", Site: "b", Kind: KindTimeout, Probability: 0.5})
		for i := 0; i < 200; i++ {
			in.Check(Op{Name: "op", Site: "a", Key: fmt.Sprint(i)})
			in.Check(Op{Name: "op", Site: "b", Key: fmt.Sprint(i)})
		}
		return in.History()
	}
	a, b := run(42), run(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must give the same fault sequence")
	}
	if len(a) == 0 {
		t.Fatal("expected some faults at p=0.3 over 400 calls")
	}
	if c := run(43); reflect.DeepEqual(a, c) {
		t.Error("different seeds should give different sequences")
	}
}

func TestFaultErrorClassification(t *testing.T) {
	in := New(1, Rule{Name: "op", Kind: KindCorruption, MaxFaults: 1})
	err := in.Check(Op{Name: "op", Site: "s", Key: "k"})
	if err == nil {
		t.Fatal("expected fault")
	}
	wrapped := fmt.Errorf("transfer failed: %w", err)
	if !Is(wrapped, KindCorruption) {
		t.Error("Is must see corruption through wrapping")
	}
	if Is(wrapped, KindTimeout) {
		t.Error("wrong kind must not match")
	}
	f, ok := As(wrapped)
	if !ok || f.Op.Site != "s" || f.Op.Key != "k" || f.Seq != 0 {
		t.Errorf("As = %+v, %v", f, ok)
	}
	if Is(errors.New("plain"), KindTransient) {
		t.Error("plain error must not classify")
	}
}

func TestOneFaultPerCheckButAllRulesCount(t *testing.T) {
	// Two always-firing rules: only the first injects each call, but the
	// second still observes the call so its window stays aligned.
	in := New(1,
		Rule{Name: "op", Kind: KindTransient, Until: 2},
		Rule{Name: "op", Kind: KindTimeout, From: 2, Until: 4})
	var kinds []Kind
	for i := 0; i < 5; i++ {
		if err := in.Check(Op{Name: "op"}); err != nil {
			f, _ := As(err)
			kinds = append(kinds, f.Kind)
		}
	}
	want := []Kind{KindTransient, KindTransient, KindTimeout, KindTimeout}
	if !reflect.DeepEqual(kinds, want) {
		t.Errorf("kinds = %v, want %v", kinds, want)
	}
}

func TestKindString(t *testing.T) {
	for k, s := range map[Kind]string{
		KindTransient: "transient", KindTimeout: "timeout",
		KindCorruption: "corruption", KindSiteDown: "site-down",
		Kind(9): "Kind(9)",
	} {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
}
