// Package rls implements the Globus Replica Location Service the paper's
// Pegasus configuration depends on (Chervenak et al. 2002, "Giggle"): the
// catalog mapping logical file names (LFNs) to the physical file names
// (PFNs) of their replicas across Grid sites.
//
// Following Giggle's architecture, each site runs a Local Replica Catalog
// (LRC) holding its own LFN→PFN mappings, and a Replica Location Index (RLI)
// aggregates which LRCs know each LFN. The RLS facade gives Pegasus the
// queries it needs: existence checks for workflow reduction and feasibility,
// replica lists for source selection, and registration for newly materialized
// data products. An HTTP front-end (see http.go) exposes the same operations
// as a service.
package rls

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/faults"
)

// PFN is one physical replica of a logical file.
type PFN struct {
	Site string // site identifier, e.g. "isi", "fnal"
	URL  string // physical location, e.g. "gridftp://isi.edu/data/x.fit"
}

// Errors returned by the service.
var (
	ErrNotFound = errors.New("rls: logical file not found")
	ErrBadInput = errors.New("rls: bad input")
)

// LRC is a Local Replica Catalog: one site's LFN→PFN mappings. It is safe
// for concurrent use.
type LRC struct {
	site string
	mu   sync.RWMutex
	m    map[string]map[string]bool // lfn -> set of URLs
}

// NewLRC returns an empty catalog for a site.
func NewLRC(site string) *LRC {
	return &LRC{site: site, m: map[string]map[string]bool{}}
}

// Site returns the owning site.
func (l *LRC) Site() string { return l.site }

// Add records a replica of lfn at url.
func (l *LRC) Add(lfn, url string) error {
	if lfn == "" || url == "" {
		return fmt.Errorf("%w: empty lfn or url", ErrBadInput)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.m[lfn] == nil {
		l.m[lfn] = map[string]bool{}
	}
	l.m[lfn][url] = true
	return nil
}

// Remove deletes a replica mapping; removing the last replica forgets the LFN.
func (l *LRC) Remove(lfn, url string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	urls, ok := l.m[lfn]
	if !ok || !urls[url] {
		return fmt.Errorf("%w: %s @ %s", ErrNotFound, lfn, url)
	}
	delete(urls, url)
	if len(urls) == 0 {
		delete(l.m, lfn)
	}
	return nil
}

// Lookup returns the site's replicas of lfn, sorted by URL.
func (l *LRC) Lookup(lfn string) []PFN {
	l.mu.RLock()
	defer l.mu.RUnlock()
	urls := l.m[lfn]
	out := make([]PFN, 0, len(urls))
	for u := range urls {
		out = append(out, PFN{Site: l.site, URL: u})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// LFNs returns every logical name the site knows, sorted.
func (l *LRC) LFNs() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]string, 0, len(l.m))
	for lfn := range l.m {
		out = append(out, lfn)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of logical names known to the site.
func (l *LRC) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.m)
}

// Fault-point names. OpLookup is checked once per (LFN, site) pair during
// Lookup — a faulted LRC's replicas drop out of the answer, the degraded
// view Giggle's RLI gives when a Local Replica Catalog is unreachable.
// OpRegister is checked on Register and fails the registration.
const (
	OpLookup   = "rls.lookup"
	OpRegister = "rls.register"
)

// RLS is the full replica location service: an RLI over per-site LRCs.
type RLS struct {
	mu   sync.RWMutex
	lrcs map[string]*LRC
	// rli maps lfn -> set of sites whose LRC holds it (the index layer).
	rli map[string]map[string]bool
	// sums holds the per-LFN content checksum attribute (Giggle's RLS
	// attaches user-defined attributes to mappings; all replicas of an LFN
	// share content, so the attribute lives at the logical level).
	sums map[string]string
	// quarantined holds replicas pulled from circulation after failing
	// checksum verification, kept for audit rather than deleted.
	quarantined map[string][]PFN
	inj         *faults.Injector
	// roundTrips counts client-visible read-query round trips: Lookup and
	// Exists cost one each, BulkLookup costs one regardless of batch size.
	// In the real deployment each is one network exchange with the RLS
	// server, so this is the number the planner's batching optimizes.
	roundTrips atomic.Int64
}

// New returns an empty service.
func New() *RLS {
	return &RLS{
		lrcs:        map[string]*LRC{},
		rli:         map[string]map[string]bool{},
		sums:        map[string]string{},
		quarantined: map[string][]PFN{},
	}
}

// SetInjector installs (or removes, with nil) the fault injector. Exists
// and the RLI index stay faithful — Giggle's index layer is soft state the
// planner can always read; only LRC contact (Lookup) and registration are
// fault points.
func (r *RLS) SetInjector(in *faults.Injector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.inj = in
}

// Site returns (creating on demand) the LRC for a site.
func (r *RLS) Site(site string) *LRC {
	r.mu.Lock()
	defer r.mu.Unlock()
	if l, ok := r.lrcs[site]; ok {
		return l
	}
	l := NewLRC(site)
	r.lrcs[site] = l
	return l
}

// Sites returns the registered site names, sorted.
func (r *RLS) Sites() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.lrcs))
	for s := range r.lrcs {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Register records a replica and updates the index.
func (r *RLS) Register(lfn string, pfn PFN) error {
	if pfn.Site == "" {
		return fmt.Errorf("%w: empty site", ErrBadInput)
	}
	r.mu.RLock()
	inj := r.inj
	r.mu.RUnlock()
	if err := inj.Check(faults.Op{Name: OpRegister, Site: pfn.Site, Key: lfn}); err != nil {
		return fmt.Errorf("rls: register %s @ %s: %w", lfn, pfn.Site, err)
	}
	if err := r.Site(pfn.Site).Add(lfn, pfn.URL); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.rli[lfn] == nil {
		r.rli[lfn] = map[string]bool{}
	}
	r.rli[lfn][pfn.Site] = true
	return nil
}

// Unregister removes a replica, updating the index when a site's last copy
// disappears.
func (r *RLS) Unregister(lfn string, pfn PFN) error {
	r.mu.RLock()
	lrc, ok := r.lrcs[pfn.Site]
	r.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: site %q", ErrNotFound, pfn.Site)
	}
	if err := lrc.Remove(lfn, pfn.URL); err != nil {
		return err
	}
	if len(lrc.Lookup(lfn)) == 0 {
		r.mu.Lock()
		if sites := r.rli[lfn]; sites != nil {
			delete(sites, pfn.Site)
			if len(sites) == 0 {
				delete(r.rli, lfn)
			}
		}
		r.mu.Unlock()
	}
	return nil
}

// Lookup returns every replica of lfn across all sites, sorted by site then
// URL. A missing LFN yields an empty slice, not an error, matching how
// Pegasus probes for reusable data products. Sites whose LRC is faulted by
// the injector are silently omitted — the degraded answer a live RLI gives
// while one of its catalogs is down.
func (r *RLS) Lookup(lfn string) []PFN {
	r.roundTrips.Add(1)
	return r.lookup(lfn)
}

// lookup is Lookup without the round-trip accounting, shared with BulkLookup
// so a bulk query costs one round trip however many LFNs it resolves.
func (r *RLS) lookup(lfn string) []PFN {
	r.mu.RLock()
	inj := r.inj
	sites := make([]string, 0, len(r.rli[lfn]))
	for s := range r.rli[lfn] {
		sites = append(sites, s)
	}
	sort.Strings(sites) // deterministic fault-point order
	lrcs := make([]*LRC, 0, len(sites))
	for _, s := range sites {
		if l, ok := r.lrcs[s]; ok {
			lrcs = append(lrcs, l)
		}
	}
	r.mu.RUnlock()

	var out []PFN
	for _, l := range lrcs {
		if inj.Check(faults.Op{Name: OpLookup, Site: l.Site(), Key: lfn}) != nil {
			continue
		}
		out = append(out, l.Lookup(lfn)...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Site != out[j].Site {
			return out[i].Site < out[j].Site
		}
		return out[i].URL < out[j].URL
	})
	return out
}

// SetChecksum records the content checksum attribute of a logical file —
// written once when the file is created, carried so every consumer can
// verify what it fetches.
func (r *RLS) SetChecksum(lfn, sum string) error {
	if lfn == "" || sum == "" {
		return fmt.Errorf("%w: empty lfn or checksum", ErrBadInput)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sums[lfn] = sum
	return nil
}

// Checksum returns the recorded content checksum of a logical file.
func (r *RLS) Checksum(lfn string) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	sum, ok := r.sums[lfn]
	return sum, ok
}

// Quarantine pulls a replica out of circulation after it failed integrity
// verification: the mapping leaves the catalog (so Lookup stops offering it)
// but is retained on a quarantine list for audit. The LFN itself survives if
// other replicas remain — and even with none, re-derivation re-registers it.
func (r *RLS) Quarantine(lfn string, pfn PFN) error {
	if err := r.Unregister(lfn, pfn); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.quarantined[lfn] = append(r.quarantined[lfn], pfn)
	return nil
}

// Quarantined returns the quarantined replicas of lfn (nil if none).
func (r *RLS) Quarantined(lfn string) []PFN {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]PFN, len(r.quarantined[lfn]))
	copy(out, r.quarantined[lfn])
	return out
}

// QuarantinedCount returns the total number of quarantined replicas.
func (r *RLS) QuarantinedCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, pfns := range r.quarantined {
		n += len(pfns)
	}
	return n
}

// Exists reports whether any replica of lfn is registered.
func (r *RLS) Exists(lfn string) bool {
	r.roundTrips.Add(1)
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.rli[lfn]) > 0
}

// BulkLookup resolves many LFNs at once (Pegasus queries the whole abstract
// workflow's file set in one pass; Figure 2 steps 3–4). It costs a single
// round trip no matter how many LFNs it carries — the point of Giggle's bulk
// interface, and what lets the planner run in O(1) RLS exchanges per plan.
func (r *RLS) BulkLookup(lfns []string) map[string][]PFN {
	r.roundTrips.Add(1)
	out := make(map[string][]PFN, len(lfns))
	for _, lfn := range lfns {
		if pfns := r.lookup(lfn); len(pfns) > 0 {
			out[lfn] = pfns
		}
	}
	return out
}

// RoundTrips returns the cumulative read-query round trips served (Lookup
// and Exists count one each; BulkLookup counts one per call).
func (r *RLS) RoundTrips() int64 { return r.roundTrips.Load() }

// ResetRoundTrips zeroes the round-trip counter and returns the prior value;
// callers bracket a planning pass with it to measure that pass alone.
func (r *RLS) ResetRoundTrips() int64 { return r.roundTrips.Swap(0) }

// LFNs returns every indexed logical name, sorted.
func (r *RLS) LFNs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.rli))
	for lfn := range r.rli {
		out = append(out, lfn)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of indexed logical names.
func (r *RLS) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.rli)
}
