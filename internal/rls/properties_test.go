package rls

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestRegisterUnregisterInvariant: after any random sequence of register and
// unregister operations, Exists(lfn) == (len(Lookup(lfn)) > 0), the index
// agrees with the per-site catalogs, and LFNs() lists exactly the live
// names.
func TestRegisterUnregisterInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	f := func(ops []uint8) bool {
		r := New()
		// Shadow model: lfn -> site -> url set.
		model := map[string]map[string]map[string]bool{}

		lfns := []string{"a", "b", "c"}
		sites := []string{"s1", "s2"}
		urls := []string{"u1", "u2"}

		for _, op := range ops {
			lfn := lfns[int(op)%len(lfns)]
			site := sites[int(op/4)%len(sites)]
			url := urls[int(op/8)%len(urls)]
			pfn := PFN{Site: site, URL: url}
			if op%2 == 0 {
				if err := r.Register(lfn, pfn); err != nil {
					return false
				}
				if model[lfn] == nil {
					model[lfn] = map[string]map[string]bool{}
				}
				if model[lfn][site] == nil {
					model[lfn][site] = map[string]bool{}
				}
				model[lfn][site][url] = true
			} else {
				err := r.Unregister(lfn, pfn)
				has := model[lfn] != nil && model[lfn][site] != nil && model[lfn][site][url]
				if has != (err == nil) {
					return false
				}
				if has {
					delete(model[lfn][site], url)
					if len(model[lfn][site]) == 0 {
						delete(model[lfn], site)
					}
					if len(model[lfn]) == 0 {
						delete(model, lfn)
					}
				}
			}
		}

		// Compare the service against the model.
		for _, lfn := range lfns {
			wantCount := 0
			for _, us := range model[lfn] {
				wantCount += len(us)
			}
			got := r.Lookup(lfn)
			if len(got) != wantCount {
				return false
			}
			if r.Exists(lfn) != (wantCount > 0) {
				return false
			}
		}
		if len(r.LFNs()) != len(model) {
			return false
		}
		_ = rng
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestBulkLookupConsistency: BulkLookup agrees with individual Lookups.
func TestBulkLookupConsistency(t *testing.T) {
	r := New()
	rng := rand.New(rand.NewSource(61))
	var lfns []string
	for i := 0; i < 50; i++ {
		lfn := fmt.Sprintf("f%d", rng.Intn(20))
		lfns = append(lfns, lfn)
		if rng.Float64() < 0.7 {
			_ = r.Register(lfn, PFN{Site: fmt.Sprintf("s%d", rng.Intn(3)), URL: fmt.Sprintf("u%d", i)})
		}
	}
	bulk := r.BulkLookup(lfns)
	for _, lfn := range lfns {
		single := r.Lookup(lfn)
		got := bulk[lfn]
		if len(single) == 0 {
			if _, present := bulk[lfn]; present {
				t.Fatalf("%s: empty lookup but present in bulk", lfn)
			}
			continue
		}
		if len(got) != len(single) {
			t.Fatalf("%s: bulk %d vs single %d", lfn, len(got), len(single))
		}
		for i := range single {
			if single[i] != got[i] {
				t.Fatalf("%s: replica %d differs", lfn, i)
			}
		}
	}
}
