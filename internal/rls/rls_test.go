package rls

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	"repro/internal/faults"
)

func TestRegisterLookup(t *testing.T) {
	r := New()
	if err := r.Register("f.fit", PFN{Site: "isi", URL: "gridftp://isi/f.fit"}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("f.fit", PFN{Site: "fnal", URL: "gridftp://fnal/f.fit"}); err != nil {
		t.Fatal(err)
	}
	pfns := r.Lookup("f.fit")
	if len(pfns) != 2 {
		t.Fatalf("replicas = %v", pfns)
	}
	if pfns[0].Site != "fnal" || pfns[1].Site != "isi" {
		t.Errorf("order = %v, want sorted by site", pfns)
	}
	if !r.Exists("f.fit") || r.Exists("ghost") {
		t.Error("Exists wrong")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestRegisterValidation(t *testing.T) {
	r := New()
	if err := r.Register("x", PFN{Site: "", URL: "u"}); err == nil {
		t.Error("empty site must fail")
	}
	if err := r.Register("", PFN{Site: "s", URL: "u"}); err == nil {
		t.Error("empty lfn must fail")
	}
	if err := r.Register("x", PFN{Site: "s", URL: ""}); err == nil {
		t.Error("empty url must fail")
	}
}

func TestRegisterIdempotent(t *testing.T) {
	r := New()
	p := PFN{Site: "isi", URL: "u"}
	_ = r.Register("f", p)
	_ = r.Register("f", p)
	if got := r.Lookup("f"); len(got) != 1 {
		t.Errorf("duplicate registration produced %v", got)
	}
}

func TestUnregister(t *testing.T) {
	r := New()
	p1 := PFN{Site: "isi", URL: "u1"}
	p2 := PFN{Site: "isi", URL: "u2"}
	_ = r.Register("f", p1)
	_ = r.Register("f", p2)
	if err := r.Unregister("f", p1); err != nil {
		t.Fatal(err)
	}
	if got := r.Lookup("f"); len(got) != 1 || got[0].URL != "u2" {
		t.Errorf("after unregister: %v", got)
	}
	if !r.Exists("f") {
		t.Error("f still has a replica")
	}
	if err := r.Unregister("f", p2); err != nil {
		t.Fatal(err)
	}
	if r.Exists("f") {
		t.Error("f must be forgotten after last replica")
	}
	if err := r.Unregister("f", p2); err == nil {
		t.Error("double unregister must fail")
	}
	if err := r.Unregister("f", PFN{Site: "ghost", URL: "u"}); err == nil {
		t.Error("unknown site must fail")
	}
}

func TestBulkLookup(t *testing.T) {
	r := New()
	for i := 0; i < 10; i++ {
		_ = r.Register(fmt.Sprintf("f%d", i), PFN{Site: "isi", URL: fmt.Sprintf("u%d", i)})
	}
	got := r.BulkLookup([]string{"f1", "f5", "ghost"})
	if len(got) != 2 {
		t.Fatalf("bulk = %v", got)
	}
	if _, ok := got["ghost"]; ok {
		t.Error("missing LFN must be absent from the bulk result")
	}
}

func TestSitesAndLFNs(t *testing.T) {
	r := New()
	_ = r.Register("b", PFN{Site: "wisc", URL: "u1"})
	_ = r.Register("a", PFN{Site: "isi", URL: "u2"})
	if s := r.Sites(); len(s) != 2 || s[0] != "isi" || s[1] != "wisc" {
		t.Errorf("sites = %v", s)
	}
	if l := r.LFNs(); len(l) != 2 || l[0] != "a" || l[1] != "b" {
		t.Errorf("lfns = %v", l)
	}
	lrc := r.Site("isi")
	if lrc.Site() != "isi" || lrc.Len() != 1 {
		t.Errorf("lrc = %v len %d", lrc.Site(), lrc.Len())
	}
	if got := lrc.LFNs(); len(got) != 1 || got[0] != "a" {
		t.Errorf("lrc lfns = %v", got)
	}
}

func TestConcurrentRegisterLookup(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				lfn := fmt.Sprintf("f%d", i%50)
				_ = r.Register(lfn, PFN{Site: fmt.Sprintf("s%d", g), URL: fmt.Sprintf("u%d-%d", g, i)})
				r.Lookup(lfn)
				r.Exists(lfn)
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 50 {
		t.Errorf("Len = %d, want 50", r.Len())
	}
}

func TestHTTPRoundTrip(t *testing.T) {
	r := New()
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	c := &Client{Base: srv.URL}

	if err := c.Register("f.fit", PFN{Site: "isi", URL: "gridftp://isi/f.fit"}); err != nil {
		t.Fatal(err)
	}
	ok, err := c.Exists("f.fit")
	if err != nil || !ok {
		t.Fatalf("Exists = %v, %v", ok, err)
	}
	ok, err = c.Exists("ghost")
	if err != nil || ok {
		t.Fatalf("Exists(ghost) = %v, %v", ok, err)
	}
	pfns, err := c.Lookup("f.fit")
	if err != nil || len(pfns) != 1 || pfns[0].Site != "isi" {
		t.Fatalf("Lookup = %v, %v", pfns, err)
	}
}

func TestHTTPErrors(t *testing.T) {
	srv := httptest.NewServer(Handler(New()))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/lookup")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("lookup without lfn: %d", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/register")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET register: %d", resp.StatusCode)
	}

	resp, err = http.PostForm(srv.URL+"/register", url.Values{"lfn": {"x"}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("incomplete register: %d", resp.StatusCode)
	}

	resp, err = http.PostForm(srv.URL+"/unregister",
		url.Values{"lfn": {"x"}, "site": {"s"}, "url": {"u"}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unregister missing: %d", resp.StatusCode)
	}
}

func TestHTTPLFNsEndpoint(t *testing.T) {
	r := New()
	_ = r.Register("a", PFN{Site: "s", URL: "u"})
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/lfns")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body strings.Builder
	buf := make([]byte, 256)
	for {
		n, err := resp.Body.Read(buf)
		body.Write(buf[:n])
		if err != nil {
			break
		}
	}
	if !strings.Contains(body.String(), `"a"`) {
		t.Errorf("lfns body = %q", body.String())
	}
}

func BenchmarkRegister(b *testing.B) {
	r := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Register(fmt.Sprintf("f%d", i%1000), PFN{Site: "isi", URL: fmt.Sprintf("u%d", i)})
	}
}

func BenchmarkLookup(b *testing.B) {
	r := New()
	for i := 0; i < 1000; i++ {
		_ = r.Register(fmt.Sprintf("f%d", i), PFN{Site: "isi", URL: fmt.Sprintf("u%d", i)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Lookup(fmt.Sprintf("f%d", i%1000))
	}
}

func BenchmarkBulkLookup561(b *testing.B) {
	r := New()
	lfns := make([]string, 561)
	for i := range lfns {
		lfns[i] = fmt.Sprintf("f%d", i)
		_ = r.Register(lfns[i], PFN{Site: "isi", URL: fmt.Sprintf("u%d", i)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.BulkLookup(lfns)
	}
}

func TestReplicaTextCodec(t *testing.T) {
	r := New()
	_ = r.Register("b.fit", PFN{Site: "isi", URL: "gridftp://isi/b.fit"})
	_ = r.Register("a.fit", PFN{Site: "fnal", URL: "gridftp://fnal/a.fit"})
	_ = r.Register("a.fit", PFN{Site: "isi", URL: "gridftp://isi/a.fit"})

	var buf strings.Builder
	if err := WriteReplicas(r, &buf); err != nil {
		t.Fatal(err)
	}
	r2 := New()
	if err := ReadReplicas(r2, strings.NewReader(buf.String())); err != nil {
		t.Fatal(err)
	}
	if r2.Len() != r.Len() {
		t.Fatalf("round trip lost LFNs: %d vs %d", r2.Len(), r.Len())
	}
	for _, lfn := range r.LFNs() {
		a := r.Lookup(lfn)
		b := r2.Lookup(lfn)
		if len(a) != len(b) {
			t.Fatalf("%s: %d vs %d replicas", lfn, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s replica %d: %v vs %v", lfn, i, a[i], b[i])
			}
		}
	}
}

func TestReadReplicasErrorsAndComments(t *testing.T) {
	r := New()
	ok := "# replica catalog\n\na site url\n"
	if err := ReadReplicas(r, strings.NewReader(ok)); err != nil {
		t.Fatal(err)
	}
	if !r.Exists("a") {
		t.Error("replica not loaded")
	}
	if err := ReadReplicas(New(), strings.NewReader("only two")); err == nil {
		t.Error("short line must fail")
	}
	if err := ReadReplicas(New(), strings.NewReader("a b c d e")); err == nil {
		t.Error("over-long line must fail")
	}
	// Four fields is the checksum-attribute form.
	r4 := New()
	if err := ReadReplicas(r4, strings.NewReader("a site url deadbeef")); err != nil {
		t.Fatalf("checksum line must load: %v", err)
	}
	if sum, ok := r4.Checksum("a"); !ok || sum != "deadbeef" {
		t.Errorf("Checksum = %q, %t", sum, ok)
	}
}

func TestLookupFaultInjection(t *testing.T) {
	r := New()
	if err := r.Register("f.fit", PFN{Site: "isi", URL: "gridftp://isi/f.fit"}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("f.fit", PFN{Site: "fnal", URL: "gridftp://fnal/f.fit"}); err != nil {
		t.Fatal(err)
	}
	// While isi's LRC is down its replicas drop out of the answer; the
	// index (Exists) stays faithful.
	r.SetInjector(faults.New(1,
		faults.Rule{Name: OpLookup, Site: "isi", Kind: faults.KindSiteDown, Until: 1},
	))
	pfns := r.Lookup("f.fit")
	if len(pfns) != 1 || pfns[0].Site != "fnal" {
		t.Fatalf("degraded lookup = %v, want fnal only", pfns)
	}
	if !r.Exists("f.fit") {
		t.Error("index must stay faithful while an LRC is down")
	}
	// Window passed: the full replica set returns.
	if pfns := r.Lookup("f.fit"); len(pfns) != 2 {
		t.Fatalf("recovered lookup = %v", pfns)
	}
	r.SetInjector(nil)
	if pfns := r.Lookup("f.fit"); len(pfns) != 2 {
		t.Fatalf("nil-injector lookup = %v", pfns)
	}
}

func TestRegisterFaultInjection(t *testing.T) {
	r := New()
	r.SetInjector(faults.New(1,
		faults.Rule{Name: OpRegister, Site: "isi", Kind: faults.KindTransient, Until: 1},
	))
	err := r.Register("f.fit", PFN{Site: "isi", URL: "gridftp://isi/f.fit"})
	if !faults.Is(err, faults.KindTransient) {
		t.Fatalf("err = %v, want injected transient", err)
	}
	if r.Exists("f.fit") {
		t.Error("failed registration must not reach the index")
	}
	// Retry after the window succeeds.
	if err := r.Register("f.fit", PFN{Site: "isi", URL: "gridftp://isi/f.fit"}); err != nil {
		t.Fatal(err)
	}
	if len(r.Lookup("f.fit")) != 1 {
		t.Error("recovered registration must be visible")
	}
}
