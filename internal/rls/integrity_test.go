package rls

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestChecksumAttribute(t *testing.T) {
	r := New()
	if _, ok := r.Checksum("g.fit"); ok {
		t.Error("unset checksum must report absent")
	}
	if err := r.SetChecksum("g.fit", "abc123"); err != nil {
		t.Fatal(err)
	}
	if sum, ok := r.Checksum("g.fit"); !ok || sum != "abc123" {
		t.Errorf("Checksum = %q, %t", sum, ok)
	}
	if err := r.SetChecksum("", "x"); !errors.Is(err, ErrBadInput) {
		t.Errorf("empty lfn = %v", err)
	}
	if err := r.SetChecksum("a", ""); !errors.Is(err, ErrBadInput) {
		t.Errorf("empty sum = %v", err)
	}
}

func TestQuarantine(t *testing.T) {
	r := New()
	good := PFN{Site: "fnal", URL: "gridftp://fnal/g.fit"}
	bad := PFN{Site: "isi", URL: "gridftp://isi/g.fit"}
	_ = r.Register("g.fit", good)
	_ = r.Register("g.fit", bad)

	if err := r.Quarantine("g.fit", bad); err != nil {
		t.Fatal(err)
	}
	// The quarantined replica leaves circulation; the healthy one remains.
	pfns := r.Lookup("g.fit")
	if len(pfns) != 1 || pfns[0] != good {
		t.Errorf("Lookup after quarantine = %v", pfns)
	}
	if !r.Exists("g.fit") {
		t.Error("LFN with healthy replicas must still exist")
	}
	q := r.Quarantined("g.fit")
	if len(q) != 1 || q[0] != bad {
		t.Errorf("Quarantined = %v", q)
	}
	if r.QuarantinedCount() != 1 {
		t.Errorf("QuarantinedCount = %d", r.QuarantinedCount())
	}

	// Quarantining the last replica forgets the LFN — until re-derivation
	// re-registers it.
	if err := r.Quarantine("g.fit", good); err != nil {
		t.Fatal(err)
	}
	if r.Exists("g.fit") {
		t.Error("fully-quarantined LFN must not exist")
	}
	if r.QuarantinedCount() != 2 {
		t.Errorf("QuarantinedCount = %d", r.QuarantinedCount())
	}
	_ = r.Register("g.fit", good)
	if !r.Exists("g.fit") {
		t.Error("re-derived LFN must be registered again")
	}

	// Quarantining an unknown replica errors (nothing to pull).
	if err := r.Quarantine("ghost", bad); !errors.Is(err, ErrNotFound) {
		t.Errorf("quarantine unknown = %v", err)
	}
}

func TestBulkLookupHTTP(t *testing.T) {
	r := New()
	_ = r.Register("a.fit", PFN{Site: "isi", URL: "gridftp://isi/a.fit"})
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	c := &Client{Base: srv.URL}

	got, err := c.BulkLookup([]string{"a.fit", "missing"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got["a.fit"]) != 1 {
		t.Errorf("BulkLookup = %v", got)
	}
}

func TestBulkEndpointsRejectGarbageWith400(t *testing.T) {
	srv := httptest.NewServer(Handler(New()))
	defer srv.Close()

	post := func(path, body string) int {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "text/plain", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	for name, body := range map[string]string{
		"not json":        "lfn1 lfn2",
		"json object":     `{"lfn":"x"}`,
		"number array":    `[1,2,3]`,
		"trailing data":   `["a"] ["b"]`,
		"empty lfn":       `["a",""]`,
		"truncated array": `["a",`,
	} {
		if code := post("/bulklookup", body); code != http.StatusBadRequest {
			t.Errorf("bulklookup %s: status %d, want 400", name, code)
		}
	}

	for name, body := range map[string]string{
		"two fields":       "lfn site",
		"five fields":      "a b c d e",
		"huge line":        strings.Repeat("x", 2<<20),
		"bad second line":  "a site url\nbroken",
		"checksum missing": "a site url \nb site",
	} {
		if code := post("/bulkregister", body); code != http.StatusBadRequest {
			t.Errorf("bulkregister %s: status %d, want 400", name, code)
		}
	}

	// A malformed body must register nothing (atomic reject).
	if code := post("/bulkregister", "good site url\nbroken line"); code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", code)
	}
	resp, err := http.Get(srv.URL + "/exists?lfn=good")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf [8]byte
	n, _ := resp.Body.Read(buf[:])
	if strings.TrimSpace(string(buf[:n])) != "false" {
		t.Error("rejected bulk body partially registered")
	}
}

func TestBulkRegisterHTTPRoundTrip(t *testing.T) {
	r := New()
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	c := &Client{Base: srv.URL}

	body := "a.fit isi gridftp://isi/a.fit deadbeef\nb.fit fnal gridftp://fnal/b.fit\n"
	if err := c.BulkRegister(body); err != nil {
		t.Fatal(err)
	}
	if !r.Exists("a.fit") || !r.Exists("b.fit") {
		t.Error("bulk registration lost replicas")
	}
	if sum, ok := r.Checksum("a.fit"); !ok || sum != "deadbeef" {
		t.Errorf("checksum attribute = %q, %t", sum, ok)
	}
	if _, ok := r.Checksum("b.fit"); ok {
		t.Error("b.fit has no checksum attribute")
	}
	if err := c.BulkRegister("garbage"); err == nil {
		t.Error("malformed bulk body must fail")
	}
}

// FuzzReadReplicas drives the text codec with arbitrary bodies: it must
// never panic, every rejection must classify as ErrBadInput (the HTTP 400
// class) or a catalog error, and every accepted body must round-trip
// Write→Read losslessly.
func FuzzReadReplicas(f *testing.F) {
	f.Add("a site url\n")
	f.Add("a site url deadbeef\n")
	f.Add("# comment\n\na site url\n")
	f.Add("only two\n")
	f.Add("a b c d e\n")
	f.Add(strings.Repeat("x", 100))
	f.Add("a site url\x00\n")
	f.Add("\xff\xfe junk")
	f.Fuzz(func(t *testing.T, body string) {
		r := New()
		if err := ReadReplicas(r, strings.NewReader(body)); err != nil {
			if !errors.Is(err, ErrBadInput) {
				t.Errorf("rejection must be a client error, got %v", err)
			}
			return
		}
		// Accepted: dumping and reloading must reproduce the catalog.
		var buf strings.Builder
		if err := WriteReplicas(r, &buf); err != nil {
			t.Fatalf("write after accept: %v", err)
		}
		r2 := New()
		if err := ReadReplicas(r2, strings.NewReader(buf.String())); err != nil {
			t.Fatalf("reload of own dump: %v", err)
		}
		if r2.Len() != r.Len() {
			t.Fatalf("round trip lost LFNs: %d vs %d", r2.Len(), r.Len())
		}
		for _, lfn := range r.LFNs() {
			a, b := r.Lookup(lfn), r2.Lookup(lfn)
			if len(a) != len(b) {
				t.Fatalf("%s: %d vs %d replicas", lfn, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s replica %d: %v vs %v", lfn, i, a[i], b[i])
				}
			}
			sa, oka := r.Checksum(lfn)
			sb, okb := r2.Checksum(lfn)
			if oka != okb || sa != sb {
				t.Fatalf("%s checksum: %q,%t vs %q,%t", lfn, sa, oka, sb, okb)
			}
		}
	})
}
