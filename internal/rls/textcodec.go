package rls

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ReadReplicas loads "lfn site url" triples (one per line; blank lines and
// #-comments ignored) into the service — the bulk-load format the
// pegasus-plan tool and test fixtures use.
func ReadReplicas(r *RLS, src io.Reader) error {
	sc := bufio.NewScanner(src)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return fmt.Errorf("%w: line %d: want 'lfn site url'", ErrBadInput, line)
		}
		if err := r.Register(fields[0], PFN{Site: fields[1], URL: fields[2]}); err != nil {
			return err
		}
	}
	return sc.Err()
}

// WriteReplicas dumps every replica in the text format, deterministically
// (sorted by LFN, then site, then URL). ReadReplicas(WriteReplicas(x))
// reproduces x.
func WriteReplicas(r *RLS, dst io.Writer) error {
	for _, lfn := range r.LFNs() {
		for _, pfn := range r.Lookup(lfn) {
			if _, err := fmt.Fprintf(dst, "%s %s %s\n", lfn, pfn.Site, pfn.URL); err != nil {
				return err
			}
		}
	}
	return nil
}
