package rls

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"
)

// ReadReplicas loads "lfn site url [checksum]" lines (blank lines and
// #-comments ignored) into the service — the bulk-load format the
// pegasus-plan tool and test fixtures use. The optional fourth field records
// the LFN's content-checksum attribute. Every malformed line fails with an
// error wrapping ErrBadInput, so the HTTP front-end can answer 400, never
// 500, to garbage bodies.
func ReadReplicas(r *RLS, src io.Reader) error {
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 && len(fields) != 4 {
			return fmt.Errorf("%w: line %d: want 'lfn site url [checksum]'", ErrBadInput, line)
		}
		if err := r.Register(fields[0], PFN{Site: fields[1], URL: fields[2]}); err != nil {
			return err
		}
		if len(fields) == 4 {
			if err := r.SetChecksum(fields[0], fields[3]); err != nil {
				return fmt.Errorf("%w: line %d: %v", ErrBadInput, line, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return fmt.Errorf("%w: line longer than 1MB", ErrBadInput)
		}
		return err
	}
	return nil
}

// WriteReplicas dumps every replica in the text format, deterministically
// (sorted by LFN, then site, then URL), appending the checksum attribute
// when one is recorded. ReadReplicas(WriteReplicas(x)) reproduces x.
func WriteReplicas(r *RLS, dst io.Writer) error {
	for _, lfn := range r.LFNs() {
		sum, hasSum := r.Checksum(lfn)
		for _, pfn := range r.Lookup(lfn) {
			var err error
			if hasSum {
				_, err = fmt.Fprintf(dst, "%s %s %s %s\n", lfn, pfn.Site, pfn.URL, sum)
			} else {
				_, err = fmt.Fprintf(dst, "%s %s %s\n", lfn, pfn.Site, pfn.URL)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}
