package rls

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"

	"net/url"
	"repro/internal/httpclient"
	"strings"
)

// Handler exposes an RLS over HTTP, mirroring how the prototype's components
// at different institutions shared one replica catalog:
//
//	GET  /lookup?lfn=X          -> JSON array of {site,url}
//	GET  /exists?lfn=X          -> 200 "true" / "false"
//	GET  /lfns                  -> JSON array of logical names
//	POST /register   (form: lfn, site, url)
//	POST /unregister (form: lfn, site, url)
//	POST /bulklookup   (body: JSON array of LFNs) -> JSON map lfn -> replicas
//	POST /bulkregister (body: "lfn site url [checksum]" lines)
//
// Malformed bulk bodies — bad JSON, wrong element types, over-long or
// short-field lines — are client errors and answer 400, never 500.
func Handler(r *RLS) http.Handler {
	mux := http.NewServeMux()

	// maxBulkBody caps bulk request bodies; anything larger is a client
	// error, not a server crash.
	const maxBulkBody = 8 << 20

	mux.HandleFunc("/bulklookup", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		var lfns []string
		dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, maxBulkBody))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&lfns); err != nil {
			http.Error(w, "bad bulk-lookup body: "+err.Error(), http.StatusBadRequest)
			return
		}
		// Trailing garbage after the array is a malformed body too.
		if dec.More() {
			http.Error(w, "bad bulk-lookup body: trailing data", http.StatusBadRequest)
			return
		}
		for _, lfn := range lfns {
			if lfn == "" {
				http.Error(w, "bad bulk-lookup body: empty lfn", http.StatusBadRequest)
				return
			}
		}
		writeJSON(w, r.BulkLookup(lfns))
	})

	mux.HandleFunc("/bulkregister", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		// Parse into a staging catalog first so a malformed line rejects the
		// whole body atomically — no partial registrations on 400.
		staging := New()
		if err := ReadReplicas(staging, http.MaxBytesReader(w, req.Body, maxBulkBody)); err != nil {
			http.Error(w, "bad bulk-register body: "+err.Error(), http.StatusBadRequest)
			return
		}
		for _, lfn := range staging.LFNs() {
			for _, pfn := range staging.Lookup(lfn) {
				if err := r.Register(lfn, pfn); err != nil {
					http.Error(w, err.Error(), http.StatusBadRequest)
					return
				}
			}
			if sum, ok := staging.Checksum(lfn); ok {
				if err := r.SetChecksum(lfn, sum); err != nil {
					http.Error(w, err.Error(), http.StatusBadRequest)
					return
				}
			}
		}
		w.WriteHeader(http.StatusCreated)
	})

	mux.HandleFunc("/lookup", func(w http.ResponseWriter, req *http.Request) {
		lfn := req.URL.Query().Get("lfn")
		if lfn == "" {
			http.Error(w, "missing lfn", http.StatusBadRequest)
			return
		}
		writeJSON(w, r.Lookup(lfn))
	})

	mux.HandleFunc("/exists", func(w http.ResponseWriter, req *http.Request) {
		lfn := req.URL.Query().Get("lfn")
		if lfn == "" {
			http.Error(w, "missing lfn", http.StatusBadRequest)
			return
		}
		fmt.Fprintf(w, "%t", r.Exists(lfn))
	})

	mux.HandleFunc("/lfns", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, r.LFNs())
	})

	mux.HandleFunc("/register", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		lfn, pfn, err := formPFN(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := r.Register(lfn, pfn); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusCreated)
	})

	mux.HandleFunc("/unregister", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		lfn, pfn, err := formPFN(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := r.Unregister(lfn, pfn); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
	})

	return mux
}

func formPFN(req *http.Request) (string, PFN, error) {
	if err := req.ParseForm(); err != nil {
		return "", PFN{}, err
	}
	lfn := req.PostForm.Get("lfn")
	site := req.PostForm.Get("site")
	u := req.PostForm.Get("url")
	if lfn == "" || site == "" || u == "" {
		return "", PFN{}, fmt.Errorf("%w: need lfn, site and url", ErrBadInput)
	}
	return lfn, PFN{Site: site, URL: u}, nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// Client is the HTTP counterpart of *RLS, so components can talk to a remote
// replica service with the same call shapes they use in-process.
type Client struct {
	Base string // e.g. "http://rls.isi.edu:8040"
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return httpclient.Shared()
}

// Lookup fetches the replicas of lfn.
func (c *Client) Lookup(lfn string) ([]PFN, error) {
	resp, err := c.http().Get(c.Base + "/lookup?lfn=" + url.QueryEscape(lfn))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("rls: lookup status %d", resp.StatusCode)
	}
	var pfns []PFN
	if err := json.NewDecoder(resp.Body).Decode(&pfns); err != nil {
		return nil, err
	}
	return pfns, nil
}

// Exists checks whether any replica of lfn is registered.
func (c *Client) Exists(lfn string) (bool, error) {
	resp, err := c.http().Get(c.Base + "/exists?lfn=" + url.QueryEscape(lfn))
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	var buf [8]byte
	n, _ := resp.Body.Read(buf[:])
	return strings.TrimSpace(string(buf[:n])) == "true", nil
}

// BulkLookup resolves many LFNs in one round trip.
func (c *Client) BulkLookup(lfns []string) (map[string][]PFN, error) {
	body, err := json.Marshal(lfns)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Post(c.Base+"/bulklookup", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("rls: bulklookup status %d", resp.StatusCode)
	}
	var out map[string][]PFN
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

// BulkRegister uploads replicas in the "lfn site url [checksum]" text format.
func (c *Client) BulkRegister(body string) error {
	resp, err := c.http().Post(c.Base+"/bulkregister", "text/plain", strings.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("rls: bulkregister status %d", resp.StatusCode)
	}
	return nil
}

// Register records a replica.
func (c *Client) Register(lfn string, pfn PFN) error {
	form := url.Values{"lfn": {lfn}, "site": {pfn.Site}, "url": {pfn.URL}}
	resp, err := c.http().PostForm(c.Base+"/register", form)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("rls: register status %d", resp.StatusCode)
	}
	return nil
}
