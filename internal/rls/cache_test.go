package rls

import (
	"fmt"
	"reflect"
	"testing"
)

func TestCacheReadThroughAndHitAccounting(t *testing.T) {
	r := New()
	if err := r.Register("a.fit", PFN{Site: "isi", URL: "gridftp://isi/a.fit"}); err != nil {
		t.Fatal(err)
	}
	c := NewCache(r)
	base := r.RoundTrips()
	first := c.Lookup("a.fit")
	second := c.Lookup("a.fit")
	if !reflect.DeepEqual(first, second) {
		t.Errorf("cached lookup differs: %v vs %v", first, second)
	}
	if got := r.RoundTrips() - base; got != 1 {
		t.Errorf("two cached lookups cost %d round trips, want 1", got)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = (%d hits, %d misses), want (1, 1)", hits, misses)
	}
}

func TestCacheCachesNegativeLookups(t *testing.T) {
	c := NewCache(New())
	base := c.rls.RoundTrips()
	for i := 0; i < 3; i++ {
		if got := c.Lookup("missing.fit"); len(got) != 0 {
			t.Fatalf("lookup of unregistered LFN returned %v", got)
		}
	}
	if got := c.rls.RoundTrips() - base; got != 1 {
		t.Errorf("repeated negative lookups cost %d round trips, want 1", got)
	}
}

func TestCachePrimeServesSnapshotWithoutRLS(t *testing.T) {
	r := New()
	c := NewCache(r)
	c.Prime(map[string][]PFN{
		"a.fit": {{Site: "isi", URL: "gridftp://isi/a.fit"}},
	})
	base := r.RoundTrips()
	got := c.Lookup("a.fit")
	if len(got) != 1 || got[0].Site != "isi" {
		t.Errorf("primed lookup = %v", got)
	}
	if r.RoundTrips() != base {
		t.Error("primed lookup hit the RLS")
	}
}

// TestCacheNeverResurrectsQuarantinedReplica pins the tentpole's correctness
// contract: after a replica is quarantined and the cache invalidated, no
// lookup — however warm the cache was — may offer the quarantined copy again.
func TestCacheNeverResurrectsQuarantinedReplica(t *testing.T) {
	r := New()
	bad := PFN{Site: "isi", URL: "gridftp://isi/a.fit"}
	good := PFN{Site: "ncsa", URL: "gridftp://ncsa/a.fit"}
	for _, p := range []PFN{bad, good} {
		if err := r.Register("a.fit", p); err != nil {
			t.Fatal(err)
		}
	}
	c := NewCache(r)
	if got := c.Lookup("a.fit"); len(got) != 2 {
		t.Fatalf("warmup lookup = %v, want both replicas", got)
	}

	// The quarantine path: catalog write, then cache invalidation.
	if err := r.Quarantine("a.fit", bad); err != nil {
		t.Fatal(err)
	}
	c.Invalidate("a.fit")

	for i := 0; i < 3; i++ {
		for _, p := range c.Lookup("a.fit") {
			if p.URL == bad.URL {
				t.Fatalf("lookup %d resurrected quarantined replica %v", i, p)
			}
		}
	}
	// Mutating a returned slice must not poison the cache for later callers.
	got := c.Lookup("a.fit")
	if len(got) == 0 {
		t.Fatal("healthy replica vanished")
	}
	got[0] = bad
	for _, p := range c.Lookup("a.fit") {
		if p.URL == bad.URL {
			t.Fatal("caller mutation of a returned slice leaked into the cache")
		}
	}
}

func TestCacheInvalidateThenFreshRead(t *testing.T) {
	r := New()
	c := NewCache(r)
	if got := c.Lookup("b.fit"); len(got) != 0 {
		t.Fatalf("lookup = %v", got)
	}
	// Simulate the register path: catalog write + invalidation.
	if err := r.Register("b.fit", PFN{Site: "isi", URL: "gridftp://isi/b.fit"}); err != nil {
		t.Fatal(err)
	}
	c.Invalidate("b.fit")
	if got := c.Lookup("b.fit"); len(got) != 1 {
		t.Errorf("post-invalidate lookup = %v, want the new replica", got)
	}
}

func TestCacheReset(t *testing.T) {
	r := New()
	c := NewCache(r)
	for i := 0; i < 4; i++ {
		lfn := fmt.Sprintf("f%d.fit", i)
		if err := r.Register(lfn, PFN{Site: "isi", URL: "gridftp://isi/" + lfn}); err != nil {
			t.Fatal(err)
		}
		c.Lookup(lfn)
	}
	c.Reset()
	base := r.RoundTrips()
	c.Lookup("f0.fit")
	if got := r.RoundTrips() - base; got != 1 {
		t.Errorf("post-reset lookup cost %d round trips, want 1 (cache cleared)", got)
	}
}
