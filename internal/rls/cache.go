package rls

import "sync"

// Cache is a small read-through cache in front of an RLS. The planner and
// runner resolve the same LFNs many times per request (reduction, source
// selection, retry failover); the cache answers repeats locally so each
// distinct LFN costs at most one RLS round trip between invalidations.
//
// Correctness rule: any path that removes a replica from circulation — in
// this system, quarantine after a checksum failure — must call Invalidate
// for that LFN, otherwise a stale cached entry could resurrect the bad
// replica. webservice wires Invalidate into its quarantine hook, and
// TestCacheNeverResurrectsQuarantinedReplica pins the contract.
type Cache struct {
	rls *RLS

	mu      sync.RWMutex
	entries map[string][]PFN
	hits    int64
	misses  int64
}

// NewCache returns an empty cache over the given RLS.
func NewCache(r *RLS) *Cache {
	return &Cache{rls: r, entries: map[string][]PFN{}}
}

// Lookup returns the replicas of lfn, from cache when possible. Negative
// results are cached too (an LFN with no replicas stays empty until
// Invalidate), matching planner semantics where absence means "must derive".
func (c *Cache) Lookup(lfn string) []PFN {
	c.mu.RLock()
	pfns, ok := c.entries[lfn]
	c.mu.RUnlock()
	if ok {
		c.mu.Lock()
		c.hits++
		c.mu.Unlock()
		return append([]PFN(nil), pfns...)
	}
	fresh := c.rls.Lookup(lfn)
	c.mu.Lock()
	c.misses++
	c.entries[lfn] = append([]PFN(nil), fresh...)
	c.mu.Unlock()
	return fresh
}

// Prime installs a replica mapping without touching the RLS — used to seed
// the cache from a BulkLookup snapshot so subsequent Lookups are free.
func (c *Cache) Prime(snapshot map[string][]PFN) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for lfn, pfns := range snapshot {
		c.entries[lfn] = append([]PFN(nil), pfns...)
	}
}

// Invalidate drops the cached entry for lfn so the next Lookup re-reads the
// authoritative catalog. Called whenever a replica of lfn is quarantined or
// re-registered.
func (c *Cache) Invalidate(lfn string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.entries, lfn)
}

// Reset clears every entry (a new request plans against fresh state).
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[string][]PFN{}
}

// Stats returns cumulative (hits, misses).
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.hits, c.misses
}
