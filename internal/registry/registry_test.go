package registry

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func sample() *Registry {
	r := New()
	_ = r.Register(Entry{ID: "ivo://mast/dss", Type: TypeSIA, Title: "Digitized Sky Survey",
		DataCenter: "MAST", Collection: "DSS", BaseURL: "http://mast.nvo/sia"})
	_ = r.Register(Entry{ID: "ivo://mast/dss-cone", Type: TypeConeSearch, Title: "DSS catalog",
		DataCenter: "MAST", Collection: "DSS", BaseURL: "http://mast.nvo/cone"})
	_ = r.Register(Entry{ID: "ivo://ipac/ned", Type: TypeConeSearch, Title: "NASA Extragalactic Database",
		DataCenter: "IPAC", Collection: "NED", BaseURL: "http://ned.nvo/cone"})
	_ = r.Register(Entry{ID: "ivo://isi/galmorph", Type: TypeCompute, Title: "Galaxy Morphology",
		DataCenter: "ISI", BaseURL: "http://compute.isi"})
	return r
}

func TestRegisterValidation(t *testing.T) {
	r := New()
	for _, e := range []Entry{
		{},
		{ID: "x", Type: TypeSIA},
		{ID: "x", BaseURL: "u"},
		{Type: TypeSIA, BaseURL: "u"},
	} {
		if err := r.Register(e); err == nil {
			t.Errorf("incomplete entry %+v must fail", e)
		}
	}
	e := Entry{ID: "x", Type: TypeSIA, BaseURL: "u"}
	if err := r.Register(e); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(e); err == nil {
		t.Error("duplicate id must fail")
	}
}

func TestQueryByTypeAndKeyword(t *testing.T) {
	r := sample()
	if got := r.Query("", ""); len(got) != 4 {
		t.Errorf("all = %d", len(got))
	}
	cones := r.Query(TypeConeSearch, "")
	if len(cones) != 2 || cones[0].ID != "ivo://ipac/ned" {
		t.Errorf("cones = %+v", cones)
	}
	if got := r.Query("", "extragalactic"); len(got) != 1 || got[0].DataCenter != "IPAC" {
		t.Errorf("keyword = %+v", got)
	}
	if got := r.Query(TypeSIA, "ned"); len(got) != 0 {
		t.Errorf("mismatched filter = %+v", got)
	}
	if got := r.Query("", "DSS"); len(got) != 2 {
		t.Errorf("case-insensitive keyword = %+v", got)
	}
}

func TestGetUnregister(t *testing.T) {
	r := sample()
	e, err := r.Get("ivo://ipac/ned")
	if err != nil || e.BaseURL != "http://ned.nvo/cone" {
		t.Fatalf("Get = %+v, %v", e, err)
	}
	if _, err := r.Get("ghost"); err == nil {
		t.Error("missing id must fail")
	}
	if err := r.Unregister("ivo://ipac/ned"); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3 {
		t.Errorf("Len = %d", r.Len())
	}
	if err := r.Unregister("ivo://ipac/ned"); err == nil {
		t.Error("double unregister must fail")
	}
}

func TestToVOTable(t *testing.T) {
	tab := ToVOTable(sample().Query("", ""))
	if tab.NumRows() != 4 || tab.NumCols() != 6 {
		t.Fatalf("shape %dx%d", tab.NumRows(), tab.NumCols())
	}
	if tab.Cell(0, "base_url") == "" {
		t.Error("base_url lost")
	}
}

func TestHTTPRoundTrip(t *testing.T) {
	r := sample()
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	c := &Client{Base: srv.URL}

	entries, err := c.Query(TypeConeSearch, "")
	if err != nil || len(entries) != 2 {
		t.Fatalf("Query = %v, %v", entries, err)
	}
	if err := c.Register(Entry{ID: "ivo://new/svc", Type: TypeTableOps, BaseURL: "http://ops"}); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 5 {
		t.Errorf("registry did not grow: %d", r.Len())
	}
	// Registering a duplicate through the client surfaces the error.
	if err := c.Register(Entry{ID: "ivo://new/svc", Type: TypeTableOps, BaseURL: "http://ops"}); err == nil {
		t.Error("duplicate register must fail")
	}
}

func TestHTTPEndpoints(t *testing.T) {
	srv := httptest.NewServer(Handler(sample()))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/query.vot?type=sia")
	if err != nil {
		t.Fatal(err)
	}
	body := read(t, resp)
	if !strings.Contains(body, "<VOTABLE") || !strings.Contains(body, "Digitized Sky Survey") {
		t.Errorf("query.vot body:\n%s", body)
	}

	resp, err = http.Get(srv.URL + "/resource?id=ivo://isi/galmorph")
	if err != nil {
		t.Fatal(err)
	}
	if body := read(t, resp); !strings.Contains(body, "compute.isi") {
		t.Errorf("resource body: %s", body)
	}

	resp, _ = http.Get(srv.URL + "/resource?id=ghost")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing resource = %d", resp.StatusCode)
	}
	resp, _ = http.Get(srv.URL + "/register")
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET register = %d", resp.StatusCode)
	}
	resp, _ = http.Post(srv.URL+"/register", "application/json", strings.NewReader("not json"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad register body = %d", resp.StatusCode)
	}
	resp, _ = http.Post(srv.URL+"/unregister?id=ghost", "", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unregister ghost = %d", resp.StatusCode)
	}
	resp, _ = http.Post(srv.URL+"/unregister?id=ivo://mast/dss", "", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("unregister = %d", resp.StatusCode)
	}
	resp, _ = http.Get(srv.URL + "/unregister?id=x")
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET unregister = %d", resp.StatusCode)
	}
}

func read(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return b.String()
}

func BenchmarkQuery(b *testing.B) {
	r := sample()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := r.Query(TypeConeSearch, "dss"); len(got) != 1 {
			b.Fatal("bad query")
		}
	}
}
