// Package registry implements the NVO resource registry the paper names as
// the most obvious missing infrastructure ("Most obvious is the need for a
// registry of data and service resources. This would allow users to discover
// the relevant data and tools necessary for the study", §5): a catalog of
// data and compute services, queryable by service type and keyword, so a
// portal can discover Cone Search, SIA, cutout and compute endpoints instead
// of having them hard-coded.
//
// Entries follow the shape the later VO Registry standardized: an IVOA-style
// identifier, a service type, a human title, the publishing data center, and
// the base URL to invoke.
package registry

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/httpclient"
	"sort"
	"strings"
	"sync"

	"repro/internal/votable"
)

// ServiceType classifies a registered capability.
type ServiceType string

// Service types known to the prototype.
const (
	TypeConeSearch ServiceType = "conesearch"
	TypeSIA        ServiceType = "sia"
	TypeCutout     ServiceType = "cutout"
	TypeCompute    ServiceType = "compute"
	TypeTableOps   ServiceType = "tableops"
)

// Entry is one registered resource.
type Entry struct {
	ID         string      // e.g. "ivo://mast.nvo/dss"
	Type       ServiceType // capability
	Title      string      // human-readable
	DataCenter string      // publishing institution
	Collection string      // data collection, when applicable
	BaseURL    string      // endpoint to invoke
}

// Errors returned by the registry.
var (
	ErrBadEntry  = errors.New("registry: entry needs id, type and base URL")
	ErrDuplicate = errors.New("registry: duplicate id")
	ErrNotFound  = errors.New("registry: not found")
)

// Registry is a thread-safe resource registry.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]Entry
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{entries: map[string]Entry{}}
}

// Register adds an entry; IDs must be unique.
func (r *Registry) Register(e Entry) error {
	if e.ID == "" || e.Type == "" || e.BaseURL == "" {
		return ErrBadEntry
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[e.ID]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicate, e.ID)
	}
	r.entries[e.ID] = e
	return nil
}

// Unregister removes an entry.
func (r *Registry) Unregister(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[id]; !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	delete(r.entries, id)
	return nil
}

// Get returns the entry with the given ID.
func (r *Registry) Get(id string) (Entry, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[id]
	if !ok {
		return Entry{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return e, nil
}

// Query returns entries matching the given type ("" = any) and keyword
// (case-insensitive substring of title, collection or data center; "" =
// any), sorted by ID.
func (r *Registry) Query(t ServiceType, keyword string) []Entry {
	kw := strings.ToLower(keyword)
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []Entry
	for _, e := range r.entries {
		if t != "" && e.Type != t {
			continue
		}
		if kw != "" {
			hay := strings.ToLower(e.Title + " " + e.Collection + " " + e.DataCenter)
			if !strings.Contains(hay, kw) {
				continue
			}
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of entries.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// ToVOTable renders entries as a VOTable, the way a VO registry responds.
func ToVOTable(entries []Entry) *votable.Table {
	t := votable.NewTable("registry",
		votable.Field{Name: "id", Datatype: votable.TypeChar, UCD: "meta.ref.ivoid"},
		votable.Field{Name: "type", Datatype: votable.TypeChar},
		votable.Field{Name: "title", Datatype: votable.TypeChar},
		votable.Field{Name: "data_center", Datatype: votable.TypeChar},
		votable.Field{Name: "collection", Datatype: votable.TypeChar},
		votable.Field{Name: "base_url", Datatype: votable.TypeChar},
	)
	for _, e := range entries {
		_ = t.AppendRow(e.ID, string(e.Type), e.Title, e.DataCenter, e.Collection, e.BaseURL)
	}
	return t
}

// Handler exposes the registry over HTTP:
//
//	GET  /query?type=sia&keyword=dss          -> JSON array of entries
//	GET  /query.vot?type=...                  -> VOTable
//	GET  /resource?id=ivo://...               -> JSON entry
//	POST /register    (JSON entry body)
//	POST /unregister?id=...
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("/query", func(w http.ResponseWriter, req *http.Request) {
		entries := r.Query(ServiceType(req.URL.Query().Get("type")), req.URL.Query().Get("keyword"))
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(entries)
	})

	mux.HandleFunc("/query.vot", func(w http.ResponseWriter, req *http.Request) {
		entries := r.Query(ServiceType(req.URL.Query().Get("type")), req.URL.Query().Get("keyword"))
		w.Header().Set("Content-Type", "text/xml")
		_ = votable.WriteTable(w, ToVOTable(entries))
	})

	mux.HandleFunc("/resource", func(w http.ResponseWriter, req *http.Request) {
		e, err := r.Get(req.URL.Query().Get("id"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(e)
	})

	mux.HandleFunc("/register", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		var e Entry
		if err := json.NewDecoder(req.Body).Decode(&e); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := r.Register(e); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusCreated)
	})

	mux.HandleFunc("/unregister", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		if err := r.Unregister(req.URL.Query().Get("id")); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
	})

	return mux
}

// Client queries a remote registry.
type Client struct {
	Base string
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return httpclient.Shared()
}

// Query fetches matching entries from the remote registry.
func (c *Client) Query(t ServiceType, keyword string) ([]Entry, error) {
	u := fmt.Sprintf("%s/query?type=%s&keyword=%s", c.Base, t, keyword)
	resp, err := c.http().Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("registry: query status %d", resp.StatusCode)
	}
	var out []Entry
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

// Register publishes an entry to the remote registry.
func (c *Client) Register(e Entry) error {
	body, err := json.Marshal(e)
	if err != nil {
		return err
	}
	resp, err := c.http().Post(c.Base+"/register", "application/json", strings.NewReader(string(body)))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("registry: register status %d", resp.StatusCode)
	}
	return nil
}
