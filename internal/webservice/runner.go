package webservice

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/arena"
	"repro/internal/chimera"
	"repro/internal/condor"
	"repro/internal/dag"
	"repro/internal/dagman"
	"repro/internal/gridftp"
	"repro/internal/morphology"
	"repro/internal/pegasus"
	"repro/internal/resilience"
	"repro/internal/rls"
	"repro/internal/tableops"
	"repro/internal/vdcache"
	"repro/internal/vdl"
	"repro/internal/votable"
)

// breakerOpTransfer is the operation label transfer circuits use in the
// resilience registry.
const breakerOpTransfer = "transfer"

// Execution cost model (model time, charged to the discrete-event clock).
// The paper reports per-galaxy computations as "fairly light" (§2); a few
// seconds per image on 2003 hardware is the right order.
const (
	galMorphBaseCost = 2 * time.Second
	galMorphPerMB    = 1500 * time.Millisecond
	concatBaseCost   = 500 * time.Millisecond
	concatPerRow     = 5 * time.Millisecond
	registerCost     = 100 * time.Millisecond
)

// errInjected marks fault-injection failures (transient; DAGMan retries).
var errInjected = errors.New("webservice: injected transient failure")

// runLabels attaches runtime/pprof labels (tenant, cluster, wave) to every
// node Run body, so CPU and goroutine profiles taken against a busy fabric
// attribute samples to the request that caused them. The label set is cached
// and rebuilt only when the wave changes (setWave is called serially between
// waves by the wave driver), keeping the per-job overhead to one atomic load.
type runLabels struct {
	tenant  string
	cluster string
	set     atomic.Value // pprof.LabelSet
}

// newRunLabels builds the label state for one request. Monolithic (non-wave)
// plans keep the wave label at "-".
func newRunLabels(tenant, cluster string) *runLabels {
	l := &runLabels{tenant: tenant, cluster: cluster}
	l.setWave("-")
	return l
}

// setWave rebuilds the cached label set for a new wave. Callers must not
// invoke it concurrently with itself (the wave driver calls it between
// waves, when no Run bodies execute).
func (l *runLabels) setWave(wave string) {
	l.set.Store(pprof.Labels("tenant", l.tenant, "cluster", l.cluster, "wave", wave))
}

// wrap returns run executed under the current label set.
func (l *runLabels) wrap(run func() error) func() error {
	if run == nil {
		return nil
	}
	return func() error {
		var err error
		pprof.Do(context.Background(), l.set.Load().(pprof.LabelSet), func(context.Context) {
			err = run()
		})
		return err
	}
}

// runner builds the dagman Runner that gives concrete-workflow nodes their
// behaviour: transfers move bytes through GridFTP, registrations publish
// replicas, galMorph jobs measure morphology, and the concat job assembles
// the output VOTable. mu serializes access to stats and rng from inside Run
// closures, which execute concurrently on the worker pool when the service
// is configured with Workers > 1. labels tags every Run body with the
// request's profiler labels; nil skips the wrapping.
func (s *Service) runner(cat *vdl.Catalog, rng *rand.Rand, stats *RunStats, mu *sync.Mutex, labels *runLabels) dagman.Runner {
	return func(n *dag.Node, attempt int) (dagman.Spec, error) {
		var spec dagman.Spec
		switch n.Type {
		case pegasus.NodeTransfer:
			spec = s.transferSpec(n, cat, attempt, stats, mu)
		case pegasus.NodeRegister:
			spec = s.registerSpec(n)
		case pegasus.NodeCompute:
			switch n.Attr(chimera.AttrTransformation) {
			case "galMorph":
				spec = s.galMorphSpec(n, cat, rng, stats, mu)
			case "concatVOT":
				spec = s.concatSpec(n, cat, stats, mu)
			default:
				return dagman.Spec{}, fmt.Errorf("webservice: unknown transformation %q",
					n.Attr(chimera.AttrTransformation))
			}
		default:
			return dagman.Spec{}, fmt.Errorf("webservice: unknown node type %q", n.Type)
		}
		if labels != nil {
			spec.Run = labels.wrap(spec.Run)
		}
		return spec, nil
	}
}

func (s *Service) transferSpec(n *dag.Node, cat *vdl.Catalog, attempt int, stats *RunStats, mu *sync.Mutex) dagman.Spec {
	lfn := n.Attr(pegasus.AttrLFN)
	src := s.pickTransferSource(lfn, n.Attr(pegasus.AttrSrcURL), attempt, stats)
	dst := n.Attr(pegasus.AttrDstURL)
	srcSite, _, _ := gridftp.ParseURL(src)
	return dagman.Spec{
		Cost: s.cfg.GridFTP.Estimate(src, dst),
		// Transfers ride the dedicated data-movement lane (when the pools
		// have one) so stage-ins overlap computation, and cluster by source
		// site to amortize submission overhead across a site's stage-ins.
		Lane:       condor.LaneTransfer,
		ClusterKey: "transfer@" + srcSite,
		Run: func() error {
			// Per-request accounting happens here rather than by diffing
			// the global GridFTP counters, so concurrent requests do not
			// pollute each other's numbers. Run bodies execute concurrently
			// when the service runs with Workers > 1, hence the mutex around
			// the shared per-request counters.
			res, err := s.cfg.GridFTP.Transfer(src, dst)
			s.cfg.Breakers.Record(srcSite, breakerOpTransfer, err)
			if err != nil {
				if resilience.Classify(err) == resilience.ClassAlternateReplica {
					// The source replica is damaged at rest: retrying this
					// URL can never succeed. Quarantine it and deliver the
					// content another way — alternate replica or provenance
					// re-derivation — healing the source so the catalog
					// converges.
					s.quarantineReplica(lfn, srcSite, src, stats, mu)
					content, rerr := s.recoverContent(cat, lfn, srcSite, stats, mu)
					if rerr != nil {
						return err
					}
					dstSite, dstPath, perr := gridftp.ParseURL(dst)
					if perr != nil {
						return perr
					}
					if err := s.cfg.GridFTP.Store(dstSite).Put(dstPath, content); err != nil {
						return err
					}
					if err := s.healSource(srcSite, src, lfn, content); err != nil {
						return err
					}
					mu.Lock()
					stats.FilesStaged++
					stats.BytesStaged += int64(len(content))
					mu.Unlock()
					return nil
				}
				return err
			}
			mu.Lock()
			stats.FilesStaged++
			stats.BytesStaged += res.Bytes
			mu.Unlock()
			return nil
		},
	}
}

// healSource overwrites a quarantined source replica with recovered content
// and re-registers it, restoring the catalog to full replication.
func (s *Service) healSource(srcSite, srcURL, lfn string, content []byte) error {
	_, srcPath, err := gridftp.ParseURL(srcURL)
	if err != nil {
		return nil // unparseable planned URL: nothing to heal
	}
	if err := s.cfg.GridFTP.Store(srcSite).Put(srcPath, content); err != nil {
		return err
	}
	return s.registerReplica(lfn, rls.PFN{Site: srcSite, URL: srcURL})
}

// pickTransferSource chooses the physical source for one transfer attempt.
// The planned URL is first choice; retries rotate through the LFN's other
// registered replicas, and any candidate whose (site, transfer) circuit is
// open is skipped — the failover path Pegasus's replica selection enables.
// When every circuit is open the planned source is used anyway: failing
// concretely beats refusing to try.
func (s *Service) pickTransferSource(lfn, planned string, attempt int, stats *RunStats) string {
	if attempt <= 1 && s.cfg.Breakers == nil {
		return planned
	}
	urls := []string{planned}
	for _, p := range s.replicas.Lookup(lfn) { // sorted: deterministic rotation
		if p.URL != planned {
			urls = append(urls, p.URL)
		}
	}
	start := (attempt - 1) % len(urls)
	for i := 0; i < len(urls); i++ {
		u := urls[(start+i)%len(urls)]
		site, _, err := gridftp.ParseURL(u)
		if err != nil {
			continue
		}
		if !s.cfg.Breakers.Allow(site, breakerOpTransfer) {
			continue
		}
		if u != planned {
			stats.Failovers++
		}
		return u
	}
	return planned
}

func (s *Service) registerSpec(n *dag.Node) dagman.Spec {
	lfn := n.Attr(pegasus.AttrLFN)
	site := n.Attr(pegasus.AttrSite)
	pfn := n.Attr(pegasus.AttrPFN)
	return dagman.Spec{
		Cost: registerCost,
		// Registrations are catalog writes with no data dependency on each
		// other: batch them per target site.
		ClusterKey: "register@" + site,
		Run: func() error {
			return s.registerReplica(lfn, rls.PFN{Site: site, URL: pfn})
		},
	}
}

// memoEntry is one cached galMorph derivation: the measurement (or the
// failure reason, which never embeds the galaxy identity — fits and
// morphology errors describe the data, not the LFN — so entries transfer
// across galaxies with identical image content).
type memoEntry struct {
	params morphology.Params
	errStr string
}

// streamResultsTable drains a spool of result rows (keyed on the galaxy ID
// cell) into w as the cluster's output VOTable document — byte-identical to
// WriteTable over resultsToVOTable, without ever holding the rows in one
// table.
func streamResultsTable(w io.Writer, cluster string, sp *tableops.Spool) error {
	enc := votable.NewEncoder(w)
	meta := resultsMeta(cluster, sp.Len())
	if err := enc.BeginDocument(""); err != nil {
		return err
	}
	if err := enc.BeginResource(meta.Name); err != nil {
		return err
	}
	if err := enc.BeginTable(meta); err != nil {
		return err
	}
	if err := sp.Merge(func(cells []string) error { return enc.Row(cells) }); err != nil {
		return err
	}
	if err := enc.EndTable(); err != nil {
		return err
	}
	if err := enc.EndResource(); err != nil {
		return err
	}
	return enc.End()
}

// morphFingerprint renders the measurement parameters that, together with
// the image content, determine a galMorph result.
func morphFingerprint(cfg morphology.Config) string {
	return fmt.Sprintf("galMorph|z=%g|scale=%g|zp=%g|H0=%g|om=%g|flat=%t",
		cfg.Redshift, cfg.PixScaleDeg, cfg.ZeroPoint,
		cfg.Cosmology.H0, cfg.Cosmology.OmegaM, cfg.Cosmology.Flat)
}

// galMorphSpec runs one galaxy's morphology measurement at its mapped site.
// Measurements are memoized in the service's virtual-data cache under
// (image content hash, measurement parameters): Measure is deterministic, so
// a warm hit reproduces the cold result byte-for-byte while skipping the
// decode and measurement entirely. The output file is still written and
// registered through the normal register nodes, publishing the cached
// product through the RLS as a replica of the derivation's output LFN.
func (s *Service) galMorphSpec(n *dag.Node, cat *vdl.Catalog, rng *rand.Rand, stats *RunStats, mu *sync.Mutex) dagman.Spec {
	site := n.Attr(pegasus.AttrSite)
	inputs := chimera.SplitLFNs(n.Attr(chimera.AttrInputs))
	outputs := chimera.SplitLFNs(n.Attr(chimera.AttrOutputs))
	dvName := n.Attr(chimera.AttrDerivation)

	// Cost scales with the staged image size.
	var cost = galMorphBaseCost
	if len(inputs) == 1 {
		sz := s.cfg.GridFTP.Store(site).Size(inputs[0])
		cost += time.Duration(float64(sz) / 1e6 * float64(galMorphPerMB))
	}

	return dagman.Spec{
		Cost: cost,
		// Leaf measurements are the small independent jobs horizontal
		// clustering exists for; batch them per mapped site.
		ClusterKey: "galmorph@" + site,
		Run: func() error {
			mu.Lock()
			injected := s.cfg.FailureRate > 0 && rng.Float64() < s.cfg.FailureRate
			mu.Unlock()
			if injected {
				return errInjected
			}
			if len(inputs) != 1 || len(outputs) != 1 {
				return fmt.Errorf("webservice: galMorph expects 1 input and 1 output, got %v -> %v", inputs, outputs)
			}
			dv, ok := cat.Derivation(dvName)
			if !ok {
				return fmt.Errorf("webservice: derivation %q vanished", dvName)
			}
			store := s.cfg.GridFTP.Store(site)
			// Pre-consumption integrity gate: never measure damaged pixels.
			raw, err := s.verifiedGet(cat, store, inputs[0], stats, mu)
			if err != nil {
				return err
			}
			galaxyID := strings.TrimSuffix(inputs[0], ".fit")
			mcfg := morphConfigFromDV(dv)

			// One request-lifetime arena backs both the measurement scratch
			// (pixel buffer, background samples) and the encoded result
			// below; Put recycles its slabs for the next galaxy on this
			// worker, so a warm fabric measures without per-galaxy heap
			// traffic.
			ar := arena.Get()
			defer arena.Put(ar)

			var p morphology.Params
			key := vdcache.Key(raw, []byte(morphFingerprint(mcfg)))
			if entry, hit := s.memo.Get(key); hit {
				p = entry.params
				err = nil
				if entry.errStr != "" {
					err = errors.New(entry.errStr)
				}
				mu.Lock()
				stats.MemoHits++
				mu.Unlock()
			} else {
				p, err = morphology.MeasureRaw(ar, raw, mcfg)
				entry := memoEntry{params: p}
				if err != nil {
					entry.errStr = err.Error()
				}
				s.memo.Put(key, entry)
				mu.Lock()
				stats.MemoMisses++
				mu.Unlock()
			}

			res := GalMorphResult{ID: galaxyID}
			if err == nil && p.Valid {
				res.Valid = true
				res.SurfaceBrightness = p.SurfaceBrightness
				res.Concentration = p.Concentration
				res.Asymmetry = p.Asymmetry
			}
			if err != nil {
				// The paper's fault-tolerance design (§4.3.1 item 4): flag
				// the galaxy invalid instead of failing the workflow —
				// unless the strict-faults ablation asks for the rejected
				// alternative (in which case the memo is disabled and err
				// is always the live measurement error).
				if s.cfg.StrictFaults {
					return err
				}
				res.Valid = false
				res.Reason = err.Error()
				mu.Lock()
				stats.InvalidRows++
				mu.Unlock()
			}
			// Store.Put copies its argument, so handing it arena-backed
			// bytes is safe; appendResult renders byte-identically to the
			// historical fmt-based encoder.
			return store.Put(outputs[0], appendResult(ar.Bytes(192)[:0], res))
		},
	}
}

// concatSpec assembles the per-galaxy results into the output VOTable. Every
// input is integrity-verified before it is trusted; a corrupted result file
// is quarantined and re-derived from its galaxy image via provenance. The
// rows are sorted through a spill-to-disk spool and streamed into the
// encoder, so sorting memory stays bounded no matter how many galaxies the
// cluster holds; the bytes written are identical to the historical
// resultsToVOTable+WriteTable path.
func (s *Service) concatSpec(n *dag.Node, cat *vdl.Catalog, stats *RunStats, mu *sync.Mutex) dagman.Spec {
	site := n.Attr(pegasus.AttrSite)
	inputs := chimera.SplitLFNs(n.Attr(chimera.AttrInputs))
	outputs := chimera.SplitLFNs(n.Attr(chimera.AttrOutputs))
	cluster := strings.TrimSuffix(n.Attr(chimera.AttrDerivation), ".vot")
	cluster = strings.TrimPrefix(cluster, "collect-")

	return dagman.Spec{
		Cost: concatBaseCost + time.Duration(len(inputs))*concatPerRow,
		Run: func() (retErr error) {
			if len(outputs) != 1 {
				return fmt.Errorf("webservice: concat expects 1 output, got %v", outputs)
			}
			store := s.cfg.GridFTP.Store(site)
			// The arena must outlive the spool's rows: Put is deferred first
			// so it runs after the spool Close below (deferred calls run in
			// LIFO order).
			ar := arena.Get()
			defer arena.Put(ar)
			sp := tableops.NewSpoolIn(ar, 0, 0) // key on the galaxy ID cell
			defer func() {
				if cerr := sp.Close(); cerr != nil && retErr == nil {
					retErr = cerr
				}
			}()
			// One reused cell buffer feeds every Add; the spool copies rows
			// into arena-backed storage, recycling spilled rows' slots.
			row := ar.Strings(len(ResultFields))
			for _, lfn := range inputs {
				data, err := s.verifiedGet(cat, store, lfn, stats, mu)
				if err != nil {
					return err
				}
				r, err := decodeResult(data)
				if err != nil {
					return err
				}
				resultCellsInto(row, r)
				if err := sp.Add(row...); err != nil {
					return err
				}
			}
			var buf bytes.Buffer
			if err := streamResultsTable(&buf, cluster, sp); err != nil {
				return err
			}
			return store.Put(outputs[0], buf.Bytes())
		},
	}
}
