package webservice

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/arena"
	"repro/internal/gridftp"
	"repro/internal/morphology"
	"repro/internal/resilience"
	"repro/internal/rls"
	"repro/internal/vdl"
	"repro/internal/votable"
)

// errNoRecovery marks a corrupted replica with neither a healthy alternate
// nor provenance to re-derive from.
var errNoRecovery = errors.New("webservice: no healthy replica and no provenance to re-derive from")

// quarantineReplica pulls one failed replica out of the RLS and counts it.
// An unregistered replica (already quarantined by a concurrent node, or never
// published) is not an error — the goal is merely that nobody is offered it
// again.
func (s *Service) quarantineReplica(lfn, site, url string, stats *RunStats, mu *sync.Mutex) {
	err := s.cfg.RLS.Quarantine(lfn, rls.PFN{Site: site, URL: url})
	// Drop the cached replica set BEFORE anyone can re-read it: a stale
	// cache entry must never offer the quarantined copy again.
	s.replicas.Invalidate(lfn)
	mu.Lock()
	stats.ChecksumFailures++
	if err == nil {
		stats.Quarantined++
	}
	mu.Unlock()
}

// recoverContent produces intact bytes for lfn after its replica at
// excludeSite failed verification: first from any other registered replica
// that verifies (quarantining the ones that do not), then by re-deriving the
// file from its Chimera provenance. This is the "quarantine and re-derive
// instead of failing the run" path of the integrity design.
func (s *Service) recoverContent(cat *vdl.Catalog, lfn, excludeSite string, stats *RunStats, mu *sync.Mutex) ([]byte, error) {
	for _, p := range s.replicas.Lookup(lfn) { // sorted: deterministic order
		if p.Site == excludeSite {
			continue
		}
		site, path, err := gridftp.ParseURL(p.URL)
		if err != nil {
			continue
		}
		st := s.cfg.GridFTP.Store(site)
		if verr := st.Verify(path); verr != nil {
			if resilience.Classify(verr) == resilience.ClassAlternateReplica {
				s.quarantineReplica(lfn, p.Site, p.URL, stats, mu)
			}
			continue
		}
		data, err := st.Get(path)
		if err != nil {
			continue
		}
		mu.Lock()
		stats.Failovers++
		mu.Unlock()
		return data, nil
	}
	return s.rederive(cat, lfn, stats, mu)
}

// rederive re-executes the derivation that produced lfn, using the request's
// Chimera catalog as the provenance record. Raw archive images have no
// producing derivation and cannot be re-derived — only replicas can save
// those — but every derived product (per-galaxy measurements, the output
// VOTable) is reproducible: the transformations are deterministic, so the
// re-derived bytes equal the lost ones exactly.
func (s *Service) rederive(cat *vdl.Catalog, lfn string, stats *RunStats, mu *sync.Mutex) ([]byte, error) {
	producers := cat.Producers(lfn)
	if len(producers) == 0 {
		return nil, fmt.Errorf("%w: %s", errNoRecovery, lfn)
	}
	dv, ok := cat.Derivation(producers[0])
	if !ok {
		return nil, fmt.Errorf("%w: %s", errNoRecovery, lfn)
	}
	var content []byte
	var err error
	switch dv.TR {
	case "galMorph":
		content, err = s.rederiveGalMorph(cat, dv, stats, mu)
	case "concatVOT":
		content, err = s.rederiveConcat(cat, dv, stats, mu)
	default:
		return nil, fmt.Errorf("%w: %s (unknown transformation %q)", errNoRecovery, lfn, dv.TR)
	}
	if err != nil {
		return nil, err
	}
	mu.Lock()
	stats.Rederived++
	mu.Unlock()
	return content, nil
}

// inputBytes fetches one input LFN for a re-derivation, itself going through
// replica verification and (recursively) re-derivation.
func (s *Service) inputBytes(cat *vdl.Catalog, lfn string, stats *RunStats, mu *sync.Mutex) ([]byte, error) {
	for _, p := range s.replicas.Lookup(lfn) {
		site, path, err := gridftp.ParseURL(p.URL)
		if err != nil {
			continue
		}
		st := s.cfg.GridFTP.Store(site)
		if verr := st.Verify(path); verr != nil {
			if resilience.Classify(verr) == resilience.ClassAlternateReplica {
				s.quarantineReplica(lfn, p.Site, p.URL, stats, mu)
			}
			continue
		}
		if data, err := st.Get(path); err == nil {
			return data, nil
		}
	}
	return s.rederive(cat, lfn, stats, mu)
}

// rederiveGalMorph re-runs one galaxy's measurement from its image. The
// measurement is deterministic, so the result file is byte-identical to the
// one the workflow originally produced.
func (s *Service) rederiveGalMorph(cat *vdl.Catalog, dv *vdl.Derivation, stats *RunStats, mu *sync.Mutex) ([]byte, error) {
	inputs := dv.InputLFNs()
	outputs := dv.OutputLFNs()
	if len(inputs) != 1 || len(outputs) != 1 {
		return nil, fmt.Errorf("webservice: rederive %s: want 1 input and 1 output", dv.Name)
	}
	raw, err := s.inputBytes(cat, inputs[0], stats, mu)
	if err != nil {
		return nil, err
	}
	res := measureGalaxy(strings.TrimSuffix(inputs[0], ".fit"), raw, morphConfigFromDV(dv), s.cfg.StrictFaults)
	if res == nil {
		return nil, fmt.Errorf("webservice: rederive %s: measurement failed under strict faults", dv.Name)
	}
	if !res.Valid {
		mu.Lock()
		stats.InvalidRows++
		mu.Unlock()
	}
	return encodeResult(*res), nil
}

// rederiveConcat re-assembles the output VOTable from the per-galaxy results.
func (s *Service) rederiveConcat(cat *vdl.Catalog, dv *vdl.Derivation, stats *RunStats, mu *sync.Mutex) ([]byte, error) {
	outputs := dv.OutputLFNs()
	if len(outputs) != 1 {
		return nil, fmt.Errorf("webservice: rederive %s: want 1 output", dv.Name)
	}
	cluster := strings.TrimSuffix(outputs[0], ".vot")
	inputs := dv.InputLFNs()
	results := make([]GalMorphResult, 0, len(inputs))
	for _, lfn := range inputs {
		data, err := s.inputBytes(cat, lfn, stats, mu)
		if err != nil {
			return nil, err
		}
		r, err := decodeResult(data)
		if err != nil {
			return nil, err
		}
		results = append(results, r)
	}
	tab := resultsToVOTable(cluster, results)
	var buf bytes.Buffer
	if err := votable.WriteTable(&buf, tab); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// measureGalaxy runs the deterministic morphology measurement on raw image
// bytes, returning the result row. Under strict faults a failed measurement
// returns nil (the caller must fail); otherwise failures become
// validity-flagged rows, exactly as in the live galMorph job.
func measureGalaxy(galaxyID string, raw []byte, mcfg morphology.Config, strict bool) *GalMorphResult {
	res := GalMorphResult{ID: galaxyID}
	ar := arena.Get()
	p, err := morphology.MeasureRaw(ar, raw, mcfg)
	arena.Put(ar)
	if err == nil && p.Valid {
		res.Valid = true
		res.SurfaceBrightness = p.SurfaceBrightness
		res.Concentration = p.Concentration
		res.Asymmetry = p.Asymmetry
	}
	if err != nil {
		if strict {
			return nil
		}
		res.Valid = false
		res.Reason = err.Error()
	}
	return &res
}

// verifiedGet reads lfn from store for a consuming leaf job, verifying
// integrity first — Condor's pre-consumption check. A checksum failure
// quarantines the local replica, recovers the content (alternate replica or
// provenance re-derivation), heals the local copy, and re-registers it, so
// the job proceeds with intact bytes and the catalog converges back to
// health.
func (s *Service) verifiedGet(cat *vdl.Catalog, store *gridftp.Store, lfn string, stats *RunStats, mu *sync.Mutex) ([]byte, error) {
	verr := store.Verify(lfn)
	if verr == nil {
		return store.Get(lfn)
	}
	if resilience.Classify(verr) != resilience.ClassAlternateReplica {
		return nil, verr
	}
	site := store.Site()
	s.quarantineReplica(lfn, site, gridftp.URL(site, lfn), stats, mu)
	content, rerr := s.recoverContent(cat, lfn, site, stats, mu)
	if rerr != nil {
		return nil, verr
	}
	if err := store.Put(lfn, content); err != nil {
		return nil, err
	}
	if err := s.registerReplica(lfn, rls.PFN{Site: site, URL: gridftp.URL(site, lfn)}); err != nil {
		return nil, err
	}
	return content, nil
}
