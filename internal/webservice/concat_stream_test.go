package webservice

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/tableops"
	"repro/internal/votable"
)

// TestStreamedConcatByteIdentical pins the spill-to-disk concat path
// against the in-memory resultsToVOTable+WriteTable path, with enough rows
// to force multiple run-file spills.
func TestStreamedConcatByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var results []GalMorphResult
	for i := 0; i < 300; i++ {
		r := GalMorphResult{
			ID:                fmt.Sprintf("COMA-%03d-%03d", rng.Intn(1000), i),
			SurfaceBrightness: rng.Float64() * 25,
			Concentration:     rng.Float64() * 5,
			Asymmetry:         rng.Float64(),
			Valid:             rng.Intn(4) != 0,
		}
		if !r.Valid {
			r.Reason = "injected"
		}
		results = append(results, r)
	}

	var want bytes.Buffer
	tab := resultsToVOTable("COMA", append([]GalMorphResult(nil), results...))
	if err := votable.WriteTable(&want, tab); err != nil {
		t.Fatal(err)
	}

	sp := tableops.NewSpool(0, 16) // tiny batches: ~19 spilled runs
	defer sp.Close()
	for _, r := range results {
		if err := sp.Add(resultCells(r)...); err != nil {
			t.Fatal(err)
		}
	}
	var got bytes.Buffer
	if err := streamResultsTable(&got, "COMA", sp); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("streamed concat output diverges from the in-memory path")
	}
}
