package webservice

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"
)

// fmtEncodeResult is the frozen PR-1 rendering of a result file. The live
// appendResult must reproduce it byte-for-byte: result files feed content
// hashes (memo keys, integrity digests), so a single diverging byte would
// quietly invalidate every historical digest.
func fmtEncodeResult(r GalMorphResult) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "id %s\n", r.ID)
	fmt.Fprintf(&b, "surface_brightness %g\n", r.SurfaceBrightness)
	fmt.Fprintf(&b, "concentration %g\n", r.Concentration)
	fmt.Fprintf(&b, "asymmetry %g\n", r.Asymmetry)
	fmt.Fprintf(&b, "valid %t\n", r.Valid)
	if r.Reason != "" {
		fmt.Fprintf(&b, "reason %s\n", strings.ReplaceAll(r.Reason, "\n", " "))
	}
	return b.Bytes()
}

func TestAppendResultMatchesFmt(t *testing.T) {
	cases := []GalMorphResult{
		{ID: "g001", SurfaceBrightness: 21.375, Concentration: 3.2, Asymmetry: 0.04, Valid: true},
		{ID: "g002", SurfaceBrightness: -1.5e-9, Concentration: 1e21, Asymmetry: 0.3333333333333333, Valid: true},
		{ID: "g003", Valid: false, Reason: "morphology: no significant flux above background"},
		{ID: "g004", Valid: false, Reason: "line one\nline two\nline three"},
		{ID: "g005", SurfaceBrightness: math.Inf(1), Concentration: math.NaN(), Asymmetry: -0.0, Valid: true},
		{ID: "g006", SurfaceBrightness: 100000, Concentration: 1000000, Asymmetry: 0.000001, Valid: true},
		{},
	}
	for i, r := range cases {
		want := fmtEncodeResult(r)
		got := appendResult(nil, r)
		if !bytes.Equal(got, want) {
			t.Errorf("case %d: appendResult diverged:\nwant %q\ngot  %q", i, want, got)
		}
		if !bytes.Equal(encodeResult(r), want) {
			t.Errorf("case %d: encodeResult diverged from frozen rendering", i)
		}
		// Appending after existing content must not disturb it.
		pre := append([]byte("prefix|"), appendResult(make([]byte, 0, 256), r)...)
		if !bytes.Equal(pre[7:], want) {
			t.Errorf("case %d: appendResult onto sized buffer diverged", i)
		}
	}
}

func TestResultCellsIntoMatchesResultCells(t *testing.T) {
	cases := []GalMorphResult{
		{ID: "a", SurfaceBrightness: 21.4, Concentration: 3.01, Asymmetry: 0.12, Valid: true},
		{ID: "b", Valid: false, Reason: "bad pixels"},
		{ID: "c", SurfaceBrightness: -0.5, Concentration: 1e-7, Asymmetry: 12345.678, Valid: true},
	}
	row := make([]string, len(ResultFields))
	for i, r := range cases {
		want := resultCells(r)
		resultCellsInto(row, r)
		if len(want) != len(row) {
			t.Fatalf("case %d: width %d != %d", i, len(row), len(want))
		}
		for j := range want {
			if row[j] != want[j] {
				t.Errorf("case %d cell %d: %q != %q", i, j, row[j], want[j])
			}
		}
	}
}
