package webservice

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"

	"repro/internal/dag"
	"repro/internal/dagman"
	"repro/internal/fabric"
	"repro/internal/journal"
	"repro/internal/pegasus"
	"repro/internal/vdl"
	"repro/internal/votable"
)

// waveSourceFor mirrors buildVDL's derivation structure — one galMorph job
// per galaxy plus the concatVOT collector — as a lazy pegasus.WaveSource, so
// the survey-scale path never materializes a per-galaxy job list beyond the
// (id, acref) staging refs it already holds.
func waveSourceFor(refs []imageRef, cluster string) pegasus.WaveSource {
	inputs := make([]string, len(refs))
	for i, r := range refs {
		inputs[i] = r.id + ".txt"
	}
	return pegasus.WaveSource{
		Jobs: len(refs),
		Job: func(i int) pegasus.WaveJob {
			id := refs[i].id
			return pegasus.WaveJob{
				ID:             "m-" + id,
				Transformation: "galMorph",
				Inputs:         []string{id + ".fit"},
				Outputs:        []string{id + ".txt"},
			}
		},
		Collector: pegasus.WaveJob{
			ID:             "collect-" + cluster,
			Transformation: "concatVOT",
			Inputs:         inputs,
			Outputs:        []string{outputLFN(cluster)},
		},
	}
}

// writeWaveManifest persists the wave decomposition of one request: the wave
// size and the ordered (id, acref) galaxy list — everything a resume needs to
// rebuild the exact wave sequence (and restage missing images) without the
// original input table. The manifest replaces the classic .dag artifact,
// which would be unbounded at survey scale.
func writeWaveManifest(path string, waveSize int, refs []imageRef) error {
	var b strings.Builder
	fmt.Fprintf(&b, "wave_size %d\n", waveSize)
	for _, r := range refs {
		if strings.ContainsAny(r.id, "\t\n") || strings.ContainsAny(r.acref, "\t\n") {
			return fmt.Errorf("webservice: galaxy %q/%q not manifest-safe", r.id, r.acref)
		}
		fmt.Fprintf(&b, "%s\t%s\n", r.id, r.acref)
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// readWaveManifest reloads a wave manifest.
func readWaveManifest(path string) (int, []imageRef, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, nil, err
	}
	defer f.Close() //nvolint:ignore errclose read-only manifest; decode errors surface via the scanner
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	if !sc.Scan() {
		return 0, nil, fmt.Errorf("webservice: wave manifest %s: empty", path)
	}
	sizeStr, ok := strings.CutPrefix(sc.Text(), "wave_size ")
	if !ok {
		return 0, nil, fmt.Errorf("webservice: wave manifest %s: bad header %q", path, sc.Text())
	}
	waveSize, err := strconv.Atoi(sizeStr)
	if err != nil || waveSize <= 0 {
		return 0, nil, fmt.Errorf("webservice: wave manifest %s: bad wave size %q", path, sizeStr)
	}
	var refs []imageRef
	for sc.Scan() {
		id, acref, found := strings.Cut(sc.Text(), "\t")
		if !found || id == "" {
			return 0, nil, fmt.Errorf("webservice: wave manifest %s: bad line %q", path, sc.Text())
		}
		refs = append(refs, imageRef{id: id, acref: acref})
	}
	if err := sc.Err(); err != nil {
		return 0, nil, err
	}
	return waveSize, refs, nil
}

// computeWaves is the survey-scale §4.3 pipeline: instead of staging every
// image and planning one monolithic concrete DAG, the request is cut into
// waves of Config.WaveSize galaxies. Each wave stages only its own images,
// plans through the ordinary Pegasus pipeline, executes to completion, and is
// discarded before the next wave is planned — peak image-staging and
// planner/scheduler memory are bounded by the wave. The final wave runs the
// concatenating job at a deterministic collector site the leaf waves
// delivered their results to, producing output bytes identical to the
// classic path.
func (s *Service) computeWaves(ctx context.Context, lease *fabric.Lease, tab *votable.Table,
	cluster, tenant string, stats *RunStats, onProgress func(done, total int)) (_ string, retErr error) {
	// The VDL is still rendered and parsed whole, exactly as on the classic
	// path: the runner reconstructs measurement configs from its derivations,
	// the integrity layer re-derives damaged files from its provenance, and
	// the persisted .vdl keeps resume artifacts identical across modes.
	vdlText, err := buildVDL(tab, cluster)
	if err != nil {
		return "", err
	}
	cat, err := vdl.Parse(vdlText)
	if err != nil {
		return "", fmt.Errorf("webservice: generated VDL invalid: %w", err)
	}

	refs := imageRefsFromTable(tab)
	seed := s.requestSeed(cluster)
	planner, err := pegasus.NewWavePlanner(waveSourceFor(refs, cluster), s.planConfig(), s.cfg.WaveSize, seed)
	if err != nil {
		return "", err
	}

	opts := dagman.Options{
		MaxRetries:    s.cfg.MaxRetries,
		ClusterSize:   s.cfg.ClusterSize,
		MaxInFlightFn: lease.JobAllowance,
		Check:         abortCheck(ctx, lease),
	}
	if s.cfg.RetryPolicy != nil {
		opts.RetryPolicy = s.cfg.RetryPolicy.DAGManPolicy()
	}

	var jw *journal.Writer
	if s.cfg.JournalDir != "" {
		if err := os.MkdirAll(s.cfg.JournalDir, 0o755); err != nil {
			return "", err
		}
		if err := os.WriteFile(s.vdlPath(tenant, cluster), []byte(vdlText), 0o644); err != nil {
			return "", err
		}
		if err := writeWaveManifest(s.wavesPath(tenant, cluster), s.cfg.WaveSize, refs); err != nil {
			return "", err
		}
		jw, err = journal.CreateScoped(s.journalPath(tenant, cluster), wfScope(tenant, cluster))
		if err != nil {
			return "", err
		}
		defer func() {
			if errors.Is(retErr, ErrPreempted) {
				_ = jw.Append(journal.Record{Kind: journal.KindPreempted,
					Detail: "lease revoked; checkpoint-stopped at event boundary"})
			}
			if cerr := jw.Close(); cerr != nil && retErr == nil {
				retErr = fmt.Errorf("webservice: closing journal: %w", cerr)
			}
		}()
		if err := jw.Append(journal.Record{
			Kind: journal.KindBegin,
			Detail: fmt.Sprintf("cluster=%s seed=%d waves=%d jobs=%d",
				cluster, seed, planner.Waves(), len(refs)),
		}); err != nil {
			return "", err
		}
		opts.Journal = journal.Sink(jw)
		if s.cfg.CrashAfterEvents > 0 {
			opts.Journal = &journal.CrashSink{Sink: jw, After: s.cfg.CrashAfterEvents}
		}
		if s.cfg.WrapJournal != nil {
			opts.Journal = s.cfg.WrapJournal(tenant, cluster, opts.Journal)
		}
	}

	out, err := s.runWaves(planner, refs, cat, seed, stats, opts, lease, tenant, cluster, onProgress)
	if err != nil {
		return "", err
	}
	if err := jw.Append(journal.Record{Kind: journal.KindEnd, Detail: "output=" + out}); err != nil {
		return "", err
	}
	return out, nil
}

// resumeWaves finishes a killed survey-scale run: the manifest restores the
// exact wave decomposition, the journal's intact prefix restores completed
// nodes, and RLS reduction prunes whole jobs whose outputs were already
// registered — each replanned wave shrinks to its unfinished remainder. The
// output is byte-identical to what the uninterrupted run would have produced.
func (s *Service) resumeWaves(ctx context.Context, lease *fabric.Lease, cluster, tenant string,
	stats *RunStats, onProgress func(done, total int)) (_ string, retErr error) {
	outLFN := outputLFN(cluster)

	waveSize, refs, err := readWaveManifest(s.wavesPath(tenant, cluster))
	if err != nil {
		return "", fmt.Errorf("webservice: resume %s: %w", cluster, err)
	}
	vdlText, err := os.ReadFile(s.vdlPath(tenant, cluster))
	if err != nil {
		return "", fmt.Errorf("webservice: resume %s: %w", cluster, err)
	}
	cat, err := vdl.Parse(string(vdlText))
	if err != nil {
		return "", fmt.Errorf("webservice: resume %s: saved VDL invalid: %w", cluster, err)
	}

	jw, recs, err := journal.OpenAppendScoped(s.journalPath(tenant, cluster), wfScope(tenant, cluster))
	if err != nil {
		return "", fmt.Errorf("webservice: resume %s: %w", cluster, err)
	}
	defer func() {
		if errors.Is(retErr, ErrPreempted) {
			_ = jw.Append(journal.Record{Kind: journal.KindPreempted,
				Detail: "lease revoked; checkpoint-stopped at event boundary"})
		}
		if cerr := jw.Close(); cerr != nil && retErr == nil {
			retErr = fmt.Errorf("webservice: closing journal: %w", cerr)
		}
	}()
	if _, ended := journal.Ended(recs); ended && s.cfg.RLS.Exists(outLFN) {
		stats.ReusedOutput = true
		return outLFN, nil
	}

	stats.Galaxies = len(refs)
	seed := s.requestSeed(cluster)
	planner, err := pegasus.NewWavePlanner(waveSourceFor(refs, cluster), s.planConfig(), waveSize, seed)
	if err != nil {
		return "", err
	}

	opts := dagman.Options{
		MaxRetries:    s.cfg.MaxRetries,
		ClusterSize:   s.cfg.ClusterSize,
		MaxInFlightFn: lease.JobAllowance,
		Completed:     journal.CompletedNodes(recs),
		Check:         abortCheck(ctx, lease),
		Journal:       journal.Sink(jw),
	}
	if s.cfg.CrashAfterEvents > 0 {
		opts.Journal = &journal.CrashSink{Sink: jw, After: s.cfg.CrashAfterEvents}
	}
	if s.cfg.WrapJournal != nil {
		opts.Journal = s.cfg.WrapJournal(tenant, cluster, opts.Journal)
	}
	if s.cfg.RetryPolicy != nil {
		opts.RetryPolicy = s.cfg.RetryPolicy.DAGManPolicy()
	}

	out, err := s.runWaves(planner, refs, cat, seed, stats, opts, lease, tenant, cluster, onProgress)
	if err != nil {
		return "", err
	}
	if err := jw.Append(journal.Record{Kind: journal.KindEnd, Detail: "output=" + out}); err != nil {
		return "", err
	}
	return out, nil
}

// runWaves is the execution engine computeWaves and resumeWaves share: stage
// one wave's images, plan it, release it, aggregate its accounting, repeat.
// Progress reporting grows its total as waves are planned (the concrete node
// count of a wave is unknown until its plan exists).
func (s *Service) runWaves(planner *pegasus.WavePlanner, refs []imageRef, cat *vdl.Catalog,
	seed int64, stats *RunStats, opts dagman.Options, lease *fabric.Lease,
	tenant, cluster string, onProgress func(done, total int)) (string, error) {
	outLFN := outputLFN(cluster)
	done, total := 0, 0
	if onProgress != nil {
		onProgress(0, total)
	}
	opts.Monitor = func(e dagman.Event) {
		switch e.Kind {
		case dagman.EventRetried:
			stats.Retries++
		case dagman.EventCompleted, dagman.EventRestored:
			done++
			if onProgress != nil {
				onProgress(done, total)
			}
		}
	}

	// evict reclaims a completed leaf wave's staged cutouts: once a wave's
	// derived outputs are registered in the RLS its input images are dead
	// weight, so the store's peak footprint stays bounded by one wave
	// instead of accumulating the whole survey. Inputs whose output is not
	// registered (a rescue re-run may need them) are kept.
	evict := func(w int) {
		if w < 0 || w >= planner.LeafWaves() {
			return
		}
		lo, hi := planner.WaveBounds(w)
		for _, r := range refs[lo:hi] {
			if !s.cfg.RLS.Exists(r.id + ".txt") {
				continue
			}
			if s.evictImage(r.id + ".fit") {
				stats.ImagesEvicted++
			}
		}
	}

	labels := newRunLabels(tenant, cluster)
	next := func(w int) (*dag.Graph, error) {
		// Waves release sequentially: wave w-1 has completed (and
		// registered its outputs) by the time wave w is staged — no Run
		// bodies execute while the wave label is rebuilt here.
		labels.setWave(strconv.Itoa(w))
		evict(w - 1)
		if w >= planner.Waves() {
			return nil, nil
		}
		if w < planner.LeafWaves() {
			lo, hi := planner.WaveBounds(w)
			if err := s.cacheImageRefs(refs[lo:hi], stats); err != nil {
				return nil, err
			}
			if n := s.countStagedImages(); n > stats.PeakStagedImages {
				stats.PeakStagedImages = n
			}
		}
		plan, err := planner.Plan(w)
		if err != nil {
			return nil, err
		}
		s.replicas.Prime(plan.Replicas)
		ps := plan.Stats()
		stats.ComputeJobs += ps.ComputeJobs
		stats.PrunedJobs += ps.PrunedJobs
		stats.TransferNodes += ps.TransferNodes
		stats.RegisterNodes += ps.RegisterNodes
		stats.RLSRoundTrips += plan.RLSRoundTrips
		stats.PlannedBytesMoved += plan.EstBytesMoved
		total += plan.Concrete.Len()
		if onProgress != nil {
			onProgress(done, total)
		}
		return plan.Concrete, nil
	}

	var runMu sync.Mutex
	runner := s.runner(cat, rand.New(rand.NewSource(seed+1)), stats, &runMu, labels)
	ws, err := dagman.ExecuteWaves(next, runner, s.simFactory(lease, tenant, cluster), opts, s.cfg.RescueRounds)
	if ws != nil {
		stats.Waves = ws.Waves
		stats.MaxWaveNodes = ws.MaxWaveNodes
		stats.Makespan = ws.Makespan
		stats.RestoredNodes = ws.Restored
		stats.ScheduleEvents = ws.ScheduleEvents
		stats.ClusteredTasks = ws.ClusteredTasks
		stats.ClusteredNodes = ws.ClusteredNodes
	}
	if err != nil {
		var we *dagman.WaveError
		if errors.As(err, &we) {
			if s.cfg.JournalDir != "" {
				if rerr := dagman.WriteRescueFile(s.rescuePath(tenant, cluster), we.Graph, we.Report); rerr != nil {
					return "", rerr
				}
			}
			return "", fmt.Errorf("webservice: workflow failed: %d failed, %d unrun",
				we.Report.Failed, we.Report.Unrun)
		}
		return "", err
	}
	if !s.cfg.RLS.Exists(outLFN) {
		return "", fmt.Errorf("webservice: workflow completed but %q not registered", outLFN)
	}
	return outLFN, nil
}
