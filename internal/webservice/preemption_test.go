package webservice

import (
	"bytes"
	"context"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/condor"
	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/journal"
)

// preemptFabric builds a preemption-enabled fabric with a single workflow
// slot: any higher-class admission while a lower class runs forces a
// checkpoint-preempt.
func preemptFabric(t *testing.T) *fabric.Fabric {
	t.Helper()
	f, err := fabric.New(fabric.Config{
		Pools: []condor.Pool{
			{Name: "usc", Slots: 8}, {Name: "wisc", Slots: 16}, {Name: "fnal", Slots: 8},
		},
		MaxRunningWorkflows: 1,
		Preemption:          true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// sweepTrigger counts journal appends across every leg of one workflow
// (preempt/resume legs each get a fresh wrapped sink, so the count must live
// outside the sink) and fires a one-shot trigger after exactly `after`
// appends — the deterministic "a higher class arrives now" switch of the
// preemption sweep.
type sweepTrigger struct {
	mu    sync.Mutex
	after int
	n     int
	fire  func()
	fired bool
}

func (st *sweepTrigger) wrap(sink journal.Sink) journal.Sink {
	return &triggerSink{t: st, sink: sink}
}

// Fired reports whether the trigger ever went off.
func (st *sweepTrigger) Fired() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.fired
}

type triggerSink struct {
	t    *sweepTrigger
	sink journal.Sink
}

func (ts *triggerSink) Append(rec journal.Record) error {
	if err := ts.sink.Append(rec); err != nil {
		return err
	}
	ts.t.mu.Lock()
	ts.t.n++
	fire := !ts.t.fired && ts.t.n >= ts.t.after
	if fire {
		ts.t.fired = true
	}
	ts.t.mu.Unlock()
	if fire {
		ts.t.fire()
	}
	return nil
}

// intrude admits a high-priority one-shot workflow on f and releases its
// slot the moment it is granted, then signals done. The victim's requeued
// ticket wins the slot back immediately after.
func intrude(t *testing.T, f *fabric.Fabric, priority int) (fire func(), done chan struct{}) {
	t.Helper()
	done = make(chan struct{})
	fire = func() {
		tkt, err := f.Admit("urgent", priority)
		if err != nil {
			t.Errorf("intruder shed: %v", err)
			close(done)
			return
		}
		go func() {
			defer close(done)
			lease, err := tkt.Wait(context.Background())
			if err != nil {
				t.Errorf("intruder wait: %v", err)
				return
			}
			lease.Done(time.Second, false)
		}()
	}
	return fire, done
}

// TestPreemptionSweepByteIdentity is the tentpole acceptance campaign: with
// clustering and wave execution on, a high-priority intruder arrives after
// every possible journal-event boundary k of a low-priority workflow; the
// victim checkpoint-stops, requeues, resumes when the intruder finishes, and
// its final output VOTable must be byte-identical to a solo never-preempted
// run at every single preemption point.
func TestPreemptionSweepByteIdentity(t *testing.T) {
	const n, idx = 2, 0
	base := func(c *Config) {
		c.ClusterSize = 2
		c.WaveSize = 3
	}

	// Solo never-preempted baseline: output bytes + journal-event count.
	soloDir := t.TempDir()
	solo := newMultiHarness(t, n, func(c *Config) { base(c); c.JournalDir = soloDir })
	name := solo.clusters[idx].Name
	if _, _, err := solo.svc.Compute(solo.inputTableFor(t, idx), name); err != nil {
		t.Fatalf("solo run: %v", err)
	}
	want := solo.outputBytes(t, name+".vot")
	recs, _, err := journal.Replay(filepath.Join(soloDir, name+".journal"))
	if err != nil {
		t.Fatal(err)
	}
	events := len(recs)
	if events < 4 {
		t.Fatalf("baseline journal has only %d events; sweep tests nothing", events)
	}

	totalPreemptions := 0
	for k := 1; k < events; k++ {
		f := preemptFabric(t)
		fire, intruderDone := intrude(t, f, 5)
		trig := &sweepTrigger{after: k, fire: fire}
		h := newMultiHarness(t, n, func(c *Config) {
			base(c)
			c.JournalDir = t.TempDir()
			c.Fabric = f
			c.WrapJournal = func(tenant, cluster string, sink journal.Sink) journal.Sink {
				return trig.wrap(sink)
			}
		})
		_, stats, err := h.svc.ComputeFor(context.Background(), h.inputTableFor(t, idx), name,
			RequestOptions{Tenant: "victim"}, nil)
		if err != nil {
			t.Fatalf("k=%d: preempted workflow failed: %v", k, err)
		}
		if trig.Fired() {
			<-intruderDone
		}
		totalPreemptions += stats.Preemptions
		if got := h.outputBytes(t, name+".vot"); !bytes.Equal(got, want) {
			t.Errorf("k=%d: output differs from solo never-preempted run (preemptions=%d)",
				k, stats.Preemptions)
		}
		snap := f.Snapshot()
		if stats.Preemptions > 0 && (snap.Preempted == 0 || snap.Requeued == 0) {
			t.Errorf("k=%d: stats report %d preemptions but fleet counters are %+v",
				k, stats.Preemptions, snap)
		}
	}
	if totalPreemptions == 0 {
		t.Fatal("no preemption fired at any event boundary; the sweep tested nothing")
	}
	t.Logf("sweep: %d event boundaries, %d preemptions, output byte-identical at every point",
		events-1, totalPreemptions)
}

// TestPreemptedVictimMatchesSoloUnderFaults runs the victim under a
// deterministic per-workflow fault schedule and preempts it mid-run: the
// resumed victim's output bytes AND its injected fault history must match
// the solo never-preempted run — chaos isolation across a checkpoint.
func TestPreemptedVictimMatchesSoloUnderFaults(t *testing.T) {
	const n, idx = 2, 1
	// One injector per service instance, shared across the preempt/resume
	// legs of a workflow (FaultsFor is consulted per leg; the occurrence
	// window keeps the schedule independent of draw order).
	plan := func() func(tenant, cluster string) *faults.Injector {
		var mu sync.Mutex
		cache := map[string]*faults.Injector{}
		return func(tenant, cluster string) *faults.Injector {
			mu.Lock()
			defer mu.Unlock()
			inj, ok := cache[cluster]
			if !ok {
				inj = faults.New(31, faults.Rule{
					Name: condor.OpExec, Kind: faults.KindTransient, From: 1, Until: 3,
				})
				cache[cluster] = inj
			}
			return inj
		}
	}

	// Solo baseline.
	soloPlan := plan()
	solo := newMultiHarness(t, n, func(c *Config) {
		c.JournalDir = t.TempDir()
		c.FaultsFor = soloPlan
	})
	name := solo.clusters[idx].Name
	if _, _, err := solo.svc.Compute(solo.inputTableFor(t, idx), name); err != nil {
		t.Fatalf("solo run: %v", err)
	}
	want := solo.outputBytes(t, name+".vot")
	wantHist := soloPlan("", name).History()
	if len(wantHist) == 0 {
		t.Fatal("fault plan injected nothing; the test exercises no chaos")
	}

	// Preempted run: intruder fires mid-journal.
	f := preemptFabric(t)
	fire, intruderDone := intrude(t, f, 5)
	trig := &sweepTrigger{after: 6, fire: fire}
	victimPlan := plan()
	h := newMultiHarness(t, n, func(c *Config) {
		c.JournalDir = t.TempDir()
		c.FaultsFor = victimPlan
		c.Fabric = f
		c.WrapJournal = func(tenant, cluster string, sink journal.Sink) journal.Sink {
			return trig.wrap(sink)
		}
	})
	_, stats, err := h.svc.ComputeFor(context.Background(), h.inputTableFor(t, idx), name,
		RequestOptions{Tenant: "victim"}, nil)
	if err != nil {
		t.Fatalf("preempted run: %v", err)
	}
	<-intruderDone
	if stats.Preemptions == 0 {
		t.Fatal("intruder never preempted the victim; the test exercised nothing")
	}
	if got := h.outputBytes(t, name+".vot"); !bytes.Equal(got, want) {
		t.Error("preempted victim's output differs from solo never-preempted run")
	}
	if gotHist := victimPlan("", name).History(); !reflect.DeepEqual(gotHist, wantHist) {
		t.Errorf("fault history diverged across the checkpoint:\n  solo: %v\n  prem: %v",
			wantHist, gotHist)
	}
}

// TestPreemptedStateAndJournalMarker submits through the public API and
// checks the visible preemption surface: the status passes through
// StatePreempted, /stats counts the preemption, and the victim's journal
// carries the checkpoint marker.
func TestPreemptedStateAndJournalMarker(t *testing.T) {
	const n, idx = 2, 0
	dir := t.TempDir()
	f := preemptFabric(t)
	// The intruder holds its granted slot until the test has observed the
	// victim in StatePreempted, so the checkpoint-stopped state is visible
	// for as long as the higher class actually runs — no polling race.
	granted := make(chan *fabric.Lease, 1)
	fire := func() {
		tkt, err := f.Admit("urgent", 5)
		if err != nil {
			t.Errorf("intruder shed: %v", err)
			return
		}
		go func() {
			lease, err := tkt.Wait(context.Background())
			if err != nil {
				t.Errorf("intruder wait: %v", err)
				return
			}
			granted <- lease
		}()
	}
	saw := map[State]bool{}
	trig := &sweepTrigger{after: 4, fire: fire}
	h := newMultiHarness(t, n, func(c *Config) {
		c.JournalDir = dir
		c.Fabric = f
		c.WrapJournal = func(tenant, cluster string, sink journal.Sink) journal.Sink {
			return trig.wrap(sink)
		}
	})
	name := h.clusters[idx].Name
	id, err := h.svc.SubmitFor(h.inputTableFor(t, idx), name, RequestOptions{Tenant: "victim"})
	if err != nil {
		t.Fatal(err)
	}
	// Record every state the request passes through while it runs, releasing
	// the intruder once the preempted state has been seen.
	var intruder *fabric.Lease
	for {
		st, err := h.svc.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		saw[st.State] = true
		if intruder == nil {
			select {
			case intruder = <-granted:
			default:
			}
		}
		if intruder != nil && st.State == StatePreempted {
			intruder.Done(time.Second, false)
			intruder = nil
		}
		if st.State != StateRunning && st.State != StateQueued && st.State != StatePreempted {
			break
		}
		time.Sleep(time.Millisecond)
	}
	// If the workflow finished before the intruder was ever granted (or the
	// grant arrived after the loop), release the slot now.
	if intruder == nil {
		select {
		case intruder = <-granted:
		case <-time.After(time.Second):
		}
	}
	if intruder != nil {
		intruder.Done(time.Second, false)
	}
	st, err := h.svc.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCompleted {
		t.Fatalf("victim ended %s (%s), want completed", st.State, st.Message)
	}
	if st.Stats.Preemptions == 0 {
		t.Fatal("completed victim reports zero preemptions")
	}
	if !saw[StatePreempted] {
		t.Error("status never showed StatePreempted while checkpoint-stopped")
	}
	recs, _, err := journal.Replay(filepath.Join(dir, "victim__"+name+".journal"))
	if err != nil {
		t.Fatal(err)
	}
	marker := false
	for _, r := range recs {
		if r.Kind == journal.KindPreempted {
			marker = true
		}
	}
	if !marker {
		t.Error("journal carries no preempted checkpoint marker")
	}
	if _, ended := journal.Ended(recs); !ended {
		t.Error("journal of the completed victim has no end record")
	}
	fleet := h.svc.Fleet()
	if fleet.Preempted == 0 || fleet.Requeued == 0 {
		t.Errorf("fleet counters missed the preemption: %+v", fleet)
	}
}
