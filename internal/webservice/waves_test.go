package webservice

import (
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/dagman"
	"repro/internal/journal"
)

// TestWaveComputeByteIdentical is the survey-scale acceptance: the wave-based
// pipeline must produce output bytes identical to the monolithic path — with
// and without horizontal clustering, and at a wave size that does not divide
// the galaxy count.
func TestWaveComputeByteIdentical(t *testing.T) {
	const nGalaxies = 24
	for _, tc := range []struct {
		name        string
		clusterSize int
	}{
		{"plain", 0},
		{"clustered", 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			classic := newHarness(t, nGalaxies, func(c *Config) { c.ClusterSize = tc.clusterSize })
			if _, _, err := classic.svc.Compute(classic.inputTable(t), "COMA"); err != nil {
				t.Fatal(err)
			}
			want := classic.outputBytes(t, "COMA.vot")

			waved := newHarness(t, nGalaxies, func(c *Config) {
				c.ClusterSize = tc.clusterSize
				c.WaveSize = 7
			})
			_, stats, err := waved.svc.Compute(waved.inputTable(t), "COMA")
			if err != nil {
				t.Fatal(err)
			}
			if got := waved.outputBytes(t, "COMA.vot"); string(got) != string(want) {
				t.Fatal("wave-mode output differs from the monolithic path")
			}
			// ceil(24/7) leaf waves plus the collector.
			if stats.Waves != 5 {
				t.Errorf("waves = %d, want 5", stats.Waves)
			}
			// Peak live graph: <= 4 concrete nodes per leaf job (compute +
			// stage-in + stage-out + register) — bounded by the wave size,
			// not the request.
			if stats.MaxWaveNodes == 0 || stats.MaxWaveNodes > 4*7 {
				t.Errorf("max wave nodes = %d, want (0, %d]", stats.MaxWaveNodes, 4*7)
			}
			if stats.Galaxies != nGalaxies || stats.ComputeJobs != nGalaxies+1 {
				t.Errorf("galaxies=%d computeJobs=%d", stats.Galaxies, stats.ComputeJobs)
			}
			// Images are staged per wave, but all of them exactly once.
			if stats.ImagesFetched != nGalaxies || stats.ImagesCached != 0 {
				t.Errorf("fetch/cache = %d/%d", stats.ImagesFetched, stats.ImagesCached)
			}
		})
	}
}

func TestWaveManifestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.waves")
	refs := []imageRef{{id: "g1", acref: "http://a/1"}, {id: "g2", acref: "http://a/2"}}
	if err := writeWaveManifest(path, 50, refs); err != nil {
		t.Fatal(err)
	}
	waveSize, got, err := readWaveManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if waveSize != 50 || !reflect.DeepEqual(got, refs) {
		t.Errorf("round trip = %d %v", waveSize, got)
	}
	if err := writeWaveManifest(path, 1, []imageRef{{id: "a\tb"}}); err == nil {
		t.Error("tab in id must be rejected")
	}
	if _, _, err := readWaveManifest(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing manifest must fail")
	}
}

// wavedJournaledRun computes with journaling + waves on and returns the
// output bytes and journal.
func wavedJournaledRun(t *testing.T, nGalaxies, waveSize int) ([]byte, []journal.Record, *harness) {
	t.Helper()
	dir := t.TempDir()
	h := newHarness(t, nGalaxies, func(c *Config) {
		c.JournalDir = dir
		c.WaveSize = waveSize
	})
	if _, _, err := h.svc.Compute(h.inputTable(t), "COMA"); err != nil {
		t.Fatal(err)
	}
	recs, truncated, err := journal.Replay(filepath.Join(dir, "COMA.journal"))
	if err != nil {
		t.Fatal(err)
	}
	if truncated {
		t.Fatal("uninterrupted wave run left a torn journal")
	}
	return h.outputBytes(t, "COMA.vot"), recs, h
}

// TestWaveKillAndResumeByteIdentity kills the wave pipeline at every journal
// event boundary and resumes: the manifest restores the wave decomposition,
// RLS reduction prunes finished jobs, the journal restores mid-wave nodes —
// and the output must be byte-identical to the uninterrupted wave run (which
// itself equals the monolithic run, by the test above).
func TestWaveKillAndResumeByteIdentity(t *testing.T) {
	const nGalaxies, waveSize = 6, 2
	want, baseRecs, _ := wavedJournaledRun(t, nGalaxies, waveSize)
	events := len(baseRecs) - 2 // minus begin and end markers
	if events < 10 {
		t.Fatalf("workflow too small for a sweep: %d events", events)
	}

	for k := 1; k < events; k++ {
		dir := t.TempDir()
		h := newHarness(t, nGalaxies, func(c *Config) {
			c.JournalDir = dir
			c.WaveSize = waveSize
			c.CrashAfterEvents = k
		})
		tab := h.inputTable(t)
		_, _, err := h.svc.Compute(tab, "COMA")
		if !errors.Is(err, journal.ErrCrash) {
			t.Fatalf("kill point %d: crash did not fire: %v", k, err)
		}
		if !errors.Is(err, dagman.ErrAborted) {
			t.Errorf("kill point %d: crash not surfaced as abort: %v", k, err)
		}

		recs, _, err := journal.Replay(filepath.Join(dir, "COMA.journal"))
		if err != nil {
			t.Fatalf("kill point %d: replay: %v", k, err)
		}
		doneAtCrash := journal.CompletedNodes(recs)
		prefix := len(recs)

		svc2, err := h.svc.Reopen()
		if err != nil {
			t.Fatalf("kill point %d: reopen: %v", k, err)
		}
		out, _, err := svc2.Resume("COMA")
		if err != nil {
			t.Fatalf("kill point %d: resume: %v", k, err)
		}
		if out != "COMA.vot" {
			t.Fatalf("kill point %d: resume output %q", k, out)
		}
		if got := h.outputBytes(t, "COMA.vot"); string(got) != string(want) {
			t.Fatalf("kill point %d: resumed output differs from uninterrupted wave run", k)
		}

		// No node the dead run completed is submitted again: between waves,
		// RLS reduction prunes whole finished jobs; inside the crashed wave,
		// the journal's completed-set restores them.
		after, _, err := journal.Replay(filepath.Join(dir, "COMA.journal"))
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range after[prefix:] {
			if r.Kind == journal.KindSubmitted && doneAtCrash[r.Node] {
				t.Fatalf("kill point %d: completed node %s re-submitted on resume", k, r.Node)
			}
		}
		if _, ended := journal.Ended(after); !ended {
			t.Errorf("kill point %d: resumed journal lacks end marker", k)
		}
	}
}

// TestWaveResumeOfFinishedRunShortCircuits mirrors the classic idempotence
// guarantee in wave mode.
func TestWaveResumeOfFinishedRunShortCircuits(t *testing.T) {
	want, _, h := wavedJournaledRun(t, 4, 2)
	svc2, err := h.svc.Reopen()
	if err != nil {
		t.Fatal(err)
	}
	out, stats, err := svc2.Resume("COMA")
	if err != nil {
		t.Fatal(err)
	}
	if out != "COMA.vot" || !stats.ReusedOutput {
		t.Errorf("out=%q reused=%t", out, stats.ReusedOutput)
	}
	if got := h.outputBytes(t, "COMA.vot"); string(got) != string(want) {
		t.Error("short-circuited wave resume must not touch the output")
	}
}

// TestWaveResumeHonorsManifestWaveSize pins that a resume replays the
// decomposition the crashed run recorded, not the service's current config:
// the same journal must finish correctly even if the operator changed
// WaveSize between the crash and the resume.
func TestWaveResumeHonorsManifestWaveSize(t *testing.T) {
	const nGalaxies = 6
	want, baseRecs, _ := wavedJournaledRun(t, nGalaxies, 2)
	k := (len(baseRecs) - 2) / 2

	dir := t.TempDir()
	h := newHarness(t, nGalaxies, func(c *Config) {
		c.JournalDir = dir
		c.WaveSize = 2
		c.CrashAfterEvents = k
	})
	if _, _, err := h.svc.Compute(h.inputTable(t), "COMA"); !errors.Is(err, journal.ErrCrash) {
		t.Fatal("crash did not fire")
	}

	// Restart with a different configured wave size; the manifest wins.
	h.svc.cfg.WaveSize = 5
	svc2, err := h.svc.Reopen()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc2.Resume("COMA"); err != nil {
		t.Fatal(err)
	}
	if got := h.outputBytes(t, "COMA.vot"); string(got) != string(want) {
		t.Error("resume under a changed WaveSize config diverged from the recorded decomposition")
	}
}
