// Package webservice implements the Galaxy Morphology compute service of the
// paper's §4.3: Pegasus exposed as an asynchronous web service. A request
// carries a VOTable of cluster galaxies (positions, redshifts, image URLs);
// the service
//
//  1. assigns a unique request identifier and immediately returns a status
//     URL the client polls (§4.3.1 item 2: asynchronous interface);
//  2. short-circuits if the output VOTable is already registered in the RLS
//     (Figure 6 step 2);
//  3. downloads every galaxy image into a local cache and registers it in
//     the RLS — so later requests skip the slow SIA fetch and use GridFTP
//     (§4.3.1 item 3: data caching);
//  4. transforms the VOTable into Chimera VDL — a transformation definition
//     plus one derivation per galaxy and a concatenating derivation (the
//     XSLT-stylesheet step of §4.3);
//  5. has Chimera compose the abstract workflow and Pegasus reduce and
//     concretize it;
//  6. executes the concrete workflow with DAGMan over simulated Condor
//     pools, computing the three morphology parameters per galaxy, with a
//     per-galaxy validity flag so bad images do not take down the whole
//     experiment (§4.3.1 item 4: fault tolerance);
//  7. concatenates results into the output VOTable, stores it, registers it
//     in the RLS, and publishes its URL on the status page.
package webservice

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/chimera"
	"repro/internal/condor"
	"repro/internal/dagman"
	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/fits"
	"repro/internal/gridftp"
	"repro/internal/httpclient"
	"repro/internal/journal"
	"repro/internal/morphology"
	"repro/internal/myproxy"
	"repro/internal/pegasus"
	"repro/internal/resilience"
	"repro/internal/rls"
	"repro/internal/tcat"
	"repro/internal/vdcache"
	"repro/internal/vdl"
	"repro/internal/votable"
	"repro/internal/workpool"
)

// State is a request's lifecycle state.
type State string

// Request states published on the status URL.
const (
	// StateQueued means the request was admitted but is waiting for the
	// fabric's fair-share scheduler to grant it a workflow slot.
	StateQueued State = "queued"
	// StatePreempted means the fabric revoked the workflow's slot for a
	// higher-priority class: the run checkpoint-stopped at a journal event
	// boundary and is back in the queue, resuming from its journal when a
	// slot is granted again.
	StatePreempted State = "preempted"
	StateRunning   State = "running"
	StateCompleted State = "completed"
	StateFailed    State = "failed"
)

// RunStats aggregates what one request cost — the quantities §5 of the paper
// reports for its campaign.
type RunStats struct {
	Galaxies      int
	ComputeJobs   int
	PrunedJobs    int
	TransferNodes int
	RegisterNodes int
	ImagesFetched int           // downloaded via SIA this request (cache misses)
	ImagesCached  int           // already in the GridFTP cache
	SIARequests   int           // HTTP requests made to image services
	SIABytes      int64         // bytes received from image services
	SIAModelTime  time.Duration // modelled wide-area cost of those requests
	FilesStaged   int           // GridFTP transfers executed
	BytesStaged   int64         // GridFTP bytes moved
	InvalidRows   int           // galaxies flagged invalid by the validity flag
	Retries       int           // DAGMan node re-submissions after failures
	Failovers     int           // transfers redirected to an alternate replica
	MemoHits      int           // galMorph results served from the virtual-data cache
	MemoMisses    int           // galMorph results measured and cached
	Makespan      time.Duration // model execution time of the concrete DAG
	ReusedOutput  bool          // whole result served from the RLS

	// Integrity and recovery accounting.
	ChecksumFailures int // replica verifications that failed
	Quarantined      int // replicas pulled from RLS circulation
	Rederived        int // files reproduced from Chimera provenance
	RestoredNodes    int // nodes recovered as done from a prior journal

	// Planner and scheduler throughput accounting.
	RLSRoundTrips     int64 // RLS read round trips planning cost (O(1) via BulkLookup)
	PlannedBytesMoved int64 // planner's link-cost estimate of bytes its transfer nodes move
	ScheduleEvents    int   // Condor tasks submitted (a clustered batch is one event)
	ClusteredTasks    int   // multi-node batches submitted
	ClusteredNodes    int   // inner jobs carried by those batches

	// Wave execution accounting (Config.WaveSize > 0).
	Waves        int // concrete waves planned and released
	MaxWaveNodes int // largest single wave — the bounded peak DAG footprint
	// ImagesEvicted counts staged cutouts deleted from the cache store
	// once their wave's outputs were registered; PeakStagedImages is the
	// high-water mark of live staged cutouts — bounded by the wave size
	// instead of the whole survey when eviction is on.
	ImagesEvicted    int
	PeakStagedImages int

	// Preemptions counts how many times the fabric revoked this request's
	// slot mid-run (each one checkpoint-stopped, requeued and resumed).
	Preemptions int
}

// Wide-area SIA cost model (2003-era numbers): each HTTP request pays a
// round-trip latency; payload bytes flow at the archive's outbound rate.
// This is the per-galaxy overhead the paper calls "the major bottleneck in
// the application's operation" (§4.2).
const (
	siaRequestLatency = 300 * time.Millisecond
	siaBandwidthBps   = 1e6 // 1 MB/s
)

// Status is what the polling URL returns. JobsDone/JobsTotal stream the
// workflow's progress (DAGMan monitoring, Figure 2 step 15) so the portal
// can show intermediate status messages, as §4.3.1 item 2 intends.
type Status struct {
	ID        string
	Cluster   string
	Tenant    string
	Priority  int // fabric scheduling class the request was admitted at
	State     State
	Message   string
	ResultLFN string
	JobsDone  int
	JobsTotal int
	Stats     RunStats
}

// Config wires the service to its Grid substrate.
type Config struct {
	RLS     *rls.RLS
	TC      *tcat.Catalog
	GridFTP *gridftp.Service
	// Pools is the Condor pool set. When Fabric is nil the service builds a
	// private permissive fabric over these pools (the single-tenant
	// prototype behaviour); when Fabric is set, Pools may be left empty and
	// the fabric's shared pool set governs.
	Pools []condor.Pool
	// Fabric, when set, is the shared multi-tenant execution fabric every
	// workflow is admitted to and scheduled on: many services (or many
	// tenants of one service) multiplex over its pools under admission
	// control, quotas and fair-share ordering.
	Fabric *fabric.Fabric

	// CacheSite is where downloaded images and the final tables live
	// (the web server's local storage; "isi" in the paper's deployment).
	CacheSite string
	// HTTPClient fetches galaxy images from their acref URLs.
	HTTPClient *http.Client
	// Seed drives site selection and fault injection deterministically.
	Seed int64
	// FailureRate injects transient per-job failures (ablation A4).
	FailureRate float64
	// MaxRetries is DAGMan's retry budget per job.
	MaxRetries int
	// RescueRounds resubmits the rescue DAG up to this many times after a
	// permanent workflow failure (DAGMan's rescue-file recovery).
	RescueRounds int
	// StrictFaults, when set, turns bad-image measurements into job
	// failures instead of validity-flagged rows (the rejected design of
	// §4.3.1 item 4, for the ablation).
	StrictFaults bool
	// Proxy, when set, supplies the Grid credential each computation runs
	// under; requests are refused when no valid proxy is available
	// (§4.3.1 item 5 — the MyProxy integration the paper plans; leaving it
	// nil reproduces the prototype's server-stored-credential behaviour).
	Proxy func() (myproxy.Proxy, error)
	// Now is the clock proxy-credential validity is checked against at
	// submission. The default is the wall clock — live deployments admit
	// a request only while its credential is valid — but tests and
	// resumable runs inject a fixed clock so admission, and therefore
	// the output bytes, cannot depend on when a run happens to execute.
	// Resume never re-validates: the original submission's admission
	// decision governs the whole run, however much wall time passed
	// before the journal is replayed.
	Now func() time.Time
	// BatchFetch pulls galaxy images through the batched cutout interface
	// ("this could be sped up tremendously if one could query for all
	// images at once", §4.2) when the acrefs support it, instead of one
	// HTTP request per galaxy.
	BatchFetch bool
	// Breakers, when set, tracks per-(site, operation) circuit state:
	// transfer nodes skip replicas at sites whose circuit is open and record
	// every outcome. Nil disables circuit breaking at zero cost.
	Breakers *resilience.Registry
	// RetryPolicy, when set, replaces DAGMan's fixed MaxRetries count with
	// the policy's budget- and error-aware decision.
	RetryPolicy *resilience.Policy
	// MirrorSite, when non-empty, replicates every cached image to a second
	// site and registers both PFNs in the RLS, giving transfer nodes a
	// replica to fail over to when the primary cache site is down.
	MirrorSite string
	// Faults, when set, is installed on every Condor simulator the service
	// creates, making job execution a fault point (op "condor.exec").
	Faults *faults.Injector
	// FaultsFor, when set, supplies a per-workflow fault injector (nil
	// return falls back to Faults). A shared Injector draws probability
	// rules from one rng, so concurrent workflows would perturb each
	// other's fault schedules; per-workflow injectors keep every tenant's
	// chaos deterministic however workflows interleave on the fabric.
	FaultsFor func(tenant, cluster string) *faults.Injector
	// Workers bounds the side-effect concurrency of one request: the Condor
	// simulator's leaf-job Run bodies and the image-staging fetches fan out
	// to at most this many goroutines. <= 1 (the default) is fully serial;
	// any setting leaves the model clock, the schedule, and the result
	// VOTable byte-identical — only wall-clock time changes.
	Workers int
	// JournalDir, when non-empty, makes every run crash-safe: the planned
	// DAG, the generated VDL, and a write-ahead journal of every DAGMan
	// state transition are persisted under this directory, and Resume can
	// reopen a killed run and finish only the unfinished nodes.
	JournalDir string
	// CrashAfterEvents, when > 0, simulates kill -9 after that many journal
	// appends (the record at the crash point is never written) — the
	// deterministic kill switch of the kill-and-resume campaign.
	CrashAfterEvents int
	// WrapJournal, when set, wraps each workflow leg's journal sink (applied
	// after the crash switch when both are configured). Campaign tests
	// interpose event-counting triggers here — e.g. admitting a
	// higher-priority workflow after exactly k appends, so a preemption
	// lands at a chosen journal-event boundary deterministically.
	WrapJournal func(tenant, cluster string, sink journal.Sink) journal.Sink
	// Selection overrides Pegasus's site-selection policy. The zero value is
	// pegasus.SelectRandom (the paper's behaviour); pegasus.SelectLocality
	// maps each job to the site whose replicas make its inputs cheapest to
	// reach, so cutouts compute where their data already lives.
	Selection pegasus.SiteSelection
	// ClusterSize enables horizontal job clustering: up to this many ready
	// nodes with the same cluster key submit as one Condor task, amortizing
	// per-task scheduling overhead. <= 1 keeps one task per node.
	ClusterSize int
	// WaveSize, when > 0, plans and executes each request as a sequence of
	// bounded waves of this many galaxies instead of one monolithic concrete
	// DAG: images are staged, planned and computed wave by wave, with the
	// concatenating job pinned to a deterministic collector site the waves
	// deliver their results to. Peak planner/scheduler memory is bounded by
	// the wave, not the request, and the output VOTable is byte-identical to
	// the classic path (fault injection off — the failure rng is draw-order
	// sensitive). 0 keeps the legacy whole-request plan.
	WaveSize int
	// SchedOverhead models the serialized per-task submission cost of the
	// 2003 Condor-G/GRAM stack on every simulator the service creates
	// (zero = instant-start, the legacy model). Clustering amortizes it.
	SchedOverhead time.Duration
	// TransferSlots, when > 0, gives every pool that many dedicated
	// data-movement slots, so stage-ins overlap computation instead of
	// competing for CPU slots.
	TransferSlots int
	// EnablePprof mounts the net/http/pprof profiling endpoints under
	// /debug/pprof/ on the service handler.
	EnablePprof bool
}

// batchFetchSize bounds ids per batch request (URL-length safety).
const batchFetchSize = 64

// Service is the compute service. Create with New.
type Service struct {
	cfg Config

	// memo is the virtual-data cache of per-galaxy morphology measurements,
	// keyed by (image content, measurement parameters) and shared across
	// requests. Nil (always-miss) under StrictFaults, which demands faithful
	// re-execution of failing measurements.
	memo *vdcache.Cache[memoEntry]

	// replicas is the read-through replica cache in front of the RLS: the
	// runner's source rotation and recovery paths resolve LFNs through it,
	// and every path that registers or quarantines a replica invalidates the
	// LFN so a stale entry can never resurrect a quarantined copy.
	replicas *rls.Cache

	mu       sync.Mutex
	requests map[string]*Status
	cancels  map[string]context.CancelFunc
	nextID   int
}

// workers returns the configured side-effect concurrency bound (minimum 1).
func (s *Service) workers() int {
	if s.cfg.Workers < 1 {
		return 1
	}
	return s.cfg.Workers
}

// injectorFor resolves one workflow's fault injector: the per-workflow
// hook when configured, else the shared service-wide injector.
func (s *Service) injectorFor(tenant, cluster string) *faults.Injector {
	if s.cfg.FaultsFor != nil {
		if inj := s.cfg.FaultsFor(tenant, cluster); inj != nil {
			return inj
		}
	}
	return s.cfg.Faults
}

// simFactory builds one workflow's simulator factory: every scheduler is
// stamped by the fabric from the shared pool set, under the service's
// execution model (fault injection, side-effect fan-out, dedicated
// transfer lanes, serialized submission overhead). Rescue rounds call the
// factory again, reusing the same lease — a rescue is still the same
// workflow occupying the same fabric slot.
func (s *Service) simFactory(lease *fabric.Lease, tenant, cluster string) func() (*condor.Simulator, error) {
	inj := s.injectorFor(tenant, cluster)
	return func() (*condor.Simulator, error) {
		sim, err := lease.NewSimulator(fabric.SimOptions{
			Workers:        s.workers(),
			SubmitOverhead: s.cfg.SchedOverhead,
			TransferSlots:  s.cfg.TransferSlots,
			Injector:       inj,
		})
		if err != nil {
			return nil, err
		}
		return sim, nil
	}
}

// registerReplica publishes one replica and invalidates the read-through
// cache so the next lookup sees the fresh catalog state.
func (s *Service) registerReplica(lfn string, pfn rls.PFN) error {
	if err := s.cfg.RLS.Register(lfn, pfn); err != nil {
		return err
	}
	s.replicas.Invalidate(lfn)
	return nil
}

// Errors returned by the service.
var (
	ErrBadTable   = errors.New("webservice: input table must have id, acref columns")
	ErrNoGalaxies = errors.New("webservice: input table has no rows")
	ErrNotFound   = errors.New("webservice: unknown request id")
	// ErrPreempted marks a workflow leg that checkpoint-stopped because the
	// fabric revoked its lease. It is not a failure: the workflow requeues
	// and resumes from its journal when a slot is granted again.
	ErrPreempted = errors.New("webservice: preempted by the fabric scheduler")
)

// New validates the configuration and builds a service.
func New(cfg Config) (*Service, error) {
	if cfg.RLS == nil || cfg.TC == nil || cfg.GridFTP == nil {
		return nil, errors.New("webservice: RLS, TC and GridFTP are required")
	}
	if cfg.Fabric == nil {
		if len(cfg.Pools) == 0 {
			return nil, errors.New("webservice: Pools (or a Fabric) are required")
		}
		// Private permissive fabric: no quotas, no queue bounds — exactly
		// the single-tenant prototype, so every admission grants instantly.
		f, err := fabric.New(fabric.Config{Pools: cfg.Pools})
		if err != nil {
			return nil, err
		}
		cfg.Fabric = f
	}
	if len(cfg.Pools) == 0 {
		cfg.Pools = cfg.Fabric.Pools()
	}
	if cfg.CacheSite == "" {
		cfg.CacheSite = "isi"
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = httpclient.Shared()
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 2
	}
	if cfg.Now == nil {
		//nvolint:ignore noclock credential admission is the service's one wall-clock boundary; replay harnesses inject Config.Now
		cfg.Now = time.Now
	}
	svc := &Service{
		cfg:      cfg,
		replicas: rls.NewCache(cfg.RLS),
		requests: map[string]*Status{},
		cancels:  map[string]context.CancelFunc{},
	}
	if !cfg.StrictFaults {
		svc.memo = vdcache.New[memoEntry]()
	}
	return svc, nil
}

// DefaultTenant is the accounting principal of requests that carry no
// tenant — the single-tenant prototype's implicit user.
const DefaultTenant = "default"

// RequestOptions identify the principal a workflow is admitted, scheduled
// and accounted as on the fabric.
type RequestOptions struct {
	// Tenant names the accounting principal ("" = DefaultTenant).
	Tenant string
	// Priority is the fabric scheduling class (higher runs first).
	Priority int
}

func (o RequestOptions) tenant() string {
	if o.Tenant == "" {
		return DefaultTenant
	}
	return o.Tenant
}

// Submit registers a new request and starts the computation in the
// background, returning the request ID the status URL embeds. The request
// can be stopped mid-flight with Cancel, which aborts the workflow at the
// next scheduler step and journals a clean abort record.
func (s *Service) Submit(tab *votable.Table, cluster string) (string, error) {
	return s.SubmitFor(tab, cluster, RequestOptions{})
}

// SubmitFor is Submit on behalf of a tenant. The fabric's admission
// decision happens here, synchronously: a granted or queued request
// returns an ID to poll; an over-quota request is shed with a
// fabric.ShedError (mapped to 429/503 + Retry-After by the HTTP layer)
// and never occupies service state. Canceling a queued request dequeues
// it before it ever runs.
func (s *Service) SubmitFor(tab *votable.Table, cluster string, opt RequestOptions) (string, error) {
	if err := validateInput(tab); err != nil {
		return "", err
	}
	ticket, err := s.cfg.Fabric.Admit(opt.tenant(), opt.Priority)
	if err != nil {
		return "", err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("req-%06d", s.nextID)
	st := &Status{ID: id, Cluster: cluster, Tenant: opt.tenant(), Priority: opt.Priority,
		State: StateQueued, Message: "queued for fair-share scheduling"}
	if ticket.Granted() {
		st.State = StateRunning
		st.Message = "accepted"
	}
	s.requests[id] = st
	s.cancels[id] = cancel
	s.mu.Unlock()

	go func() {
		lease, werr := ticket.Wait(ctx)
		if werr != nil {
			s.mu.Lock()
			defer s.mu.Unlock()
			delete(s.cancels, id)
			cancel()
			st.State = StateFailed
			st.Message = "canceled while queued: " + werr.Error()
			return
		}
		s.mu.Lock()
		if st.State == StateQueued {
			st.State = StateRunning
			st.Message = "running"
		}
		s.mu.Unlock()
		onProgress := func(done, total int) {
			s.mu.Lock()
			st.JobsDone = done
			st.JobsTotal = total
			s.mu.Unlock()
		}
		out, stats, err := s.preemptible(ctx, lease, cluster, opt, onProgress,
			s.publishState(st),
			func(l *fabric.Lease) (string, RunStats, error) {
				return s.computeGranted(ctx, l, tab, cluster, opt, onProgress)
			})
		s.mu.Lock()
		defer s.mu.Unlock()
		delete(s.cancels, id)
		cancel()
		st.Stats = stats
		if err != nil {
			st.State = StateFailed
			st.Message = err.Error()
			return
		}
		st.State = StateCompleted
		st.Message = "job completed"
		st.ResultLFN = out
	}()
	return id, nil
}

// publishState mirrors a preemption cycle's state flips onto a request's
// polled status.
func (s *Service) publishState(st *Status) func(State) {
	return func(state State) {
		s.mu.Lock()
		defer s.mu.Unlock()
		st.State = state
		switch state {
		case StatePreempted:
			st.Message = "preempted: checkpoint-stopped, requeued for fair-share scheduling"
		case StateRunning:
			st.Message = "resumed after preemption"
		}
	}
}

// Reopen builds a fresh service on the same Grid substrate (RLS, catalogs,
// GridFTP stores, journal directory) with the crash switch disarmed — the
// restarted process of a kill-and-resume drill. Request state and the
// virtual-data memo start empty, exactly as after a real process death.
func (s *Service) Reopen() (*Service, error) {
	cfg := s.cfg
	cfg.CrashAfterEvents = 0
	return New(cfg)
}

// Cancel aborts a running request. The workflow stops at the next scheduler
// step, appends an "aborted" record to its journal (when journaling), and the
// request transitions to failed with a cancellation message. Canceling a
// request that already finished is a no-op; an unknown ID errors.
func (s *Service) Cancel(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.requests[id]; !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	if cancel, ok := s.cancels[id]; ok {
		cancel()
	}
	return nil
}

// Requeue re-admits a failed journaled request — canceled, crashed or
// shed mid-flight — under its original tenant and priority class, and
// resumes it from its scoped journal in the background (the /cancel
// counterpart: where Cancel stops a request, Requeue puts one back).
// Fabric-revoked requests requeue themselves; this is the operator path
// for everything else. Admission is not bypassed: an over-quota requeue
// sheds like any fresh submission.
func (s *Service) Requeue(id string) error {
	if s.cfg.JournalDir == "" {
		return errors.New("webservice: requeue requires JournalDir")
	}
	s.mu.Lock()
	st, ok := s.requests[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	if st.State != StateFailed {
		s.mu.Unlock()
		return fmt.Errorf("webservice: request %q is %s; only failed requests requeue", id, st.State)
	}
	opt := RequestOptions{Tenant: st.Tenant, Priority: st.Priority}
	s.mu.Unlock()

	ticket, err := s.cfg.Fabric.Admit(opt.tenant(), opt.Priority)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.mu.Lock()
	st.State = StateQueued
	st.Message = "requeued for fair-share scheduling"
	if ticket.Granted() {
		st.State = StateRunning
		st.Message = "requeued: resuming from journal"
	}
	s.cancels[id] = cancel
	cluster := st.Cluster
	s.mu.Unlock()

	go func() {
		lease, werr := ticket.Wait(ctx)
		if werr != nil {
			s.mu.Lock()
			defer s.mu.Unlock()
			delete(s.cancels, id)
			cancel()
			st.State = StateFailed
			st.Message = "canceled while requeued: " + werr.Error()
			return
		}
		s.mu.Lock()
		if st.State == StateQueued {
			st.State = StateRunning
			st.Message = "requeued: resuming from journal"
		}
		s.mu.Unlock()
		onProgress := func(done, total int) {
			s.mu.Lock()
			st.JobsDone = done
			st.JobsTotal = total
			s.mu.Unlock()
		}
		out, stats, err := s.preemptible(ctx, lease, cluster, opt, onProgress,
			s.publishState(st),
			func(l *fabric.Lease) (string, RunStats, error) {
				return s.resumeGranted(ctx, l, cluster, opt, onProgress)
			})
		s.mu.Lock()
		defer s.mu.Unlock()
		delete(s.cancels, id)
		cancel()
		st.Stats = stats
		if err != nil {
			st.State = StateFailed
			st.Message = err.Error()
			return
		}
		st.State = StateCompleted
		st.Message = "job completed"
		st.ResultLFN = out
	}()
	return nil
}

// Pools returns the names of the Condor pools the service submits to,
// in configuration order.
func (s *Service) Pools() []string {
	out := make([]string, len(s.cfg.Pools))
	for i, p := range s.cfg.Pools {
		out[i] = p.Name
	}
	return out
}

// Fabric returns the execution fabric the service admits and schedules
// workflows on.
func (s *Service) Fabric() *fabric.Fabric { return s.cfg.Fabric }

// Fleet returns the fabric's fleet-wide and per-tenant admission,
// shedding and fair-share counters.
func (s *Service) Fleet() fabric.FleetSnapshot { return s.cfg.Fabric.Snapshot() }

// Status returns a snapshot of a request's state.
func (s *Service) Status(id string) (Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.requests[id]
	if !ok {
		return Status{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return *st, nil
}

func validateInput(tab *votable.Table) error {
	if tab == nil || tab.ColumnIndex("id") < 0 || tab.ColumnIndex("acref") < 0 {
		return ErrBadTable
	}
	if tab.NumRows() == 0 {
		return ErrNoGalaxies
	}
	return nil
}

// outputLFN names the result table after the cluster, as §4.3 describes.
func outputLFN(cluster string) string { return cluster + ".vot" }

// requestSeed derives a deterministic, order-independent seed for one
// cluster's computation.
func (s *Service) requestSeed(cluster string) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(cluster))
	return s.cfg.Seed ^ int64(h.Sum64())
}

// Compute runs the full §4.3 pipeline synchronously and returns the output
// LFN. The portal normally reaches it through Submit/Status polling.
func (s *Service) Compute(tab *votable.Table, cluster string) (string, RunStats, error) {
	return s.ComputeWithProgress(tab, cluster, nil)
}

// ComputeWithProgress is Compute with a workflow-progress callback
// (done/total concrete nodes), fed from DAGMan's monitoring events.
func (s *Service) ComputeWithProgress(tab *votable.Table, cluster string,
	onProgress func(done, total int)) (string, RunStats, error) {
	return s.ComputeWithContext(context.Background(), tab, cluster, onProgress)
}

// wfScope names one workflow for journal-record stamping: the scope every
// record of the run carries and a resume must present.
func wfScope(tenant, cluster string) string { return tenant + "/" + cluster }

// wfBase is the on-disk artifact basename of one workflow. The default
// tenant keeps the historic bare-cluster names, so journals written before
// multi-tenancy resume unchanged; other tenants get namespaced files so
// two tenants computing the same cluster name cannot collide on disk.
func wfBase(tenant, cluster string) string {
	if tenant == DefaultTenant {
		return cluster
	}
	safe := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '.', r == '_':
			return r
		}
		return '_'
	}, tenant)
	return safe + "__" + cluster
}

// Per-workflow recovery artifacts under JournalDir.
func (s *Service) journalPath(tenant, cluster string) string {
	return filepath.Join(s.cfg.JournalDir, wfBase(tenant, cluster)+".journal")
}
func (s *Service) dagPath(tenant, cluster string) string {
	return filepath.Join(s.cfg.JournalDir, wfBase(tenant, cluster)+".dag")
}
func (s *Service) vdlPath(tenant, cluster string) string {
	return filepath.Join(s.cfg.JournalDir, wfBase(tenant, cluster)+".vdl")
}
func (s *Service) rescuePath(tenant, cluster string) string {
	return filepath.Join(s.cfg.JournalDir, wfBase(tenant, cluster)+".rescue.dag")
}
func (s *Service) wavesPath(tenant, cluster string) string {
	return filepath.Join(s.cfg.JournalDir, wfBase(tenant, cluster)+".waves")
}

// ComputeWithContext is ComputeWithProgress under a cancellation context:
// when ctx is canceled the workflow aborts at the next scheduler step,
// journaling a clean "aborted" record so a later Resume picks up exactly
// where the run stopped.
func (s *Service) ComputeWithContext(ctx context.Context, tab *votable.Table, cluster string,
	onProgress func(done, total int)) (string, RunStats, error) {
	return s.ComputeFor(ctx, tab, cluster, RequestOptions{}, onProgress)
}

// ComputeFor is ComputeWithContext on behalf of a tenant: the workflow is
// admitted to the fabric (an over-quota admission returns the
// fabric.ShedError without queueing), waits under ctx for its fair-share
// slot, and executes under the granted lease. Canceling ctx while queued
// dequeues the workflow before it runs.
func (s *Service) ComputeFor(ctx context.Context, tab *votable.Table, cluster string,
	opt RequestOptions, onProgress func(done, total int)) (string, RunStats, error) {
	var stats RunStats
	if err := validateInput(tab); err != nil {
		return "", stats, err
	}
	ticket, err := s.cfg.Fabric.Admit(opt.tenant(), opt.Priority)
	if err != nil {
		return "", stats, err
	}
	lease, err := ticket.Wait(ctx)
	if err != nil {
		return "", stats, fmt.Errorf("webservice: canceled while queued: %w", err)
	}
	return s.preemptible(ctx, lease, cluster, opt, onProgress, nil,
		func(l *fabric.Lease) (string, RunStats, error) {
			return s.computeGranted(ctx, l, tab, cluster, opt, onProgress)
		})
}

// preemptible runs one workflow leg (first) under the fabric's preemption
// protocol: when the scheduler revokes the lease mid-run the leg
// checkpoint-stops at the next journal event boundary (ErrPreempted); the
// loop answers with lease.Preempted — releasing the slot, charging the
// partial model time, and re-entering the queue at the original priority
// class — waits for a fresh grant, and resumes from the scoped journal.
// It repeats until the workflow finishes, fails for a real reason, or is
// canceled while requeued. onState (optional) observes the
// preempted/running flips of each cycle.
func (s *Service) preemptible(ctx context.Context, lease *fabric.Lease, cluster string,
	opt RequestOptions, onProgress func(done, total int), onState func(State),
	first func(*fabric.Lease) (string, RunStats, error)) (string, RunStats, error) {
	out, stats, err := first(lease)
	preemptions := 0
	for errors.Is(err, ErrPreempted) {
		ticket := lease.Preempted(stats.Makespan)
		if ticket == nil {
			break // lease already released: surface the leg's error
		}
		preemptions++
		if onState != nil {
			onState(StatePreempted)
		}
		var werr error
		lease, werr = ticket.Wait(ctx)
		if werr != nil {
			stats.Preemptions = preemptions
			return "", stats, fmt.Errorf("webservice: canceled while requeued after preemption: %w", werr)
		}
		if onState != nil {
			onState(StateRunning)
		}
		out, stats, err = s.resumeGranted(ctx, lease, cluster, opt, onProgress)
	}
	stats.Preemptions = preemptions
	return out, stats, err
}

// abortCheck is the DAGMan abort poll of every fabric-backed leg: a dead
// context aborts the workflow (cancellation), a revoked lease
// checkpoint-stops it at the next journal event boundary (preemption).
func abortCheck(ctx context.Context, lease *fabric.Lease) func() error {
	return func() error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if lease.IsRevoked() {
			return ErrPreempted
		}
		return nil
	}
}

// computeGranted runs the full §4.3 pipeline under a granted fabric lease.
// However it exits, the lease is released and the workflow's model-time
// makespan is charged to the tenant's fair-share account.
func (s *Service) computeGranted(ctx context.Context, lease *fabric.Lease, tab *votable.Table,
	cluster string, opt RequestOptions, onProgress func(done, total int)) (_ string, _ RunStats, retErr error) {
	var stats RunStats
	// A preempted leg does not release the lease here: the caller answers
	// the revocation with lease.Preempted, which requeues the workflow.
	defer func() {
		if !errors.Is(retErr, ErrPreempted) {
			lease.Done(stats.Makespan, retErr != nil)
		}
	}()
	// Only a journaled workflow can checkpoint-stop, so only those opt
	// into scheduler revocation.
	if s.cfg.JournalDir != "" {
		lease.SetPreemptible(true)
	}
	tenant := opt.tenant()
	if s.cfg.Proxy != nil {
		proxy, err := s.cfg.Proxy()
		if err != nil {
			return "", stats, fmt.Errorf("webservice: credential retrieval: %w", err)
		}
		if !proxy.Valid(s.cfg.Now()) {
			return "", stats, errors.New("webservice: Grid proxy expired; delegate a fresh credential")
		}
	}
	stats.Galaxies = tab.NumRows()
	outLFN := outputLFN(cluster)

	// Step 2: output already materialized? Serve it straight from the RLS.
	if s.cfg.RLS.Exists(outLFN) {
		stats.ReusedOutput = true
		return outLFN, stats, nil
	}

	// Survey-scale mode: stage, plan and execute in bounded waves.
	if s.cfg.WaveSize > 0 {
		out, err := s.computeWaves(ctx, lease, tab, cluster, tenant, &stats, onProgress)
		return out, stats, err
	}

	// Step 3: stage galaxy images into the local cache.
	if err := s.cacheImages(tab, &stats); err != nil {
		return "", stats, err
	}

	// Step 4: VOTable -> VDL (rendered to text and re-parsed, the analog of
	// the XSLT stylesheet producing a derivation file).
	vdlText, err := buildVDL(tab, cluster)
	if err != nil {
		return "", stats, err
	}
	cat, err := vdl.Parse(vdlText)
	if err != nil {
		return "", stats, fmt.Errorf("webservice: generated VDL invalid: %w", err)
	}

	// Step 5: Chimera composes the abstract workflow for the output table.
	wf, err := chimera.Compose(cat, chimera.Request{LFNs: []string{outLFN}})
	if err != nil {
		return "", stats, err
	}

	// Step 6: Pegasus plans... The per-request seed derives from the
	// cluster name (not a shared stream), so concurrent requests stay
	// individually deterministic.
	seed := s.requestSeed(cluster)
	pcfg := s.planConfig()
	pcfg.Rand = rand.New(rand.NewSource(seed))
	plan, err := pegasus.Map(wf, pcfg)
	if err != nil {
		return "", stats, err
	}
	// The plan's replica snapshot seeds the read-through cache, so runner-side
	// lookups (retry rotation, recovery) cost no extra RLS round trips.
	s.replicas.Prime(plan.Replicas)
	pstats := plan.Stats()
	stats.ComputeJobs = pstats.ComputeJobs
	stats.PrunedJobs = pstats.PrunedJobs
	stats.TransferNodes = pstats.TransferNodes
	stats.RegisterNodes = pstats.RegisterNodes
	stats.RLSRoundTrips = plan.RLSRoundTrips
	stats.PlannedBytesMoved = plan.EstBytesMoved

	// ... and DAGMan executes on the Condor pools, resubmitting the rescue
	// DAG when configured. runMu serializes what the Run side effects share
	// — the per-request stats and the failure-injection rng — because with
	// Workers > 1 those bodies execute concurrently on the worker pool.
	var runMu sync.Mutex
	runner := s.runner(cat, rand.New(rand.NewSource(seed+1)), &stats, &runMu,
		newRunLabels(tenant, cluster))
	opts := dagman.Options{
		MaxRetries:    s.cfg.MaxRetries,
		ClusterSize:   s.cfg.ClusterSize,
		MaxInFlightFn: lease.JobAllowance,
		Check:         abortCheck(ctx, lease),
	}
	if s.cfg.RetryPolicy != nil {
		opts.RetryPolicy = s.cfg.RetryPolicy.DAGManPolicy()
	}

	// Crash safety: persist the concrete plan and the VDL it came from (so
	// Resume reloads the exact graph without replanning — site selection is
	// seeded, and replanning against a healthier RLS would prune differently),
	// then open the write-ahead journal DAGMan records every transition in.
	var jw *journal.Writer
	if s.cfg.JournalDir != "" {
		if err := os.MkdirAll(s.cfg.JournalDir, 0o755); err != nil {
			return "", stats, err
		}
		if err := os.WriteFile(s.vdlPath(tenant, cluster), []byte(vdlText), 0o644); err != nil {
			return "", stats, err
		}
		if err := dagman.WriteDAGFile(s.dagPath(tenant, cluster), plan.Concrete, nil); err != nil {
			return "", stats, err
		}
		jw, err = journal.CreateScoped(s.journalPath(tenant, cluster), wfScope(tenant, cluster))
		if err != nil {
			return "", stats, err
		}
		// A failed close means the final records may not have reached the
		// disk — the journal is the crash-recovery contract, so that is a
		// run failure, not a cleanup detail.
		defer func() {
			if errors.Is(retErr, ErrPreempted) {
				// Best-effort checkpoint marker: DAGMan already journaled
				// the abort, so replay is correct without it.
				_ = jw.Append(journal.Record{Kind: journal.KindPreempted,
					Detail: "lease revoked; checkpoint-stopped at event boundary"})
			}
			if cerr := jw.Close(); cerr != nil && retErr == nil {
				retErr = fmt.Errorf("webservice: closing journal: %w", cerr)
			}
		}()
		// The begin marker goes straight to the writer so a configured crash
		// budget counts DAGMan events only.
		if err := jw.Append(journal.Record{
			Kind:   journal.KindBegin,
			Detail: fmt.Sprintf("cluster=%s seed=%d nodes=%d", cluster, seed, plan.Concrete.Len()),
		}); err != nil {
			return "", stats, err
		}
		opts.Journal = journal.Sink(jw)
		if s.cfg.CrashAfterEvents > 0 {
			opts.Journal = &journal.CrashSink{Sink: jw, After: s.cfg.CrashAfterEvents}
		}
		if s.cfg.WrapJournal != nil {
			opts.Journal = s.cfg.WrapJournal(tenant, cluster, opts.Journal)
		}
	}
	total := plan.Concrete.Len()
	done := 0
	if onProgress != nil {
		onProgress(0, total)
	}
	opts.Monitor = func(e dagman.Event) {
		switch e.Kind {
		case dagman.EventRetried:
			stats.Retries++
		case dagman.EventCompleted:
			done++
			if onProgress != nil {
				onProgress(done, total)
			}
		}
	}
	rep, err := dagman.ExecuteWithRescue(plan.Concrete, runner,
		s.simFactory(lease, tenant, cluster), opts, s.cfg.RescueRounds)
	if err != nil {
		return "", stats, err
	}
	stats.Makespan = rep.Makespan
	stats.ScheduleEvents = rep.ScheduleEvents
	stats.ClusteredTasks = rep.ClusteredTasks
	stats.ClusteredNodes = rep.ClusteredNodes
	if !rep.Succeeded() {
		if jw != nil {
			// Serialize the rescue DAG — the classic on-disk artifact naming
			// exactly the nodes a resubmission must run.
			if rerr := dagman.WriteRescueFile(s.rescuePath(tenant, cluster), plan.Concrete, rep); rerr != nil {
				return "", stats, rerr
			}
		}
		return "", stats, fmt.Errorf("webservice: workflow failed: %d failed, %d unrun", rep.Failed, rep.Unrun)
	}
	if !s.cfg.RLS.Exists(outLFN) {
		return "", stats, fmt.Errorf("webservice: workflow completed but %q not registered", outLFN)
	}
	if err := jw.Append(journal.Record{Kind: journal.KindEnd, Detail: "output=" + outLFN}); err != nil {
		return "", stats, err
	}
	return outLFN, stats, nil
}

// planConfig is the Pegasus configuration every plan of this service uses —
// the classic whole-request Map and each wave of the survey-scale path draw
// from the same substrate wiring (Rand is set per call site).
func (s *Service) planConfig() pegasus.Config {
	return pegasus.Config{
		RLS:             s.cfg.RLS,
		TC:              s.cfg.TC,
		OutputSite:      s.cfg.CacheSite,
		RegisterOutputs: true,
		Selection:       s.cfg.Selection,
		Net:             s.cfg.GridFTP.Network(),
		SizeOf:          func(lfn string) int64 { return s.cfg.GridFTP.Store(s.cfg.CacheSite).Size(lfn) },
	}
}

// Resume reopens a journaled run that died mid-flight — a killed web service,
// a machine crash — and finishes it: the persisted concrete DAG is reloaded
// (never replanned), the journal's intact prefix restores every completed
// node, and only the unfinished remainder executes. The output VOTable is
// byte-identical to what the uninterrupted run would have produced.
func (s *Service) Resume(cluster string) (string, RunStats, error) {
	return s.ResumeWithContext(context.Background(), cluster, nil)
}

// ResumeWithContext is Resume under a cancellation context and an optional
// progress callback (restored nodes count as already done).
func (s *Service) ResumeWithContext(ctx context.Context, cluster string,
	onProgress func(done, total int)) (string, RunStats, error) {
	return s.ResumeFor(ctx, cluster, RequestOptions{}, onProgress)
}

// ResumeFor is ResumeWithContext on behalf of a tenant. A resumed
// workflow consumes fabric capacity like a fresh one, so it passes
// admission and fair-share scheduling first; its journal must carry the
// resuming workflow's scope — resuming one tenant's journal as another
// fails with journal.ErrScope instead of bleeding state across workflows.
func (s *Service) ResumeFor(ctx context.Context, cluster string, opt RequestOptions,
	onProgress func(done, total int)) (string, RunStats, error) {
	var stats RunStats
	if s.cfg.JournalDir == "" {
		return "", stats, errors.New("webservice: resume requires JournalDir")
	}
	ticket, err := s.cfg.Fabric.Admit(opt.tenant(), opt.Priority)
	if err != nil {
		return "", stats, err
	}
	lease, err := ticket.Wait(ctx)
	if err != nil {
		return "", stats, fmt.Errorf("webservice: canceled while queued: %w", err)
	}
	return s.preemptible(ctx, lease, cluster, opt, onProgress, nil,
		func(l *fabric.Lease) (string, RunStats, error) {
			return s.resumeGranted(ctx, l, cluster, opt, onProgress)
		})
}

func (s *Service) resumeGranted(ctx context.Context, lease *fabric.Lease, cluster string,
	opt RequestOptions, onProgress func(done, total int)) (_ string, _ RunStats, retErr error) {
	var stats RunStats
	defer func() {
		if !errors.Is(retErr, ErrPreempted) {
			lease.Done(stats.Makespan, retErr != nil)
		}
	}()
	lease.SetPreemptible(true) // a resumable run is by definition journaled
	tenant := opt.tenant()
	outLFN := outputLFN(cluster)

	// A wave manifest marks a survey-scale run: resume it wave by wave (the
	// classic .dag artifact is never written in that mode — a monolithic
	// concrete graph is exactly what waves exist to avoid).
	if _, err := os.Stat(s.wavesPath(tenant, cluster)); err == nil {
		out, err := s.resumeWaves(ctx, lease, cluster, tenant, &stats, onProgress)
		return out, stats, err
	}

	// Reload the exact planned graph and the catalog behind its derivations.
	g, _, err := dagman.ReadDAGFile(s.dagPath(tenant, cluster))
	if err != nil {
		return "", stats, fmt.Errorf("webservice: resume %s: %w", cluster, err)
	}
	vdlText, err := os.ReadFile(s.vdlPath(tenant, cluster))
	if err != nil {
		return "", stats, fmt.Errorf("webservice: resume %s: %w", cluster, err)
	}
	cat, err := vdl.Parse(string(vdlText))
	if err != nil {
		return "", stats, fmt.Errorf("webservice: resume %s: saved VDL invalid: %w", cluster, err)
	}

	// Reopen the journal: its intact prefix is the authoritative history (a
	// torn final line is the crash signature and is discarded by CRC check).
	jw, recs, err := journal.OpenAppendScoped(s.journalPath(tenant, cluster), wfScope(tenant, cluster))
	if err != nil {
		return "", stats, fmt.Errorf("webservice: resume %s: %w", cluster, err)
	}
	defer func() {
		if errors.Is(retErr, ErrPreempted) {
			_ = jw.Append(journal.Record{Kind: journal.KindPreempted,
				Detail: "lease revoked; checkpoint-stopped at event boundary"})
		}
		if cerr := jw.Close(); cerr != nil && retErr == nil {
			retErr = fmt.Errorf("webservice: closing journal: %w", cerr)
		}
	}()
	if _, ended := journal.Ended(recs); ended && s.cfg.RLS.Exists(outLFN) {
		stats.ReusedOutput = true
		return outLFN, stats, nil
	}
	done := journal.CompletedNodes(recs)

	seed := s.requestSeed(cluster)
	var runMu sync.Mutex
	runner := s.runner(cat, rand.New(rand.NewSource(seed+1)), &stats, &runMu,
		newRunLabels(tenant, cluster))
	opts := dagman.Options{
		MaxRetries:    s.cfg.MaxRetries,
		ClusterSize:   s.cfg.ClusterSize,
		MaxInFlightFn: lease.JobAllowance,
		Completed:     done,
		Check:         abortCheck(ctx, lease),
		Journal:       journal.Sink(jw),
	}
	if s.cfg.CrashAfterEvents > 0 {
		opts.Journal = &journal.CrashSink{Sink: jw, After: s.cfg.CrashAfterEvents}
	}
	if s.cfg.WrapJournal != nil {
		opts.Journal = s.cfg.WrapJournal(tenant, cluster, opts.Journal)
	}
	if s.cfg.RetryPolicy != nil {
		opts.RetryPolicy = s.cfg.RetryPolicy.DAGManPolicy()
	}
	total := g.Len()
	progress := 0
	if onProgress != nil {
		onProgress(0, total)
	}
	opts.Monitor = func(e dagman.Event) {
		switch e.Kind {
		case dagman.EventRetried:
			stats.Retries++
		case dagman.EventCompleted, dagman.EventRestored:
			progress++
			if onProgress != nil {
				onProgress(progress, total)
			}
		}
	}
	rep, err := dagman.ExecuteWithRescue(g, runner,
		s.simFactory(lease, tenant, cluster), opts, s.cfg.RescueRounds)
	if err != nil {
		return "", stats, err
	}
	stats.Makespan = rep.Makespan
	stats.RestoredNodes = rep.Restored
	stats.ScheduleEvents = rep.ScheduleEvents
	stats.ClusteredTasks = rep.ClusteredTasks
	stats.ClusteredNodes = rep.ClusteredNodes
	if !rep.Succeeded() {
		if rerr := dagman.WriteRescueFile(s.rescuePath(tenant, cluster), g, rep); rerr != nil {
			return "", stats, rerr
		}
		return "", stats, fmt.Errorf("webservice: resumed workflow failed: %d failed, %d unrun", rep.Failed, rep.Unrun)
	}
	if !s.cfg.RLS.Exists(outLFN) {
		return "", stats, fmt.Errorf("webservice: workflow completed but %q not registered", outLFN)
	}
	if err := jw.Append(journal.Record{Kind: journal.KindEnd, Detail: "output=" + outLFN}); err != nil {
		return "", stats, err
	}
	return outLFN, stats, nil
}

// ResultTable fetches a completed result table from the cache store.
func (s *Service) ResultTable(lfn string) (*votable.Table, error) {
	data, err := s.cfg.GridFTP.Store(s.cfg.CacheSite).Get(lfn)
	if err != nil {
		return nil, err
	}
	return votable.ReadTable(bytes.NewReader(data))
}

// cacheImages downloads every galaxy image not yet present in the cache and
// registers it in the RLS, one SIA request per galaxy (the paper's
// bottleneck) or via the batched cutout interface when configured. With
// Workers > 1 the HTTP fetches fan out to the worker pool; responses are
// ingested — accounted, split, stored, registered — strictly in request
// order, so stats and replica registrations stay deterministic.
func (s *Service) cacheImages(tab *votable.Table, stats *RunStats) error {
	return s.cacheImageRefs(imageRefsFromTable(tab), stats)
}

// imageRef names one galaxy image to stage: its ID and the access URL.
type imageRef struct{ id, acref string }

// imageRefsFromTable extracts the (id, acref) staging list of a request.
func imageRefsFromTable(tab *votable.Table) []imageRef {
	refs := make([]imageRef, tab.NumRows())
	for i := range refs {
		refs[i] = imageRef{id: tab.Cell(i, "id"), acref: tab.Cell(i, "acref")}
	}
	return refs
}

// cacheImageRefs stages one slice of the request's images — the whole table
// on the classic path, one wave's window on the survey-scale path.
func (s *Service) cacheImageRefs(refs []imageRef, stats *RunStats) error {
	var todo []imageRef
	for _, m := range refs {
		if s.cfg.RLS.Exists(m.id + ".fit") {
			stats.ImagesCached++
			continue
		}
		todo = append(todo, m)
	}
	if len(todo) == 0 {
		return nil
	}

	if s.cfg.BatchFetch {
		// Group by cutout-service base; acrefs look like
		// "<base>/cutout?id=<galaxy>".
		groups := map[string][]string{}
		var singles []imageRef
		for _, m := range todo {
			base, id, ok := strings.Cut(m.acref, "/cutout?id=")
			if !ok || id != m.id {
				singles = append(singles, m)
				continue
			}
			groups[base] = append(groups[base], m.id)
		}
		// Flatten into a deterministic job list (sorted bases), fan the
		// fetches out, ingest in job order.
		bases := make([]string, 0, len(groups))
		for base := range groups {
			bases = append(bases, base)
		}
		sort.Strings(bases)
		type batchJob struct {
			base string
			ids  []string
		}
		var jobs []batchJob
		for _, base := range bases {
			ids := groups[base]
			for lo := 0; lo < len(ids); lo += batchFetchSize {
				hi := lo + batchFetchSize
				if hi > len(ids) {
					hi = len(ids)
				}
				jobs = append(jobs, batchJob{base: base, ids: ids[lo:hi]})
			}
		}
		datas := make([][]byte, len(jobs))
		errs := make([]error, len(jobs))
		workpool.Run(s.workers(), len(jobs), func(i int) {
			u := jobs[i].base + "/cutoutbatch?ids=" + strings.Join(jobs[i].ids, ",")
			datas[i], errs[i] = s.fetchURL(u)
		})
		for i, job := range jobs {
			if errs[i] != nil {
				return errs[i]
			}
			if err := s.ingestBatch(job.base, job.ids, datas[i], stats); err != nil {
				return err
			}
		}
		todo = singles
	}

	datas := make([][]byte, len(todo))
	errs := make([]error, len(todo))
	workpool.Run(s.workers(), len(todo), func(i int) {
		datas[i], errs[i] = s.fetchURL(todo[i].acref)
	})
	for i, m := range todo {
		if errs[i] != nil {
			return errs[i]
		}
		chargeSIA(stats, len(datas[i]))
		if err := s.storeImage(m.id+".fit", datas[i]); err != nil {
			return err
		}
		stats.ImagesFetched++
	}
	return nil
}

// chargeSIA accounts one image-service request in the wide-area cost model.
func chargeSIA(stats *RunStats, nbytes int) {
	stats.SIARequests++
	stats.SIABytes += int64(nbytes)
	stats.SIAModelTime += siaRequestLatency +
		time.Duration(float64(nbytes)/siaBandwidthBps*float64(time.Second))
}

// ingestBatch accounts, splits and stores one fetched /cutoutbatch response.
func (s *Service) ingestBatch(base string, ids []string, data []byte, stats *RunStats) error {
	chargeSIA(stats, len(data))
	segments, err := fits.SplitStream(data)
	if err != nil {
		return fmt.Errorf("webservice: batch %s: %w", base, err)
	}
	if len(segments) != len(ids) {
		return fmt.Errorf("webservice: batch %s returned %d images for %d ids",
			base, len(segments), len(ids))
	}
	for i, seg := range segments {
		if err := s.storeImage(ids[i]+".fit", seg); err != nil {
			return err
		}
		stats.ImagesFetched++
	}
	return nil
}

func (s *Service) fetchURL(u string) ([]byte, error) {
	resp, err := s.cfg.HTTPClient.Get(u)
	if err != nil {
		return nil, fmt.Errorf("webservice: fetch %s: %w", u, err)
	}
	data, err := io.ReadAll(resp.Body)
	// The body has been fully consumed; a close error cannot invalidate data
	// already read.
	_ = resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("webservice: fetch %s: %w", u, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("webservice: fetch %s: status %d", u, resp.StatusCode)
	}
	return data, nil
}

func (s *Service) storeImage(lfn string, data []byte) error {
	if err := s.cfg.GridFTP.Store(s.cfg.CacheSite).Put(lfn, data); err != nil {
		return err
	}
	if err := s.registerReplica(lfn, rls.PFN{
		Site: s.cfg.CacheSite,
		URL:  gridftp.URL(s.cfg.CacheSite, lfn),
	}); err != nil {
		return err
	}
	if m := s.cfg.MirrorSite; m != "" && m != s.cfg.CacheSite {
		if err := s.cfg.GridFTP.Store(m).Put(lfn, data); err != nil {
			return err
		}
		if err := s.registerReplica(lfn, rls.PFN{
			Site: m,
			URL:  gridftp.URL(m, lfn),
		}); err != nil {
			return err
		}
	}
	return nil
}

// evictImage removes one staged cutout from the cache (and mirror) store
// and withdraws its RLS registrations — the survey-scale reclamation path
// for images whose derived outputs are already registered. Copies a
// previous process staged and this one never saw are simply absent;
// eviction reports whether any replica was actually removed here.
func (s *Service) evictImage(lfn string) bool {
	evicted := false
	sites := []string{s.cfg.CacheSite}
	if m := s.cfg.MirrorSite; m != "" && m != s.cfg.CacheSite {
		sites = append(sites, m)
	}
	for _, site := range sites {
		if err := s.cfg.GridFTP.Store(site).Delete(lfn); err == nil {
			evicted = true
		}
		// Withdrawing a replica that was never registered is a no-op.
		_ = s.cfg.RLS.Unregister(lfn, rls.PFN{Site: site, URL: gridftp.URL(site, lfn)})
	}
	s.replicas.Invalidate(lfn)
	return evicted
}

// countStagedImages counts the cutout images currently held by the cache
// store — the footprint wave eviction bounds.
func (s *Service) countStagedImages() int {
	n := 0
	for _, name := range s.cfg.GridFTP.Store(s.cfg.CacheSite).List() {
		if strings.HasSuffix(name, ".fit") {
			n++
		}
	}
	return n
}

// buildVDL renders the derivation file for one request: the galMorph and
// concatVOT transformations, one galMorph derivation per galaxy with the
// paper's parameter set, and a concatenating derivation producing the output
// VOTable.
func buildVDL(tab *votable.Table, cluster string) (string, error) {
	var b strings.Builder
	b.WriteString("TR galMorph( in redshift, in pixScale, in zeroPoint, in Ho, in om, in flat, in image, out galMorph ) { compute CAS parameters }\n")

	n := tab.NumRows()
	b.WriteString("TR concatVOT( ")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "in p%d, ", i)
	}
	b.WriteString("out table ) { concatenate per-galaxy results }\n")

	for i := 0; i < n; i++ {
		id := tab.Cell(i, "id")
		z := tab.Cell(i, "z")
		if strings.TrimSpace(z) == "" {
			z = "0"
		}
		fmt.Fprintf(&b,
			"DV m-%s->galMorph( redshift=%q, image=@{in:%q}, pixScale=\"2.831933107035062E-4\", zeroPoint=\"27.8\", Ho=\"100\", om=\"0.3\", flat=\"1\", galMorph=@{out:%q} );\n",
			id, z, id+".fit", id+".txt")
	}

	fmt.Fprintf(&b, "DV collect-%s->concatVOT( ", cluster)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "p%d=@{in:%q}, ", i, tab.Cell(i, "id")+".txt")
	}
	fmt.Fprintf(&b, "table=@{out:%q} );\n", outputLFN(cluster))
	return b.String(), nil
}

// --- per-galaxy result encoding ---------------------------------------------

// GalMorphResult is the payload of one <galaxy>.txt file.
type GalMorphResult struct {
	ID                string
	SurfaceBrightness float64
	Concentration     float64
	Asymmetry         float64
	Valid             bool
	Reason            string
}

// encodeResult renders a result file ("key value" lines).
func encodeResult(r GalMorphResult) []byte {
	return appendResult(nil, r)
}

// appendResult appends the result-file rendering to dst and returns the
// extended slice — the allocation-free form of encodeResult the hot path
// feeds an arena buffer. strconv.AppendFloat with 'g'/-1 and AppendBool
// produce exactly fmt's %g and %t, so the bytes are identical to the
// historical fmt.Fprintf encoding (pinned by TestAppendResultMatchesFmt).
//
//nvo:hotpath
func appendResult(dst []byte, r GalMorphResult) []byte {
	dst = append(dst, "id "...)
	dst = append(dst, r.ID...)
	dst = append(dst, "\nsurface_brightness "...)
	dst = strconv.AppendFloat(dst, r.SurfaceBrightness, 'g', -1, 64)
	dst = append(dst, "\nconcentration "...)
	dst = strconv.AppendFloat(dst, r.Concentration, 'g', -1, 64)
	dst = append(dst, "\nasymmetry "...)
	dst = strconv.AppendFloat(dst, r.Asymmetry, 'g', -1, 64)
	dst = append(dst, "\nvalid "...)
	dst = strconv.AppendBool(dst, r.Valid)
	dst = append(dst, '\n')
	if r.Reason != "" {
		dst = append(dst, "reason "...)
		for i := 0; i < len(r.Reason); i++ {
			c := r.Reason[i]
			if c == '\n' {
				c = ' '
			}
			dst = append(dst, c)
		}
		dst = append(dst, '\n')
	}
	return dst
}

// decodeResult parses a result file.
func decodeResult(data []byte) (GalMorphResult, error) {
	var r GalMorphResult
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		key, val, found := strings.Cut(line, " ")
		if !found {
			return r, fmt.Errorf("webservice: bad result line %q", line)
		}
		switch key {
		case "id":
			r.ID = val
		case "surface_brightness":
			fmt.Sscanf(val, "%g", &r.SurfaceBrightness)
		case "concentration":
			fmt.Sscanf(val, "%g", &r.Concentration)
		case "asymmetry":
			fmt.Sscanf(val, "%g", &r.Asymmetry)
		case "valid":
			r.Valid = val == "true"
		case "reason":
			r.Reason = val
		}
	}
	if r.ID == "" {
		return r, errors.New("webservice: result file missing id")
	}
	return r, nil
}

// ResultFields is the column set of the computed VOTable.
var ResultFields = []votable.Field{
	{Name: "id", Datatype: votable.TypeChar, UCD: "meta.id;meta.main"},
	{Name: "surface_brightness", Datatype: votable.TypeDouble, Unit: "mag/arcsec2"},
	{Name: "concentration", Datatype: votable.TypeDouble},
	{Name: "asymmetry", Datatype: votable.TypeDouble},
	{Name: "valid", Datatype: votable.TypeBoolean},
}

// resultsMeta is the metadata of the output table: both the in-memory
// resultsToVOTable path and the streaming concat path build from it, so the
// two cannot drift apart.
func resultsMeta(cluster string, n int) votable.TableMeta {
	return votable.TableMeta{
		Name:        cluster + "_morphology",
		Description: "galaxy morphology parameters computed by the NVO compute service",
		Params: []votable.Param{
			{Name: "cluster", Datatype: votable.TypeChar, Value: cluster},
			{Name: "n_galaxies", Datatype: votable.TypeInt, Value: fmt.Sprint(n)},
		},
		Fields: ResultFields,
	}
}

// resultCells renders one result as its output-table row.
func resultCells(r GalMorphResult) []string {
	row := make([]string, len(ResultFields))
	resultCellsInto(row, r)
	return row
}

// resultCellsInto fills a caller-owned row (len(ResultFields) cells) with
// one result's output-table rendering, so the concat hot path reuses a
// single buffer instead of allocating a row per galaxy.
//
//nvo:hotpath
func resultCellsInto(row []string, r GalMorphResult) {
	valid := "F"
	if r.Valid {
		valid = "T"
	}
	row[0] = r.ID
	row[1] = votable.FormatFloat(r.SurfaceBrightness)
	row[2] = votable.FormatFloat(r.Concentration)
	row[3] = votable.FormatFloat(r.Asymmetry)
	row[4] = valid
}

// resultsToVOTable assembles the output table, sorted by galaxy ID.
func resultsToVOTable(cluster string, results []GalMorphResult) *votable.Table {
	sort.Slice(results, func(i, j int) bool { return results[i].ID < results[j].ID })
	meta := resultsMeta(cluster, len(results))
	t := votable.NewTable(meta.Name, meta.Fields...)
	t.Description = meta.Description
	for _, p := range meta.Params {
		t.SetParam(p)
	}
	for _, r := range results {
		_ = t.AppendRow(resultCells(r)...)
	}
	return t
}

// morphConfigFromDV reconstructs the measurement configuration from a
// derivation's scalar bindings.
func morphConfigFromDV(dv *vdl.Derivation) morphology.Config {
	cfg := morphology.DefaultConfig(0)
	if b, ok := dv.Bindings["redshift"]; ok && !b.IsFile {
		fmt.Sscanf(b.Value, "%g", &cfg.Redshift)
	}
	if b, ok := dv.Bindings["pixScale"]; ok && !b.IsFile {
		fmt.Sscanf(strings.ReplaceAll(b.Value, "E", "e"), "%g", &cfg.PixScaleDeg)
	}
	if b, ok := dv.Bindings["zeroPoint"]; ok && !b.IsFile {
		fmt.Sscanf(b.Value, "%g", &cfg.ZeroPoint)
	}
	if b, ok := dv.Bindings["Ho"]; ok && !b.IsFile {
		fmt.Sscanf(b.Value, "%g", &cfg.Cosmology.H0)
	}
	if b, ok := dv.Bindings["om"]; ok && !b.IsFile {
		fmt.Sscanf(b.Value, "%g", &cfg.Cosmology.OmegaM)
	}
	if b, ok := dv.Bindings["flat"]; ok && !b.IsFile {
		cfg.Cosmology.Flat = b.Value != "0"
	}
	return cfg
}
