package webservice

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/condor"
	"repro/internal/fabric"
	"repro/internal/gridftp"
	"repro/internal/journal"
	"repro/internal/rls"
	"repro/internal/services"
	"repro/internal/skysim"
	"repro/internal/tcat"
	"repro/internal/votable"
)

// multiSpecs is a set of n small, distinct clusters — one workflow each —
// for multi-tenant fabric tests.
func multiSpecs(n int) []skysim.Spec {
	specs := skysim.StandardClusters()[:n]
	for i := range specs {
		specs[i].NumGalaxies = 4 + i
	}
	return specs
}

// multiHarness is the multi-cluster analog of harness: one archive serving
// several clusters, one Grid substrate, one compute service.
type multiHarness struct {
	archive  *services.Archive
	archSrv  *httptest.Server
	svc      *Service
	ftp      *gridftp.Service
	clusters []*skysim.Cluster
}

func newMultiHarness(t testing.TB, n int, cfgMut func(*Config)) *multiHarness {
	t.Helper()
	var cls []*skysim.Cluster
	for _, spec := range multiSpecs(n) {
		cls = append(cls, skysim.Generate(spec))
	}
	arch := services.NewArchive("mast", cls...)
	srv := httptest.NewServer(arch.Handler())
	t.Cleanup(srv.Close)

	r := rls.New()
	ftp := gridftp.NewService(gridftp.Network{})
	tc := tcat.New()
	for _, site := range []string{"usc", "wisc", "fnal"} {
		_ = tc.Add(tcat.Entry{Transformation: "galMorph", Site: site, Path: "/nvo/bin/galMorph"})
		_ = tc.Add(tcat.Entry{Transformation: "concatVOT", Site: site, Path: "/nvo/bin/concatVOT"})
	}
	cfg := Config{
		RLS: r, TC: tc, GridFTP: ftp,
		Pools: []condor.Pool{
			{Name: "usc", Slots: 8}, {Name: "wisc", Slots: 16}, {Name: "fnal", Slots: 8},
		},
		CacheSite:  "isi",
		HTTPClient: srv.Client(),
		Seed:       5,
	}
	if cfgMut != nil {
		cfgMut(&cfg)
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &multiHarness{archive: arch, archSrv: srv, svc: svc, ftp: ftp, clusters: cls}
}

// inputTableFor builds the catalog VOTable for the i-th cluster.
func (h *multiHarness) inputTableFor(t testing.TB, i int) *votable.Table {
	t.Helper()
	cl := h.clusters[i]
	tab := h.archive.SIAQueryCutouts(cl.Center, 2)
	if tab.NumRows() == 0 {
		t.Fatalf("no galaxies from cutout service for %s", cl.Name)
	}
	zCol := votable.Field{Name: "z", Datatype: votable.TypeDouble}
	tab.AddColumn(zCol, func(i int) string {
		g, _ := h.archive.Galaxy(tab.Cell(i, "id"))
		return votable.FormatFloat(g.Redshift)
	})
	for i := range tab.Fields {
		if tab.Fields[i].Name == "title" {
			tab.Fields[i].Name = "id"
		}
	}
	for r := 0; r < tab.NumRows(); r++ {
		if err := tab.SetCell(r, "acref", h.archSrv.URL+tab.Cell(r, "acref")); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

func (h *multiHarness) outputBytes(t *testing.T, lfn string) []byte {
	t.Helper()
	data, err := h.ftp.Store("isi").Get(lfn)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// soloBytes computes cluster i alone on a fresh single-tenant substrate
// with the same seeds — the byte-identity baseline every fabric run is
// held to.
func soloBytes(t *testing.T, n, i int, cfgMut func(*Config)) []byte {
	t.Helper()
	h := newMultiHarness(t, n, cfgMut)
	name := h.clusters[i].Name
	if _, _, err := h.svc.Compute(h.inputTableFor(t, i), name); err != nil {
		t.Fatalf("solo %s: %v", name, err)
	}
	return h.outputBytes(t, name+".vot")
}

// awaitTerminal polls a submitted request to its terminal state.
func awaitTerminal(t *testing.T, svc *Service, id string) Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := svc.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateRunning && st.State != StateQueued {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("request %s stuck in %s", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// stressFabric is the overload configuration of the acceptance stress
// test: 2 workflow slots, 2 queue slots fleet-wide; each tenant may run 1
// workflow and queue 1 more.
func stressFabric(t *testing.T) *fabric.Fabric {
	t.Helper()
	f, err := fabric.New(fabric.Config{
		Pools: []condor.Pool{
			{Name: "usc", Slots: 8}, {Name: "wisc", Slots: 16}, {Name: "fnal", Slots: 8},
		},
		MaxRunningWorkflows: 2,
		MaxQueuedWorkflows:  2,
		DefaultQuota:        fabric.Quota{MaxRunningWorkflows: 1, MaxQueuedWorkflows: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// stressSubmissions is the fixed overload burst: tenant and cluster index
// per request, in submission order.
var stressSubmissions = []struct {
	tenant  string
	cluster int
}{
	{"alice", 0}, {"alice", 1}, {"alice", 2},
	{"bob", 3}, {"bob", 4},
	{"carol", 5},
}

// submitBurst posts the fixed burst through the HTTP handler against a
// held fabric and returns the HTTP status per submission plus the request
// IDs of the admitted ones (in submission order).
func submitBurst(t *testing.T, h *multiHarness, srv *httptest.Server) (statuses []int, ids []string, shedRetryAfter []string) {
	t.Helper()
	for _, sub := range stressSubmissions {
		tab := h.inputTableFor(t, sub.cluster)
		var body strings.Builder
		if err := votable.WriteTable(&body, tab); err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(
			srv.URL+"/galmorph?cluster="+h.clusters[sub.cluster].Name+"&tenant="+sub.tenant,
			"text/xml", strings.NewReader(body.String()))
		if err != nil {
			t.Fatal(err)
		}
		payload := readAll(t, resp)
		statuses = append(statuses, resp.StatusCode)
		if resp.StatusCode == http.StatusAccepted {
			ids = append(ids, strings.TrimPrefix(payload, "/status?id="))
		} else {
			shedRetryAfter = append(shedRetryAfter, resp.Header.Get("Retry-After"))
		}
	}
	return statuses, ids, shedRetryAfter
}

// TestDeterministicSheddingUnderOverload is the PR's acceptance stress
// test: a submission burst over quota sheds a deterministic, repeatable
// set of 429/503s, while every admitted workflow's output VOTable is
// byte-identical to its single-tenant run — including after the shared
// fabric is killed mid-flight and every journaled workflow resumed.
func TestDeterministicSheddingUnderOverload(t *testing.T) {
	const n = 6
	// Held fabric, per-tenant queue quota 1, fleet queue quota 2:
	// alice queues c0 (202), then sheds her own quota twice (429);
	// bob queues c3 (202, fleet queue now full), sheds his quota (429);
	// carol hits the fleet-wide bound (503).
	wantStatuses := []int{202, 429, 429, 202, 429, 503}

	runBurst := func(crashAfter int, dir string) ([]int, []string, *multiHarness) {
		h := newMultiHarness(t, n, func(c *Config) {
			c.Fabric = stressFabric(t)
			c.JournalDir = dir
			c.CrashAfterEvents = crashAfter
		})
		h.svc.Fabric().Hold()
		srv := httptest.NewServer(h.svc.Handler())
		t.Cleanup(srv.Close)
		statuses, ids, retryAfter := submitBurst(t, h, srv)
		for i, ra := range retryAfter {
			if ra == "" {
				t.Fatalf("shed response %d missing Retry-After", i)
			}
		}
		h.svc.Fabric().Unhold()
		return statuses, ids, h
	}

	// Two identical bursts on fresh substrates: the shed set must repeat
	// exactly — deterministic overload degradation, not racy best-effort.
	statuses1, ids1, h1 := runBurst(0, t.TempDir())
	statuses2, _, _ := runBurst(0, t.TempDir())
	for i := range wantStatuses {
		if statuses1[i] != wantStatuses[i] {
			t.Fatalf("burst statuses = %v, want %v", statuses1, wantStatuses)
		}
		if statuses2[i] != statuses1[i] {
			t.Fatalf("second burst diverged: %v vs %v", statuses2, statuses1)
		}
	}

	// Every admitted workflow completes and matches its single-tenant run
	// byte for byte.
	admitted := []int{0, 3} // cluster index of each admitted submission
	for k, id := range ids1 {
		st := awaitTerminal(t, h1.svc, id)
		if st.State != StateCompleted {
			t.Fatalf("admitted request %s: %s (%s)", id, st.State, st.Message)
		}
		name := h1.clusters[admitted[k]].Name
		want := soloBytes(t, n, admitted[k], nil)
		if !bytes.Equal(h1.outputBytes(t, name+".vot"), want) {
			t.Fatalf("%s: fabric output differs from single-tenant run", name)
		}
	}

	// Fleet counters reflect the burst.
	fleet := h1.svc.Fleet()
	if fleet.Admitted != 2 || fleet.Shed != 4 || fleet.Completed != 2 {
		t.Fatalf("fleet = %+v, want 2 admitted, 4 shed, 2 completed", fleet)
	}

	// Kill/resume leg: same burst with the crash switch armed — both
	// admitted workflows die mid-flight; a reopened service resumes each
	// under its own tenant and still reproduces the solo bytes.
	dir := t.TempDir()
	statuses3, ids3, h3 := runBurst(12, dir)
	for i := range wantStatuses {
		if statuses3[i] != wantStatuses[i] {
			t.Fatalf("crash burst statuses = %v, want %v", statuses3, wantStatuses)
		}
	}
	tenants := []string{"alice", "bob"}
	for _, id := range ids3 {
		st := awaitTerminal(t, h3.svc, id)
		if st.State != StateFailed || !strings.Contains(st.Message, "simulated crash") {
			t.Fatalf("crash-armed request %s: %s (%s)", id, st.State, st.Message)
		}
	}
	svc2, err := h3.svc.Reopen()
	if err != nil {
		t.Fatal(err)
	}
	for k, ci := range admitted {
		name := h3.clusters[ci].Name
		if _, _, err := svc2.ResumeFor(context.Background(), name,
			RequestOptions{Tenant: tenants[k]}, nil); err != nil {
			t.Fatalf("resume %s as %s: %v", name, tenants[k], err)
		}
		want := soloBytes(t, n, ci, nil)
		if !bytes.Equal(h3.outputBytes(t, name+".vot"), want) {
			t.Fatalf("%s: resumed fabric output differs from single-tenant run", name)
		}
	}
}

// TestFabricKillResumeNoJournalBleed kills the shared fabric with several
// journaled workflows in flight, then resumes all of them: every journal
// holds only its own workflow's scoped records, resuming one workflow
// never touches another's journal, and every output is byte-identical to
// its solo run.
func TestFabricKillResumeNoJournalBleed(t *testing.T) {
	const n = 3
	dir := t.TempDir()
	h := newMultiHarness(t, n, func(c *Config) {
		c.JournalDir = dir
		c.CrashAfterEvents = 8
	})
	tenants := []string{"alice", "bob", "carol"}

	// All three workflows in flight simultaneously on the shared fabric
	// when the crash switch fires in each.
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		tab := h.inputTableFor(t, i)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = h.svc.ComputeFor(context.Background(), tab,
				h.clusters[i].Name, RequestOptions{Tenant: tenants[i]}, nil)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, journal.ErrCrash) {
			t.Fatalf("workflow %d: err = %v, want simulated crash", i, err)
		}
	}

	// Each journal is namespaced per workflow and carries only its own
	// scoped records — no cross-workflow bleed under interleaving.
	for i, tenant := range tenants {
		cluster := h.clusters[i].Name
		path := filepath.Join(dir, tenant+"__"+cluster+".journal")
		recs, _, err := journal.Replay(path)
		if err != nil {
			t.Fatalf("replay %s: %v", path, err)
		}
		if len(recs) == 0 {
			t.Fatalf("%s: empty journal after crash", path)
		}
		for _, r := range recs {
			if r.Scope != tenant+"/"+cluster {
				t.Fatalf("%s: record %d has scope %q, want %q",
					path, r.Seq, r.Scope, tenant+"/"+cluster)
			}
		}
	}

	// Resume them one at a time on a reopened service. While resuming one
	// workflow, the other workflows' journals must not change by a byte.
	svc2, err := h.svc.Reopen()
	if err != nil {
		t.Fatal(err)
	}
	journalBytes := func(i int) []byte {
		data, err := os.ReadFile(filepath.Join(dir, tenants[i]+"__"+h.clusters[i].Name+".journal"))
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	for i, tenant := range tenants {
		var others [][]byte
		for j := range tenants {
			if j != i {
				others = append(others, journalBytes(j))
			}
		}
		if _, _, err := svc2.ResumeFor(context.Background(), h.clusters[i].Name,
			RequestOptions{Tenant: tenant}, nil); err != nil {
			t.Fatalf("resume %s: %v", h.clusters[i].Name, err)
		}
		k := 0
		for j := range tenants {
			if j != i {
				if !bytes.Equal(journalBytes(j), others[k]) {
					t.Fatalf("resuming %s's workflow modified %s's journal",
						tenant, tenants[j])
				}
				k++
			}
		}
		want := soloBytes(t, n, i, nil)
		if !bytes.Equal(h.outputBytes(t, h.clusters[i].Name+".vot"), want) {
			t.Fatalf("%s: resumed output differs from solo run", h.clusters[i].Name)
		}
	}

	// A resume under the wrong identity must fail with the scope error,
	// not silently adopt another workflow's history: point a service at a
	// journal whose records belong to alice and resume it as the default
	// tenant (same on-disk path, different scope).
	src := filepath.Join(dir, "alice__"+h.clusters[0].Name+".journal")
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, h.clusters[0].Name+".journal"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, ext := range []string{".dag", ".vdl"} {
		artifact, err := os.ReadFile(filepath.Join(dir, "alice__"+h.clusters[0].Name+ext))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, h.clusters[0].Name+ext), artifact, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := svc2.Resume(h.clusters[0].Name); !errors.Is(err, journal.ErrScope) {
		t.Fatalf("resume under foreign identity = %v, want journal.ErrScope", err)
	}
}

// clusterGate blocks the first archive fetch of each cluster until
// released, so a test can hold several workflows provably mid-flight at
// once.
type clusterGate struct {
	base    http.RoundTripper
	release chan struct{}

	mu      sync.Mutex
	started map[string]chan struct{}
	seen    map[string]bool
}

func (g *clusterGate) RoundTrip(req *http.Request) (*http.Response, error) {
	id := req.URL.Query().Get("id")
	cluster := id
	if cut := strings.LastIndex(id, "-"); cut >= 0 {
		cluster = id[:cut]
	}
	g.mu.Lock()
	first := !g.seen[cluster]
	g.seen[cluster] = true
	ch := g.started[cluster]
	g.mu.Unlock()
	if first && ch != nil {
		close(ch)
		<-g.release
	}
	return g.base.RoundTrip(req)
}

// TestCancelIsolationAcrossWorkflows is the regression for POST /cancel on
// a shared fabric: canceling one tenant's workflow must abort exactly that
// workflow — the other in-flight workflow keeps its side effects, runs to
// completion, and produces its solo-run bytes.
func TestCancelIsolationAcrossWorkflows(t *testing.T) {
	const n = 2
	dir := t.TempDir()
	gate := &clusterGate{
		release: make(chan struct{}),
		started: map[string]chan struct{}{},
		seen:    map[string]bool{},
	}
	h := newMultiHarness(t, n, func(c *Config) {
		c.JournalDir = dir
		gate.base = c.HTTPClient.Transport
		if gate.base == nil {
			gate.base = http.DefaultTransport
		}
		c.HTTPClient = &http.Client{Transport: gate}
		for _, cl := range multiSpecs(n) {
			gate.started[cl.Name] = make(chan struct{})
		}
	})
	srv := httptest.NewServer(h.svc.Handler())
	defer srv.Close()

	submit := func(i int, tenant string) string {
		tab := h.inputTableFor(t, i)
		var body strings.Builder
		if err := votable.WriteTable(&body, tab); err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(
			srv.URL+"/galmorph?cluster="+h.clusters[i].Name+"&tenant="+tenant,
			"text/xml", strings.NewReader(body.String()))
		if err != nil {
			t.Fatal(err)
		}
		payload := readAll(t, resp)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
		return strings.TrimPrefix(payload, "/status?id=")
	}
	idA := submit(0, "alice")
	idB := submit(1, "bob")

	// Both workflows are provably mid-flight (each blocked on its first
	// archive fetch); cancel alice's only.
	<-gate.started[h.clusters[0].Name]
	<-gate.started[h.clusters[1].Name]
	cresp, err := http.Post(srv.URL+"/cancel?id="+idA, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusAccepted {
		t.Fatalf("/cancel status = %d", cresp.StatusCode)
	}
	close(gate.release)

	stA := awaitTerminal(t, h.svc, idA)
	if stA.State != StateFailed || !strings.Contains(stA.Message, "abort") {
		t.Fatalf("canceled workflow: %s (%s)", stA.State, stA.Message)
	}
	stB := awaitTerminal(t, h.svc, idB)
	if stB.State != StateCompleted {
		t.Fatalf("bob's workflow was dragged down by alice's cancel: %s (%s)",
			stB.State, stB.Message)
	}

	// Bob's journal must record a clean completed run — no abort record
	// bled over from alice's cancellation.
	recsB, _, err := journal.Replay(filepath.Join(dir, "bob__"+h.clusters[1].Name+".journal"))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recsB {
		if r.Kind == journal.KindAborted {
			t.Fatal("bob's journal carries an abort record from alice's cancel")
		}
	}
	if last := recsB[len(recsB)-1]; last.Kind != journal.KindEnd {
		t.Fatalf("bob's journal ends with %s, want end", last.Kind)
	}

	// And bob's science is untouched: byte-identical to his solo run.
	want := soloBytes(t, n, 1, nil)
	if !bytes.Equal(h.outputBytes(t, h.clusters[1].Name+".vot"), want) {
		t.Fatal("bob's output differs from his single-tenant run after alice's cancel")
	}
}

// TestQueuedStatusAndCancelWhileQueued covers the queued leg of the
// request lifecycle: a workflow behind the quota reports StateQueued, and
// canceling it dequeues it without ever running it.
func TestQueuedStatusAndCancelWhileQueued(t *testing.T) {
	const n = 2
	h := newMultiHarness(t, n, func(c *Config) {
		f, err := fabric.New(fabric.Config{
			Pools:               c.Pools,
			MaxRunningWorkflows: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		c.Fabric = f
	})
	h.svc.Fabric().Hold()
	id0, err := h.svc.SubmitFor(h.inputTableFor(t, 0), h.clusters[0].Name, RequestOptions{Tenant: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	id1, err := h.svc.SubmitFor(h.inputTableFor(t, 1), h.clusters[1].Name, RequestOptions{Tenant: "bob"})
	if err != nil {
		t.Fatal(err)
	}
	st, err := h.svc.Status(id1)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateQueued || st.Tenant != "bob" {
		t.Fatalf("held request: state=%s tenant=%s, want queued/bob", st.State, st.Tenant)
	}
	if err := h.svc.Cancel(id1); err != nil {
		t.Fatal(err)
	}
	st1 := awaitTerminal(t, h.svc, id1)
	if st1.State != StateFailed || !strings.Contains(st1.Message, "canceled while queued") {
		t.Fatalf("canceled queued request: %s (%s)", st1.State, st1.Message)
	}
	h.svc.Fabric().Unhold()
	if st0 := awaitTerminal(t, h.svc, id0); st0.State != StateCompleted {
		t.Fatalf("alice's workflow: %s (%s)", st0.State, st0.Message)
	}
	snap := h.svc.Fleet()
	var bob fabric.TenantSnapshot
	for _, ts := range snap.Tenants {
		if ts.Tenant == "bob" {
			bob = ts
		}
	}
	if bob.Canceled != 1 || bob.Completed != 0 {
		t.Fatalf("bob's counters after queued cancel: %+v", bob)
	}
}

// TestStatsEndpointReportsFleet checks the /stats payload carries the
// fabric's per-tenant admission and fair-share counters.
func TestStatsEndpointReportsFleet(t *testing.T) {
	h := newMultiHarness(t, 1, nil)
	if _, _, err := h.svc.ComputeFor(context.Background(), h.inputTableFor(t, 0),
		h.clusters[0].Name, RequestOptions{Tenant: "alice"}, nil); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h.svc.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got ServiceStats
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Fleet.Admitted != 1 || len(got.Fleet.Tenants) != 1 {
		t.Fatalf("fleet stats = %+v, want 1 admitted for tenant alice", got.Fleet)
	}
	alice := got.Fleet.Tenants[0]
	if alice.Tenant != "alice" || alice.Completed != 1 || alice.UsageModelTime <= 0 {
		t.Fatalf("alice snapshot = %+v", alice)
	}
}
